package exrquy

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/store"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
)

// buildCorpus generates one XMark instance and persists it twice: as a
// single-part store and sharded across three directories. Returns the
// factor's fragment byte volume via the unsharded store's mapped size.
func buildCorpus(t testing.TB, factor float64) (single string, shards []string) {
	t.Helper()
	frag := xmark.Generate(xmark.Config{Factor: factor})
	base := t.TempDir()
	single = filepath.Join(base, "single")
	if err := store.WriteDoc([]string{single}, "auction.xml", frag); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		shards = append(shards, filepath.Join(base, fmt.Sprintf("shard%d", k)))
	}
	if err := store.WriteDoc(shards, "auction.xml", frag); err != nil {
		t.Fatal(err)
	}
	return single, shards
}

// TestStoreDifferentialXMark is the tentpole acceptance gate: all 20
// XMark queries, evaluated against the mmap-backed store — unsharded
// and sharded three ways — must produce byte-identical output to the
// in-memory engine over the same corpus, through both the bytecode VM
// and the tree-walking engine, with the store held under a byte ledger
// several times smaller than the mapped corpus (so the run actually
// exercises demand paging and pressure eviction, not just the format).
func TestStoreDifferentialXMark(t *testing.T) {
	const factor = 0.003
	single, shards := buildCorpus(t, factor)

	for _, compiled := range []bool{true, false} {
		// In-memory reference: same factor, same generator seed, loaded
		// straight from the generator without touching disk.
		ref := New(WithCompiled(compiled))
		ref.LoadXMark("auction.xml", factor)
		want := make(map[int]string)
		for _, q := range xmarkq.All() {
			res, err := ref.Query(q.Text)
			if err != nil {
				t.Fatalf("in-memory %s: %v", q.Name, err)
			}
			xml, err := res.XML()
			if err != nil {
				t.Fatal(err)
			}
			want[q.ID] = xml
		}

		for _, tc := range []struct {
			mode string
			dirs []string
		}{
			{"ooc", []string{single}},
			{"shard3", shards},
		} {
			name := fmt.Sprintf("compiled=%v/%s", compiled, tc.mode)
			t.Run(name, func(t *testing.T) {
				// Budget the store ledger at a quarter of the mapped
				// corpus: the store must stay correct while it cannot
				// all be resident at once.
				probe, err := store.Open(tc.dirs, store.Options{})
				if err != nil {
					t.Fatal(err)
				}
				mapped := probe.Stats().MappedBytes
				probe.Close()

				eng := New(WithCompiled(compiled), WithStoreBudget(mapped/4))
				uris, err := eng.AttachStore(tc.dirs...)
				if err != nil {
					t.Fatalf("attach: %v", err)
				}
				if len(uris) != 1 || uris[0] != "auction.xml" {
					t.Fatalf("mounted %v", uris)
				}
				for _, q := range xmarkq.All() {
					res, err := eng.Query(q.Text)
					if err != nil {
						t.Fatalf("%s: %v", q.Name, err)
					}
					got, err := res.XML()
					if err != nil {
						t.Fatal(err)
					}
					if got != want[q.ID] {
						t.Errorf("%s: store-backed output differs from in-memory engine\n got: %.200q\nwant: %.200q",
							q.Name, got, want[q.ID])
					}
					eng.SampleStores() // keep paging pressure honest mid-run
					if used := eng.storeLedger.Used(); used > mapped/4 {
						t.Fatalf("store ledger oversubscribed: %d > %d", used, mapped/4)
					}
				}
				if _, err := eng.DetachStore(tc.dirs[0]); err != nil {
					t.Fatalf("detach: %v", err)
				}
				if _, err := eng.Query(`count(doc("auction.xml"))`); err == nil ||
					!strings.Contains(err.Error(), "unknown document") {
					t.Fatalf("detached document still resolvable: %v", err)
				}
			})
		}
	}
}

// TestStoreConcurrentAttachDetach races morsel-parallel scatter/gather
// queries against hot attach/detach cycles of the store they read. Run
// under -race in CI: queries must either succeed or fail with "unknown
// document" (when they start after a detach), never crash or read
// unmapped memory.
func TestStoreConcurrentAttachDetach(t *testing.T) {
	frag := xmark.Generate(xmark.Config{Factor: 0.001})
	base := t.TempDir()
	dirs := []string{filepath.Join(base, "s0"), filepath.Join(base, "s1")}
	if err := store.WriteDoc(dirs, "ooc.xml", frag); err != nil {
		t.Fatal(err)
	}

	eng := New(WithParallelism(4))
	eng.LoadXMark("auction.xml", 0.001)
	if _, err := eng.AttachStore(dirs...); err != nil {
		t.Fatal(err)
	}

	// Aggregate-only queries: their results carry no node references, so
	// they stay valid after the store detaches beneath them.
	q1, err := eng.Compile(`count(doc("ooc.xml")//item)`)
	if err != nil {
		t.Fatal(err)
	}
	wantXML, err := mustRun(t, q1)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query(`count(doc("ooc.xml")//item)`)
				if err != nil {
					if strings.Contains(err.Error(), "unknown document") {
						continue // raced a detach window
					}
					t.Errorf("query: %v", err)
					return
				}
				xml, err := res.XML()
				if err != nil {
					t.Errorf("serialize: %v", err)
					return
				}
				if xml != wantXML {
					t.Errorf("got %q, want %q", xml, wantXML)
					return
				}
			}
		}()
	}
	for cycle := 0; cycle < 10; cycle++ {
		if _, err := eng.DetachStore(dirs[0]); err != nil {
			t.Fatalf("detach cycle %d: %v", cycle, err)
		}
		if _, err := eng.AttachStore(dirs...); err != nil {
			t.Fatalf("attach cycle %d: %v", cycle, err)
		}
		eng.SampleStores()
	}
	close(stop)
	wg.Wait()

	if _, err := eng.DetachStore("no-such-dir"); err == nil {
		t.Fatal("detaching an unknown mount must fail")
	}
	if _, err := eng.AttachStore(dirs...); err == nil {
		t.Fatal("double attach must fail")
	} else if _, derr := eng.DetachStore(dirs[0]); derr != nil {
		t.Fatalf("final detach: %v", derr)
	}
}

func mustRun(t *testing.T, q *Query) (string, error) {
	t.Helper()
	res, err := q.Execute()
	if err != nil {
		return "", err
	}
	return res.XML()
}

// TestAttachCorruptStore: a corrupt store must fail to attach with
// ErrCorrupt and leave the engine's registry untouched.
func TestAttachCorruptStore(t *testing.T) {
	eng := New()
	if _, err := eng.AttachStore(t.TempDir()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if docs := eng.Documents(); len(docs) != 0 {
		t.Fatalf("registry polluted by failed attach: %v", docs)
	}
}
