// Auction analytics: the domain scenario of the paper's evaluation. A
// synthetic XMark auction site is generated in memory and analyzed with
// XQuery; each report is timed under the order-ignorant baseline and with
// order indifference enabled, showing the §5 performance advantage on
// realistic analytical queries.
package main

import (
	"fmt"
	"log"
	"time"

	exrquy "repro"
)

type report struct {
	name  string
	query string
}

var reports = []report{
	{
		name: "items per region",
		query: `let $s := doc("auction.xml")/site return
			for $r in $s/regions/* return <region name="{ name($r) }">{ count($r/item) }</region>`,
	},
	{
		name: "gold items",
		query: `let $s := doc("auction.xml")/site return
			count(for $i in $s//item
			      where contains(string(exactly-one($i/description)), "gold")
			      return $i)`,
	},
	{
		name: "income bands (Q20)",
		query: `let $p := doc("auction.xml")/site/people/person return
			<bands>
			  <high>{ count($p/profile[@income >= 100000]) }</high>
			  <mid>{ count($p/profile[@income < 100000 and @income >= 30000]) }</mid>
			  <low>{ count($p/profile[@income < 30000]) }</low>
			</bands>`,
	},
	{
		name: "auction activity",
		query: `let $s := doc("auction.xml")/site return
			<activity>
			  <open>{ count($s/open_auctions/open_auction) }</open>
			  <with-bids>{ count($s/open_auctions/open_auction[bidder]) }</with-bids>
			  <closed>{ count($s/closed_auctions/closed_auction) }</closed>
			  <avg-price>{ avg($s/closed_auctions/closed_auction/price) }</avg-price>
			</activity>`,
	},
	{
		name: "expensive auctions by reserve",
		query: `for $a in doc("auction.xml")/site/open_auctions/open_auction
			where $a/reserve > 250
			order by $a/reserve descending
			return <hot reserve="{ $a/reserve/text() }" id="{ $a/@id }"/>`,
	},
	{
		name: "purchases per person (Q8)",
		query: `let $s := doc("auction.xml")/site return
			count(for $p in $s/people/person
			      let $a := for $t in $s/closed_auctions/closed_auction
			                where $t/buyer/@person = $p/@id
			                return $t
			      where count($a) > 0
			      return $p)`,
	},
}

func main() {
	const factor = 0.02

	baseline := exrquy.New(exrquy.WithOrderIndifference(false))
	enabled := exrquy.New(exrquy.WithOrdering(exrquy.Unordered))
	baseline.LoadXMark("auction.xml", factor)
	enabled.LoadXMark("auction.xml", factor)

	stats, _ := enabled.DocumentStats("auction.xml")
	fmt.Printf("auction.xml: %d nodes (%d elements, %d attributes)\n\n",
		stats.Nodes, stats.Elements, stats.Attributes)
	fmt.Printf("%-32s %12s %12s %9s\n", "report", "ordered", "unordered", "speedup")

	for _, r := range reports {
		bd, bres := run(baseline, r.query)
		ed, eres := run(enabled, r.query)
		fmt.Printf("%-32s %12v %12v %8.0f%%\n", r.name,
			bd.Round(10*time.Microsecond), ed.Round(10*time.Microsecond),
			(float64(bd)/float64(ed)-1)*100)
		if bres != "" && len(bres) < 120 {
			fmt.Printf("  -> %s\n", bres)
		}
		_ = eres
	}
}

func run(eng *exrquy.Engine, query string) (time.Duration, string) {
	q, err := eng.Compile(query)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	best := time.Duration(0)
	var out string
	for i := 0; i < 7; i++ {
		res, err := q.Execute()
		if err != nil {
			log.Fatalf("execute: %v", err)
		}
		if best == 0 || res.Elapsed() < best {
			best = res.Elapsed()
		}
		out, _ = res.XML()
	}
	return best, out
}
