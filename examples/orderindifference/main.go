// Order indifference, step by step: this example walks XMark Q6 through
// the paper's optimization stages and prints the plan after each one,
// reproducing Figures 6(a), 6(b), 9 and the §7 wrap-up:
//
//	ordered mode            5 ρ (every order interaction realized)
//	ordering mode unordered 1 ρ (LOC#/BIND# traded ρ for #)
//	+ column analysis       1 ρ, most # pruned   (Figure 9)
//	+ rownum relaxation     0 ρ — no residual traces of order (§7)
//	+ step merging          descendant-or-self + child fuse
//
// All variants are executed and their results compared (as multisets —
// under unordered semantics any permutation is admissible).
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	exrquy "repro"
)

const q6 = `for $b in doc("auction.xml")//site/regions
return count($b//item)`

type stage struct {
	name string
	opts []exrquy.Option
}

func main() {
	stages := []stage{
		{"ordered (baseline, Figure 6a)", []exrquy.Option{
			exrquy.WithOrderIndifference(false),
		}},
		{"unordered, no optimizer (Figure 6b)", []exrquy.Option{
			exrquy.WithOrdering(exrquy.Unordered),
			exrquy.WithOptimizations(exrquy.Optimizations{}),
		}},
		{"+ column dependency analysis (Figure 9)", []exrquy.Option{
			exrquy.WithOrdering(exrquy.Unordered),
			exrquy.WithOptimizations(exrquy.Optimizations{ColumnAnalysis: true}),
		}},
		{"+ rownum relaxation (§7)", []exrquy.Option{
			exrquy.WithOrdering(exrquy.Unordered),
			exrquy.WithOptimizations(exrquy.Optimizations{ColumnAnalysis: true, RownumRelax: true}),
		}},
		{"+ step merging (full optimizer)", []exrquy.Option{
			exrquy.WithOrdering(exrquy.Unordered),
		}},
	}

	var bags []string
	for _, st := range stages {
		eng := exrquy.New(st.opts...)
		eng.LoadXMark("auction.xml", 0.005)
		q, err := eng.Compile(q6)
		if err != nil {
			log.Fatal(err)
		}
		before, after := q.PlanStats()
		res, err := q.Execute()
		if err != nil {
			log.Fatal(err)
		}
		items, _ := res.Items()
		sort.Strings(items)
		bags = append(bags, strings.Join(items, " "))

		fmt.Printf("== %s ==\n", st.name)
		fmt.Printf("   plan: %d -> %d operators, %d -> %d sorts (ρ), %d -> %d stamps (#)\n",
			before.Operators, after.Operators, before.Sorts, after.Sorts,
			before.Stamps, after.Stamps)
		fmt.Printf("   time: %v\n", res.Elapsed())
		fmt.Printf("   result (as multiset): %s\n\n", bags[len(bags)-1])
	}

	for i := 1; i < len(bags); i++ {
		if bags[i] != bags[0] {
			log.Fatalf("stage %d changed the result multiset!", i)
		}
	}
	fmt.Println("all stages produce the same multiset — order indifference preserved semantics")

	// For the curious: the fully optimized plan.
	eng := exrquy.New(exrquy.WithOrdering(exrquy.Unordered))
	eng.LoadXMark("auction.xml", 0.005)
	q, _ := eng.Compile(q6)
	fmt.Println("\nfinal plan (cf. Figure 9 + §7):")
	fmt.Print(q.Explain())
}
