// Quickstart: load a document, run queries through the eXrQuy pipeline,
// and reproduce the paper's §1 example — the node set union '|' decaying
// to a cheap concatenation ',' under unordered { }.
package main

import (
	"fmt"
	"log"

	exrquy "repro"
)

func main() {
	eng := exrquy.New()

	// The XML fragment of the paper's Figure 1.
	if err := eng.LoadDocumentString("t.xml", `<a><b><c/><d/></b><c/></a>`); err != nil {
		log.Fatal(err)
	}

	// Expression (1): document order is established after the union.
	res, err := eng.Query(`doc("t.xml")/a//(c|d)`)
	if err != nil {
		log.Fatal(err)
	}
	xml, _ := res.XML()
	fmt.Println("ordered   $t//(c|d)            =", xml) // <c/><d/><c/> in document order

	// The same expression under unordered { }: any permutation is
	// admissible; the compiler exploits that (Figure 10 of the paper).
	res, err = eng.Query(`unordered { doc("t.xml")/a//(c|d) }`)
	if err != nil {
		log.Fatal(err)
	}
	xml, _ = res.XML()
	fmt.Println("unordered { $t//(c|d) }        =", xml)

	// Plans make the difference visible: count the sorts (ρ).
	for _, q := range []string{
		`doc("t.xml")/a//(c|d)`,
		`unordered { doc("t.xml")/a//(c|d) }`,
	} {
		cq, err := eng.Compile(q)
		if err != nil {
			log.Fatal(err)
		}
		_, after := cq.PlanStats()
		fmt.Printf("plan for %-34s: %2d operators, %d sorts (ρ), %d stamps (#)\n",
			q, after.Operators, after.Sorts, after.Stamps)
	}

	// FLWOR with positional variables — Expression (4): even under
	// ordering mode unordered, $p keeps reflecting the binding position.
	res, err = eng.Query(`for $x at $p in ("a","b","c")
		return <e pos="{ $p }">{ $x }</e>`)
	if err != nil {
		log.Fatal(err)
	}
	xml, _ = res.XML()
	fmt.Println("positional for                 =", xml)

	// Aggregates are order indifferent (Rule FN:COUNT): this plan carries
	// no order bookkeeping at all after optimization.
	res, err = eng.Query(`count(doc("t.xml")/a//(c|d))`)
	if err != nil {
		log.Fatal(err)
	}
	xml, _ = res.XML()
	fmt.Println("count($t//(c|d))               =", xml)

	// The reference interpreter (strict ordered semantics) is available
	// for differential checks.
	ref, err := eng.Reference(`doc("t.xml")/a//(c|d)`)
	if err != nil {
		log.Fatal(err)
	}
	rxml, _ := ref.XML()
	fmt.Println("reference interpreter agrees   =", rxml == "<c/><d/><c/>")
}
