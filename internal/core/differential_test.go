package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// The differential suite is the repository's central correctness gate:
// for a corpus of queries, the compiled relational pipeline must agree
// with the reference tree-walking interpreter.
//
//   - baseline (indifference off) and indifference-on under ordering mode
//     ordered: byte-identical serialized results (exceptions: queries
//     whose result order is implementation-dependent even under ordered
//     semantics, e.g. fn:distinct-values — compared as sorted bags);
//   - indifference-on under ordering mode unordered: results compared as
//     sorted bags of serialized items (any permutation is admissible).

type diffCase struct {
	name  string
	query string
	// bagOnly marks queries whose ordered-mode result order is
	// implementation-dependent (distinct-values).
	bagOnly bool
}

var diffDocs = map[string]string{
	"t.xml": `<a><b><c/><d/></b><c/></a>`,
	"auction-mini.xml": `<site>
	  <regions>
	    <europe>
	      <item id="item0"><location>Germany</location><quantity>1</quantity><name>gold brooch</name>
	        <description><text>vintage gold piece</text></description>
	        <incategory category="category0"/></item>
	      <item id="item1"><location>France</location><quantity>2</quantity><name>silver ring</name>
	        <description><parlist><listitem><text>plain</text></listitem></parlist></description>
	        <incategory category="category1"/></item>
	    </europe>
	    <namerica>
	      <item id="item2"><location>United States</location><quantity>5</quantity><name>oak table</name>
	        <description><text>carved oak with gold inlay</text></description>
	        <incategory category="category0"/></item>
	    </namerica>
	  </regions>
	  <people>
	    <person id="person0"><name>Ana Silva</name><emailaddress>a@x</emailaddress>
	      <homepage>http://x/~ana</homepage>
	      <profile income="52000.00"><interest category="category0"/><age>34</age></profile></person>
	    <person id="person1"><name>Ben Kumar</name><emailaddress>b@x</emailaddress>
	      <profile income="9000.00"><interest category="category1"/></profile></person>
	    <person id="person2"><name>Cleo Chen</name><emailaddress>c@x</emailaddress></person>
	  </people>
	  <open_auctions>
	    <open_auction id="open_auction0">
	      <initial>5.50</initial>
	      <bidder><date>01/02/1999</date><personref person="person0"/><increase>3.00</increase></bidder>
	      <bidder><date>02/02/1999</date><personref person="person1"/><increase>7.50</increase></bidder>
	      <current>16.00</current>
	      <itemref item="item0"/><seller person="person1"/><quantity>1</quantity></open_auction>
	    <open_auction id="open_auction1">
	      <initial>120.00</initial>
	      <current>120.00</current>
	      <itemref item="item2"/><seller person="person0"/><quantity>2</quantity></open_auction>
	  </open_auctions>
	  <closed_auctions>
	    <closed_auction><seller person="person0"/><buyer person="person1"/>
	      <itemref item="item1"/><price>42.00</price><quantity>1</quantity></closed_auction>
	    <closed_auction><seller person="person2"/><buyer person="person0"/>
	      <itemref item="item0"/><price>12.50</price><quantity>1</quantity></closed_auction>
	  </closed_auctions>
	</site>`,
}

const bindT = `let $t := doc("t.xml")/a return `
const bindA = `let $a := doc("auction-mini.xml")/site return `

var diffCases = []diffCase{
	{name: "literal-int", query: `42`},
	{name: "literal-seq", query: `(1, 2.5, "x", true())`},
	{name: "empty-seq", query: `()`},
	{name: "arith", query: `(1 + 2 * 3, 7 idiv 2, 7 mod 2, 7 div 2, -(4 - 6))`},
	{name: "paper-expr1", query: bindT + `$t//(c|d)`},
	{name: "paper-expr2", query: bindT + `(unordered { $t//c }, unordered { $t//d })`},
	{name: "paper-expr3", query: bindT + `(let $b := $t//b, $d := $t//d, $e := <e>{ $d, $b }</e>
		return ($b << $d, $e/b << $e/d))`},
	{name: "paper-expr4", query: `for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>`},
	{name: "paper-expr5", query: `for $x in (1,2) return ($x, $x * 10)`},
	{name: "paper-expr6", query: `for $x in (1,2) for $y in (10,20) return <a>{ $x, $y }</a>`},
	{name: "let-unfold", query: bindT + `(let $c2 := ($t//c)[2] return unordered { $c2 })`},
	{name: "steps-child", query: bindA + `$a/people/person/name`},
	{name: "steps-desc", query: bindA + `$a//item/name/text()`},
	{name: "steps-attr", query: bindA + `data($a/people/person/@id)`},
	{name: "steps-wild", query: bindA + `$a/regions/*/item/name`},
	{name: "steps-parent", query: bindA + `data($a//initial/../@id)`},
	{name: "steps-self", query: bindA + `data($a//item/self::item/@id)`},
	{name: "pred-value", query: bindA + `$a/people/person[@id = "person0"]/name/text()`},
	{name: "pred-pos", query: bindA + `$a/open_auctions/open_auction/bidder[1]/increase/text()`},
	{name: "pred-last", query: bindA + `$a/open_auctions/open_auction/bidder[last()]/increase/text()`},
	{name: "pred-position", query: bindA + `data($a/people/person[position() >= 2]/@id)`},
	{name: "pred-exists", query: bindA + `$a/people/person[profile/@income]/name`},
	{name: "pred-nested", query: bindA + `$a/people/person[profile[@income > 10000]]/name`},
	{name: "pred-filter", query: `(1, 2, 3, 4)[. > 2]`},
	{name: "flwor-basic", query: bindA + `for $p in $a/people/person return $p/name/text()`},
	{name: "flwor-where", query: bindA + `for $p in $a/people/person
		where $p/profile/@income > 10000 return $p/name/text()`},
	{name: "flwor-let", query: bindA + `for $p in $a/people/person
		let $n := $p/name return <x>{ $n/text() }</x>`},
	{name: "flwor-nested", query: bindA + `for $oa in $a/open_auctions/open_auction
		for $b in $oa/bidder return <bid auction="{ $oa/@id }">{ $b/increase/text() }</bid>`},
	{name: "flwor-orderby", query: bindA + `for $i in $a//item order by $i/location return $i/name/text()`},
	{name: "flwor-orderby-desc", query: bindA + `for $p in $a/people/person
		order by $p/profile/@income descending empty greatest return string($p/@id)`, bagOnly: false},
	{name: "flwor-orderby-two", query: `for $x in (3, 1, 2, 11) order by string-length(string($x)), $x descending return $x`},
	{name: "flwor-at", query: bindA + `for $p at $i in $a/people/person return concat(string($i), ":", $p/@id)`},
	{name: "quant-some", query: bindA + `for $oa in $a/open_auctions/open_auction
		where some $b in $oa/bidder satisfies $b/increase > 5 return string($oa/@id)`},
	{name: "quant-every", query: `every $x in (1, 2, 3) satisfies $x > 0`},
	{name: "quant-two-vars", query: `some $x in (1,2), $y in (10,20) satisfies $x * 10 = $y`},
	{name: "gencmp-existential", query: `((1, 2) = (2, 3), (1, 2) = (3, 4), (1, 5) < (3), () = (1))`},
	{name: "gencmp-untyped", query: bindA + `$a/people/person/profile/@income > 50000`},
	{name: "valuecmp", query: `(1 eq 1, 2 lt 1, "a" ne "b")`},
	{name: "nodecmp", query: bindT + `($t//b << ($t//c)[2], ($t//c)[1] is ($t//c)[1])`},
	{name: "setops", query: bindT + `(count($t//c | $t//d), count($t//* intersect $t//c), count($t//* except $t//c))`},
	{name: "union-order", query: bindT + `for $n in ($t//d | $t//c) return name($n)`},
	{name: "if-else", query: bindA + `for $p in $a/people/person
		return if ($p/homepage) then "web" else "none"`},
	{name: "logic", query: bindA + `for $p in $a/people/person
		where $p/profile/@income > 10000 and exists($p/homepage) return string($p/@id)`},
	{name: "count", query: bindA + `count($a//item)`},
	{name: "count-empty", query: bindA + `count($a/people/person[@id="nobody"])`},
	{name: "count-nested", query: bindA + `for $p in $a/people/person
		return <n>{ count($p/profile/interest) }</n>`},
	{name: "aggregates", query: `(sum((1, 2, 3)), sum(()), avg((1, 2, 3, 4)), max((3, 1, 2)), min((3, 1, 2)))`},
	{name: "agg-untyped", query: bindA + `sum($a/closed_auctions/closed_auction/price)`},
	{name: "agg-max-string", query: `max(("a", "c", "b"))`},
	{name: "empty-exists", query: bindA + `(empty($a/people/person), exists($a/nosuch))`},
	{name: "boolean-not", query: `(boolean(""), boolean("x"), not(0), boolean((1) = (1, 2)))`},
	{name: "string-fns", query: `(string(42), string(()), string-length("hello"),
		contains("gold ring", "gold"), starts-with("person0", "person"), concat("a", "b", "c"))`},
	{name: "string-of-node", query: bindA + `string(($a//item)[1]/name)`},
	{name: "data-number", query: `(number("4.5") * 2, count(data((1, "x"))))`},
	{name: "distinct-values", query: bindA + `distinct-values($a//incategory/@category)`, bagOnly: true},
	{name: "distinct-count", query: bindA + `count(distinct-values($a//incategory/@category))`},
	{name: "cardinality", query: bindA + `(zero-or-one($a/nosuch), string(exactly-one(($a//item)[1])/@id))`},
	{name: "name-fns", query: bindT + `for $n in $t//* return name($n)`},
	{name: "range", query: `(1 to 4, count(2 to 1), sum(1 to 10))`},
	{name: "constructor-nested", query: `<r a="1" b="x{ 1 + 1 }y"><inner>{ "t" }</inner>text</r>`},
	{name: "constructor-copy", query: bindT + `(let $e := <e>{ $t//b }</e> return count($e//c))`},
	{name: "constructor-attrs-from-content", query: bindA + `for $p in $a/people/person
		return <p>{ $p/@id }</p>`},
	{name: "constructor-empty", query: `<empty/>`},
	{name: "constructor-spacing", query: `<e>{ 1, 2, <x/>, 3 }</e>`},
	{name: "user-function", query: `declare function local:convert($v as xs:decimal?) as xs:decimal? { 2.20371 * $v };
		for $i in (10, 20) return local:convert($i)`},
	{name: "unordered-fn", query: bindT + `count(unordered($t//(c|d)))`},
	{name: "ordered-expr", query: bindT + `ordered { $t//c }`},
	{name: "mixed-doc-order", query: bindT + `$t/b/(c|d)`},
	{name: "deep-where-join", query: bindA + `for $p in $a/people/person
		let $l := for $i in $a/open_auctions/open_auction/initial
		          where $p/profile/@income > 5000 * $i
		          return $i
		return <items name="{ $p/name }">{ count($l) }</items>`},
	{name: "q20-style", query: bindA + `<result>
		<preferred>{ count($a/people/person/profile[@income >= 50000]) }</preferred>
		<standard>{ count($a/people/person/profile[@income < 50000 and @income >= 10000]) }</standard>
		<na>{ count(for $p in $a/people/person where empty($p/profile/@income) return $p) }</na>
		</result>`},
	{name: "q4-style", query: bindA + `for $oa in $a/open_auctions/open_auction
		where some $pr1 in $oa/bidder/personref[@person = "person0"],
		      $pr2 in $oa/bidder/personref[@person = "person1"]
		      satisfies $pr1 << $pr2
		return <history>{ $oa/initial/text() }</history>`},
	{name: "where-empty-path", query: bindA + `for $p in $a/people/person
		where empty($p/homepage) return string($p/@id)`},
	{name: "string-fns-2", query: `(substring("auction", 2), substring("auction", 2, 3),
		substring("gold", 0), substring("gold", 1.4, 1.8),
		normalize-space("  a   b  "), upper-case("Gold"), lower-case("Gold"),
		ends-with("person0", "0"))`},
	{name: "rounding", query: `(round(2.5), round(-2.5), floor(2.7), ceiling(2.1),
		abs(-3), abs(-3.5), round(7))`},
	{name: "string-join", query: bindA + `string-join(for $p in $a/people/person
		return string($p/name), ", ")`},
	{name: "string-join-order", query: `string-join(("c", "a", "b"), "-")`},
	{name: "substring-of-node", query: bindA + `substring(string(($a//item)[1]/name), 1, 4)`},
	// Per-context positional predicates (XPath predicates bind to the
	// step, not to the merged sequence) — regression tests for the bug
	// the differential fuzzer found.
	{name: "percontext-last", query: bindA + `$a//bidder[last()]/increase/text()`},
	{name: "percontext-first", query: bindA + `data($a//person/profile/interest[1]/@category)`},
	{name: "percontext-pos2", query: bindT + `$t//b/c[1]`},
	{name: "percontext-mixed", query: bindA + `$a//open_auction/bidder[increase > 1][1]/date/text()`},
	{name: "percontext-vs-filter", query: bindT + `(count($t//c[1]), count(($t//c)[1]))`},
}

func buildStore(t *testing.T) (*xmltree.Store, map[string][]uint32) {
	t.Helper()
	store := xmltree.NewStore()
	docs := make(map[string][]uint32)
	for name, src := range diffDocs {
		f, err := xmltree.ParseString(src, name, xmltree.ParseOptions{})
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		docs[name] = []uint32{store.Add(f)}
	}
	return store, docs
}

// bagOf canonicalizes a result as a sorted multiset of per-item
// serializations.
func bagOf(t *testing.T, store *xmltree.Store, items []interface{ Serialize() (string, error) }) []string {
	t.Helper()
	out := make([]string, len(items))
	for i, it := range items {
		s, err := it.Serialize()
		if err != nil {
			t.Fatalf("serialize item: %v", err)
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func runInterp(t *testing.T, store *xmltree.Store, docs map[string][]uint32, q string) (string, []string) {
	t.Helper()
	ip := interp.New(store, docs)
	res, err := ip.EvalString(q)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	s, err := res.SerializeXML()
	if err != nil {
		t.Fatalf("interp serialize: %v", err)
	}
	bag := make([]string, len(res.Items))
	for i, it := range res.Items {
		one, err := xmltree.SerializeItems(res.Store, res.Items[i:i+1])
		if err != nil {
			t.Fatalf("interp item serialize: %v", err)
		}
		bag[i] = one
		_ = it
	}
	sort.Strings(bag)
	return s, bag
}

func runPipeline(t *testing.T, store *xmltree.Store, docs map[string][]uint32, q string, cfg Config) (string, []string) {
	t.Helper()
	p, err := Prepare(q, cfg)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	res, err := p.Run(store, docs)
	if err != nil {
		t.Fatalf("run: %v\nplan:\n%s", err, p.Explain())
	}
	s, err := res.SerializeXML()
	if err != nil {
		t.Fatalf("pipeline serialize: %v", err)
	}
	bag := make([]string, len(res.Items))
	for i := range res.Items {
		one, err := xmltree.SerializeItems(res.Store, res.Items[i:i+1])
		if err != nil {
			t.Fatalf("pipeline item serialize: %v", err)
		}
		bag[i] = one
	}
	sort.Strings(bag)
	return s, bag
}

func bagsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDifferentialBaseline(t *testing.T) {
	store, docs := buildStore(t)
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantBag := runInterp(t, store, docs, tc.query)
			got, gotBag := runPipeline(t, store, docs, tc.query, BaselineConfig())
			if tc.bagOnly {
				if !bagsEqual(wantBag, gotBag) {
					t.Errorf("bag mismatch:\n got %v\nwant %v", gotBag, wantBag)
				}
				return
			}
			if got != want {
				t.Errorf("result mismatch:\n got %q\nwant %q", got, want)
			}
		})
	}
}

func TestDifferentialIndifferenceOrdered(t *testing.T) {
	store, docs := buildStore(t)
	for _, tc := range diffCases {
		t.Run(tc.name, func(t *testing.T) {
			want, wantBag := runInterp(t, store, docs, tc.query)
			got, gotBag := runPipeline(t, store, docs, tc.query, DefaultConfig())
			if tc.bagOnly {
				if !bagsEqual(wantBag, gotBag) {
					t.Errorf("bag mismatch:\n got %v\nwant %v", gotBag, wantBag)
				}
				return
			}
			if got != want {
				t.Errorf("result mismatch:\n got %q\nwant %q", got, want)
			}
		})
	}
}

// TestDifferentialParallel runs the whole corpus with the morsel-wise
// parallel executor (Parallelism = 4). Parallel morsels merge in
// deterministic serial-scan order, so the results must stay
// byte-identical to the serial pipeline — and hence agree with the
// interpreter exactly as the serial configurations do — under both the
// default and the baseline compiler, in ordered mode.
func TestDifferentialParallel(t *testing.T) {
	store, docs := buildStore(t)
	configs := []struct {
		name string
		cfg  Config
	}{
		{"indifference", DefaultConfig()},
		{"baseline", BaselineConfig()},
	}
	for _, cc := range configs {
		pcfg := cc.cfg
		pcfg.Parallelism = 4
		for _, tc := range diffCases {
			t.Run(cc.name+"/"+tc.name, func(t *testing.T) {
				serial, _ := runPipeline(t, store, docs, tc.query, cc.cfg)
				par, parBag := runPipeline(t, store, docs, tc.query, pcfg)
				if par != serial {
					t.Errorf("parallel differs from serial:\n got %q\nwant %q", par, serial)
				}
				want, wantBag := runInterp(t, store, docs, tc.query)
				if tc.bagOnly {
					if !bagsEqual(wantBag, parBag) {
						t.Errorf("bag mismatch vs interpreter:\n got %v\nwant %v", parBag, wantBag)
					}
					return
				}
				if par != want {
					t.Errorf("mismatch vs interpreter:\n got %q\nwant %q", par, want)
				}
			})
		}
	}
}

// TestDifferentialIndifferenceUnordered verifies that under ordering mode
// unordered the pipeline returns a permutation-equivalent result: the same
// multiset of items. (Element content order inside constructed nodes is
// still covered because each item's serialization includes its content.)
func TestDifferentialIndifferenceUnordered(t *testing.T) {
	store, docs := buildStore(t)
	unordered := xquery.Unordered
	cfg := DefaultConfig()
	cfg.ForceOrdering = &unordered
	for _, tc := range diffCases {
		if strings.Contains(tc.query, "at $") {
			// Positional variables under unordered mode bind positions of
			// an arbitrary realized order — values legitimately differ
			// from the interpreter's.
			continue
		}
		if strings.Contains(tc.name, "pred-pos") || strings.Contains(tc.name, "pred-last") ||
			strings.Contains(tc.name, "pred-position") || strings.Contains(tc.name, "let-unfold") {
			// Positional predicates select from an arbitrary order under
			// ordering mode unordered (§2.2's let-unfolding discussion).
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			_, wantBag := runInterp(t, store, docs, tc.query)
			_, gotBag := runPipeline(t, store, docs, tc.query, cfg)
			if !bagsEqual(wantBag, gotBag) {
				t.Errorf("bag mismatch:\n got %v\nwant %v", gotBag, wantBag)
			}
		})
	}
}
