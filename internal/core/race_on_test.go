//go:build race

package core

// raceEnabled relaxes wall-clock bounds in tests: the race detector
// slows the kernels (and thus the distance between cancellation polls)
// by an order of magnitude.
const raceEnabled = true
