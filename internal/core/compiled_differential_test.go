// The compiled-execution differential gate: the bytecode VM (Config.
// Compiled) must produce byte-identical serialized results to the
// tree-walking engine on the same plan, across the whole XMark corpus,
// every ordering mode, serial and parallel execution, typed and boxed
// column storage. The VM executes the same kernels in the same
// deterministic post-order as the walked engine (see algebra.Nodes), so
// equality is exact — no bag comparison, no exceptions.
//
// The test lives in package core_test because it drives the bench
// environment (internal/bench imports core).
package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/xdm"
	"repro/internal/xmarkq"
	"repro/internal/xquery"
)

func TestDifferentialCompiledVsWalked(t *testing.T) {
	factor := 0.01
	if testing.Short() {
		factor = 0.002
	}
	env := bench.NewEnv(factor)

	unordered := xquery.Unordered
	ucfg := core.DefaultConfig()
	ucfg.ForceOrdering = &unordered
	pcfg := core.DefaultConfig()
	pcfg.ForceOrdering = &unordered
	pcfg.Parallelism = 4
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"ordered", core.DefaultConfig()},
		{"unordered", ucfg},
		{"parallel", pcfg},
	}

	run := func(q xmarkq.Query, cfg core.Config, compiled bool) (string, error) {
		cfg.Compiled = compiled
		p, err := core.Prepare(q.Text, cfg)
		if err != nil {
			return "", fmt.Errorf("prepare: %w", err)
		}
		if compiled != (p.Program != nil) {
			return "", fmt.Errorf("Compiled=%v but Program=%v", compiled, p.Program != nil)
		}
		res, err := p.Run(env.Store, env.Docs)
		if err != nil {
			return "", fmt.Errorf("run: %w", err)
		}
		return res.SerializeXML()
	}

	defer func(prev bool) { xdm.ForceBoxed = prev }(xdm.ForceBoxed)
	for _, q := range xmarkq.All() {
		for _, m := range modes {
			for _, typed := range []bool{true, false} {
				cols := "typed"
				if !typed {
					cols = "boxed"
				}
				t.Run(fmt.Sprintf("%s/%s/%s", q.Name, m.name, cols), func(t *testing.T) {
					xdm.ForceBoxed = !typed
					defer func() { xdm.ForceBoxed = false }()
					walked, err := run(q, m.cfg, false)
					if err != nil {
						t.Fatalf("walked: %v", err)
					}
					compiled, err := run(q, m.cfg, true)
					if err != nil {
						t.Fatalf("compiled: %v", err)
					}
					if walked != compiled {
						t.Errorf("compiled result differs from walked\nwalked:   %.200q\ncompiled: %.200q", walked, compiled)
					}
				})
			}
		}
	}
}

// TestCompiledStatsKeyedByPlanNode pins the observability contract of
// compiled execution: an EXPLAIN ANALYZE run of a bytecode program
// produces per-operator statistics keyed by the same plan-node IDs the
// annotated plan prints, so xmarkbench -stats and ?analyze=1 join
// compiled runs back to #id lines with no translation layer.
func TestCompiledStatsKeyedByPlanNode(t *testing.T) {
	env := bench.NewEnv(0.002)
	cfg := core.DefaultConfig()
	q := xmarkq.Get(1)
	p, err := core.Prepare(q.Text, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Program == nil {
		t.Fatal("DefaultConfig did not compile a program")
	}
	res, annotated, err := p.Analyze(t.Context(), env.Store, env.Docs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || len(res.Stats.Ops) == 0 {
		t.Fatal("compiled analyze run produced no per-operator stats")
	}
	for _, op := range res.Stats.Ops {
		if op.Calls == 0 {
			t.Errorf("op #%d (%s) recorded no kernel calls", op.Node, op.Kind)
		}
		if !strings.Contains(annotated, fmt.Sprintf("#%d ", op.Node)) {
			t.Errorf("op stats node %d not present in annotated plan:\n%s", op.Node, annotated)
		}
	}
}
