package core

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/opt"
	"repro/internal/xquery"
)

// Plan-shape tests: these pin the structural claims of the paper's
// figures — where ρ (sort) operators appear, when they are traded for #,
// and what column dependency analysis removes.

// q6 is XMark Q6 as printed in the paper (Figure 6).
const q6 = `for $b in doc("auction.xml")/site/regions
return fn:count($b/descendant::item)`

const q11 = `let $auction := doc("auction.xml")
for $p in $auction/site/people/person
let $l := for $i in $auction/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i
          return $i
return <items name="{ $p/name }">{ fn:count($l) }</items>`

func mustPrepare(t *testing.T, src string, cfg Config) *Prepared {
	t.Helper()
	p, err := Prepare(src, cfg)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return p
}

func unorderedCfg(o opt.Options) Config {
	u := xquery.Unordered
	return Config{Indifference: true, ForceOrdering: &u, Opt: o}
}

// TestFigure6aOrderedPlan: under ordering mode ordered the Q6 plan
// realizes every order interaction with ρ — the paper counts five:
// three doc→seq (steps site, regions, descendant::item), one seq→iter
// (for binding), one iter→seq (result mapping).
func TestFigure6aOrderedPlan(t *testing.T) {
	p := mustPrepare(t, q6, BaselineConfig())
	if p.StatsBefore.RowNums != 5 {
		t.Errorf("ordered Q6 plan has %d rownums, want 5 (paper, Figure 6(a))\n%s",
			p.StatsBefore.RowNums, p.Explain())
	}
	if p.StatsBefore.RowIDs != 0 {
		t.Errorf("baseline plan must not contain #: got %d", p.StatsBefore.RowIDs)
	}
	if p.StatsBefore != p.StatsAfter {
		t.Error("baseline must not be optimized")
	}
}

// TestFigure6bUnorderedPlan: with declare ordering unordered, "all ρ
// operators but one have been traded for #" — the survivor implements the
// iter→seq interaction that ordering mode unordered does not disable.
func TestFigure6bUnorderedPlan(t *testing.T) {
	p := mustPrepare(t, q6, unorderedCfg(opt.Options{})) // rules on, optimizer off
	if p.StatsBefore.RowNums != 1 {
		t.Errorf("unordered Q6 plan has %d rownums, want 1 (paper, Figure 6(b))\n%s",
			p.StatsBefore.RowNums, p.Explain())
	}
	if p.StatsBefore.RowIDs == 0 {
		t.Error("unordered plan should contain # operators (LOC#/BIND#/FN:UNORDERED)")
	}
}

// TestFigure9ColumnAnalysis: column dependency analysis shrinks the plan
// substantially; the iter→seq ρ persists (Figure 9) until the §7
// relaxation is enabled too.
func TestFigure9ColumnAnalysis(t *testing.T) {
	o := opt.Options{ColumnAnalysis: true}
	p := mustPrepare(t, q6, unorderedCfg(o))
	if p.StatsAfter.Operators >= p.StatsBefore.Operators {
		t.Errorf("analysis did not shrink the plan: %d -> %d ops",
			p.StatsBefore.Operators, p.StatsAfter.Operators)
	}
	if p.StatsAfter.RowNums != 1 {
		t.Errorf("after analysis %d rownums remain, want 1 (Figure 9)\n%s",
			p.StatsAfter.RowNums, p.Explain())
	}
}

// TestSection7RownumRelaxation: property inference (constant iter at the
// top level, constant pos, arbitrary unique binding ids) degenerates the
// residual ρ of Figure 9 into a free # — "which ultimately removes any
// residual traces of order in the plan for Q6".
func TestSection7RownumRelaxation(t *testing.T) {
	o := opt.Options{ColumnAnalysis: true, RownumRelax: true}
	p := mustPrepare(t, q6, unorderedCfg(o))
	if p.StatsAfter.RowNums != 0 {
		t.Errorf("after relaxation %d rownums remain, want 0 (§7)\n%s",
			p.StatsAfter.RowNums, p.Explain())
	}
}

// TestStepMerge: once the ρ separating ⤋descendant-or-self::node() from
// ⤋child::item is gone, the steps merge into ⤋descendant::item — the
// rewrite behind the paper's Q6/Q7 outliers in Figure 12.
func TestStepMerge(t *testing.T) {
	src := `for $b in doc("auction.xml")/site//item return count($b/incategory)`
	p := mustPrepare(t, src, unorderedCfg(opt.AllOptions()))
	var descSteps, dosSteps int
	for _, n := range algebra.Nodes(p.Plan.Root) {
		if n.Kind != algebra.OpStep {
			continue
		}
		switch n.Axis {
		case xquery.AxisDescendant:
			descSteps++
		case xquery.AxisDescendantOrSelf:
			dosSteps++
		}
	}
	if descSteps == 0 || dosSteps != 0 {
		t.Errorf("step merge failed: descendant=%d, descendant-or-self=%d\n%s",
			descSteps, dosSteps, p.Explain())
	}
	// Note: with the optimizer on, the merge fires under ordering mode
	// ordered as well — the intermediate step's doc-order ρ is dead code
	// (only the final step's order is observable), so column analysis
	// removes it first. Only the rule-free baseline keeps the two steps
	// separated by a ρ.
	po := mustPrepare(t, src, BaselineConfig())
	dos := 0
	for _, n := range algebra.Nodes(po.Plan.Root) {
		if n.Kind == algebra.OpStep && n.Axis == xquery.AxisDescendantOrSelf {
			dos++
		}
	}
	if dos == 0 {
		t.Error("baseline plan must keep descendant-or-self (the ρ blocks the merge)")
	}
}

// TestFigure10UnionBecomesConcat: unordered { $t//(c|d) } loses both the
// document-order ρ after '|' and the duplicate elimination (the step
// results are provably disjoint): the node set union decays to sequence
// concatenation.
func TestFigure10UnionBecomesConcat(t *testing.T) {
	src := `unordered { doc("t.xml")/a//(c|d) }`
	p := mustPrepare(t, src, Config{Indifference: true, Opt: opt.AllOptions()})
	s := opt.PlanStats(p.Plan.Root)
	if s.RowNums != 0 {
		t.Errorf("union plan keeps %d rownums, want 0 (Figure 10)\n%s", s.RowNums, p.Explain())
	}
	if s.ByKind[algebra.OpDistinct] != 0 {
		t.Errorf("distinct survives over disjoint steps\n%s", p.Explain())
	}
	if s.ByKind[algebra.OpUnion] == 0 {
		t.Errorf("union disappeared entirely\n%s", p.Explain())
	}
	// Baseline keeps the order-aware union machinery.
	pb := mustPrepare(t, `doc("t.xml")/a//(c|d)`, BaselineConfig())
	sb := opt.PlanStats(pb.Plan.Root)
	if sb.ByKind[algebra.OpDistinct] == 0 || sb.RowNums == 0 {
		t.Error("baseline union plan should keep distinct and rownum")
	}
}

// TestQ11PlanReduction: §4.1 reports the Q11 DAG shrinking from 235 to
// 141 operators under analysis. Our algebra differs in detail; the claim
// reproduced is a large reduction (≥ 25 %).
func TestQ11PlanReduction(t *testing.T) {
	p := mustPrepare(t, q11, unorderedCfg(opt.AllOptions()))
	before, after := p.StatsBefore.Operators, p.StatsAfter.Operators
	if after >= before*4/5 {
		t.Errorf("Q11 plan reduction too small: %d -> %d operators", before, after)
	}
	t.Logf("Q11 plan: %d -> %d operators (paper: 235 -> 141)", before, after)
}

// TestQ11CountDropsBackmapSort: the modified compiler removes the
// iter→seq reordering of the join result feeding fn:count — the 45 % of
// Table 2 — in *either* ordering mode (Rule FN:COUNT carries no
// ordering-mode premise).
func TestQ11CountDropsBackmapSort(t *testing.T) {
	// Ordered mode, indifference on: the inner FLWOR's result mapping ρ
	// must be gone; the outer one (whose order is observable) stays.
	p := mustPrepare(t, q11, Config{Indifference: true, Opt: opt.AllOptions()})
	pb := mustPrepare(t, q11, BaselineConfig())
	if p.StatsAfter.RowNums >= pb.StatsAfter.RowNums {
		t.Errorf("indifference-on Q11 keeps %d rownums, baseline %d",
			p.StatsAfter.RowNums, pb.StatsAfter.RowNums)
	}
	t.Logf("Q11 rownums: baseline %d, indifference-on (ordered mode) %d",
		pb.StatsAfter.RowNums, p.StatsAfter.RowNums)
}

// TestOptimizedPlansStillCorrect re-runs a handful of differential cases
// with each optimizer pass individually disabled, guarding against a
// rewrite that is only correct in combination.
func TestOptimizedPlansStillCorrect(t *testing.T) {
	store, docs := buildStore(t)
	configs := map[string]opt.Options{
		"analysis-only": {ColumnAnalysis: true},
		"relax-only":    {ColumnAnalysis: true, RownumRelax: true},
		"merge-only":    {StepMerge: true},
		"disjoint-only": {DisjointDistinct: true},
		"all":           opt.AllOptions(),
	}
	for name, o := range configs {
		for _, tc := range diffCases {
			if tc.bagOnly {
				continue
			}
			want, _ := runInterp(t, store, docs, tc.query)
			got, _ := runPipeline(t, store, docs, tc.query, Config{Indifference: true, Opt: o})
			if got != want {
				t.Errorf("[%s] %s: got %q, want %q", name, tc.name, got, want)
			}
		}
	}
}
