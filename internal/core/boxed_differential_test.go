package core

import (
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// TestDifferentialTypedVsBoxed pins the typed column layer to the boxed
// []Item storage model bit for bit: every corpus query must serialize
// byte-identically whether columns are stored as flat typed slices (the
// default) or forced to boxed cells via xdm.ForceBoxed. This holds even
// under ordering mode unordered — both storage models run the same plan
// through the same kernels, so the realized arbitrary order must agree
// too; any divergence means a typed kernel changed semantics, not just
// representation.
func TestDifferentialTypedVsBoxed(t *testing.T) {
	store, docs := buildStore(t)
	unordered := xquery.Unordered
	ucfg := DefaultConfig()
	ucfg.ForceOrdering = &unordered
	pcfg := DefaultConfig()
	pcfg.Parallelism = 4
	configs := []struct {
		name string
		cfg  Config
	}{
		{"baseline", BaselineConfig()},
		{"indifference", DefaultConfig()},
		{"unordered", ucfg},
		{"parallel", pcfg},
	}
	for _, cc := range configs {
		for _, tc := range diffCases {
			t.Run(cc.name+"/"+tc.name, func(t *testing.T) {
				typed, _ := runPipeline(t, store, docs, tc.query, cc.cfg)
				xdm.ForceBoxed = true
				defer func() { xdm.ForceBoxed = false }()
				boxed, _ := runPipeline(t, store, docs, tc.query, cc.cfg)
				if typed != boxed {
					t.Errorf("typed and boxed results differ:\n typed %q\n boxed %q", typed, boxed)
				}
			})
		}
	}
}
