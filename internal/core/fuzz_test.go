package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Grammar-directed differential fuzzing: random (but by construction
// valid) queries over a fixed document are run through the compiled
// pipeline in every configuration and compared against the reference
// interpreter. This complements the hand-written corpus with the
// combinations nobody thought to write down.

const fuzzDoc = `<r>
  <e k="1" g="a"><v>10</v><v>20</v><w>x</w></e>
  <e k="2" g="b"><v>30</v></e>
  <e k="3" g="a"><v>40</v><v>50</v><u><v>60</v></u></e>
  <e k="4"><w>y</w></e>
</r>`

// qgen generates random query strings. Depth bounds recursion; vars
// tracks in-scope node variables usable as path roots.
type qgen struct {
	r    *rand.Rand
	vars []string
	// inPred is true while generating a step predicate, where the context
	// item "." is defined.
	inPred bool
}

func (g *qgen) pick(opts ...string) string { return opts[g.r.Intn(len(opts))] }

// nodePath produces a node-sequence expression.
func (g *qgen) nodePath(depth int) string {
	var root string
	if len(g.vars) > 0 && g.r.Intn(2) == 0 {
		root = "$" + g.vars[g.r.Intn(len(g.vars))]
	} else {
		root = `doc("f.xml")/r`
	}
	steps := []string{
		"/e", "//v", "/e/v", "//e", "/e/u/v", "//w", "/e/@k", "//*",
	}
	p := root + g.pick(steps...)
	if depth > 0 {
		switch g.r.Intn(5) {
		case 0:
			p += fmt.Sprintf("[%d]", 1+g.r.Intn(3))
		case 1:
			p += "[last()]"
		case 2:
			p = "(" + p + " | " + g.nodePath(0) + ")"
		case 3:
			saved := g.inPred
			g.inPred = true
			p += "[" + g.boolExpr(depth-1) + "]"
			g.inPred = saved
		}
	}
	return p
}

// atomicExpr produces a singleton-or-empty atomic expression.
func (g *qgen) atomicExpr(depth int) string {
	if depth <= 0 {
		return g.pick("1", "2", `"a"`, "7.5", "0")
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("count(%s)", g.seqExpr(depth-1))
	case 1:
		return fmt.Sprintf("sum(%s)", g.numSeq(depth-1))
	case 2:
		return fmt.Sprintf("(%s + %s)", g.atomicExpr(depth-1), g.atomicExpr(0))
	case 3:
		return fmt.Sprintf("string((%s)[1])", g.nodePath(0))
	case 4:
		return fmt.Sprintf("max(%s)", g.numSeq(depth-1))
	default:
		return g.pick("1", "42", `"b"`)
	}
}

// numSeq produces a sequence of numbers (possibly node-derived).
func (g *qgen) numSeq(depth int) string {
	switch g.r.Intn(3) {
	case 0:
		var root string
		if len(g.vars) > 0 && g.r.Intn(2) == 0 {
			root = "$" + g.vars[g.r.Intn(len(g.vars))]
		} else {
			root = `doc("f.xml")/r`
		}
		return root + "//v"
	case 1:
		return fmt.Sprintf("(%s, %s)", g.atomicExpr(0), g.atomicExpr(0))
	default:
		return fmt.Sprintf("(1 to %d)", 1+g.r.Intn(5))
	}
}

func (g *qgen) boolExpr(depth int) string {
	if depth <= 0 {
		if g.inPred {
			return g.pick("true()", "1 = 1", ". > 1", "exists(.)")
		}
		return g.pick("true()", "1 = 1", "2 > 1", "false()")
	}
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprintf("%s > %s", g.numSeq(depth-1), g.atomicExpr(0))
	case 1:
		return fmt.Sprintf("exists(%s)", g.nodePath(depth-1))
	case 2:
		return fmt.Sprintf("empty(%s)", g.nodePath(depth-1))
	case 3:
		return fmt.Sprintf("(%s and %s)", g.boolExpr(depth-1), g.boolExpr(0))
	case 4:
		return fmt.Sprintf("(%s or %s)", g.boolExpr(depth-1), g.boolExpr(0))
	default:
		return fmt.Sprintf("some $q in %s satisfies $q > %d", g.numSeq(depth-1), g.r.Intn(40))
	}
}

// seqExpr produces an arbitrary item-sequence expression.
func (g *qgen) seqExpr(depth int) string {
	if depth <= 0 {
		return g.pick(g.nodePath(0), "(1, 2)", `"s"`, "()")
	}
	switch g.r.Intn(8) {
	case 0:
		return g.nodePath(depth)
	case 1:
		v := fmt.Sprintf("x%d", len(g.vars))
		g.vars = append(g.vars, v)
		inner := g.seqExpr(depth - 1)
		g.vars = g.vars[:len(g.vars)-1]
		where := ""
		if g.r.Intn(2) == 0 {
			g.vars = append(g.vars, v)
			where = " where " + g.boolExpr(depth-1)
			g.vars = g.vars[:len(g.vars)-1]
		}
		return fmt.Sprintf("for $%s in %s%s return %s", v, g.nodePath(depth-1), where, inner)
	case 2:
		return fmt.Sprintf("(%s, %s)", g.seqExpr(depth-1), g.seqExpr(depth-1))
	case 3:
		return fmt.Sprintf("if (%s) then %s else %s",
			g.boolExpr(depth-1), g.seqExpr(depth-1), g.seqExpr(0))
	case 4:
		return fmt.Sprintf("<t a=\"%%{ %s }\">{ %s }</t>", g.atomicExpr(depth-1), g.seqExpr(depth-1))
	case 5:
		return g.atomicExpr(depth)
	case 6:
		v := fmt.Sprintf("l%d", len(g.vars))
		g.vars = append(g.vars, v)
		body := g.seqExpr(depth - 1)
		g.vars = g.vars[:len(g.vars)-1]
		return fmt.Sprintf("let $%s := %s return %s", v, g.seqExpr(depth-1), body)
	default:
		return fmt.Sprintf("for $s%d in %s order by $s%d return $s%d",
			depth, g.numSeq(depth-1), depth, depth)
	}
}

func TestFuzzDifferential(t *testing.T) {
	store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
	seeds := 300
	if testing.Short() {
		seeds = 60
	}
	for seed := 0; seed < seeds; seed++ {
		g := &qgen{r: rand.New(rand.NewSource(int64(seed)))}
		query := strings.ReplaceAll(g.seqExpr(3), "%{", "{")
		if _, err := xquery.Parse(query); err != nil {
			t.Fatalf("seed %d generated an unparsable query %q: %v", seed, query, err)
		}
		// Oracle. Dynamic errors (e.g. EBV of a multi-item sequence) are
		// fine as long as the pipeline errors too.
		want, wantBag, refErr := tryInterp(store, docs, query)
		for name, cfg := range map[string]Config{
			"baseline":     BaselineConfig(),
			"indifference": DefaultConfig(),
		} {
			got, _, err := tryPipeline(store, docs, query, cfg)
			if (err != nil) != (refErr != nil) {
				// Error-versus-result divergences are conforming when they
				// stem from evaluation-strategy freedom (XQuery 1.0 §2.3.4):
				// the interpreter evaluates let bindings and condition
				// branches lazily, the compiled pipeline evaluates
				// loop-lifted (and hoisted) plans eagerly. Results, when
				// both sides produce one, must still agree — checked below.
				continue
			}
			if refErr != nil {
				continue
			}
			if got != want {
				t.Errorf("seed %d [%s] result mismatch:\n query: %s\n got:  %q\n want: %q",
					seed, name, query, got, want)
			}
		}
		if refErr == nil {
			u := xquery.Unordered
			cfg := DefaultConfig()
			cfg.ForceOrdering = &u
			if !queryOrderSensitiveUnderUnordered(query) {
				_, gotBag, err := tryPipeline(store, docs, query, cfg)
				if err != nil {
					t.Errorf("seed %d [unordered] error: %v\n query: %s", seed, err, query)
				} else if !bagsEqual(gotBag, wantBag) {
					t.Errorf("seed %d [unordered] bag mismatch:\n query: %s\n got:  %v\n want: %v",
						seed, query, gotBag, wantBag)
				}
			}
		}
	}
}

// queryOrderSensitiveUnderUnordered reports whether the query may
// legitimately produce different *values* (not just a different order)
// under ordering mode unordered: positional selection from an arbitrary
// order, or string() of the "first" node.
func queryOrderSensitiveUnderUnordered(q string) bool {
	return strings.Contains(q, "[1]") || strings.Contains(q, "[2]") ||
		strings.Contains(q, "[3]") || strings.Contains(q, "[last()]") ||
		strings.Contains(q, ")[1]")
}

func buildStoreWith(t *testing.T, extra map[string]string) (*xmltree.Store, map[string][]uint32) {
	t.Helper()
	s, d := buildStore(t)
	for name, src := range extra {
		f, err := xmltree.ParseString(src, name, xmltree.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		d[name] = []uint32{s.Add(f)}
	}
	return s, d
}

// tryInterp evaluates with the oracle, returning the serialized result
// and per-item bag, or an error (dynamic errors are expected outcomes for
// fuzzed queries).
func tryInterp(store *xmltree.Store, docs map[string][]uint32, q string) (string, []string, error) {
	ip := interp.New(store, docs)
	res, err := ip.EvalString(q)
	if err != nil {
		return "", nil, err
	}
	s, err := res.SerializeXML()
	if err != nil {
		return "", nil, err
	}
	bag := make([]string, len(res.Items))
	for i := range res.Items {
		one, err := xmltree.SerializeItems(res.Store, res.Items[i:i+1])
		if err != nil {
			return "", nil, err
		}
		bag[i] = one
	}
	sort.Strings(bag)
	return s, bag, nil
}

// tryPipeline compiles and runs, returning result, bag, or error.
func tryPipeline(store *xmltree.Store, docs map[string][]uint32, q string, cfg Config) (string, []string, error) {
	p, err := Prepare(q, cfg)
	if err != nil {
		return "", nil, err
	}
	res, err := p.Run(store, docs)
	if err != nil {
		return "", nil, err
	}
	s, err := res.SerializeXML()
	if err != nil {
		return "", nil, err
	}
	bag := make([]string, len(res.Items))
	for i := range res.Items {
		one, err := xmltree.SerializeItems(res.Store, res.Items[i:i+1])
		if err != nil {
			return "", nil, err
		}
		bag[i] = one
	}
	sort.Strings(bag)
	return s, bag, nil
}
