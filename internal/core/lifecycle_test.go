package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/qerr"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
	"repro/internal/xmltree"
)

// lifecycleConfigs are the two execution paths every lifecycle guarantee
// must hold on: the serial engine and the morsel-wise parallel engine.
func lifecycleConfigs() map[string]Config {
	serial := DefaultConfig()
	par := DefaultConfig()
	par.Parallelism = 4
	return map[string]Config{"serial": serial, "parallel": par}
}

// TestCutoffTaxonomy checks that both cutoff classes surface through
// errors.Is on the serial and the parallel engine, and that the legacy
// engine.ErrCutoff identity still holds.
func TestCutoffTaxonomy(t *testing.T) {
	store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
	const q = `for $a in doc("f.xml")//e, $b in doc("f.xml")//e, $c in doc("f.xml")//e return $a/@k + $b/@k + $c/@k`
	for name, cfg := range lifecycleConfigs() {
		t.Run("timeout/"+name, func(t *testing.T) {
			c := cfg
			c.Timeout = time.Nanosecond
			p, err := Prepare(q, c)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			_, err = p.Run(store, docs)
			if err == nil {
				t.Fatal("1ns timeout did not fire")
			}
			for _, sentinel := range []error{qerr.ErrTimeout, qerr.ErrCutoff, engine.ErrCutoff} {
				if !errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false", err, sentinel)
				}
			}
			if errors.Is(err, qerr.ErrMemoryLimit) {
				t.Errorf("timeout misclassified as memory limit: %v", err)
			}
		})
		t.Run("memory/"+name, func(t *testing.T) {
			c := cfg
			c.MaxCells = 64
			p, err := Prepare(q, c)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			_, err = p.Run(store, docs)
			if err == nil {
				t.Fatal("64-cell memory limit did not fire")
			}
			for _, sentinel := range []error{qerr.ErrMemoryLimit, qerr.ErrCutoff, engine.ErrCutoff} {
				if !errors.Is(err, sentinel) {
					t.Errorf("errors.Is(%v, %v) = false", err, sentinel)
				}
			}
			if errors.Is(err, qerr.ErrTimeout) {
				t.Errorf("memory limit misclassified as timeout: %v", err)
			}
		})
	}
}

// TestPreCanceledContext: a context canceled before execution aborts
// immediately with both the taxonomy sentinel and the context cause.
func TestPreCanceledContext(t *testing.T) {
	store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, cfg := range lifecycleConfigs() {
		t.Run(name, func(t *testing.T) {
			p, err := Prepare(`doc("f.xml")//e`, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			_, err = p.RunContext(ctx, store, docs)
			if !errors.Is(err, qerr.ErrCanceled) {
				t.Errorf("not ErrCanceled: %v", err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("context cause lost: %v", err)
			}
		})
	}
}

// TestContextDeadline: a context deadline is reported as a timeout (the
// cutoff taxonomy), not as a plain cancellation, and carries the
// context's DeadlineExceeded cause.
func TestContextDeadline(t *testing.T) {
	store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
	const q = `for $a in doc("f.xml")//e, $b in doc("f.xml")//e return $a/@k + $b/@k`
	for name, cfg := range lifecycleConfigs() {
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			defer cancel()
			p, err := Prepare(q, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			_, err = p.RunContext(ctx, store, docs)
			if err == nil {
				t.Fatal("expired deadline did not abort")
			}
			if !errors.Is(err, qerr.ErrTimeout) || !errors.Is(err, qerr.ErrCutoff) {
				t.Errorf("deadline not classified as timeout cutoff: %v", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("context cause lost: %v", err)
			}
		})
	}
}

// TestCancelMidFlight is the headline robustness guarantee: canceling a
// long-running XMark join mid-execution returns promptly (well under the
// 100ms bound) on both engines, the error wraps context.Canceled, and no
// worker goroutines are left behind.
func TestCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second XMark instance")
	}
	store := xmltree.NewStore()
	frag := xmark.Generate(xmark.Config{Factor: 0.1})
	docs := map[string][]uint32{"auction.xml": {store.Add(frag)}}
	// Q11 is a non-equi join that runs for multiple seconds at factor
	// 0.1 — long enough that a 250ms cancellation is genuinely mid-flight.
	q := xmarkq.Get(11).Text
	// The 100ms acceptance bound assumes production kernel speed; the
	// race detector stretches the distance between cancellation polls.
	bound := 100 * time.Millisecond
	if raceEnabled {
		bound = time.Second
	}

	for name, cfg := range lifecycleConfigs() {
		t.Run(name, func(t *testing.T) {
			before := runtime.NumGoroutine()
			p, err := Prepare(q, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			type outcome struct {
				err     error
				settled time.Time
			}
			done := make(chan outcome, 1)
			go func() {
				_, err := p.RunContext(ctx, store, docs)
				done <- outcome{err, time.Now()}
			}()
			time.Sleep(250 * time.Millisecond)
			canceledAt := time.Now()
			cancel()
			select {
			case o := <-done:
				latency := o.settled.Sub(canceledAt)
				if o.err == nil {
					t.Fatal("canceled query returned a result")
				}
				if !errors.Is(o.err, context.Canceled) {
					t.Errorf("error does not wrap context.Canceled: %v", o.err)
				}
				if !errors.Is(o.err, qerr.ErrCanceled) {
					t.Errorf("error does not wrap qerr.ErrCanceled: %v", o.err)
				}
				if latency > bound {
					t.Errorf("cancellation latency %v exceeds the %v bound", latency, bound)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("query did not return within 10s of cancellation")
			}
			// All morsel workers must drain; poll because goroutine exit
			// is asynchronous with the error delivery.
			deadline := time.Now().Add(2 * time.Second)
			for {
				if runtime.NumGoroutine() <= before {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("goroutine leak after cancel: %d before, %d after",
						before, runtime.NumGoroutine())
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}

// TestPanicIsolation injects a panic into the engine's operator loop and
// requires it to surface as a diagnostic qerr.ErrInternal — with the
// pipeline phase and the optimized plan dump — instead of crashing.
func TestPanicIsolation(t *testing.T) {
	store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
	engine.EvalHook = func(n *algebra.Node) {
		panic("injected kernel fault")
	}
	defer func() { engine.EvalHook = nil }()
	for name, cfg := range lifecycleConfigs() {
		t.Run(name, func(t *testing.T) {
			p, err := Prepare(`doc("f.xml")//e`, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			_, err = p.Run(store, docs)
			if err == nil {
				t.Fatal("injected panic produced a result")
			}
			if !errors.Is(err, qerr.ErrInternal) {
				t.Fatalf("panic not classified internal: %v", err)
			}
			var qe *qerr.Error
			if !errors.As(err, &qe) {
				t.Fatalf("no *qerr.Error in chain: %v", err)
			}
			if qe.Phase == "" {
				t.Error("recovered panic lost its pipeline phase")
			}
			if qe.Plan == "" {
				t.Error("internal error carries no plan dump")
			}
			if len(qe.Stack) == 0 {
				t.Error("recovered panic carries no stack trace")
			}
		})
	}
}
