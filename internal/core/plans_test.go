package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/xmarkq"
	"repro/internal/xquery"
)

// Golden-plan snapshots: the optimized Explain rendering of every XMark
// query, in the baseline (ordered) and the order-indifferent (unordered,
// parallel-marked) configuration. The plans carry the paper's claims —
// which ρ sorts survive, which collapse to #, where [par] regions open —
// so an optimizer change that moves any of them must show up as a
// reviewed diff here, not as a silent plan drift.
//
// Regenerate after an intentional plan change with
//
//	go test ./internal/core -run TestGoldenPlans -update

var updateGolden = flag.Bool("update", false, "rewrite the golden plan files under testdata/plans")

// goldenConfigs are the two plan-shaping configurations worth pinning:
// the order-ignorant baseline and the full order-indifference pipeline
// under unordered mode with parallel marking on (Parallelism 2 makes
// opt.MarkParallel run; the marks are a plan property, not a timing).
func goldenConfigs() map[string]Config {
	un := xquery.Unordered
	unordered := DefaultConfig()
	unordered.ForceOrdering = &un
	unordered.Parallelism = 2
	return map[string]Config{
		"ordered":   BaselineConfig(),
		"unordered": unordered,
	}
}

func TestGoldenPlans(t *testing.T) {
	for _, q := range xmarkq.All() {
		for name, cfg := range goldenConfigs() {
			t.Run(fmt.Sprintf("%s/%s", q.Name, name), func(t *testing.T) {
				p, err := Prepare(q.Text, cfg)
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				got := p.Explain()
				path := filepath.Join("testdata", "plans", fmt.Sprintf("%s.%s.plan", q.Name, name))
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update to create): %v", err)
				}
				if got != string(want) {
					t.Errorf("plan drifted from %s\n-- got --\n%s-- want --\n%s", path, got, want)
				}
			})
		}
	}
}
