package core

import (
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/qerr"
)

// bigLiteral guards fuzz throughput: queries like "1 to 99999999" are
// legal but spend the whole per-exec budget materializing ranges.
var bigLiteral = regexp.MustCompile(`[0-9]{4,}`)

// FuzzQuery is the end-to-end differential fuzz target: arbitrary query
// text runs through the full compiled pipeline (parse → normalize →
// compile → optimize → execute) under tight cutoffs, and — when it
// produces a result — is checked against the reference interpreter on
// the same document. The lifecycle contract under fuzzing:
//
//   - no input may panic the public pipeline (ErrInternal anywhere fails),
//   - static failures are ErrParse/ErrCompile, runtime overruns are
//     cutoffs — all classified,
//   - when both evaluators succeed, their item bags agree (order-free
//     comparison; the hand-written corpus pins exact order separately), and
//   - the bytecode VM (Config.Compiled, the default) and the tree-walking
//     engine agree byte-for-byte on the same plan — same kernels, same
//     deterministic order, so equality is exact.
func FuzzQuery(f *testing.F) {
	for _, seed := range []string{
		`for $x in doc("f.xml")/r/e return $x/v`,
		`count(doc("f.xml")//v)`,
		`for $e in doc("f.xml")//e where $e/@k > 1 return <o g="{ $e/@g }">{ $e/v }</o>`,
		`sum(for $v in doc("f.xml")//v return $v * 2)`,
		`(doc("f.xml")//v)[2]`,
		`some $v in doc("f.xml")//v satisfies $v > 35`,
		`for $e in doc("f.xml")/r/e order by $e/@k descending return $e/@g`,
		`let $s := (1, 2, 3) return $s[. > 1]`,
		`for $a in doc("f.xml")//e, $b in doc("f.xml")//v where $a/@k = $b return $a`,
		`doc("missing.xml")//x`,
		`1 + `,
		`declare variable $x external; $x`,
		`<t>{ doc("f.xml")//w/text() }</t>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			t.Skip("input cap")
		}
		if bigLiteral.MatchString(src) {
			t.Skip("large numeric literal")
		}
		// Ordering mode unordered legitimately changes positional results;
		// the differential check below assumes deterministic semantics.
		if strings.Contains(src, "unordered") || strings.Contains(src, "ordering") {
			t.Skip("order-indifferent semantics")
		}
		store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
		cfg := DefaultConfig()
		cfg.MaxCells = 1 << 18
		cfg.Timeout = 2 * time.Second
		gotXML, gotBag, err := tryPipeline(store, docs, src, cfg)
		if err != nil {
			if errors.Is(err, qerr.ErrInternal) {
				t.Fatalf("pipeline panic on %q: %v", src, err)
			}
			// Static and dynamic failures are expected outcomes for fuzzed
			// queries — but static ones must carry their classification.
			return
		}
		// Executor differential: the same plan through the tree-walking
		// engine must serialize identically. Walked-side dynamic errors are
		// not tolerated here — both executors run the same kernels on the
		// same data, so any divergence (result or error) is a bug.
		wcfg := cfg
		wcfg.Compiled = false
		walkedXML, _, werr := tryPipeline(store, docs, src, wcfg)
		if werr != nil {
			// A borderline query can hit the wall-clock cutoff on one
			// executor and not the other; any other divergent error is a bug.
			if errors.Is(werr, qerr.ErrTimeout) {
				return
			}
			t.Fatalf("walked engine failed where compiled succeeded on %q: %v", src, werr)
		}
		if walkedXML != gotXML {
			t.Fatalf("compiled/walked divergence on %q:\n compiled: %q\n walked:   %q", src, gotXML, walkedXML)
		}
		// The pipeline produced a result: the interpreter is the oracle.
		// Its own dynamic errors are tolerated (it evaluates lazily where
		// the loop-lifted pipeline is eager, and vice versa for hoisted
		// subexpressions), but a divergent *result* is a bug.
		_, wantBag, refErr := tryInterp(store, docs, src)
		if refErr != nil {
			if errors.Is(refErr, qerr.ErrInternal) {
				t.Fatalf("interpreter panic on %q: %v", src, refErr)
			}
			return
		}
		if !bagsEqual(gotBag, wantBag) {
			t.Fatalf("differential mismatch on %q:\n pipeline: %v\n interp:   %v", src, gotBag, wantBag)
		}
	})
}
