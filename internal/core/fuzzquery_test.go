package core

import (
	"errors"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/qerr"
)

// bigLiteral guards fuzz throughput: queries like "1 to 99999999" are
// legal but spend the whole per-exec budget materializing ranges.
var bigLiteral = regexp.MustCompile(`[0-9]{4,}`)

// FuzzQuery is the end-to-end differential fuzz target: arbitrary query
// text runs through the full compiled pipeline (parse → normalize →
// compile → optimize → execute) under tight cutoffs, and — when it
// produces a result — is checked against the reference interpreter on
// the same document. The lifecycle contract under fuzzing:
//
//   - no input may panic the public pipeline (ErrInternal anywhere fails),
//   - static failures are ErrParse/ErrCompile, runtime overruns are
//     cutoffs — all classified, and
//   - when both evaluators succeed, their item bags agree (order-free
//     comparison; the hand-written corpus pins exact order separately).
func FuzzQuery(f *testing.F) {
	for _, seed := range []string{
		`for $x in doc("f.xml")/r/e return $x/v`,
		`count(doc("f.xml")//v)`,
		`for $e in doc("f.xml")//e where $e/@k > 1 return <o g="{ $e/@g }">{ $e/v }</o>`,
		`sum(for $v in doc("f.xml")//v return $v * 2)`,
		`(doc("f.xml")//v)[2]`,
		`some $v in doc("f.xml")//v satisfies $v > 35`,
		`for $e in doc("f.xml")/r/e order by $e/@k descending return $e/@g`,
		`let $s := (1, 2, 3) return $s[. > 1]`,
		`for $a in doc("f.xml")//e, $b in doc("f.xml")//v where $a/@k = $b return $a`,
		`doc("missing.xml")//x`,
		`1 + `,
		`declare variable $x external; $x`,
		`<t>{ doc("f.xml")//w/text() }</t>`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			t.Skip("input cap")
		}
		if bigLiteral.MatchString(src) {
			t.Skip("large numeric literal")
		}
		// Ordering mode unordered legitimately changes positional results;
		// the differential check below assumes deterministic semantics.
		if strings.Contains(src, "unordered") || strings.Contains(src, "ordering") {
			t.Skip("order-indifferent semantics")
		}
		store, docs := buildStoreWith(t, map[string]string{"f.xml": fuzzDoc})
		cfg := DefaultConfig()
		cfg.MaxCells = 1 << 18
		cfg.Timeout = 2 * time.Second
		_, gotBag, err := tryPipeline(store, docs, src, cfg)
		if err != nil {
			if errors.Is(err, qerr.ErrInternal) {
				t.Fatalf("pipeline panic on %q: %v", src, err)
			}
			// Static and dynamic failures are expected outcomes for fuzzed
			// queries — but static ones must carry their classification.
			return
		}
		// The pipeline produced a result: the interpreter is the oracle.
		// Its own dynamic errors are tolerated (it evaluates lazily where
		// the loop-lifted pipeline is eager, and vice versa for hoisted
		// subexpressions), but a divergent *result* is a bug.
		_, wantBag, refErr := tryInterp(store, docs, src)
		if refErr != nil {
			if errors.Is(refErr, qerr.ErrInternal) {
				t.Fatalf("interpreter panic on %q: %v", src, refErr)
			}
			return
		}
		if !bagsEqual(gotBag, wantBag) {
			t.Fatalf("differential mismatch on %q:\n pipeline: %v\n interp:   %v", src, gotBag, wantBag)
		}
	})
}
