// Package core wires the eXrQuy pipeline together — the paper's primary
// contribution as one composable unit:
//
//	parse (xquery) → normalize (norm) → compile (compile)
//	      → optimize (opt: column dependency analysis & friends)
//	      → execute (engine)
//
// The Config switches mirror the paper's experimental configurations: the
// baseline compiler that "proceeds as if strict ordering is required
// throughout" versus the order-indifference-aware compiler of §4, with
// each optimizer rewrite individually controllable for ablations.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/algebra"
	"repro/internal/compile"
	"repro/internal/engine"
	"repro/internal/governor"
	"repro/internal/norm"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/parallel"
	"repro/internal/qerr"
	"repro/internal/resilience"
	"repro/internal/vm"
	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Config selects pipeline behaviour.
type Config struct {
	// Indifference enables the order-indifference machinery end to end:
	// fn:unordered() insertion during normalization (Figure 4 rules),
	// the compiler rules FN:UNORDERED/LOC#/BIND# (Figure 7), and the
	// optimizer (column dependency analysis, §4.1). Off = the baseline.
	Indifference bool
	// ForceOrdering overrides the module prolog's ordering mode when
	// non-nil (the experiments inject "declare ordering unordered" this
	// way instead of editing query text).
	ForceOrdering *xquery.OrderingMode
	// Opt configures the optimizer; ignored unless Indifference is set.
	Opt opt.Options
	// Timeout bounds execution wall-clock time (the paper used 30 s).
	Timeout time.Duration
	// MaxCells bounds materialized intermediate results (0 = unlimited);
	// exceeding it aborts with a cutoff error, like the gaps in the
	// paper's Figure 12.
	MaxCells int64
	// InterestingOrders enables the engine's physical sortedness check on
	// ρ (§6/[15], orthogonal to the paper's technique; off by default).
	InterestingOrders bool
	// Parallelism switches execution to the morsel-wise parallel engine:
	// order-dead plan regions (opt.MarkParallel) are evaluated across a
	// worker pool of this size. 0 or 1 keeps the serial engine (the
	// paper's configuration); negative means runtime.GOMAXPROCS(0).
	Parallelism int
	// Compiled flattens the optimized plan into a linear register program
	// (internal/vm) at Prepare time; executions then run the bytecode
	// instead of walking the DAG, and a cached Prepared skips every
	// static phase including the flatten. On in DefaultConfig; off keeps
	// the tree-walking engine, which remains the differential reference
	// (results are byte-identical either way).
	Compiled bool
	// Vars binds external prolog variables (declare variable $x external).
	Vars map[string][]xdm.Item
	// Collect turns on per-operator statistics collection (obs.OpStats):
	// every Run attaches an obs.RunStats to its Result, and
	// Prepared.ExplainAnalyze can annotate the plan with measured rows and
	// times. Off (the default) costs one nil check per operator — zero
	// allocations on the hot path.
	Collect bool
	// Tracer, when non-nil, receives a span per pipeline phase (category
	// "phase") and per executed operator ("op"); the parallel executor adds
	// per-morsel spans ("morsel") on worker tracks. obs.NewJSONTrace writes
	// chrome://tracing-compatible output.
	Tracer obs.Tracer
	// Governor, when non-nil, routes every execution through the
	// process-wide resource governor: admission control (possibly
	// queueing, possibly shedding with qerr.ErrOverload), a shared byte
	// ledger charged alongside the per-query cell budget, and graceful
	// degradation — a lease admitted under pressure runs its Par-marked
	// plan regions on the serial engine. Shared across Configs/Engines by
	// design; the budgets are process-global.
	Governor *governor.Governor
	// StoreProbe, when non-nil, is a per-execution probe factory: it is
	// invoked once at the start of every RunContext and the closure it
	// returns is polled at every cooperative poll point of that
	// execution (engine.Options.StoreProbe). The factory shape lets the
	// mounting engine give each execution its own fault-observation
	// state — e.g. "inject at most one storage fault per execution" —
	// while the probe itself stays a two-atomic-load fast path.
	StoreProbe func() func() error
}

// DefaultConfig enables everything — the paper's "order indifference
// enabled" configuration.
func DefaultConfig() Config {
	return Config{Indifference: true, Opt: opt.AllOptions(), Compiled: true}
}

// BaselineConfig is the order-ignorant configuration of §5.
func BaselineConfig() Config { return Config{} }

// Prepared is a compiled query ready for (repeated) execution.
type Prepared struct {
	Module *xquery.Module
	Plan   *compile.Plan
	// StatsBefore/StatsAfter hold plan statistics before and after
	// optimization (equal when the optimizer is off) — the data behind
	// the paper's Figure 6/9 and §4.1 plan-size claims.
	StatsBefore, StatsAfter struct {
		Operators, RowNums, RowIDs int
	}
	// Program is the bytecode-compiled form of the optimized plan, built
	// once at Prepare time (nil unless Config.Compiled). Document
	// bindings stay parameter slots resolved at each Run, so a cached
	// Prepared — the exrquyd plan cache stores these — is safe across
	// document reloads and concurrent executions.
	Program *vm.Program
	cfg     Config
}

// Prepare parses, normalizes, compiles and optimizes a query. Every
// static-phase failure comes back classified in the qerr taxonomy
// (ErrParse with position, ErrCompile) and every phase is panic-isolated:
// a pipeline bug tripped by a hostile query surfaces as qerr.ErrInternal
// naming the phase, never as a process crash.
func Prepare(src string, cfg Config) (*Prepared, error) {
	end := cfg.span("parse")
	mod, err := xquery.Parse(src)
	end()
	if err != nil {
		return nil, qerr.Ensure(qerr.ErrParse, "parse", err)
	}
	return PrepareModule(mod, cfg)
}

// noSpan is the shared no-op span closer handed out when tracing is off.
var noSpan = func() {}

// span opens a pipeline-phase span on the coordinator track (tid 0) when
// a Tracer is configured; the returned closer is never nil.
func (cfg Config) span(name string) func() {
	if cfg.Tracer == nil {
		return noSpan
	}
	return cfg.Tracer.StartSpan(0, "phase", name)
}

// PrepareModule is Prepare over an already-parsed module.
func PrepareModule(mod *xquery.Module, cfg Config) (p *Prepared, err error) {
	if cfg.ForceOrdering != nil {
		mod = &xquery.Module{Ordering: *cfg.ForceOrdering, Functions: mod.Functions, Body: mod.Body}
	}
	end := cfg.span("normalize")
	nm, err := normalize(mod, cfg)
	end()
	if err != nil {
		return nil, err
	}
	end = cfg.span("compile")
	plan, err := compilePlan(nm, cfg)
	end()
	if err != nil {
		return nil, err
	}
	p = &Prepared{Module: nm, Plan: plan, cfg: cfg}
	p.StatsBefore = planCounts(plan)
	end = cfg.span("optimize")
	err = optimize(p, cfg)
	end()
	if err != nil {
		return nil, err
	}
	if cfg.Compiled {
		end = cfg.span("flatten")
		err = flatten(p)
		end()
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// flatten compiles the optimized plan to bytecode with panic isolation;
// a compiler bug surfaces as ErrInternal naming the phase, with the
// algebra plan attached for diagnosis.
func flatten(p *Prepared) (err error) {
	defer func() {
		if err != nil {
			qerr.AttachPlan(err, opt.Explain(p.Plan.Root))
		}
	}()
	defer qerr.RecoverInto("flatten", &err)
	p.Program = vm.Compile(p.Plan.Root)
	return nil
}

// normalize runs the normalization phase with panic isolation and error
// classification (normalization failures are static query errors, so
// they class as ErrCompile in phase "normalize").
func normalize(mod *xquery.Module, cfg Config) (nm *xquery.Module, err error) {
	defer qerr.RecoverInto("normalize", &err)
	nm, err = norm.Normalize(mod, norm.Options{InsertUnordered: cfg.Indifference})
	if err != nil {
		return nil, qerr.Ensure(qerr.ErrCompile, "normalize", err)
	}
	return nm, nil
}

// compilePlan runs the loop-lifting compiler with panic isolation. The
// compiler converts its own user-facing failures already; anything else
// escaping it (builder schema violations are deliberate panics) becomes
// ErrInternal here.
func compilePlan(nm *xquery.Module, cfg Config) (plan *compile.Plan, err error) {
	defer qerr.RecoverInto("compile", &err)
	plan, err = compile.Compile(nm, compile.Options{Indifference: cfg.Indifference, Vars: cfg.Vars})
	if err != nil {
		return nil, qerr.Ensure(qerr.ErrCompile, "compile", err)
	}
	return plan, nil
}

// optimize runs the plan rewrites and the parallel region analysis with
// panic isolation; a failing rewrite reports the pre-optimization plan.
func optimize(p *Prepared, cfg Config) (err error) {
	defer func() {
		if err != nil {
			qerr.AttachPlan(err, opt.Explain(p.Plan.Root))
		}
	}()
	defer qerr.RecoverInto("optimize", &err)
	if cfg.Indifference {
		p.Plan.Root = opt.Optimize(p.Plan.Root, p.Plan.Builder, cfg.Opt)
	}
	p.StatsAfter = planCounts(p.Plan)
	if parallelWorkers(cfg.Parallelism) > 1 {
		// Parallel region analysis: mark the order-dead regions the
		// morsel-wise executor may partition. Runs for the baseline
		// compiler too — order-deadness is a plan property, not an
		// optimizer rewrite — but only when parallel execution is on, so
		// serial Explain output matches the seed.
		opt.MarkParallel(p.Plan.Root)
	}
	return nil
}

// parallelWorkers resolves the Config.Parallelism knob to a pool size.
func parallelWorkers(p int) int {
	if p < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

func planCounts(plan *compile.Plan) struct{ Operators, RowNums, RowIDs int } {
	s := opt.PlanStats(plan.Root)
	return struct{ Operators, RowNums, RowIDs int }{s.Operators, s.RowNums, s.RowIDs}
}

// Run executes the prepared plan against a store and document registry,
// dispatching to the morsel-wise parallel executor when Config.Parallelism
// asks for more than one worker.
func (p *Prepared) Run(store *xmltree.Store, docs map[string][]uint32) (*engine.Result, error) {
	return p.RunContext(context.Background(), store, docs)
}

// RunContext is Run under a context: ctx.Done() aborts the execution
// cooperatively on both the serial and the parallel path, returning an
// error that wraps qerr.ErrCanceled (or qerr.ErrTimeout for a context
// deadline) and the context's own error. Internal failures during
// execution come back as qerr.ErrInternal carrying the optimized plan's
// Explain() dump.
func (p *Prepared) RunContext(ctx context.Context, store *xmltree.Store, docs map[string][]uint32) (*engine.Result, error) {
	// Admission control: with a governor configured, every execution
	// first claims a slot (possibly queueing, possibly being shed with
	// qerr.ErrOverload) and draws its memory from the shared ledger. A
	// lease admitted under pressure degrades the run: Par-marked plan
	// regions fall back to the serial engine — safe because the parallel
	// executor only ever touches order-indifferent regions, whose results
	// are identical either way.
	var lease *governor.Lease
	var memory *xdm.Account
	degraded := false
	if g := p.cfg.Governor; g != nil {
		var err error
		lease, err = g.Admit(ctx)
		if err != nil {
			return nil, err
		}
		defer lease.Release()
		memory = lease.Account()
		degraded = lease.Degraded()
	}
	var collect *obs.Collector
	if p.cfg.Collect {
		collect = obs.NewCollector()
	}
	// Watchdog liveness: when a serving-layer watchdog registered a
	// heartbeat on this context (resilience.Watch), hand it to the engine
	// so every cooperative poll point proves the query is making progress.
	beat := resilience.HeartbeatFrom(ctx)
	// Storage health: one probe closure per execution, so per-execution
	// fault-injection state (and suspect-part observation) is scoped to
	// this run and shared by all its workers.
	var storeProbe func() error
	if p.cfg.StoreProbe != nil {
		storeProbe = p.cfg.StoreProbe()
	}
	end := p.cfg.span("execute")
	var res *engine.Result
	var err error
	if p.Program != nil {
		// Bytecode path: the program was flattened at Prepare time and is
		// shared across executions; Par-marked fork/join instructions use
		// the morsel pool unless the admission was degraded.
		w := parallelWorkers(p.cfg.Parallelism)
		if degraded {
			w = 1
		}
		res, err = vm.Run(p.Program, store, docs, vm.Options{
			Options: engine.Options{
				Context:           ctx,
				Timeout:           p.cfg.Timeout,
				MaxCells:          p.cfg.MaxCells,
				Memory:            memory,
				InterestingOrders: p.cfg.InterestingOrders,
				Collect:           collect,
				Tracer:            p.cfg.Tracer,
				Heartbeat:         beat,
				StoreProbe:        storeProbe,
			},
			Workers: w,
		})
	} else if w := parallelWorkers(p.cfg.Parallelism); w > 1 && !degraded {
		res, err = parallel.Run(p.Plan.Root, store, docs, parallel.Options{
			Context:           ctx,
			Workers:           w,
			Timeout:           p.cfg.Timeout,
			MaxCells:          p.cfg.MaxCells,
			Memory:            memory,
			InterestingOrders: p.cfg.InterestingOrders,
			Collect:           collect,
			Tracer:            p.cfg.Tracer,
			Heartbeat:         beat,
			StoreProbe:        storeProbe,
		})
	} else {
		res, err = engine.Run(p.Plan.Root, store, docs, engine.Options{
			Context:           ctx,
			Timeout:           p.cfg.Timeout,
			MaxCells:          p.cfg.MaxCells,
			Memory:            memory,
			InterestingOrders: p.cfg.InterestingOrders,
			Collect:           collect,
			Tracer:            p.cfg.Tracer,
			Heartbeat:         beat,
			StoreProbe:        storeProbe,
		})
	}
	end()
	if err != nil {
		if errors.Is(err, qerr.ErrInternal) {
			qerr.AttachPlan(err, p.Explain())
		}
		return nil, err
	}
	if lease != nil {
		res.Degraded = degraded
		res.QueueWait = lease.QueueWait()
		if res.Stats != nil {
			res.Stats.Degraded = degraded
			res.Stats.QueueWait = lease.QueueWait()
		}
	}
	return res, nil
}

// Explain renders the (optimized) plan DAG as text.
func (p *Prepared) Explain() string { return opt.Explain(p.Plan.Root) }

// ExplainProgram renders the bytecode program the plan compiled to —
// register assignments, pre-resolved operands, inferred column types and
// buffer release points — as the companion view to Explain's annotated
// algebra. Plans prepared with Config.Compiled off report that instead.
func (p *Prepared) ExplainProgram() string {
	if p.Program == nil {
		return "(plan not compiled: Config.Compiled off)\n"
	}
	return p.Program.Explain()
}

// Documents returns the fn:doc() URIs the plan reads, in first-reference
// order. The set is exact and static: the compiler only accepts
// string-literal doc() arguments, so every document access is an OpDoc
// node with a fixed URI — which is what lets a serving layer scope
// plan-cache invalidation to the documents a plan actually mentions
// (plans are document-independent until execution binds the registry).
func (p *Prepared) Documents() []string {
	var uris []string
	seenURI := make(map[string]bool)
	seen := make(map[*algebra.Node]bool)
	var visit func(n *algebra.Node)
	visit = func(n *algebra.Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if n.Kind == algebra.OpDoc && !seenURI[n.URI] {
			seenURI[n.URI] = true
			uris = append(uris, n.URI)
		}
		for _, in := range n.Ins {
			visit(in)
		}
	}
	visit(p.Plan.Root)
	return uris
}

// ExplainAnalyze renders the plan annotated with the measured statistics
// of an actual execution — the EXPLAIN ANALYZE view. st is the RunStats
// of a run of this plan (Result.Stats under Config.Collect); nodes the
// run never evaluated (or that st does not cover) print "[not executed]".
// A trailing summary reports totals: elapsed, memo hits and pool traffic.
func (p *Prepared) ExplainAnalyze(st *obs.RunStats) string {
	if st == nil {
		return p.Explain()
	}
	out := algebra.PrintAnnotated(p.Plan.Root, func(n *algebra.Node) string {
		op := st.Op(n.ID)
		if op == nil {
			return "  [not executed]"
		}
		s := fmt.Sprintf("  [rows=%d wall=%s", op.RowsOut, op.Wall.Round(time.Microsecond))
		if op.Calls > 1 {
			s += fmt.Sprintf(" calls=%d", op.Calls)
		}
		if op.MemoHits > 0 {
			s += fmt.Sprintf(" memo=%d", op.MemoHits)
		}
		if op.Morsels > 0 {
			s += fmt.Sprintf(" morsels=%d/%dw busy=%s", op.Morsels, len(op.Workers), op.Busy.Round(time.Microsecond))
		}
		return s + "]"
	})
	out += fmt.Sprintf("-- elapsed %s, %d operator(s) executed, %d memo hit(s), pool %d hit(s)/%d miss(es)\n",
		st.Elapsed.Round(time.Microsecond), len(st.Ops), st.MemoHits, st.PoolHits, st.PoolMisses)
	return out
}

// Analyze executes the prepared plan with statistics collection forced on
// (regardless of Config.Collect) and returns the result alongside the
// annotated plan text. It is the engine behind `exrquy -analyze`.
func (p *Prepared) Analyze(ctx context.Context, store *xmltree.Store, docs map[string][]uint32) (*engine.Result, string, error) {
	q := *p
	q.cfg.Collect = true
	res, err := q.RunContext(ctx, store, docs)
	if err != nil {
		return nil, "", err
	}
	return res, p.ExplainAnalyze(res.Stats), nil
}
