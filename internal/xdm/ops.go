package xdm

import (
	"fmt"
	"math"
)

// CmpOp enumerates the six comparison relations shared by XQuery's value
// comparisons (eq, ne, lt, le, gt, ge) and general comparisons
// (=, !=, <, <=, >, >=).
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the general-comparison spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "!="
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	default:
		return "?"
	}
}

// Flip returns the operator with its operands exchanged (a op b == b op.Flip a).
func (op CmpOp) Flip() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	default:
		return op
	}
}

func applyCmp(op CmpOp, c int) bool {
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	default:
		return false
	}
}

// CompareValue implements XQuery value comparison (eq, lt, ...) on two
// atomized items: untypedAtomic is treated as xs:string, numerics promote
// to double, and comparing incompatible type classes is a type error.
func CompareValue(a, b Item, op CmpOp) (bool, error) {
	ak, bk := valueClass(a.Kind), valueClass(b.Kind)
	if ak != bk {
		return false, fmt.Errorf("xdm: cannot compare %s with %s", a.Kind, b.Kind)
	}
	switch ak {
	case classNum:
		af, _ := a.AsDouble()
		bf, _ := b.AsDouble()
		return cmpFloat(af, bf, op), nil
	case classStr:
		return applyCmp(op, cmpString(a.S, b.S)), nil
	case classBool:
		return applyCmp(op, cmpInt(a.I, b.I)), nil
	default:
		return false, fmt.Errorf("xdm: cannot compare %s values", a.Kind)
	}
}

// CompareGeneral implements the item-level core of an XQuery general
// comparison (=, <, ...): untypedAtomic coerces to the other operand's
// type class (number if the other side is numeric, boolean if boolean,
// string otherwise); two untyped operands compare as strings.
func CompareGeneral(a, b Item, op CmpOp) (bool, error) {
	a2, b2, err := coerceGeneral(a, b)
	if err != nil {
		return false, err
	}
	return CompareValue(a2, b2, op)
}

func coerceGeneral(a, b Item) (Item, Item, error) {
	if a.Kind == KUntyped && b.Kind != KUntyped {
		c, err := coerceUntyped(a, b.Kind)
		return c, b, err
	}
	if b.Kind == KUntyped && a.Kind != KUntyped {
		c, err := coerceUntyped(b, a.Kind)
		return a, c, err
	}
	return a, b, nil
}

func coerceUntyped(u Item, target Kind) (Item, error) {
	switch {
	case target.IsNumeric():
		f, err := u.AsDouble()
		if err != nil {
			return Item{}, err
		}
		return NewDouble(f), nil
	case target == KBoolean:
		switch u.S {
		case "true", "1":
			return True, nil
		case "false", "0":
			return False, nil
		}
		return Item{}, fmt.Errorf("xdm: cannot cast %q to xs:boolean", u.S)
	default:
		return NewString(u.S), nil
	}
}

type cmpClass uint8

const (
	classNum cmpClass = iota
	classStr
	classBool
	classNode
)

func valueClass(k Kind) cmpClass {
	switch k {
	case KInteger, KDouble:
		return classNum
	case KString, KUntyped:
		return classStr
	case KBoolean:
		return classBool
	default:
		return classNode
	}
}

func cmpFloat(a, b float64, op CmpOp) bool {
	// NaN comparisons are false except ne, which is true when either side
	// is NaN (per IEEE/XQuery double semantics).
	if math.IsNaN(a) || math.IsNaN(b) {
		return op == CmpNe
	}
	switch {
	case a < b:
		return applyCmp(op, -1)
	case a > b:
		return applyCmp(op, 1)
	default:
		return applyCmp(op, 0)
	}
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// OrderCompare is a total order over atomic items used for order by keys
// and deterministic result canonicalization: items order first by type
// class (numbers < strings < booleans < nodes), then by value. NaN sorts
// before all other numbers.
func OrderCompare(a, b Item) int {
	ac, bc := valueClass(a.Kind), valueClass(b.Kind)
	if ac != bc {
		return int(ac) - int(bc)
	}
	switch ac {
	case classNum:
		af, _ := a.AsDouble()
		bf, _ := b.AsDouble()
		an, bn := math.IsNaN(af), math.IsNaN(bf)
		switch {
		case an && bn:
			return 0
		case an:
			return -1
		case bn:
			return 1
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	case classStr:
		return cmpString(a.S, b.S)
	case classBool:
		return cmpInt(a.I, b.I)
	default:
		if a.N.Frag != b.N.Frag {
			return cmpInt(int64(a.N.Frag), int64(b.N.Frag))
		}
		return cmpInt(int64(a.N.Pre), int64(b.N.Pre))
	}
}

// ArithOp enumerates XQuery's binary arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
)

// String returns the XQuery spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "div"
	case OpIDiv:
		return "idiv"
	case OpMod:
		return "mod"
	default:
		return "?"
	}
}

// Arith evaluates a op b with XQuery numeric promotion: integer ops stay
// integral (except div, which yields a double), anything involving a
// double or untypedAtomic is computed in doubles.
func Arith(a, b Item, op ArithOp) (Item, error) {
	if a.Kind == KInteger && b.Kind == KInteger && op != OpDiv {
		switch op {
		case OpAdd:
			return NewInt(a.I + b.I), nil
		case OpSub:
			return NewInt(a.I - b.I), nil
		case OpMul:
			return NewInt(a.I * b.I), nil
		case OpIDiv:
			if b.I == 0 {
				return Item{}, fmt.Errorf("xdm: division by zero")
			}
			return NewInt(a.I / b.I), nil
		case OpMod:
			if b.I == 0 {
				return Item{}, fmt.Errorf("xdm: division by zero")
			}
			return NewInt(a.I % b.I), nil
		}
	}
	af, err := a.AsDouble()
	if err != nil {
		return Item{}, err
	}
	bf, err := b.AsDouble()
	if err != nil {
		return Item{}, err
	}
	switch op {
	case OpAdd:
		return NewDouble(af + bf), nil
	case OpSub:
		return NewDouble(af - bf), nil
	case OpMul:
		return NewDouble(af * bf), nil
	case OpDiv:
		return NewDouble(af / bf), nil
	case OpIDiv:
		if bf == 0 {
			return Item{}, fmt.Errorf("xdm: division by zero")
		}
		return NewInt(int64(af / bf)), nil
	case OpMod:
		return NewDouble(math.Mod(af, bf)), nil
	default:
		return Item{}, fmt.Errorf("xdm: unknown arithmetic operator")
	}
}

// EffectiveBooleanValue computes fn:boolean() of a sequence per XQuery:
// empty is false; a sequence whose first item is a node is true; a
// singleton atomic follows the per-type rules; any other case is a type
// error.
func EffectiveBooleanValue(seq []Item) (bool, error) {
	if len(seq) == 0 {
		return false, nil
	}
	if seq[0].IsNode() {
		return true, nil
	}
	if len(seq) > 1 {
		return false, fmt.Errorf("xdm: effective boolean value of multi-item atomic sequence")
	}
	it := seq[0]
	switch it.Kind {
	case KBoolean:
		return it.I != 0, nil
	case KString, KUntyped:
		return it.S != "", nil
	case KInteger:
		return it.I != 0, nil
	case KDouble:
		return it.F != 0 && !math.IsNaN(it.F), nil
	default:
		return false, fmt.Errorf("xdm: no effective boolean value for %s", it.Kind)
	}
}
