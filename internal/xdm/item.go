// Package xdm implements the fragment of the XQuery Data Model (XDM)
// required by the eXrQuy pipeline: atomic items, node references, typed
// value semantics (promotion, atomization targets), and the comparison and
// arithmetic operators of XQuery 1.0 restricted to the types the engine
// materializes (integer, double, string, boolean, untypedAtomic, node).
//
// The package is deliberately free of any dependency on the tree storage:
// node-valued items carry an opaque NodeID and all node-dependent behaviour
// (atomization, string value, document order) is resolved by the caller,
// which owns the fragment store.
package xdm

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of an Item.
type Kind uint8

// Item kinds. KUntyped is xs:untypedAtomic, the type of atomized element
// and attribute content in schema-less processing.
const (
	KUntyped Kind = iota // xs:untypedAtomic, stored in S
	KString              // xs:string, stored in S
	KInteger             // xs:integer, stored in I
	KDouble              // xs:double (also used for xs:decimal), stored in F
	KBoolean             // xs:boolean, stored in I (0/1)
	KNode                // node reference, stored in N

	// Internal kinds that never appear in query results:
	KRawText // literal constructor text (becomes its own text node, no space joining), stored in S
	KNull    // absent order-by key; sorts below (empty least) or above (empty greatest) everything
)

// String returns the XDM type name for the kind.
func (k Kind) String() string {
	switch k {
	case KUntyped:
		return "xs:untypedAtomic"
	case KString:
		return "xs:string"
	case KInteger:
		return "xs:integer"
	case KDouble:
		return "xs:double"
	case KBoolean:
		return "xs:boolean"
	case KNode:
		return "node()"
	case KRawText:
		return "text-literal"
	case KNull:
		return "null"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// IsNumeric reports whether the kind is a numeric atomic type.
func (k Kind) IsNumeric() bool { return k == KInteger || k == KDouble }

// NodeID identifies a node: the fragment it lives in and its preorder rank
// within that fragment. Document order across fragments is the
// implementation-defined (but stable) order (Frag, Pre).
type NodeID struct {
	Frag uint32
	Pre  int32
}

// Before reports whether n precedes m in the global document order.
func (n NodeID) Before(m NodeID) bool {
	if n.Frag != m.Frag {
		return n.Frag < m.Frag
	}
	return n.Pre < m.Pre
}

// Item is a single XDM item: an atomic value or a node reference. The
// representation is a small tagged struct so that columns of items can be
// stored as flat slices (the columnar engine's []Item "BATs").
type Item struct {
	Kind Kind
	I    int64   // KInteger value; KBoolean 0/1
	F    float64 // KDouble value
	S    string  // KString / KUntyped value
	N    NodeID  // KNode reference
}

// Convenience constructors.

// NewInt returns an xs:integer item.
func NewInt(i int64) Item { return Item{Kind: KInteger, I: i} }

// NewDouble returns an xs:double item.
func NewDouble(f float64) Item { return Item{Kind: KDouble, F: f} }

// NewString returns an xs:string item.
func NewString(s string) Item { return Item{Kind: KString, S: s} }

// NewUntyped returns an xs:untypedAtomic item.
func NewUntyped(s string) Item { return Item{Kind: KUntyped, S: s} }

// NewBool returns an xs:boolean item.
func NewBool(b bool) Item {
	if b {
		return Item{Kind: KBoolean, I: 1}
	}
	return Item{Kind: KBoolean}
}

// NewNode returns a node-reference item.
func NewNode(id NodeID) Item { return Item{Kind: KNode, N: id} }

// NewRawText returns a literal-text item; inside element construction it
// becomes its own text node without space joining. Internal use only.
func NewRawText(s string) Item { return Item{Kind: KRawText, S: s} }

// Null is the absent-order-key marker. Internal use only.
var Null = Item{Kind: KNull}

// True and False are the two boolean items.
var (
	True  = NewBool(true)
	False = NewBool(false)
)

// IsNode reports whether the item is a node reference.
func (it Item) IsNode() bool { return it.Kind == KNode }

// Bool returns the boolean payload; it panics unless Kind is KBoolean.
func (it Item) Bool() bool {
	if it.Kind != KBoolean {
		panic("xdm: Bool() on non-boolean item " + it.Kind.String())
	}
	return it.I != 0
}

// StringValue returns the lexical form of an atomic item. It panics on
// node items (their string value needs the tree store).
func (it Item) StringValue() string {
	switch it.Kind {
	case KUntyped, KString, KRawText:
		return it.S
	case KInteger:
		return strconv.FormatInt(it.I, 10)
	case KDouble:
		return formatDouble(it.F)
	case KBoolean:
		if it.I != 0 {
			return "true"
		}
		return "false"
	default:
		panic("xdm: StringValue on node item")
	}
}

// formatDouble renders a float the way XQuery serializes xs:double values
// in the common (non-exponential) range: integral values print without a
// decimal point.
func formatDouble(f float64) string {
	if math.IsInf(f, 1) {
		return "INF"
	}
	if math.IsInf(f, -1) {
		return "-INF"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// AsDouble converts an atomic item to xs:double following the XPath number
// coercion rules (strings parse their lexical form; booleans map to 0/1).
func (it Item) AsDouble() (float64, error) {
	switch it.Kind {
	case KInteger:
		return float64(it.I), nil
	case KDouble:
		return it.F, nil
	case KBoolean:
		return float64(it.I), nil
	case KUntyped, KString:
		s := strings.TrimSpace(it.S)
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("xdm: cannot cast %q to xs:double", it.S)
		}
		return f, nil
	default:
		return 0, fmt.Errorf("xdm: cannot cast %s to xs:double", it.Kind)
	}
}

// NumberOrNaN implements fn:number(): failed casts yield NaN instead of an
// error.
func (it Item) NumberOrNaN() float64 {
	f, err := it.AsDouble()
	if err != nil {
		return math.NaN()
	}
	return f
}

// AsInteger converts an atomic item to xs:integer.
func (it Item) AsInteger() (int64, error) {
	switch it.Kind {
	case KInteger:
		return it.I, nil
	case KDouble:
		return int64(it.F), nil
	case KBoolean:
		return it.I, nil
	case KUntyped, KString:
		i, err := strconv.ParseInt(strings.TrimSpace(it.S), 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(strings.TrimSpace(it.S), 64)
			if ferr != nil {
				return 0, fmt.Errorf("xdm: cannot cast %q to xs:integer", it.S)
			}
			return int64(f), nil
		}
		return i, nil
	default:
		return 0, fmt.Errorf("xdm: cannot cast %s to xs:integer", it.Kind)
	}
}

// SameAtomicValue reports deep equality of two atomic items under the
// semantics of fn:distinct-values: numeric values compare numerically
// across integer/double, strings and untyped compare by codepoints, and
// items of incomparable type classes are distinct.
func SameAtomicValue(a, b Item) bool {
	if a.Kind.IsNumeric() && b.Kind.IsNumeric() {
		af, _ := a.AsDouble()
		bf, _ := b.AsDouble()
		return af == bf || (math.IsNaN(af) && math.IsNaN(bf))
	}
	switch {
	case isStringy(a.Kind) && isStringy(b.Kind):
		return a.S == b.S
	case a.Kind == KBoolean && b.Kind == KBoolean:
		return a.I == b.I
	default:
		return false
	}
}

func isStringy(k Kind) bool { return k == KString || k == KUntyped }

// DistinctKey returns a string key under which SameAtomicValue-equal items
// collide; used for hash-based distinct-values and grouping.
func DistinctKey(it Item) string {
	switch it.Kind {
	case KInteger:
		return "n" + strconv.FormatFloat(float64(it.I), 'g', -1, 64)
	case KDouble:
		return "n" + strconv.FormatFloat(it.F, 'g', -1, 64)
	case KString, KUntyped:
		return "s" + it.S
	case KBoolean:
		if it.I != 0 {
			return "bt"
		}
		return "bf"
	case KNode:
		return fmt.Sprintf("N%d:%d", it.N.Frag, it.N.Pre)
	default:
		return "?"
	}
}
