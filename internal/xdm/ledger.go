package xdm

import "sync/atomic"

// Byte ledger: process-wide memory accounting shared by every concurrent
// query execution.
//
// The engine's historical memory guard (engine.Options.MaxCells) is
// per-execution: N concurrent queries each get their own cell budget, so
// aggregate materialization is unbounded and heavy concurrent traffic can
// OOM a process that any single query would leave healthy. The Ledger
// closes that gap: one global byte budget that all executions draw from
// through per-query Accounts, so the sum of in-flight intermediate state
// is bounded no matter how many queries run at once. Exhaustion surfaces
// as an ordinary reservation failure that the engine classifies under
// qerr.ErrMemoryLimit — a failed query, never a dead process.
//
// Accounting is nominal, not exact: the engine charges NominalCellBytes
// per materialized table cell (see ChargeCells), which tracks the flat
// typed columns closely and undercounts boxed cells. The budget is a
// pressure-relief valve calibrated in real units, not a malloc shim.

// NominalCellBytes is the nominal cost of one materialized table cell
// charged against a Ledger. Flat typed columns (int64, float64, NodeID)
// cost 8 bytes per cell; boxed Item cells cost ~48. 16 splits the
// difference toward the dominant flat representation while keeping the
// arithmetic cheap.
const NominalCellBytes = 16

// Ledger is a process-wide byte budget. All methods are safe for
// concurrent use; reservations are atomic (CAS), so the budget is never
// oversubscribed even under races.
type Ledger struct {
	max  int64 // immutable after NewLedger; 0 = unlimited
	used atomic.Int64
}

// NewLedger returns a ledger bounded to maxBytes (0 = unlimited; the
// ledger then only tracks usage).
func NewLedger(maxBytes int64) *Ledger {
	return &Ledger{max: maxBytes}
}

// Max returns the configured budget (0 = unlimited).
func (l *Ledger) Max() int64 { return l.max }

// Used returns the bytes currently reserved across all accounts.
func (l *Ledger) Used() int64 { return l.used.Load() }

// reserve attempts to reserve n bytes, failing (without reserving) when
// the budget would be exceeded.
func (l *Ledger) reserve(n int64) bool {
	if l.max <= 0 {
		l.used.Add(n)
		return true
	}
	for {
		cur := l.used.Load()
		if cur+n > l.max {
			return false
		}
		if l.used.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// release returns n bytes to the ledger.
func (l *Ledger) release(n int64) { l.used.Add(-n) }

// OverBudget describes a failed reservation: which bound was hit
// ("global" ledger or per-query "query" quota), the bound, the bytes
// already reserved against it, and the size of the failed request.
type OverBudget struct {
	Scope string // "global" or "query"
	Limit int64
	Used  int64
	Need  int64
}

// Account is one query's view of a Ledger: reservations draw from the
// global budget and are additionally capped by the account's own quota.
// Close releases everything the account reserved, so a query's ledger
// footprint provably drains when its execution ends — success, error and
// panic paths alike (callers Close in a defer). Reserve is safe for
// concurrent use (parallel morsel workers charge one shared account).
type Account struct {
	ledger *Ledger
	quota  int64 // 0 = no per-query cap
	used   atomic.Int64
	closed atomic.Bool
}

// NewAccount opens an account with the given per-query quota in bytes
// (0 = bounded only by the global ledger).
func (l *Ledger) NewAccount(quota int64) *Account {
	return &Account{ledger: l, quota: quota}
}

// Quota returns the account's per-query byte cap (0 = none).
func (a *Account) Quota() int64 { return a.quota }

// Used returns the bytes this account currently holds.
func (a *Account) Used() int64 { return a.used.Load() }

// Reserve charges n bytes against the account and the global ledger; a
// nil return means granted. On failure nothing is reserved and the
// returned OverBudget names the bound that was hit.
func (a *Account) Reserve(n int64) *OverBudget {
	if n <= 0 {
		return nil
	}
	if a.quota > 0 {
		for {
			cur := a.used.Load()
			if cur+n > a.quota {
				return &OverBudget{Scope: "query", Limit: a.quota, Used: cur, Need: n}
			}
			if a.used.CompareAndSwap(cur, cur+n) {
				break
			}
		}
		if !a.ledger.reserve(n) {
			a.used.Add(-n)
			return &OverBudget{Scope: "global", Limit: a.ledger.max, Used: a.ledger.Used(), Need: n}
		}
		return nil
	}
	if !a.ledger.reserve(n) {
		return &OverBudget{Scope: "global", Limit: a.ledger.max, Used: a.ledger.Used(), Need: n}
	}
	a.used.Add(n)
	return nil
}

// CanReserve reports whether a reservation of n bytes would currently be
// granted, without reserving (the prospective pre-check the engine runs
// before materializing a large join).
func (a *Account) CanReserve(n int64) *OverBudget {
	if n <= 0 {
		return nil
	}
	if cur := a.used.Load(); a.quota > 0 && cur+n > a.quota {
		return &OverBudget{Scope: "query", Limit: a.quota, Used: cur, Need: n}
	}
	if l := a.ledger; l.max > 0 {
		if cur := l.Used(); cur+n > l.max {
			return &OverBudget{Scope: "global", Limit: l.max, Used: cur, Need: n}
		}
	}
	return nil
}

// Release returns up to n bytes from the account to the ledger, clamped
// to the account's current holdings. Query executions never shrink —
// their footprint drains all at once through Close — but long-lived
// accounts whose footprint varies both ways (the out-of-core store's
// residency sampler, which mirrors sampled page residency into the
// ledger) need the shrink side too.
func (a *Account) Release(n int64) {
	if n <= 0 || a.closed.Load() {
		return
	}
	for {
		cur := a.used.Load()
		if cur <= 0 {
			return
		}
		take := n
		if take > cur {
			take = cur
		}
		if a.used.CompareAndSwap(cur, cur-take) {
			a.ledger.release(take)
			return
		}
	}
}

// Close releases every byte the account holds back to the ledger.
// Idempotent; the account must not Reserve afterwards.
func (a *Account) Close() {
	if !a.closed.CompareAndSwap(false, true) {
		return
	}
	if n := a.used.Swap(0); n != 0 {
		a.ledger.release(n)
	}
}
