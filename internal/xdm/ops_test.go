package xdm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCompareValue(t *testing.T) {
	for _, tc := range []struct {
		a, b Item
		op   CmpOp
		want bool
		ok   bool
	}{
		{NewInt(1), NewInt(2), CmpLt, true, true},
		{NewInt(2), NewDouble(2), CmpEq, true, true},
		{NewDouble(2.5), NewInt(2), CmpGt, true, true},
		{NewString("a"), NewString("b"), CmpLt, true, true},
		{NewUntyped("a"), NewString("a"), CmpEq, true, true},
		{NewBool(false), NewBool(true), CmpLt, true, true},
		{NewString("1"), NewInt(1), CmpEq, false, false}, // type error
		{NewDouble(math.NaN()), NewDouble(1), CmpEq, false, true},
		{NewDouble(math.NaN()), NewDouble(1), CmpNe, true, true},
		{NewDouble(math.NaN()), NewDouble(math.NaN()), CmpEq, false, true},
	} {
		got, err := CompareValue(tc.a, tc.b, tc.op)
		if (err == nil) != tc.ok {
			t.Fatalf("CompareValue(%v %s %v) err = %v, want ok=%v", tc.a, tc.op, tc.b, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Errorf("CompareValue(%v %s %v) = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

func TestCompareGeneralUntypedCoercion(t *testing.T) {
	// untyped vs numeric -> numeric comparison.
	got, err := CompareGeneral(NewUntyped("10"), NewInt(9), CmpGt)
	if err != nil || !got {
		t.Errorf("untyped 10 > 9: got %v, %v", got, err)
	}
	// untyped vs untyped -> string comparison ("10" < "9" lexically).
	got, err = CompareGeneral(NewUntyped("10"), NewUntyped("9"), CmpLt)
	if err != nil || !got {
		t.Errorf(`untyped "10" < "9": got %v, %v`, got, err)
	}
	// untyped vs string -> string comparison.
	got, err = CompareGeneral(NewUntyped("abc"), NewString("abd"), CmpLt)
	if err != nil || !got {
		t.Errorf("untyped abc < abd: got %v, %v", got, err)
	}
	// untyped vs boolean.
	got, err = CompareGeneral(NewUntyped("true"), NewBool(true), CmpEq)
	if err != nil || !got {
		t.Errorf("untyped true = true: got %v, %v", got, err)
	}
	// bad numeric cast is a dynamic error.
	if _, err = CompareGeneral(NewUntyped("zap"), NewInt(1), CmpEq); err == nil {
		t.Error("expected cast error for 'zap' vs numeric")
	}
}

func TestCmpOpFlip(t *testing.T) {
	f := func(a, b int64) bool {
		for op := CmpEq; op <= CmpGe; op++ {
			r1, err1 := CompareValue(NewInt(a), NewInt(b), op)
			r2, err2 := CompareValue(NewInt(b), NewInt(a), op.Flip())
			if err1 != nil || err2 != nil || r1 != r2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArith(t *testing.T) {
	for _, tc := range []struct {
		a, b Item
		op   ArithOp
		want Item
		ok   bool
	}{
		{NewInt(2), NewInt(3), OpAdd, NewInt(5), true},
		{NewInt(2), NewInt(3), OpMul, NewInt(6), true},
		{NewInt(7), NewInt(2), OpIDiv, NewInt(3), true},
		{NewInt(7), NewInt(2), OpMod, NewInt(1), true},
		{NewInt(7), NewInt(2), OpDiv, NewDouble(3.5), true},
		{NewInt(5), NewDouble(0.5), OpMul, NewDouble(2.5), true},
		{NewUntyped("4"), NewInt(2), OpSub, NewDouble(2), true},
		{NewInt(1), NewInt(0), OpIDiv, Item{}, false},
		{NewInt(1), NewInt(0), OpMod, Item{}, false},
		{NewString("x"), NewInt(1), OpAdd, Item{}, false},
	} {
		got, err := Arith(tc.a, tc.b, tc.op)
		if (err == nil) != tc.ok {
			t.Fatalf("Arith(%v %s %v) err = %v, want ok=%v", tc.a, tc.op, tc.b, err, tc.ok)
		}
		if tc.ok && (got.Kind != tc.want.Kind || got.I != tc.want.I || got.F != tc.want.F) {
			t.Errorf("Arith(%v %s %v) = %v, want %v", tc.a, tc.op, tc.b, got, tc.want)
		}
	}
}

func TestArithIntegerRingProperties(t *testing.T) {
	f := func(a, b int32) bool {
		s, err := Arith(NewInt(int64(a)), NewInt(int64(b)), OpAdd)
		if err != nil || s.Kind != KInteger || s.I != int64(a)+int64(b) {
			return false
		}
		c, err := Arith(s, NewInt(int64(b)), OpSub)
		return err == nil && c.I == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveBooleanValue(t *testing.T) {
	node := NewNode(NodeID{Frag: 0, Pre: 3})
	for _, tc := range []struct {
		seq  []Item
		want bool
		ok   bool
	}{
		{nil, false, true},
		{[]Item{NewBool(true)}, true, true},
		{[]Item{NewBool(false)}, false, true},
		{[]Item{NewString("")}, false, true},
		{[]Item{NewString("x")}, true, true},
		{[]Item{NewInt(0)}, false, true},
		{[]Item{NewInt(-1)}, true, true},
		{[]Item{NewDouble(math.NaN())}, false, true},
		{[]Item{node}, true, true},
		{[]Item{node, node}, true, true},
		{[]Item{NewInt(1), NewInt(2)}, false, false},
	} {
		got, err := EffectiveBooleanValue(tc.seq)
		if (err == nil) != tc.ok {
			t.Fatalf("EBV(%v) err = %v, want ok=%v", tc.seq, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Errorf("EBV(%v) = %v, want %v", tc.seq, got, tc.want)
		}
	}
}
