package xdm

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Size-classed buffer pool for column backing slices.
//
// The morsel-parallel workers allocate and drop column buffers at a rate
// that makes the Go allocator the bottleneck on join-heavy plans; the
// engine instead returns a column's backing slice here when the memoized
// intermediate that owns it provably dies (see engine.Exec recycling) and
// the builders draw replacement buffers from the same classes.
//
// Classes are powers of two: Put files a buffer under the floor class of
// its capacity, Get asks for the ceiling class of the requested length, so
// a pooled buffer always satisfies the request without reallocation.
// Buffers below minPooledCap are left to the allocator (size-class churn
// on tiny slices costs more than it saves), and everything is backed by
// sync.Pool so idle buffers are reclaimed under memory pressure.

// minPooledCap is the smallest capacity worth pooling.
const minPooledCap = 64

// maxClass bounds the class index (2^47 cells is far beyond any budget).
const maxClass = 48

// Pool traffic counters: a Get satisfied from a pooled buffer is a hit, a
// Get that had to allocate a poolable-size buffer is a miss (sub-minimum
// requests are neither — the pool never sees them). The counters are
// process-global atomics, always on: two uncontended atomic adds cost
// nothing next to the slice work they count, and the observability layer
// (internal/obs) reads per-run deltas from them without any toggling.
var poolHits, poolMisses atomic.Int64

// Byte-level pool accounting: alongside the hit/miss counts, the pool
// tracks the bytes it served from reuse (hitBytes) and the bytes it had
// to allocate fresh (missBytes), both at buffer capacity. Cumulative and
// monotonic, like the hit/miss counters; the multi-query governor and
// the observability layer read deltas.
var poolHitBytes, poolMissBytes atomic.Int64

// PoolStats returns the cumulative pool hit and miss counts since process
// start. Per-run figures are deltas between two calls; with concurrent
// executions the deltas attribute traffic to whichever run reads them.
func PoolStats() (hits, misses int64) {
	return poolHits.Load(), poolMisses.Load()
}

// PoolBytes returns the cumulative bytes the pool served from reuse and
// the bytes it allocated fresh for poolable requests (both measured at
// buffer capacity). reused/allocated mirror the hit/miss counters of
// PoolStats at byte granularity.
func PoolBytes() (reused, allocated int64) {
	return poolHitBytes.Load(), poolMissBytes.Load()
}

type slicePool[T any] struct {
	classes [maxClass]sync.Pool
	// elem is the per-element byte size used for the byte-level traffic
	// counters (set at declaration; zero disables byte accounting).
	elem int64
}

func (p *slicePool[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	if n >= minPooledCap {
		c := bits.Len(uint(n - 1)) // ceiling class: 2^c >= n
		if c < maxClass {
			if v := p.classes[c].Get(); v != nil {
				poolHits.Add(1)
				poolHitBytes.Add(p.elem << c)
				return (*(v.(*[]T)))[:n]
			}
			poolMisses.Add(1)
			poolMissBytes.Add(p.elem << c)
			return make([]T, n, 1<<c)
		}
	}
	return make([]T, n)
}

func (p *slicePool[T]) put(s []T) {
	c := cap(s)
	if c < minPooledCap {
		return
	}
	cl := bits.Len(uint(c)) - 1 // floor class: 2^cl <= cap
	if cl >= maxClass {
		return
	}
	s = s[:c]
	p.classes[cl].Put(&s)
}

var (
	intPool   = slicePool[int64]{elem: 8}
	floatPool = slicePool[float64]{elem: 8}
	nodePool  = slicePool[NodeID]{elem: 8} // Frag uint32 + Pre int32
	itemPool  = slicePool[Item]{elem: 48}  // boxed Item: tag + payload words
	int32Pool = slicePool[int32]{elem: 4}
)

// GetInts returns an int64 buffer of length n (contents undefined).
func GetInts(n int) []int64 { return intPool.get(n) }

// PutInts recycles an int64 buffer; the caller must not use s afterwards.
func PutInts(s []int64) { intPool.put(s) }

// GetFloats returns a float64 buffer of length n (contents undefined).
func GetFloats(n int) []float64 { return floatPool.get(n) }

// PutFloats recycles a float64 buffer.
func PutFloats(s []float64) { floatPool.put(s) }

// GetNodes returns a NodeID buffer of length n (contents undefined).
func GetNodes(n int) []NodeID { return nodePool.get(n) }

// PutNodes recycles a NodeID buffer.
func PutNodes(s []NodeID) { nodePool.put(s) }

// GetItems returns an Item buffer of length n (contents undefined).
func GetItems(n int) []Item { return itemPool.get(n) }

// PutItems clears and recycles an Item buffer (cells hold strings; keeping
// them live through the pool would pin their backing arrays).
func PutItems(s []Item) {
	s = s[:cap(s)]
	clear(s)
	itemPool.put(s)
}

// GetInt32s returns an int32 buffer of length n (contents undefined); used
// for row-index permutations and keep lists.
func GetInt32s(n int) []int32 { return int32Pool.get(n) }

// PutInt32s recycles an int32 buffer.
func PutInt32s(s []int32) { int32Pool.put(s) }

// RecycleColumn returns c's backing buffer to the pool. The caller asserts
// that no alias of c (or of its buffer) survives — in the engine this is
// established by per-*Column reference counting, never by inspection.
// String-class buffers are not pooled: their cells pin string data and the
// clear cost outweighs the win.
func RecycleColumn(c *Column) {
	switch c.kind {
	case ColInt, ColBool:
		PutInts(c.ints)
		c.ints = nil
	case ColDouble:
		PutFloats(c.fs)
		c.fs = nil
	case ColNode:
		PutNodes(c.ns)
		c.ns = nil
	case ColItems:
		PutItems(c.items)
		c.items = nil
	}
}
