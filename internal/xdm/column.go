package xdm

import "fmt"

// ColKind identifies the physical representation of a Column.
//
// The engine's tables are the paper's iter|pos|item "BATs"; in Pathfinder's
// MonetDB backend those columns are flat arrays of machine integers and
// OIDs, not tagged unions. Column reproduces that encoding: a homogeneous
// column stores its payload as one flat typed slice (8 bytes per cell for
// the dominant integer and node columns) with a single column-level tag,
// and only genuinely mixed columns fall back to boxed []Item storage
// (~48 bytes per cell plus per-access kind dispatch).
type ColKind uint8

// Column representations.
const (
	// ColItems is the mixed fallback: boxed []Item cells.
	ColItems ColKind = iota
	// ColInt stores xs:integer cells as flat []int64.
	ColInt
	// ColBool stores xs:boolean cells as flat []int64 (0/1), matching the
	// Item.I encoding.
	ColBool
	// ColDouble stores xs:double cells as flat []float64.
	ColDouble
	// ColString stores xs:string cells as flat []string.
	ColString
	// ColUntyped stores xs:untypedAtomic cells as flat []string.
	ColUntyped
	// ColNode stores node references as flat []NodeID.
	ColNode
)

// ForceBoxed, when true, makes every column constructor and builder
// produce the boxed []Item representation regardless of homogeneity. It
// exists for the benchmark-trajectory harness (internal/bench), which
// measures the typed kernels against the pre-typed boxed engine, and for
// differential tests pinning typed-versus-boxed result identity. It must
// only be toggled while no queries are running.
var ForceBoxed = false

// Column is one table column. The zero value is an empty mixed column.
//
// Ownership: a Column owns its backing slice exclusively. Constructors
// take ownership of the slice they are handed (no defensive copy — do not
// retain or mutate the slice after construction), and the engine's buffer
// pool recycles the backing slice when the column provably dies, so a
// Column must never be constructed as an alias of another Column's
// storage: share the *Column pointer instead.
type Column struct {
	kind  ColKind
	ints  []int64
	fs    []float64
	ss    []string
	ns    []NodeID
	items []Item
}

// IntColumn wraps an owned []int64 as an xs:integer column (see the
// ownership contract on Column: v is adopted, not copied).
func IntColumn(v []int64) *Column {
	if ForceBoxed {
		return boxInts(v, KInteger)
	}
	return &Column{kind: ColInt, ints: v}
}

// BoolColumn wraps an owned []int64 of 0/1 cells as an xs:boolean column.
func BoolColumn(v []int64) *Column {
	if ForceBoxed {
		return boxInts(v, KBoolean)
	}
	return &Column{kind: ColBool, ints: v}
}

// DoubleColumn wraps an owned []float64 as an xs:double column.
func DoubleColumn(v []float64) *Column {
	if ForceBoxed {
		items := GetItems(len(v))
		for i, f := range v {
			items[i] = Item{Kind: KDouble, F: f}
		}
		PutFloats(v)
		return &Column{kind: ColItems, items: items}
	}
	return &Column{kind: ColDouble, fs: v}
}

// StringColumn wraps an owned []string as a string-class column; kind
// selects KString or KUntyped.
func StringColumn(kind Kind, v []string) *Column {
	ck := ColString
	if kind == KUntyped {
		ck = ColUntyped
	}
	if ForceBoxed {
		items := make([]Item, len(v))
		for i, s := range v {
			items[i] = Item{Kind: kind, S: s}
		}
		return &Column{kind: ColItems, items: items}
	}
	return &Column{kind: ck, ss: v}
}

// NodeColumn wraps an owned []NodeID as a node-reference column.
func NodeColumn(v []NodeID) *Column {
	if ForceBoxed {
		items := GetItems(len(v))
		for i, id := range v {
			items[i] = Item{Kind: KNode, N: id}
		}
		PutNodes(v)
		return &Column{kind: ColItems, items: items}
	}
	return &Column{kind: ColNode, ns: v}
}

// ItemColumn wraps an owned []Item as a mixed column without inspecting
// the cells.
func ItemColumn(v []Item) *Column { return &Column{kind: ColItems, items: v} }

// FromItemsOwned adopts an owned []Item, converting it to the typed
// representation when every cell has the same kind (the boxed buffer is
// then returned to the pool). It is the bridge for kernels that must
// build into a shared []Item (the parallel chunk writers) but still want
// typed output columns.
func FromItemsOwned(v []Item) *Column {
	if ForceBoxed || len(v) == 0 {
		return &Column{kind: ColItems, items: v}
	}
	k := v[0].Kind
	for _, it := range v[1:] {
		if it.Kind != k {
			return &Column{kind: ColItems, items: v}
		}
	}
	var c *Column
	switch k {
	case KInteger, KBoolean:
		ints := GetInts(len(v))
		for i, it := range v {
			ints[i] = it.I
		}
		if k == KInteger {
			c = &Column{kind: ColInt, ints: ints}
		} else {
			c = &Column{kind: ColBool, ints: ints}
		}
	case KDouble:
		fs := GetFloats(len(v))
		for i, it := range v {
			fs[i] = it.F
		}
		c = &Column{kind: ColDouble, fs: fs}
	case KNode:
		ns := GetNodes(len(v))
		for i, it := range v {
			ns[i] = it.N
		}
		c = &Column{kind: ColNode, ns: ns}
	case KString, KUntyped:
		ss := make([]string, len(v))
		for i, it := range v {
			ss[i] = it.S
		}
		ck := ColString
		if k == KUntyped {
			ck = ColUntyped
		}
		c = &Column{kind: ck, ss: ss}
	default:
		return &Column{kind: ColItems, items: v}
	}
	PutItems(v)
	return c
}

func boxInts(v []int64, k Kind) *Column {
	items := GetItems(len(v))
	for i, n := range v {
		items[i] = Item{Kind: k, I: n}
	}
	PutInts(v)
	return &Column{kind: ColItems, items: items}
}

// Kind returns the column's physical representation.
func (c *Column) Kind() ColKind { return c.kind }

// Len returns the number of cells.
func (c *Column) Len() int {
	switch c.kind {
	case ColInt, ColBool:
		return len(c.ints)
	case ColDouble:
		return len(c.fs)
	case ColString, ColUntyped:
		return len(c.ss)
	case ColNode:
		return len(c.ns)
	default:
		return len(c.items)
	}
}

// Get boxes cell i as an Item.
func (c *Column) Get(i int) Item {
	switch c.kind {
	case ColInt:
		return Item{Kind: KInteger, I: c.ints[i]}
	case ColBool:
		return Item{Kind: KBoolean, I: c.ints[i]}
	case ColDouble:
		return Item{Kind: KDouble, F: c.fs[i]}
	case ColString:
		return Item{Kind: KString, S: c.ss[i]}
	case ColUntyped:
		return Item{Kind: KUntyped, S: c.ss[i]}
	case ColNode:
		return Item{Kind: KNode, N: c.ns[i]}
	default:
		return c.items[i]
	}
}

// Ints returns the flat integer cells when the column is ColInt.
func (c *Column) Ints() ([]int64, bool) {
	if c.kind == ColInt {
		return c.ints, true
	}
	return nil, false
}

// Bools returns the flat 0/1 cells when the column is ColBool.
func (c *Column) Bools() ([]int64, bool) {
	if c.kind == ColBool {
		return c.ints, true
	}
	return nil, false
}

// Floats returns the flat double cells when the column is ColDouble.
func (c *Column) Floats() ([]float64, bool) {
	if c.kind == ColDouble {
		return c.fs, true
	}
	return nil, false
}

// Strings returns the flat string cells (and their item Kind) when the
// column is string-class.
func (c *Column) Strings() ([]string, Kind, bool) {
	switch c.kind {
	case ColString:
		return c.ss, KString, true
	case ColUntyped:
		return c.ss, KUntyped, true
	}
	return nil, KString, false
}

// Nodes returns the flat node references when the column is ColNode.
func (c *Column) Nodes() ([]NodeID, bool) {
	if c.kind == ColNode {
		return c.ns, true
	}
	return nil, false
}

// RawItems returns the boxed cells when the column is the mixed fallback.
func (c *Column) RawItems() ([]Item, bool) {
	if c.kind == ColItems {
		return c.items, true
	}
	return nil, false
}

// AppendTo appends every cell, boxed, to dst and returns the extended
// slice.
func (c *Column) AppendTo(dst []Item) []Item {
	switch c.kind {
	case ColInt:
		for _, v := range c.ints {
			dst = append(dst, Item{Kind: KInteger, I: v})
		}
	case ColBool:
		for _, v := range c.ints {
			dst = append(dst, Item{Kind: KBoolean, I: v})
		}
	case ColDouble:
		for _, f := range c.fs {
			dst = append(dst, Item{Kind: KDouble, F: f})
		}
	case ColString:
		for _, s := range c.ss {
			dst = append(dst, Item{Kind: KString, S: s})
		}
	case ColUntyped:
		for _, s := range c.ss {
			dst = append(dst, Item{Kind: KUntyped, S: s})
		}
	case ColNode:
		for _, id := range c.ns {
			dst = append(dst, Item{Kind: KNode, N: id})
		}
	default:
		dst = append(dst, c.items...)
	}
	return dst
}

// Items materializes the column as a fresh boxed slice; for mixed columns
// the internal slice is returned directly (treat it as read-only).
func (c *Column) Items() []Item {
	if c.kind == ColItems {
		return c.items
	}
	return c.AppendTo(make([]Item, 0, c.Len()))
}

// Gather returns a new column with cell j equal to cell perm[j] — the
// typed projection/permutation kernel (a plain copy loop per
// representation, no per-cell boxing).
func (c *Column) Gather(perm []int32) *Column {
	out, _ := c.GatherChunked(perm, 0, nil)
	return out
}

// GatherChunked is Gather with a cooperative poll every chunk cells
// (chunk <= 0 disables polling) so multi-million-row materializations
// stay responsive to cancellation.
func (c *Column) GatherChunked(perm []int32, chunk int, poll func() error) (*Column, error) {
	n := len(perm)
	poll2 := func(i int) error {
		if poll != nil && chunk > 0 && i&(chunk-1) == 0 {
			return poll()
		}
		return nil
	}
	switch c.kind {
	case ColInt, ColBool:
		out := GetInts(n)
		for i, p := range perm {
			if err := poll2(i); err != nil {
				PutInts(out)
				return nil, err
			}
			out[i] = c.ints[p]
		}
		return &Column{kind: c.kind, ints: out}, nil
	case ColDouble:
		out := GetFloats(n)
		for i, p := range perm {
			if err := poll2(i); err != nil {
				PutFloats(out)
				return nil, err
			}
			out[i] = c.fs[p]
		}
		return &Column{kind: ColDouble, fs: out}, nil
	case ColString, ColUntyped:
		out := make([]string, n)
		for i, p := range perm {
			if err := poll2(i); err != nil {
				return nil, err
			}
			out[i] = c.ss[p]
		}
		return &Column{kind: c.kind, ss: out}, nil
	case ColNode:
		out := GetNodes(n)
		for i, p := range perm {
			if err := poll2(i); err != nil {
				PutNodes(out)
				return nil, err
			}
			out[i] = c.ns[p]
		}
		return &Column{kind: ColNode, ns: out}, nil
	default:
		out := GetItems(n)
		for i, p := range perm {
			if err := poll2(i); err != nil {
				PutItems(out)
				return nil, err
			}
			out[i] = c.items[p]
		}
		return &Column{kind: ColItems, items: out}, nil
	}
}

// RepeatOf returns a column of n copies of c's cell i — the typed kernel
// behind singleton cross products.
func RepeatOf(c *Column, i, n int) *Column {
	switch c.kind {
	case ColInt, ColBool:
		out := GetInts(n)
		v := c.ints[i]
		for j := range out {
			out[j] = v
		}
		return &Column{kind: c.kind, ints: out}
	case ColDouble:
		out := GetFloats(n)
		v := c.fs[i]
		for j := range out {
			out[j] = v
		}
		return &Column{kind: ColDouble, fs: out}
	case ColString, ColUntyped:
		out := make([]string, n)
		v := c.ss[i]
		for j := range out {
			out[j] = v
		}
		return &Column{kind: c.kind, ss: out}
	case ColNode:
		out := GetNodes(n)
		v := c.ns[i]
		for j := range out {
			out[j] = v
		}
		return &Column{kind: ColNode, ns: out}
	default:
		out := GetItems(n)
		v := c.items[i]
		for j := range out {
			out[j] = v
		}
		return &Column{kind: ColItems, items: out}
	}
}

// String renders a short diagnostic description.
func (c *Column) String() string {
	names := [...]string{"items", "int", "bool", "double", "string", "untyped", "node"}
	return fmt.Sprintf("column[%s]×%d", names[c.kind], c.Len())
}

// ColumnBuilder accumulates cells into a Column, starting in the typed
// representation of the first cell and demoting to the boxed fallback on
// the first kind mismatch. The zero value is ready to use.
type ColumnBuilder struct {
	col     Column
	started bool
}

// NewColumnBuilder returns a builder with capacity for n cells (buffers
// come from the pool, so sizing generously is cheap).
func NewColumnBuilder(n int) *ColumnBuilder {
	return &ColumnBuilder{}
}

// AppendInt appends an xs:integer cell.
func (b *ColumnBuilder) AppendInt(v int64) {
	if !b.started {
		b.start(ColInt)
	}
	if b.col.kind == ColInt {
		b.col.ints = append(b.col.ints, v)
		return
	}
	b.Append(Item{Kind: KInteger, I: v})
}

// AppendBool appends an xs:boolean cell (0/1).
func (b *ColumnBuilder) AppendBool(v int64) {
	if !b.started {
		b.start(ColBool)
	}
	if b.col.kind == ColBool {
		b.col.ints = append(b.col.ints, v)
		return
	}
	b.Append(Item{Kind: KBoolean, I: v})
}

// AppendNode appends a node-reference cell.
func (b *ColumnBuilder) AppendNode(id NodeID) {
	if !b.started {
		b.start(ColNode)
	}
	if b.col.kind == ColNode {
		b.col.ns = append(b.col.ns, id)
		return
	}
	b.Append(Item{Kind: KNode, N: id})
}

// Append appends any cell, demoting the builder to the boxed fallback
// when the cell's kind does not match the column so far.
func (b *ColumnBuilder) Append(it Item) {
	if !b.started {
		b.start(kindToCol(it.Kind))
	}
	switch b.col.kind {
	case ColInt:
		if it.Kind == KInteger {
			b.col.ints = append(b.col.ints, it.I)
			return
		}
	case ColBool:
		if it.Kind == KBoolean {
			b.col.ints = append(b.col.ints, it.I)
			return
		}
	case ColDouble:
		if it.Kind == KDouble {
			b.col.fs = append(b.col.fs, it.F)
			return
		}
	case ColString:
		if it.Kind == KString {
			b.col.ss = append(b.col.ss, it.S)
			return
		}
	case ColUntyped:
		if it.Kind == KUntyped {
			b.col.ss = append(b.col.ss, it.S)
			return
		}
	case ColNode:
		if it.Kind == KNode {
			b.col.ns = append(b.col.ns, it.N)
			return
		}
	default:
		b.col.items = append(b.col.items, it)
		return
	}
	b.demote()
	b.col.items = append(b.col.items, it)
}

// AppendColumn appends every cell of c — a typed bulk copy when the
// representations match, cell-wise otherwise. An empty column before the
// builder has started does not fix the kind, so a union of an empty left
// arm with a typed right arm stays typed.
func (b *ColumnBuilder) AppendColumn(c *Column) {
	if !b.started {
		if c.Len() == 0 {
			return
		}
		b.start(c.kind)
	}
	if b.col.kind == c.kind {
		switch c.kind {
		case ColInt, ColBool:
			b.col.ints = append(b.col.ints, c.ints...)
		case ColDouble:
			b.col.fs = append(b.col.fs, c.fs...)
		case ColString, ColUntyped:
			b.col.ss = append(b.col.ss, c.ss...)
		case ColNode:
			b.col.ns = append(b.col.ns, c.ns...)
		default:
			b.col.items = append(b.col.items, c.items...)
		}
		return
	}
	n := c.Len()
	for i := 0; i < n; i++ {
		b.Append(c.Get(i))
	}
}

// Finish returns the built column; the builder must not be reused.
func (b *ColumnBuilder) Finish() *Column {
	c := b.col
	b.col = Column{}
	return &c
}

func (b *ColumnBuilder) start(k ColKind) {
	b.started = true
	if ForceBoxed {
		k = ColItems
	}
	b.col.kind = k
}

// demote converts the builder's typed cells to the boxed representation.
func (b *ColumnBuilder) demote() {
	items := (&b.col).AppendTo(nil)
	switch b.col.kind {
	case ColInt, ColBool:
		PutInts(b.col.ints)
	case ColDouble:
		PutFloats(b.col.fs)
	case ColNode:
		PutNodes(b.col.ns)
	}
	b.col = Column{kind: ColItems, items: items}
}

func kindToCol(k Kind) ColKind {
	switch k {
	case KInteger:
		return ColInt
	case KBoolean:
		return ColBool
	case KDouble:
		return ColDouble
	case KString:
		return ColString
	case KUntyped:
		return ColUntyped
	case KNode:
		return ColNode
	default:
		return ColItems // KRawText, KNull and anything internal stay boxed
	}
}
