package xdm

import (
	"sync"
	"testing"
)

func TestLedgerReserveRelease(t *testing.T) {
	l := NewLedger(1000)
	if !l.reserve(600) {
		t.Fatal("reserve 600/1000 refused")
	}
	if l.reserve(500) {
		t.Fatal("reserve 500 with 400 free succeeded")
	}
	if !l.reserve(400) {
		t.Fatal("reserve exactly to the cap refused")
	}
	l.release(1000)
	if got := l.Used(); got != 0 {
		t.Errorf("used = %d after full release, want 0", got)
	}
	// Unlimited ledger still tracks usage.
	u := NewLedger(0)
	if !u.reserve(1 << 40) {
		t.Error("unlimited ledger refused a reservation")
	}
	if got := u.Used(); got != 1<<40 {
		t.Errorf("unlimited ledger used = %d", got)
	}
}

func TestAccountQuotaThenGlobal(t *testing.T) {
	l := NewLedger(1000)
	a := l.NewAccount(300)
	if ob := a.Reserve(200); ob != nil {
		t.Fatalf("reserve within quota: %+v", ob)
	}
	ob := a.Reserve(200)
	if ob == nil || ob.Scope != "query" {
		t.Fatalf("quota overrun: %+v, want query scope", ob)
	}
	if ob.Limit != 300 || ob.Used != 200 || ob.Need != 200 {
		t.Errorf("quota overrun detail = %+v, want limit 300, used 200, need 200", ob)
	}
	// The refused reservation must not leak into either balance.
	if a.Used() != 200 || l.Used() != 200 {
		t.Errorf("balances after refusal: account %d, ledger %d, want 200/200", a.Used(), l.Used())
	}

	b := l.NewAccount(0) // quota-free, bounded only by the ledger
	if ob := b.Reserve(900); ob == nil || ob.Scope != "global" {
		t.Fatalf("global overrun: %+v, want global scope", ob)
	}
	// A global refusal rolls the quota charge back too: the account can
	// still reserve what does fit.
	if ob := b.Reserve(800); ob != nil {
		t.Errorf("reserve 800 with 800 free: %+v", ob)
	}

	a.Close()
	b.Close()
	if l.Used() != 0 {
		t.Errorf("ledger used = %d after both accounts closed, want 0", l.Used())
	}
	// Close is idempotent; a second close must not double-release.
	c := l.NewAccount(0)
	if ob := c.Reserve(100); ob != nil {
		t.Fatalf("reserve: %+v", ob)
	}
	c.Close()
	c.Close()
	if l.Used() != 0 {
		t.Errorf("ledger used = %d after idempotent close, want 0", l.Used())
	}
}

func TestAccountCanReserve(t *testing.T) {
	l := NewLedger(1000)
	a := l.NewAccount(100)
	if ob := a.CanReserve(100); ob != nil {
		t.Errorf("CanReserve within quota: %+v", ob)
	}
	if ob := a.CanReserve(101); ob == nil {
		t.Error("CanReserve beyond quota succeeded")
	}
	// Prospective checks must not reserve anything.
	if a.Used() != 0 || l.Used() != 0 {
		t.Errorf("CanReserve reserved: account %d, ledger %d", a.Used(), l.Used())
	}
}

// TestLedgerConcurrentDrain is the budget-drift check: many goroutines
// reserving and closing concurrently must leave the ledger at exactly
// zero, with no reservation ever exceeding the cap.
func TestLedgerConcurrentDrain(t *testing.T) {
	const (
		goroutines = 16
		iterations = 200
		cap        = 1 << 20
	)
	l := NewLedger(cap)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				a := l.NewAccount(cap / goroutines)
				for n := int64(1); n <= 1024; n <<= 2 {
					a.Reserve(n) // some succeed, some hit the quota — both fine
					if u := l.Used(); u > cap {
						t.Errorf("ledger used %d exceeds cap %d", u, cap)
						break
					}
				}
				a.Close()
			}
		}()
	}
	wg.Wait()
	if got := l.Used(); got != 0 {
		t.Errorf("ledger used = %d after all accounts closed, want 0 (budget drift)", got)
	}
}
