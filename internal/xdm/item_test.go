package xdm

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStringValue(t *testing.T) {
	tests := []struct {
		it   Item
		want string
	}{
		{NewInt(42), "42"},
		{NewInt(-7), "-7"},
		{NewDouble(2.5), "2.5"},
		{NewDouble(3), "3"},
		{NewDouble(-0.5), "-0.5"},
		{NewDouble(math.Inf(1)), "INF"},
		{NewDouble(math.Inf(-1)), "-INF"},
		{NewDouble(math.NaN()), "NaN"},
		{NewString("hi"), "hi"},
		{NewUntyped(" raw "), " raw "},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
	}
	for _, tc := range tests {
		if got := tc.it.StringValue(); got != tc.want {
			t.Errorf("StringValue(%v) = %q, want %q", tc.it, got, tc.want)
		}
	}
}

func TestAsDouble(t *testing.T) {
	for _, tc := range []struct {
		it   Item
		want float64
		ok   bool
	}{
		{NewInt(3), 3, true},
		{NewDouble(2.5), 2.5, true},
		{NewUntyped(" 4.25 "), 4.25, true},
		{NewString("12"), 12, true},
		{NewString("abc"), 0, false},
		{NewBool(true), 1, true},
	} {
		got, err := tc.it.AsDouble()
		if (err == nil) != tc.ok {
			t.Fatalf("AsDouble(%v) error = %v, want ok=%v", tc.it, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Errorf("AsDouble(%v) = %v, want %v", tc.it, got, tc.want)
		}
	}
}

func TestAsInteger(t *testing.T) {
	for _, tc := range []struct {
		it   Item
		want int64
		ok   bool
	}{
		{NewInt(3), 3, true},
		{NewDouble(2.9), 2, true},
		{NewUntyped("17"), 17, true},
		{NewUntyped("2.5"), 2, true},
		{NewString("x"), 0, false},
	} {
		got, err := tc.it.AsInteger()
		if (err == nil) != tc.ok {
			t.Fatalf("AsInteger(%v) error = %v, want ok=%v", tc.it, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Errorf("AsInteger(%v) = %v, want %v", tc.it, got, tc.want)
		}
	}
}

func TestNumberOrNaN(t *testing.T) {
	if got := NewString("oops").NumberOrNaN(); !math.IsNaN(got) {
		t.Errorf("NumberOrNaN(bad string) = %v, want NaN", got)
	}
	if got := NewUntyped("6.5").NumberOrNaN(); got != 6.5 {
		t.Errorf("NumberOrNaN(6.5) = %v", got)
	}
}

func TestSameAtomicValue(t *testing.T) {
	for _, tc := range []struct {
		a, b Item
		want bool
	}{
		{NewInt(3), NewDouble(3), true},
		{NewInt(3), NewDouble(3.5), false},
		{NewString("a"), NewUntyped("a"), true},
		{NewString("a"), NewString("b"), false},
		{NewBool(true), NewBool(true), true},
		{NewBool(true), NewInt(1), false},
		{NewString("1"), NewInt(1), false},
		{NewDouble(math.NaN()), NewDouble(math.NaN()), true},
	} {
		if got := SameAtomicValue(tc.a, tc.b); got != tc.want {
			t.Errorf("SameAtomicValue(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestDistinctKeyMatchesSameAtomicValue(t *testing.T) {
	// Property: equal keys <=> SameAtomicValue, over a mixed pool.
	pool := []Item{
		NewInt(1), NewInt(2), NewDouble(1), NewDouble(2.5),
		NewString("1"), NewUntyped("1"), NewString("x"),
		NewBool(true), NewBool(false),
	}
	for _, a := range pool {
		for _, b := range pool {
			same := SameAtomicValue(a, b)
			keys := DistinctKey(a) == DistinctKey(b)
			if same != keys {
				t.Errorf("key/value disagreement for %v vs %v: same=%v keys=%v", a, b, same, keys)
			}
		}
	}
}

func TestNodeIDBefore(t *testing.T) {
	a := NodeID{Frag: 0, Pre: 5}
	b := NodeID{Frag: 0, Pre: 9}
	c := NodeID{Frag: 1, Pre: 0}
	if !a.Before(b) || b.Before(a) {
		t.Error("within-fragment order wrong")
	}
	if !b.Before(c) || c.Before(b) {
		t.Error("cross-fragment order wrong")
	}
	if a.Before(a) {
		t.Error("irreflexivity violated")
	}
}

func TestOrderCompareTotalOrderProperty(t *testing.T) {
	// Antisymmetry and sign consistency over random integer items.
	f := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, c2 := OrderCompare(x, y), OrderCompare(y, x)
		return c1 == -c2 && (a == b) == (c1 == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
