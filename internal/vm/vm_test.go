package vm

// Structural invariants of Compile, independent of the end-to-end
// differential suite in internal/core: register discipline (topological
// sources, last-consumer release, root never released), memo-use counts
// on shared nodes, document parameter-slot dedup, and a program executed
// through Run agreeing with the engine on a hand-built DAG.

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// sharedPlan builds a small DAG with one node consumed twice: a doc scan
// stepped to //b, whose output feeds both sides of a cross product.
func sharedPlan() *algebra.Node {
	b := algebra.NewBuilder()
	doc := b.Doc("d.xml")
	ctx := b.Cross(b.LitCol("iter", xdm.NewInt(1)), doc)
	shared := b.Step(ctx, xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestName, Name: "b"})
	left := b.Project(shared, algebra.ColPair{New: "l", Old: "item"})
	right := b.Project(shared, algebra.ColPair{New: "r", Old: "item"})
	return b.Cross(left, right)
}

func TestCompileRegisterDiscipline(t *testing.T) {
	root := sharedPlan()
	p := Compile(root)
	if p.NumInstrs() != len(algebra.Nodes(root)) {
		t.Fatalf("%d instructions for %d plan nodes", p.NumInstrs(), len(algebra.Nodes(root)))
	}
	lastUse := map[uint32]int{}
	for i, ins := range p.instrs {
		if int(ins.dst) != i {
			t.Errorf("instr %d writes register %d (registers are topo positions)", i, ins.dst)
		}
		for _, s := range ins.srcs {
			if s >= ins.dst {
				t.Errorf("instr %d reads register %d, not yet written", i, s)
			}
			lastUse[s] = i
		}
	}
	released := map[uint32]int{}
	for i, ins := range p.instrs {
		for _, r := range ins.release {
			if prev, dup := released[r]; dup {
				t.Errorf("register %d released twice (instr %d and %d)", r, prev, i)
			}
			released[r] = i
			if i < lastUse[r] {
				t.Errorf("register %d released at instr %d but read later at %d", r, i, lastUse[r])
			}
		}
	}
	rootReg := p.instrs[len(p.instrs)-1].dst
	if _, ok := released[rootReg]; ok {
		t.Error("root register released inside the program (Finish reads it after)")
	}
	// Every non-root register with a consumer is released exactly once.
	for r, last := range lastUse {
		if _, ok := released[r]; !ok {
			t.Errorf("register %d (last used at %d) never released", r, last)
		}
	}
}

func TestCompileSharedNodeMemoUses(t *testing.T) {
	p := Compile(sharedPlan())
	var sharedExtra int
	for _, ins := range p.instrs {
		if ins.node.Kind == algebra.OpStep {
			sharedExtra = ins.extraUses
		}
	}
	if sharedExtra != 1 {
		t.Errorf("doubly consumed step node has extraUses=%d, want 1 (one memo hit in the walked engine)", sharedExtra)
	}
}

func TestCompileDocSlotsDedup(t *testing.T) {
	// Structural hash-consing already merges identical Doc nodes; distinct
	// URIs must get distinct slots in first-use order.
	b := algebra.NewBuilder()
	a1 := b.Project(b.Doc("a.xml"), algebra.ColPair{New: "a1", Old: "item"})
	b1 := b.Project(b.Doc("b.xml"), algebra.ColPair{New: "b1", Old: "item"})
	a2 := b.Project(b.Doc("a.xml"), algebra.ColPair{New: "a2", Old: "item"})
	p := Compile(b.Cross(b.Cross(a1, a2), b1))
	docs := p.Docs()
	if len(docs) != 2 || docs[0] != "a.xml" || docs[1] != "b.xml" {
		t.Fatalf("doc slots = %v, want [a.xml b.xml]", docs)
	}
}

func TestRunMatchesEngineOnHandBuiltPlan(t *testing.T) {
	store := xmltree.NewStore()
	f, err := xmltree.ParseString(`<r><b>x</b><b>y</b></r>`, "d.xml", xmltree.ParseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string][]uint32{"d.xml": {store.Add(f)}}
	// A serializable root: (pos, item) over the //b nodes.
	b := algebra.NewBuilder()
	ctx := b.Cross(b.LitCol("iter", xdm.NewInt(1)), b.Doc("d.xml"))
	s := b.Step(ctx, xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestName, Name: "b"})
	root := b.Keep(b.RowID(s, "pos"), "pos", "item")

	want, err := engine.Run(root, store, docs, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Compile(root), store, docs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(want.Items) || len(got.Items) != 2 {
		t.Fatalf("compiled %d items, engine %d items, want 2", len(got.Items), len(want.Items))
	}
	for i := range want.Items {
		if got.Items[i] != want.Items[i] {
			t.Fatalf("item %d: compiled %v, engine %v", i, got.Items[i], want.Items[i])
		}
	}
}

func TestRunUnknownDocumentError(t *testing.T) {
	b := algebra.NewBuilder()
	plan := b.Cross(b.LitCol("iter", xdm.NewInt(1)), b.Doc("missing.xml"))
	_, err := Run(Compile(plan), xmltree.NewStore(), nil, Options{})
	if err == nil || !strings.Contains(err.Error(), `unknown document "missing.xml"`) {
		t.Fatalf("err = %v, want unknown document", err)
	}
}

func TestExplainShape(t *testing.T) {
	p := Compile(sharedPlan())
	out := p.Explain()
	if !strings.Contains(out, "program: ") || !strings.Contains(out, "d0 = doc \"d.xml\"") {
		t.Fatalf("explain missing header/doc slots:\n%s", out)
	}
	// The shared step is read twice: its line carries the memo-use count,
	// and some later line frees its register.
	if !strings.Contains(out, "uses=2") {
		t.Errorf("shared node's uses=2 missing:\n%s", out)
	}
	if !strings.Contains(out, "free=") {
		t.Errorf("no free lists rendered:\n%s", out)
	}
	// Every instruction line names its plan node by #id.
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if i == 0 || strings.HasPrefix(strings.TrimSpace(line), "d") { // header, doc slots
			continue
		}
		if !strings.Contains(line, "#") {
			t.Errorf("instruction line without plan #id: %q", line)
		}
	}
}
