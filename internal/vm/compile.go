package vm

import (
	"sync"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/xdm"
)

// opcode selects the kernel an instruction runs. The specialized opcodes
// cover the operators whose kernels need no name resolution at run time
// (their column positions are burned in at compile time); everything
// else dispatches through the engine's boxed/typed kernels via
// opGeneric. opParFork/opParJoin bracket a Par-marked operator: fork
// hands morsel ranges to internal/parallel (or runs the serial kernel
// when the pool is size one or the operator is too small to split), join
// does the merge-side accounting.
type opcode uint8

const (
	opGeneric opcode = iota
	opLit
	opProject
	opSelect
	opRowID
	opUnion
	opDoc
	opParFork
	opParJoin
)

// instr is one instruction of a compiled program. dst/srcs/release are
// register numbers; a register holds the output table of exactly one
// operator (the DAG's memo entry, now a slot instead of a map lookup).
type instr struct {
	op     opcode
	kernel opcode // serial kernel opcode; == op except on fork/join pairs
	node   *algebra.Node
	dst    uint32
	srcs   []uint32
	// release lists the registers whose last consumer this instruction
	// is: after the output is stored, these tables drop their column
	// references and buffers at zero references return to the xdm pool —
	// the compile-time form of engine.ReleaseInputs' runtime counting.
	release []uint32
	// cols carries pre-resolved column positions: project's source
	// positions, select's condition position, union's right-side
	// position for each left column.
	cols []int
	// slot is the document parameter slot (opDoc): the URI is resolved
	// against the execution's document registry at run (bind) time, so a
	// cached program survives document reloads.
	slot int
	// lit is the literal table, prebuilt at compile time and shared by
	// every execution of the program (its buffers are pinned, never
	// recycled).
	lit *engine.Table
	// extraUses is the number of consumers beyond the first — the runs
	// the walked engine would have served from the memo. Replayed into
	// the stats collector so EXPLAIN ANALYZE memo-hit counts match.
	extraUses int
	// kinds is the statically inferred column type of each output column
	// (ctUnknown where inference gives up); explain-only.
	kinds []colType
}

// Program is a bytecode-compiled plan: the optimized algebra DAG
// flattened into a linear register program, one instruction per
// operator, in the exact order the tree-walking engine would evaluate
// them (algebra.Nodes order — load-bearing for byte-identical results,
// see that function's doc). A Program is immutable after Compile and
// safe for concurrent executions; per-execution state lives in pooled
// frames.
type Program struct {
	root   *algebra.Node
	instrs []instr
	nregs  int
	docs   []string // parameter slots: fn:doc URIs in first-use order
	frames sync.Pool
}

// Root returns the algebra root the program was compiled from.
func (p *Program) Root() *algebra.Node { return p.root }

// NumInstrs returns the instruction count (fork/join pairs count as two).
func (p *Program) NumInstrs() int { return len(p.instrs) }

// Docs returns the document parameter slots (fn:doc URIs) in slot order.
func (p *Program) Docs() []string { return p.docs }

// Compile flattens the optimized plan DAG into a register program.
// Sharing in the DAG becomes register reuse: a node with several
// consumers is evaluated once into its register and read many times; the
// register is released at its last consumer, which is when the walked
// engine's reference counting would have recycled the memo entry.
func Compile(root *algebra.Node) *Program {
	nodes := algebra.Nodes(root)
	p := &Program{root: root, nregs: len(nodes)}

	reg := make(map[*algebra.Node]uint32, len(nodes))
	consumers := make(map[*algebra.Node]int, len(nodes))
	for _, n := range nodes {
		for _, in := range n.Ins {
			consumers[in]++
		}
	}
	// remaining drives last-consumer release; the root gets one extra use
	// because Finish reads its table after the program ends.
	remaining := make(map[*algebra.Node]int, len(nodes))
	for n, c := range consumers {
		remaining[n] = c
	}
	remaining[root]++

	docSlot := make(map[string]int)
	kinds := make(map[*algebra.Node][]colType, len(nodes))

	for i, n := range nodes {
		reg[n] = uint32(i)
		ins := instr{node: n, dst: uint32(i), srcs: make([]uint32, len(n.Ins))}
		for j, in := range n.Ins {
			ins.srcs[j] = reg[in]
		}
		if c := consumers[n]; c > 1 {
			ins.extraUses = c - 1
		}
		ins.kernel = selectKernel(&ins, n, p, docSlot)
		ins.kinds = inferKinds(n, &ins, kinds)
		kinds[n] = ins.kinds

		// The last consumer of each input releases it. With a fork/join
		// pair the release rides on the join: the fork's parallel kernel
		// still reads the inputs.
		var release []uint32
		for _, in := range n.Ins {
			c := remaining[in] - 1
			remaining[in] = c
			if c == 0 {
				release = append(release, reg[in])
			}
		}

		if n.Par {
			fork := ins
			fork.op = opParFork
			join := instr{
				op: opParJoin, kernel: ins.kernel, node: n,
				dst: ins.dst, srcs: ins.srcs, release: release,
				extraUses: ins.extraUses, kinds: ins.kinds,
			}
			fork.release = nil
			fork.extraUses = 0
			p.instrs = append(p.instrs, fork, join)
			continue
		}
		ins.op = ins.kernel
		ins.release = release
		p.instrs = append(p.instrs, ins)
	}

	p.frames.New = func() any {
		return &frame{
			regs:    make([]*engine.Table, p.nregs),
			colRefs: make(map[*xdm.Column]int, p.nregs*2),
			docIDs:  make([][]uint32, len(p.docs)),
			docOK:   make([]bool, len(p.docs)),
		}
	}
	return p
}

// selectKernel picks the specialized opcode for n when its column
// references resolve positionally at compile time, filling the
// instruction's pre-resolved fields; anything unresolvable (or simply
// not specialized) falls back to opGeneric, i.e. the engine's EvalOp.
func selectKernel(ins *instr, n *algebra.Node, p *Program, docSlot map[string]int) opcode {
	switch n.Kind {
	case algebra.OpLit:
		ins.lit = buildLit(n)
		return opLit
	case algebra.OpProject:
		src := n.Ins[0].Schema()
		cols := make([]int, len(n.Proj))
		for i, pr := range n.Proj {
			ci := colIndex(src, pr.Old)
			if ci < 0 {
				return opGeneric
			}
			cols[i] = ci
		}
		ins.cols = cols
		return opProject
	case algebra.OpSelect:
		ci := colIndex(n.Ins[0].Schema(), n.Col)
		if ci < 0 {
			return opGeneric
		}
		ins.cols = []int{ci}
		return opSelect
	case algebra.OpRowID:
		return opRowID
	case algebra.OpUnion:
		ls, rs := n.Ins[0].Schema(), n.Ins[1].Schema()
		cols := make([]int, len(ls))
		for i, name := range ls {
			ci := colIndex(rs, name)
			if ci < 0 {
				return opGeneric
			}
			cols[i] = ci
		}
		ins.cols = cols
		return opUnion
	case algebra.OpDoc:
		slot, ok := docSlot[n.URI]
		if !ok {
			slot = len(p.docs)
			docSlot[n.URI] = slot
			p.docs = append(p.docs, n.URI)
		}
		ins.slot = slot
		return opDoc
	}
	return opGeneric
}

// buildLit materializes a literal table once at compile time, exactly as
// the walked engine's OpLit kernel would per run. The columns reflect
// the xdm.ForceBoxed state at compile time — physically typed or boxed,
// results are identical either way, which is the PR 3 premise the
// differential suite pins. The name index is built eagerly: the table is
// shared across concurrent executions, so the lazy build would race.
func buildLit(n *algebra.Node) *engine.Table {
	data := make([]*xdm.Column, len(n.Cols))
	for c := range n.Cols {
		var b xdm.ColumnBuilder
		for _, row := range n.Rows {
			b.Append(row[c])
		}
		data[c] = b.Finish()
	}
	t := engine.NewTableFromCols(n.Cols, data)
	t.BuildIndex()
	return t
}

func colIndex(schema []string, name string) int {
	for i, c := range schema {
		if c == name {
			return i
		}
	}
	return -1
}
