// Package vm executes bytecode-compiled plans: the optimized algebra DAG
// flattened (once, at Prepare time) into a linear register program that
// a cached Prepared carries across executions, so a warm plan-cache hit
// runs without re-walking — or re-deriving — anything.
//
// The split mirrors the classic bytecode-vs-tree-walking interpreter
// divide: the tree-walking engine (internal/engine) re-traverses the DAG
// and re-resolves column names on every run, while the VM resolves
// registers, column positions, buffer release points and document
// parameter slots at compile time and leaves only the kernels for run
// time. Both evaluate operators in the same deterministic order
// (algebra.Nodes order) over the same kernels, which keeps results
// byte-identical — the differential suite pins this.
//
// Everything the serving layers hook into is preserved: the executor
// polls the same budget/cancel/heartbeat points (engine.Exec), feeds the
// same per-plan-node statistics collector (so EXPLAIN ANALYZE and
// xmarkbench -stats join compiled runs back to plan #ids), and brackets
// Par-marked operators with a fork/join instruction pair that hands
// morsel ranges to internal/parallel — order indifference licenses the
// parallel run, the join's deterministic serial merge keeps the bytes.
package vm

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// Options configures one execution of a compiled program. The embedded
// engine.Options carry the budget/cancel/heartbeat/observability hooks;
// Workers > 1 arms the fork/join instructions with a morsel pool (a
// degraded governor admission passes 1 to force the serial fallback).
type Options struct {
	engine.Options
	Workers       int
	MinMorselRows int
}

// frame is the per-execution state of a program: the register file, the
// column reference counts driving buffer recycling, the bound document
// slots, and the fork→join scratch. Frames are pooled per program; a
// frame never outlives its execution.
type frame struct {
	regs    []*engine.Table
	colRefs map[*xdm.Column]int
	docIDs  [][]uint32
	docOK   []bool
	scratch []*engine.Table

	// fork→join hand-off (instructions are adjacent, so one slot).
	pendT       *engine.Table
	pendBusy    time.Duration
	pendCharged bool
	pendStart   time.Time
	pendSpan    func()
}

// inputs gathers the source registers into the frame's scratch slice
// (valid until the next call — kernels read, never retain).
func (f *frame) inputs(ins *instr) []*engine.Table {
	if cap(f.scratch) < len(ins.srcs) {
		f.scratch = make([]*engine.Table, len(ins.srcs))
	}
	s := f.scratch[:len(ins.srcs)]
	for i, r := range ins.srcs {
		s[i] = f.regs[r]
	}
	return s
}

// Run executes a compiled program. It is the VM counterpart of
// engine.Run/parallel.Run: docs maps fn:doc() URIs to fragment ids in
// base (the program's document slots bind here, per execution — not at
// compile time, which is what makes cached programs safe across
// document reloads), constructed fragments go to a derived store. Run
// never panics: invariant violations surface as qerr.ErrInternal.
func Run(p *Program, base *xmltree.Store, docs map[string][]uint32, opts Options) (res *engine.Result, err error) {
	defer qerr.RecoverInto("execute", &err)
	defer func() {
		obs.QueriesTotal.Inc()
		if err != nil {
			obs.QueryErrorsTotal.Inc()
		}
	}()
	ex := engine.NewExec(base, docs, opts.Options)
	start := time.Now()
	t, err := p.exec(ex, docs, opts)
	if err != nil {
		return nil, err
	}
	res = ex.Finish(t, start)
	obs.QueryNanos.Observe(res.Elapsed.Nanoseconds())
	return res, nil
}

// exec runs the instruction loop. The per-instruction bookkeeping —
// deadline poll, tracer span, profile record, stats collection, cell
// charge, buffer release — replays exactly what engine.Eval (serial) and
// the parallel executor (fork/join) do per node, so budgets, EXPLAIN
// ANALYZE and profiles are indistinguishable between walked and compiled
// runs.
func (p *Program) exec(ex *engine.Exec, docs map[string][]uint32, opts Options) (*engine.Table, error) {
	f := p.frames.Get().(*frame)
	defer p.putFrame(f)
	for i, uri := range p.docs {
		f.docIDs[i], f.docOK[i] = docs[uri]
	}
	for ii := range p.instrs {
		ins := &p.instrs[ii]
		switch ins.op {
		case opParFork:
			if err := ex.CheckDeadline(); err != nil {
				return nil, err
			}
			tables := f.inputs(ins)
			f.pendSpan = ex.StartOpSpan(ins.node)
			f.pendStart = time.Now()
			var t *engine.Table
			var busy time.Duration
			charged := false
			if opts.Workers > 1 {
				pt, pbusy, pcharged, ok, err := parallel.EvalParOp(ex, opts.Workers, opts.MinMorselRows, ins.node, tables)
				if err != nil {
					return nil, err
				}
				if ok {
					t, busy, charged = pt, pbusy, pcharged
				}
			}
			if t == nil {
				var err error
				t, err = p.runKernel(ex, f, ins, tables)
				if err != nil {
					return nil, err
				}
			}
			f.pendT, f.pendBusy, f.pendCharged = t, busy, charged

		case opParJoin:
			t := f.pendT
			f.pendT = nil
			if f.pendSpan != nil {
				f.pendSpan()
				f.pendSpan = nil
			}
			// Attribute summed per-worker busy time when it exceeds wall
			// time, exactly like the parallel executor's merge side.
			wall := time.Since(f.pendStart)
			d := wall
			if f.pendBusy > d {
				d = f.pendBusy
			}
			ex.Record(ins.node, d, t.NumRows())
			ex.CollectOp(ins.node, wall, f.inputs(ins), t)
			if !f.pendCharged {
				if err := ex.ChargeCells(int64(t.NumRows()) * int64(len(t.Cols))); err != nil {
					return nil, err
				}
			}
			f.store(ins, t, ex)

		default:
			if err := ex.CheckDeadline(); err != nil {
				return nil, err
			}
			tables := f.inputs(ins)
			start := time.Now()
			endSpan := ex.StartOpSpan(ins.node)
			t, err := p.runKernel(ex, f, ins, tables)
			if endSpan != nil {
				endSpan()
			}
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			ex.Record(ins.node, d, t.NumRows())
			ex.CollectOp(ins.node, d, tables, t)
			if err := ex.ChargeCells(int64(t.NumRows()) * int64(len(t.Cols))); err != nil {
				return nil, err
			}
			f.store(ins, t, ex)
		}
	}
	return f.regs[p.instrs[len(p.instrs)-1].dst], nil
}

// store writes the output table to its register, takes column references
// (before releasing inputs, so aliased columns survive), then frees the
// registers whose last consumer this instruction was — the compile-time
// replacement for the walked engine's Memoize+ReleaseInputs counting. It
// also replays the memo hits the walked engine would have recorded for
// the node's additional consumers, keeping stats comparable.
func (f *frame) store(ins *instr, t *engine.Table, ex *engine.Exec) {
	f.regs[ins.dst] = t
	for _, c := range t.Data {
		f.colRefs[c]++
	}
	for _, r := range ins.release {
		rt := f.regs[r]
		f.regs[r] = nil
		for _, c := range rt.Data {
			k := f.colRefs[c] - 1
			if k > 0 {
				f.colRefs[c] = k
				continue
			}
			delete(f.colRefs, c)
			xdm.RecycleColumn(c)
		}
	}
	for k := 0; k < ins.extraUses; k++ {
		ex.CollectMemoHit(ins.node)
	}
}

// runKernel evaluates one serial kernel. The specialized opcodes are the
// type-aware fast paths with columns resolved positionally at compile
// time; opGeneric delegates to the engine's EvalOp (which runs the same
// typed kernels, after name resolution). The fault-injection hook fires
// on every kernel either way.
func (p *Program) runKernel(ex *engine.Exec, f *frame, ins *instr, ts []*engine.Table) (*engine.Table, error) {
	n := ins.node
	if ins.kernel == opGeneric {
		return ex.EvalOp(n, ts) // EvalOp runs EvalHook itself
	}
	if engine.EvalHook != nil {
		engine.EvalHook(n)
	}
	switch ins.kernel {
	case opLit:
		t := ins.lit
		// Pin: the program owns these buffers across executions; the
		// extra reference keeps release from recycling them into the
		// pool, where a later run would scribble over the cached plan.
		for _, c := range t.Data {
			f.colRefs[c]++
		}
		return t, nil

	case opProject:
		in := ts[0]
		data := make([]*xdm.Column, len(ins.cols))
		for i, ci := range ins.cols {
			data[i] = in.Data[ci]
		}
		return engine.NewTableFromCols(n.Schema(), data), nil

	case opSelect:
		return evalSelect(ex, n, ts[0], ins.cols[0])

	case opRowID:
		in := ts[0]
		num := xdm.GetInts(in.NumRows())
		for i := range num {
			num[i] = int64(i + 1)
		}
		return in.WithColumn(n.Col, xdm.IntColumn(num)), nil

	case opUnion:
		l, r := ts[0], ts[1]
		data := make([]*xdm.Column, len(l.Cols))
		for c := range l.Cols {
			var b xdm.ColumnBuilder
			b.AppendColumn(l.Data[c])
			b.AppendColumn(r.Data[ins.cols[c]])
			data[c] = b.Finish()
		}
		return engine.NewTableFromCols(l.Cols, data), nil

	case opDoc:
		if !f.docOK[ins.slot] {
			return nil, ex.Errf(n, "unknown document %q", n.URI)
		}
		ids := f.docIDs[ins.slot]
		roots := make([]xdm.NodeID, len(ids))
		for i, id := range ids {
			roots[i] = xdm.NodeID{Frag: id, Pre: 0}
		}
		col := xdm.NodeColumn(roots)
		return engine.NewTableFromCols(n.Schema(), []*xdm.Column{col}), nil
	}
	return nil, ex.Errf(n, "vm: unimplemented opcode")
}

// evalSelect mirrors the engine's select kernel byte for byte (flat 0/1
// scan on typed condition columns, per-item kind checks on the boxed
// fallback, identical error text), with the condition column position
// pre-resolved.
func evalSelect(ex *engine.Exec, n *algebra.Node, in *engine.Table, ci int) (*engine.Table, error) {
	cond := in.Data[ci]
	rows := cond.Len()
	buf := xdm.GetInt32s(rows)
	keep := buf[:0]
	if bs, ok := cond.Bools(); ok {
		for r, v := range bs {
			if v != 0 {
				keep = append(keep, int32(r))
			}
		}
	} else if items, ok := cond.RawItems(); ok {
		for r, it := range items {
			if it.Kind != xdm.KBoolean {
				xdm.PutInt32s(buf)
				return nil, ex.Errf(n, "selection over non-boolean %s", it.Kind)
			}
			if it.I != 0 {
				keep = append(keep, int32(r))
			}
		}
	} else if rows > 0 {
		xdm.PutInt32s(buf)
		return nil, ex.Errf(n, "selection over non-boolean %s", cond.Get(0).Kind)
	}
	out := in.Filter(keep)
	xdm.PutInt32s(buf)
	return out, nil
}

// putFrame clears an execution's state (on success and error paths
// alike — an error may leave any subset of registers live, which the GC
// reclaims; recycling them into the pool would be unsound since the
// error may have published aliases) and returns the frame to the pool.
func (p *Program) putFrame(f *frame) {
	clear(f.regs)
	clear(f.colRefs)
	f.pendT = nil
	f.pendSpan = nil
	p.frames.Put(f)
}
