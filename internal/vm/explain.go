package vm

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/xdm"
)

// colType is the statically inferred storage type of an output column,
// printed by Explain next to each instruction. It is the compile-time
// shadow of xdm.ColKind: ctUnknown marks columns whose type depends on
// run-time values (item-level binop/map results before the builder's
// homogeneity detection), where the explain dump prints "?" rather than
// over-claim.
type colType uint8

const (
	ctUnknown colType = iota
	ctInt
	ctBool
	ctDouble
	ctString
	ctUntyped
	ctNode
	ctItems
)

func (c colType) String() string {
	switch c {
	case ctInt:
		return "int"
	case ctBool:
		return "bool"
	case ctDouble:
		return "double"
	case ctString:
		return "str"
	case ctUntyped:
		return "untyped"
	case ctNode:
		return "node"
	case ctItems:
		return "items"
	default:
		return "?"
	}
}

func fromColKind(k xdm.ColKind) colType {
	switch k {
	case xdm.ColInt:
		return ctInt
	case xdm.ColBool:
		return ctBool
	case xdm.ColDouble:
		return ctDouble
	case xdm.ColString:
		return ctString
	case xdm.ColUntyped:
		return ctUntyped
	case xdm.ColNode:
		return ctNode
	default:
		return ctItems
	}
}

// inferKinds derives the static column types of n's output from its
// inputs' (already inferred) types. The rules mirror the kernels'
// actual output shapes: numbering columns are integers, step/doc
// outputs are nodes, filters and projections propagate. The inference
// is explain-only — kernels re-check at run time — so unknown is always
// a safe answer and nothing here may panic.
func inferKinds(n *algebra.Node, ins *instr, kindsOf map[*algebra.Node][]colType) []colType {
	in := func(i int) []colType {
		if i < len(n.Ins) {
			if k, ok := kindsOf[n.Ins[i]]; ok {
				return k
			}
		}
		return nil
	}
	at := func(k []colType, i int) colType {
		if i >= 0 && i < len(k) {
			return k[i]
		}
		return ctUnknown
	}
	unknowns := func(cols int) []colType { return make([]colType, cols) }

	switch n.Kind {
	case algebra.OpLit:
		// The literal table is already built: read the actual kinds.
		if ins.lit == nil {
			return unknowns(len(n.Cols))
		}
		out := make([]colType, len(ins.lit.Data))
		for i, c := range ins.lit.Data {
			out[i] = fromColKind(c.Kind())
		}
		return out
	case algebra.OpDoc:
		return []colType{ctNode}
	case algebra.OpStep:
		return []colType{ctInt, ctNode}
	case algebra.OpElem, algebra.OpAttr:
		return []colType{ctInt, ctNode}
	case algebra.OpRange:
		return []colType{ctInt, ctInt, ctInt}
	case algebra.OpProject:
		src := in(0)
		out := make([]colType, len(n.Proj))
		for i := range n.Proj {
			if ins.cols != nil {
				out[i] = at(src, ins.cols[i])
			}
		}
		return out
	case algebra.OpSelect, algebra.OpSemi, algebra.OpDiff, algebra.OpCheckCard:
		if k := in(0); k != nil {
			return k
		}
		return unknowns(len(n.Schema()))
	case algebra.OpJoin, algebra.OpCross:
		l, r := in(0), in(1)
		if l == nil || r == nil {
			return unknowns(len(n.Schema()))
		}
		return append(append([]colType{}, l...), r...)
	case algebra.OpRowID, algebra.OpRowNum:
		l := in(0)
		if l == nil {
			return unknowns(len(n.Schema()))
		}
		return append(append([]colType{}, l...), ctInt)
	case algebra.OpUnion:
		l, r := in(0), in(1)
		out := make([]colType, len(n.Schema()))
		for i := range out {
			lk := at(l, i)
			ri := i
			if ins.cols != nil {
				ri = ins.cols[i]
			}
			if rk := at(r, ri); rk == lk {
				out[i] = lk
			} else {
				out[i] = ctItems
			}
		}
		return out
	case algebra.OpDistinct:
		src, schema := in(0), n.Ins[0].Schema()
		out := make([]colType, len(n.Cols))
		for i, name := range n.Cols {
			out[i] = at(src, colIndex(schema, name))
		}
		return out
	case algebra.OpAggr:
		var res colType
		switch n.AFn {
		case algebra.AggrCount:
			res = ctInt
		case algebra.AggrEbv:
			res = ctBool
		case algebra.AggrStrJoin:
			res = ctString
		}
		if n.Part != "" {
			part := at(in(0), colIndex(n.Ins[0].Schema(), n.Part))
			return []colType{part, res}
		}
		return []colType{res}
	case algebra.OpBinOp, algebra.OpMap1:
		l := in(0)
		if l == nil {
			return unknowns(len(n.Schema()))
		}
		return append(append([]colType{}, l...), ctUnknown)
	}
	return unknowns(len(n.Schema()))
}

// Explain renders the program: one line per instruction with its
// register assignment, pre-resolved operands, the plan node it came from
// (#id, joinable against the EXPLAIN ANALYZE annotations), the inferred
// output column types, and the registers it releases. The companion view
// to opt.Explain's annotated algebra print.
func (p *Program) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %d instructions, %d registers, %d document slot(s)\n",
		len(p.instrs), p.nregs, len(p.docs))
	for i, uri := range p.docs {
		fmt.Fprintf(&b, "  d%d = doc %q\n", i, uri)
	}
	for i := range p.instrs {
		ins := &p.instrs[i]
		fmt.Fprintf(&b, "%04d  r%-3d = %-36s ; #%d %s",
			i, ins.dst, operandText(ins), ins.node.ID, algebra.Label(ins.node))
		if ins.op != opParFork {
			kinds := make([]string, len(ins.kinds))
			for j, k := range ins.kinds {
				kinds[j] = k.String()
			}
			fmt.Fprintf(&b, "  [%s]", strings.Join(kinds, ","))
			if ins.extraUses > 0 {
				fmt.Fprintf(&b, "  uses=%d", ins.extraUses+1)
			}
			if len(ins.release) > 0 {
				regs := make([]string, len(ins.release))
				for j, r := range ins.release {
					regs[j] = fmt.Sprintf("r%d", r)
				}
				fmt.Fprintf(&b, "  free=%s", strings.Join(regs, ","))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// operandText renders an instruction's mnemonic and operands.
func operandText(ins *instr) string {
	srcs := make([]string, len(ins.srcs))
	for i, r := range ins.srcs {
		srcs[i] = fmt.Sprintf("r%d", r)
	}
	args := strings.Join(srcs, " ")
	name := kernelName(ins)
	switch ins.op {
	case opParFork:
		return strings.TrimSpace("fork " + name + " " + args)
	case opParJoin:
		return "join " + name
	}
	switch ins.kernel {
	case opLit:
		return fmt.Sprintf("lit (%d rows)", ins.lit.NumRows())
	case opProject:
		return fmt.Sprintf("%s %s %v", name, args, ins.cols)
	case opSelect:
		return fmt.Sprintf("%s %s cond@%d", name, args, ins.cols[0])
	case opUnion:
		return fmt.Sprintf("%s %s map=%v", name, args, ins.cols)
	case opDoc:
		return fmt.Sprintf("%s d%d", name, ins.slot)
	}
	return strings.TrimSpace(name + " " + args)
}

// kernelName is the mnemonic: the specialized opcode's own name, or the
// algebra operator name for generic (engine-dispatched) instructions.
func kernelName(ins *instr) string {
	switch ins.kernel {
	case opLit:
		return "lit"
	case opProject:
		return "project"
	case opSelect:
		return "select"
	case opRowID:
		return "rowid"
	case opUnion:
		return "union"
	case opDoc:
		return "doc"
	}
	return ins.node.Kind.String()
}
