package parallel_test

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/parallel"
	"repro/internal/qerr"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

func xmarkEnv(t testing.TB, factor float64) (*xmltree.Store, map[string][]uint32) {
	t.Helper()
	store := xmltree.NewStore()
	f := xmark.Generate(xmark.Config{Factor: factor})
	return store, map[string][]uint32{"auction.xml": {store.Add(f)}}
}

func serialize(t *testing.T, res *engine.Result) string {
	t.Helper()
	s, err := res.SerializeXML()
	if err != nil {
		t.Fatalf("serialize: %v", err)
	}
	return s
}

// TestParallelMatchesSerialXMark runs the full XMark corpus with the
// parallel executor and requires byte-identical results to the serial
// engine — parallel morsels merge in serial scan order, so this holds
// in ordered mode too, not just for order-indifferent queries.
func TestParallelMatchesSerialXMark(t *testing.T) {
	store, docs := xmarkEnv(t, 0.01)
	u := xquery.Unordered
	unordered := core.DefaultConfig()
	unordered.ForceOrdering = &u
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"ordered", core.DefaultConfig()},
		{"unordered", unordered},
	}
	for _, m := range modes {
		for _, q := range xmarkq.All() {
			t.Run(m.name+"/"+q.Name, func(t *testing.T) {
				scfg := m.cfg
				sp, err := core.Prepare(q.Text, scfg)
				if err != nil {
					t.Fatalf("prepare serial: %v", err)
				}
				sres, err := sp.Run(store, docs)
				if err != nil {
					t.Fatalf("serial run: %v", err)
				}
				pcfg := m.cfg
				pcfg.Parallelism = 4
				pp, err := core.Prepare(q.Text, pcfg)
				if err != nil {
					t.Fatalf("prepare parallel: %v", err)
				}
				pres, err := pp.Run(store, docs)
				if err != nil {
					t.Fatalf("parallel run: %v", err)
				}
				if got, want := serialize(t, pres), serialize(t, sres); got != want {
					t.Errorf("parallel result differs from serial\n got %.200q\nwant %.200q", got, want)
				}
			})
		}
	}
}

// TestParallelDescendantScan uses a document large enough that the
// descendant-axis scan regions split into preorder-range morsels (the
// within-group parallelism Q6/Q7-shaped queries rely on: one iteration
// group, one giant region) and checks byte equality against the serial
// engine. Only linear-cost count queries run at this scale.
func TestParallelDescendantScan(t *testing.T) {
	store, docs := xmarkEnv(t, 0.1)
	u := xquery.Unordered
	queries := []struct{ name, text string }{
		{"q6", xmarkq.Get(6).Text},
		{"q7", xmarkq.Get(7).Text},
		{"keyword-count", `count(doc("auction.xml")//keyword)`},
	}
	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.ForceOrdering = &u
			cfg.Parallelism = 4
			p, err := core.Prepare(q.text, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			sres, err := engine.Run(p.Plan.Root, store, docs, engine.Options{})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			pres, err := parallel.Run(p.Plan.Root, store, docs, parallel.Options{Workers: 4})
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if got, want := serialize(t, pres), serialize(t, sres); got != want {
				t.Errorf("parallel result differs from serial\n got %.200q\nwant %.200q", got, want)
			}
		})
	}
}

// TestRunForcedMorsels drives parallel.Run directly with MinMorselRows=1
// so that the join/select/binop/map1 kernels engage even on a small
// document, and checks byte equality against the serial engine.
func TestRunForcedMorsels(t *testing.T) {
	store, docs := xmarkEnv(t, 0.01)
	u := xquery.Unordered
	for _, q := range xmarkq.All() {
		t.Run(q.Name, func(t *testing.T) {
			cfg := core.DefaultConfig()
			cfg.ForceOrdering = &u
			cfg.Parallelism = 4 // marks the plan's parallel regions
			p, err := core.Prepare(q.Text, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			sres, err := engine.Run(p.Plan.Root, store, docs, engine.Options{})
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			pres, err := parallel.Run(p.Plan.Root, store, docs, parallel.Options{
				Workers:       4,
				MinMorselRows: 1,
			})
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if got, want := serialize(t, pres), serialize(t, sres); got != want {
				t.Errorf("forced-morsel result differs from serial\n got %.200q\nwant %.200q", got, want)
			}
		})
	}
}

// TestMarkParallelRegions checks the analysis end of the subsystem: an
// order-indifferent aggregate query gets Par-marked steps (and the
// marker shows up in Explain), while ρ and constructors are never marked
// anywhere in the corpus.
func TestMarkParallelRegions(t *testing.T) {
	u := xquery.Unordered
	cfg := core.DefaultConfig()
	cfg.ForceOrdering = &u
	cfg.Parallelism = 4

	p, err := core.Prepare(`count(doc("auction.xml")//keyword)`, cfg)
	if err != nil {
		t.Fatal(err)
	}
	marked, steps := 0, 0
	for _, n := range algebra.Nodes(p.Plan.Root) {
		if n.Par {
			marked++
			if n.Kind == algebra.OpStep {
				steps++
			}
		}
	}
	if marked == 0 {
		t.Error("no parallel regions marked for an order-indifferent count query")
	}
	if steps == 0 {
		t.Error("no Par-marked step in an order-indifferent count query")
	}
	if !strings.Contains(p.Explain(), "[par]") {
		t.Error("Explain does not show [par] markers")
	}

	for _, q := range xmarkq.All() {
		pq, err := core.Prepare(q.Text, cfg)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		for _, n := range algebra.Nodes(pq.Plan.Root) {
			if n.Par && (n.Kind == algebra.OpRowNum || n.Kind == algebra.OpElem || n.Kind == algebra.OpAttr) {
				t.Errorf("%s: %s marked parallel", q.Name, n.Kind)
			}
		}
	}
}

// TestSerialPlansUnmarked: without Parallelism the seed behaviour is
// untouched — no Par flags, no [par] in Explain.
func TestSerialPlansUnmarked(t *testing.T) {
	p, err := core.Prepare(`count(doc("auction.xml")//keyword)`, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range algebra.Nodes(p.Plan.Root) {
		if n.Par {
			t.Fatalf("Par set on %s without Parallelism", n.Kind)
		}
	}
	if strings.Contains(p.Explain(), "[par]") {
		t.Error("serial Explain shows [par]")
	}
}

// TestParallelCutoffs verifies that the shared budgets abort a parallel
// run: the atomic cell budget and the deadline are both checked
// cooperatively by the workers.
func TestParallelCutoffs(t *testing.T) {
	store, docs := xmarkEnv(t, 0.02)
	u := xquery.Unordered

	cfg := core.DefaultConfig()
	cfg.ForceOrdering = &u
	cfg.Parallelism = 4
	cfg.MaxCells = 64
	p, err := core.Prepare(`count(doc("auction.xml")//keyword)`, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(store, docs); !errors.Is(err, engine.ErrCutoff) {
		t.Errorf("memory cutoff: got %v, want ErrCutoff", err)
	}

	cfg.MaxCells = 0
	cfg.Timeout = time.Nanosecond
	p, err = core.Prepare(`count(doc("auction.xml")//keyword)`, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(store, docs); !errors.Is(err, engine.ErrCutoff) {
		t.Errorf("time cutoff: got %v, want ErrCutoff", err)
	}
}

// TestWorkerPanicIsolated injects a panic into every morsel task via the
// fault hook and requires the query to fail with a diagnostic internal
// error — the worker pool must recover the panic, propagate it through
// the merge path, and drain, instead of crashing the process.
func TestWorkerPanicIsolated(t *testing.T) {
	store, docs := xmarkEnv(t, 0.01)
	u := xquery.Unordered
	cfg := core.DefaultConfig()
	cfg.ForceOrdering = &u
	cfg.Parallelism = 4
	p, err := core.Prepare(xmarkq.Get(8).Text, cfg)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	parallel.MorselHook = func() { panic("poisoned morsel kernel") }
	defer func() { parallel.MorselHook = nil }()
	before := runtime.NumGoroutine()
	_, err = parallel.Run(p.Plan.Root, store, docs, parallel.Options{
		Workers:       4,
		MinMorselRows: 1, // every parallel operator engages its morsel kernel
	})
	if err == nil {
		t.Fatal("worker panic produced a result")
	}
	if !errors.Is(err, qerr.ErrInternal) {
		t.Fatalf("worker panic not classified internal: %v", err)
	}
	var qe *qerr.Error
	if !errors.As(err, &qe) {
		t.Fatalf("no *qerr.Error in chain: %v", err)
	}
	if !strings.Contains(qe.Phase, "parallel worker") {
		t.Errorf("phase %q does not identify the parallel worker", qe.Phase)
	}
	if !strings.Contains(err.Error(), "poisoned morsel kernel") {
		t.Errorf("panic value lost from message: %v", err)
	}
	// The pool must drain even though every task panicked.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after worker panic: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
