// Package parallel evaluates algebra plan DAGs morsel-wise across a
// bounded worker pool, guided by the order-indifference analysis of
// internal/opt: operators whose output row order is provably unobservable
// (algebra.Node.Par, set by opt.MarkParallel) are partitioned into
// morsels and evaluated concurrently; everything else — and every
// operator below the morsel threshold — falls back to the serial engine
// kernel, so a plan with no order-dead regions runs exactly as before.
//
// Although the analysis licenses arbitrary interleavings, every parallel
// operator here merges its morsels in deterministic (morsel-index)
// order, which is the serial scan order. Parallel results are therefore
// byte-identical to serial results even for order-sensitive plans; the
// Par flag decides where parallelism engages, determinism is never at
// stake.
//
// The time and memory cutoffs are enforced cooperatively: all workers
// share the engine's atomic cell budget and deadline, checking between
// morsels and (for the big descendant scans) charging produced cells as
// they go, so an overrun aborts the whole pool at the next morsel
// boundary.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Options configures a parallel run.
type Options struct {
	// Context, when non-nil, cancels the run cooperatively: every worker
	// polls it between morsels (via the shared engine budget checks), so
	// ctx.Done() drains the pool promptly. Mirrors engine.Options.Context.
	Context context.Context
	// Workers is the worker pool size; zero or negative means
	// runtime.GOMAXPROCS(0). A pool of one runs the serial engine.
	Workers int
	// Timeout, MaxCells, Memory and InterestingOrders mirror
	// engine.Options; the budgets are shared atomically across all
	// workers (morsel tasks charge the byte-ledger account through the
	// same ChargeCells sites the serial kernels use).
	Timeout           time.Duration
	MaxCells          int64
	Memory            *xdm.Account
	InterestingOrders bool
	// MinMorselRows is the smallest per-morsel work unit (rows for row
	// kernels, contexts for axis scans); operators with less than two
	// morsels of work stay serial. Zero means the default (256).
	MinMorselRows int
	// Collect and Tracer mirror engine.Options: per-node statistics
	// (including the per-worker morsel split) and execution spans
	// (workers trace on track worker+1).
	Collect *obs.Collector
	Tracer  obs.Tracer
	// Heartbeat mirrors engine.Options.Heartbeat: the watchdog liveness
	// counter, bumped at the shared budget-check sites — workers beat
	// between morsels through the same CheckDeadline the serial kernels
	// poll, so a healthy parallel query never looks silent.
	Heartbeat *atomic.Int64
	// StoreProbe mirrors engine.Options.StoreProbe: polled at the shared
	// budget-check sites by every worker, it surfaces storage faults
	// (suspect mmap'd store parts) into morsel tasks as classified
	// errors. The first worker to observe a fault drains the pool
	// through the ordinary first-error merge path.
	StoreProbe func() error
}

// MorselHook, when non-nil, runs at the start of every morsel task inside
// a worker goroutine. It exists for fault injection in tests (a panicking
// kernel must surface as an error from Run, not crash the process) and
// must not be set while queries are running.
var MorselHook func()

const (
	defaultMinMorselRows = 256
	// morselsPerWorker over-partitions the work so that morsels of uneven
	// cost still balance across the pool.
	morselsPerWorker = 4
	// minDescSpan is the smallest preorder span worth splitting in a
	// descendant-axis scan region (scanning a slot is much cheaper than a
	// row kernel, so the threshold is coarser).
	minDescSpan = 8192
	// minCtxChunk bounds context-set chunks for the non-recursive axes.
	minCtxChunk = 64
)

// Run evaluates the plan DAG rooted at root with up to opts.Workers
// workers. It mirrors engine.Run: docs maps fn:doc() URIs to fragment
// ids in base, constructed fragments go to a derived store.
// Run never panics: a panic on the coordinator path is recovered here,
// and a panic inside a worker goroutine is recovered in the worker and
// propagated as an error through the merge path (see runTasks), so a
// poisoned morsel kernel fails the query instead of killing the process.
func Run(root *algebra.Node, base *xmltree.Store, docs map[string][]uint32, opts Options) (res *engine.Result, err error) {
	defer qerr.RecoverInto("execute", &err)
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	eopts := engine.Options{
		Context:           opts.Context,
		Timeout:           opts.Timeout,
		MaxCells:          opts.MaxCells,
		Memory:            opts.Memory,
		InterestingOrders: opts.InterestingOrders,
		Collect:           opts.Collect,
		Tracer:            opts.Tracer,
		Heartbeat:         opts.Heartbeat,
		StoreProbe:        opts.StoreProbe,
	}
	if w == 1 {
		return engine.Run(root, base, docs, eopts)
	}
	defer func() {
		obs.QueriesTotal.Inc()
		if err != nil {
			obs.QueryErrorsTotal.Inc()
		}
	}()
	ex := engine.NewExec(base, docs, eopts)
	ex.EnableRecycling(root)
	e := &executor{ex: ex, workers: w, minRows: opts.MinMorselRows}
	if e.minRows <= 0 {
		e.minRows = defaultMinMorselRows
	}
	start := time.Now()
	t, err := e.eval(root)
	if err != nil {
		return nil, err
	}
	res = ex.Finish(t, start)
	obs.QueryNanos.Observe(res.Elapsed.Nanoseconds())
	return res, nil
}

type executor struct {
	ex      *engine.Exec
	workers int
	minRows int
}

// opResult is a parallel operator evaluation: the output table, the
// summed per-worker busy time, and whether the workers already charged
// the output cells against the shared budget.
type opResult struct {
	t       *engine.Table
	busy    time.Duration
	charged bool
}

// eval walks the DAG like engine.Eval — memoized, single-goroutine —
// but dispatches Par-marked operators to the morsel-wise kernels. The
// walk itself stays serial; only the work inside one operator fans out,
// so memo and profile bookkeeping need no locks.
func (e *executor) eval(n *algebra.Node) (*engine.Table, error) {
	if t, ok := e.ex.Memoized(n); ok {
		e.ex.CollectMemoHit(n)
		return t, nil
	}
	if err := e.ex.CheckDeadline(); err != nil {
		return nil, err
	}
	ins := make([]*engine.Table, len(n.Ins))
	for i, in := range n.Ins {
		t, err := e.eval(in)
		if err != nil {
			return nil, err
		}
		ins[i] = t
	}
	endSpan := e.ex.StartOpSpan(n)
	start := time.Now()
	var t *engine.Table
	var busy time.Duration
	charged := false
	if n.Par {
		r, err := e.parOp(n, ins)
		if err != nil {
			return nil, err
		}
		if r != nil {
			t, busy, charged = r.t, r.busy, r.charged
		}
	}
	if t == nil {
		var err error
		t, err = e.ex.EvalOp(n, ins)
		if err != nil {
			return nil, err
		}
	}
	if endSpan != nil {
		endSpan()
	}
	// Attribute the summed per-worker busy time when it exceeds the
	// coordinator's wall time (it does, on a multicore pool): the profile
	// then reports work performed per origin, comparable to serial runs.
	wall := time.Since(start)
	d := wall
	if busy > d {
		d = busy
	}
	e.ex.Record(n, d, t.NumRows())
	e.ex.CollectOp(n, wall, ins, t)
	if !charged {
		if err := e.ex.ChargeCells(int64(t.NumRows()) * int64(len(t.Cols))); err != nil {
			return nil, err
		}
	}
	e.ex.Memoize(n, t)
	e.ex.ReleaseInputs(n)
	return t, nil
}

// parOp evaluates one Par-marked operator morsel-wise. A nil, nil return
// means the operator (or its input size) is not worth partitioning and
// the caller should take the serial kernel.
func (e *executor) parOp(n *algebra.Node, ins []*engine.Table) (*opResult, error) {
	switch n.Kind {
	case algebra.OpStep:
		return e.parStep(n, ins[0])
	case algebra.OpJoin:
		return e.parJoin(n, ins[0], ins[1])
	case algebra.OpSelect:
		return e.parSelect(n, ins[0])
	case algebra.OpBinOp:
		return e.parBinOp(n, ins[0])
	case algebra.OpMap1:
		return e.parMap1(n, ins[0])
	}
	return nil, nil
}

// EvalParOp evaluates one Par-marked operator morsel-wise over
// already-evaluated inputs, on behalf of an external driver (the bytecode
// VM's fork/join instruction pair). ok=false means the operator or its
// input size is not worth partitioning and the caller should run the
// serial kernel instead. busy is the summed per-worker time (for profile
// attribution) and charged reports whether the workers already charged
// the output cells against the shared budget.
func EvalParOp(ex *engine.Exec, workers, minMorselRows int, n *algebra.Node, ins []*engine.Table) (t *engine.Table, busy time.Duration, charged, ok bool, err error) {
	e := &executor{ex: ex, workers: workers, minRows: minMorselRows}
	if e.minRows <= 0 {
		e.minRows = defaultMinMorselRows
	}
	r, err := e.parOp(n, ins)
	if err != nil || r == nil {
		return nil, 0, false, false, err
	}
	return r.t, r.busy, r.charged, true, nil
}

// runTasks drains n's morsel tasks over up to e.workers goroutines
// (atomic index pull, so uneven morsels balance). Workers check the
// shared deadline between tasks and stop after the first error; the
// summed per-worker busy time is returned for profile attribution.
// When collection is on, every morsel is attributed to (n, worker), and
// when tracing is on each morsel emits a span on track worker+1 (track 0
// is the coordinator).
func (e *executor) runTasks(n *algebra.Node, tasks []func() error) (time.Duration, error) {
	w := e.workers
	if w > len(tasks) {
		w = len(tasks)
	}
	collect := e.ex.Collector()
	tracer := e.ex.Tracer()
	label := ""
	if tracer != nil {
		label = algebra.Label(n)
	}
	var next, busy atomic.Int64
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			defer func() { busy.Add(int64(time.Since(t0))) }()
			for {
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				err := e.ex.CheckDeadline()
				if err == nil {
					var end func()
					if tracer != nil {
						end = tracer.StartSpan(g+1, "morsel", label)
					}
					m0 := time.Now()
					err = runMorsel(tasks[i])
					if end != nil {
						end()
					}
					obs.MorselsTotal.Inc()
					if collect != nil {
						collect.Morsel(n.ID, g, time.Since(m0))
					}
				}
				if err != nil {
					if qerr.IsRetryableCorrupt(err) {
						// A morsel died on a storage fault with a standby
						// replica left: account it so the failover retry
						// that follows is attributable to morsel-level
						// fault detection, not a mount-time failure.
						obs.StoreMorselFaultsTotal.Inc()
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return time.Duration(busy.Load()), firstErr
}

// runMorsel executes one morsel task with panic isolation: a panicking
// kernel converts to a qerr.ErrInternal error that propagates through
// runTasks' first-error merge path exactly like an ordinary morsel
// failure, draining the pool instead of crashing the process.
func runMorsel(task func() error) (err error) {
	defer qerr.RecoverInto("execute (parallel worker)", &err)
	if MorselHook != nil {
		MorselHook()
	}
	return task()
}

// ranges splits [0, n) into roughly morselsPerWorker*workers consecutive
// spans of at least min elements each; nil when n is too small to split.
func (e *executor) ranges(n, min int) [][2]int {
	if n < 2*min {
		return nil
	}
	chunk := n / (morselsPerWorker * e.workers)
	if chunk < min {
		chunk = min
	}
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// parStep partitions a staircase join. Descendant axes split each pruned
// scan region into preorder subranges (within-group parallelism — a
// //-path from a single document root is one giant region); the other
// axes chunk the per-fragment context sets. Morsels merge in serial scan
// order — into flat iter/node columns, no boxing — so the output is
// identical to evalStep's.
func (e *executor) parStep(n *algebra.Node, in *engine.Table) (*opResult, error) {
	groups, err := engine.CollectStepGroups(in)
	if err != nil {
		return nil, e.ex.Errf(n, "%v", err)
	}
	isDesc := n.Axis == xquery.AxisDescendant || n.Axis == xquery.AxisDescendantOrSelf

	// One slot per (iteration group, fragment), in serial output order.
	type slot struct {
		g       *engine.StepGroup
		fid     uint32
		frag    *xmltree.Fragment
		ctx     []int32
		regions []engine.ScanRegion
		outs    [][]int32 // per-morsel results, morsel order = scan order
	}
	var slots []*slot
	totalWork := 0
	for gi := range groups {
		g := &groups[gi]
		for _, fid := range g.FragIDs {
			f := e.ex.Store().Frag(fid)
			s := &slot{g: g, fid: fid, frag: f, ctx: g.ByFrag[fid]}
			if isDesc {
				s.regions = engine.StaircaseRegions(f, s.ctx, n.Axis)
				for _, reg := range s.regions {
					totalWork += int(reg.End-reg.Start) + 1
				}
			} else {
				totalWork += len(s.ctx)
			}
			slots = append(slots, s)
		}
	}

	minChunk := minCtxChunk
	if isDesc {
		minChunk = minDescSpan
	}
	if totalWork < 2*minChunk {
		return nil, nil
	}
	chunk := totalWork / (morselsPerWorker * e.workers)
	if chunk < minChunk {
		chunk = minChunk
	}

	// Child and parent axes need a whole-slot sort/dedup after the merge,
	// so their final row count can differ from the summed morsel outputs;
	// only the fix-up-free axes charge the budget inside the workers.
	chargeInWorker := n.Axis != xquery.AxisChild && n.Axis != xquery.AxisParent

	var tasks []func() error
	for _, s := range slots {
		s := s
		if isDesc {
			for _, reg := range s.regions {
				for lo := reg.Start; lo <= reg.End; lo += int32(chunk) {
					hi := lo + int32(chunk) - 1
					if hi > reg.End {
						hi = reg.End
					}
					ui := len(s.outs)
					s.outs = append(s.outs, nil)
					reg, lo, hi := reg, lo, hi
					tasks = append(tasks, func() error {
						res := engine.ScanRegionRange(s.frag, reg.Ctx, lo, hi, n.Test)
						s.outs[ui] = res
						return e.ex.ChargeCells(int64(len(res)) * 2)
					})
				}
			}
		} else {
			for lo := 0; lo < len(s.ctx); lo += chunk {
				hi := lo + chunk
				if hi > len(s.ctx) {
					hi = len(s.ctx)
				}
				ui := len(s.outs)
				s.outs = append(s.outs, nil)
				lo, hi := lo, hi
				tasks = append(tasks, func() error {
					res := engine.AxisScan(s.frag, s.ctx[lo:hi], n.Axis, n.Test)
					s.outs[ui] = res
					if chargeInWorker {
						return e.ex.ChargeCells(int64(len(res)) * 2)
					}
					return e.ex.CheckCells(0, 0)
				})
			}
		}
	}
	if len(tasks) < 2 {
		return nil, nil
	}

	busy, err := e.runTasks(n, tasks)
	if err != nil {
		return nil, err
	}

	var outIter []int64
	var outItem []xdm.NodeID
	for _, s := range slots {
		var pres []int32
		for _, u := range s.outs {
			pres = append(pres, u...)
		}
		switch n.Axis {
		case xquery.AxisChild:
			// Children of distinct contexts are disjoint and duplicate-free;
			// the sort only restores document order across morsels, exactly
			// as AxisScan restores it across unsorted contexts.
			if !sortedAsc(pres) {
				pres = engine.DedupSorted(pres)
			}
		case xquery.AxisParent:
			pres = engine.DedupSorted(pres)
		}
		for _, pre := range pres {
			outIter = append(outIter, s.g.Iter)
			outItem = append(outItem, xdm.NodeID{Frag: s.fid, Pre: pre})
		}
	}
	t := engine.NewTable([]string{"iter", "item"})
	t.Data[0] = xdm.IntColumn(outIter)
	t.Data[1] = xdm.NodeColumn(outItem)
	return &opResult{t: t, busy: busy, charged: chargeInWorker}, nil
}

func sortedAsc(pres []int32) bool {
	for i := 1; i < len(pres); i++ {
		if pres[i] < pres[i-1] {
			return false
		}
	}
	return true
}

// parJoin builds the hash index serially (builds don't decompose well at
// these sizes) and probes the left side in chunks; concatenating the
// per-chunk pair lists in chunk order reproduces the serial probe order.
func (e *executor) parJoin(n *algebra.Node, l, r *engine.Table) (*opResult, error) {
	lk, rk := l.Col(n.LCol), r.Col(n.RCol)
	cs := e.ranges(lk.Len(), e.minRows)
	if cs == nil {
		return nil, nil
	}
	ix := engine.BuildJoinIndex(rk)
	type part struct{ lperm, rperm []int32 }
	parts := make([]part, len(cs))
	tasks := make([]func() error, len(cs))
	for ci, c := range cs {
		ci, lo, hi := ci, c[0], c[1]
		tasks[ci] = func() error {
			lp, rp := ix.Probe(lk, lo, hi, nil, nil)
			parts[ci] = part{lp, rp}
			return e.ex.CheckCells(len(lp), len(l.Cols)+len(r.Cols))
		}
	}
	busy, err := e.runTasks(n, tasks)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p.lperm)
	}
	if err := e.ex.CheckCells(total, len(l.Cols)+len(r.Cols)); err != nil {
		return nil, err
	}
	lperm := xdm.GetInt32s(total)[:0]
	rperm := xdm.GetInt32s(total)[:0]
	for _, p := range parts {
		lperm = append(lperm, p.lperm...)
		rperm = append(rperm, p.rperm...)
	}
	t, err := e.ex.MaterializeJoin(n, l, r, lperm, rperm)
	xdm.PutInt32s(lperm)
	xdm.PutInt32s(rperm)
	if err != nil {
		return nil, err
	}
	return &opResult{t: t, busy: busy}, nil
}

// parSelect filters row chunks concurrently; chunk-ordered concatenation
// of the absolute row indices is the serial keep list. A flat boolean
// condition column filters without touching an Item.
func (e *executor) parSelect(n *algebra.Node, in *engine.Table) (*opResult, error) {
	cond := in.Col(n.Col)
	cs := e.ranges(cond.Len(), e.minRows)
	if cs == nil {
		return nil, nil
	}
	bools, flat := cond.Bools()
	parts := make([][]int32, len(cs))
	tasks := make([]func() error, len(cs))
	for ci, c := range cs {
		ci, lo, hi := ci, c[0], c[1]
		tasks[ci] = func() error {
			var keep []int32
			if flat {
				for r := lo; r < hi; r++ {
					if bools[r] != 0 {
						keep = append(keep, int32(r))
					}
				}
			} else {
				for r := lo; r < hi; r++ {
					it := cond.Get(r)
					if it.Kind != xdm.KBoolean {
						return e.ex.Errf(n, "selection over non-boolean %s", it.Kind)
					}
					if it.I != 0 {
						keep = append(keep, int32(r))
					}
				}
			}
			parts[ci] = keep
			return nil
		}
	}
	busy, err := e.runTasks(n, tasks)
	if err != nil {
		return nil, err
	}
	var keep []int32
	for _, p := range parts {
		keep = append(keep, p...)
	}
	return &opResult{t: in.Filter(keep), busy: busy}, nil
}

// parBinOp maps the binary (or ternary) item kernel over row chunks into
// a shared preallocated output buffer, adopted by the result column.
func (e *executor) parBinOp(n *algebra.Node, in *engine.Table) (*opResult, error) {
	rows := in.NumRows()
	cs := e.ranges(rows, e.minRows)
	if cs == nil {
		return nil, nil
	}
	l, r := in.Col(n.LCol), in.Col(n.RCol)
	var tc *xdm.Column
	if n.TCol != "" {
		tc = in.Col(n.TCol)
	}
	out := xdm.GetItems(rows)
	tasks := make([]func() error, len(cs))
	for ci, c := range cs {
		lo, hi := c[0], c[1]
		tasks[ci] = func() error {
			for i := lo; i < hi; i++ {
				var v xdm.Item
				var err error
				if tc != nil {
					v, err = e.ex.ApplyTern(n, l.Get(i), r.Get(i), tc.Get(i))
				} else {
					v, err = e.ex.ApplyBin(n, l.Get(i), r.Get(i))
				}
				if err != nil {
					return e.ex.Errf(n, "%v", err)
				}
				out[i] = v
			}
			return nil
		}
	}
	busy, err := e.runTasks(n, tasks)
	if err != nil {
		xdm.PutItems(out)
		return nil, err
	}
	return &opResult{t: in.WithColumn(n.Res, xdm.FromItemsOwned(out)), busy: busy}, nil
}

// parMap1 maps the unary item kernel over row chunks.
func (e *executor) parMap1(n *algebra.Node, in *engine.Table) (*opResult, error) {
	arg := in.Col(n.LCol)
	rows := arg.Len()
	cs := e.ranges(rows, e.minRows)
	if cs == nil {
		return nil, nil
	}
	out := xdm.GetItems(rows)
	tasks := make([]func() error, len(cs))
	for ci, c := range cs {
		lo, hi := c[0], c[1]
		tasks[ci] = func() error {
			for i := lo; i < hi; i++ {
				v, err := e.ex.ApplyUn(n, arg.Get(i))
				if err != nil {
					return err
				}
				out[i] = v
			}
			return nil
		}
	}
	busy, err := e.runTasks(n, tasks)
	if err != nil {
		xdm.PutItems(out)
		return nil, err
	}
	return &opResult{t: in.WithColumn(n.Res, xdm.FromItemsOwned(out)), busy: busy}, nil
}
