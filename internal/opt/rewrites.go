package opt

import (
	"repro/internal/algebra"
	"repro/internal/xquery"
)

// columnAnalysis runs one round of column dependency analysis (§4.1):
// infer strictly required columns top-down, then rewrite bottom-up,
// removing operators that only produce unneeded columns —
//
//   - ρ/# whose result column nobody requires (the dead order
//     bookkeeping left behind by the compositional compiler),
//   - binops/mappings with unused results,
//   - cross products that install unused literal columns (the × pos|1
//     instances of Figure 6(b)),
//   - projection pairs for unneeded columns.
//
// With RownumRelax (§7), residual ρ operators whose result is consumed
// only as a sort criterion and whose own sort criteria are constants or
// arbitrary unique ids degenerate into free # stamps.
func columnAnalysis(root *algebra.Node, b *algebra.Builder, opts Options) *algebra.Node {
	reqs := inferRequired(root)
	var props map[*algebra.Node]propMap
	if opts.RownumRelax {
		props = inferProps(root)
	}
	memo := make(map[*algebra.Node]*algebra.Node)
	var rw func(n *algebra.Node) *algebra.Node
	rw = func(n *algebra.Node) *algebra.Node {
		if out, ok := memo[n]; ok {
			return out
		}
		newIns := make([]*algebra.Node, len(n.Ins))
		for i, in := range n.Ins {
			newIns[i] = rw(in)
		}
		R := reqs[n]
		var out *algebra.Node
		switch n.Kind {
		case algebra.OpRowNum:
			switch {
			case !R.has(n.Res):
				out = newIns[0]
			case opts.RownumRelax && R.orderOnly(n.Res):
				out = relaxRowNum(n, newIns[0], b, props)
			default:
				out = b.Rebuild(n, newIns)
			}
		case algebra.OpRowID:
			if !R.has(n.Col) {
				out = newIns[0]
			} else {
				out = b.Rebuild(n, newIns)
			}
		case algebra.OpBinOp:
			if !R.has(n.Res) {
				out = newIns[0]
			} else {
				out = b.Rebuild(n, newIns)
			}
		case algebra.OpMap1:
			if !R.has(n.Res) {
				out = newIns[0]
			} else {
				out = b.Rebuild(n, newIns)
			}
		case algebra.OpCross:
			switch {
			case isDeadLit(n.Ins[0], R):
				out = newIns[1]
			case isDeadLit(n.Ins[1], R):
				out = newIns[0]
			default:
				out = b.Rebuild(n, newIns)
			}
		case algebra.OpProject:
			var pairs []algebra.ColPair
			for _, p := range n.Proj {
				if R.has(p.New) {
					pairs = append(pairs, p)
				}
			}
			if len(pairs) == 0 {
				pairs = n.Proj // keep degenerate projections intact
			}
			out = b.Project(newIns[0], pairs...)
		case algebra.OpUnion:
			cols := sortedCols(R)
			if len(cols) == 0 {
				out = b.Rebuild(n, newIns)
			} else {
				// Rebuild (not a fresh Union) to preserve the disjointness
				// assertion for property inference — unless its column was
				// projected away.
				out = b.RebuildWith(n, []*algebra.Node{
					b.Keep(newIns[0], cols...), b.Keep(newIns[1], cols...),
				}, func(c *algebra.Node) {
					if c.Disj != "" && !R.has(c.Disj) {
						c.Disj = ""
					}
				})
			}
		default:
			out = b.Rebuild(n, newIns)
		}
		memo[n] = out
		return out
	}
	return rw(root)
}

// isDeadLit reports whether a cross-product operand is a single-row
// literal none of whose columns are required.
func isDeadLit(n *algebra.Node, R colReq) bool {
	if n.Kind != algebra.OpLit || len(n.Rows) != 1 {
		return false
	}
	for _, c := range n.Cols {
		if R.has(c) {
			return false
		}
	}
	return true
}

// relaxRowNum implements the §7 wrap-up for a ρ whose result is consumed
// as an order criterion only:
//
//   - constant sort criteria are useless order criteria — dropped;
//   - an arbitrary *unique* criterion imposes a meaningless total order:
//     it never leaves ties for later criteria, so it and everything after
//     it may be replaced by "any order" — the list is truncated there;
//   - a constant grouping column degenerates to no grouping.
//
// A ρ left with no criteria "comes for free" — it becomes #. (With a
// non-constant grouping column the # stamp is still an admissible
// order-only replacement: group-internal order was arbitrary once no
// criteria remain, and pos ranks are only ever compared within groups.)
func relaxRowNum(n *algebra.Node, in *algebra.Node, b *algebra.Builder, props map[*algebra.Node]propMap) *algebra.Node {
	p := props[n.Ins[0]]
	var keep []algebra.SortSpec
	for _, s := range n.Sort {
		cp := p[s.Col]
		if cp.constant {
			continue
		}
		if cp.arbitrary && cp.unique {
			break // this and all later criteria are immaterial
		}
		keep = append(keep, s)
	}
	part := n.Part
	if part != "" && p[part].constant {
		part = ""
	}
	if len(keep) == 0 {
		return algebra.WithOrigin(b.RowID(in, n.Res), "relaxed rownum (#)")
	}
	if len(keep) == len(n.Sort) && part == n.Part {
		return b.Rebuild(n, []*algebra.Node{in})
	}
	return b.RebuildWith(n, []*algebra.Node{in}, func(c *algebra.Node) {
		c.Sort = keep
		c.Part = part
	})
}

// stepMerge fuses ⤋descendant-or-self::node() feeding ⤋child::nt into a
// single ⤋descendant::nt — the XPath // equivalence. In ordered plans a ρ
// sits between the two steps; once column analysis has removed it (the
// unordered case), the steps become adjacent and merge. This rewrite is
// behind the exceptional Q6/Q7 speedups of Figure 12: the huge
// descendant-or-self::node() intermediate is never materialized.
func stepMerge(root *algebra.Node, b *algebra.Builder) *algebra.Node {
	memo := make(map[*algebra.Node]*algebra.Node)
	var rw func(n *algebra.Node) *algebra.Node
	rw = func(n *algebra.Node) *algebra.Node {
		if out, ok := memo[n]; ok {
			return out
		}
		newIns := make([]*algebra.Node, len(n.Ins))
		for i, in := range n.Ins {
			newIns[i] = rw(in)
		}
		out := b.Rebuild(n, newIns)
		if out.Kind == algebra.OpStep && out.Axis == xquery.AxisChild {
			if inner := resolveStep(out.Ins[0]); inner != nil &&
				inner.Axis == xquery.AxisDescendantOrSelf &&
				inner.Test.Kind == xquery.TestNode {
				merged := b.Step(inner.Ins[0], xquery.AxisDescendant, out.Test)
				out = algebra.WithOrigin(merged, "path step (merged //)")
			}
		}
		memo[n] = out
		return out
	}
	return rw(root)
}

// resolveStep looks through operators that leave the (iter, item) pairs of
// a step result untouched — # stamps and projections that pass iter and
// item through unrenamed — and returns the underlying step, or nil.
func resolveStep(n *algebra.Node) *algebra.Node {
	for {
		switch n.Kind {
		case algebra.OpStep:
			return n
		case algebra.OpRowID:
			n = n.Ins[0]
		case algebra.OpProject:
			ok := true
			for _, p := range n.Proj {
				if (p.New == "iter" || p.New == "item") && p.New != p.Old {
					ok = false
					break
				}
			}
			if !ok || !n.HasCol("iter") || !n.HasCol("item") {
				return nil
			}
			n = n.Ins[0]
		default:
			return nil
		}
	}
}

// disjointDistinct removes duplicate elimination over unions whose
// branches are provably disjoint: steps with name tests for different
// names can never produce the same node (a node has one name), and step
// output is itself duplicate-free per iteration. This completes the
// paper's Figure 10: unordered { $t//(c|d) } ends as a pure concatenation.
func disjointDistinct(root *algebra.Node, b *algebra.Builder) *algebra.Node {
	memo := make(map[*algebra.Node]*algebra.Node)
	var rw func(n *algebra.Node) *algebra.Node
	rw = func(n *algebra.Node) *algebra.Node {
		if out, ok := memo[n]; ok {
			return out
		}
		newIns := make([]*algebra.Node, len(n.Ins))
		for i, in := range n.Ins {
			newIns[i] = rw(in)
		}
		out := b.Rebuild(n, newIns)
		if out.Kind == algebra.OpDistinct && len(out.Cols) == 2 &&
			out.Cols[0] == "iter" && out.Cols[1] == "item" {
			if names, ok := disjointNames(out.Ins[0]); ok && allDistinct(names) {
				out = b.Keep(out.Ins[0], "iter", "item")
			}
		}
		memo[n] = out
		return out
	}
	return rw(root)
}

// disjointNames collects the name tests of the union branches below n,
// looking through pass-through projections; it fails if any branch is not
// a name-test step.
func disjointNames(n *algebra.Node) ([]string, bool) {
	switch n.Kind {
	case algebra.OpUnion:
		l, ok := disjointNames(n.Ins[0])
		if !ok {
			return nil, false
		}
		r, ok := disjointNames(n.Ins[1])
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	default:
		st := resolveStep(n)
		if st == nil || st.Test.Kind != xquery.TestName {
			return nil, false
		}
		return []string{st.Test.Name}, true
	}
}

func allDistinct(names []string) bool {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}
