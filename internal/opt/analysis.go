package opt

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/xdm"
)

// useKind distinguishes how a required column is consumed. The paper's
// analysis (Figure 8) tracks a single "strictly required" set; we refine
// it with the distinction §7 needs: a column required only as a sort
// criterion (useOrder) may be replaced by any order-isomorphic column —
// in particular, sorting by a constant or by arbitrary unique numbers
// conveys no information and the criterion can be dropped. A column whose
// values are consumed (useValue: join keys, selections, arithmetic,
// output items, positional ranks) is untouchable.
type useKind uint8

const (
	useValue useKind = 1 << iota
	useOrder
)

// colReq maps column name to its accumulated use kinds at one node.
type colReq map[string]useKind

func (r colReq) add(col string, k useKind) { r[col] |= k }

func (r colReq) has(col string) bool { return r[col] != 0 }

// orderOnly reports whether the column is consumed exclusively as a sort
// criterion.
func (r colReq) orderOnly(col string) bool { return r[col] == useOrder }

// inferRequired walks the DAG top-down (consumers before producers) and
// computes the strictly required columns of every node — the Figure 8
// inference, seeded at the root with {pos (order), item (value)}: exactly
// the columns needed "to properly serialize the item sequence which forms
// the result of a query".
func inferRequired(root *algebra.Node) map[*algebra.Node]colReq {
	nodes := algebra.Nodes(root) // topological, inputs first
	reqs := make(map[*algebra.Node]colReq, len(nodes))
	get := func(n *algebra.Node) colReq {
		r, ok := reqs[n]
		if !ok {
			r = colReq{}
			reqs[n] = r
		}
		return r
	}
	rootReq := get(root)
	rootReq.add("pos", useOrder)
	rootReq.add("item", useValue)

	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		R := get(n)
		switch n.Kind {
		case algebra.OpLit, algebra.OpDoc:
			// no inputs

		case algebra.OpProject:
			in := get(n.Ins[0])
			for _, p := range n.Proj {
				if R.has(p.New) {
					in.add(p.Old, R[p.New])
				}
			}

		case algebra.OpSelect:
			in := get(n.Ins[0])
			for c, k := range R {
				in.add(c, k)
			}
			in.add(n.Col, useValue)

		case algebra.OpJoin, algebra.OpCross:
			l, r := get(n.Ins[0]), get(n.Ins[1])
			for c, k := range R {
				if n.Ins[0].HasCol(c) {
					l.add(c, k)
				} else {
					r.add(c, k)
				}
			}
			if n.Kind == algebra.OpJoin {
				l.add(n.LCol, useValue)
				r.add(n.RCol, useValue)
			}

		case algebra.OpRowNum:
			in := get(n.Ins[0])
			if R.has(n.Res) {
				for _, s := range n.Sort {
					in.add(s.Col, useOrder)
				}
				if n.Part != "" {
					in.add(n.Part, useValue)
				}
			}
			for c, k := range R {
				if c != n.Res {
					in.add(c, k)
				}
			}

		case algebra.OpRowID:
			in := get(n.Ins[0])
			for c, k := range R {
				if c != n.Col {
					in.add(c, k)
				}
			}

		case algebra.OpBinOp:
			in := get(n.Ins[0])
			if R.has(n.Res) {
				in.add(n.LCol, useValue)
				in.add(n.RCol, useValue)
				if n.TCol != "" {
					in.add(n.TCol, useValue)
				}
			}
			for c, k := range R {
				if c != n.Res {
					in.add(c, k)
				}
			}

		case algebra.OpMap1:
			in := get(n.Ins[0])
			if R.has(n.Res) {
				in.add(n.LCol, useValue)
			}
			for c, k := range R {
				if c != n.Res {
					in.add(c, k)
				}
			}

		case algebra.OpUnion:
			l, r := get(n.Ins[0]), get(n.Ins[1])
			for c, k := range R {
				l.add(c, k)
				r.add(c, k)
			}

		case algebra.OpSemi, algebra.OpDiff:
			l, r := get(n.Ins[0]), get(n.Ins[1])
			for c, k := range R {
				l.add(c, k)
			}
			for _, c := range n.Cols {
				l.add(c, useValue)
				r.add(c, useValue)
			}

		case algebra.OpDistinct:
			in := get(n.Ins[0])
			for _, c := range n.Cols {
				in.add(c, useValue)
			}

		case algebra.OpAggr:
			in := get(n.Ins[0])
			if n.Part != "" {
				in.add(n.Part, useValue)
			}
			if n.Col != "" {
				in.add(n.Col, useValue)
			}
			if n.AFn == algebra.AggrStrJoin {
				in.add("pos", useOrder)
			}

		case algebra.OpStep:
			in := get(n.Ins[0])
			in.add("iter", useValue)
			in.add("item", useValue)

		case algebra.OpElem:
			loop, content := get(n.Ins[0]), get(n.Ins[1])
			loop.add("iter", useValue)
			content.add("iter", useValue)
			content.add("item", useValue)
			// Sequence order establishes document order (interaction 2):
			// constructors genuinely consume content order.
			content.add("pos", useOrder)

		case algebra.OpAttr:
			in := get(n.Ins[0])
			in.add("iter", useValue)
			in.add(n.Col, useValue)

		case algebra.OpRange:
			in := get(n.Ins[0])
			in.add("iter", useValue)
			in.add(n.LCol, useValue)
			in.add(n.RCol, useValue)

		case algebra.OpCheckCard:
			in := get(n.Ins[0])
			for c, k := range R {
				in.add(c, k)
			}
			in.add(n.Col, useValue)
			if len(n.Ins) == 2 {
				get(n.Ins[1]).add(n.Col, useValue)
			}
		}
	}
	return reqs
}

// --- Column properties (§7): constants and arbitrary unique columns ---

// colProp records what is known about a column's content. This is the
// property inference the paper's §7 wrap-up builds on:
//
//   - constant: every row holds the same value (e.g. the top-level loop's
//     iter column, or a pos column installed by × with a literal);
//   - arbitrary: the values are meaningless identifiers — their relative
//     order carries no information (outputs of #, and anything derived
//     from them by copying);
//   - unique: no value occurs twice (a key column): # outputs, ungrouped
//     ρ outputs, aggregate group columns; preserved across a join when
//     the opposite key is itself unique, and across a union only when the
//     compiler asserted disjointness.
type colProp struct {
	constant  bool
	constVal  xdm.Item
	arbitrary bool
	unique    bool
}

type propMap map[string]colProp

// inferProps computes column properties bottom-up over a DAG.
func inferProps(root *algebra.Node) map[*algebra.Node]propMap {
	props := make(map[*algebra.Node]propMap)
	for _, n := range algebra.Nodes(root) {
		p := propMap{}
		in := func(i int) propMap { return props[n.Ins[i]] }
		copyFrom := func(src propMap, cols []string) {
			for _, c := range cols {
				if cp, ok := src[c]; ok {
					p[c] = cp
				}
			}
		}
		switch n.Kind {
		case algebra.OpLit:
			if len(n.Rows) == 1 {
				for i, c := range n.Cols {
					p[c] = colProp{constant: true, constVal: n.Rows[0][i], unique: true}
				}
			}

		case algebra.OpProject:
			for _, pr := range n.Proj {
				if cp, ok := in(0)[pr.Old]; ok {
					p[pr.New] = cp
				}
			}

		case algebra.OpSelect, algebra.OpSemi, algebra.OpDiff, algebra.OpCheckCard:
			// Row subsets preserve all three properties.
			copyFrom(in(0), n.Schema())

		case algebra.OpDistinct:
			copyFrom(in(0), n.Cols)
			if len(n.Cols) == 1 {
				cp := p[n.Cols[0]]
				cp.unique = true
				p[n.Cols[0]] = cp
			}

		case algebra.OpRowID:
			copyFrom(in(0), n.Ins[0].Schema())
			p[n.Col] = colProp{arbitrary: true, unique: true}

		case algebra.OpRowNum:
			copyFrom(in(0), n.Ins[0].Schema())
			if n.Part == "" {
				p[n.Res] = colProp{unique: true} // dense global numbering
			}

		case algebra.OpBinOp, algebra.OpMap1:
			copyFrom(in(0), n.Ins[0].Schema())

		case algebra.OpJoin:
			lp, rp := in(0), in(1)
			lKeyUnique := lp[n.LCol].unique
			rKeyUnique := rp[n.RCol].unique
			for c, cp := range lp {
				cp.unique = cp.unique && rKeyUnique
				p[c] = cp
			}
			for c, cp := range rp {
				cp.unique = cp.unique && lKeyUnique
				p[c] = cp
			}

		case algebra.OpCross:
			lSingle := n.Ins[0].Kind == algebra.OpLit && len(n.Ins[0].Rows) == 1
			rSingle := n.Ins[1].Kind == algebra.OpLit && len(n.Ins[1].Rows) == 1
			for side, sp := range []propMap{in(0), in(1)} {
				keepUnique := (side == 0 && rSingle) || (side == 1 && lSingle)
				for c, cp := range sp {
					cp.unique = cp.unique && keepUnique
					p[c] = cp
				}
			}

		case algebra.OpUnion:
			for c, cp := range in(0) {
				rp, ok := in(1)[c]
				if !ok {
					continue
				}
				merged := colProp{}
				if cp.constant && rp.constant &&
					xdm.DistinctKey(cp.constVal) == xdm.DistinctKey(rp.constVal) {
					merged.constant, merged.constVal = true, cp.constVal
				}
				merged.arbitrary = cp.arbitrary && rp.arbitrary
				if n.Disj == c {
					merged.unique = cp.unique && rp.unique
				}
				if merged.constant || merged.arbitrary || merged.unique {
					p[c] = merged
				}
			}

		case algebra.OpAggr:
			if n.Part != "" {
				cp := in(0)[n.Part]
				cp.unique = true // one row per group
				p[n.Part] = cp
			}

		case algebra.OpStep, algebra.OpElem, algebra.OpAttr, algebra.OpRange:
			// Iteration ids are copied through; constants and
			// arbitrariness survive, uniqueness does not (steps and
			// ranges fan out, constructors keep loop cardinality — be
			// conservative regardless).
			if cp, ok := in(0)["iter"]; ok {
				cp.unique = false
				p["iter"] = cp
			}
		}
		props[n] = p
	}
	return props
}

// sortedCols returns the required column names in deterministic order.
func sortedCols(r colReq) []string {
	out := make([]string, 0, len(r))
	for c, k := range r {
		if k != 0 {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}
