// Package opt implements the plan rewrites of §4.1 and §7 of the paper:
//
//   - column dependency analysis — the top-down inference of strictly
//     required input columns (Figure 8), followed by pruning of operators
//     whose outputs nobody needs (dead # chains, order-establishing ρ
//     whose rank is never consumed, literal cross products);
//   - rownum relaxation (§7 wrap-up) — property inference (constant
//     columns, arbitrary-unique "key" columns) that degenerates residual
//     ρ operators into free # stamps;
//   - step merging — ⤋descendant-or-self::node() directly below ⤋child::nt
//     fuses into ⤋descendant::nt (the source of the paper's 10,000 %
//     outliers for XMark Q6/Q7);
//   - disjoint-union simplification — distinct over the union of steps
//     with provably disjoint results disappears, completing the paper's
//     '|' → ',' example (Figure 10).
//
// Every rewrite is individually switchable for the ablation benchmarks.
package opt

import "repro/internal/algebra"

// Options enables individual rewrites.
type Options struct {
	ColumnAnalysis   bool // §4.1 column dependency analysis + pruning
	RownumRelax      bool // §7 ρ → # via constant/key property inference
	StepMerge        bool // ⤋d-o-s::node() + ⤋child::nt → ⤋descendant::nt
	DisjointDistinct bool // drop distinct over disjoint step unions
}

// AllOptions enables every rewrite.
func AllOptions() Options {
	return Options{ColumnAnalysis: true, RownumRelax: true, StepMerge: true, DisjointDistinct: true}
}

// Optimize rewrites the DAG rooted at root and returns the new root. The
// passes iterate to a fixed point: column analysis exposes step-merge
// opportunities (the ρ between two steps disappears first), and merging
// in turn makes more columns dead.
func Optimize(root *algebra.Node, b *algebra.Builder, opts Options) *algebra.Node {
	for i := 0; i < 8; i++ {
		before := root
		if opts.ColumnAnalysis {
			root = columnAnalysis(root, b, opts)
		}
		if opts.StepMerge {
			root = stepMerge(root, b)
		}
		if opts.DisjointDistinct {
			root = disjointDistinct(root, b)
		}
		if root == before {
			break
		}
	}
	return root
}

// PlanStats re-exports plan statistics for callers outside the algebra
// package.
func PlanStats(root *algebra.Node) algebra.Stats { return algebra.PlanStats(root) }

// Explain renders a plan as indented text.
func Explain(root *algebra.Node) string { return algebra.Print(root) }
