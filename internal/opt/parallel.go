package opt

import "repro/internal/algebra"

// Parallel region analysis.
//
// The paper's order-indifference machinery proves, plan region by plan
// region, that row order is disposable data: wherever the optimizer may
// emit # instead of the blocking ρ, no consumer observes the physical
// order of the rows flowing by. This pass cashes that proof in for
// parallelism: a node whose output row order is provably unobservable
// ("order-dead") may be evaluated partition-wise — any interleaving of
// its morsels is indistinguishable — while order-sensitive regions must
// stay on the serial path.
//
// Order-liveness is inferred top-down (consumers before producers) on a
// three-level lattice, reusing the column dependency analysis of §4.1
// (inferRequired) and the §7 property inference (inferProps):
//
//	ordDead  — no consumer observes the node's row order at all;
//	ordGroup — only the iteration-group occurrence order is observed
//	           (aggregates emit one row per group, in first-occurrence
//	           order of the groups; the rows inside a group may arrive
//	           in any order);
//	ordFull  — the complete row order is observable.
//
// The per-operator demand rules:
//
//   - the root's physical order is dead when its pos column is a key:
//     serialization sorts by pos values, so unique values fully determine
//     the output sequence; otherwise the stable sort leaks physical order
//     through tied pos values and the root demands full order;
//   - ρ with tie-free sort criteria (some criterion is a key column) is
//     an order barrier: its output — values and order — is a pure
//     function of the input multiset, so the input order is dead; with
//     possible ties, the stable sort leaks input order into the assigned
//     ranks, full demand when the rank is consumed, pass-through when it
//     is dead order bookkeeping;
//   - # stamps arbitrary ids: the compiler and optimizer emit # exactly
//     where they proved any realized order admissible, so the stamped
//     values — even when later consumed as sort criteria, e.g. the final
//     serialization ordering by a #-produced pos — never pin the input
//     order; # merely passes its consumers' row-order demand through;
//   - count and EBV aggregates are value-insensitive to intra-group
//     order: they demand at most group-occurrence order. The
//     order-sensitive aggregates (fn:string-join via pos; sum/avg, whose
//     float accumulation is not reassociation-safe; max/min, whose
//     representative among equal-comparing values is the first seen)
//     demand full input order;
//   - the step operator regroups rows itself: its output is per-group
//     document order (a function of the input value multiset), so it too
//     demands at most group-occurrence order from its input;
//   - node constructors consume their input order outright: constructed
//     fragments receive identities (and relative document order) in row
//     order;
//   - distinct passes demand through when its key covers the whole
//     schema (the surviving multiset is then order-independent); with a
//     partial key, which row survives per key depends on the full order;
//   - every other operator passes its consumers' demand through.

// Order-liveness levels.
const (
	ordDead  = 0
	ordGroup = 1
	ordFull  = 2
)

// MarkParallel computes order-liveness for every node of the DAG and
// sets algebra.Node.Par on the nodes whose full row order is dead (at
// most the group structure is observed — which every morsel kernel
// preserves by merging partitions in deterministic serial-scan order).
// ρ and the constructors are never marked (they are blocking or
// identity-assigning by nature). It returns the number of marked nodes.
func MarkParallel(root *algebra.Node) int {
	reqs := inferRequired(root)
	props := inferProps(root)
	nodes := algebra.Nodes(root) // topological, inputs first
	live := make(map[*algebra.Node]int, len(nodes))

	// Seed: serialization sorts the root by pos value; a key pos makes
	// the root's physical order immaterial.
	if cp, ok := props[root]["pos"]; !ok || !cp.unique {
		live[root] = ordFull
	}

	for i := len(nodes) - 1; i >= 0; i-- {
		c := nodes[i]
		L := live[c]
		demand := func(idx, lvl int) {
			if lvl > live[c.Ins[idx]] {
				live[c.Ins[idx]] = lvl
			}
		}
		switch c.Kind {
		case algebra.OpLit, algebra.OpDoc:
			// no inputs

		case algebra.OpSemi, algebra.OpDiff, algebra.OpCheckCard:
			// The filter/loop side contributes values only.
			demand(0, L)
			if len(c.Ins) == 2 {
				demand(1, ordDead)
			}

		case algebra.OpElem:
			demand(0, ordFull)
			demand(1, ordFull)

		case algebra.OpAttr:
			demand(0, ordFull)

		case algebra.OpRowNum:
			switch {
			case rowNumTieFree(c, props):
				demand(0, ordDead)
			case reqs[c].has(c.Res):
				demand(0, ordFull)
			default:
				// Dead order bookkeeping over a tied sort: the stable sort
				// leaks input order into output order, nothing else.
				demand(0, L)
			}

		case algebra.OpRowID:
			demand(0, L)

		case algebra.OpAggr:
			switch c.AFn {
			case algebra.AggrCount, algebra.AggrEbv:
				demand(0, minLvl(L, ordGroup))
			default:
				demand(0, ordFull)
			}

		case algebra.OpStep:
			// Output order is per-group document order: a function of the
			// input multiset plus the groups' first-occurrence order.
			demand(0, minLvl(L, ordGroup))

		case algebra.OpDistinct:
			if coversSchema(c.Cols, c.Ins[0].Schema()) {
				demand(0, L)
			} else {
				demand(0, ordFull)
			}

		default:
			// Project, select, join, cross, union, binop, map1, range:
			// output order is a deterministic function of input order; the
			// consumers' demand passes through.
			for idx := range c.Ins {
				demand(idx, L)
			}
		}
	}

	marked := 0
	for _, n := range nodes {
		n.Par = live[n] <= ordGroup && parallelizableKind(n.Kind)
		if n.Par {
			marked++
		}
	}
	return marked
}

func minLvl(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// coversSchema reports whether the key columns include every schema
// column, i.e. a distinct over them is insensitive to row order.
func coversSchema(key, schema []string) bool {
	set := make(map[string]bool, len(key))
	for _, k := range key {
		set[k] = true
	}
	for _, s := range schema {
		if !set[s] {
			return false
		}
	}
	return true
}

// rowNumTieFree reports whether a ρ's stable sort provably has no ties:
// some sort criterion is a key column, so no two distinct rows compare
// equal on the full criteria list.
func rowNumTieFree(n *algebra.Node, props map[*algebra.Node]propMap) bool {
	p := props[n.Ins[0]]
	for _, s := range n.Sort {
		if p[s.Col].unique {
			return true
		}
	}
	return false
}

// parallelizableKind excludes the operators that are blocking (ρ) or
// assign node identity in row order (constructors) from parallel regions
// regardless of order-liveness.
func parallelizableKind(k algebra.OpKind) bool {
	switch k {
	case algebra.OpRowNum, algebra.OpElem, algebra.OpAttr:
		return false
	}
	return true
}
