package opt

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// mini builds a toy plan: loop × doc → step → ρ/# pos → π(pos, item)-style
// consumers, letting the passes be tested in isolation.
func miniStep(b *algebra.Builder, test string) *algebra.Node {
	loop := b.LitCol("iter", xdm.NewInt(1))
	ctx := b.Cross(loop, b.Doc("d.xml"))
	return b.Step(ctx, xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: test})
}

func TestDeadRowNumPruned(t *testing.T) {
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	rn := b.RowNum(step, "pos", []algebra.SortSpec{{Col: "item"}}, "iter")
	// Consumer ignores pos entirely.
	root := b.Keep(rn, "item")
	out := Optimize(root, b, Options{ColumnAnalysis: true})
	if algebra.PlanStats(out).RowNums != 0 {
		t.Errorf("dead rownum survived:\n%s", algebra.Print(out))
	}
}

func TestLiveRowNumKept(t *testing.T) {
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	rn := b.RowNum(step, "pos", []algebra.SortSpec{{Col: "item"}}, "iter")
	root := b.Keep(rn, "pos", "item") // pos is the result position: required
	out := Optimize(root, b, Options{ColumnAnalysis: true})
	if algebra.PlanStats(out).RowNums != 1 {
		t.Errorf("live rownum pruned:\n%s", algebra.Print(out))
	}
}

func TestDeadLiteralCrossPruned(t *testing.T) {
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	crossed := b.Cross(step, b.LitCol("pos", xdm.NewInt(1)))
	root := b.Keep(crossed, "item")
	out := Optimize(root, b, Options{ColumnAnalysis: true})
	for _, n := range algebra.Nodes(out) {
		if n.Kind == algebra.OpCross && n.Ins[1].Kind == algebra.OpLit && n.Ins[1].Cols[0] == "pos" {
			t.Errorf("dead × pos|1 survived:\n%s", algebra.Print(out))
		}
	}
}

func TestChainedDeadOrderBookkeeping(t *testing.T) {
	// #pos over %pos: once the outer # makes the inner % dead, a second
	// round prunes the # itself if unused — the cascade of §4.1.
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	rn := b.RowNum(step, "pos", []algebra.SortSpec{{Col: "item"}}, "iter")
	rid := b.RowID(b.Keep(rn, "iter", "item"), "pos")
	root := b.Keep(rid, "item")
	out := Optimize(root, b, Options{ColumnAnalysis: true})
	s := algebra.PlanStats(out)
	if s.RowNums != 0 || s.RowIDs != 0 {
		t.Errorf("cascaded pruning incomplete (ρ=%d, #=%d):\n%s", s.RowNums, s.RowIDs, algebra.Print(out))
	}
}

func TestRelaxationNeedsOrderOnlyUse(t *testing.T) {
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	rid := b.RowID(step, "arb") // arbitrary unique column
	rn := b.RowNum(rid, "pos", []algebra.SortSpec{{Col: "arb"}}, "")
	// pos used as a *value* (selection): must NOT relax.
	withLit := b.Cross(rn, b.LitCol("pv", xdm.NewInt(2)))
	cmp := b.BinOp(withLit, algebra.BCmpVal, xdm.CmpEq, "res", "pos", "pv")
	rootVal := b.Keep(b.Select(cmp, "res"), "item", "pos")
	out := Optimize(rootVal, b, Options{ColumnAnalysis: true, RownumRelax: true})
	if algebra.PlanStats(out).RowNums != 1 {
		t.Errorf("value-consumed rownum relaxed:\n%s", algebra.Print(out))
	}

	// pos used only for ordering (as the root pos): relaxes to #.
	rootOrd := b.Keep(rn, "pos", "item")
	out2 := Optimize(rootOrd, b, Options{ColumnAnalysis: true, RownumRelax: true})
	if algebra.PlanStats(out2).RowNums != 0 {
		t.Errorf("order-only rownum over arbitrary keys not relaxed:\n%s", algebra.Print(out2))
	}
}

func TestRelaxationDropsConstantKeys(t *testing.T) {
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	crossed := b.Cross(step, b.LitCol("c", xdm.NewInt(7)))
	rn := b.RowNum(crossed, "pos", []algebra.SortSpec{{Col: "c"}, {Col: "item"}}, "")
	root := b.Keep(rn, "pos", "item")
	out := Optimize(root, b, Options{ColumnAnalysis: true, RownumRelax: true})
	for _, n := range algebra.Nodes(out) {
		if n.Kind == algebra.OpRowNum {
			if len(n.Sort) != 1 || n.Sort[0].Col != "item" {
				t.Errorf("constant key not dropped: %v", n.Sort)
			}
		}
	}
}

func TestRelaxationStopsAtMeaningfulKey(t *testing.T) {
	// <item, arb>: arb is arbitrary-unique but FOLLOWS a meaningful key —
	// only the tail from arb on may be dropped; item must stay.
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	rid := b.RowID(step, "arb")
	rn := b.RowNum(rid, "pos", []algebra.SortSpec{{Col: "item"}, {Col: "arb"}}, "")
	root := b.Keep(rn, "pos", "item")
	out := Optimize(root, b, Options{ColumnAnalysis: true, RownumRelax: true})
	found := false
	for _, n := range algebra.Nodes(out) {
		if n.Kind == algebra.OpRowNum {
			found = true
			if len(n.Sort) != 1 || n.Sort[0].Col != "item" {
				t.Errorf("sort keys after relaxation: %v", n.Sort)
			}
		}
	}
	if !found {
		t.Errorf("rownum with a meaningful key disappeared:\n%s", algebra.Print(out))
	}
}

func TestStepMergePattern(t *testing.T) {
	b := algebra.NewBuilder()
	loop := b.LitCol("iter", xdm.NewInt(1))
	ctx := b.Cross(loop, b.Doc("d.xml"))
	dos := b.Step(ctx, xquery.AxisDescendantOrSelf, xquery.NodeTest{Kind: xquery.TestNode})
	child := b.Step(dos, xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "item"})
	out := stepMerge(b.Keep(child, "iter", "item"), b)
	var merged *algebra.Node
	for _, n := range algebra.Nodes(out) {
		if n.Kind == algebra.OpStep && n.Axis == xquery.AxisDescendant {
			merged = n
		}
		if n.Kind == algebra.OpStep && n.Axis == xquery.AxisDescendantOrSelf {
			t.Error("descendant-or-self step survived the merge")
		}
	}
	if merged == nil || merged.Test.Name != "item" {
		t.Fatalf("merge missing:\n%s", algebra.Print(out))
	}
	// Merging must see through # but is blocked by ρ.
	rn := b.RowNum(dos, "pos", []algebra.SortSpec{{Col: "item"}}, "iter")
	blocked := b.Step(b.Keep(rn, "iter", "item"), xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "item"})
	out2 := stepMerge(blocked, b)
	for _, n := range algebra.Nodes(out2) {
		if n.Kind == algebra.OpStep && n.Axis == xquery.AxisDescendant {
			t.Error("merge fired through a ρ")
		}
	}
}

func TestDisjointDistinctRemoval(t *testing.T) {
	b := algebra.NewBuilder()
	// union of child::c and child::d (disjoint names) → distinct removable.
	sc := miniStep(b, "c")
	sd := miniStep(b, "d")
	d := b.Distinct(b.Union(sc, sd), "iter", "item")
	out := disjointDistinct(b.Keep(d, "iter", "item"), b)
	if algebra.PlanStats(out).ByKind[algebra.OpDistinct] != 0 {
		t.Errorf("distinct over disjoint steps survived:\n%s", algebra.Print(out))
	}
	// Same name on both branches: distinct must stay.
	d2 := b.Distinct(b.Union(sc, miniStep(b, "c")), "iter", "item")
	out2 := disjointDistinct(b.Keep(d2, "iter", "item"), b)
	if algebra.PlanStats(out2).ByKind[algebra.OpDistinct] != 1 {
		t.Errorf("distinct over same-name steps removed:\n%s", algebra.Print(out2))
	}
}

func TestOptimizeFixpointTerminates(t *testing.T) {
	b := algebra.NewBuilder()
	step := miniStep(b, "x")
	rn := b.RowNum(step, "pos", []algebra.SortSpec{{Col: "item"}}, "iter")
	root := b.Keep(rn, "pos", "item")
	out1 := Optimize(root, b, AllOptions())
	out2 := Optimize(out1, b, AllOptions())
	if out1 != out2 {
		t.Error("optimizer is not idempotent at its fixed point")
	}
}

func TestInferRequiredSeedsRoot(t *testing.T) {
	b := algebra.NewBuilder()
	lit := b.Lit([]string{"pos", "item", "junk"})
	reqs := inferRequired(lit)
	r := reqs[lit]
	if !r.has("pos") || !r.has("item") {
		t.Error("root must require pos and item")
	}
	if r.has("junk") {
		t.Error("junk must not be required")
	}
	if !r.orderOnly("pos") {
		t.Error("root pos is an order-only requirement")
	}
	if r.orderOnly("item") {
		t.Error("root item is a value requirement")
	}
}
