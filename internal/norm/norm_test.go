package norm

import (
	"strings"
	"testing"

	"repro/internal/xquery"
)

func normalize(t *testing.T, src string, insert bool) *xquery.Module {
	t.Helper()
	m, err := xquery.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	n, err := Normalize(m, Options{InsertUnordered: insert})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return n
}

// countUnordered counts fn:unordered() calls in the rendered core form.
func countUnordered(e xquery.Expr) int {
	return strings.Count(e.String(), "unordered(")
}

func TestAggregateArgumentsWrapped(t *testing.T) {
	for _, fn := range []string{"count", "sum", "avg", "max", "min", "empty", "exists", "distinct-values"} {
		m := normalize(t, fn+`(("a", "b"))`, true)
		if countUnordered(m.Body) != 1 {
			t.Errorf("%s argument not wrapped: %s", fn, m.Body)
		}
		m = normalize(t, fn+`(("a", "b"))`, false)
		if countUnordered(m.Body) != 0 {
			t.Errorf("%s wrapped with insertion disabled: %s", fn, m.Body)
		}
	}
}

func TestQuantifierDomainsWrapped(t *testing.T) {
	m := normalize(t, `some $x in (1,2), $y in (3,4) satisfies $x = $y`, true)
	q, ok := m.Body.(*xquery.Quantified)
	if !ok {
		t.Fatalf("body: %T", m.Body)
	}
	for i, v := range q.Vars {
		fc, ok := v.In.(*xquery.FuncCall)
		if !ok || fc.Name != "unordered" {
			t.Errorf("domain %d not wrapped: %s", i, v.In)
		}
	}
}

func TestGeneralComparisonOperandsWrapped(t *testing.T) {
	m := normalize(t, `(1, 2) = (2, 3)`, true)
	cmp, ok := m.Body.(*xquery.GeneralCmp)
	if !ok {
		t.Fatalf("body: %T", m.Body)
	}
	for _, side := range []xquery.Expr{cmp.L, cmp.R} {
		fc, ok := side.(*xquery.FuncCall)
		if !ok || fc.Name != "unordered" {
			t.Errorf("operand not wrapped: %s", side)
		}
	}
	// Value comparisons are order-sensitive only in their cardinality
	// checks; their operands are singletons and stay unwrapped.
	m = normalize(t, `1 eq 2`, true)
	if countUnordered(m.Body) != 0 {
		t.Errorf("value comparison wrapped: %s", m.Body)
	}
}

func TestNoDoubleWrapping(t *testing.T) {
	m := normalize(t, `count(unordered((1, 2)))`, true)
	if got := countUnordered(m.Body); got != 1 {
		t.Errorf("unordered applied %d times: %s", got, m.Body)
	}
}

func TestWhereConditionEbvContext(t *testing.T) {
	// Path-valued conditions are wrapped (EBV is order indifferent)…
	m := normalize(t, `for $x in (1, 2) where $x/a return $x`, true)
	fl := m.Body.(*xquery.FLWOR)
	if fc, ok := fl.Where.(*xquery.FuncCall); !ok || fc.Name != "unordered" {
		t.Errorf("where condition not wrapped: %s", fl.Where)
	}
	// …while boolean-typed conditions skip the noise wrapper.
	m = normalize(t, `for $x in (1, 2) where $x = 1 return $x`, true)
	fl = m.Body.(*xquery.FLWOR)
	if _, ok := fl.Where.(*xquery.GeneralCmp); !ok {
		t.Errorf("boolean condition needlessly wrapped: %s", fl.Where)
	}
}

func TestFunctionInliningBindsParameters(t *testing.T) {
	m := normalize(t, `declare function local:twice($v) { $v + $v };
		local:twice(21)`, false)
	fl, ok := m.Body.(*xquery.FLWOR)
	if !ok {
		t.Fatalf("inlined call should become a let block, got %T", m.Body)
	}
	let, ok := fl.Clauses[0].(*xquery.LetClause)
	if !ok || !strings.HasPrefix(let.Var, "v#") {
		t.Fatalf("parameter binding: %#v", fl.Clauses[0])
	}
	if !strings.Contains(fl.Return.String(), "$"+let.Var) {
		t.Errorf("body does not reference the fresh parameter: %s", fl.Return)
	}
}

func TestInliningAvoidsCapture(t *testing.T) {
	// The parameter is renamed, so a caller-side $v is not captured.
	m := normalize(t, `declare function local:f($v) { $v };
		for $v in (1, 2) return local:f($v + 1)`, false)
	s := m.Body.String()
	if strings.Contains(s, "let $v :=") {
		t.Errorf("parameter not renamed: %s", s)
	}
}

func TestInliningShadowingInsideBody(t *testing.T) {
	// An inner binding of the same name inside the function body shadows
	// the parameter and must not be renamed.
	m := normalize(t, `declare function local:f($x) { for $x in (1, 2) return $x };
		local:f(9)`, false)
	s := m.Body.String()
	if !strings.Contains(s, "for $x in") || !strings.Contains(s, "return $x") {
		t.Errorf("inner shadowing broken: %s", s)
	}
}

func TestRecursionRejected(t *testing.T) {
	m, err := xquery.Parse(`declare function local:r($x) { local:r($x) }; local:r(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(m, Options{}); err == nil {
		t.Error("recursive functions must be rejected")
	}
	// Mutual recursion too.
	m, err = xquery.Parse(`declare function local:a($x) { local:b($x) };
		declare function local:b($x) { local:a($x) };
		local:a(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(m, Options{}); err == nil {
		t.Error("mutually recursive functions must be rejected")
	}
}

func TestArityMismatchRejected(t *testing.T) {
	m, err := xquery.Parse(`declare function local:f($x) { $x }; local:f(1, 2)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(m, Options{}); err == nil {
		t.Error("arity mismatch must be rejected")
	}
}

func TestDuplicateFunctionRejected(t *testing.T) {
	m, err := xquery.Parse(`declare function local:f($x) { $x };
		declare function local:f($y) { $y }; local:f(1)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Normalize(m, Options{}); err == nil {
		t.Error("duplicate declarations must be rejected")
	}
}

func TestOrderingModePreserved(t *testing.T) {
	m := normalize(t, `declare ordering unordered; 1`, true)
	if m.Ordering != xquery.Unordered {
		t.Error("prolog ordering lost")
	}
}

func TestNormalizationIsPure(t *testing.T) {
	src := `count(for $x in (1,2) where $x = 1 return $x)`
	m, err := xquery.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Body.String()
	if _, err := Normalize(m, Options{InsertUnordered: true}); err != nil {
		t.Fatal(err)
	}
	if m.Body.String() != before {
		t.Error("normalization mutated the input module")
	}
}
