package norm

import "repro/internal/xquery"

// substituteVars renames free variable references per the rename map,
// respecting shadowing by inner for/let/quantifier bindings. Used when
// inlining function bodies so parameter references cannot capture caller
// bindings.
func substituteVars(e xquery.Expr, rename map[string]string) xquery.Expr {
	if len(rename) == 0 {
		return e
	}
	s := substituter{rename: rename}
	return s.expr(e)
}

type substituter struct {
	rename map[string]string
}

// without returns a substituter with one binding shadowed.
func (s substituter) without(names ...string) substituter {
	shadowed := false
	for _, n := range names {
		if n == "" {
			continue
		}
		if _, ok := s.rename[n]; ok {
			shadowed = true
		}
	}
	if !shadowed {
		return s
	}
	m := make(map[string]string, len(s.rename))
	for k, v := range s.rename {
		m[k] = v
	}
	for _, n := range names {
		delete(m, n)
	}
	return substituter{rename: m}
}

func (s substituter) exprs(list []xquery.Expr) []xquery.Expr {
	out := make([]xquery.Expr, len(list))
	for i, e := range list {
		out[i] = s.expr(e)
	}
	return out
}

func (s substituter) expr(e xquery.Expr) xquery.Expr {
	switch e := e.(type) {
	case *xquery.VarRef:
		if to, ok := s.rename[e.Name]; ok {
			return &xquery.VarRef{Name: to}
		}
		return e
	case *xquery.IntLit, *xquery.DecLit, *xquery.StrLit,
		*xquery.ContextItem, *xquery.EmptySeq, *xquery.CharContent:
		return e
	case *xquery.Sequence:
		return &xquery.Sequence{Items: s.exprs(e.Items)}
	case *xquery.Path:
		out := &xquery.Path{Steps: make([]xquery.Step, len(e.Steps))}
		if e.Start != nil {
			out.Start = s.expr(e.Start)
		}
		for i, st := range e.Steps {
			out.Steps[i] = xquery.Step{Axis: st.Axis, Test: st.Test, Preds: s.exprs(st.Preds)}
		}
		return out
	case *xquery.Filter:
		return &xquery.Filter{Base: s.expr(e.Base), Preds: s.exprs(e.Preds)}
	case *xquery.FLWOR:
		out := &xquery.FLWOR{Stable: e.Stable}
		cur := s
		for _, cl := range e.Clauses {
			switch cl := cl.(type) {
			case *xquery.ForClause:
				out.Clauses = append(out.Clauses, &xquery.ForClause{
					Var: cl.Var, PosVar: cl.PosVar, In: cur.expr(cl.In),
				})
				cur = cur.without(cl.Var, cl.PosVar)
			case *xquery.LetClause:
				out.Clauses = append(out.Clauses, &xquery.LetClause{
					Var: cl.Var, Expr: cur.expr(cl.Expr),
				})
				cur = cur.without(cl.Var)
			}
		}
		if e.Where != nil {
			out.Where = cur.expr(e.Where)
		}
		for _, spec := range e.Order {
			out.Order = append(out.Order, xquery.OrderSpec{
				Key: cur.expr(spec.Key), Descending: spec.Descending, EmptyGreatest: spec.EmptyGreatest,
			})
		}
		out.Return = cur.expr(e.Return)
		return out
	case *xquery.Quantified:
		out := &xquery.Quantified{Every: e.Every}
		cur := s
		for _, v := range e.Vars {
			out.Vars = append(out.Vars, xquery.QVar{Var: v.Var, In: cur.expr(v.In)})
			cur = cur.without(v.Var)
		}
		out.Satisfies = cur.expr(e.Satisfies)
		return out
	case *xquery.IfExpr:
		return &xquery.IfExpr{Cond: s.expr(e.Cond), Then: s.expr(e.Then), Else: s.expr(e.Else)}
	case *xquery.Arith:
		return &xquery.Arith{Op: e.Op, L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.Neg:
		return &xquery.Neg{Expr: s.expr(e.Expr)}
	case *xquery.GeneralCmp:
		return &xquery.GeneralCmp{Op: e.Op, L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.ValueCmp:
		return &xquery.ValueCmp{Op: e.Op, L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.NodeCmp:
		return &xquery.NodeCmp{Op: e.Op, L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.Logic:
		return &xquery.Logic{Op: e.Op, L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.SetOp:
		return &xquery.SetOp{Kind: e.Kind, L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.RangeExpr:
		return &xquery.RangeExpr{L: s.expr(e.L), R: s.expr(e.R)}
	case *xquery.OrderedExpr:
		return &xquery.OrderedExpr{Mode: e.Mode, Expr: s.expr(e.Expr)}
	case *xquery.FuncCall:
		return &xquery.FuncCall{Name: e.Name, Args: s.exprs(e.Args)}
	case *xquery.ElemCons:
		out := &xquery.ElemCons{Name: e.Name, Content: s.exprs(e.Content)}
		for _, a := range e.Attrs {
			na := xquery.AttrCons{Name: a.Name}
			for _, p := range a.Parts {
				if p.Expr == nil {
					na.Parts = append(na.Parts, p)
				} else {
					na.Parts = append(na.Parts, xquery.AttrPart{Expr: s.expr(p.Expr)})
				}
			}
			out.Attrs = append(out.Attrs, na)
		}
		return out
	default:
		return e
	}
}
