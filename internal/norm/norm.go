// Package norm implements the normalization step ⟦·⟧ of the eXrQuy
// pipeline (§2.2 of the paper). Its central job is to make order
// indifference explicit on the language level by inserting calls to
// fn:unordered() in the contexts where sequence order is unobservable:
//
//   - aggregate arguments: fn:count, fn:sum, fn:avg, fn:max, fn:min
//     (Rule FN:COUNT and its siblings),
//   - fn:empty, fn:exists, fn:boolean, fn:not, fn:distinct-values,
//   - the domains of some/every quantifiers (Rule QUANT — applies in
//     either ordering mode),
//   - both operands of general comparisons (whose W3C normalization is a
//     pair of nested some-quantifiers).
//
// The paper's Rules FOR/STEP/UNION (pushing unordered{} through
// iterations, steps and node set operations, Figure 4) are deliberately
// NOT expressed here: §2.2 shows they cannot capture the full freedom of
// ordering mode unordered (nested for reordering, positional variables).
// Those contexts are instead handled below the language level, by the
// compiler's twin rules LOC#/BIND# (package compile) — exactly the
// division of labour the paper argues for.
//
// The package also inlines prolog-declared functions (rejecting
// recursion), so the compiler sees a closed expression.
package norm

import (
	"fmt"

	"repro/internal/xquery"
)

// Options controls normalization.
type Options struct {
	// InsertUnordered enables the fn:unordered() insertion rules above.
	// Disabled, the pipeline behaves like the order-ignorant baseline
	// compiler of §5 ("if the compiler ignores order indifference").
	InsertUnordered bool
}

// unorderedArgFuncs lists built-ins whose argument order is unobservable.
var unorderedArgFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "max": true, "min": true,
	"empty": true, "exists": true, "boolean": true, "not": true,
	"distinct-values": true,
}

// Normalize rewrites a module per the options. The input module is not
// modified.
func Normalize(m *xquery.Module, opts Options) (*xquery.Module, error) {
	n := &normalizer{opts: opts, funcs: make(map[string]*xquery.FuncDecl)}
	for _, fd := range m.Functions {
		if _, dup := n.funcs[fd.Name]; dup {
			return nil, fmt.Errorf("norm: duplicate function %s", fd.Name)
		}
		n.funcs[fd.Name] = fd
	}
	body, err := n.rewrite(m.Body)
	if err != nil {
		return nil, err
	}
	// Initialized prolog variables desugar into a let chain around the
	// body (innermost = last declared); external ones survive for the
	// host environment to bind.
	var externals []*xquery.VarDecl
	for i := len(m.Variables) - 1; i >= 0; i-- {
		vd := m.Variables[i]
		if vd.External {
			externals = append([]*xquery.VarDecl{vd}, externals...)
			continue
		}
		init, err := n.rewrite(vd.Init)
		if err != nil {
			return nil, err
		}
		body = &xquery.FLWOR{
			Clauses: []xquery.Clause{&xquery.LetClause{Var: vd.Name, Expr: init}},
			Return:  body,
		}
	}
	return &xquery.Module{Ordering: m.Ordering, Variables: externals, Body: body}, nil
}

type normalizer struct {
	opts  Options
	funcs map[string]*xquery.FuncDecl
	depth int
	fresh int
}

// wrap inserts fn:unordered(e) when the insertion rules are enabled.
func (n *normalizer) wrap(e xquery.Expr) xquery.Expr {
	if !n.opts.InsertUnordered {
		return e
	}
	if fc, ok := e.(*xquery.FuncCall); ok && fc.Name == "unordered" {
		return e // already wrapped
	}
	return &xquery.FuncCall{Name: "unordered", Args: []xquery.Expr{e}}
}

const maxInlineDepth = 64

func (n *normalizer) rewrite(e xquery.Expr) (xquery.Expr, error) {
	switch e := e.(type) {
	case *xquery.IntLit, *xquery.DecLit, *xquery.StrLit, *xquery.VarRef,
		*xquery.ContextItem, *xquery.EmptySeq, *xquery.CharContent:
		return e, nil

	case *xquery.Sequence:
		items := make([]xquery.Expr, len(e.Items))
		for i, it := range e.Items {
			v, err := n.rewrite(it)
			if err != nil {
				return nil, err
			}
			items[i] = v
		}
		return &xquery.Sequence{Items: items}, nil

	case *xquery.Path:
		out := &xquery.Path{Steps: make([]xquery.Step, len(e.Steps))}
		if e.Start != nil {
			s, err := n.rewrite(e.Start)
			if err != nil {
				return nil, err
			}
			out.Start = s
		}
		for i, st := range e.Steps {
			preds := make([]xquery.Expr, len(st.Preds))
			for j, p := range st.Preds {
				v, err := n.rewrite(p)
				if err != nil {
					return nil, err
				}
				preds[j] = v
			}
			out.Steps[i] = xquery.Step{Axis: st.Axis, Test: st.Test, Preds: preds}
		}
		return out, nil

	case *xquery.Filter:
		base, err := n.rewrite(e.Base)
		if err != nil {
			return nil, err
		}
		preds := make([]xquery.Expr, len(e.Preds))
		for i, p := range e.Preds {
			v, err := n.rewrite(p)
			if err != nil {
				return nil, err
			}
			preds[i] = v
		}
		return &xquery.Filter{Base: base, Preds: preds}, nil

	case *xquery.FLWOR:
		out := &xquery.FLWOR{Stable: e.Stable}
		for _, cl := range e.Clauses {
			switch cl := cl.(type) {
			case *xquery.ForClause:
				in, err := n.rewrite(cl.In)
				if err != nil {
					return nil, err
				}
				out.Clauses = append(out.Clauses, &xquery.ForClause{Var: cl.Var, PosVar: cl.PosVar, In: in})
			case *xquery.LetClause:
				v, err := n.rewrite(cl.Expr)
				if err != nil {
					return nil, err
				}
				out.Clauses = append(out.Clauses, &xquery.LetClause{Var: cl.Var, Expr: v})
			}
		}
		if e.Where != nil {
			// where p ≡ if (fn:boolean(p)) …: the condition is an EBV
			// context, hence order indifferent.
			w, err := n.rewrite(e.Where)
			if err != nil {
				return nil, err
			}
			out.Where = n.ebvContext(w)
		}
		for _, spec := range e.Order {
			k, err := n.rewrite(spec.Key)
			if err != nil {
				return nil, err
			}
			out.Order = append(out.Order, xquery.OrderSpec{Key: k, Descending: spec.Descending, EmptyGreatest: spec.EmptyGreatest})
		}
		ret, err := n.rewrite(e.Return)
		if err != nil {
			return nil, err
		}
		out.Return = ret
		return out, nil

	case *xquery.Quantified:
		out := &xquery.Quantified{Every: e.Every}
		for _, v := range e.Vars {
			in, err := n.rewrite(v.In)
			if err != nil {
				return nil, err
			}
			// Rule QUANT: quantifier domains are order indifferent in
			// either ordering mode.
			out.Vars = append(out.Vars, xquery.QVar{Var: v.Var, In: n.wrap(in)})
		}
		sat, err := n.rewrite(e.Satisfies)
		if err != nil {
			return nil, err
		}
		out.Satisfies = n.ebvContext(sat)
		return out, nil

	case *xquery.IfExpr:
		cond, err := n.rewrite(e.Cond)
		if err != nil {
			return nil, err
		}
		then, err := n.rewrite(e.Then)
		if err != nil {
			return nil, err
		}
		els, err := n.rewrite(e.Else)
		if err != nil {
			return nil, err
		}
		return &xquery.IfExpr{Cond: n.ebvContext(cond), Then: then, Else: els}, nil

	case *xquery.Arith:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &xquery.Arith{Op: e.Op, L: l, R: r}, nil

	case *xquery.Neg:
		v, err := n.rewrite(e.Expr)
		if err != nil {
			return nil, err
		}
		return &xquery.Neg{Expr: v}, nil

	case *xquery.GeneralCmp:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		// General comparisons normalize to nested some-quantifiers; both
		// operand sequences are therefore order indifferent (§2.2).
		return &xquery.GeneralCmp{Op: e.Op, L: n.wrap(l), R: n.wrap(r)}, nil

	case *xquery.ValueCmp:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &xquery.ValueCmp{Op: e.Op, L: l, R: r}, nil

	case *xquery.NodeCmp:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &xquery.NodeCmp{Op: e.Op, L: l, R: r}, nil

	case *xquery.Logic:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &xquery.Logic{Op: e.Op, L: n.ebvContext(l), R: n.ebvContext(r)}, nil

	case *xquery.SetOp:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &xquery.SetOp{Kind: e.Kind, L: l, R: r}, nil

	case *xquery.RangeExpr:
		l, err := n.rewrite(e.L)
		if err != nil {
			return nil, err
		}
		r, err := n.rewrite(e.R)
		if err != nil {
			return nil, err
		}
		return &xquery.RangeExpr{L: l, R: r}, nil

	case *xquery.OrderedExpr:
		v, err := n.rewrite(e.Expr)
		if err != nil {
			return nil, err
		}
		return &xquery.OrderedExpr{Mode: e.Mode, Expr: v}, nil

	case *xquery.ElemCons:
		out := &xquery.ElemCons{Name: e.Name}
		for _, a := range e.Attrs {
			na := xquery.AttrCons{Name: a.Name}
			for _, p := range a.Parts {
				if p.Expr == nil {
					na.Parts = append(na.Parts, p)
					continue
				}
				v, err := n.rewrite(p.Expr)
				if err != nil {
					return nil, err
				}
				na.Parts = append(na.Parts, xquery.AttrPart{Expr: v})
			}
			out.Attrs = append(out.Attrs, na)
		}
		for _, cexp := range e.Content {
			v, err := n.rewrite(cexp)
			if err != nil {
				return nil, err
			}
			out.Content = append(out.Content, v)
		}
		return out, nil

	case *xquery.FuncCall:
		return n.rewriteFuncCall(e)

	default:
		return nil, fmt.Errorf("norm: unsupported expression %T", e)
	}
}

// ebvContext marks an expression as consumed through its effective
// boolean value (if/where/and/or/satisfies): order indifferent.
func (n *normalizer) ebvContext(e xquery.Expr) xquery.Expr {
	if !n.opts.InsertUnordered {
		return e
	}
	// Avoid noise around expressions that are single booleans anyway.
	switch e.(type) {
	case *xquery.GeneralCmp, *xquery.ValueCmp, *xquery.NodeCmp,
		*xquery.Logic, *xquery.Quantified:
		return e
	}
	return n.wrap(e)
}

func (n *normalizer) rewriteFuncCall(e *xquery.FuncCall) (xquery.Expr, error) {
	// Inline prolog-declared functions: the call becomes a let-chain
	// binding fresh parameter names (avoiding capture), followed by the
	// rewritten body with parameters renamed.
	if fd, ok := n.funcs[e.Name]; ok {
		if len(e.Args) != len(fd.Params) {
			return nil, fmt.Errorf("norm: %s expects %d arguments, got %d", e.Name, len(fd.Params), len(e.Args))
		}
		if n.depth++; n.depth > maxInlineDepth {
			return nil, fmt.Errorf("norm: recursive function %s cannot be inlined", e.Name)
		}
		defer func() { n.depth-- }()
		rename := make(map[string]string, len(fd.Params))
		fl := &xquery.FLWOR{}
		for i, p := range fd.Params {
			n.fresh++
			fresh := fmt.Sprintf("%s#%d", p.Name, n.fresh)
			rename[p.Name] = fresh
			arg, err := n.rewrite(e.Args[i])
			if err != nil {
				return nil, err
			}
			fl.Clauses = append(fl.Clauses, &xquery.LetClause{Var: fresh, Expr: arg})
		}
		body, err := n.rewrite(substituteVars(fd.Body, rename))
		if err != nil {
			return nil, err
		}
		if len(fl.Clauses) == 0 {
			return body, nil
		}
		fl.Return = body
		return fl, nil
	}

	args := make([]xquery.Expr, len(e.Args))
	for i, a := range e.Args {
		v, err := n.rewrite(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if unorderedArgFuncs[e.Name] && len(args) == 1 {
		args[0] = n.wrap(args[0])
	}
	return &xquery.FuncCall{Name: e.Name, Args: args}, nil
}
