package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/qerr"
)

func TestParseFaultSpec(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		for _, spec := range []string{"", "   "} {
			plan, err := ParseFaultSpec(spec)
			if err != nil || plan != nil {
				t.Fatalf("ParseFaultSpec(%q) = %v, %v; want nil, nil", spec, plan, err)
			}
		}
	})
	t.Run("full", func(t *testing.T) {
		plan, err := ParseFaultSpec("seed=7, eio=11,badcrc=13,shortread=17,mmap=19,torn=23")
		if err != nil {
			t.Fatalf("ParseFaultSpec: %v", err)
		}
		want := FaultPlan{Seed: 7, EIOEvery: 11, BadCRCEvery: 13, ShortReadEvery: 17, MmapEvery: 19, TornEvery: 23}
		if plan.Seed != want.Seed || plan.EIOEvery != want.EIOEvery || plan.BadCRCEvery != want.BadCRCEvery ||
			plan.ShortReadEvery != want.ShortReadEvery || plan.MmapEvery != want.MmapEvery || plan.TornEvery != want.TornEvery {
			t.Fatalf("ParseFaultSpec = %+v, want %+v", plan, &want)
		}
	})
	t.Run("errors", func(t *testing.T) {
		for _, spec := range []string{"eio", "eio=x", "bogus=3", "eio=3,"} {
			if _, err := ParseFaultSpec(spec); err == nil {
				t.Errorf("ParseFaultSpec(%q) succeeded, want error", spec)
			}
		}
	})
}

// A short-read open fault on an unreplicated store must fail the mount
// with ErrCorrupt naming the part file, exactly as real truncation would.
func TestOpenFaultUnreplicated(t *testing.T) {
	frag := genFrag(t, 0.001)
	dir := t.TempDir()
	if err := WriteDoc([]string{dir}, "auction.xml", frag); err != nil {
		t.Fatalf("WriteDoc: %v", err)
	}
	SetFaults(&FaultPlan{ShortReadEvery: 1})
	defer SetFaults(nil)
	st, err := Open([]string{dir}, Options{})
	if err == nil {
		st.Close()
		t.Fatal("mount succeeded with every open faulting")
	}
	if !errors.Is(err, qerr.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if !strings.Contains(err.Error(), ".xrq") {
		t.Fatalf("error does not name the part file: %v", err)
	}
}

// With replicas, an open fault on the first copy fails over at mount
// time: the standby serves, the mount succeeds, and the store reports
// itself degraded rather than failed.
func TestMountFailoverOnOpenFault(t *testing.T) {
	frag := genFrag(t, 0.001)
	dirs := []string{t.TempDir(), t.TempDir()}
	if err := WriteDocOpts(dirs, "auction.xml", frag, WriteOptions{Replicas: 2}); err != nil {
		t.Fatalf("WriteDocOpts: %v", err)
	}
	// Seed 0, every other open faults: each part's replica 0 is probed
	// first and faults, its replica 1 follows and succeeds.
	SetFaults(&FaultPlan{Seed: 0, MmapEvery: 2})
	defer SetFaults(nil)
	st, err := Open(dirs, Options{})
	if err != nil {
		t.Fatalf("replicated mount did not fail over: %v", err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Failovers != int64(len(stats.Parts)) {
		t.Fatalf("want %d mount failovers, got %d", len(stats.Parts), stats.Failovers)
	}
	if stats.Health != "degraded" {
		t.Fatalf("want degraded health, got %q", stats.Health)
	}
	for _, p := range stats.Parts {
		if p.Replica != 1 {
			t.Fatalf("part %d served by replica %d, want the standby", p.Index, p.Replica)
		}
	}
	fragsEqual(t, frag, st.Docs()[0].Frag)
}

// The kill-during-write regression: a crash between writing part files
// and publishing manifests must leave the directory mountable with the
// new document invisible, and a rerun of the same write must succeed.
// This is what the WriteDoc fsync ordering (data durable before the
// manifest names it) buys.
func TestTornWriteLeavesStoreConsistent(t *testing.T) {
	frag := genFrag(t, 0.001)
	doc2 := genFrag(t, 0.0015)
	dir := t.TempDir()
	if err := WriteDoc([]string{dir}, "first.xml", frag); err != nil {
		t.Fatalf("WriteDoc: %v", err)
	}

	SetFaults(&FaultPlan{TornEvery: 1})
	err := WriteDoc([]string{dir}, "second.xml", doc2)
	SetFaults(nil)
	if err == nil || !strings.Contains(err.Error(), "torn write") {
		t.Fatalf("want injected torn-write crash, got %v", err)
	}

	// The torn write left orphaned part files no manifest names: the
	// store mounts, and only the first document exists.
	st, err := Open([]string{dir}, Options{})
	if err != nil {
		t.Fatalf("mount after torn write: %v", err)
	}
	docs := st.Docs()
	st.Close()
	if len(docs) != 1 || docs[0].URI != "first.xml" {
		t.Fatalf("after torn write want only first.xml, got %+v", docs)
	}

	// Rerunning the write overwrites the orphans and publishes.
	if err := WriteDoc([]string{dir}, "second.xml", doc2); err != nil {
		t.Fatalf("rerun after torn write: %v", err)
	}
	st, err = Open([]string{dir}, Options{})
	if err != nil {
		t.Fatalf("mount after rerun: %v", err)
	}
	defer st.Close()
	byURI := map[string]DocEntry{}
	for _, d := range st.Docs() {
		byURI[d.URI] = d
	}
	if len(byURI) != 2 {
		t.Fatalf("want 2 docs after rerun, got %+v", st.Docs())
	}
	fragsEqual(t, frag, byURI["first.xml"].Frag)
	fragsEqual(t, doc2, byURI["second.xml"].Frag)
}

// A corrupt standby replica is found by the scrubber, quarantined
// (renamed aside, manifest annotated) and restored byte-identical from
// the healthy active copy — and the repaired directory set mounts clean.
func TestScrubQuarantinesAndRereplicates(t *testing.T) {
	frag := genFrag(t, 0.001)
	dirs := []string{t.TempDir(), t.TempDir()}
	if err := WriteDocOpts(dirs, "auction.xml", frag, WriteOptions{Replicas: 2}); err != nil {
		t.Fatalf("WriteDocOpts: %v", err)
	}
	st, err := Open(dirs, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()

	// Part 0's active copy lives in dirs[0], its standby in dirs[1]:
	// flip a byte inside the standby's value heap.
	file := partFileName("auction.xml", 0)
	standby := filepath.Join(dirs[1], file)
	healthy := filepath.Join(dirs[0], file)
	fi, err := os.Stat(standby)
	if err != nil {
		t.Fatal(err)
	}
	patchByteXor(t, standby, fi.Size()-8)

	stats := st.ScrubNow(ScrubConfig{})
	if stats.Errors < 1 || stats.Quarantined < 1 || stats.Rereplicated < 1 {
		t.Fatalf("scrub missed the corrupt standby: %+v", stats)
	}
	if _, err := os.Stat(standby + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	want, err := os.ReadFile(healthy)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(standby)
	if err != nil {
		t.Fatalf("re-replicated standby missing: %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("re-replicated standby differs from the healthy copy")
	}

	// A second pass over the repaired store finds nothing new.
	again := st.ScrubNow(ScrubConfig{})
	if again.Errors != stats.Errors || again.Quarantined != stats.Quarantined {
		t.Fatalf("repaired store still scrubs dirty: %+v then %+v", stats, again)
	}

	// The repaired directories mount clean and round-trip the document.
	st2, err := Open(dirs, Options{})
	if err != nil {
		t.Fatalf("remount after repair: %v", err)
	}
	defer st2.Close()
	fragsEqual(t, frag, st2.Docs()[0].Frag)
	if h := st2.Stats().Health; h != "ok" {
		t.Fatalf("remounted store health = %q, want ok", h)
	}
}

// Replication round trip: the replicated layout mounts healthy, reports
// its replica topology, and a killed replica fails over to a standby
// that reassembles the identical document.
func TestReplicationRoundTrip(t *testing.T) {
	frag := genFrag(t, 0.001)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	if err := WriteDocOpts(dirs, "auction.xml", frag, WriteOptions{Replicas: 2}); err != nil {
		t.Fatalf("WriteDocOpts: %v", err)
	}
	st, err := Open(dirs, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	stats := st.Stats()
	if stats.Health != "ok" {
		t.Fatalf("health = %q, want ok", stats.Health)
	}
	for _, p := range stats.Parts {
		if p.Replicas != 2 || p.Replica != 0 || p.State != "healthy" {
			t.Fatalf("part %d topology %+v, want replica 0 of 2, healthy", p.Index, p)
		}
	}
	fragsEqual(t, frag, st.Docs()[0].Frag)

	if err := st.KillReplica(0); err != nil {
		t.Fatalf("KillReplica: %v", err)
	}
	herr := st.Health()
	if herr == nil || !qerr.IsRetryableCorrupt(herr) {
		t.Fatalf("killed replica with a standby must be retryable, got %v", herr)
	}
	healed, err := st.FailoverSuspects()
	if err != nil {
		t.Fatalf("FailoverSuspects: %v", err)
	}
	if len(healed) != 1 || healed[0].URI != "auction.xml" {
		t.Fatalf("healed %+v, want auction.xml", healed)
	}
	fragsEqual(t, frag, healed[0].Frag)
	if err := st.Health(); err != nil {
		t.Fatalf("health after failover: %v", err)
	}
	p0 := st.Stats().Parts[0]
	if p0.Replica != 1 || p0.State != "healthy" {
		t.Fatalf("part 0 after failover %+v, want healthy on replica 1", p0)
	}
}

// Replicas demand distinct directories: R > len(dirs) cannot place two
// copies of a part on different disks and must refuse.
func TestReplicationNeedsDistinctDirs(t *testing.T) {
	frag := genFrag(t, 0.001)
	err := WriteDocOpts([]string{t.TempDir()}, "a.xml", frag, WriteOptions{Replicas: 2})
	if err == nil {
		t.Fatal("2 replicas on 1 directory accepted")
	}
}

// patchByteXor flips one byte at off in path.
func patchByteXor(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{b[0] ^ 0xff}, off); err != nil {
		t.Fatal(err)
	}
}
