// On-disk format of the columnar document store.
//
// A document's pre/size/level encoding is persisted as one or more part
// files, each holding a contiguous preorder range of the node columns:
//
//	header   magic "XRQSTORE", format version, node count, global row
//	         offset (rowLo), dictionary size, section table
//	sections kind (1 B/node) · size/level/parent (int32 LE) ·
//	         name ids (uint32 LE into the dictionary) ·
//	         name dictionary ({u32 len, bytes} entries) ·
//	         value offsets (uint64 LE, n+1 entries) · value heap
//
// Every section is 8-byte aligned (so mmap'd int32/uint64 columns alias
// directly) and carries a CRC-32 (IEEE) verified at open. Fixed-width
// integers are little-endian; the zero-copy open path additionally
// assumes a little-endian host, like every target this repo builds for.
//
// A directory becomes a store through manifest.json, which lists the
// documents and their parts. Sharding a document across N directories
// just distributes its part files: part k of N holds preorder rows
// [rowLo, rowLo+nodes), and mounting any grouping of directories that
// covers all parts reassembles the identical document.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/qerr"
	"repro/internal/xmltree"
)

const (
	magic         = "XRQSTORE"
	formatVersion = 1
	numSections   = 8
)

// Section indices into the header's section table.
const (
	sKind = iota
	sSize
	sLevel
	sParent
	sNameID
	sDict
	sValOff
	sValHeap
)

// headerSize is the fixed byte length of the part-file header:
// magic(8) + version(4) + sections(4) + nodes(8) + rowLo(8) + dict(8)
// + table(numSections × 24).
const headerSize = 8 + 4 + 4 + 8 + 8 + 8 + numSections*24

// ManifestName is the per-directory store manifest file.
const ManifestName = "manifest.json"

type section struct {
	off uint64
	len uint64
	crc uint32
}

type header struct {
	nodes uint64
	rowLo uint64
	dictN uint64
	secs  [numSections]section
}

// corruptf classifies a structural store failure under qerr.ErrCorrupt
// (phase "mount"), so serving layers answer 500/"corrupt_store" instead
// of crashing or mis-blaming the request.
func corruptf(format string, args ...any) error {
	return qerr.Newf(qerr.ErrCorrupt, "mount", "store: "+format, args...)
}

// retryableCorruptf is corruptf for a fault with a healthy replica left:
// the same classification, but marked retryable so the engine's failover
// loop re-executes instead of failing the query.
func retryableCorruptf(format string, args ...any) error {
	e := qerr.Newf(qerr.ErrCorrupt, "execute", "store: "+format, args...)
	e.Retryable = true
	return e
}

// sectionName names a section index in diagnostics, so a corrupt-part
// message pins down what is broken, not just where.
var sectionNames = [numSections]string{
	"kind", "size", "level", "parent", "nameid", "dict", "valoff", "valheap",
}

func sectionName(i int) string {
	if i >= 0 && i < numSections {
		return sectionNames[i]
	}
	return fmt.Sprintf("#%d", i)
}

// manifest is the JSON document listing a directory's store contents.
type manifest struct {
	Format int           `json:"format"`
	Docs   []manifestDoc `json:"docs"`
}

type manifestDoc struct {
	URI   string         `json:"uri"`
	Parts []manifestPart `json:"parts"`
	// Quarantined lists part files of this document that the scrubber
	// renamed to *.quarantine in this directory (forensic record; the
	// live part entry is removed so mounts skip the bad copy).
	Quarantined []string `json:"quarantined,omitempty"`
}

type manifestPart struct {
	File  string `json:"file"`
	Index int    `json:"index"`
	Of    int    `json:"of"`
	Nodes int64  `json:"nodes"`
	// Replica numbers this copy of part Index (0-based) and Replicas the
	// copies written; pre-replication manifests omit both, reading as
	// replica 0 of 1.
	Replica  int `json:"replica,omitempty"`
	Replicas int `json:"replicas,omitempty"`
}

func readManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, corruptf("%s: not a store directory (no %s)", dir, ManifestName)
		}
		return nil, fmt.Errorf("store: %s: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, corruptf("%s: unreadable manifest: %v", dir, err)
	}
	if m.Format != formatVersion {
		return nil, corruptf("%s: manifest format %d, this build reads %d", dir, m.Format, formatVersion)
	}
	return &m, nil
}

func writeManifest(dir string, m *manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return err
	}
	// The rename below is only atomic on disk if the new content got
	// there first; without this fsync a crash can publish a manifest of
	// garbage (or of the old length) under the final name.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir makes a directory's entries (new files, renames) durable. A
// filesystem that cannot sync directories reports EINVAL; treated as
// done — there is nothing more portable to ask of it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) {
		return err
	}
	return nil
}

// partFileName derives a filesystem-safe part file name from a doc URI.
func partFileName(uri string, index int) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, uri)
	return fmt.Sprintf("%s.part%03d.xrq", safe, index)
}

// WriteOptions configures WriteDocOpts.
type WriteOptions struct {
	// Shards is the number of parts the document splits into by equal
	// preorder ranges; <= 0 means one part per directory (the historical
	// WriteDoc behaviour).
	Shards int
	// Replicas is the number of directories each part is written to;
	// <= 0 means 1 (no replication). Replica r of shard k lands in
	// dirs[(k+r) mod len(dirs)], so replicas of one part never share a
	// directory — a lost or corrupted directory costs at most one copy
	// of each part. Requires Replicas <= len(dirs).
	Replicas int
}

// WriteDoc persists frag as the parts of uri, one part per directory:
// len(dirs) == 1 writes a single-part (unsharded) store, N directories
// shard the document by equal preorder ranges. Directories are created
// as needed; each directory's manifest is updated (it is an error if it
// already lists uri). For replication use WriteDocOpts.
func WriteDoc(dirs []string, uri string, frag *xmltree.Fragment) error {
	return WriteDocOpts(dirs, uri, frag, WriteOptions{})
}

// WriteDocOpts persists frag as Shards parts replicated Replicas times
// across dirs. Every part file is fsynced (file and directory) before
// any manifest names it, and each directory's manifest is published
// atomically (write-to-tmp, fsync, rename, fsync dir) — a crash mid-
// write leaves either no trace of the document or a mountable subset of
// replicas, never a manifest pointing at torn parts.
func WriteDocOpts(dirs []string, uri string, frag *xmltree.Fragment, opts WriteOptions) error {
	n := frag.Len()
	if n == 0 {
		return fmt.Errorf("store: refusing to write empty document %q", uri)
	}
	if len(dirs) < 1 {
		return fmt.Errorf("store: no target directories")
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = len(dirs)
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	if replicas > len(dirs) {
		return fmt.Errorf("store: %d replicas need %d directories, have %d", replicas, replicas, len(dirs))
	}

	// Load (or initialize) every directory's manifest up front and
	// refuse duplicates before writing any file.
	manifests := make(map[string]*manifest, len(dirs))
	for _, dir := range dirs {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		m := &manifest{Format: formatVersion}
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
			var merr error
			m, merr = readManifest(dir)
			if merr != nil {
				return merr
			}
			for _, d := range m.Docs {
				if d.URI == uri {
					return fmt.Errorf("store: %s already holds parts of %q", dir, uri)
				}
			}
		}
		manifests[dir] = m
	}

	// Phase 1: part files — every replica written and fsynced, then the
	// directories, so the data is durable before anything names it.
	adds := make(map[string][]manifestPart, len(dirs))
	for k := 0; k < shards; k++ {
		lo, hi := k*n/shards, (k+1)*n/shards
		file := partFileName(uri, k)
		for r := 0; r < replicas; r++ {
			dir := dirs[(k+r)%len(dirs)]
			if err := writePart(filepath.Join(dir, file), frag, lo, hi); err != nil {
				return err
			}
			adds[dir] = append(adds[dir], manifestPart{
				File: file, Index: k, Of: shards, Nodes: int64(hi - lo),
				Replica: r, Replicas: replicas,
			})
		}
	}
	for _, dir := range dirs {
		if len(adds[dir]) > 0 {
			if err := syncDir(dir); err != nil {
				return err
			}
		}
	}

	// The torn-write window: parts durable, manifests not yet written. A
	// crash (or an injected one) here leaves orphaned part files that no
	// manifest names — invisible to mounts, overwritten by a rerun.
	if f := ArmedFaults(); f != nil {
		if err := f.writeFault(uri); err != nil {
			return err
		}
	}

	// Phase 2: publish — per-directory manifest updates, each atomic.
	for _, dir := range dirs {
		parts := adds[dir]
		if len(parts) == 0 {
			continue
		}
		m := manifests[dir]
		m.Docs = append(m.Docs, manifestDoc{URI: uri, Parts: parts})
		if err := writeManifest(dir, m); err != nil {
			return err
		}
	}
	return nil
}

// writePart writes rows [lo, hi) of frag as one part file. The section
// table is patched into the header after the sections (and their CRCs)
// have streamed out.
func writePart(path string, frag *xmltree.Fragment, lo, hi int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()

	n := hi - lo
	// Per-part name dictionary, in first-use order.
	dictIdx := make(map[string]uint32)
	var dict []string
	nameID := make([]uint32, n)
	for i := 0; i < n; i++ {
		nm := frag.Name[lo+i]
		id, ok := dictIdx[nm]
		if !ok {
			id = uint32(len(dict))
			dictIdx[nm] = id
			dict = append(dict, nm)
		}
		nameID[i] = id
	}

	w := &partWriter{f: f, off: headerSize}
	if err := w.seekPastHeader(); err != nil {
		return err
	}

	var hdr header
	hdr.nodes = uint64(n)
	hdr.rowLo = uint64(lo)
	hdr.dictN = uint64(len(dict))

	// kind: one byte per node.
	w.begin(&hdr.secs[sKind])
	for i := lo; i < hi; i++ {
		w.byte(byte(frag.Kind[i]))
	}
	w.end(&hdr.secs[sKind])

	for si, col := range [][]int32{frag.Size, frag.Level, frag.Parent} {
		s := &hdr.secs[sSize+si]
		w.begin(s)
		for i := lo; i < hi; i++ {
			w.u32(uint32(col[i]))
		}
		w.end(s)
	}

	w.begin(&hdr.secs[sNameID])
	for _, id := range nameID {
		w.u32(id)
	}
	w.end(&hdr.secs[sNameID])

	w.begin(&hdr.secs[sDict])
	for _, s := range dict {
		w.u32(uint32(len(s)))
		w.bytes([]byte(s))
	}
	w.end(&hdr.secs[sDict])

	w.begin(&hdr.secs[sValOff])
	off := uint64(0)
	w.u64(0)
	for i := lo; i < hi; i++ {
		off += uint64(len(frag.Value[i]))
		w.u64(off)
	}
	w.end(&hdr.secs[sValOff])

	w.begin(&hdr.secs[sValHeap])
	for i := lo; i < hi; i++ {
		w.bytes([]byte(frag.Value[i]))
	}
	w.end(&hdr.secs[sValHeap])

	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		return err
	}
	// Patch the now-complete header over the zeroes written first.
	hb := make([]byte, headerSize)
	copy(hb, magic)
	binary.LittleEndian.PutUint32(hb[8:], formatVersion)
	binary.LittleEndian.PutUint32(hb[12:], numSections)
	binary.LittleEndian.PutUint64(hb[16:], hdr.nodes)
	binary.LittleEndian.PutUint64(hb[24:], hdr.rowLo)
	binary.LittleEndian.PutUint64(hb[32:], hdr.dictN)
	for i, s := range hdr.secs {
		base := 40 + i*24
		binary.LittleEndian.PutUint64(hb[base:], s.off)
		binary.LittleEndian.PutUint64(hb[base+8:], s.len)
		binary.LittleEndian.PutUint32(hb[base+16:], s.crc)
	}
	if _, err := f.WriteAt(hb, 0); err != nil {
		return err
	}
	// Durability: the part's bytes must be on disk before any manifest
	// names the file — tmp+rename on the manifest alone still leaves a
	// crash window where a valid manifest points at torn parts.
	return f.Sync()
}

// partWriter streams section bytes with running CRC and 8-byte section
// alignment, through a fixed buffer so a multi-GB part never needs a
// section-sized allocation.
type partWriter struct {
	f   *os.File
	buf [1 << 16]byte
	n   int
	off uint64
	crc uint32
	err error
}

func (w *partWriter) seekPastHeader() error {
	var zero [headerSize]byte
	_, err := w.f.Write(zero[:])
	return err
}

func (w *partWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	if w.n > 0 {
		if _, err := w.f.Write(w.buf[:w.n]); err != nil {
			w.err = err
			return err
		}
		w.n = 0
	}
	return nil
}

func (w *partWriter) bytes(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	w.off += uint64(len(b))
	for len(b) > 0 {
		c := copy(w.buf[w.n:], b)
		w.n += c
		b = b[c:]
		if w.n == len(w.buf) {
			if w.flush() != nil {
				return
			}
		}
	}
}

func (w *partWriter) byte(b byte) { w.bytes([]byte{b}) }

func (w *partWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *partWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

// begin pads to 8-byte alignment and records the section start.
func (w *partWriter) begin(s *section) {
	var pad [8]byte
	if r := w.off % 8; r != 0 {
		// Padding is outside every section: written with the previous
		// section's crc state already captured and the next one not yet
		// started.
		w.crc = 0 // reset before the pad so it doesn't leak into the crc
		if w.err == nil {
			b := pad[:8-r]
			w.off += uint64(len(b))
			for len(b) > 0 {
				c := copy(w.buf[w.n:], b)
				w.n += c
				b = b[c:]
				if w.n == len(w.buf) {
					if w.flush() != nil {
						return
					}
				}
			}
		}
	}
	w.crc = 0
	s.off = w.off
}

// end records the section length and CRC.
func (w *partWriter) end(s *section) {
	s.len = w.off - s.off
	s.crc = w.crc
}

// parseHeader validates the fixed header of a mapped part file against
// the file's actual size, classifying every violation as ErrCorrupt.
func parseHeader(path string, data []byte) (header, error) {
	if len(data) < headerSize {
		var h header
		return h, corruptf("%s: truncated: %d bytes, header needs %d", path, len(data), headerSize)
	}
	return parseHeaderBytes(path, data[:headerSize], uint64(len(data)))
}

// parseHeaderBytes validates a part header given only its bytes and the
// file size — the streaming (no-mmap) entry verifyPartFile uses.
func parseHeaderBytes(path string, data []byte, size uint64) (header, error) {
	var h header
	if string(data[:8]) != magic {
		return h, corruptf("%s: bad magic %q", path, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return h, corruptf("%s: format version %d, this build reads %d", path, v, formatVersion)
	}
	if s := binary.LittleEndian.Uint32(data[12:]); s != numSections {
		return h, corruptf("%s: %d sections, expected %d", path, s, numSections)
	}
	h.nodes = binary.LittleEndian.Uint64(data[16:])
	h.rowLo = binary.LittleEndian.Uint64(data[24:])
	h.dictN = binary.LittleEndian.Uint64(data[32:])
	for i := range h.secs {
		base := 40 + i*24
		h.secs[i].off = binary.LittleEndian.Uint64(data[base:])
		h.secs[i].len = binary.LittleEndian.Uint64(data[base+8:])
		h.secs[i].crc = binary.LittleEndian.Uint32(data[base+16:])
		s := h.secs[i]
		if s.off < headerSize || s.off > size || s.len > size-s.off {
			return h, corruptf("%s: %s section [%d,+%d) outside file of %d bytes (truncated?)",
				path, sectionName(i), s.off, s.len, size)
		}
		if s.off%8 != 0 {
			return h, corruptf("%s: %s section misaligned at %d", path, sectionName(i), s.off)
		}
	}
	n := h.nodes
	for i, want := range []uint64{n, 4 * n, 4 * n, 4 * n, 4 * n} {
		if h.secs[i].len != want {
			return h, corruptf("%s: %s section holds %d bytes, %d nodes need %d",
				path, sectionName(i), h.secs[i].len, n, want)
		}
	}
	if h.secs[sValOff].len != 8*(n+1) {
		return h, corruptf("%s: value offsets hold %d bytes, %d nodes need %d",
			path, h.secs[sValOff].len, n, 8*(n+1))
	}
	return h, nil
}

// verifySections checks every section CRC. It touches every page of the
// mapping; callers drop the page cache afterwards so verification does
// not pin the whole corpus resident.
func verifySections(path string, data []byte, h header) error {
	for i, s := range h.secs {
		got := crc32.ChecksumIEEE(data[s.off : s.off+s.len])
		if got != s.crc {
			return corruptf("%s: %s section checksum mismatch (%08x != %08x)", path, sectionName(i), got, s.crc)
		}
	}
	return nil
}
