// On-disk format of the columnar document store.
//
// A document's pre/size/level encoding is persisted as one or more part
// files, each holding a contiguous preorder range of the node columns:
//
//	header   magic "XRQSTORE", format version, node count, global row
//	         offset (rowLo), dictionary size, section table
//	sections kind (1 B/node) · size/level/parent (int32 LE) ·
//	         name ids (uint32 LE into the dictionary) ·
//	         name dictionary ({u32 len, bytes} entries) ·
//	         value offsets (uint64 LE, n+1 entries) · value heap
//
// Every section is 8-byte aligned (so mmap'd int32/uint64 columns alias
// directly) and carries a CRC-32 (IEEE) verified at open. Fixed-width
// integers are little-endian; the zero-copy open path additionally
// assumes a little-endian host, like every target this repo builds for.
//
// A directory becomes a store through manifest.json, which lists the
// documents and their parts. Sharding a document across N directories
// just distributes its part files: part k of N holds preorder rows
// [rowLo, rowLo+nodes), and mounting any grouping of directories that
// covers all parts reassembles the identical document.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/qerr"
	"repro/internal/xmltree"
)

const (
	magic         = "XRQSTORE"
	formatVersion = 1
	numSections   = 8
)

// Section indices into the header's section table.
const (
	sKind = iota
	sSize
	sLevel
	sParent
	sNameID
	sDict
	sValOff
	sValHeap
)

// headerSize is the fixed byte length of the part-file header:
// magic(8) + version(4) + sections(4) + nodes(8) + rowLo(8) + dict(8)
// + table(numSections × 24).
const headerSize = 8 + 4 + 4 + 8 + 8 + 8 + numSections*24

// ManifestName is the per-directory store manifest file.
const ManifestName = "manifest.json"

type section struct {
	off uint64
	len uint64
	crc uint32
}

type header struct {
	nodes uint64
	rowLo uint64
	dictN uint64
	secs  [numSections]section
}

// corruptf classifies a structural store failure under qerr.ErrCorrupt
// (phase "mount"), so serving layers answer 500/"corrupt_store" instead
// of crashing or mis-blaming the request.
func corruptf(format string, args ...any) error {
	return qerr.Newf(qerr.ErrCorrupt, "mount", "store: "+format, args...)
}

// manifest is the JSON document listing a directory's store contents.
type manifest struct {
	Format int           `json:"format"`
	Docs   []manifestDoc `json:"docs"`
}

type manifestDoc struct {
	URI   string         `json:"uri"`
	Parts []manifestPart `json:"parts"`
}

type manifestPart struct {
	File  string `json:"file"`
	Index int    `json:"index"`
	Of    int    `json:"of"`
	Nodes int64  `json:"nodes"`
}

func readManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, corruptf("%s: not a store directory (no %s)", dir, ManifestName)
		}
		return nil, fmt.Errorf("store: %s: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, corruptf("%s: unreadable manifest: %v", dir, err)
	}
	if m.Format != formatVersion {
		return nil, corruptf("%s: manifest format %d, this build reads %d", dir, m.Format, formatVersion)
	}
	return &m, nil
}

func writeManifest(dir string, m *manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, ManifestName+".tmp")
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, ManifestName))
}

// partFileName derives a filesystem-safe part file name from a doc URI.
func partFileName(uri string, index int) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, uri)
	return fmt.Sprintf("%s.part%03d.xrq", safe, index)
}

// WriteDoc persists frag as the parts of uri, one part per directory:
// len(dirs) == 1 writes a single-part (unsharded) store, N directories
// shard the document by equal preorder ranges. Directories are created
// as needed; each directory's manifest is updated (it is an error if it
// already lists uri).
func WriteDoc(dirs []string, uri string, frag *xmltree.Fragment) error {
	n := frag.Len()
	if n == 0 {
		return fmt.Errorf("store: refusing to write empty document %q", uri)
	}
	parts := len(dirs)
	if parts < 1 {
		return fmt.Errorf("store: no target directories")
	}
	for k, dir := range dirs {
		lo, hi := k*n/parts, (k+1)*n/parts
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		m := &manifest{Format: formatVersion}
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
			var merr error
			m, merr = readManifest(dir)
			if merr != nil {
				return merr
			}
			for _, d := range m.Docs {
				if d.URI == uri {
					return fmt.Errorf("store: %s already holds parts of %q", dir, uri)
				}
			}
		}
		file := partFileName(uri, k)
		if err := writePart(filepath.Join(dir, file), frag, lo, hi); err != nil {
			return err
		}
		m.Docs = append(m.Docs, manifestDoc{URI: uri, Parts: []manifestPart{{
			File: file, Index: k, Of: parts, Nodes: int64(hi - lo),
		}}})
		if err := writeManifest(dir, m); err != nil {
			return err
		}
	}
	return nil
}

// writePart writes rows [lo, hi) of frag as one part file. The section
// table is patched into the header after the sections (and their CRCs)
// have streamed out.
func writePart(path string, frag *xmltree.Fragment, lo, hi int) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()

	n := hi - lo
	// Per-part name dictionary, in first-use order.
	dictIdx := make(map[string]uint32)
	var dict []string
	nameID := make([]uint32, n)
	for i := 0; i < n; i++ {
		nm := frag.Name[lo+i]
		id, ok := dictIdx[nm]
		if !ok {
			id = uint32(len(dict))
			dictIdx[nm] = id
			dict = append(dict, nm)
		}
		nameID[i] = id
	}

	w := &partWriter{f: f, off: headerSize}
	if err := w.seekPastHeader(); err != nil {
		return err
	}

	var hdr header
	hdr.nodes = uint64(n)
	hdr.rowLo = uint64(lo)
	hdr.dictN = uint64(len(dict))

	// kind: one byte per node.
	w.begin(&hdr.secs[sKind])
	for i := lo; i < hi; i++ {
		w.byte(byte(frag.Kind[i]))
	}
	w.end(&hdr.secs[sKind])

	for si, col := range [][]int32{frag.Size, frag.Level, frag.Parent} {
		s := &hdr.secs[sSize+si]
		w.begin(s)
		for i := lo; i < hi; i++ {
			w.u32(uint32(col[i]))
		}
		w.end(s)
	}

	w.begin(&hdr.secs[sNameID])
	for _, id := range nameID {
		w.u32(id)
	}
	w.end(&hdr.secs[sNameID])

	w.begin(&hdr.secs[sDict])
	for _, s := range dict {
		w.u32(uint32(len(s)))
		w.bytes([]byte(s))
	}
	w.end(&hdr.secs[sDict])

	w.begin(&hdr.secs[sValOff])
	off := uint64(0)
	w.u64(0)
	for i := lo; i < hi; i++ {
		off += uint64(len(frag.Value[i]))
		w.u64(off)
	}
	w.end(&hdr.secs[sValOff])

	w.begin(&hdr.secs[sValHeap])
	for i := lo; i < hi; i++ {
		w.bytes([]byte(frag.Value[i]))
	}
	w.end(&hdr.secs[sValHeap])

	if w.err != nil {
		return w.err
	}
	if err := w.flush(); err != nil {
		return err
	}
	// Patch the now-complete header over the zeroes written first.
	hb := make([]byte, headerSize)
	copy(hb, magic)
	binary.LittleEndian.PutUint32(hb[8:], formatVersion)
	binary.LittleEndian.PutUint32(hb[12:], numSections)
	binary.LittleEndian.PutUint64(hb[16:], hdr.nodes)
	binary.LittleEndian.PutUint64(hb[24:], hdr.rowLo)
	binary.LittleEndian.PutUint64(hb[32:], hdr.dictN)
	for i, s := range hdr.secs {
		base := 40 + i*24
		binary.LittleEndian.PutUint64(hb[base:], s.off)
		binary.LittleEndian.PutUint64(hb[base+8:], s.len)
		binary.LittleEndian.PutUint32(hb[base+16:], s.crc)
	}
	_, err = f.WriteAt(hb, 0)
	return err
}

// partWriter streams section bytes with running CRC and 8-byte section
// alignment, through a fixed buffer so a multi-GB part never needs a
// section-sized allocation.
type partWriter struct {
	f   *os.File
	buf [1 << 16]byte
	n   int
	off uint64
	crc uint32
	err error
}

func (w *partWriter) seekPastHeader() error {
	var zero [headerSize]byte
	_, err := w.f.Write(zero[:])
	return err
}

func (w *partWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	if w.n > 0 {
		if _, err := w.f.Write(w.buf[:w.n]); err != nil {
			w.err = err
			return err
		}
		w.n = 0
	}
	return nil
}

func (w *partWriter) bytes(b []byte) {
	if w.err != nil {
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, b)
	w.off += uint64(len(b))
	for len(b) > 0 {
		c := copy(w.buf[w.n:], b)
		w.n += c
		b = b[c:]
		if w.n == len(w.buf) {
			if w.flush() != nil {
				return
			}
		}
	}
}

func (w *partWriter) byte(b byte) { w.bytes([]byte{b}) }

func (w *partWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.bytes(b[:])
}

func (w *partWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.bytes(b[:])
}

// begin pads to 8-byte alignment and records the section start.
func (w *partWriter) begin(s *section) {
	var pad [8]byte
	if r := w.off % 8; r != 0 {
		// Padding is outside every section: written with the previous
		// section's crc state already captured and the next one not yet
		// started.
		w.crc = 0 // reset before the pad so it doesn't leak into the crc
		if w.err == nil {
			b := pad[:8-r]
			w.off += uint64(len(b))
			for len(b) > 0 {
				c := copy(w.buf[w.n:], b)
				w.n += c
				b = b[c:]
				if w.n == len(w.buf) {
					if w.flush() != nil {
						return
					}
				}
			}
		}
	}
	w.crc = 0
	s.off = w.off
}

// end records the section length and CRC.
func (w *partWriter) end(s *section) {
	s.len = w.off - s.off
	s.crc = w.crc
}

// parseHeader validates the fixed header of a mapped part file against
// the file's actual size, classifying every violation as ErrCorrupt.
func parseHeader(path string, data []byte) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, corruptf("%s: truncated: %d bytes, header needs %d", path, len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return h, corruptf("%s: bad magic %q", path, data[:8])
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != formatVersion {
		return h, corruptf("%s: format version %d, this build reads %d", path, v, formatVersion)
	}
	if s := binary.LittleEndian.Uint32(data[12:]); s != numSections {
		return h, corruptf("%s: %d sections, expected %d", path, s, numSections)
	}
	h.nodes = binary.LittleEndian.Uint64(data[16:])
	h.rowLo = binary.LittleEndian.Uint64(data[24:])
	h.dictN = binary.LittleEndian.Uint64(data[32:])
	size := uint64(len(data))
	for i := range h.secs {
		base := 40 + i*24
		h.secs[i].off = binary.LittleEndian.Uint64(data[base:])
		h.secs[i].len = binary.LittleEndian.Uint64(data[base+8:])
		h.secs[i].crc = binary.LittleEndian.Uint32(data[base+16:])
		s := h.secs[i]
		if s.off < headerSize || s.off > size || s.len > size-s.off {
			return h, corruptf("%s: section %d [%d,+%d) outside file of %d bytes (truncated?)",
				path, i, s.off, s.len, size)
		}
		if s.off%8 != 0 {
			return h, corruptf("%s: section %d misaligned at %d", path, i, s.off)
		}
	}
	n := h.nodes
	for i, want := range []uint64{n, 4 * n, 4 * n, 4 * n, 4 * n} {
		if h.secs[i].len != want {
			return h, corruptf("%s: section %d holds %d bytes, %d nodes need %d",
				path, i, h.secs[i].len, n, want)
		}
	}
	if h.secs[sValOff].len != 8*(n+1) {
		return h, corruptf("%s: value offsets hold %d bytes, %d nodes need %d",
			path, h.secs[sValOff].len, n, 8*(n+1))
	}
	return h, nil
}

// verifySections checks every section CRC. It touches every page of the
// mapping; callers drop the page cache afterwards so verification does
// not pin the whole corpus resident.
func verifySections(path string, data []byte, h header) error {
	for i, s := range h.secs {
		got := crc32.ChecksumIEEE(data[s.off : s.off+s.len])
		if got != s.crc {
			return corruptf("%s: section %d checksum mismatch (%08x != %08x)", path, i, got, s.crc)
		}
	}
	return nil
}
