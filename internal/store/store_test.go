package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func genFrag(t testing.TB, factor float64) *xmltree.Fragment {
	t.Helper()
	return xmark.Generate(xmark.Config{Factor: factor})
}

func fragsEqual(t *testing.T, want, got *xmltree.Fragment) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("node count: want %d, got %d", want.Len(), got.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if want.Kind[i] != got.Kind[i] || want.Size[i] != got.Size[i] ||
			want.Level[i] != got.Level[i] || want.Parent[i] != got.Parent[i] ||
			want.Name[i] != got.Name[i] || want.Value[i] != got.Value[i] {
			t.Fatalf("node %d differs: want {%v %q %q %d %d %d}, got {%v %q %q %d %d %d}",
				i, want.Kind[i], want.Name[i], want.Value[i], want.Size[i], want.Level[i], want.Parent[i],
				got.Kind[i], got.Name[i], got.Value[i], got.Size[i], got.Level[i], got.Parent[i])
		}
	}
	if xmltree.SerializeToString(want, 0, xmltree.SerializeOptions{}) !=
		xmltree.SerializeToString(got, 0, xmltree.SerializeOptions{}) {
		t.Fatal("serialized text differs")
	}
}

func TestRoundTripSinglePart(t *testing.T) {
	frag := genFrag(t, 0.001)
	dir := t.TempDir()
	if err := WriteDoc([]string{dir}, "auction.xml", frag); err != nil {
		t.Fatalf("WriteDoc: %v", err)
	}
	st, err := Open([]string{dir}, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	docs := st.Docs()
	if len(docs) != 1 || docs[0].URI != "auction.xml" || docs[0].Parts != 1 {
		t.Fatalf("unexpected docs: %+v", docs)
	}
	fragsEqual(t, frag, docs[0].Frag)
}

func TestRoundTripSharded(t *testing.T) {
	frag := genFrag(t, 0.001)
	for _, shards := range []int{2, 3, 7} {
		dirs := make([]string, shards)
		base := t.TempDir()
		for k := range dirs {
			dirs[k] = filepath.Join(base, "shard", string(rune('a'+k)))
		}
		if err := WriteDoc(dirs, "auction.xml", frag); err != nil {
			t.Fatalf("WriteDoc %d shards: %v", shards, err)
		}
		st, err := Open(dirs, Options{})
		if err != nil {
			t.Fatalf("Open %d shards: %v", shards, err)
		}
		docs := st.Docs()
		if len(docs) != 1 || docs[0].Parts != shards {
			st.Close()
			t.Fatalf("unexpected docs: %+v", docs)
		}
		fragsEqual(t, frag, docs[0].Frag)
		st.Close()
	}
}

func TestShardCoverage(t *testing.T) {
	frag := genFrag(t, 0.001)
	base := t.TempDir()
	dirs := []string{filepath.Join(base, "a"), filepath.Join(base, "b"), filepath.Join(base, "c")}
	if err := WriteDoc(dirs, "auction.xml", frag); err != nil {
		t.Fatal(err)
	}
	// Missing shard: mounting a strict subset must fail as corrupt, not
	// silently serve a partial document.
	if _, err := Open(dirs[:2], Options{}); !errors.Is(err, qerr.ErrCorrupt) {
		t.Fatalf("partial mount: want ErrCorrupt, got %v", err)
	}
	// Shards mount in any directory order.
	st, err := Open([]string{dirs[2], dirs[0], dirs[1]}, Options{})
	if err != nil {
		t.Fatalf("out-of-order mount: %v", err)
	}
	fragsEqual(t, frag, st.Docs()[0].Frag)
	st.Close()
}

func TestMultipleDocsAcrossDirs(t *testing.T) {
	a, b := genFrag(t, 0.001), genFrag(t, 0.002)
	dir1, dir2 := t.TempDir(), t.TempDir()
	if err := WriteDoc([]string{dir1}, "a.xml", a); err != nil {
		t.Fatal(err)
	}
	if err := WriteDoc([]string{dir2}, "b.xml", b); err != nil {
		t.Fatal(err)
	}
	// Two docs may also share one directory.
	if err := WriteDoc([]string{dir1}, "b2.xml", b); err != nil {
		t.Fatal(err)
	}
	if err := WriteDoc([]string{dir1}, "a.xml", a); err == nil {
		t.Fatal("duplicate uri in one directory must be rejected")
	}
	st, err := Open([]string{dir1, dir2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if docs := st.Docs(); len(docs) != 3 {
		t.Fatalf("want 3 docs, got %+v", docs)
	}
}

// corruptCopy writes the store fresh, applies mutate to the single part
// file, and returns the directory.
func corruptCopy(t *testing.T, mutate func(path string)) string {
	t.Helper()
	dir := t.TempDir()
	if err := WriteDoc([]string{dir}, "auction.xml", genFrag(t, 0.001)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".xrq") {
			mutate(filepath.Join(dir, e.Name()))
			return dir
		}
	}
	t.Fatal("no part file written")
	return ""
}

func patchByte(t *testing.T, path string, off int64, b byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt([]byte{b}, off); err != nil {
		t.Fatal(err)
	}
}

// Every corruption class must surface as qerr.ErrCorrupt — never a
// panic, never an unclassified error a serving layer would misattribute.
func TestCorruptionTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(path string)
	}{
		{"truncated-empty", func(p string) {
			if err := os.Truncate(p, 0); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-header", func(p string) {
			if err := os.Truncate(p, headerSize/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated-sections", func(p string) {
			if err := os.Truncate(p, headerSize+16); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad-magic", func(p string) { patchByte(t, p, 0, 'Z') }},
		{"version-skew", func(p string) { patchByte(t, p, 8, 99) }},
		{"checksum-mismatch", func(p string) {
			st, err := os.Stat(p)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte in the value heap (the last section).
			f, err := os.OpenFile(p, os.O_RDWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var b [1]byte
			off := st.Size() - 8
			if _, err := f.ReadAt(b[:], off); err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte{b[0] ^ 0xff}, off); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := corruptCopy(t, tc.mutate)
			st, err := Open([]string{dir}, Options{})
			if err == nil {
				st.Close()
				t.Fatal("corrupt store opened cleanly")
			}
			if !errors.Is(err, qerr.ErrCorrupt) {
				t.Fatalf("want ErrCorrupt, got %v", err)
			}
		})
	}
}

func TestNotAStoreDirectory(t *testing.T) {
	if _, err := Open([]string{t.TempDir()}, Options{}); !errors.Is(err, qerr.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for missing manifest, got %v", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open([]string{dir}, Options{}); !errors.Is(err, qerr.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for unreadable manifest, got %v", err)
	}
}

// The ledger mirror: sampled mmap residency is charged to the account
// while pages are warm and drains fully on Close.
func TestLedgerMirror(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDoc([]string{dir}, "auction.xml", genFrag(t, 0.002)); err != nil {
		t.Fatal(err)
	}
	led := xdm.NewLedger(1 << 30)
	st, err := Open([]string{dir}, Options{Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	// Touch the corpus (fault pages in), then sample: the warm pages
	// must show up as ledger usage. Reading the value bytes is what
	// faults the heap pages — len() alone only reads string headers.
	f := st.Docs()[0].Frag
	total := 0
	for i := 0; i < f.Len(); i++ {
		v := f.Value[i]
		for j := 0; j < len(v); j++ {
			total += int(v[j])
		}
	}
	if total == 0 {
		t.Fatal("corpus has no text?")
	}
	st.Sample()
	if led.Used() == 0 {
		t.Fatal("warm store charged nothing to the ledger")
	}
	st.Close()
	if got := led.Used(); got != 0 {
		t.Fatalf("ledger holds %d bytes after Close", got)
	}
}

// Under a ledger too small for the corpus, opening and sampling must
// still succeed — pressure evicts pages, it never fails the store.
func TestLedgerPressureNeverFails(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDoc([]string{dir}, "auction.xml", genFrag(t, 0.002)); err != nil {
		t.Fatal(err)
	}
	led := xdm.NewLedger(4096) // far below the spine alone
	st, err := Open([]string{dir}, Options{Ledger: led})
	if err != nil {
		t.Fatalf("Open under pressure: %v", err)
	}
	defer st.Close()
	for i := 0; i < 3; i++ {
		if _, err := os.ReadFile(filepath.Join(dir, ManifestName)); err != nil {
			t.Fatal(err)
		}
		st.Sample()
	}
	if used := led.Used(); used > 4096 {
		t.Fatalf("ledger oversubscribed: %d > 4096", used)
	}
}

func TestStatsShape(t *testing.T) {
	base := t.TempDir()
	dirs := []string{filepath.Join(base, "s0"), filepath.Join(base, "s1")}
	if err := WriteDoc(dirs, "auction.xml", genFrag(t, 0.001)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := st.Stats()
	if len(s.Docs) != 1 || len(s.Parts) != 2 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MappedBytes <= 0 || s.SpineBytes <= 0 {
		t.Fatalf("stats byte totals not positive: %+v", s)
	}
	for _, p := range s.Parts {
		if p.Nodes <= 0 || p.MappedBytes <= 0 || p.Of != 2 {
			t.Fatalf("part: %+v", p)
		}
	}
}
