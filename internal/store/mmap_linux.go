//go:build linux

package store

import (
	"os"
	"syscall"
	"unsafe"
)

func pageSize() int { return os.Getpagesize() }

// mapFile maps the whole file shared read-only. An empty file maps to an
// empty slice (the header parser then reports the truncation).
func mapFile(f *os.File) ([]byte, bool, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	if st.Size() == 0 {
		return nil, true, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

func unmapFile(data []byte, mapped bool) {
	if mapped && len(data) > 0 {
		_ = syscall.Munmap(data)
	}
}

// residentBytes reports how many of the mapping's bytes are currently in
// physical memory, via mincore. On any failure it conservatively reports
// the full mapping.
func residentBytes(data []byte, mapped bool) int64 {
	if len(data) == 0 {
		return 0
	}
	if !mapped {
		return int64(len(data))
	}
	ps := pageSize()
	pages := (len(data) + ps - 1) / ps
	vec := make([]byte, pages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&data[0])), uintptr(len(data)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return int64(len(data))
	}
	n := 0
	for _, v := range vec {
		if v&1 != 0 {
			n++
		}
	}
	res := int64(n) * int64(ps)
	if res > int64(len(data)) {
		res = int64(len(data))
	}
	return res
}

// posixFadvDontneed is POSIX_FADV_DONTNEED (not exported by syscall).
const posixFadvDontneed = 4

// dropPages asks the kernel to evict the mapping's pages. For a shared
// file mapping, madvise(MADV_DONTNEED) alone drops the PTEs but leaves
// the pages in the page cache — mincore would still count them resident
// — so it is paired with fadvise(POSIX_FADV_DONTNEED) on the backing
// file, which actually releases the cache. Purely advisory on both
// counts: failure means pages stay warm, never that data is lost.
func dropPages(f *os.File, data []byte, mapped bool) {
	if !mapped || len(data) == 0 || f == nil {
		return
	}
	_ = syscall.Madvise(data, syscall.MADV_DONTNEED)
	_, _, _ = syscall.Syscall6(syscall.SYS_FADVISE64,
		f.Fd(), 0, uintptr(len(data)), posixFadvDontneed, 0, 0)
}
