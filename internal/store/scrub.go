// Background scrubbing: a pacing-limited loop that re-verifies every
// part file's section CRCs — the active mappings and the standby
// replica files — so silent on-disk corruption is found before a query
// trips over it. A bad active copy fails over to the next replica (the
// mounting engine re-registers the reassembled documents via
// Options.OnHeal); a bad file with a healthy sibling is quarantined
// (atomic rename to <file>.quarantine, manifest annotated) and restored
// by copying the healthy replica back under the original name.
package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
)

// ScrubConfig configures the background scrubber.
type ScrubConfig struct {
	// Interval is the pause between scrub passes; <= 0 disables the
	// background loop (ScrubNow still scrubs on demand).
	Interval time.Duration
	// BytesPerSec paces verification I/O: after each file the scrubber
	// sleeps long enough that its read rate stays under this bound, so
	// scrubbing a cold multi-GB corpus does not monopolize the disk or
	// the page cache. <= 0 means unpaced.
	BytesPerSec int64
}

// ScrubStats are the scrubber's cumulative counters for one store.
type ScrubStats struct {
	// Passes counts completed scrub passes.
	Passes int64 `json:"passes"`
	// PartsVerified counts file verifications (active + standby).
	PartsVerified int64 `json:"parts_verified"`
	// Errors counts verifications that found a bad file.
	Errors int64 `json:"errors"`
	// Quarantined counts files renamed to *.quarantine.
	Quarantined int64 `json:"quarantined"`
	// Rereplicated counts quarantined parts restored from a healthy
	// replica.
	Rereplicated int64 `json:"rereplicated"`
}

// StartScrub launches the background scrub loop. A second call while
// one is running is a no-op; Close (or StopScrub) stops it.
func (s *Store) StartScrub(cfg ScrubConfig) {
	if cfg.Interval <= 0 {
		return
	}
	s.mu.Lock()
	if s.closed || s.scrubStop != nil {
		s.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = stop, done
	s.mu.Unlock()
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(cfg.Interval):
			}
			s.scrubOnce(cfg, stop)
		}
	}()
}

// StopScrub stops the background scrub loop and waits for it to exit.
// Safe to call when none is running.
func (s *Store) StopScrub() {
	s.mu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// ScrubNow runs one synchronous scrub pass (regardless of whether the
// background loop is running) and returns the cumulative stats.
func (s *Store) ScrubNow(cfg ScrubConfig) ScrubStats {
	s.scrubOnce(cfg, nil)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubStats
}

// scrubOnce is one pass over every part: verify the active mapping,
// verify each standby replica file, quarantine + re-replicate what is
// bad, fail suspect parts over, and report the healed documents.
func (s *Store) scrubOnce(cfg ScrubConfig, stop <-chan struct{}) {
	healedURIs := make(map[string]bool)
	n := s.numParts()
	for i := 0; i < n; i++ {
		select {
		case <-stop:
			s.finishScrub(healedURIs, false)
			return
		default:
		}
		bytes := s.scrubPart(i, healedURIs)
		scrubPace(bytes, cfg.BytesPerSec, stop)
	}
	s.finishScrub(healedURIs, true)
}

// scrubPart verifies part i's active mapping and standby files,
// handling failover/quarantine/re-replication. Returns the bytes read
// (for pacing).
func (s *Store) scrubPart(i int, healedURIs map[string]bool) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || i >= len(s.parts) {
		return 0
	}
	p := s.parts[i]
	read := int64(0)

	// Active mapping: full section-CRC re-verification. The pages it
	// touches are dropped right after, so scrubbing does not pin the
	// corpus resident.
	if p.data != nil && !p.exhausted {
		read += int64(len(p.data))
		err := verifySections(p.path, p.data, p.hdr)
		dropPages(p.f, p.data, p.mapped)
		s.scrubStats.PartsVerified++
		obs.StoreScrubPartsTotal.Inc()
		if err != nil {
			s.scrubStats.Errors++
			obs.StoreScrubErrorsTotal.Inc()
			bad := p.srcs[p.active]
			bad.bad = true
			s.markSuspectLocked(p, err.Error())
			if s.failoverPartLocked(p) {
				healedURIs[p.uri] = true
				if s.quarantineLocked(p, bad) {
					s.rereplicateLocked(p, bad)
				}
			}
			return read
		}
	}

	// Standby replicas: stream the file through the same CRC checks. A
	// bad standby with a healthy active copy is quarantined and restored
	// from it.
	for idx, src := range p.srcs {
		if idx == p.active {
			continue
		}
		if src.bad {
			// Found bad before this pass (at mount, or by an earlier pass
			// whose restore failed): repair without re-reading the copy.
			if !p.suspect.Load() && !p.exhausted && s.quarantineLocked(p, src) {
				s.rereplicateLocked(p, src)
			}
			continue
		}
		if fi, err := os.Stat(src.path()); err == nil {
			read += fi.Size()
		}
		s.scrubStats.PartsVerified++
		obs.StoreScrubPartsTotal.Inc()
		if err := verifyPartFile(src.path()); err != nil {
			s.scrubStats.Errors++
			obs.StoreScrubErrorsTotal.Inc()
			src.bad = true
			if !p.suspect.Load() && !p.exhausted && s.quarantineLocked(p, src) {
				s.rereplicateLocked(p, src)
			}
		}
	}
	return read
}

// finishScrub reassembles documents healed during the pass, hands them
// to Options.OnHeal, and closes out the pass counters.
func (s *Store) finishScrub(healedURIs map[string]bool, full bool) {
	s.mu.Lock()
	healed, _ := s.reassembleLocked(healedURIs)
	onHeal := s.opts.OnHeal
	if full && !s.closed {
		s.scrubStats.Passes++
		obs.StoreScrubPassesTotal.Inc()
	}
	s.mu.Unlock()
	if len(healed) > 0 && onHeal != nil {
		onHeal(healed)
	}
	if full {
		s.Sample()
	}
}

// scrubPace sleeps long enough after reading n bytes to keep the scrub
// rate under bytesPerSec.
func scrubPace(n, bytesPerSec int64, stop <-chan struct{}) {
	if bytesPerSec <= 0 || n <= 0 {
		return
	}
	d := time.Duration(n) * time.Second / time.Duration(bytesPerSec)
	if d <= 0 {
		return
	}
	if stop == nil {
		time.Sleep(d)
		return
	}
	select {
	case <-stop:
	case <-time.After(d):
	}
}

// quarantineLocked renames src's file to <file>.quarantine and removes
// its manifest entry (recording the name under the doc's "quarantined"
// list), so future mounts skip the bad copy. Reports whether the copy
// is quarantined — including when an earlier pass already moved it, so
// the restore can be retried. Caller holds s.mu.
func (s *Store) quarantineLocked(p *part, src *source) bool {
	qpath := src.path() + ".quarantine"
	if err := os.Rename(src.path(), qpath); err != nil {
		if _, serr := os.Stat(qpath); serr != nil {
			return false
		}
		return true // already quarantined; counted when it happened
	}
	_ = manifestQuarantine(src.dir, p.uri, src.mp.File)
	s.quarantined++
	s.scrubStats.Quarantined++
	obs.StoreQuarantinedParts.Add(1)
	return true
}

// rereplicateLocked restores src's quarantined part from the healthy
// active copy: copy the active file into src's directory under the
// original name (write-to-tmp, fsync, rename), verify it, and re-add
// the manifest entry. Caller holds s.mu.
func (s *Store) rereplicateLocked(p *part, src *source) {
	if err := copyFileSync(p.path, src.path()); err != nil {
		return
	}
	if err := verifyPartFile(src.path()); err != nil {
		os.Remove(src.path())
		return
	}
	if err := manifestRestore(src.dir, p.uri, src.mp); err != nil {
		return
	}
	src.bad = false
	s.quarantined--
	s.scrubStats.Rereplicated++
	obs.StoreQuarantinedParts.Add(-1)
	obs.StoreRereplicatedTotal.Inc()
}

// manifestQuarantine removes file's part entry for uri from dir's
// manifest and records it under the doc's quarantined list.
func manifestQuarantine(dir, uri, file string) error {
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	for di := range m.Docs {
		if m.Docs[di].URI != uri {
			continue
		}
		parts := m.Docs[di].Parts[:0]
		for _, mp := range m.Docs[di].Parts {
			if mp.File != file {
				parts = append(parts, mp)
			}
		}
		m.Docs[di].Parts = parts
		m.Docs[di].Quarantined = append(m.Docs[di].Quarantined, file)
	}
	return writeManifest(dir, m)
}

// manifestRestore re-adds a re-replicated part entry to dir's manifest
// and clears the quarantine note.
func manifestRestore(dir, uri string, mp manifestPart) error {
	m, err := readManifest(dir)
	if err != nil {
		return err
	}
	for di := range m.Docs {
		if m.Docs[di].URI != uri {
			continue
		}
		has := false
		for _, ex := range m.Docs[di].Parts {
			if ex.File == mp.File {
				has = true
			}
		}
		if !has {
			m.Docs[di].Parts = append(m.Docs[di].Parts, mp)
		}
		q := m.Docs[di].Quarantined[:0]
		for _, f := range m.Docs[di].Quarantined {
			if f != mp.File {
				q = append(q, f)
			}
		}
		if len(q) == 0 {
			q = nil
		}
		m.Docs[di].Quarantined = q
	}
	return writeManifest(dir, m)
}

// copyFileSync copies src to dst durably: write to a tmp file, fsync,
// rename over dst, fsync the directory.
func copyFileSync(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	tmp := dst + ".tmp"
	out, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(dst))
}

// verifyPartFile validates a part file by streaming reads — header
// structure and every section CRC — without mapping it. Used for
// standby replicas and freshly re-replicated copies.
func verifyPartFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return corruptf("%s: part file missing", path)
		}
		return fmt.Errorf("store: %s: %w", path, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return fmt.Errorf("store: %s: %w", path, err)
	}
	hb := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hb); err != nil {
		return corruptf("%s: truncated: %d bytes, header needs %d", path, fi.Size(), headerSize)
	}
	h, err := parseHeaderBytes(path, hb, uint64(fi.Size()))
	if err != nil {
		return err
	}
	buf := make([]byte, 1<<16)
	for i, sec := range h.secs {
		crc := uint32(0)
		off, remaining := int64(sec.off), sec.len
		for remaining > 0 {
			c := uint64(len(buf))
			if remaining < c {
				c = remaining
			}
			n, err := f.ReadAt(buf[:c], off)
			if err != nil {
				return corruptf("%s: %s section unreadable at %d: %v", path, sectionName(i), off, err)
			}
			crc = crc32.Update(crc, crc32.IEEETable, buf[:n])
			off += int64(n)
			remaining -= uint64(n)
		}
		if crc != sec.crc {
			return corruptf("%s: %s section checksum mismatch (%08x != %08x)", path, sectionName(i), crc, sec.crc)
		}
	}
	return nil
}
