// Deterministic storage fault injection: a seeded plan that makes part
// opens fail, query-time probes observe I/O errors or checksum
// mismatches on a chosen replica, and WriteDoc crash between writing
// part files and publishing manifests — the storage mirror of
// resilience.HTTPFaultPlan's counter-residue design. Armed only: the
// zero state injects nothing and the probe fast path is one atomic
// pointer load.
package store

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// FaultPlan schedules deterministic storage faults. Each class fires on
// every Nth event of its own counter, at the seed's residue, so the same
// spec replays the same faults:
//
//	eio       every Nth query execution observes an I/O error (EIO) on
//	          one replica of one part at its first probe
//	badcrc    like eio, but the fault reads as a checksum mismatch
//	shortread every Nth part open sees a file truncated mid-section
//	mmap      every Nth part open fails to map the file
//	torn      every Nth WriteDoc "crashes" after writing part files but
//	          before publishing any manifest (the kill-during-write
//	          window the fsync path must make safe)
//
// Query-class faults (eio/badcrc) mark the chosen part suspect exactly
// as a real fault would; recovery then exercises the production path:
// suspect → failover to the next replica → re-execute.
type FaultPlan struct {
	// Seed varies which events fault without changing how many.
	Seed int64
	// EIOEvery > 0 injects an I/O fault on every Nth query execution.
	EIOEvery int
	// BadCRCEvery > 0 injects a checksum mismatch on every Nth query
	// execution.
	BadCRCEvery int
	// ShortReadEvery > 0 truncates every Nth part open.
	ShortReadEvery int
	// MmapEvery > 0 fails every Nth part open at the mapping step.
	MmapEvery int
	// TornEvery > 0 aborts every Nth WriteDoc before its manifests.
	TornEvery int

	queries atomic.Int64 // query executions seen (eio/badcrc counter)
	opens   atomic.Int64 // part opens seen (shortread/mmap counter)
	writes  atomic.Int64 // WriteDoc calls seen (torn counter)
}

// hits reports whether event number i (0-based) fires for a 1-in-n
// fault class, at the seed's residue (same scheme as
// resilience.HTTPFaultPlan and governor.FaultPlan).
func (f *FaultPlan) hits(i int64, n int) bool {
	if n <= 0 {
		return false
	}
	residue := f.Seed % int64(n)
	if residue < 0 {
		residue += int64(n)
	}
	return i%int64(n) == residue
}

// armed is the process-wide fault plan; nil (the default) injects
// nothing. Stores consult it at part open, WriteDoc, and query probes.
var armed atomic.Pointer[FaultPlan]

// SetFaults arms plan process-wide (nil disarms). Tests and the
// -store-chaos CLI flags call it; production never does.
func SetFaults(plan *FaultPlan) { armed.Store(plan) }

// ArmedFaults returns the armed plan, or nil.
func ArmedFaults() *FaultPlan { return armed.Load() }

// openFault returns a synthetic error for this part open, or nil. The
// error classifies exactly as the real failure would: a short read as
// ErrCorrupt truncation, a failed map as an I/O error.
func (f *FaultPlan) openFault(path string) error {
	i := f.opens.Add(1) - 1
	if f.hits(i, f.ShortReadEvery) {
		return corruptf("%s: truncated by injected short read (fault plan)", path)
	}
	if f.hits(i, f.MmapEvery) {
		return fmt.Errorf("store: %s: injected mmap failure (fault plan)", path)
	}
	return nil
}

// writeFault returns a synthetic crash for this WriteDoc, or nil.
// Callers invoke it after part files are durable and before any
// manifest is written — the torn-write window.
func (f *FaultPlan) writeFault(uri string) error {
	i := f.writes.Add(1) - 1
	if f.hits(i, f.TornEvery) {
		return fmt.Errorf("store: injected torn write: crashed before publishing manifests for %q (fault plan)", uri)
	}
	return nil
}

// QueryFault injects at most one fault for one query execution: when
// this execution's number hits the eio or badcrc residue, a part is
// chosen by rotation across the mounted stores, marked suspect, and the
// corresponding error returned (retryable iff a standby replica
// remains). Returns nil when this execution does not fault. The mounting
// engine calls it from each execution's first store probe.
func (f *FaultPlan) QueryFault(stores []*Store) error {
	if len(stores) == 0 || (f.EIOEvery <= 0 && f.BadCRCEvery <= 0) {
		return nil
	}
	i := f.queries.Add(1) - 1
	eio := f.hits(i, f.EIOEvery)
	badcrc := !eio && f.hits(i, f.BadCRCEvery)
	if !eio && !badcrc {
		return nil
	}
	total := 0
	for _, st := range stores {
		total += st.numParts()
	}
	if total == 0 {
		return nil
	}
	k := int(i % int64(total))
	for _, st := range stores {
		n := st.numParts()
		if k < n {
			kind := "injected checksum mismatch"
			if eio {
				kind = "injected I/O error"
			}
			return st.injectPartFault(k, kind)
		}
		k -= n
	}
	return nil
}

// ParseFaultSpec parses a -store-chaos specification: comma-separated
// key=value pairs over the keys seed, eio, badcrc, shortread, mmap and
// torn (e.g. "seed=7,eio=11,badcrc=13"). An empty spec returns nil (no
// faults).
func ParseFaultSpec(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &FaultPlan{}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("store fault spec: %q is not key=value", kv)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("store fault spec: %s: %v", key, err)
		}
		switch key {
		case "seed":
			plan.Seed = n
		case "eio":
			plan.EIOEvery = int(n)
		case "badcrc":
			plan.BadCRCEvery = int(n)
		case "shortread":
			plan.ShortReadEvery = int(n)
		case "mmap":
			plan.MmapEvery = int(n)
		case "torn":
			plan.TornEvery = int(n)
		default:
			return nil, fmt.Errorf("store fault spec: unknown key %q", key)
		}
	}
	return plan, nil
}
