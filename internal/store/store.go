// Store opening and runtime: mmap the part files of one or more store
// directories, reassemble each document's columns into an
// xmltree.Fragment whose string payloads alias the mappings (zero-copy,
// demand-paged), and mirror sampled page residency into an xdm.Ledger
// account so a multi-gigabyte corpus competes for the same byte budget
// as query intermediates — under pressure the sampler evicts store
// pages instead of failing queries.
//
// Fault tolerance: a part replicated by WriteDocOpts mounts the first
// healthy copy and keeps the rest as standby sources. A fault observed
// mid-query (injected I/O error, lazily-detected CRC mismatch, a test's
// KillReplica) marks the part suspect; FailoverSuspects then swaps the
// mapping to the next replica and reassembles the affected documents.
// The replaced mapping is never unmapped while the store is open — it is
// condemned instead — so in-flight results that alias it stay valid.
package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// Options configures Open.
type Options struct {
	// Ledger, when set, receives the store's sampled mmap residency as a
	// long-lived account (the fixed in-heap spine, Stats.SpineBytes, is
	// reported but not charged — see Sample). Reservations that the
	// ledger cannot cover trigger page eviction, never an error — paging
	// pressure must degrade locality, not availability.
	Ledger *xdm.Ledger
	// LazyVerify defers section-CRC verification from mount time to the
	// first query probe (Health). Mounts of large corpora get cheap; the
	// first query pays for the verification instead, and a bad part
	// surfaces as a retryable fault (when a replica remains) rather than
	// a failed mount. Default off: verify eagerly at open.
	LazyVerify bool
	// OnHeal, when set, is called after a scrub pass failed suspect
	// parts over to healthy replicas and reassembled their documents —
	// the mounting engine re-registers the fresh fragments. Invoked
	// without store locks held, from the scrubber goroutine or a
	// ScrubNow caller.
	OnHeal func([]DocEntry)
}

// source is one on-disk location (replica) of a part.
type source struct {
	dir string
	mp  manifestPart
	bad bool // open failed or scrub proved the bytes wrong (guarded by Store.mu)
}

func (s *source) path() string { return filepath.Join(s.dir, s.mp.File) }

// mapping is one mapped part file.
type mapping struct {
	f      *os.File
	data   []byte
	mapped bool // data is an mmap (not the read-whole-file fallback)
	hdr    header
}

// part is one logical part of a document: the active mapping plus the
// standby replica sources failover can switch to.
type part struct {
	uri   string
	index int
	of    int

	srcs   []*source // replicas in replica order; immutable after Open
	active int       // index into srcs of the serving copy (guarded by Store.mu)

	path   string
	f      *os.File
	data   []byte
	mapped bool
	hdr    header

	verified  bool        // section CRCs checked (guarded by Store.mu)
	suspect   atomic.Bool // a fault was observed on the active copy
	exhausted bool        // every replica failed; terminal (guarded by Store.mu)
	faultMsg  string      // diagnostic of the observed fault (guarded by Store.mu)

	lastResident int64 // bytes resident at the previous Sample
}

// standbyLocked reports whether a not-yet-rejected replica other than
// the active one remains. Caller holds Store.mu.
func (p *part) standbyLocked() bool {
	for off := 1; off < len(p.srcs); off++ {
		if !p.srcs[(p.active+off)%len(p.srcs)].bad {
			return true
		}
	}
	return false
}

// DocEntry is one document reassembled from its parts.
type DocEntry struct {
	URI   string
	Frag  *xmltree.Fragment
	Parts int
}

// Store is a set of documents served from mmap'd part files. The
// fragments returned by Docs alias the mappings; they are valid until
// Close.
type Store struct {
	mu    sync.Mutex
	parts []*part // immutable slice after Open (part fields are guarded by mu)
	docs  []DocEntry
	acct  *xdm.Account
	opts  Options

	// condemned holds mappings replaced by failover: in-flight results
	// may still alias them, so they stay mapped (pages dropped, file
	// open) until Close.
	condemned []mapping

	suspects   atomic.Int64 // parts currently suspect (Health fast path)
	unverified atomic.Int64 // parts awaiting lazy verification

	failovers   int64 // replica failovers performed by this store
	quarantined int64 // part files quarantined and not yet restored
	scrubStats  ScrubStats

	scrubStop chan struct{}
	scrubDone chan struct{}

	mappedBytes   int64 // includes condemned mappings until Close
	residentBytes int64
	spineBytes    int64
	closed        bool
}

// Open mounts the stores in dirs as one corpus. A document sharded
// across several directories is reassembled as long as the given dirs
// jointly cover all of its parts at least once; a part present in
// several directories (WriteDocOpts with Replicas > 1) mounts its first
// healthy replica and keeps the rest as failover standbys. Structural
// failures (missing or partial part sets, bad magic, version skew,
// checksum mismatches, truncation, invalid tree encodings) are
// classified under qerr.ErrCorrupt; with replicas, Open only fails when
// every copy of a part is bad.
func Open(dirs []string, opts Options) (st *Store, err error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("store: no directories to open")
	}
	type partRef struct {
		dir string
		mp  manifestPart
	}
	byURI := make(map[string][]partRef)
	var uris []string // first-appearance order
	for _, dir := range dirs {
		m, err := readManifest(dir)
		if err != nil {
			return nil, err
		}
		for _, d := range m.Docs {
			if _, seen := byURI[d.URI]; !seen {
				uris = append(uris, d.URI)
			}
			for _, p := range d.Parts {
				byURI[d.URI] = append(byURI[d.URI], partRef{dir: dir, mp: p})
			}
		}
	}

	st = &Store{opts: opts}
	defer func() {
		if err != nil {
			st.Close()
			st = nil
		}
	}()

	for _, uri := range uris {
		refs := byURI[uri]
		of := refs[0].mp.Of
		if of < 1 {
			return nil, corruptf("%s: part count %d", uri, of)
		}
		slots := make([][]partRef, of)
		for _, r := range refs {
			if r.mp.Of != of {
				return nil, corruptf("%s: directories disagree on part count (%d vs %d)", uri, r.mp.Of, of)
			}
			if r.mp.Index < 0 || r.mp.Index >= of {
				return nil, corruptf("%s: part index %d out of range [0,%d)", uri, r.mp.Index, of)
			}
			slots[r.mp.Index] = append(slots[r.mp.Index], r)
		}
		for i, slot := range slots {
			if len(slot) == 0 {
				return nil, corruptf("%s: part %d/%d missing from the mounted directories", uri, i, of)
			}
			sort.Slice(slot, func(a, b int) bool {
				if slot[a].mp.Replica != slot[b].mp.Replica {
					return slot[a].mp.Replica < slot[b].mp.Replica
				}
				return slot[a].dir < slot[b].dir
			})
			for j := 1; j < len(slot); j++ {
				if slot[j].mp.Replica == slot[j-1].mp.Replica {
					return nil, corruptf("%s: part %d replica %d mounted twice", uri, i, slot[j].mp.Replica)
				}
			}
		}

		docParts := make([]*part, 0, of)
		rows := uint64(0)
		for i, slot := range slots {
			p := &part{uri: uri, index: i, of: of}
			for _, r := range slot {
				p.srcs = append(p.srcs, &source{dir: r.dir, mp: r.mp})
			}
			var lastErr error
			opened := false
			for si, src := range p.srcs {
				m, merr := openMapping(src.path(), src.mp, !opts.LazyVerify)
				if merr != nil {
					src.bad = true
					lastErr = merr
					continue
				}
				p.active = si
				p.path = src.path()
				p.f, p.data, p.mapped, p.hdr = m.f, m.data, m.mapped, m.hdr
				p.verified = !opts.LazyVerify
				if si > 0 {
					// A replica beyond the first served: mount-time failover.
					st.failovers++
					obs.StoreFailoverTotal.Inc()
				}
				opened = true
				break
			}
			if !opened {
				return nil, lastErr
			}
			if !p.verified {
				st.unverified.Add(1)
			}
			st.parts = append(st.parts, p)
			st.mappedBytes += int64(len(p.data))
			if p.hdr.rowLo != rows {
				return nil, corruptf("%s: part %d starts at row %d, expected %d", p.path, p.index, p.hdr.rowLo, rows)
			}
			rows += p.hdr.nodes
			docParts = append(docParts, p)
		}
		frag, ferr := assembleDoc(uri, docParts)
		if ferr != nil {
			return nil, ferr
		}
		st.docs = append(st.docs, DocEntry{URI: uri, Frag: frag, Parts: of})
		// Nominal in-heap spine: the Name/Value string headers (16 B
		// each) every mount materializes, plus the copied int columns
		// (13 B/node) when the doc is sharded and its columns cannot
		// alias a single mapping.
		per := int64(32)
		if of > 1 {
			per += 13
		}
		st.spineBytes += per * int64(frag.Len())
	}

	obs.StorePartsOpen.Add(int64(len(st.parts)))
	obs.StoreMappedBytes.Add(st.mappedBytes)
	// Verification touched every page; start cold so residency reflects
	// query access, not mount-time checksumming.
	for _, p := range st.parts {
		dropPages(p.f, p.data, p.mapped)
	}
	if opts.Ledger != nil {
		st.acct = opts.Ledger.NewAccount(0)
	}
	st.Sample()
	return st, nil
}

// openMapping maps one part file and validates header and manifest
// agreement; section checksums are verified when verify is set (eager
// mounts) and deferred to Health otherwise.
func openMapping(path string, mp manifestPart, verify bool) (*mapping, error) {
	if fp := ArmedFaults(); fp != nil {
		if err := fp.openFault(path); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, corruptf("%s: part file missing", path)
		}
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	data, mapped, err := mapFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	m := &mapping{f: f, data: data, mapped: mapped}
	h, err := parseHeader(path, data)
	if err != nil {
		m.close()
		return nil, err
	}
	if int64(h.nodes) != mp.Nodes {
		m.close()
		return nil, corruptf("%s: holds %d nodes, manifest says %d", path, h.nodes, mp.Nodes)
	}
	if verify {
		if err := verifySections(path, data, h); err != nil {
			m.close()
			return nil, err
		}
	}
	m.hdr = h
	return m, nil
}

func (m *mapping) close() {
	unmapFile(m.data, m.mapped)
	m.data = nil
	if m.f != nil {
		m.f.Close()
		m.f = nil
	}
}

func (p *part) close() {
	unmapFile(p.data, p.mapped)
	p.data = nil
	if p.f != nil {
		p.f.Close()
		p.f = nil
	}
}

// sec returns the bytes of section i of the part.
func (p *part) sec(i int) []byte {
	s := p.hdr.secs[i]
	return p.data[s.off : s.off+s.len]
}

// numParts returns the part count (the parts slice is immutable after
// Open, so no lock is needed).
func (s *Store) numParts() int { return len(s.parts) }

// assembleDoc rebuilds one document's Fragment from its parts (already
// in index order, row-contiguous). For a single-part document the int
// columns alias the mapping directly; a sharded document concatenates
// them into heap slices. Value strings always alias the part mappings —
// the text payload, which dominates corpus bytes, stays demand-paged
// either way.
func assembleDoc(uri string, parts []*part) (*xmltree.Fragment, error) {
	total := uint64(0)
	for _, p := range parts {
		total += p.hdr.nodes
	}
	if total == 0 {
		return nil, corruptf("%s: document has no nodes", uri)
	}
	if total > math.MaxInt32 {
		return nil, corruptf("%s: %d nodes exceed the fragment encoding's int32 preorder", uri, total)
	}
	n := int(total)
	frag := &xmltree.Fragment{Name_: uri}

	if len(parts) == 1 {
		p := parts[0]
		frag.Kind = unsafe.Slice((*xmltree.NodeKind)(unsafe.Pointer(&p.sec(sKind)[0])), n)
		frag.Size = unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sSize)[0])), n)
		frag.Level = unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sLevel)[0])), n)
		frag.Parent = unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sParent)[0])), n)
	} else {
		frag.Kind = make([]xmltree.NodeKind, n)
		frag.Size = make([]int32, n)
		frag.Level = make([]int32, n)
		frag.Parent = make([]int32, n)
		for _, p := range parts {
			lo, pn := int(p.hdr.rowLo), int(p.hdr.nodes)
			if pn == 0 {
				continue
			}
			copy(frag.Kind[lo:], unsafe.Slice((*xmltree.NodeKind)(unsafe.Pointer(&p.sec(sKind)[0])), pn))
			copy(frag.Size[lo:], unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sSize)[0])), pn))
			copy(frag.Level[lo:], unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sLevel)[0])), pn))
			copy(frag.Parent[lo:], unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sParent)[0])), pn))
		}
	}

	frag.Name = make([]string, n)
	frag.Value = make([]string, n)
	for _, p := range parts {
		if p.hdr.nodes == 0 {
			continue
		}
		dict, err := decodeDict(p)
		if err != nil {
			return nil, err
		}
		lo, pn := int(p.hdr.rowLo), int(p.hdr.nodes)
		nameID := unsafe.Slice((*uint32)(unsafe.Pointer(&p.sec(sNameID)[0])), pn)
		for i := 0; i < pn; i++ {
			id := nameID[i]
			if id >= uint32(len(dict)) {
				return nil, corruptf("%s: node %d names dictionary entry %d of %d", p.path, lo+i, id, len(dict))
			}
			frag.Name[lo+i] = dict[id]
		}
		valOff := unsafe.Slice((*uint64)(unsafe.Pointer(&p.sec(sValOff)[0])), pn+1)
		heap := p.sec(sValHeap)
		if valOff[0] != 0 || valOff[pn] != uint64(len(heap)) {
			return nil, corruptf("%s: value offsets [%d..%d] do not span the %d-byte heap",
				p.path, valOff[0], valOff[pn], len(heap))
		}
		for i := 0; i < pn; i++ {
			o, e := valOff[i], valOff[i+1]
			if e < o || e > uint64(len(heap)) {
				return nil, corruptf("%s: node %d value span [%d,%d) invalid", p.path, lo+i, o, e)
			}
			if e > o {
				frag.Value[lo+i] = unsafe.String(&heap[o], int(e-o))
			}
		}
	}

	if err := xmltree.Validate(frag); err != nil {
		return nil, corruptf("%s: invalid tree encoding: %v", uri, err)
	}
	return frag, nil
}

// decodeDict materializes a part's name dictionary (names are few and
// hot; copying them off the mapping keeps Name lookups fault-free).
func decodeDict(p *part) ([]string, error) {
	b := p.sec(sDict)
	dict := make([]string, 0, p.hdr.dictN)
	for i := uint64(0); i < p.hdr.dictN; i++ {
		if len(b) < 4 {
			return nil, corruptf("%s: dictionary truncated at entry %d", p.path, i)
		}
		l := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		b = b[4:]
		if l < 0 || l > len(b) {
			return nil, corruptf("%s: dictionary entry %d length %d exceeds section", p.path, i, l)
		}
		dict = append(dict, string(b[:l]))
		b = b[l:]
	}
	return dict, nil
}

// Docs returns the mounted documents in mount order. After a failover
// the entries carry freshly reassembled fragments.
func (s *Store) Docs() []DocEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DocEntry(nil), s.docs...)
}

// Health is the query-time probe: it performs any pending lazy
// verification and reports the first suspect part as an error —
// retryable (the engine fails over and re-executes) while an untried
// replica remains, terminal once all copies are bad. The healthy fast
// path is two atomic loads.
func (s *Store) Health() error {
	if s.unverified.Load() > 0 {
		if err := s.verifyPending(); err != nil {
			return err
		}
	}
	if s.suspects.Load() > 0 {
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, p := range s.parts {
			if p.suspect.Load() {
				return s.faultErrLocked(p)
			}
		}
	}
	return nil
}

// verifyPending runs deferred (LazyVerify) section-CRC checks. A bad
// part is marked suspect and reported like any other fault.
func (s *Store) verifyPending() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	for _, p := range s.parts {
		if p.verified {
			continue
		}
		err := verifySections(p.path, p.data, p.hdr)
		p.verified = true
		s.unverified.Add(-1)
		// Verification touched every page; drop them so lazy checks do
		// not pin the corpus resident.
		dropPages(p.f, p.data, p.mapped)
		if err != nil {
			s.markSuspectLocked(p, err.Error())
			return s.faultErrLocked(p)
		}
	}
	return nil
}

// markSuspectLocked records an observed fault on p's active replica.
// Caller holds s.mu.
func (s *Store) markSuspectLocked(p *part, msg string) {
	if p.suspect.CompareAndSwap(false, true) {
		p.faultMsg = msg
		s.suspects.Add(1)
		obs.StoreSuspectParts.Add(1)
	}
}

// faultErrLocked classifies p's recorded fault: retryable while a
// standby replica remains, terminal otherwise. Caller holds s.mu.
func (s *Store) faultErrLocked(p *part) error {
	msg := p.faultMsg
	if msg == "" {
		msg = fmt.Sprintf("%s: part fault", p.path)
	}
	if !p.exhausted && p.standbyLocked() {
		return retryableCorruptf("%s (replica %d of %d suspect; standby available)",
			msg, p.srcs[p.active].mp.Replica, len(p.srcs))
	}
	if len(p.srcs) == 1 {
		return qerr.Newf(qerr.ErrCorrupt, "execute", "store: %s (no replica to fail over to)", msg)
	}
	return qerr.Newf(qerr.ErrCorrupt, "execute", "store: %s (all %d replicas bad)", msg, len(p.srcs))
}

// injectPartFault marks part k suspect on behalf of an armed fault plan
// and returns the error the real fault would have produced.
func (s *Store) injectPartFault(k int, kind string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || k < 0 || k >= len(s.parts) {
		return nil
	}
	p := s.parts[k]
	if !p.suspect.Load() {
		s.markSuspectLocked(p, fmt.Sprintf("%s: %s (%s section, replica %d of %d)",
			p.path, kind, sectionName(sValHeap), p.srcs[p.active].mp.Replica, len(p.srcs)))
	}
	return s.faultErrLocked(p)
}

// KillReplica marks part k's active replica suspect, exactly as a
// detected fault would — the hook failover benches and tests use.
func (s *Store) KillReplica(k int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if k < 0 || k >= len(s.parts) {
		return fmt.Errorf("store: no part %d", k)
	}
	p := s.parts[k]
	s.markSuspectLocked(p, fmt.Sprintf("%s: replica killed (test hook)", p.path))
	return nil
}

// FailoverSuspects swaps every suspect part to its next healthy replica
// and reassembles the affected documents, returning the fresh entries
// for re-registration. The replaced mappings are condemned — kept
// mapped until Close — so results still aliasing them stay readable;
// the caller is expected to hold its execution drain barrier so the
// re-registered fragments are what retries see. A suspect part with no
// healthy replica left becomes exhausted (terminal); that is not an
// error here — the next probe reports it.
func (s *Store) FailoverSuspects() ([]DocEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failoverSuspectsLocked()
}

func (s *Store) failoverSuspectsLocked() ([]DocEntry, error) {
	if s.closed || s.suspects.Load() == 0 {
		return nil, nil
	}
	healedURIs := make(map[string]bool)
	for _, p := range s.parts {
		if !p.suspect.Load() || p.exhausted {
			continue
		}
		if s.failoverPartLocked(p) {
			healedURIs[p.uri] = true
		}
	}
	return s.reassembleLocked(healedURIs)
}

// failoverPartLocked switches p to its next healthy replica. The old
// source stays in the rotation (not marked bad): if its bytes are truly
// corrupt a later open re-validates and rejects them, while a transient
// fault (or an injected one) leaves a perfectly good standby. Returns
// whether the part was healed. Caller holds s.mu.
func (s *Store) failoverPartLocked(p *part) bool {
	n := len(p.srcs)
	for off := 1; off < n; off++ {
		idx := (p.active + off) % n
		cand := p.srcs[idx]
		if cand.bad {
			continue
		}
		m, err := openMapping(cand.path(), cand.mp, true)
		if err != nil {
			cand.bad = true
			continue
		}
		// Condemn the old mapping: in-flight results may alias it. Drop
		// its pages now — the mapping stays valid, the RAM is released.
		dropPages(p.f, p.data, p.mapped)
		s.condemned = append(s.condemned, mapping{f: p.f, data: p.data, mapped: p.mapped})
		s.mappedBytes += int64(len(m.data))
		obs.StoreMappedBytes.Add(int64(len(m.data)))
		obs.StorePartsOpen.Add(1)
		p.path = cand.path()
		p.f, p.data, p.mapped, p.hdr = m.f, m.data, m.mapped, m.hdr
		p.active = idx
		p.verified = true
		p.faultMsg = ""
		p.lastResident = 0
		p.suspect.Store(false)
		s.suspects.Add(-1)
		obs.StoreSuspectParts.Add(-1)
		s.failovers++
		obs.StoreFailoverTotal.Inc()
		return true
	}
	p.exhausted = true
	return false
}

// reassembleLocked rebuilds the fragments of the given URIs from their
// (post-failover) parts and updates s.docs. Caller holds s.mu.
func (s *Store) reassembleLocked(uris map[string]bool) ([]DocEntry, error) {
	if len(uris) == 0 {
		return nil, nil
	}
	var healed []DocEntry
	for i := range s.docs {
		uri := s.docs[i].URI
		if !uris[uri] {
			continue
		}
		var docParts []*part
		for _, p := range s.parts {
			if p.uri == uri {
				docParts = append(docParts, p)
			}
		}
		frag, err := assembleDoc(uri, docParts)
		if err != nil {
			// The replica passed its CRCs but assembles invalid: treat
			// its part as bad too and leave the old fragment serving.
			return healed, err
		}
		s.docs[i].Frag = frag
		healed = append(healed, s.docs[i])
	}
	return healed, nil
}

// PartInfo describes one mapped part file for observability.
type PartInfo struct {
	URI           string `json:"uri"`
	Path          string `json:"path"`
	Index         int    `json:"index"`
	Of            int    `json:"of"`
	Nodes         int64  `json:"nodes"`
	MappedBytes   int64  `json:"mapped_bytes"`
	ResidentBytes int64  `json:"resident_bytes"`
	// Replica is the replica number of the serving copy; Replicas the
	// mounted copies of this part (1 = unreplicated).
	Replica  int `json:"replica"`
	Replicas int `json:"replicas"`
	// State is "healthy", "suspect" (fault observed, failover pending)
	// or "exhausted" (every replica bad).
	State string `json:"state"`
}

// StatsSnapshot is a point-in-time view of the store's footprint and
// health.
type StatsSnapshot struct {
	Docs          []string   `json:"docs"`
	Parts         []PartInfo `json:"parts"`
	MappedBytes   int64      `json:"mapped_bytes"`
	ResidentBytes int64      `json:"resident_bytes"`
	SpineBytes    int64      `json:"spine_bytes"`
	// Health summarizes the store: "ok", "degraded" (served by failover
	// or carrying quarantined files, all parts healthy), "suspect"
	// (fault observed, failover pending) or "failed" (a part has no
	// healthy replica left).
	Health string `json:"health"`
	// SuspectParts counts parts awaiting failover; Condemned the
	// replaced mappings kept alive for in-flight readers; Failovers the
	// replica switches (mount-time and mid-query) this store performed.
	SuspectParts int   `json:"suspect_parts"`
	Condemned    int   `json:"condemned"`
	Failovers    int64 `json:"failovers"`
	// Scrub reports the background scrubber's counters.
	Scrub ScrubStats `json:"scrub"`
}

// Stats reports the store's documents, parts, footprint and health as
// of the last Sample.
func (s *Store) Stats() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StatsSnapshot{
		MappedBytes:   s.mappedBytes,
		ResidentBytes: s.residentBytes,
		SpineBytes:    s.spineBytes,
		SuspectParts:  int(s.suspects.Load()),
		Condemned:     len(s.condemned),
		Failovers:     s.failovers,
		Scrub:         s.scrubStats,
	}
	for _, d := range s.docs {
		out.Docs = append(out.Docs, d.URI)
	}
	health := "ok"
	if s.failovers > 0 || s.quarantined > 0 {
		health = "degraded"
	}
	for _, p := range s.parts {
		state := "healthy"
		if p.suspect.Load() {
			state = "suspect"
			if health != "failed" {
				health = "suspect"
			}
		}
		if p.exhausted {
			state = "exhausted"
			health = "failed"
		}
		out.Parts = append(out.Parts, PartInfo{
			URI: p.uri, Path: p.path, Index: p.index, Of: p.of,
			Nodes: int64(p.hdr.nodes), MappedBytes: int64(len(p.data)),
			ResidentBytes: p.lastResident,
			Replica:       p.srcs[p.active].mp.Replica, Replicas: len(p.srcs),
			State: state,
		})
	}
	out.Health = health
	return out
}

// Sample measures page residency across the store's mappings, updates
// the store metrics, and mirrors the footprint (resident + spine) into
// the ledger account. When the ledger cannot cover the footprint the
// sampler evicts store pages (madvise/fadvise DONTNEED) and re-measures:
// queries then fault their working set back in page by page, but a
// store under memory pressure never fails — it just runs colder.
// Returns the mapped and resident byte totals.
func (s *Store) Sample() (mapped, resident int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0
	}
	resident = s.sampleLocked()
	if s.acct != nil {
		// Only the evictable mmap residency is charged — the in-heap
		// spine (Stats.SpineBytes) is a fixed floor the sampler cannot
		// shed, so charging it would let a large corpus starve every
		// query of the budget it shares with them. The floor is reported
		// instead of charged; size ledgers above it.
		delta := resident - s.acct.Used()
		if delta > 0 {
			if over := s.acct.Reserve(delta); over != nil {
				// Ledger pressure: drop store pages and charge only what
				// is still resident after eviction. Reserve-best-effort —
				// deliberately no error path.
				obs.StoreEvictionsTotal.Inc()
				for _, p := range s.parts {
					dropPages(p.f, p.data, p.mapped)
				}
				resident = s.sampleLocked()
				if delta = resident - s.acct.Used(); delta > 0 {
					s.acct.Reserve(delta) // may fail again; resident stays undercharged
				} else if delta < 0 {
					s.acct.Release(-delta)
				}
			}
		} else if delta < 0 {
			s.acct.Release(-delta)
		}
	}
	return s.mappedBytes, resident
}

// sampleLocked refreshes per-part residency, counts fault deltas, and
// updates the gauges. Caller holds s.mu. Condemned mappings are not
// sampled: their pages were dropped at condemnation and only fault back
// if a still-live result reads them.
func (s *Store) sampleLocked() int64 {
	total := int64(0)
	ps := int64(pageSize())
	for _, p := range s.parts {
		res := residentBytes(p.data, p.mapped)
		if res > p.lastResident {
			obs.StorePageFaultsTotal.Add((res - p.lastResident + ps - 1) / ps)
		}
		p.lastResident = res
		total += res
	}
	obs.StoreResidentBytes.Add(total - s.residentBytes)
	s.residentBytes = total
	return total
}

// Close stops the scrubber, unmaps every part (condemned mappings
// included) and releases the ledger account. The fragments returned by
// Docs alias the mappings and must not be read afterwards.
func (s *Store) Close() {
	if s == nil {
		return
	}
	s.StopScrub()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	obs.StorePartsOpen.Add(-int64(len(s.parts) + len(s.condemned)))
	obs.StoreMappedBytes.Add(-s.mappedBytes)
	obs.StoreResidentBytes.Add(-s.residentBytes)
	obs.StoreSuspectParts.Add(-s.suspects.Load())
	for _, p := range s.parts {
		p.close()
	}
	for i := range s.condemned {
		s.condemned[i].close()
	}
	s.condemned = nil
	if s.acct != nil {
		s.acct.Close()
	}
}
