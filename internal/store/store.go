// Store opening and runtime: mmap the part files of one or more store
// directories, reassemble each document's columns into an
// xmltree.Fragment whose string payloads alias the mappings (zero-copy,
// demand-paged), and mirror sampled page residency into an xdm.Ledger
// account so a multi-gigabyte corpus competes for the same byte budget
// as query intermediates — under pressure the sampler evicts store
// pages instead of failing queries.
package store

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// Options configures Open.
type Options struct {
	// Ledger, when set, receives the store's sampled mmap residency as a
	// long-lived account (the fixed in-heap spine, Stats.SpineBytes, is
	// reported but not charged — see Sample). Reservations that the
	// ledger cannot cover trigger page eviction, never an error — paging
	// pressure must degrade locality, not availability.
	Ledger *xdm.Ledger
}

// part is one mapped part file.
type part struct {
	path   string
	uri    string
	index  int
	of     int
	f      *os.File
	data   []byte
	mapped bool // data is an mmap (not the read-whole-file fallback)
	hdr    header

	lastResident int64 // bytes resident at the previous Sample
}

// DocEntry is one document reassembled from its parts.
type DocEntry struct {
	URI   string
	Frag  *xmltree.Fragment
	Parts int
}

// Store is a set of documents served from mmap'd part files. The
// fragments returned by Docs alias the mappings; they are valid until
// Close.
type Store struct {
	mu    sync.Mutex
	parts []*part
	docs  []DocEntry
	acct  *xdm.Account

	mappedBytes   int64
	residentBytes int64
	spineBytes    int64
	closed        bool
}

// Open mounts the stores in dirs as one corpus. A document sharded
// across several directories is reassembled as long as the given dirs
// jointly cover all of its parts exactly once. Structural failures
// (missing or partial part sets, bad magic, version skew, checksum
// mismatches, truncation, invalid tree encodings) are classified under
// qerr.ErrCorrupt.
func Open(dirs []string, opts Options) (st *Store, err error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("store: no directories to open")
	}
	type partRef struct {
		dir string
		mp  manifestPart
	}
	byURI := make(map[string][]partRef)
	var uris []string // first-appearance order
	for _, dir := range dirs {
		m, err := readManifest(dir)
		if err != nil {
			return nil, err
		}
		for _, d := range m.Docs {
			if _, seen := byURI[d.URI]; !seen {
				uris = append(uris, d.URI)
			}
			for _, p := range d.Parts {
				byURI[d.URI] = append(byURI[d.URI], partRef{dir: dir, mp: p})
			}
		}
	}

	st = &Store{}
	defer func() {
		if err != nil {
			st.Close()
			st = nil
		}
	}()

	for _, uri := range uris {
		refs := byURI[uri]
		of := refs[0].mp.Of
		if of < 1 {
			return nil, corruptf("%s: part count %d", uri, of)
		}
		seen := make([]bool, of)
		for _, r := range refs {
			if r.mp.Of != of {
				return nil, corruptf("%s: directories disagree on part count (%d vs %d)", uri, r.mp.Of, of)
			}
			if r.mp.Index < 0 || r.mp.Index >= of {
				return nil, corruptf("%s: part index %d out of range [0,%d)", uri, r.mp.Index, of)
			}
			if seen[r.mp.Index] {
				return nil, corruptf("%s: part %d mounted twice", uri, r.mp.Index)
			}
			seen[r.mp.Index] = true
		}
		for i, ok := range seen {
			if !ok {
				return nil, corruptf("%s: part %d/%d missing from the mounted directories", uri, i, of)
			}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].mp.Index < refs[j].mp.Index })

		docParts := make([]*part, 0, of)
		rows := uint64(0)
		for _, r := range refs {
			path := filepath.Join(r.dir, r.mp.File)
			p, perr := openPart(path, uri, r.mp)
			if perr != nil {
				return nil, perr
			}
			st.parts = append(st.parts, p)
			st.mappedBytes += int64(len(p.data))
			if p.hdr.rowLo != rows {
				return nil, corruptf("%s: part %d starts at row %d, expected %d", path, p.index, p.hdr.rowLo, rows)
			}
			rows += p.hdr.nodes
			docParts = append(docParts, p)
		}
		frag, ferr := assembleDoc(uri, docParts)
		if ferr != nil {
			return nil, ferr
		}
		st.docs = append(st.docs, DocEntry{URI: uri, Frag: frag, Parts: of})
		// Nominal in-heap spine: the Name/Value string headers (16 B
		// each) every mount materializes, plus the copied int columns
		// (13 B/node) when the doc is sharded and its columns cannot
		// alias a single mapping.
		per := int64(32)
		if of > 1 {
			per += 13
		}
		st.spineBytes += per * int64(frag.Len())
	}

	obs.StorePartsOpen.Add(int64(len(st.parts)))
	obs.StoreMappedBytes.Add(st.mappedBytes)
	// Verification touched every page; start cold so residency reflects
	// query access, not mount-time checksumming.
	for _, p := range st.parts {
		dropPages(p.f, p.data, p.mapped)
	}
	if opts.Ledger != nil {
		st.acct = opts.Ledger.NewAccount(0)
	}
	st.Sample()
	return st, nil
}

// openPart maps one part file and validates header, manifest agreement
// and section checksums.
func openPart(path, uri string, mp manifestPart) (*part, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, corruptf("%s: part file missing", path)
		}
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	data, mapped, err := mapFile(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	p := &part{path: path, uri: uri, index: mp.Index, of: mp.Of, f: f, data: data, mapped: mapped}
	h, err := parseHeader(path, data)
	if err != nil {
		p.close()
		return nil, err
	}
	if int64(h.nodes) != mp.Nodes {
		p.close()
		return nil, corruptf("%s: holds %d nodes, manifest says %d", path, h.nodes, mp.Nodes)
	}
	if err := verifySections(path, data, h); err != nil {
		p.close()
		return nil, err
	}
	p.hdr = h
	return p, nil
}

func (p *part) close() {
	unmapFile(p.data, p.mapped)
	p.data = nil
	if p.f != nil {
		p.f.Close()
		p.f = nil
	}
}

// sec returns the bytes of section i of the part.
func (p *part) sec(i int) []byte {
	s := p.hdr.secs[i]
	return p.data[s.off : s.off+s.len]
}

// assembleDoc rebuilds one document's Fragment from its parts (already
// in index order, row-contiguous). For a single-part document the int
// columns alias the mapping directly; a sharded document concatenates
// them into heap slices. Value strings always alias the part mappings —
// the text payload, which dominates corpus bytes, stays demand-paged
// either way.
func assembleDoc(uri string, parts []*part) (*xmltree.Fragment, error) {
	total := uint64(0)
	for _, p := range parts {
		total += p.hdr.nodes
	}
	if total == 0 {
		return nil, corruptf("%s: document has no nodes", uri)
	}
	if total > math.MaxInt32 {
		return nil, corruptf("%s: %d nodes exceed the fragment encoding's int32 preorder", uri, total)
	}
	n := int(total)
	frag := &xmltree.Fragment{Name_: uri}

	if len(parts) == 1 {
		p := parts[0]
		frag.Kind = unsafe.Slice((*xmltree.NodeKind)(unsafe.Pointer(&p.sec(sKind)[0])), n)
		frag.Size = unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sSize)[0])), n)
		frag.Level = unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sLevel)[0])), n)
		frag.Parent = unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sParent)[0])), n)
	} else {
		frag.Kind = make([]xmltree.NodeKind, n)
		frag.Size = make([]int32, n)
		frag.Level = make([]int32, n)
		frag.Parent = make([]int32, n)
		for _, p := range parts {
			lo, pn := int(p.hdr.rowLo), int(p.hdr.nodes)
			if pn == 0 {
				continue
			}
			copy(frag.Kind[lo:], unsafe.Slice((*xmltree.NodeKind)(unsafe.Pointer(&p.sec(sKind)[0])), pn))
			copy(frag.Size[lo:], unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sSize)[0])), pn))
			copy(frag.Level[lo:], unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sLevel)[0])), pn))
			copy(frag.Parent[lo:], unsafe.Slice((*int32)(unsafe.Pointer(&p.sec(sParent)[0])), pn))
		}
	}

	frag.Name = make([]string, n)
	frag.Value = make([]string, n)
	for _, p := range parts {
		if p.hdr.nodes == 0 {
			continue
		}
		dict, err := decodeDict(p)
		if err != nil {
			return nil, err
		}
		lo, pn := int(p.hdr.rowLo), int(p.hdr.nodes)
		nameID := unsafe.Slice((*uint32)(unsafe.Pointer(&p.sec(sNameID)[0])), pn)
		for i := 0; i < pn; i++ {
			id := nameID[i]
			if id >= uint32(len(dict)) {
				return nil, corruptf("%s: node %d names dictionary entry %d of %d", p.path, lo+i, id, len(dict))
			}
			frag.Name[lo+i] = dict[id]
		}
		valOff := unsafe.Slice((*uint64)(unsafe.Pointer(&p.sec(sValOff)[0])), pn+1)
		heap := p.sec(sValHeap)
		if valOff[0] != 0 || valOff[pn] != uint64(len(heap)) {
			return nil, corruptf("%s: value offsets [%d..%d] do not span the %d-byte heap",
				p.path, valOff[0], valOff[pn], len(heap))
		}
		for i := 0; i < pn; i++ {
			o, e := valOff[i], valOff[i+1]
			if e < o || e > uint64(len(heap)) {
				return nil, corruptf("%s: node %d value span [%d,%d) invalid", p.path, lo+i, o, e)
			}
			if e > o {
				frag.Value[lo+i] = unsafe.String(&heap[o], int(e-o))
			}
		}
	}

	if err := xmltree.Validate(frag); err != nil {
		return nil, corruptf("%s: invalid tree encoding: %v", uri, err)
	}
	return frag, nil
}

// decodeDict materializes a part's name dictionary (names are few and
// hot; copying them off the mapping keeps Name lookups fault-free).
func decodeDict(p *part) ([]string, error) {
	b := p.sec(sDict)
	dict := make([]string, 0, p.hdr.dictN)
	for i := uint64(0); i < p.hdr.dictN; i++ {
		if len(b) < 4 {
			return nil, corruptf("%s: dictionary truncated at entry %d", p.path, i)
		}
		l := int(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		b = b[4:]
		if l < 0 || l > len(b) {
			return nil, corruptf("%s: dictionary entry %d length %d exceeds section", p.path, i, l)
		}
		dict = append(dict, string(b[:l]))
		b = b[l:]
	}
	return dict, nil
}

// Docs returns the mounted documents in mount order.
func (s *Store) Docs() []DocEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]DocEntry(nil), s.docs...)
}

// PartInfo describes one mapped part file for observability.
type PartInfo struct {
	URI           string `json:"uri"`
	Path          string `json:"path"`
	Index         int    `json:"index"`
	Of            int    `json:"of"`
	Nodes         int64  `json:"nodes"`
	MappedBytes   int64  `json:"mapped_bytes"`
	ResidentBytes int64  `json:"resident_bytes"`
}

// StatsSnapshot is a point-in-time view of the store's footprint.
type StatsSnapshot struct {
	Docs          []string   `json:"docs"`
	Parts         []PartInfo `json:"parts"`
	MappedBytes   int64      `json:"mapped_bytes"`
	ResidentBytes int64      `json:"resident_bytes"`
	SpineBytes    int64      `json:"spine_bytes"`
}

// Stats reports the store's documents, parts and footprint as of the
// last Sample.
func (s *Store) Stats() StatsSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StatsSnapshot{
		MappedBytes:   s.mappedBytes,
		ResidentBytes: s.residentBytes,
		SpineBytes:    s.spineBytes,
	}
	for _, d := range s.docs {
		out.Docs = append(out.Docs, d.URI)
	}
	for _, p := range s.parts {
		out.Parts = append(out.Parts, PartInfo{
			URI: p.uri, Path: p.path, Index: p.index, Of: p.of,
			Nodes: int64(p.hdr.nodes), MappedBytes: int64(len(p.data)),
			ResidentBytes: p.lastResident,
		})
	}
	return out
}

// Sample measures page residency across the store's mappings, updates
// the store metrics, and mirrors the footprint (resident + spine) into
// the ledger account. When the ledger cannot cover the footprint the
// sampler evicts store pages (madvise/fadvise DONTNEED) and re-measures:
// queries then fault their working set back in page by page, but a
// store under memory pressure never fails — it just runs colder.
// Returns the mapped and resident byte totals.
func (s *Store) Sample() (mapped, resident int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0
	}
	resident = s.sampleLocked()
	if s.acct != nil {
		// Only the evictable mmap residency is charged — the in-heap
		// spine (Stats.SpineBytes) is a fixed floor the sampler cannot
		// shed, so charging it would let a large corpus starve every
		// query of the budget it shares with them. The floor is reported
		// instead of charged; size ledgers above it.
		delta := resident - s.acct.Used()
		if delta > 0 {
			if over := s.acct.Reserve(delta); over != nil {
				// Ledger pressure: drop store pages and charge only what
				// is still resident after eviction. Reserve-best-effort —
				// deliberately no error path.
				obs.StoreEvictionsTotal.Inc()
				for _, p := range s.parts {
					dropPages(p.f, p.data, p.mapped)
				}
				resident = s.sampleLocked()
				if delta = resident - s.acct.Used(); delta > 0 {
					s.acct.Reserve(delta) // may fail again; resident stays undercharged
				} else if delta < 0 {
					s.acct.Release(-delta)
				}
			}
		} else if delta < 0 {
			s.acct.Release(-delta)
		}
	}
	return s.mappedBytes, resident
}

// sampleLocked refreshes per-part residency, counts fault deltas, and
// updates the gauges. Caller holds s.mu.
func (s *Store) sampleLocked() int64 {
	total := int64(0)
	ps := int64(pageSize())
	for _, p := range s.parts {
		res := residentBytes(p.data, p.mapped)
		if res > p.lastResident {
			obs.StorePageFaultsTotal.Add((res - p.lastResident + ps - 1) / ps)
		}
		p.lastResident = res
		total += res
	}
	obs.StoreResidentBytes.Add(total - s.residentBytes)
	s.residentBytes = total
	return total
}

// Close unmaps every part and releases the ledger account. The
// fragments returned by Docs alias the mappings and must not be read
// afterwards.
func (s *Store) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	obs.StorePartsOpen.Add(-int64(len(s.parts)))
	obs.StoreMappedBytes.Add(-s.mappedBytes)
	obs.StoreResidentBytes.Add(-s.residentBytes)
	for _, p := range s.parts {
		p.close()
	}
	if s.acct != nil {
		s.acct.Close()
	}
}
