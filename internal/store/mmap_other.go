//go:build !linux

package store

import (
	"io"
	"os"
)

func pageSize() int { return os.Getpagesize() }

// mapFile reads the whole file into memory — the portable fallback for
// hosts without the linux mmap/mincore path. Out-of-core behavior
// degrades to in-core; correctness is unchanged.
func mapFile(f *os.File) ([]byte, bool, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, false, err
	}
	return data, false, nil
}

func unmapFile(data []byte, mapped bool) {}

func residentBytes(data []byte, mapped bool) int64 { return int64(len(data)) }

func dropPages(f *os.File, data []byte, mapped bool) {}
