package algebra

import (
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

func TestHashConsingSharesStructure(t *testing.T) {
	b := NewBuilder()
	l1 := b.LitCol("iter", xdm.NewInt(1))
	l2 := b.LitCol("iter", xdm.NewInt(1))
	if l1 != l2 {
		t.Error("identical literals must be the same node")
	}
	d1 := b.Doc("a.xml")
	s1 := b.Step(b.Cross(l1, d1), xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "x"})
	s2 := b.Step(b.Cross(l2, b.Doc("a.xml")), xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "x"})
	if s1 != s2 {
		t.Error("identical step chains must share")
	}
	s3 := b.Step(b.Cross(l1, d1), xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "y"})
	if s1 == s3 {
		t.Error("different node tests must not share")
	}
}

func TestConstructorsNeverShare(t *testing.T) {
	b := NewBuilder()
	loop := b.LitCol("iter", xdm.NewInt(1))
	content := b.EmptyLit("iter", "pos", "item")
	e1 := b.Elem("a", loop, content)
	e2 := b.Elem("a", loop, content)
	if e1 == e2 {
		t.Error("element constructors create fresh node identity and must not be shared")
	}
	a1 := b.Attr("k", b.Lit([]string{"iter", "v"}), "v")
	a2 := b.Attr("k", b.Lit([]string{"iter", "v"}), "v")
	if a1 == a2 {
		t.Error("attribute constructors must not be shared")
	}
}

func TestRebuildPreservesIdentityAndSerial(t *testing.T) {
	b := NewBuilder()
	loop := b.LitCol("iter", xdm.NewInt(1))
	content := b.EmptyLit("iter", "pos", "item")
	e := b.Elem("a", loop, content)
	same := b.Rebuild(e, []*Node{loop, content})
	if same != e {
		t.Error("rebuild with identical inputs must return the same node")
	}
	content2 := b.EmptyLit("item", "pos", "iter") // different column order
	r := b.Rebuild(e, []*Node{loop, content2})
	if r == e || r.Ser != e.Ser || r.Name != "a" {
		t.Errorf("rebuild must keep parameters (ser %d vs %d)", r.Ser, e.Ser)
	}
}

func TestSchemaInference(t *testing.T) {
	b := NewBuilder()
	lit := b.Lit([]string{"iter", "pos", "item"})
	if got := b.Keep(lit, "iter", "item").Schema(); len(got) != 2 {
		t.Errorf("keep schema: %v", got)
	}
	rn := b.RowNum(lit, "r", []SortSpec{{Col: "pos"}}, "iter")
	if !rn.HasCol("r") || !rn.HasCol("item") {
		t.Errorf("rownum schema: %v", rn.Schema())
	}
	j := b.Join(b.Lit([]string{"a"}), b.Lit([]string{"b"}), "a", "b")
	if len(j.Schema()) != 2 {
		t.Errorf("join schema: %v", j.Schema())
	}
}

func TestSchemaViolationsPanic(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	b := NewBuilder()
	lit := b.Lit([]string{"iter", "item"})
	assertPanic("project unknown col", func() { b.Keep(lit, "nope") })
	assertPanic("join duplicate cols", func() { b.Join(lit, lit, "iter", "iter") })
	assertPanic("union mismatched schemas", func() {
		b.Union(lit, b.Lit([]string{"iter", "other"}))
	})
	assertPanic("rownum missing sort col", func() {
		b.RowNum(lit, "r", []SortSpec{{Col: "ghost"}}, "")
	})
	assertPanic("step without iter", func() {
		b.Step(b.Lit([]string{"item"}), xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestWild})
	})
	assertPanic("strjoin without pos", func() {
		b.Aggr(lit, AggrStrJoin, "r", "item", "iter")
	})
}

func TestIdentityProjectionEliminated(t *testing.T) {
	b := NewBuilder()
	lit := b.Lit([]string{"iter", "pos", "item"})
	if b.Keep(lit, "iter", "pos", "item") != lit {
		t.Error("identity projection should vanish")
	}
	// Chained projections collapse.
	p1 := b.Project(lit, ColPair{New: "a", Old: "iter"}, ColPair{New: "b", Old: "pos"})
	p2 := b.Project(p1, ColPair{New: "c", Old: "a"})
	if p2.Ins[0] != lit {
		t.Error("projection chain should collapse onto the base input")
	}
}

func TestPlanStatsAndPrint(t *testing.T) {
	b := NewBuilder()
	loop := b.LitCol("iter", xdm.NewInt(1))
	doc := b.Doc("a.xml")
	ctx := b.Cross(loop, doc)
	step := b.Step(ctx, xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestWild})
	rn := b.RowNum(step, "pos", []SortSpec{{Col: "item"}}, "iter")
	rid := b.RowID(step, "pos2")
	root := b.Union(b.Keep(rn, "iter", "pos", "item"),
		b.Project(rid, ColPair{New: "iter", Old: "iter"}, ColPair{New: "pos", Old: "pos2"}, ColPair{New: "item", Old: "item"}))
	s := PlanStats(root)
	if s.RowNums != 1 || s.RowIDs != 1 || s.Steps != 1 {
		t.Errorf("stats: %+v", s)
	}
	out := Print(root)
	if !strings.Contains(out, "rownum pos:<item>/iter") || !strings.Contains(out, "step descendant::*") {
		t.Errorf("print output:\n%s", out)
	}
	// Shared nodes print once, then as ^id references.
	if !strings.Contains(out, "^") {
		t.Error("shared step should print as a reference the second time")
	}
	dot := Dot(root)
	if !strings.Contains(dot, "digraph plan") || !strings.Contains(dot, "salmon") {
		t.Error("dot output should highlight rownum nodes")
	}
}

func TestUnionDisjointSignatureDiffers(t *testing.T) {
	b := NewBuilder()
	l := b.Lit([]string{"iter"})
	r := b.Lit([]string{"iter"}, []xdm.Item{xdm.NewInt(9)})
	u1 := b.Union(l, r)
	u2 := b.UnionDisjoint(l, r, "iter")
	if u1 == u2 {
		t.Error("disjointness assertion must be part of the node identity")
	}
	if u2.Disj != "iter" {
		t.Errorf("Disj = %q", u2.Disj)
	}
}
