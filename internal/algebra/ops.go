// Package algebra defines the restricted relational algebra dialect that
// the eXrQuy compiler targets (Table 1 of the paper) and the plan DAG
// infrastructure: hash-consed construction (Pathfinder-emitted code is a
// DAG with substantial sharing), schema inference, pretty printing, and
// plan statistics.
//
// The two operators at the heart of the paper are both here:
//
//   - OpRowNum (ρ, written % in the paper) — grouped row numbering over
//     sort criteria; its implementation requires a blocking sort and is
//     where the cost of XQuery's order semantics concentrates;
//   - OpRowID (#) — arbitrary unique row numbering; order indifference is
//     realized by trading ρ for # and letting column dependency analysis
//     (package opt) erase the dead order bookkeeping.
package algebra

import (
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// OpKind enumerates the operators of the algebra.
type OpKind uint8

// Operators. The first group mirrors Table 1 of the paper; the second
// group makes explicit a few primitives Pathfinder composes from lower
// level pieces (EBV, cardinality checks, node construction), which keeps
// plans analyzable without changing the order story.
const (
	OpLit       OpKind = iota // literal table
	OpProject                 // π: projection with renaming, no dedup
	OpSelect                  // σ: keep rows whose column is true
	OpJoin                    // ⋈: equi-join on one column per side
	OpCross                   // ×: Cartesian product
	OpRowNum                  // ρ (%): grouped, sorted, dense row numbering — a sort
	OpRowID                   // #: arbitrary unique row ids — (almost) free
	OpBinOp                   // ⊕: item-level binary operation
	OpMap1                    // unary item-level mapping (atomize, string, not, …)
	OpUnion                   // ∪.: disjoint union (append)
	OpSemi                    // semijoin: rows of L with a key match in R
	OpDiff                    // anti-semijoin: rows of L with no key match in R
	OpDistinct                // duplicate elimination on a column list
	OpAggr                    // grouped aggregation
	OpStep                    // ⤋ax::nt: XPath step evaluation (staircase join)
	OpDoc                     // document access (fn:doc)
	OpElem                    // element construction (twig)
	OpAttr                    // attribute node construction
	OpRange                   // integer range expansion (e1 to e2)
	OpCheckCard               // cardinality guard (zero-or-one & friends)
)

// String names the operator like the paper does.
func (k OpKind) String() string {
	switch k {
	case OpLit:
		return "table"
	case OpProject:
		return "project"
	case OpSelect:
		return "select"
	case OpJoin:
		return "join"
	case OpCross:
		return "cross"
	case OpRowNum:
		return "rownum"
	case OpRowID:
		return "rowid"
	case OpBinOp:
		return "binop"
	case OpMap1:
		return "map1"
	case OpUnion:
		return "union"
	case OpSemi:
		return "semijoin"
	case OpDiff:
		return "difference"
	case OpDistinct:
		return "distinct"
	case OpAggr:
		return "aggr"
	case OpStep:
		return "step"
	case OpDoc:
		return "doc"
	case OpElem:
		return "element"
	case OpAttr:
		return "attribute"
	case OpRange:
		return "range"
	case OpCheckCard:
		return "checkcard"
	default:
		return "?"
	}
}

// BinFn enumerates item-level binary functions for OpBinOp.
type BinFn uint8

// Binary functions.
const (
	BArithAdd BinFn = iota
	BArithSub
	BArithMul
	BArithDiv
	BArithIDiv
	BArithMod
	BCmpGen     // general comparison semantics (untyped coerces to the other side)
	BCmpGenJoin // general comparison inside a value join: type errors relax to false
	BCmpGenErr  // true iff the general comparison of this pair raises a type error
	BCmpVal     // value comparison semantics (untyped is string)
	BNodeBefore
	BNodeIs
	BAnd
	BOr
	BConcat
	BContains
	BStartsWith
	BEndsWith
	BSubstr2 // substring(s, start)
	BSubstr3 // substring(s, start, len) — uses the third operand TCol
)

// UnFn enumerates item-level unary functions for OpMap1.
type UnFn uint8

// Unary functions.
const (
	UnAtomize UnFn = iota // node → untypedAtomic string value
	UnString              // atomize, then cast to xs:string
	UnNumber              // fn:number: cast to double, NaN on failure
	UnStringLength
	UnNot
	UnNeg
	UnNameOf
	UnRoot
	UnToDouble // arithmetic coercion: untypedAtomic → xs:double
	UnNormalizeSpace
	UnUpperCase
	UnLowerCase
	UnRound
	UnFloor
	UnCeiling
	UnAbs
)

// AggrFn enumerates grouped aggregation functions.
type AggrFn uint8

// Aggregation functions. AggrStrJoin is the order-sensitive space-joined
// string concatenation used for attribute value templates (it consumes the
// pos column, so it keeps order alive where XQuery demands it).
const (
	AggrCount AggrFn = iota
	AggrSum
	AggrAvg
	AggrMax
	AggrMin
	// AggrStrJoin joins group members' string values in pos order; the
	// separator travels in Node.Name ("" for attribute value templates'
	// space is set explicitly).
	AggrStrJoin
	// AggrEbv computes the effective boolean value of each group (empty
	// groups are simply absent; the compiler fills them with false where
	// needed). Like count, it ignores pos — EBV is one of the paper's
	// order-indifferent contexts (§2.2, item (e)).
	AggrEbv
)

// String names the aggregate.
func (f AggrFn) String() string {
	switch f {
	case AggrCount:
		return "count"
	case AggrSum:
		return "sum"
	case AggrAvg:
		return "avg"
	case AggrMax:
		return "max"
	case AggrMin:
		return "min"
	case AggrEbv:
		return "ebv"
	default:
		return "strjoin"
	}
}

// ColPair is one output column of a projection: New takes the value of Old.
type ColPair struct {
	New string
	Old string
}

// SortSpec is one sort criterion of OpRowNum.
type SortSpec struct {
	Col           string
	Desc          bool
	EmptyGreatest bool // KNull sorts above everything instead of below
}

// Node is one operator in a plan DAG. A single struct serves all operator
// kinds (only the fields documented for a kind are meaningful), which
// keeps structural hashing and rewriting straightforward; Builder.mk
// canonicalizes nodes so structural equality implies pointer equality.
type Node struct {
	ID   int
	Kind OpKind
	Ins  []*Node

	Cols []string        // OpLit: column names; OpSemi/OpDiff/OpDistinct: key columns
	Rows [][]xdm.Item    // OpLit: row data
	Proj []ColPair       // OpProject
	Col  string          // OpSelect: bool column; OpRowID: new column; OpAggr: value column; OpCheckCard: group column
	LCol string          // OpJoin: left key; OpBinOp: left operand; OpMap1: operand
	RCol string          // OpJoin: right key; OpBinOp: right operand
	TCol string          // OpBinOp: third operand (ternary functions only)
	Res  string          // OpRowNum/OpBinOp/OpMap1/OpAggr: result column
	Sort []SortSpec      // OpRowNum
	Part string          // OpRowNum/OpAggr: partition/group column ("" = single group)
	BFn  BinFn           // OpBinOp
	Cmp  xdm.CmpOp       // OpBinOp with BCmpGen/BCmpVal
	UFn  UnFn            // OpMap1
	AFn  AggrFn          // OpAggr
	Axis xquery.Axis     // OpStep
	Test xquery.NodeTest // OpStep
	URI  string          // OpDoc
	Name string          // OpElem/OpAttr: node name
	Min  int             // OpCheckCard: minimum group cardinality
	Max  int             // OpCheckCard: maximum group cardinality (-1 = unbounded)
	Ser  int             // OpElem/OpAttr: constructor serial (blocks sharing: constructors create fresh node identity)
	Disj string          // OpUnion: column on which the compiler asserts the inputs are disjoint ("" = none); drives key inference (§7)

	// Origin tags the XQuery construct this operator implements; the
	// engine's profiler aggregates evaluation time by origin to reproduce
	// Table 2. Not part of the structural signature.
	Origin string

	// Par marks the operator as parallel-safe: the plan provably does not
	// observe the physical row order of this operator's output, so a
	// partitioned (morsel-wise) evaluation is admissible. Set by the
	// optimizer's parallel region analysis (opt.MarkParallel) when a
	// parallel execution is requested; not part of the structural
	// signature.
	Par bool

	schema []string
}

// Schema returns the output column list of the node.
func (n *Node) Schema() []string { return n.schema }

// HasCol reports whether the output schema contains col.
func (n *Node) HasCol(col string) bool {
	for _, c := range n.schema {
		if c == col {
			return true
		}
	}
	return false
}
