package algebra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

// Builder constructs hash-consed plan DAGs: structurally identical
// operator trees become a single shared node, mirroring the sharing in
// Pathfinder-emitted code (the same path expression compiled twice costs
// once). Element/attribute constructors are exempt — XQuery constructors
// create fresh node identity per evaluation, so they carry a serial that
// defeats sharing.
type Builder struct {
	interned map[string]*Node
	nextID   int
	nextSer  int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{interned: make(map[string]*Node)}
}

// mk canonicalizes a node: computes its schema, validates operator
// invariants, and returns the shared instance for its structure.
func (b *Builder) mk(n Node) *Node {
	n.schema = computeSchema(&n)
	sig := signature(&n)
	if ex, ok := b.interned[sig]; ok {
		return ex
	}
	n.ID = b.nextID
	b.nextID++
	heap := n
	b.interned[sig] = &heap
	return &heap
}

func signature(n *Node) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|", n.Kind)
	for _, in := range n.Ins {
		fmt.Fprintf(&sb, "i%d,", in.ID)
	}
	sb.WriteString("|")
	sb.WriteString(strings.Join(n.Cols, ","))
	for _, r := range n.Rows {
		for _, it := range r {
			sb.WriteString("/" + xdm.DistinctKey(it))
			sb.WriteString("." + it.Kind.String())
		}
		sb.WriteString(";")
	}
	for _, p := range n.Proj {
		fmt.Fprintf(&sb, "|%s<%s", p.New, p.Old)
	}
	fmt.Fprintf(&sb, "|%s|%s|%s|%s|%s|", n.Col, n.LCol, n.RCol, n.TCol, n.Res)
	for _, s := range n.Sort {
		fmt.Fprintf(&sb, "%s.%v.%v,", s.Col, s.Desc, s.EmptyGreatest)
	}
	fmt.Fprintf(&sb, "|%s|%d|%d|%d|%d|%d|%s|%s|%s|%d|%d|%d|%s",
		n.Part, n.BFn, n.Cmp, n.UFn, n.AFn, n.Axis, n.Test, n.URI, n.Name, n.Min, n.Max, n.Ser, n.Disj)
	return sb.String()
}

func schemaUnion(a, b []string, op string) []string {
	for _, c := range b {
		for _, d := range a {
			if c == d {
				panic(fmt.Sprintf("algebra: %s with duplicate column %q", op, c))
			}
		}
	}
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func requireCol(n *Node, in int, col string, op string) {
	if !n.Ins[in].HasCol(col) {
		panic(fmt.Sprintf("algebra: %s input %d lacks column %q (has %v)", op, in, col, n.Ins[in].Schema()))
	}
}

func computeSchema(n *Node) []string {
	switch n.Kind {
	case OpLit:
		return n.Cols
	case OpProject:
		out := make([]string, len(n.Proj))
		for i, p := range n.Proj {
			requireCol(n, 0, p.Old, "project")
			out[i] = p.New
		}
		return out
	case OpSelect:
		requireCol(n, 0, n.Col, "select")
		return n.Ins[0].Schema()
	case OpJoin:
		requireCol(n, 0, n.LCol, "join")
		requireCol(n, 1, n.RCol, "join")
		return schemaUnion(n.Ins[0].Schema(), n.Ins[1].Schema(), "join")
	case OpCross:
		return schemaUnion(n.Ins[0].Schema(), n.Ins[1].Schema(), "cross")
	case OpRowNum:
		for _, s := range n.Sort {
			requireCol(n, 0, s.Col, "rownum")
		}
		if n.Part != "" {
			requireCol(n, 0, n.Part, "rownum")
		}
		return append(append([]string{}, n.Ins[0].Schema()...), n.Res)
	case OpRowID:
		return append(append([]string{}, n.Ins[0].Schema()...), n.Col)
	case OpBinOp:
		requireCol(n, 0, n.LCol, "binop")
		requireCol(n, 0, n.RCol, "binop")
		if n.TCol != "" {
			requireCol(n, 0, n.TCol, "binop")
		}
		return append(append([]string{}, n.Ins[0].Schema()...), n.Res)
	case OpMap1:
		requireCol(n, 0, n.LCol, "map1")
		return append(append([]string{}, n.Ins[0].Schema()...), n.Res)
	case OpUnion:
		l, r := n.Ins[0].Schema(), n.Ins[1].Schema()
		if len(l) != len(r) {
			panic(fmt.Sprintf("algebra: union schema mismatch %v vs %v", l, r))
		}
		ls := append([]string{}, l...)
		rs := append([]string{}, r...)
		sort.Strings(ls)
		sort.Strings(rs)
		for i := range ls {
			if ls[i] != rs[i] {
				panic(fmt.Sprintf("algebra: union schema mismatch %v vs %v", l, r))
			}
		}
		return l
	case OpSemi, OpDiff:
		for _, c := range n.Cols {
			requireCol(n, 0, c, n.Kind.String())
			requireCol(n, 1, c, n.Kind.String())
		}
		return n.Ins[0].Schema()
	case OpDistinct:
		for _, c := range n.Cols {
			requireCol(n, 0, c, "distinct")
		}
		return n.Cols
	case OpAggr:
		if n.AFn != AggrCount || n.Col != "" {
			requireCol(n, 0, n.Col, "aggr")
		}
		if n.AFn == AggrStrJoin {
			requireCol(n, 0, "pos", "aggr strjoin")
		}
		if n.Part != "" {
			requireCol(n, 0, n.Part, "aggr")
			return []string{n.Part, n.Res}
		}
		return []string{n.Res}
	case OpStep:
		requireCol(n, 0, "iter", "step")
		requireCol(n, 0, "item", "step")
		return []string{"iter", "item"}
	case OpDoc:
		return []string{"item"}
	case OpElem:
		requireCol(n, 0, "iter", "element")
		requireCol(n, 1, "iter", "element")
		requireCol(n, 1, "pos", "element")
		requireCol(n, 1, "item", "element")
		return []string{"iter", "item"}
	case OpAttr:
		requireCol(n, 0, "iter", "attribute")
		requireCol(n, 0, n.Col, "attribute")
		return []string{"iter", "item"}
	case OpRange:
		requireCol(n, 0, "iter", "range")
		requireCol(n, 0, n.LCol, "range")
		requireCol(n, 0, n.RCol, "range")
		return []string{"iter", "pos", "item"}
	case OpCheckCard:
		requireCol(n, 0, n.Col, "checkcard")
		if len(n.Ins) == 2 {
			requireCol(n, 1, n.Col, "checkcard loop")
		}
		return n.Ins[0].Schema()
	default:
		panic("algebra: unknown operator kind")
	}
}

// --- Construction helpers ---

// Lit builds a literal table.
func (b *Builder) Lit(cols []string, rows ...[]xdm.Item) *Node {
	return b.mk(Node{Kind: OpLit, Cols: cols, Rows: rows})
}

// LitCol builds a single-column, single-row literal table.
func (b *Builder) LitCol(col string, it xdm.Item) *Node {
	return b.Lit([]string{col}, []xdm.Item{it})
}

// EmptyLit builds an empty literal table with the given columns.
func (b *Builder) EmptyLit(cols ...string) *Node {
	return b.mk(Node{Kind: OpLit, Cols: cols})
}

// Project builds π with rename pairs.
func (b *Builder) Project(in *Node, proj ...ColPair) *Node {
	// Eliminate identity projections: π over exactly the input schema with
	// no renaming is a no-op.
	if len(proj) == len(in.Schema()) {
		identity := true
		for i, p := range proj {
			if p.New != p.Old || p.Old != in.Schema()[i] {
				identity = false
				break
			}
		}
		if identity {
			return in
		}
	}
	// Collapse chained projections: π(π(q)) = π(q) with composed pairs.
	if in.Kind == OpProject {
		composed := make([]ColPair, len(proj))
		for i, p := range proj {
			old := p.Old
			for _, q := range in.Proj {
				if q.New == old {
					old = q.Old
					break
				}
			}
			composed[i] = ColPair{New: p.New, Old: old}
		}
		return b.mk(Node{Kind: OpProject, Ins: []*Node{in.Ins[0]}, Proj: composed})
	}
	return b.mk(Node{Kind: OpProject, Ins: []*Node{in}, Proj: proj})
}

// Keep is a projection that keeps columns under their own names.
func (b *Builder) Keep(in *Node, cols ...string) *Node {
	proj := make([]ColPair, len(cols))
	for i, c := range cols {
		proj[i] = ColPair{New: c, Old: c}
	}
	return b.Project(in, proj...)
}

// Select builds σ on a boolean column.
func (b *Builder) Select(in *Node, col string) *Node {
	return b.mk(Node{Kind: OpSelect, Ins: []*Node{in}, Col: col})
}

// Join builds an equi-join.
func (b *Builder) Join(l, r *Node, lcol, rcol string) *Node {
	return b.mk(Node{Kind: OpJoin, Ins: []*Node{l, r}, LCol: lcol, RCol: rcol})
}

// Cross builds a Cartesian product.
func (b *Builder) Cross(l, r *Node) *Node {
	return b.mk(Node{Kind: OpCross, Ins: []*Node{l, r}})
}

// RowNum builds ρ (the paper's %): dense numbering res = 1,2,… per part
// group in sort order. This is the order-realizing, blocking operator.
func (b *Builder) RowNum(in *Node, res string, sort []SortSpec, part string) *Node {
	return b.mk(Node{Kind: OpRowNum, Ins: []*Node{in}, Res: res, Sort: sort, Part: part})
}

// RowID builds # — arbitrary unique numbers in a new column.
func (b *Builder) RowID(in *Node, col string) *Node {
	return b.mk(Node{Kind: OpRowID, Ins: []*Node{in}, Col: col})
}

// BinOp builds an item-level binary operator node.
func (b *Builder) BinOp(in *Node, fn BinFn, cmp xdm.CmpOp, res, l, r string) *Node {
	return b.mk(Node{Kind: OpBinOp, Ins: []*Node{in}, BFn: fn, Cmp: cmp, Res: res, LCol: l, RCol: r})
}

// BinOp3 builds a ternary item-level operator node (substring with length).
func (b *Builder) BinOp3(in *Node, fn BinFn, res, l, r, t string) *Node {
	return b.mk(Node{Kind: OpBinOp, Ins: []*Node{in}, BFn: fn, Res: res, LCol: l, RCol: r, TCol: t})
}

// AggrJoin builds the order-sensitive string join over pos with an
// explicit separator (fn:string-join; attribute value templates use " ").
func (b *Builder) AggrJoin(in *Node, res, val, part, sep string) *Node {
	return b.mk(Node{Kind: OpAggr, Ins: []*Node{in}, AFn: AggrStrJoin, Res: res, Col: val, Part: part, Name: sep})
}

// Map1 builds an item-level unary mapping node.
func (b *Builder) Map1(in *Node, fn UnFn, res, arg string) *Node {
	return b.mk(Node{Kind: OpMap1, Ins: []*Node{in}, UFn: fn, Res: res, LCol: arg})
}

// Union builds the disjoint union (append).
func (b *Builder) Union(l, r *Node) *Node {
	return b.mk(Node{Kind: OpUnion, Ins: []*Node{l, r}})
}

// UnionDisjoint is Union plus a compiler-asserted guarantee that the
// inputs carry disjoint value sets in column col (e.g. the two sides of
// an aggregate's empty-group fill partition the loop's iterations). The
// guarantee lets property inference preserve key-ness across the union —
// the hook the §7 rownum relaxation needs.
func (b *Builder) UnionDisjoint(l, r *Node, col string) *Node {
	return b.mk(Node{Kind: OpUnion, Ins: []*Node{l, r}, Disj: col})
}

// Semi keeps rows of l whose key (cols) appears in r.
func (b *Builder) Semi(l, r *Node, cols ...string) *Node {
	return b.mk(Node{Kind: OpSemi, Ins: []*Node{l, r}, Cols: cols})
}

// Diff keeps rows of l whose key (cols) does not appear in r.
func (b *Builder) Diff(l, r *Node, cols ...string) *Node {
	return b.mk(Node{Kind: OpDiff, Ins: []*Node{l, r}, Cols: cols})
}

// Distinct projects to cols and removes duplicates (nodes compare by
// identity, atomics by value).
func (b *Builder) Distinct(in *Node, cols ...string) *Node {
	return b.mk(Node{Kind: OpDistinct, Ins: []*Node{in}, Cols: cols})
}

// Aggr builds a grouped aggregate.
func (b *Builder) Aggr(in *Node, fn AggrFn, res, val, part string) *Node {
	return b.mk(Node{Kind: OpAggr, Ins: []*Node{in}, AFn: fn, Res: res, Col: val, Part: part})
}

// Step builds the XPath step operator ⤋ax::nt over (iter, item) context.
func (b *Builder) Step(in *Node, axis xquery.Axis, test xquery.NodeTest) *Node {
	return b.mk(Node{Kind: OpStep, Ins: []*Node{in}, Axis: axis, Test: test})
}

// Doc builds document access.
func (b *Builder) Doc(uri string) *Node {
	return b.mk(Node{Kind: OpDoc, URI: uri})
}

// Elem builds element construction: one new element per iteration in loop,
// with content drawn from content (iter|pos|item) in pos order.
func (b *Builder) Elem(name string, loop, content *Node) *Node {
	b.nextSer++
	return b.mk(Node{Kind: OpElem, Ins: []*Node{loop, content}, Name: name, Ser: b.nextSer})
}

// Attr builds attribute construction: one attribute node per row of in,
// named name, valued by the string column val.
func (b *Builder) Attr(name string, in *Node, val string) *Node {
	b.nextSer++
	return b.mk(Node{Kind: OpAttr, Ins: []*Node{in}, Name: name, Col: val, Ser: b.nextSer})
}

// Range expands (lo, hi) integer pairs into one row per value.
func (b *Builder) Range(in *Node, lo, hi string) *Node {
	return b.mk(Node{Kind: OpRange, Ins: []*Node{in}, LCol: lo, RCol: hi})
}

// CheckCard guards group cardinalities (per distinct value of col) at
// runtime; max = -1 means unbounded. When loop is non-nil, every iteration
// of the loop is checked (so empty groups violate min ≥ 1); otherwise only
// groups present in the input are checked.
func (b *Builder) CheckCard(in, loop *Node, col string, min, max int, origin string) *Node {
	ins := []*Node{in}
	if loop != nil {
		ins = append(ins, loop)
	}
	n := b.mk(Node{Kind: OpCheckCard, Ins: ins, Col: col, Min: min, Max: max})
	if n.Origin == "" {
		n.Origin = origin
	}
	return n
}

// Rebuild re-creates a node with new inputs, preserving every parameter
// including the constructor serial (so rewritten element constructors keep
// their node-identity semantics). Returns the canonical shared instance.
func (b *Builder) Rebuild(n *Node, newIns []*Node) *Node {
	if len(newIns) == len(n.Ins) {
		same := true
		for i := range newIns {
			if newIns[i] != n.Ins[i] {
				same = false
				break
			}
		}
		if same {
			return n
		}
	}
	clone := *n
	clone.Ins = newIns
	out := b.mk(clone)
	if out.Origin == "" {
		out.Origin = n.Origin
	}
	return out
}

// RebuildWith is Rebuild plus a parameter mutation applied to the clone
// before canonicalization (used by optimizer rewrites that change sort
// criteria or tests in place).
func (b *Builder) RebuildWith(n *Node, newIns []*Node, mutate func(*Node)) *Node {
	clone := *n
	clone.Ins = newIns
	if mutate != nil {
		mutate(&clone)
	}
	out := b.mk(clone)
	if out.Origin == "" {
		out.Origin = n.Origin
	}
	return out
}

// WithOrigin tags a node (and not its inputs) with a profiling origin if
// it does not have one yet; returns the node for chaining.
func WithOrigin(n *Node, origin string) *Node {
	if n.Origin == "" {
		n.Origin = origin
	}
	return n
}

// --- Plan traversal and statistics ---

// Nodes returns the DAG nodes reachable from root in topological order
// (inputs before consumers). The order is the deterministic post-order
// of a depth-first walk following Ins left to right — exactly the order
// in which the tree-walking engine evaluates operators. The bytecode
// compiler (internal/vm) relies on this: flattening in Nodes order makes
// the compiled program's side effects (constructed-node allocation in
// the derived store) happen in the same sequence as a walked run, which
// is what keeps compiled and walked results byte-identical. It also
// makes register assignment stable: position in this slice is the
// operator's register slot.
func Nodes(root *Node) []*Node {
	var out []*Node
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Ins {
			visit(in)
		}
		out = append(out, n)
	}
	visit(root)
	return out
}

// Stats summarizes a plan for the paper's plan-size discussions
// (Figure 6: 19 operators, 5 ρ; §4.1: 235 → 141 nodes for Q11).
type Stats struct {
	Operators int
	RowNums   int // ρ — each one is a blocking sort
	RowIDs    int // # — each one is (almost) free
	Steps     int
	Joins     int
	ByKind    map[OpKind]int
}

// PlanStats computes statistics for the DAG rooted at root.
func PlanStats(root *Node) Stats {
	s := Stats{ByKind: make(map[OpKind]int)}
	for _, n := range Nodes(root) {
		s.Operators++
		s.ByKind[n.Kind]++
		switch n.Kind {
		case OpRowNum:
			s.RowNums++
		case OpRowID:
			s.RowIDs++
		case OpStep:
			s.Steps++
		case OpJoin:
			s.Joins++
		}
	}
	return s
}
