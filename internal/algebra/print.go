package algebra

import (
	"fmt"
	"strings"
)

// label renders a node the way the paper annotates its plan figures, e.g.
// "rownum pos1:<bind,pos>/iter1" for ρ or "step child::regions" for ⤋.
func label(n *Node) string {
	switch n.Kind {
	case OpLit:
		return fmt.Sprintf("table %v (%d rows)", n.Cols, len(n.Rows))
	case OpProject:
		parts := make([]string, len(n.Proj))
		for i, p := range n.Proj {
			if p.New == p.Old {
				parts[i] = p.New
			} else {
				parts[i] = p.New + ":" + p.Old
			}
		}
		return "project " + strings.Join(parts, ",")
	case OpSelect:
		return "select " + n.Col
	case OpJoin:
		return fmt.Sprintf("join %s=%s", n.LCol, n.RCol)
	case OpCross:
		return "cross"
	case OpRowNum:
		keys := make([]string, len(n.Sort))
		for i, s := range n.Sort {
			keys[i] = s.Col
			if s.Desc {
				keys[i] += " desc"
			}
		}
		out := fmt.Sprintf("rownum %s:<%s>", n.Res, strings.Join(keys, ","))
		if n.Part != "" {
			out += "/" + n.Part
		}
		return out
	case OpRowID:
		return "rowid " + n.Col
	case OpBinOp:
		fn := map[BinFn]string{
			BArithAdd: "+", BArithSub: "-", BArithMul: "*", BArithDiv: "div",
			BArithIDiv: "idiv", BArithMod: "mod", BNodeBefore: "<<", BNodeIs: "is",
			BAnd: "and", BOr: "or", BConcat: "concat", BContains: "contains",
			BStartsWith: "starts-with", BEndsWith: "ends-with",
		}[n.BFn]
		if n.BFn == BCmpGen {
			fn = n.Cmp.String()
		}
		if n.BFn == BCmpGenJoin {
			fn = "join" + n.Cmp.String()
		}
		if n.BFn == BCmpVal {
			fn = "val" + n.Cmp.String()
		}
		return fmt.Sprintf("op %s:(%s %s %s)", n.Res, n.LCol, fn, n.RCol)
	case OpMap1:
		fn := map[UnFn]string{
			UnAtomize: "data", UnString: "string", UnNumber: "number",
			UnStringLength: "string-length", UnNot: "not", UnNeg: "neg",
			UnNameOf: "name", UnRoot: "root", UnToDouble: "to-double",
			UnNormalizeSpace: "normalize-space", UnUpperCase: "upper-case",
			UnLowerCase: "lower-case", UnRound: "round", UnFloor: "floor",
			UnCeiling: "ceiling", UnAbs: "abs",
		}[n.UFn]
		return fmt.Sprintf("map %s:%s(%s)", n.Res, fn, n.LCol)
	case OpUnion:
		return "union"
	case OpSemi:
		return "semijoin " + strings.Join(n.Cols, ",")
	case OpDiff:
		return "difference " + strings.Join(n.Cols, ",")
	case OpDistinct:
		return "distinct " + strings.Join(n.Cols, ",")
	case OpAggr:
		out := fmt.Sprintf("aggr %s:%s(%s)", n.Res, n.AFn, n.Col)
		if n.Part != "" {
			out += "/" + n.Part
		}
		return out
	case OpStep:
		return fmt.Sprintf("step %s::%s", n.Axis, n.Test)
	case OpDoc:
		return fmt.Sprintf("doc %q", n.URI)
	case OpElem:
		return "element <" + n.Name + ">"
	case OpAttr:
		return "attribute @" + n.Name
	case OpRange:
		return fmt.Sprintf("range %s..%s", n.LCol, n.RCol)
	case OpCheckCard:
		return fmt.Sprintf("checkcard %d..%d/%s", n.Min, n.Max, n.Col)
	default:
		return n.Kind.String()
	}
}

// Label returns the human-readable operator label.
func Label(n *Node) string { return label(n) }

// Print renders the DAG rooted at root as an indented tree. Shared nodes
// are printed once; later references appear as "^id". Node ids are the
// stable join key between a rendered plan and any external per-node data:
// EXPLAIN ANALYZE matches measured obs.OpStats to these "#id" prefixes.
func Print(root *Node) string { return PrintAnnotated(root, nil) }

// PrintAnnotated renders like Print, appending annotate(n) (when non-nil)
// to every node's first-occurrence line. Back-references ("^id") are not
// annotated — the stats belong to the node, which is printed once.
func PrintAnnotated(root *Node, annotate func(n *Node) string) string {
	var sb strings.Builder
	printed := make(map[*Node]bool)
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		if printed[n] {
			fmt.Fprintf(&sb, "%s^%d\n", indent, n.ID)
			return
		}
		printed[n] = true
		origin := ""
		if n.Origin != "" {
			origin = "  (" + n.Origin + ")"
		}
		par := ""
		if n.Par {
			par = " [par]"
		}
		annot := ""
		if annotate != nil {
			annot = annotate(n)
		}
		fmt.Fprintf(&sb, "%s#%d %s%s%s%s\n", indent, n.ID, label(n), par, origin, annot)
		for _, in := range n.Ins {
			rec(in, depth+1)
		}
	}
	rec(root, 0)
	return sb.String()
}

// Dot renders the DAG in Graphviz dot syntax; ρ nodes are highlighted
// (they are the sorts the paper's technique eliminates) and # nodes are
// drawn dashed.
func Dot(root *Node) string {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range Nodes(root) {
		attr := ""
		switch n.Kind {
		case OpRowNum:
			attr = ", style=filled, fillcolor=salmon"
		case OpRowID:
			attr = ", style=dashed"
		case OpStep:
			attr = ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q%s];\n", n.ID, label(n), attr)
		for _, in := range n.Ins {
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", n.ID, in.ID)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// String implements fmt.Stringer for diagnostics.
func (n *Node) String() string { return fmt.Sprintf("#%d %s", n.ID, label(n)) }
