package server

import (
	"container/list"
	"strings"
	"sync"

	exrquy "repro"
	"repro/internal/obs"
)

// Prepared-plan cache metrics (process-wide, in the Default registry like
// the engine and governor metrics, so /metrics reports them for free).
var (
	cacheHitsTotal   = obs.Default.Counter("server_plan_cache_hits_total")
	cacheMissesTotal = obs.Default.Counter("server_plan_cache_misses_total")
	cacheEvictsTotal = obs.Default.Counter("server_plan_cache_evictions_total")
	cacheInvalTotal  = obs.Default.Counter("server_plan_cache_invalidations_total")
	cacheSizeGauge   = obs.Default.Gauge("server_plan_cache_entries")
	// cacheScopedInvalTotal counts document-scoped invalidations, and
	// cacheScopedDropTotal the entries they actually dropped — the gap
	// between the two and a full flush is the win of scoping.
	cacheScopedInvalTotal = obs.Default.Counter("server_plan_cache_scoped_invalidations_total")
	cacheScopedDropTotal  = obs.Default.Counter("server_plan_cache_scoped_dropped_total")
)

// planCache is an LRU of compiled queries keyed on normalized query text
// (plus the server's engine-config fingerprint, prepended by the caller).
// The expensive part of serving a repeated query — parse → normalize →
// loop-lifting compile → optimize, the spine/join analysis of the paper —
// is reusable across requests because prepared plans are document-
// independent until execution binds the registry snapshot (see DESIGN.md);
// the cache turns the daemon's steady state into pure execution.
type planCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions, invalidations int64
	scopedInvalidations, scopedDropped     int64
}

type cacheEntry struct {
	key string
	q   *exrquy.Query
	// docs is the exact fn:doc() URI set the plan reads
	// (exrquy.Query.Documents) — the scope of invalidateDoc.
	docs []string
}

// CacheStats is the cache's /debug/stats snapshot.
type CacheStats struct {
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	// ScopedInvalidations counts invalidateDoc calls; ScopedDropped the
	// entries those calls removed (the rest of the cache survived).
	ScopedInvalidations int64 `json:"scoped_invalidations"`
	ScopedDropped       int64 `json:"scoped_dropped"`
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &planCache{cap: capacity, lru: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached plan for key, refreshing its recency.
func (c *planCache) get(key string) (*exrquy.Query, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		cacheMissesTotal.Inc()
		return nil, false
	}
	c.lru.MoveToFront(e)
	c.hits++
	cacheHitsTotal.Inc()
	return e.Value.(*cacheEntry).q, true
}

// put inserts (or refreshes) a compiled plan with the document URIs it
// reads, evicting the least recently used entry past capacity. Concurrent
// misses may compile the same query twice; last writer wins and both
// plans are valid, so no singleflight.
func (c *planCache) put(key string, q *exrquy.Query, docs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		ent := e.Value.(*cacheEntry)
		ent.q, ent.docs = q, docs
		c.lru.MoveToFront(e)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, q: q, docs: docs})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
		cacheEvictsTotal.Inc()
	}
	cacheSizeGauge.Set(int64(c.lru.Len()))
}

// invalidate flushes every entry — the conservative big hammer, kept for
// configuration-level changes where scoping has no meaning.
func (c *planCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.lru.Len()
	if n == 0 {
		c.invalidations++
		cacheInvalTotal.Inc()
		return
	}
	c.lru.Init()
	clear(c.entries)
	c.invalidations++
	cacheInvalTotal.Inc()
	cacheSizeGauge.Set(0)
}

// invalidateDoc drops exactly the entries whose plans read document name.
// Prepared plans are document-independent until execution binds the
// registry snapshot (DESIGN "Plan caching"), and the compiler only
// accepts string-literal doc() URIs, so an entry's doc set is exact and
// static: a reload of "a.xml" cannot affect a cached plan that never
// mentions it. Plans over other documents — and document-free plans —
// survive, keeping a busy multi-tenant cache warm across hot reloads.
// Returns the number of entries dropped.
func (c *planCache) invalidateDoc(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	var next *list.Element
	for e := c.lru.Front(); e != nil; e = next {
		next = e.Next()
		ent := e.Value.(*cacheEntry)
		for _, d := range ent.docs {
			if d == name {
				c.lru.Remove(e)
				delete(c.entries, ent.key)
				dropped++
				break
			}
		}
	}
	c.invalidations++
	cacheInvalTotal.Inc()
	cacheScopedInvalTotal.Inc()
	cacheScopedDropTotal.Add(int64(dropped))
	c.scopedInvalidations++
	c.scopedDropped += int64(dropped)
	cacheSizeGauge.Set(int64(c.lru.Len()))
	return dropped
}

// stats snapshots the cache.
func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:             c.lru.Len(),
		Capacity:            c.cap,
		Hits:                c.hits,
		Misses:              c.misses,
		Evictions:           c.evictions,
		Invalidations:       c.invalidations,
		ScopedInvalidations: c.scopedInvalidations,
		ScopedDropped:       c.scopedDropped,
	}
}

// normalizeQuery canonicalizes query text for cache keying: XQuery
// comments ((: ... :), nesting respected) are dropped and whitespace runs
// outside string literals collapse to one space, so reformatting a query
// cannot miss the cache. String literals are preserved byte for byte
// (whitespace inside "..." or '...' is data, and XQuery's doubled-quote
// escape "" / ” stays inside the literal), so two queries with the same
// normalization are the same query.
func normalizeQuery(src string) string {
	var b strings.Builder
	b.Grow(len(src))
	const (
		code = iota
		squote
		dquote
	)
	state := code
	depth := 0 // comment nesting; > 0 means inside (: ... :)
	pendingSpace := false
	emit := func(ch byte) {
		if pendingSpace && b.Len() > 0 {
			b.WriteByte(' ')
		}
		pendingSpace = false
		b.WriteByte(ch)
	}
	for i := 0; i < len(src); i++ {
		ch := src[i]
		if depth > 0 {
			switch {
			case ch == '(' && i+1 < len(src) && src[i+1] == ':':
				depth++
				i++
			case ch == ':' && i+1 < len(src) && src[i+1] == ')':
				depth--
				i++
				if depth == 0 {
					// A comment separates tokens the way whitespace does.
					pendingSpace = true
				}
			}
			continue
		}
		switch state {
		case code:
			switch {
			case ch == '(' && i+1 < len(src) && src[i+1] == ':':
				depth = 1
				i++
			case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
				pendingSpace = true
			case ch == '"':
				emit(ch)
				state = dquote
			case ch == '\'':
				emit(ch)
				state = squote
			default:
				emit(ch)
			}
		case dquote:
			b.WriteByte(ch)
			if ch == '"' {
				if i+1 < len(src) && src[i+1] == '"' {
					b.WriteByte('"')
					i++
				} else {
					state = code
				}
			}
		case squote:
			b.WriteByte(ch)
			if ch == '\'' {
				if i+1 < len(src) && src[i+1] == '\'' {
					b.WriteByte('\'')
					i++
				} else {
					state = code
				}
			}
		}
	}
	return b.String()
}
