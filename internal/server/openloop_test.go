package server

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"sync"
	"testing"
	"time"

	exrquy "repro"
	"repro/internal/xmarkq"
)

// TestServerOpenLoop32Clients is the acceptance scenario: 32 clients
// drive a repeated XMark query mix through the daemon. Asserted:
//
//   - every response is 200 (byte-identical to the single-shot result)
//     or 429 carrying Retry-After — nothing else;
//   - the warm prepared-plan cache hit rate exceeds 90%;
//   - graceful shutdown afterwards leaks no goroutines.
//
// Run under -race in CI; durations are kept short so tier-1 stays fast.
func TestServerOpenLoop32Clients(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const (
		factor  = 0.002
		clients = 32
		rounds  = 8 // requests per client: 32×8 = 256 over a 5-query mix
	)
	mix := []int{1, 2, 8, 9, 11}

	s := New(Config{})
	s.Engine().LoadXMark("auction.xml", factor)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	base := "http://" + s.Addr()

	// Single-shot expectations, and one warming pass so the measured
	// window runs against a warm cache (the >90% bar is about steady
	// state, not cold start).
	ref := exrquy.New()
	ref.LoadXMark("auction.xml", factor)
	want := make(map[int]string, len(mix))
	for _, id := range mix {
		res, err := ref.Query(xmarkq.Get(id).Text)
		if err != nil {
			t.Fatalf("Q%d reference: %v", id, err)
		}
		want[id], err = res.XML()
		if err != nil {
			t.Fatalf("Q%d serialize: %v", id, err)
		}
		if status, body, _ := get(t, queryURL(base, xmarkq.Get(id).Text)); status != http.StatusOK {
			t.Fatalf("Q%d warm-up: status %d: %s", id, status, body)
		}
	}
	statsBefore := s.cache.stats()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		shed     int
		mismatch int
		badCode  []int
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for r := 0; r < rounds; r++ {
				id := mix[(c+r)%len(mix)]
				u := base + "/query?q=" + url.QueryEscape(xmarkq.Get(id).Text)
				resp, err := client.Get(u)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if string(body) != want[id] {
						mu.Lock()
						mismatch++
						mu.Unlock()
					}
				case http.StatusTooManyRequests:
					mu.Lock()
					shed++
					mu.Unlock()
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("client %d: 429 without Retry-After", c)
					}
					if hint := resp.Header.Get("Retry-After"); hint != "" {
						time.Sleep(50 * time.Millisecond)
					}
				default:
					mu.Lock()
					badCode = append(badCode, resp.StatusCode)
					mu.Unlock()
				}
			}
		}(c)
	}
	wg.Wait()

	if mismatch > 0 {
		t.Errorf("%d responses differed from single-shot results", mismatch)
	}
	if len(badCode) > 0 {
		t.Errorf("unexpected statuses under load: %v", badCode)
	}
	st := s.cache.stats()
	hits := st.Hits - statsBefore.Hits
	misses := st.Misses - statsBefore.Misses
	if hits+misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
	hitRate := float64(hits) / float64(hits+misses)
	t.Logf("open loop: %d clients x %d rounds, %d shed, cache hit rate %.1f%%",
		clients, rounds, shed, 100*hitRate)
	if hitRate <= 0.90 {
		t.Errorf("warm cache hit rate %.1f%% <= 90%%", 100*hitRate)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	if gst := s.Governor().Stats(); gst.Running != 0 || gst.Queued != 0 || gst.BytesInUse != 0 {
		t.Fatalf("governor not drained: %+v", gst)
	}
	waitNoGoroutineLeak(t, baseline)
}
