package server

import (
	"fmt"
	"testing"

	exrquy "repro"
)

func TestNormalizeQuery(t *testing.T) {
	cases := []struct {
		name string
		a, b string
		same bool
	}{
		{"whitespace runs", "for  $x in\n\t(1,2)\nreturn $x", "for $x in (1,2) return $x", true},
		{"leading/trailing", "  1 + 2  ", "1 + 2", true},
		{"comment dropped", "1 (: the answer :) + 2", "1 + 2", true},
		{"nested comment", "1 (: outer (: inner :) still out :) + 2", "1 + 2", true},
		{"comment acts as separator", "div(:c:)mod", "div mod", true},
		{"string literal spaces preserved", `"a  b"`, `"a b"`, false},
		{"string literal newline preserved", "\"a\nb\"", `"a b"`, false},
		{"comment-lookalike inside string", `"(: not a comment :)"`, `""`, false},
		{"single-quoted preserved", `'x  y'`, `'x y'`, false},
		{"doubled-quote escape stays inside", `"he said ""hi  there"""`, `"he said ""hi there"""`, false},
		{"whitespace after escaped quote", `"a""b"   1`, `"a""b" 1`, true},
		{"different queries differ", "1 + 2", "1 + 3", false},
	}
	for _, tc := range cases {
		na, nb := normalizeQuery(tc.a), normalizeQuery(tc.b)
		if (na == nb) != tc.same {
			t.Errorf("%s: normalize(%q)=%q vs normalize(%q)=%q, want same=%v",
				tc.name, tc.a, na, tc.b, nb, tc.same)
		}
	}
}

// TestNormalizeQueryPreservesMeaning compiles and runs a query and its
// normalization, pinning that normalization never changes results (the
// cache serves the plan compiled from whichever text arrived first).
func TestNormalizeQueryPreservesMeaning(t *testing.T) {
	eng := exrquy.New()
	queries := []string{
		"for  $x in\n\t(1, 2, 3)\n(: sum :)\nreturn $x + 1",
		`string-length("a  b (: x :) c")`,
		"concat('p  q',  \"r\ns\")",
	}
	for _, q := range queries {
		want, err := eng.Query(q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		got, err := eng.Query(normalizeQuery(q))
		if err != nil {
			t.Fatalf("normalized %q: %v", normalizeQuery(q), err)
		}
		wx, _ := want.XML()
		gx, _ := got.XML()
		if wx != gx {
			t.Errorf("normalization changed meaning of %q: %q vs %q", q, wx, gx)
		}
	}
}

// TestCacheKeyConfigFingerprint pins that every engine-config knob that
// changes what a prepared plan *is* — parallelism and bytecode
// compilation — lands in the plan-cache key, so e.g. a -compile=off
// debugging session can never serve a stale compiled entry (or vice
// versa), while equivalent query texts still collapse to one entry.
func TestCacheKeyConfigFingerprint(t *testing.T) {
	key := func(cfg Config, q string) string {
		return (&Server{cfg: cfg}).cacheKey(q)
	}
	const q = "1 + 2"
	base := Config{}
	if a, b := key(base, q), key(Config{NoCompile: true}, q); a == b {
		t.Errorf("compiled and uncompiled configs share cache key %q", a)
	}
	if a, b := key(base, q), key(Config{Parallelism: 4}, q); a == b {
		t.Errorf("serial and parallel configs share cache key %q", a)
	}
	if a, b := key(Config{Parallelism: 4}, q), key(Config{Parallelism: 4, NoCompile: true}, q); a == b {
		t.Errorf("parallel compiled and uncompiled configs share cache key %q", a)
	}
	if a, b := key(base, q), key(base, "1  (: same :)  + 2"); a != b {
		t.Errorf("equivalent texts under one config got distinct keys %q vs %q", a, b)
	}
}

func TestPlanCacheLRU(t *testing.T) {
	eng := exrquy.New()
	mk := func(i int) *exrquy.Query {
		q, err := eng.Compile(fmt.Sprintf("%d + 0", i))
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return q
	}
	c := newPlanCache(2)
	c.put("a", mk(1), nil)
	c.put("b", mk(2), nil)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// a is now most recent; inserting c must evict b.
	c.put("c", mk(3), nil)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries, cap 2", st)
	}

	c.invalidate()
	if _, ok := c.get("a"); ok {
		t.Fatal("a survived invalidation")
	}
	st = c.stats()
	if st.Entries != 0 || st.Invalidations != 1 {
		t.Fatalf("stats after invalidate = %+v", st)
	}
}

// TestPlanCacheScopedInvalidation pins the scoped-invalidation contract:
// reloading one document drops exactly the cached plans that read it —
// plans over other documents and document-free plans stay cached.
func TestPlanCacheScopedInvalidation(t *testing.T) {
	eng := exrquy.New()
	mk := func(i int) *exrquy.Query {
		q, err := eng.Compile(fmt.Sprintf("%d + 0", i))
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return q
	}
	c := newPlanCache(8)
	c.put("reads-a", mk(1), []string{"a.xml"})
	c.put("reads-b", mk(2), []string{"b.xml"})
	c.put("reads-ab", mk(3), []string{"a.xml", "b.xml"})
	c.put("pure", mk(4), nil)

	if dropped := c.invalidateDoc("a.xml"); dropped != 2 {
		t.Fatalf("invalidateDoc(a.xml) dropped %d entries, want 2", dropped)
	}
	for key, want := range map[string]bool{
		"reads-a": false, "reads-ab": false, // read a.xml → stale
		"reads-b": true, "pure": true, // untouched → warm
	} {
		if _, ok := c.get(key); ok != want {
			t.Errorf("after invalidateDoc(a.xml): get(%q) = %v, want %v", key, ok, want)
		}
	}
	st := c.stats()
	if st.ScopedInvalidations != 1 || st.ScopedDropped != 2 {
		t.Fatalf("scoped stats = %+v, want 1 scoped invalidation dropping 2", st)
	}

	// A reload of a document no cached plan reads drops nothing.
	if dropped := c.invalidateDoc("zzz.xml"); dropped != 0 {
		t.Fatalf("invalidateDoc(zzz.xml) dropped %d entries, want 0", dropped)
	}
	if _, ok := c.get("pure"); !ok {
		t.Fatal("document-free plan lost to an unrelated invalidation")
	}
}
