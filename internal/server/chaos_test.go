package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	exrquy "repro"
	"repro/internal/client"
	"repro/internal/resilience"
	"repro/internal/xmarkq"
)

// TestChaosSoak is the seeded chaos drill: 32 concurrent retrying
// clients hammer a fault-armed daemon (forced 500s, connection resets,
// truncated bodies, injected latency) and the run must end clean —
// every 200 byte-identical to single-shot execution, the governor's
// ledger drained back to zero, and no goroutine leaked across shutdown.
func TestChaosSoak(t *testing.T) {
	const (
		factor    = 0.002
		workers   = 32
		perWorker = 12
	)
	baseline := runtime.NumGoroutine()

	plan := &resilience.HTTPFaultPlan{
		Seed:          11,
		Err500Every:   9,
		Err503Every:   15,
		ResetEvery:    21,
		TruncateEvery: 25,
		TruncateBytes: 32,
		LatencyEvery:  6,
		Latency:       time.Millisecond,
	}
	s := New(Config{
		Faults:          plan,
		WatchdogTimeout: 5 * time.Second, // armed, but nothing should wedge
	})
	s.Engine().LoadXMark("auction.xml", factor)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve() }()
	base := "http://" + s.Addr()

	// Single-shot reference results for the query mix.
	ref := exrquy.New()
	ref.LoadXMark("auction.xml", factor)
	mix := []int{1, 2, 8, 11, 13, 17}
	want := make(map[int]string, len(mix))
	for _, id := range mix {
		res, err := ref.Query(xmarkq.Get(id).Text)
		if err != nil {
			t.Fatalf("reference Q%d: %v", id, err)
		}
		xml, err := res.XML()
		if err != nil {
			t.Fatalf("serialize Q%d: %v", id, err)
		}
		want[id] = xml
	}

	c := client.New(client.Config{
		BaseURL:     base,
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		RetryBudget: 4,
		Hedge:       true,
		HedgeDelay:  5 * time.Millisecond,
		Seed:        7,
	})
	var (
		ok        atomic.Int64
		exhausted atomic.Int64 // retries ran out; allowed, just counted
		mismatch  atomic.Int64
		wg        sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := mix[(w+i)%len(mix)]
				resp, err := c.Query(context.Background(), xmarkq.Get(id).Text)
				if err != nil || resp.Status != http.StatusOK {
					exhausted.Add(1)
					continue
				}
				ok.Add(1)
				if string(resp.Body) != want[id] {
					mismatch.Add(1)
					t.Errorf("worker %d Q%d: 200 body differs from single-shot result", w, id)
				}
			}
		}(w)
	}
	wg.Wait()

	if mismatch.Load() != 0 {
		t.Fatalf("%d of %d successful responses were not byte-identical", mismatch.Load(), ok.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded; the soak exercised nothing")
	}
	if plan.Counted() == 0 {
		t.Fatal("fault plan never fired")
	}

	// Drain: admission closes, in-flight queries finish, ledger returns
	// to zero and the process sheds every request-scoped goroutine.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
	if used := s.Governor().Stats().BytesInUse; used != 0 {
		t.Fatalf("ledger still holds %d bytes after drain", used)
	}
	waitNoGoroutineLeak(t, baseline)

	st := c.Stats()
	t.Logf("soak: %d ok, %d gave up; faults injected %d; client %+v",
		ok.Load(), exhausted.Load(), plan.Counted(), st)
	if st.Retries == 0 {
		t.Fatal("client never retried under an armed fault plan")
	}
}
