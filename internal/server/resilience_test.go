package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
)

// getWithKey issues a GET with an API key and returns status, body,
// headers.
func getWithKey(t *testing.T, rawURL, key string) (int, string, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// decodeErrorBody parses the server's JSON error envelope.
func decodeErrorBody(t *testing.T, body string) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v\n%s", err, body)
	}
	return eb
}

// TestRateLimitIsolation pins the per-client token bucket: one client
// exceeding its budget gets 429 with an accurate Retry-After while a
// second client's traffic is untouched.
func TestRateLimitIsolation(t *testing.T) {
	_, base := startServer(t, Config{
		RateQPS:   5,
		RateBurst: 2,
		Clients: map[string]Client{
			"ka": {Name: "alice"},
			"kb": {Name: "bob"},
		},
	})
	u := queryURL(base, "1+1")

	// Alice's burst of 2 passes; the third is over budget.
	for i := 0; i < 2; i++ {
		if status, body, _ := getWithKey(t, u, "ka"); status != http.StatusOK {
			t.Fatalf("alice burst request %d: status %d: %s", i, status, body)
		}
	}
	status, body, hdr := getWithKey(t, u, "ka")
	if status != http.StatusTooManyRequests {
		t.Fatalf("alice over-burst: status %d, want 429: %s", status, body)
	}
	eb := decodeErrorBody(t, body)
	if eb.Code != "rate_limited" {
		t.Fatalf("429 code = %q, want rate_limited (distinct from overloaded)", eb.Code)
	}
	// At 5 QPS with an empty bucket the next token is ~200ms away; the
	// hint must say so accurately (not zero, not a default second).
	if eb.RetryAfterMS <= 0 || eb.RetryAfterMS > 250 {
		t.Fatalf("retry_after_ms = %d, want ~200 (1 token at 5 QPS)", eb.RetryAfterMS)
	}
	// The header is the same hint in whole seconds, rounded up.
	if secs, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After header = %q, want >= 1s", hdr.Get("Retry-After"))
	}

	// Bob is a different bucket: while Alice is limited, Bob proceeds.
	if status, body, _ := getWithKey(t, u, "kb"); status != http.StatusOK {
		t.Fatalf("bob during alice's limit: status %d: %s", status, body)
	}

	// After the hinted wait, Alice's bucket has refilled a token.
	time.Sleep(time.Duration(eb.RetryAfterMS)*time.Millisecond + 100*time.Millisecond)
	if status, body, _ := getWithKey(t, u, "ka"); status != http.StatusOK {
		t.Fatalf("alice after waiting the hint: status %d: %s", status, body)
	}
}

// TestRetryAfterHeaderBodyAgreement pins satellite (b) at the HTTP
// layer: a real 429's Retry-After header and retry_after_ms body field
// describe the same hint (header = body rounded up to whole seconds).
func TestRetryAfterHeaderBodyAgreement(t *testing.T) {
	_, base := startServer(t, Config{
		RateQPS:   0.5, // one token every 2s: the hint crosses the 1s boundary
		RateBurst: 1,
	})
	u := queryURL(base, "1+1")
	if status, body, _ := getWithKey(t, u, ""); status != http.StatusOK {
		t.Fatalf("burst request: status %d: %s", status, body)
	}
	status, body, hdr := getWithKey(t, u, "")
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", status, body)
	}
	eb := decodeErrorBody(t, body)
	if eb.RetryAfterMS <= 0 {
		t.Fatal("429 body carries no retry_after_ms")
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After header = %q, not an integer", hdr.Get("Retry-After"))
	}
	wantSecs := (eb.RetryAfterMS + 999) / 1000
	if int64(secs) != wantSecs {
		t.Fatalf("header %ds disagrees with body %dms (want ceil = %ds)", secs, eb.RetryAfterMS, wantSecs)
	}
}

// TestWatchdogKillsWedgedQuery wedges a query inside an operator kernel
// (no poll points → no heartbeat) and asserts the watchdog cancels it
// within twice the threshold, surfacing 503 watchdog_killed.
func TestWatchdogKillsWedgedQuery(t *testing.T) {
	const threshold = 100 * time.Millisecond
	s, base := startServer(t, Config{WatchdogTimeout: threshold})
	s.Engine().LoadDocumentString("t.xml", "<r><x/><x/><x/></r>")

	release := make(chan struct{})
	var wedged atomic.Bool
	engine.EvalHook = func(n *algebra.Node) {
		if wedged.CompareAndSwap(false, true) {
			<-release
		}
	}
	defer func() { engine.EvalHook = nil }()

	start := time.Now()
	type answer struct {
		status int
		body   string
		err    error
	}
	respCh := make(chan answer, 1)
	go func() {
		resp, err := http.Get(queryURL(base, `doc("t.xml")//x`))
		if err != nil {
			respCh <- answer{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		respCh <- answer{status: resp.StatusCode, body: string(body), err: err}
	}()

	// The kill is observable before the wedged handler returns: poll the
	// stats endpoint for the watchdog counter.
	deadline := time.Now().Add(5 * time.Second)
	var killedAt time.Duration
	for {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never killed the wedged query")
		}
		_, body, _ := getWithKey(t, base+"/debug/stats", "")
		var st statsBody
		if err := json.Unmarshal([]byte(body), &st); err == nil && st.Resilience.WatchdogKills >= 1 {
			killedAt = time.Since(start)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if killedAt < threshold {
		t.Fatalf("kill observed after %v, before one full threshold %v of silence", killedAt, threshold)
	}
	// Mechanism bound is 2×threshold after the last heartbeat; allow
	// generous scheduling slack on top for loaded CI machines.
	if killedAt > 2*threshold+500*time.Millisecond {
		t.Fatalf("kill observed after %v, want within ~2×%v", killedAt, threshold)
	}

	// Release the kernel: the handler finishes and must report the kill
	// as a retryable 503, not a client-fault 499.
	close(release)
	r := <-respCh
	if r.err != nil {
		t.Fatalf("wedged query request: %v", r.err)
	}
	if r.status != http.StatusServiceUnavailable {
		t.Fatalf("wedged query answered status %d: %s", r.status, r.body)
	}
	if eb := decodeErrorBody(t, r.body); eb.Code != "watchdog_killed" {
		t.Fatalf("wedged query code = %q, want watchdog_killed", eb.Code)
	}
}

// TestBreakerServerLifecycle drives a client's circuit through
// closed → open → half-open → closed against the real serving stack,
// with a second client proving per-client isolation.
func TestBreakerServerLifecycle(t *testing.T) {
	const cooldown = 150 * time.Millisecond
	_, base := startServer(t, Config{
		BreakerFailures: 2,
		BreakerCooldown: cooldown,
		Clients: map[string]Client{
			"ka": {Name: "alice"},
			"kb": {Name: "bob"},
		},
	})
	u := queryURL(base, "1+1")

	// Every kernel evaluation panics → qerr.ErrInternal → 500, which the
	// breaker counts as a serving-path failure.
	engine.EvalHook = func(n *algebra.Node) { panic("injected kernel fault") }
	hooked := true
	defer func() {
		if hooked {
			engine.EvalHook = nil
		}
	}()

	for i := 0; i < 2; i++ {
		if status, body, _ := getWithKey(t, u, "ka"); status != http.StatusInternalServerError {
			t.Fatalf("alice failure %d: status %d, want 500: %s", i, status, body)
		}
	}
	// Two consecutive failures tripped alice's circuit: fail fast now.
	status, body, hdr := getWithKey(t, u, "ka")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("alice with open breaker: status %d, want 503: %s", status, body)
	}
	eb := decodeErrorBody(t, body)
	if eb.Code != "breaker_open" {
		t.Fatalf("open-breaker code = %q, want breaker_open", eb.Code)
	}
	if eb.RetryAfterMS <= 0 || hdr.Get("Retry-After") == "" {
		t.Fatalf("open-breaker answer lacks a Retry-After hint: %+v", eb)
	}
	// Bob's circuit is separate: he still reaches the (faulty) engine.
	if status, _, _ := getWithKey(t, u, "kb"); status != http.StatusInternalServerError {
		t.Fatalf("bob during alice's open circuit: status %d, want 500 (not broken)", status)
	}
	// The open circuit is visible in /debug/stats.
	_, sbody, _ := getWithKey(t, base+"/debug/stats", "ka")
	var st statsBody
	if err := json.Unmarshal([]byte(sbody), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Resilience.Breakers["ka"] != "open" {
		t.Fatalf("stats breakers = %v, want ka open", st.Resilience.Breakers)
	}

	// Heal the engine, wait out the cooldown: the next request is the
	// half-open probe, its success closes the circuit.
	engine.EvalHook = nil
	hooked = false
	time.Sleep(cooldown + 50*time.Millisecond)
	if status, body, _ := getWithKey(t, u, "ka"); status != http.StatusOK {
		t.Fatalf("alice half-open probe: status %d: %s", status, body)
	}
	if status, body, _ := getWithKey(t, u, "ka"); status != http.StatusOK {
		t.Fatalf("alice after recovery: status %d: %s", status, body)
	}
}
