package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// docWithCount builds a document whose x-child count encodes its version.
func docWithCount(n int) string {
	return "<r>" + strings.Repeat("<x/>", n) + "</r>"
}

// TestServerConcurrentHotReload reloads a document continuously while
// query traffic runs against it (run under -race in CI). Invariants:
//
//  1. No stale-plan results: every response is the count of one of the
//     two document versions that ever existed — a prepared plan compiled
//     before a reload still binds the registry snapshot of its own
//     execution, never a half-swapped or phantom state.
//  2. After the writers stop, the very next query sees the final version
//     (reload invalidated the prepared-plan cache).
//  3. The whole exercise leaks no goroutines through shutdown.
func TestServerConcurrentHotReload(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{})
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	base := "http://" + s.Addr()

	const (
		countA  = 3
		countB  = 7
		readers = 8
		writers = 2
	)
	put := func(content string) error {
		req, err := http.NewRequest(http.MethodPut, base+"/documents/live.xml", strings.NewReader(content))
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("PUT status %d", resp.StatusCode)
		}
		return nil
	}
	if err := put(docWithCount(countA)); err != nil {
		t.Fatalf("initial upload: %v", err)
	}

	query := base + "/query?q=" + "count(doc(%22live.xml%22)/r/x)"
	var (
		stop     atomic.Bool
		queries  atomic.Int64
		reloads  atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, fmt.Sprintf(format, args...))
	}

	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(query)
				if err != nil {
					fail("reader GET: %v", err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					fail("reader read: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					fail("reader status %d: %s", resp.StatusCode, body)
					return
				}
				got := string(body)
				if got != fmt.Sprint(countA) && got != fmt.Sprint(countB) {
					fail("stale or corrupt result %q, want %d or %d", got, countA, countB)
					return
				}
				queries.Add(1)
			}
		}()
	}
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			version := i % 2
			for !stop.Load() {
				content := docWithCount(countA)
				if version%2 == 1 {
					content = docWithCount(countB)
				}
				if err := put(content); err != nil {
					fail("writer: %v", err)
					return
				}
				version++
				reloads.Add(1)
			}
		}(i)
	}

	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d failures under reload traffic; first: %s", failures.Load(), firstErr.Load())
	}
	if queries.Load() == 0 || reloads.Load() < 4 {
		t.Fatalf("not enough interleaving: %d queries, %d reloads", queries.Load(), reloads.Load())
	}
	t.Logf("hot reload soak: %d queries interleaved with %d reloads", queries.Load(), reloads.Load())

	// Settle on a final version; the first query after the last reload
	// must see it (the reload flushed the plan cache, and even a cached
	// plan would bind the fresh registry snapshot).
	if err := put(docWithCount(countB)); err != nil {
		t.Fatalf("final upload: %v", err)
	}
	resp, err := http.Get(query)
	if err != nil {
		t.Fatalf("final GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != fmt.Sprint(countB) {
		t.Fatalf("final count = %q, want %d", body, countB)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	waitNoGoroutineLeak(t, baseline)
}
