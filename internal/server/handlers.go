package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	exrquy "repro"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/resilience"
)

// routes wires the endpoint table (Go 1.22 method patterns). Only the
// /query route passes through the fault-injection middleware (a no-op on
// the nil plan of a production config): chaos drills target the query
// path, while health checks and document management stay truthful.
func (s *Server) routes() {
	query := http.HandlerFunc(s.handleQuery)
	s.mux.Handle("GET /query", s.cfg.Faults.Wrap(query))
	s.mux.Handle("POST /query", s.cfg.Faults.Wrap(query))
	s.mux.HandleFunc("PUT /documents/{name}", s.handlePutDocument)
	s.mux.HandleFunc("DELETE /documents/{name}", s.handleDeleteDocument)
	s.mux.HandleFunc("GET /documents", s.handleListDocuments)
	s.storeRoutes()
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// errorBody is the JSON error envelope every non-2xx answer carries.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	// Code is the machine-readable error class (qerr.Code plus the
	// serving layer's own "draining", "breaker_open", "watchdog_killed",
	// "unauthorized"). Clients branch on it instead of parsing Error —
	// in particular it is how a retrying client tells the two 429 classes
	// ("rate_limited" vs "overloaded") apart.
	Code         string `json:"code,omitempty"`
	Phase        string `json:"phase,omitempty"`
	Line         int    `json:"line,omitempty"`
	Col          int    `json:"col,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// writeError maps err through qerr.HTTPStatus and renders the envelope.
// Overload and rate-limit answers carry Retry-After (whole seconds,
// rounded up, so a 100ms hint still tells the client to back off a beat)
// and the exact hint as retry_after_ms in the body.
func writeError(w http.ResponseWriter, err error) {
	status := qerr.HTTPStatus(err)
	body := errorBody{Error: err.Error(), Status: status, Code: qerr.Code(err), Phase: qerr.PhaseOf(err)}
	if line, col, ok := qerr.PositionOf(err); ok {
		body.Line, body.Col = line, col
	}
	if hint, ok := qerr.RetryAfterOf(err); ok {
		body.RetryAfterMS = hint.Milliseconds()
		secs := int64((hint + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, body)
	requestErrorsTotal.Inc()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// writeDraining answers a request that arrived after Shutdown began:
// admission is closed, the client should retry against a peer (or after
// the restart). 503 is the serving layer's own status — the taxonomy
// never produces it (see qerr.HTTPStatus).
func writeDraining(w http.ResponseWriter) {
	drainRejectsTotal.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error:        "server is draining for shutdown",
		Status:       http.StatusServiceUnavailable,
		Code:         "draining",
		RetryAfterMS: 1000,
	})
}

func writeUnauthorized(w http.ResponseWriter) {
	w.Header().Set("WWW-Authenticate", `Bearer realm="exrquyd"`)
	writeJSON(w, http.StatusUnauthorized, errorBody{
		Error:  "missing or unknown API key",
		Status: http.StatusUnauthorized,
		Code:   "unauthorized",
	})
}

// writeBreakerOpen answers a request rejected by the client's tripped
// circuit breaker: fail fast with the cooldown remainder as the hint.
// 503 rather than 429 — the problem is the serving path for this client,
// not the client's request rate.
func writeBreakerOpen(w http.ResponseWriter, clientName string, retryAfter time.Duration) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, http.StatusServiceUnavailable, errorBody{
		Error:        fmt.Sprintf("circuit breaker open for client %q; backing off", clientName),
		Status:       http.StatusServiceUnavailable,
		Code:         "breaker_open",
		RetryAfterMS: retryAfter.Milliseconds(),
	})
	requestErrorsTotal.Inc()
}

// queryText extracts the query from ?q= (GET) or the request body (POST),
// bounded by Config.MaxQueryBytes.
func (s *Server) queryText(r *http.Request) (string, error) {
	if r.Method == http.MethodGet {
		q := r.URL.Query().Get("q")
		if q == "" {
			return "", fmt.Errorf("missing q parameter")
		}
		if int64(len(q)) > s.cfg.MaxQueryBytes {
			return "", fmt.Errorf("query text exceeds %d bytes", s.cfg.MaxQueryBytes)
		}
		return q, nil
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxQueryBytes+1))
	if err != nil {
		return "", fmt.Errorf("read query body: %w", err)
	}
	if int64(len(body)) > s.cfg.MaxQueryBytes {
		return "", fmt.Errorf("query text exceeds %d bytes", s.cfg.MaxQueryBytes)
	}
	if len(strings.TrimSpace(string(body))) == 0 {
		return "", fmt.Errorf("empty query body")
	}
	return string(body), nil
}

// deadlineFor resolves the per-request deadline: ?timeout= (a Go
// duration, capped at Config.MaxTimeout) or the server default.
func (s *Server) deadlineFor(r *http.Request) (time.Duration, error) {
	spec := r.URL.Query().Get("timeout")
	if spec == "" {
		return s.cfg.Timeout, nil
	}
	d, err := time.ParseDuration(spec)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q (want a positive Go duration, e.g. 500ms)", spec)
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// plan resolves the request's compiled query through the prepared-plan
// cache; hit reports whether compilation was skipped. A cached entry
// carries the bytecode program (unless Config.NoCompile), so a warm hit
// skips parse→normalize→compile→optimize→flatten entirely and goes
// straight to executing the register program.
func (s *Server) plan(query string) (q *exrquy.Query, hit bool, err error) {
	key := s.cacheKey(query)
	if q, ok := s.cache.get(key); ok {
		return q, true, nil
	}
	q, err = s.eng.Compile(query)
	if err != nil {
		return nil, false, err
	}
	s.cache.put(key, q, q.Documents())
	return q, false, nil
}

// cacheKey prefixes the normalized query text with the engine-config
// fingerprint: a cache entry is only reusable for the exact pipeline
// configuration that compiled it (one Server has one configuration, but
// the key says so rather than assumes so).
func (s *Server) cacheKey(query string) string {
	return fmt.Sprintf("par=%d,compile=%t\x00%s", s.cfg.Parallelism, !s.cfg.NoCompile, normalizeQuery(query))
}

// finishQuery records the request's outcome with the client's circuit
// breaker and, when err is non-nil, writes the error response. The
// breaker's definition of failure is "the serving path broke" — watchdog
// kills and internal errors — never client mistakes (parse errors,
// quota cutoffs), which say nothing about the server's health. A
// watchdog kill surfaces as 503 "watchdog_killed" rather than the 499
// its underlying cancellation would map to: the client did nothing
// wrong and should retry (order indifference makes the retry safe).
// Reports whether a response was written.
func (s *Server) finishQuery(w http.ResponseWriter, key string, err error) bool {
	stuck := resilience.IsStuck(err)
	s.breakers.Record(key, stuck || errors.Is(err, qerr.ErrInternal))
	if err == nil {
		return false
	}
	if stuck {
		watchdogRejects.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error:        err.Error(),
			Status:       http.StatusServiceUnavailable,
			Code:         "watchdog_killed",
			Phase:        qerr.PhaseOf(err),
			RetryAfterMS: 1000,
		})
		requestErrorsTotal.Inc()
		return true
	}
	writeError(w, err)
	return true
}

// handleQuery serves GET /query?q= and POST /query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeDraining(w)
		return
	}
	client, key, ok := s.clientFor(r)
	if !ok {
		writeUnauthorized(w)
		return
	}
	// Resilience gates, cheapest first and both per-client: the token
	// bucket answers "is this client too fast", the breaker "is this
	// client's serving path broken". Governor admission ("is the process
	// too busy") still runs inside ExecuteContext — the layers compose.
	if allowed, retryAfter := s.limiter.Allow(key, s.rateFor(client)); !allowed {
		writeError(w, qerr.RateLimited(retryAfter, "client %q over rate limit: %w", client.Name, qerr.ErrRateLimited))
		return
	}
	if allowed, retryAfter := s.breakers.Allow(key); !allowed {
		writeBreakerOpen(w, client.Name, retryAfter)
		return
	}
	requestsTotal.Inc()
	inflightGauge.Add(1)
	start := time.Now()
	defer func() {
		inflightGauge.Add(-1)
		requestNanos.Observe(time.Since(start).Nanoseconds())
	}()

	query, err := s.queryText(r)
	if err != nil {
		writeError(w, qerr.New(qerr.ErrParse, "request", err))
		return
	}
	deadline, err := s.deadlineFor(r)
	if err != nil {
		writeError(w, qerr.New(qerr.ErrParse, "request", err))
		return
	}

	q, hit, err := s.plan(query)
	if err != nil {
		writeError(w, err)
		return
	}

	// r.Context() cancels when the client disconnects, so an abandoned
	// request stops consuming engine slots mid-flight (→ 499 internally).
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	if client.QueryBytes > 0 {
		ctx = exrquy.WithQuotaContext(ctx, client.QueryBytes)
	}
	// The watchdog wraps the governed execution: the probe's heartbeat
	// counter rides the context down to the engine's poll points (and the
	// governor's queue wait), and a query silent past the threshold is
	// cancelled with ErrStuck as the cause.
	ctx, probe := s.watchdog.Watch(ctx)
	defer probe.Close()

	cacheHdr := "miss"
	if hit {
		cacheHdr = "hit"
	}
	if r.URL.Query().Get("analyze") == "1" {
		res, text, err := q.AnalyzeContext(ctx)
		if s.finishQuery(w, key, err) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Query-Cache", cacheHdr)
		w.Header().Set("X-Query-Elapsed", res.Elapsed().String())
		io.WriteString(w, text) //nolint:errcheck
		return
	}
	res, err := q.ExecuteContext(ctx)
	if s.finishQuery(w, key, err) {
		return
	}
	xml, err := res.XML()
	if err != nil {
		writeError(w, qerr.New(qerr.ErrInternal, "serialize", err))
		return
	}
	w.Header().Set("Content-Type", "application/xml; charset=utf-8")
	w.Header().Set("X-Query-Cache", cacheHdr)
	w.Header().Set("X-Query-Elapsed", res.Elapsed().String())
	if res.Degraded() {
		w.Header().Set("X-Query-Degraded", "1")
	}
	io.WriteString(w, xml) //nolint:errcheck
}

// documentInfo is one entry of GET /documents and the PUT response.
type documentInfo struct {
	Name     string `json:"name"`
	Nodes    int    `json:"nodes"`
	Elements int    `json:"elements"`
	MaxDepth int    `json:"max_depth"`
}

func (s *Server) documentInfo(name string) (documentInfo, error) {
	st, err := s.eng.DocumentStats(name)
	if err != nil {
		return documentInfo{}, err
	}
	return documentInfo{Name: name, Nodes: st.Nodes, Elements: st.Elements, MaxDepth: st.MaxDepth}, nil
}

// handlePutDocument uploads or hot-reloads a document. The new fragment
// is parsed fully before the registry entry swaps, so concurrent queries
// see either the old or the new document, never a half-parsed one; the
// prepared-plan cache is invalidated after the swap.
func (s *Server) handlePutDocument(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeDraining(w)
		return
	}
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	name := r.PathValue("name")
	if name == "" {
		writeError(w, qerr.Newf(qerr.ErrParse, "request", "empty document name"))
		return
	}
	existed := false
	for _, d := range s.eng.Documents() {
		if d == name {
			existed = true
			break
		}
	}
	// The parser's own byte guard fires first (ErrLimit → 413) with the
	// HTTP-layer cap one byte looser as the backstop.
	lim := exrquy.DefaultDocumentLimits()
	lim.MaxBytes = s.cfg.MaxDocBytes
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxDocBytes+1)
	if err := s.eng.LoadDocumentLimited(name, body, lim); err != nil {
		writeError(w, err)
		return
	}
	// Scoped invalidation: only plans that read this document are stale
	// (doc() URIs are static, so the scope is exact); the rest of the
	// cache stays warm across the reload.
	s.cache.invalidateDoc(name)
	docReloadsTotal.Inc()
	info, err := s.documentInfo(name)
	if err != nil {
		writeError(w, qerr.New(qerr.ErrInternal, "reload", err))
		return
	}
	status := http.StatusCreated
	if existed {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// handleDeleteDocument unregisters a document; in-flight queries that
// snapshotted the registry before the delete finish against the old view.
func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeDraining(w)
		return
	}
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	name := r.PathValue("name")
	if !s.eng.RemoveDocument(name) {
		writeJSON(w, http.StatusNotFound, errorBody{
			Error:  fmt.Sprintf("unknown document %q", name),
			Status: http.StatusNotFound,
		})
		return
	}
	s.cache.invalidateDoc(name)
	docDeletesTotal.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListDocuments(w http.ResponseWriter, r *http.Request) {
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	names := s.eng.Documents()
	out := make([]documentInfo, 0, len(names))
	for _, n := range names {
		if info, err := s.documentInfo(n); err == nil {
			out = append(out, info)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleMetrics renders the process-wide obs registry as "name value"
// text — engine, governor, cache and request families together.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	obs.Default.Write(w) //nolint:errcheck
}

// resilienceStats is the /debug/stats resilience section.
type resilienceStats struct {
	// WatchdogKills counts queries cancelled for heartbeat silence.
	WatchdogKills int64 `json:"watchdog_kills"`
	// Breakers maps client keys to non-closed circuit states
	// ("open"/"half-open"); empty when all circuits are closed.
	Breakers map[string]string `json:"breakers,omitempty"`
}

// statsBody is GET /debug/stats: a structured snapshot of the daemon.
type statsBody struct {
	UptimeMS   int64                `json:"uptime_ms"`
	Draining   bool                 `json:"draining"`
	Inflight   int64                `json:"inflight"`
	Documents  []documentInfo       `json:"documents"`
	Governor   exrquy.GovernorStats `json:"governor"`
	Cache      CacheStats           `json:"cache"`
	Resilience resilienceStats      `json:"resilience"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	names := s.eng.Documents()
	docs := make([]documentInfo, 0, len(names))
	for _, n := range names {
		if info, err := s.documentInfo(n); err == nil {
			docs = append(docs, info)
		}
	}
	writeJSON(w, http.StatusOK, statsBody{
		UptimeMS:  time.Since(s.started).Milliseconds(),
		Draining:  s.draining.Load(),
		Inflight:  inflightGauge.Load(),
		Documents: docs,
		Governor:  s.gov.Stats(),
		Cache:     s.cache.stats(),
		Resilience: resilienceStats{
			WatchdogKills: s.watchdog.Kills(),
			Breakers:      s.breakers.States(),
		},
	})
}

// handleHealthz answers 200 while serving, 503 once draining — the shape
// load balancers expect for connection draining.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n") //nolint:errcheck
		return
	}
	io.WriteString(w, "ok\n") //nolint:errcheck
}
