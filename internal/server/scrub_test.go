package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/xmark"
)

// TestScrubEndpoint drives the operator repair path over HTTP: attach a
// replicated store, corrupt a standby replica on disk, POST
// /stores/scrub, and the response reports the quarantine and the
// re-replication the scrubber performed.
func TestScrubEndpoint(t *testing.T) {
	frag := xmark.Generate(xmark.Config{Factor: 0.001})
	dirs := []string{t.TempDir(), t.TempDir()}
	if err := store.WriteDocOpts(dirs, "auction.xml", frag, store.WriteOptions{Replicas: 2}); err != nil {
		t.Fatalf("write store: %v", err)
	}

	_, base := startServer(t, Config{})
	body := fmt.Sprintf(`{"dirs":[%q,%q]}`, dirs[0], dirs[1])
	resp, err := http.Post(base+"/stores", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("attach status %d, want 201", resp.StatusCode)
	}

	// Flip a byte in part 0's standby replica (active copy is in dirs[0]).
	standby := filepath.Join(dirs[1], "auction.xml.part000.xrq")
	fi, err := os.Stat(standby)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(standby, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], fi.Size()-8); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{b[0] ^ 0xff}, fi.Size()-8); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A malformed pacing parameter is the request's fault.
	resp, err = http.Post(base+"/stores/scrub?bps=nope", "application/json", nil)
	if err != nil {
		t.Fatalf("scrub bad bps: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ?bps= status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(base+"/stores/scrub", "application/json", nil)
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub status %d, want 200", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]store.ScrubStats
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("scrub response %q: %v", raw, err)
	}
	if len(stats) != 1 {
		t.Fatalf("scrub stats for %d mounts, want 1: %s", len(stats), raw)
	}
	for _, st := range stats {
		if st.Errors < 1 || st.Quarantined < 1 || st.Rereplicated < 1 {
			t.Fatalf("scrub missed the corrupt standby: %+v", st)
		}
	}
	if _, err := os.Stat(standby + ".quarantine"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(standby); err != nil {
		t.Fatalf("re-replicated standby missing: %v", err)
	}

	// The repaired store still serves.
	status, body2, _ := get(t, queryURL(base, `count(doc("auction.xml")//item)`))
	if status != http.StatusOK {
		t.Fatalf("query after scrub: %d %s", status, body2)
	}
}
