package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Client is one authenticated API principal, mapped onto the governor:
// every query the client runs draws its ledger account with the client's
// QueryBytes quota (via governor.WithQuota on the request context), so
// per-client memory isolation rides the same shared ledger as everything
// else in the process.
type Client struct {
	// Name labels the client in stats and logs.
	Name string `json:"name"`
	// QueryBytes is the per-query ledger quota for this client's queries;
	// 0 inherits the governor's configured default.
	QueryBytes int64 `json:"query_bytes,omitempty"`
}

// anonymous is the principal used when no API keys are configured (open
// access, e.g. local development and the CI smoke job).
var anonymous = Client{Name: "anonymous"}

// clientFor authenticates a request against the configured key table.
// The key travels as "Authorization: Bearer <key>", an "X-API-Key"
// header, or a "key" query parameter (in that precedence). With no keys
// configured every request is the anonymous client.
func (s *Server) clientFor(r *http.Request) (Client, bool) {
	if len(s.cfg.Clients) == 0 {
		return anonymous, true
	}
	key := ""
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		key = strings.TrimPrefix(h, "Bearer ")
	} else if h := r.Header.Get("X-API-Key"); h != "" {
		key = h
	} else {
		key = r.URL.Query().Get("key")
	}
	c, ok := s.cfg.Clients[key]
	return c, ok
}

// ParseAPIKeys parses the exrquyd -api-keys flag syntax: a comma-
// separated list of key=name or key=name:quotaBytes entries, e.g.
//
//	-api-keys "s3cret=analytics:104857600,t0ken=dashboard"
//
// maps key "s3cret" to client "analytics" with a 100 MiB per-query ledger
// quota and key "t0ken" to client "dashboard" with the governor default.
func ParseAPIKeys(spec string) (map[string]Client, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]Client)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		key, rest, ok := strings.Cut(entry, "=")
		if !ok || key == "" || rest == "" {
			return nil, fmt.Errorf("api-keys: entry %q is not key=name[:quotaBytes]", entry)
		}
		name, quotaStr, hasQuota := strings.Cut(rest, ":")
		c := Client{Name: name}
		if hasQuota {
			q, err := strconv.ParseInt(quotaStr, 10, 64)
			if err != nil || q < 0 {
				return nil, fmt.Errorf("api-keys: entry %q: bad quota %q", entry, quotaStr)
			}
			c.QueryBytes = q
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("api-keys: duplicate key %q", key)
		}
		out[key] = c
	}
	return out, nil
}
