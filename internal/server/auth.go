package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/resilience"
)

// Client is one authenticated API principal, mapped onto the governor
// and the resilience layers: every query the client runs draws its
// ledger account with the client's QueryBytes quota (via governor.
// WithQuota on the request context), spends a token from the client's
// rate-limit bucket, and is tracked by the client's circuit breaker.
type Client struct {
	// Name labels the client in stats and logs.
	Name string `json:"name"`
	// QueryBytes is the per-query ledger quota for this client's queries;
	// 0 inherits the governor's configured default.
	QueryBytes int64 `json:"query_bytes,omitempty"`
	// RateQPS overrides the server's default sustained rate limit for
	// this client; 0 inherits Config.RateQPS.
	RateQPS float64 `json:"rate_qps,omitempty"`
	// RateBurst overrides the token-bucket burst for this client; only
	// consulted when RateQPS overrides (0 there means ceil(RateQPS)).
	RateBurst int `json:"rate_burst,omitempty"`
}

// anonymous is the principal used when no API keys are configured (open
// access, e.g. local development and the CI smoke job).
var anonymous = Client{Name: "anonymous"}

// clientFor authenticates a request against the configured key table,
// returning the principal and the API key it presented — the key is the
// identity the rate limiter and circuit breakers bucket on. The key
// travels as "Authorization: Bearer <key>", an "X-API-Key" header, or a
// "key" query parameter (in that precedence). With no keys configured
// every request is the anonymous client (one shared bucket, key "").
func (s *Server) clientFor(r *http.Request) (Client, string, bool) {
	key := ""
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		key = strings.TrimPrefix(h, "Bearer ")
	} else if h := r.Header.Get("X-API-Key"); h != "" {
		key = h
	} else {
		key = r.URL.Query().Get("key")
	}
	if len(s.cfg.Clients) == 0 {
		return anonymous, "", true
	}
	c, ok := s.cfg.Clients[key]
	return c, key, ok
}

// rateFor resolves the effective rate limit for a client: the client's
// own override when set, otherwise the server default.
func (s *Server) rateFor(c Client) resilience.Rate {
	if c.RateQPS > 0 {
		return resilience.Rate{QPS: c.RateQPS, Burst: c.RateBurst}
	}
	return resilience.Rate{QPS: s.cfg.RateQPS, Burst: s.cfg.RateBurst}
}

// ParseAPIKeys parses the exrquyd -api-keys flag syntax: a comma-
// separated list of key=name with up to three optional colon-separated
// numeric fields — per-query ledger quota (bytes), sustained rate limit
// (QPS, may be fractional) and burst:
//
//	key=name[:quotaBytes[:qps[:burst]]]
//
// e.g.
//
//	-api-keys "s3cret=analytics:104857600:50:100,t0ken=dashboard"
//
// maps key "s3cret" to client "analytics" with a 100 MiB per-query
// quota, 50 QPS sustained and a burst of 100, and key "t0ken" to client
// "dashboard" with all server defaults. A zero field inherits the
// corresponding default (use 0 as a placeholder to set a later field).
func ParseAPIKeys(spec string) (map[string]Client, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]Client)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		key, rest, ok := strings.Cut(entry, "=")
		if !ok || key == "" || rest == "" {
			return nil, fmt.Errorf("api-keys: entry %q is not key=name[:quotaBytes[:qps[:burst]]]", entry)
		}
		fields := strings.Split(rest, ":")
		if len(fields) > 4 {
			return nil, fmt.Errorf("api-keys: entry %q has too many fields", entry)
		}
		c := Client{Name: fields[0]}
		if len(fields) > 1 && fields[1] != "" {
			q, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil || q < 0 {
				return nil, fmt.Errorf("api-keys: entry %q: bad quota %q", entry, fields[1])
			}
			c.QueryBytes = q
		}
		if len(fields) > 2 && fields[2] != "" {
			qps, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || qps < 0 {
				return nil, fmt.Errorf("api-keys: entry %q: bad qps %q", entry, fields[2])
			}
			c.RateQPS = qps
		}
		if len(fields) > 3 && fields[3] != "" {
			b, err := strconv.Atoi(fields[3])
			if err != nil || b < 0 {
				return nil, fmt.Errorf("api-keys: entry %q: bad burst %q", entry, fields[3])
			}
			c.RateBurst = b
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("api-keys: duplicate key %q", key)
		}
		out[key] = c
	}
	return out, nil
}
