// Package server is exrquyd's serving layer: a long-running HTTP daemon
// over the eXrQuy engine for concurrent multi-client XQuery traffic.
//
// The layers beneath were built for exactly this front door and the
// server adds no query machinery of its own — it wires them together:
//
//   - Query endpoints (POST /query, GET /query?q=) run QueryContext with
//     per-request deadlines; the qerr taxonomy maps to HTTP statuses
//     through qerr.HTTPStatus (parse/compile → 400, cutoff → 413/408,
//     canceled → 499, overload → 429 with Retry-After, internal → 500).
//   - Document management (PUT/DELETE /documents/{name}) hot-swaps
//     entries in the Engine's RWMutex'd registry while queries run; a
//     query always sees the point-in-time registry snapshot taken when
//     its execution started.
//   - A prepared-query LRU cache keyed on normalized query text reuses
//     the expensive parse→normalize→compile→optimize front half across
//     identical queries (safe because prepared plans are document-
//     independent until execution; see DESIGN.md).
//   - Per-client API keys map onto governor accounts: every admitted
//     query draws a ledger account with its client's quota from the one
//     shared process ledger.
//   - /metrics and /debug/stats expose the obs registry, governor,
//     cache and document state; ?analyze=1 returns EXPLAIN ANALYZE.
//   - Graceful shutdown stops admission (503 + Retry-After), drains
//     in-flight queries through the governor, and bounds drain time.
package server

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	exrquy "repro"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Request-level metrics, alongside the engine/governor/cache families in
// the process-wide registry.
var (
	requestsTotal      = obs.Default.Counter("server_requests_total")
	requestErrorsTotal = obs.Default.Counter("server_request_errors_total")
	requestNanos       = obs.Default.Histogram("server_request_latency_ns")
	inflightGauge      = obs.Default.Gauge("server_inflight_requests")
	docReloadsTotal    = obs.Default.Counter("server_document_reloads_total")
	docDeletesTotal    = obs.Default.Counter("server_document_deletes_total")
	drainRejectsTotal  = obs.Default.Counter("server_drain_rejects_total")
	watchdogRejects    = obs.Default.Counter("server_watchdog_rejects_total")
)

// Config assembles a Server. The zero value is usable: an ungoverned-
// defaults governor (2×GOMAXPROCS slots), open access, a 256-entry plan
// cache, 30 s default query deadline, 64 MiB uploads, 10 s drain bound.
type Config struct {
	// Governor configures the admission/ledger governor every query runs
	// through. The zero value takes the governor package defaults.
	Governor exrquy.GovernorConfig
	// Parallelism enables morsel-parallel execution with this pool size
	// (0 = serial, the default; -1 = GOMAXPROCS). The governor degrades
	// parallel plans to serial under pressure either way.
	Parallelism int
	// StoreBudget gives attached on-disk stores a dedicated paging
	// ledger of this many bytes (exrquy.WithStoreBudget). 0 means store
	// residency is charged to the governor's shared ledger instead.
	StoreBudget int64
	// Timeout is the default per-request query deadline; 0 means 30 s.
	Timeout time.Duration
	// MaxTimeout caps the ?timeout= request parameter; 0 means 5 m.
	MaxTimeout time.Duration
	// MaxQueryBytes bounds the query text read from a request body;
	// 0 means 1 MiB.
	MaxQueryBytes int64
	// MaxDocBytes bounds one document upload (PUT /documents/{name});
	// 0 means 64 MiB. The limit is enforced both at the HTTP layer and as
	// the parser's xmltree.ParseOptions byte guard.
	MaxDocBytes int64
	// CacheSize is the prepared-plan LRU capacity; 0 means 256.
	CacheSize int
	// Clients maps API keys to principals. Empty means open access.
	Clients map[string]Client
	// DrainTimeout bounds graceful shutdown: once it passes, still-running
	// queries are cut off by closing their connections. 0 means 10 s.
	DrainTimeout time.Duration

	// RateQPS is the default per-client sustained rate limit in queries
	// per second (token-bucket refill rate); 0 disables rate limiting for
	// clients without their own Client.RateQPS. Rate limiting composes
	// with — never replaces — governor admission: the bucket answers "is
	// this client too fast", the governor answers "is the process too
	// busy", and the two rejections stay distinguishable
	// (ErrRateLimited vs ErrOverload).
	RateQPS float64
	// RateBurst is the default token-bucket capacity (instantaneous
	// burst); 0 means ceil(RateQPS), minimum 1.
	RateBurst int
	// WatchdogTimeout is the stuck-query heartbeat threshold: a query
	// silent (no engine poll point reached) for this long is cancelled
	// with resilience.ErrStuck, within at most twice the threshold.
	// 0 disables the watchdog.
	WatchdogTimeout time.Duration
	// BreakerFailures is the per-client circuit-breaker trip threshold
	// (consecutive watchdog kills or internal errors); 0 disables
	// breakers.
	BreakerFailures int
	// BreakerCooldown is how long a tripped breaker rejects before
	// admitting a half-open probe; 0 means 5 s.
	BreakerCooldown time.Duration
	// Faults, when non-nil, arms deterministic fault injection on the
	// /query route (injected latency, forced 500/503, connection resets,
	// body truncation). Test/chaos hook only — leave nil in production.
	Faults *resilience.HTTPFaultPlan

	// ScrubInterval enables background scrubbing on every attached
	// store: part-file checksums are re-verified at this cadence,
	// corrupt files quarantined and restored from healthy replicas
	// (exrquy.WithStoreScrub). 0 disables the loop; POST /stores/scrub
	// still scrubs on demand.
	ScrubInterval time.Duration
	// ScrubBytesPerSec paces scrub verification reads (0 = unpaced).
	ScrubBytesPerSec int64

	// NoCompile disables bytecode plan compilation: the cache then stores
	// tree-walking plans (exrquy.WithCompiled(false)). Debugging escape
	// hatch — the flag is part of the plan-cache key, so flipping it can
	// never serve a plan prepared under the other mode.
	NoCompile bool
}

// Server is the daemon: one Engine, one Governor, one plan cache, one
// HTTP front. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	eng   *exrquy.Engine
	gov   *exrquy.Governor
	cache *planCache
	mux   *http.ServeMux
	httpS *http.Server

	// Resilience layers (internal/resilience), checked in this order in
	// front of every query: per-client token buckets, per-client circuit
	// breakers, then the per-query stuck-detection watchdog around the
	// execution itself. Watchdog and breakers are nil when disabled.
	limiter  *resilience.Limiter
	watchdog *resilience.Watchdog
	breakers *resilience.BreakerSet

	draining atomic.Bool
	listener net.Listener
	started  time.Time
}

// New builds a Server from cfg (zero fields take the documented
// defaults). Documents can be preloaded through Engine() before serving.
func New(cfg Config) *Server {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxQueryBytes <= 0 {
		cfg.MaxQueryBytes = 1 << 20
	}
	if cfg.MaxDocBytes <= 0 {
		cfg.MaxDocBytes = 64 << 20
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	gov := exrquy.NewGovernor(cfg.Governor)
	opts := []exrquy.Option{exrquy.WithGovernor(gov)}
	if cfg.Parallelism != 0 {
		opts = append(opts, exrquy.WithParallelism(cfg.Parallelism))
	}
	if cfg.NoCompile {
		opts = append(opts, exrquy.WithCompiled(false))
	}
	if cfg.StoreBudget > 0 {
		opts = append(opts, exrquy.WithStoreBudget(cfg.StoreBudget))
	}
	if cfg.ScrubInterval > 0 {
		opts = append(opts, exrquy.WithStoreScrub(exrquy.StoreScrubConfig{
			Interval:    cfg.ScrubInterval,
			BytesPerSec: cfg.ScrubBytesPerSec,
		}))
	}
	s := &Server{
		cfg:      cfg,
		eng:      exrquy.New(opts...),
		gov:      gov,
		cache:    newPlanCache(cfg.CacheSize),
		mux:      http.NewServeMux(),
		limiter:  resilience.NewLimiter(),
		watchdog: resilience.NewWatchdog(cfg.WatchdogTimeout),
		breakers: resilience.NewBreakerSet(resilience.BreakerConfig{
			Failures: cfg.BreakerFailures,
			Cooldown: cfg.BreakerCooldown,
		}),
		started: time.Now(),
	}
	s.routes()
	s.httpS = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s
}

// Engine exposes the underlying engine, e.g. for preloading documents
// before the listener opens (exrquyd's file arguments and -xmark flag).
func (s *Server) Engine() *exrquy.Engine { return s.eng }

// Governor exposes the server's governor (tests and stats).
func (s *Server) Governor() *exrquy.Governor { return s.gov }

// Handler returns the HTTP handler (httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Listen binds addr (e.g. "127.0.0.1:0" for an ephemeral port) without
// serving yet, so the chosen address is known before requests arrive.
func (s *Server) Listen(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.listener = l
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Serve serves on the Listen'ed address until Shutdown; like
// http.Server.Serve it returns http.ErrServerClosed on a clean shutdown.
func (s *Server) Serve() error {
	return s.httpS.Serve(s.listener)
}

// Shutdown gracefully stops the server: admission closes first (new
// queries get 503 with a Retry-After), then in-flight queries drain
// through the governor, bounded by Config.DrainTimeout (and by ctx);
// whatever still runs when the bound passes is cut off hard.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	err := s.httpS.Shutdown(dctx)
	if err != nil {
		// Drain bound exceeded: close remaining connections now.
		closeErr := s.httpS.Close()
		if closeErr != nil && err == nil {
			err = closeErr
		}
	}
	return err
}

// Draining reports whether Shutdown has begun (admission is closed).
func (s *Server) Draining() bool { return s.draining.Load() }
