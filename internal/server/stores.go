package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	exrquy "repro"
	"repro/internal/obs"
	"repro/internal/qerr"
)

// Out-of-core store management: attach/detach on-disk columnar stores
// (built by xmarkgen -store or Engine.WriteStore) at runtime, the
// serving-layer face of Engine.AttachStore/DetachStore. Attaching makes
// the store's documents queryable immediately; detaching removes them
// from the registry at once and releases the mappings only after
// in-flight queries drain. Both invalidate exactly the cached plans
// that read the affected documents, like document hot-reload does.

var (
	storeAttachesTotal = obs.Default.Counter("server_store_attaches_total")
	storeDetachesTotal = obs.Default.Counter("server_store_detaches_total")
	storeScrubsTotal   = obs.Default.Counter("server_store_scrubs_total")
)

// storeRoutes wires the /stores endpoints (called from routes).
func (s *Server) storeRoutes() {
	s.mux.HandleFunc("POST /stores", s.handleAttachStore)
	s.mux.HandleFunc("GET /stores", s.handleListStores)
	s.mux.HandleFunc("DELETE /stores", s.handleDetachStore)
	s.mux.HandleFunc("POST /stores/scrub", s.handleScrubStores)
}

// attachRequest is the POST /stores body: the directories of one store
// (several when a corpus is sharded across directories).
type attachRequest struct {
	Dirs []string `json:"dirs"`
}

type storeResponse struct {
	Key  string   `json:"key"`
	URIs []string `json:"uris"`
}

// handleAttachStore mounts an on-disk store. Corrupt stores answer 500
// with code "corrupt_store" (server-side state, not the request's
// fault); the request itself can still be malformed (400).
func (s *Server) handleAttachStore(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeDraining(w)
		return
	}
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	var req attachRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, qerr.Newf(qerr.ErrParse, "request", "bad attach body: %v", err))
		return
	}
	if len(req.Dirs) == 0 {
		writeError(w, qerr.Newf(qerr.ErrParse, "request", "attach needs at least one directory"))
		return
	}
	uris, err := s.eng.AttachStore(req.Dirs...)
	if err != nil {
		writeError(w, err)
		return
	}
	// A mounted document may shadow a previously loaded one of the same
	// name: drop exactly the plans that read it.
	for _, uri := range uris {
		s.cache.invalidateDoc(uri)
	}
	storeAttachesTotal.Inc()
	key := req.Dirs[0]
	for _, m := range s.eng.Stores() {
		if len(m.Dirs) > 0 && m.Dirs[0] == req.Dirs[0] {
			key = m.Key
		}
	}
	writeJSON(w, http.StatusCreated, storeResponse{Key: key, URIs: uris})
}

// handleListStores reports the attached stores with freshly sampled
// residency (mapped vs resident bytes per part).
func (s *Server) handleListStores(w http.ResponseWriter, r *http.Request) {
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	s.eng.SampleStores()
	mounts := s.eng.Stores()
	if mounts == nil {
		mounts = []exrquy.StoreMountInfo{}
	}
	writeJSON(w, http.StatusOK, mounts)
}

// handleScrubStores runs one synchronous scrub pass over every attached
// store — re-verifying part-file checksums, quarantining corrupt
// replicas and restoring them from healthy copies — and answers with
// each mount's cumulative scrub counters. ?bps= paces the verification
// reads (bytes/second; 0 or absent = unpaced).
func (s *Server) handleScrubStores(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeDraining(w)
		return
	}
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	var bps int64
	if v := strings.TrimSpace(r.URL.Query().Get("bps")); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeError(w, qerr.Newf(qerr.ErrParse, "request", "bad ?bps=%q", v))
			return
		}
		bps = n
	}
	stats := s.eng.ScrubStores(bps)
	storeScrubsTotal.Inc()
	writeJSON(w, http.StatusOK, stats)
}

// handleDetachStore unmounts the store keyed by ?dir= (the first
// directory it was attached with).
func (s *Server) handleDetachStore(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeDraining(w)
		return
	}
	if _, _, ok := s.clientFor(r); !ok {
		writeUnauthorized(w)
		return
	}
	dir := strings.TrimSpace(r.URL.Query().Get("dir"))
	if dir == "" {
		writeError(w, qerr.Newf(qerr.ErrParse, "request", "detach needs ?dir="))
		return
	}
	// Resolve the canonical mount key before the mount disappears.
	key := dir
	for _, m := range s.eng.Stores() {
		if len(m.Dirs) > 0 && m.Dirs[0] == dir {
			key = m.Key
		}
	}
	uris, err := s.eng.DetachStore(dir)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{
			Error:  fmt.Sprintf("%v", err),
			Status: http.StatusNotFound,
		})
		return
	}
	for _, uri := range uris {
		s.cache.invalidateDoc(uri)
	}
	storeDetachesTotal.Inc()
	writeJSON(w, http.StatusOK, storeResponse{Key: key, URIs: uris})
}
