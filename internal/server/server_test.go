package server

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	exrquy "repro"
	"repro/internal/xmarkq"
)

// startServer boots a Server on an ephemeral port and returns its base
// URL plus a shutdown func that also asserts goroutine hygiene.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s := New(cfg)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("serve returned %v, want http.ErrServerClosed", err)
		}
	})
	return s, "http://" + s.Addr()
}

// get issues a GET and returns status, body and headers.
func get(t *testing.T, rawURL string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatalf("GET %s: %v", rawURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func queryURL(base, q string) string {
	return base + "/query?q=" + url.QueryEscape(q)
}

// waitNoGoroutineLeak polls until the goroutine count returns to within
// slack of the baseline, dumping stacks on timeout.
func waitNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
		runtime.NumGoroutine(), baseline, buf[:n])
}

// TestServerXMarkByteIdentical pins the serving layer against the
// library: every XMark query's HTTP response body is byte-identical to a
// single-shot Engine.Query (which is what cmd/exrquy prints).
func TestServerXMarkByteIdentical(t *testing.T) {
	const factor = 0.002
	s, base := startServer(t, Config{})
	s.Engine().LoadXMark("auction.xml", factor)

	ref := exrquy.New()
	ref.LoadXMark("auction.xml", factor)

	for _, q := range xmarkq.All() {
		status, body, hdr := get(t, queryURL(base, q.Text))
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q.Name, status, body)
		}
		want, err := ref.Query(q.Text)
		if err != nil {
			t.Fatalf("%s: reference: %v", q.Name, err)
		}
		wx, err := want.XML()
		if err != nil {
			t.Fatalf("%s: serialize: %v", q.Name, err)
		}
		if body != wx {
			t.Errorf("%s: server response differs from single-shot result\nserver: %.200q\nlocal:  %.200q", q.Name, body, wx)
		}
		if c := hdr.Get("X-Query-Cache"); c != "miss" {
			t.Errorf("%s: first run X-Query-Cache = %q, want miss", q.Name, c)
		}
	}
	// Second pass: every query hits the prepared-plan cache and still
	// returns identical bytes.
	for _, q := range xmarkq.All() {
		status, body, hdr := get(t, queryURL(base, q.Text))
		if status != http.StatusOK {
			t.Fatalf("%s (cached): status %d", q.Name, status)
		}
		want, _ := ref.Query(q.Text)
		wx, _ := want.XML()
		if body != wx {
			t.Errorf("%s: cached response differs from single-shot result", q.Name)
		}
		if c := hdr.Get("X-Query-Cache"); c != "hit" {
			t.Errorf("%s: second run X-Query-Cache = %q, want hit", q.Name, c)
		}
	}
}

func TestServerErrorStatuses(t *testing.T) {
	s, base := startServer(t, Config{MaxDocBytes: 4096})
	s.Engine().LoadDocumentString("t.xml", "<r><x/><x/></r>")

	t.Run("parse error 400", func(t *testing.T) {
		status, body, _ := get(t, queryURL(base, "for $x in"))
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", status, body)
		}
		if !strings.Contains(body, `"phase"`) {
			t.Errorf("error body missing phase: %s", body)
		}
	})
	t.Run("missing q 400", func(t *testing.T) {
		if status, _, _ := get(t, base+"/query"); status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
	})
	t.Run("bad timeout 400", func(t *testing.T) {
		if status, _, _ := get(t, queryURL(base, "1+1")+"&timeout=banana"); status != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", status)
		}
	})
	t.Run("timeout 408", func(t *testing.T) {
		status, body, _ := get(t, queryURL(base, `count(doc("t.xml")//x)`)+"&timeout=1ns")
		if status != http.StatusRequestTimeout {
			t.Fatalf("status %d, want 408: %s", status, body)
		}
	})
	t.Run("upload too large 413", func(t *testing.T) {
		big := "<r>" + strings.Repeat("<x>payload</x>", 1000) + "</r>"
		req, _ := http.NewRequest(http.MethodPut, base+"/documents/big.xml", strings.NewReader(big))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
	})
	t.Run("delete unknown 404", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, base+"/documents/nope.xml", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d, want 404", resp.StatusCode)
		}
	})
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Post(base+"/metrics", "text/plain", nil)
		if err != nil {
			t.Fatalf("POST /metrics: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", resp.StatusCode)
		}
	})
}

// TestServerOverloadBurst drives a burst of concurrent queries through a
// single admission slot with an aggressive queue deadline and asserts the
// shed requests answer 429 with a well-formed Retry-After.
func TestServerOverloadBurst(t *testing.T) {
	s, base := startServer(t, Config{
		Governor: exrquy.GovernorConfig{MaxConcurrent: 1, MaxQueue: 2, QueueTimeout: time.Millisecond},
	})
	s.Engine().LoadXMark("auction.xml", 0.01)
	heavy := xmarkq.Get(11).Text // the paper's join-heavy query

	// Warm the plan cache so the burst measures admission, not compilation.
	if status, body, _ := get(t, queryURL(base, heavy)); status != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", status, body)
	}

	for attempt := 0; attempt < 5; attempt++ {
		const burst = 16
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			ok, shed int
		)
		start := make(chan struct{})
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				resp, err := http.Get(queryURL(base, heavy))
				if err != nil {
					t.Errorf("burst GET: %v", err)
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusTooManyRequests:
					shed++
					ra := resp.Header.Get("Retry-After")
					secs, err := strconv.Atoi(ra)
					if err != nil || secs < 1 {
						t.Errorf("429 Retry-After = %q, want integer seconds >= 1", ra)
					}
				default:
					t.Errorf("burst status %d, want 200 or 429", resp.StatusCode)
				}
			}()
		}
		close(start)
		wg.Wait()
		if ok >= 1 && shed >= 1 {
			return // saw both outcomes: admission worked and shedding worked
		}
	}
	t.Fatal("no burst attempt produced both a 200 and a 429")
}

func TestServerAuthAndQuotas(t *testing.T) {
	s, base := startServer(t, Config{
		Clients: map[string]Client{
			"open-sesame": {Name: "analytics"},
			"thimble":     {Name: "tiny", QueryBytes: 64},
		},
	})
	s.Engine().LoadXMark("auction.xml", 0.002)
	q := xmarkq.Get(1).Text

	t.Run("no key 401", func(t *testing.T) {
		if status, _, _ := get(t, queryURL(base, q)); status != http.StatusUnauthorized {
			t.Fatalf("status %d, want 401", status)
		}
	})
	t.Run("wrong key 401", func(t *testing.T) {
		if status, _, _ := get(t, queryURL(base, q)+"&key=wrong"); status != http.StatusUnauthorized {
			t.Fatalf("status %d, want 401", status)
		}
	})
	t.Run("query param key", func(t *testing.T) {
		if status, body, _ := get(t, queryURL(base, q)+"&key=open-sesame"); status != http.StatusOK {
			t.Fatalf("status %d, want 200: %s", status, body)
		}
	})
	t.Run("bearer key", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, queryURL(base, q), nil)
		req.Header.Set("Authorization", "Bearer open-sesame")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
	})
	t.Run("x-api-key header", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodGet, queryURL(base, q), nil)
		req.Header.Set("X-API-Key", "open-sesame")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
	})
	t.Run("per-client quota 413", func(t *testing.T) {
		// The tiny client's 64-byte governor account cannot materialize
		// Q8's join intermediates: its queries cut off with ErrMemoryLimit
		// while the analytics client runs the same text fine.
		heavy := xmarkq.Get(8).Text
		status, body, _ := get(t, queryURL(base, heavy)+"&key=thimble")
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("tiny client status %d, want 413: %s", status, body)
		}
		if status, body, _ := get(t, queryURL(base, heavy)+"&key=open-sesame"); status != http.StatusOK {
			t.Fatalf("analytics client status %d, want 200: %s", status, body)
		}
	})
}

func TestServerAnalyze(t *testing.T) {
	s, base := startServer(t, Config{})
	s.Engine().LoadXMark("auction.xml", 0.002)
	status, body, hdr := get(t, queryURL(base, xmarkq.Get(1).Text)+"&analyze=1")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if !strings.Contains(body, "rows=") || !strings.Contains(body, "elapsed") {
		t.Errorf("analyze output missing annotations:\n%s", body)
	}
}

func TestServerDocumentLifecycleAndCacheInvalidation(t *testing.T) {
	s, base := startServer(t, Config{})

	put := func(name, content string) (int, string) {
		req, _ := http.NewRequest(http.MethodPut, base+"/documents/"+name, strings.NewReader(content))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT %s: %v", name, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// Create: 201, then query it (plan lands in the cache).
	if status, body := put("d.xml", "<r><x/><x/></r>"); status != http.StatusCreated {
		t.Fatalf("create status %d: %s", status, body)
	}
	count := `count(doc("d.xml")/r/x)`
	if status, body, _ := get(t, queryURL(base, count)); status != http.StatusOK || body != "2" {
		t.Fatalf("count = %d %q, want 200 \"2\"", status, body)
	}
	if _, _, hdr := get(t, queryURL(base, count)); hdr.Get("X-Query-Cache") != "hit" {
		t.Fatal("expected a cache hit on the repeated query")
	}

	// Hot reload: 200, the cache is invalidated, and the same query text
	// immediately sees the new content.
	if status, body := put("d.xml", "<r><x/><x/><x/><x/><x/></r>"); status != http.StatusOK {
		t.Fatalf("reload status %d: %s", status, body)
	}
	status, body, hdr := get(t, queryURL(base, count))
	if status != http.StatusOK || body != "5" {
		t.Fatalf("count after reload = %d %q, want 200 \"5\"", status, body)
	}
	if hdr.Get("X-Query-Cache") != "miss" {
		t.Fatal("reload did not invalidate the prepared-plan cache")
	}
	if st := s.cache.stats(); st.Invalidations < 1 {
		t.Fatalf("cache stats = %+v, want >= 1 invalidation", st)
	}

	// Delete: 204, then the query fails (the document is gone).
	req, _ := http.NewRequest(http.MethodDelete, base+"/documents/d.xml", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d, want 204", resp.StatusCode)
	}
	if status, _, _ := get(t, queryURL(base, count)); status == http.StatusOK {
		t.Fatal("query of a deleted document succeeded")
	}

	// GET /documents reflects the registry.
	status, body, _ = get(t, base+"/documents")
	if status != http.StatusOK || strings.Contains(body, "d.xml") {
		t.Fatalf("documents after delete = %d %s", status, body)
	}
}

// TestServerGracefulShutdown checks the drain ladder: in-flight queries
// finish, new arrivals answer 503 with Retry-After, and the process ends
// with no leaked goroutines.
func TestServerGracefulShutdown(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Config{})
	s.Engine().LoadXMark("auction.xml", 0.02)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	base := "http://" + s.Addr()

	// Launch an in-flight query, then shut down while it runs.
	heavy := xmarkq.Get(11).Text
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(queryURL(base, heavy))
		if err != nil {
			inflight <- result{0, err}
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		inflight <- result{resp.StatusCode, nil}
	}()
	// Give the request a beat to reach the engine before draining.
	time.Sleep(20 * time.Millisecond)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// New arrivals during the drain answer 503 + Retry-After. The handler
	// path rejects before touching the engine, so this holds even while
	// the in-flight query still runs. (If the drain already finished, the
	// connection is refused instead — also an acceptable outcome.)
	time.Sleep(5 * time.Millisecond)
	if resp, err := http.Get(queryURL(base, "1+1")); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("during drain: status %d, want 503", resp.StatusCode)
		} else if resp.Header.Get("Retry-After") == "" {
			t.Error("503 during drain missing Retry-After")
		}
		resp.Body.Close()
	}

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight query failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK && r.status != http.StatusServiceUnavailable {
		t.Fatalf("in-flight query status %d, want 200 (drained) or 503 (arrived after drain began)", r.status)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v", err)
	}
	if st := s.Governor().Stats(); st.Running != 0 || st.BytesInUse != 0 {
		t.Fatalf("governor not drained after shutdown: %+v", st)
	}
	waitNoGoroutineLeak(t, baseline)
}

// TestServerMetricsAndStats sanity-checks the observability endpoints.
func TestServerMetricsAndStats(t *testing.T) {
	s, base := startServer(t, Config{})
	s.Engine().LoadDocumentString("m.xml", "<r><x/></r>")
	if status, _, _ := get(t, queryURL(base, `count(doc("m.xml")//x)`)); status != http.StatusOK {
		t.Fatal("query failed")
	}
	status, body, _ := get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{"engine_queries_total", "governor_admitted_total", "server_requests_total", "server_plan_cache_misses_total"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	status, body, _ = get(t, base+"/debug/stats")
	if status != http.StatusOK {
		t.Fatalf("/debug/stats status %d", status)
	}
	for _, want := range []string{`"governor"`, `"cache"`, `"documents"`, `"uptime_ms"`, "m.xml"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/stats missing %s: %s", want, body)
		}
	}
	if status, body, _ := get(t, base+"/healthz"); status != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", status, body)
	}
}

func TestParseAPIKeys(t *testing.T) {
	got, err := ParseAPIKeys("s3cret=analytics:1048576, t0ken=dashboard")
	if err != nil {
		t.Fatal(err)
	}
	if c := got["s3cret"]; c.Name != "analytics" || c.QueryBytes != 1<<20 {
		t.Fatalf("s3cret = %+v", c)
	}
	if c := got["t0ken"]; c.Name != "dashboard" || c.QueryBytes != 0 {
		t.Fatalf("t0ken = %+v", c)
	}
	if m, err := ParseAPIKeys("  "); err != nil || m != nil {
		t.Fatalf("blank spec = %v, %v", m, err)
	}
	for _, bad := range []string{"nokey", "=name", "k=", "k=n:notanumber", "k=a,k=b"} {
		if _, err := ParseAPIKeys(bad); err == nil {
			t.Errorf("ParseAPIKeys(%q) did not fail", bad)
		}
	}
}
