package xmltree

import (
	"fmt"
	"strings"

	"repro/internal/xdm"
)

// AppendContent implements the XQuery element-content rules while building
// an element: attribute nodes become attributes of the element (and must
// precede any other content), consecutive atomic values are joined by
// single spaces into one text node, KRawText items become their own text
// nodes, and nodes are deep-copied (constructors copy, establishing fresh
// node identity and document order — interaction 2 of the paper).
func AppendContent(store *Store, b *Builder, elemName string, items []xdm.Item) error {
	sawContent := false
	var pendingAtomics []string
	flushAtomics := func() {
		if len(pendingAtomics) > 0 {
			b.Text(strings.Join(pendingAtomics, " "))
			pendingAtomics = nil
		}
	}
	for _, it := range items {
		switch {
		case it.IsNode():
			f := store.Frag(it.N.Frag)
			if f.Kind[it.N.Pre] == KindAttr {
				if sawContent || len(pendingAtomics) > 0 {
					return fmt.Errorf("xmltree: attribute %s after content of <%s>", f.Name[it.N.Pre], elemName)
				}
				b.Attr(f.Name[it.N.Pre], f.Value[it.N.Pre])
				continue
			}
			flushAtomics()
			b.CopySubtree(f, it.N.Pre)
			sawContent = true
		case it.Kind == xdm.KRawText:
			flushAtomics()
			b.Text(it.S)
			sawContent = true
		default:
			pendingAtomics = append(pendingAtomics, it.StringValue())
			sawContent = true
		}
	}
	flushAtomics()
	return nil
}

// SerializeItems renders an item sequence per the XQuery serialization
// rules: adjacent atomic values are separated by one space, nodes are
// serialized as XML, free-standing attribute nodes are an error.
func SerializeItems(store *Store, items []xdm.Item) (string, error) {
	var sb strings.Builder
	prevAtomic := false
	for _, it := range items {
		if it.IsNode() {
			f := store.Frag(it.N.Frag)
			if f.Kind[it.N.Pre] == KindAttr {
				return "", fmt.Errorf("xmltree: cannot serialize free-standing attribute %s", f.Name[it.N.Pre])
			}
			sb.WriteString(SerializeToString(f, it.N.Pre, SerializeOptions{}))
			prevAtomic = false
			continue
		}
		if prevAtomic {
			sb.WriteString(" ")
		}
		sb.WriteString(EscapeText(it.StringValue()))
		prevAtomic = true
	}
	return sb.String(), nil
}

// NewAttrFragment wraps a free-standing attribute node in its own
// fragment (used by the runtime attribute-construction operator; such
// attributes are transient — they are copied into their owner element by
// the enclosing element constructor).
func NewAttrFragment(name, value string) *Fragment {
	return &Fragment{
		Kind:   []NodeKind{KindAttr},
		Name:   []string{name},
		Value:  []string{value},
		Size:   []int32{0},
		Level:  []int32{0},
		Parent: []int32{-1},
	}
}
