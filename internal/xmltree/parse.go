package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// ParseOptions controls XML parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes consisting solely of
	// whitespace. The default (false) strips them, which matches the
	// boundary-whitespace handling most XQuery processors apply to
	// data-oriented documents such as the XMark instances.
	KeepWhitespaceText bool
}

// Parse reads an XML document from r into an order-encoded fragment with a
// document node at preorder rank 0. Comments and processing instructions
// are skipped (the eXrQuy algebra does not observe them).
func Parse(r io.Reader, uri string, opts ParseOptions) (*Fragment, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	b.StartDoc(uri)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse %s: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.StartElem(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			b.EndElem()
			depth--
		case xml.CharData:
			if depth == 0 {
				continue // whitespace between top-level constructs
			}
			s := string(t)
			if !opts.KeepWhitespaceText && strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(s)
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("xmltree: parse %s: unbalanced document", uri)
	}
	f := b.Close()
	if f.Len() == 1 {
		return nil, fmt.Errorf("xmltree: parse %s: no root element", uri)
	}
	return f, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(doc, uri string, opts ParseOptions) (*Fragment, error) {
	return Parse(strings.NewReader(doc), uri, opts)
}

// MustParseString parses or panics; intended for tests and examples with
// literal documents.
func MustParseString(doc string) *Fragment {
	f, err := ParseString(doc, "inline", ParseOptions{})
	if err != nil {
		panic(err)
	}
	return f
}
