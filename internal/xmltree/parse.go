package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/qerr"
)

// ParseOptions controls XML parsing.
type ParseOptions struct {
	// KeepWhitespaceText retains text nodes consisting solely of
	// whitespace. The default (false) strips them, which matches the
	// boundary-whitespace handling most XQuery processors apply to
	// data-oriented documents such as the XMark instances.
	KeepWhitespaceText bool

	// Input guards. Zero means unlimited (the historical behaviour);
	// DefaultLimits returns the guarded configuration applied on the
	// public document-loading path. Exceeding a guard aborts parsing with
	// an error wrapping qerr.ErrLimit (and therefore qerr.ErrParse).

	// MaxDepth bounds element nesting depth.
	MaxDepth int
	// MaxBytes bounds the raw input size consumed from the reader.
	MaxBytes int64
	// MaxNodes bounds the number of nodes (elements, attributes, texts)
	// materialized in the fragment.
	MaxNodes int
}

// DefaultLimits returns ParseOptions with the input guards set to the
// defaults used by the public LoadDocument path: generous enough for any
// realistic document (a factor-5 XMark instance fits comfortably), tight
// enough that a hostile input cannot exhaust memory or nesting.
func DefaultLimits() ParseOptions {
	return ParseOptions{
		MaxDepth: 1024,
		MaxBytes: 1 << 30, // 1 GiB of raw XML
		MaxNodes: 1 << 26, // ~67M nodes
	}
}

// limitedReader counts bytes consumed and fails past the cap; unlike
// io.LimitReader it distinguishes "input ended" from "input too large".
type limitedReader struct {
	r     io.Reader
	n     int64 // remaining budget
	upper int64 // configured cap, for the error message
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, fmt.Errorf("input exceeds the configured limit of %d bytes (%d bytes read, more present): %w",
			l.upper, l.upper, qerr.ErrLimit)
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}

// Parse reads an XML document from r into an order-encoded fragment with a
// document node at preorder rank 0. Comments and processing instructions
// are skipped (the eXrQuy algebra does not observe them). Malformed input
// yields an error wrapping qerr.ErrParse (with the decoder's line number
// when available); tripped input guards wrap qerr.ErrLimit.
func Parse(r io.Reader, uri string, opts ParseOptions) (*Fragment, error) {
	if opts.MaxBytes > 0 {
		r = &limitedReader{r: r, n: opts.MaxBytes, upper: opts.MaxBytes}
	}
	dec := xml.NewDecoder(r)
	b := NewBuilder()
	b.StartDoc(uri)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, parseErr(uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
				return nil, limitErr(uri, "element nesting of %d exceeds the configured limit of %d levels", depth+1, opts.MaxDepth)
			}
			b.StartElem(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			b.EndElem()
			depth--
		case xml.CharData:
			if depth == 0 {
				continue // whitespace between top-level constructs
			}
			s := string(t)
			if !opts.KeepWhitespaceText && strings.TrimSpace(s) == "" {
				continue
			}
			b.Text(s)
		}
		if opts.MaxNodes > 0 && b.frag.Len() > opts.MaxNodes {
			return nil, limitErr(uri, "document of %d nodes exceeds the configured limit of %d", b.frag.Len(), opts.MaxNodes)
		}
	}
	if depth != 0 {
		return nil, parseErr(uri, fmt.Errorf("unbalanced document"))
	}
	f := b.Close()
	if f.Len() == 1 {
		return nil, parseErr(uri, fmt.Errorf("no root element"))
	}
	return f, nil
}

// parseErr classifies a document parse failure, carrying the decoder's
// line number when the underlying error exposes one.
func parseErr(uri string, err error) error {
	if errors.Is(err, qerr.ErrLimit) {
		// A guard tripped inside the reader; keep its classification.
		return qerr.New(qerr.ErrLimit, "parse", fmt.Errorf("xmltree: parse %s: %w", uri, err))
	}
	line := 0
	var se *xml.SyntaxError
	if errors.As(err, &se) {
		line = se.Line
	}
	return qerr.At(qerr.ErrParse, "parse", line, 0,
		fmt.Errorf("xmltree: parse %s: %w", uri, err))
}

func limitErr(uri, format string, args ...any) error {
	return qerr.New(qerr.ErrLimit, "parse",
		fmt.Errorf("xmltree: parse %s: %s", uri, fmt.Sprintf(format, args...)))
}

// ParseString is Parse over an in-memory document.
func ParseString(doc, uri string, opts ParseOptions) (*Fragment, error) {
	return Parse(strings.NewReader(doc), uri, opts)
}

// MustParseString parses or panics; intended for tests and examples with
// literal documents.
func MustParseString(doc string) *Fragment {
	f, err := ParseString(doc, "inline", ParseOptions{})
	if err != nil {
		panic(err)
	}
	return f
}
