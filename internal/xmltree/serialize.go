package xmltree

import (
	"io"
	"strings"
)

// SerializeOptions controls XML serialization.
type SerializeOptions struct {
	// Indent, when non-empty, pretty-prints element content with the given
	// unit of indentation. Mixed content (elements with text siblings) is
	// never re-indented.
	Indent string
}

// Serialize writes the subtree rooted at pre as XML text. Document nodes
// serialize their children; attribute nodes serialize as name="value"
// (useful only in diagnostics — XDM serialization of free-standing
// attributes is an error, which callers enforce).
func Serialize(w io.Writer, f *Fragment, pre int32, opts SerializeOptions) error {
	s := serializer{w: w, f: f, indent: opts.Indent}
	s.node(pre, 0)
	return s.err
}

// SerializeToString renders the subtree rooted at pre as a string.
func SerializeToString(f *Fragment, pre int32, opts SerializeOptions) string {
	var sb strings.Builder
	_ = Serialize(&sb, f, pre, opts)
	return sb.String()
}

type serializer struct {
	w      io.Writer
	f      *Fragment
	indent string
	err    error
}

func (s *serializer) write(str string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.w, str)
	}
}

func (s *serializer) node(v int32, depth int) {
	f := s.f
	switch f.Kind[v] {
	case KindDoc:
		for _, c := range f.Children(v) {
			s.node(c, depth)
			if s.indent != "" {
				s.write("\n")
			}
		}
	case KindText:
		s.write(EscapeText(f.Value[v]))
	case KindAttr:
		s.write(f.Name[v] + `="` + EscapeAttr(f.Value[v]) + `"`)
	case KindElem:
		s.write("<" + f.Name[v])
		for _, a := range f.Attributes(v) {
			s.write(" " + f.Name[a] + `="` + EscapeAttr(f.Value[a]) + `"`)
		}
		kids := f.Children(v)
		if len(kids) == 0 {
			s.write("/>")
			return
		}
		s.write(">")
		pretty := s.indent != "" && !hasTextChild(f, kids)
		for _, c := range kids {
			if pretty {
				s.write("\n" + strings.Repeat(s.indent, depth+1))
			}
			s.node(c, depth+1)
		}
		if pretty {
			s.write("\n" + strings.Repeat(s.indent, depth))
		}
		s.write("</" + f.Name[v] + ">")
	}
}

func hasTextChild(f *Fragment, kids []int32) bool {
	for _, c := range kids {
		if f.Kind[c] == KindText {
			return true
		}
	}
	return false
}

// EscapeText escapes character data for XML text content.
func EscapeText(s string) string {
	if !strings.ContainsAny(s, "&<>") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// EscapeAttr escapes character data for a double-quoted attribute value.
func EscapeAttr(s string) string {
	if !strings.ContainsAny(s, `&<>"`) {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
