// Package xmltree stores XML as order-encoded fragments: each node is
// identified by its preorder rank and carries its subtree size and level
// (Figure 5 of the eXrQuy paper). The encoding makes document order a
// property of the data (integer ranks) rather than of runtime state, which
// is what allows the relational pipeline to trade sorts (%) for arbitrary
// numbering (#) wherever order is not observed. The pre/size/level triple
// also supports the staircase-join evaluation of XPath axes.
//
// Attributes are materialized as nodes in the preorder immediately after
// their owner element (at level owner+1); the child and descendant axes
// skip them, the attribute axis selects exactly them.
package xmltree

import "strings"

// NodeKind classifies nodes within a fragment.
type NodeKind uint8

// Node kinds. KindDoc only ever appears at preorder rank 0 of a parsed
// document; constructed fragments are rooted in their element.
const (
	KindDoc NodeKind = iota
	KindElem
	KindAttr
	KindText
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindDoc:
		return "doc"
	case KindElem:
		return "elem"
	case KindAttr:
		return "attr"
	case KindText:
		return "text"
	default:
		return "?"
	}
}

// Fragment is one order-encoded XML tree (a parsed document or a fragment
// produced by an element constructor). All per-node data lives in parallel
// slices indexed by preorder rank; Size counts all nodes in the subtree
// excluding the node itself (so the subtree of v spans preorder ranks
// [v, v+Size[v]]).
type Fragment struct {
	ID     uint32
	Name_  string // document URI or a synthetic label; informational
	Kind   []NodeKind
	Name   []string // element/attribute name (empty for text/doc)
	Value  []string // text/attribute value (empty otherwise)
	Size   []int32
	Level  []int32
	Parent []int32 // preorder rank of the parent; -1 at the root
}

// Len returns the number of nodes in the fragment.
func (f *Fragment) Len() int { return len(f.Kind) }

// Root returns the preorder rank of the fragment root (always 0).
func (f *Fragment) Root() int32 { return 0 }

// InSubtree reports whether node d lies in the subtree rooted at a
// (including a itself).
func (f *Fragment) InSubtree(a, d int32) bool {
	return d >= a && d <= a+f.Size[a]
}

// Children returns the preorder ranks of the element/text children of v in
// document order (attributes excluded).
func (f *Fragment) Children(v int32) []int32 {
	var out []int32
	end := v + f.Size[v]
	lvl := f.Level[v] + 1
	for c := v + 1; c <= end; c += f.Size[c] + 1 {
		if f.Level[c] == lvl && f.Kind[c] != KindAttr {
			out = append(out, c)
		}
	}
	return out
}

// Attributes returns the preorder ranks of the attribute nodes of v in
// document order.
func (f *Fragment) Attributes(v int32) []int32 {
	var out []int32
	end := v + f.Size[v]
	for c := v + 1; c <= end && f.Kind[c] == KindAttr && f.Level[c] == f.Level[v]+1; c++ {
		out = append(out, c)
	}
	return out
}

// Descendants returns all element/text descendants of v (excluding v and
// excluding attribute nodes) in document order.
func (f *Fragment) Descendants(v int32) []int32 {
	var out []int32
	end := v + f.Size[v]
	for c := v + 1; c <= end; c++ {
		if f.Kind[c] != KindAttr {
			out = append(out, c)
		}
	}
	return out
}

// StringValue returns the XDM string value of node v: the value itself for
// text and attribute nodes, the concatenation of all descendant text node
// values for elements and document nodes.
func (f *Fragment) StringValue(v int32) string {
	switch f.Kind[v] {
	case KindText, KindAttr:
		return f.Value[v]
	default:
		end := v + f.Size[v]
		var sb strings.Builder
		for c := v + 1; c <= end; c++ {
			if f.Kind[c] == KindText {
				sb.WriteString(f.Value[c])
			}
		}
		return sb.String()
	}
}

// NodeName returns the name of an element or attribute node and "" for
// text and document nodes.
func (f *Fragment) NodeName(v int32) string { return f.Name[v] }

// Stats summarizes a fragment for diagnostics.
type Stats struct {
	Nodes    int
	Elements int
	Attrs    int
	Texts    int
	MaxLevel int32
}

// ComputeStats walks the fragment and tallies node kinds.
func (f *Fragment) ComputeStats() Stats {
	var s Stats
	s.Nodes = f.Len()
	for i := range f.Kind {
		switch f.Kind[i] {
		case KindElem:
			s.Elements++
		case KindAttr:
			s.Attrs++
		case KindText:
			s.Texts++
		}
		if f.Level[i] > s.MaxLevel {
			s.MaxLevel = f.Level[i]
		}
	}
	return s
}
