package xmltree

import (
	"fmt"
	"sync"

	"repro/internal/xdm"
)

// Store maps fragment IDs to fragments. An engine-level store holds the
// loaded documents; each query execution derives a private store (Derive)
// into which its constructed fragments are appended, so concurrent
// executions never contend and temporary fragments are garbage after the
// query finishes.
type Store struct {
	mu    sync.RWMutex
	frags []*Fragment
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add registers a fragment, assigns its ID, and returns it.
func (s *Store) Add(f *Fragment) uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := uint32(len(s.frags))
	f.ID = id
	s.frags = append(s.frags, f)
	return id
}

// Frag returns the fragment with the given ID.
func (s *Store) Frag(id uint32) *Fragment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(id) >= len(s.frags) {
		panic(fmt.Sprintf("xmltree: unknown fragment %d", id))
	}
	return s.frags[id]
}

// Len returns the number of registered fragments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.frags)
}

// Derive returns a new store that shares this store's fragments (read-only)
// and owns any fragments added afterwards.
func (s *Store) Derive() *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	frags := make([]*Fragment, len(s.frags))
	copy(frags, s.frags)
	return &Store{frags: frags}
}

// NodeKindOf resolves the kind of a node reference.
func (s *Store) NodeKindOf(n xdm.NodeID) NodeKind { return s.Frag(n.Frag).Kind[n.Pre] }

// StringValueOf resolves the XDM string value of a node reference.
func (s *Store) StringValueOf(n xdm.NodeID) string { return s.Frag(n.Frag).StringValue(n.Pre) }

// Atomize converts an item to its atomic value: nodes atomize to
// xs:untypedAtomic over their string value, atomics pass through.
func (s *Store) Atomize(it xdm.Item) xdm.Item {
	if !it.IsNode() {
		return it
	}
	return xdm.NewUntyped(s.StringValueOf(it.N))
}

// NameOf returns the node name ("" for text/document nodes).
func (s *Store) NameOf(n xdm.NodeID) string { return s.Frag(n.Frag).NodeName(n.Pre) }
