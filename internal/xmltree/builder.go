package xmltree

import "fmt"

// Builder constructs a Fragment in document order. It is used by the XML
// parser, the XMark generator, and the runtime twig-construction operator
// (element constructors copy their content into a fresh fragment, which is
// how sequence order establishes document order — interaction 2 of the
// paper).
//
// Usage: StartDoc/StartElem, then for each element optionally Attr calls
// (before any content), child content, EndElem. Close fixes up subtree
// sizes and returns the fragment.
type Builder struct {
	frag    *Fragment
	open    []int32 // stack of open node preorder ranks
	lastTop int32   // top-of-stack when the last text node was appended, for merging
}

// NewBuilder returns an empty builder. The fragment's ID is assigned when
// it is added to a Store.
func NewBuilder() *Builder {
	return &Builder{frag: &Fragment{}, lastTop: -2}
}

func (b *Builder) push(kind NodeKind, name, value string) int32 {
	f := b.frag
	pre := int32(f.Len())
	parent := int32(-1)
	level := int32(0)
	if n := len(b.open); n > 0 {
		parent = b.open[n-1]
		level = f.Level[parent] + 1
	}
	f.Kind = append(f.Kind, kind)
	f.Name = append(f.Name, name)
	f.Value = append(f.Value, value)
	f.Size = append(f.Size, 0)
	f.Level = append(f.Level, level)
	f.Parent = append(f.Parent, parent)
	return pre
}

// StartDoc opens a document node; it must be the first node if used.
func (b *Builder) StartDoc(uri string) {
	if b.frag.Len() != 0 {
		panic("xmltree: StartDoc on non-empty builder")
	}
	b.frag.Name_ = uri
	pre := b.push(KindDoc, "", "")
	b.open = append(b.open, pre)
}

// StartElem opens an element node.
func (b *Builder) StartElem(name string) {
	pre := b.push(KindElem, name, "")
	b.open = append(b.open, pre)
	b.lastTop = -2
}

// Attr appends an attribute node to the currently open element. Attributes
// must be added before any child content so that they sit directly after
// their owner in preorder.
func (b *Builder) Attr(name, value string) {
	n := len(b.open)
	if n == 0 || b.frag.Kind[b.open[n-1]] != KindElem {
		panic("xmltree: Attr outside an open element")
	}
	owner := b.open[n-1]
	if int32(b.frag.Len()) != owner+1 && b.frag.Kind[b.frag.Len()-1] != KindAttr {
		panic("xmltree: Attr after element content")
	}
	b.push(KindAttr, name, value)
}

// Text appends a text node; adjacent text nodes under the same parent are
// merged, and empty strings are dropped (XDM forbids empty text nodes).
func (b *Builder) Text(value string) {
	if value == "" {
		return
	}
	f := b.frag
	n := len(b.open)
	var top int32 = -1
	if n > 0 {
		top = b.open[n-1]
	}
	last := int32(f.Len() - 1)
	if last >= 0 && f.Kind[last] == KindText && b.lastTop == top {
		f.Value[last] += value
		return
	}
	b.push(KindText, "", value)
	b.lastTop = top
}

// EndElem closes the current element (or document) node and fixes its
// subtree size.
func (b *Builder) EndElem() {
	n := len(b.open)
	if n == 0 {
		panic("xmltree: EndElem with no open element")
	}
	v := b.open[n-1]
	b.open = b.open[:n-1]
	b.frag.Size[v] = int32(b.frag.Len()) - v - 1
	b.lastTop = -2
}

// CopySubtree appends a deep copy of the subtree rooted at src:pre
// (including attributes) as content of the currently open element. This is
// the node-copying step of XQuery element construction.
func (b *Builder) CopySubtree(src *Fragment, pre int32) {
	f := b.frag
	n := len(b.open)
	if n == 0 {
		panic("xmltree: CopySubtree with no open element")
	}
	base := int32(f.Len())
	parentLevel := f.Level[b.open[n-1]]
	srcLevel := src.Level[pre]
	end := pre + src.Size[pre]
	for c := pre; c <= end; c++ {
		f.Kind = append(f.Kind, src.Kind[c])
		f.Name = append(f.Name, src.Name[c])
		f.Value = append(f.Value, src.Value[c])
		f.Size = append(f.Size, src.Size[c])
		f.Level = append(f.Level, src.Level[c]-srcLevel+parentLevel+1)
		p := src.Parent[c]
		if c == pre {
			f.Parent = append(f.Parent, b.open[n-1])
		} else {
			f.Parent = append(f.Parent, p-pre+base)
		}
	}
	b.lastTop = -2
}

// Close finalizes the fragment; any still-open nodes are closed. The
// builder must not be reused afterwards.
func (b *Builder) Close() *Fragment {
	for len(b.open) > 0 {
		b.EndElem()
	}
	f := b.frag
	b.frag = nil
	return f
}

// Depth returns the number of currently open nodes (used by parsers to
// validate balance).
func (b *Builder) Depth() int { return len(b.open) }

// Validate checks the structural invariants of a fragment: sizes cover
// exactly the subtree span, levels increase by one along parent edges, and
// attribute nodes directly follow their owner. It is used by tests and the
// property-based checks.
func Validate(f *Fragment) error {
	if f.Len() == 0 {
		return fmt.Errorf("xmltree: empty fragment")
	}
	if f.Level[0] != 0 || f.Parent[0] != -1 {
		return fmt.Errorf("xmltree: bad root encoding")
	}
	if int(f.Size[0]) != f.Len()-1 {
		return fmt.Errorf("xmltree: root size %d does not span fragment of %d nodes", f.Size[0], f.Len())
	}
	for v := 0; v < f.Len(); v++ {
		p := f.Parent[v]
		if v > 0 {
			if p < 0 || int32(v) <= p || int32(v) > p+f.Size[p] {
				return fmt.Errorf("xmltree: node %d outside parent %d subtree", v, p)
			}
			if f.Level[v] != f.Level[p]+1 {
				return fmt.Errorf("xmltree: node %d level %d, parent level %d", v, f.Level[v], f.Level[p])
			}
		}
		if f.Kind[v] == KindAttr && f.Size[v] != 0 {
			return fmt.Errorf("xmltree: attribute %d with non-empty subtree", v)
		}
		if f.Kind[v] == KindAttr && f.Kind[p] != KindElem {
			return fmt.Errorf("xmltree: attribute %d owned by non-element", v)
		}
		end := int32(v) + f.Size[v]
		if end >= int32(f.Len()) {
			return fmt.Errorf("xmltree: node %d size %d exceeds fragment", v, f.Size[v])
		}
	}
	return nil
}
