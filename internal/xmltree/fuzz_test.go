package xmltree

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/qerr"
)

// FuzzParseXML asserts the document parser's total-function contract
// under the default input guards: arbitrary bytes either build a valid
// fragment or return a classified error — never a panic, never an
// unbounded allocation. Successfully parsed fragments must round-trip
// through the serializer.
func FuzzParseXML(f *testing.F) {
	for _, seed := range []string{
		`<a><b><c/><d/></b><c/></a>`,
		`<r><e k="1" g="a"><v>10</v></e></r>`,
		`<a xmlns:x="u" x:b="1">t &amp; &#65; tail</a>`,
		`<a>` + strings.Repeat("<b>", 40) + strings.Repeat("</b>", 40) + `</a>`,
		`<!-- comment --><a/><?pi data?>`,
		`<a`, `</a>`, `<a></b>`, `text only`, ``,
		`<a b="unterminated><c/></a>`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		opts := DefaultLimits()
		// Tighten the guards so the fuzzer explores them instead of OOMing
		// first.
		opts.MaxBytes = 1 << 20
		opts.MaxDepth = 256
		opts.MaxNodes = 1 << 16
		frag, err := Parse(strings.NewReader(string(data)), "fuzz", opts)
		if err != nil {
			if !errors.Is(err, qerr.ErrParse) {
				t.Fatalf("unclassified parse failure: %v", err)
			}
			return
		}
		if frag.Len() < 2 {
			t.Fatalf("parsed fragment with %d nodes", frag.Len())
		}
		_ = SerializeToString(frag, 0, SerializeOptions{})
	})
}

func TestParseLimits(t *testing.T) {
	deep := strings.Repeat("<a>", 50) + "x" + strings.Repeat("</a>", 50)
	t.Run("depth", func(t *testing.T) {
		opts := ParseOptions{MaxDepth: 10}
		_, err := ParseString(deep, "d.xml", opts)
		if !errors.Is(err, qerr.ErrLimit) || !errors.Is(err, qerr.ErrParse) {
			t.Fatalf("depth guard: %v", err)
		}
		if _, err := ParseString(deep, "d.xml", ParseOptions{MaxDepth: 50}); err != nil {
			t.Fatalf("depth at the limit rejected: %v", err)
		}
	})
	t.Run("bytes", func(t *testing.T) {
		opts := ParseOptions{MaxBytes: 16}
		_, err := ParseString(deep, "d.xml", opts)
		if !errors.Is(err, qerr.ErrLimit) {
			t.Fatalf("byte guard: %v", err)
		}
	})
	t.Run("nodes", func(t *testing.T) {
		var sb strings.Builder
		sb.WriteString("<r>")
		for i := 0; i < 100; i++ {
			sb.WriteString("<e>t</e>")
		}
		sb.WriteString("</r>")
		_, err := ParseString(sb.String(), "n.xml", ParseOptions{MaxNodes: 50})
		if !errors.Is(err, qerr.ErrLimit) {
			t.Fatalf("node guard: %v", err)
		}
	})
	t.Run("unlimited-zero-value", func(t *testing.T) {
		if _, err := ParseString(deep, "d.xml", ParseOptions{}); err != nil {
			t.Fatalf("zero-value options rejected input: %v", err)
		}
	})
	t.Run("defaults-pass-normal-docs", func(t *testing.T) {
		if _, err := ParseString(deep, "d.xml", DefaultLimits()); err != nil {
			t.Fatalf("default limits rejected a 50-deep document: %v", err)
		}
	})
}

// TestParseErrorClassified pins the taxonomy on malformed documents.
func TestParseErrorClassified(t *testing.T) {
	for _, src := range []string{`<a><b></a>`, `<a`, ``, `plain text`} {
		_, err := ParseString(src, "bad.xml", ParseOptions{})
		if err == nil {
			t.Errorf("%q parsed", src)
			continue
		}
		if !errors.Is(err, qerr.ErrParse) {
			t.Errorf("%q: unclassified error %v", src, err)
		}
	}
}
