package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// paperFragment is the tree of Figure 1/5: <a><b><c/><d/></b><c/></a>.
const paperFragment = `<a><b><c/><d/></b><c/></a>`

func TestFigure5Encoding(t *testing.T) {
	f := MustParseString(paperFragment)
	// Preorder: 0 doc, 1 a, 2 b, 3 c1, 4 d, 5 c2.
	wantNames := []string{"", "a", "b", "c", "d", "c"}
	wantLevels := []int32{0, 1, 2, 3, 3, 2}
	wantSizes := []int32{5, 4, 2, 0, 0, 0}
	if f.Len() != 6 {
		t.Fatalf("got %d nodes, want 6", f.Len())
	}
	for i := 0; i < 6; i++ {
		if f.Name[i] != wantNames[i] {
			t.Errorf("node %d name %q, want %q", i, f.Name[i], wantNames[i])
		}
		if f.Level[i] != wantLevels[i] {
			t.Errorf("node %d level %d, want %d", i, f.Level[i], wantLevels[i])
		}
		if f.Size[i] != wantSizes[i] {
			t.Errorf("node %d size %d, want %d", i, f.Size[i], wantSizes[i])
		}
	}
	// b (pre 2) precedes d (pre 4) in document order, per the paper.
	if !(2 < 4) || !f.InSubtree(2, 4) || f.InSubtree(2, 5) {
		t.Error("subtree containment wrong")
	}
	if err := Validate(f); err != nil {
		t.Fatal(err)
	}
}

func TestChildrenAttributesDescendants(t *testing.T) {
	f := MustParseString(`<r a="1" b="2"><x><y/>t</x><z/></r>`)
	// pre: 0 doc, 1 r, 2 @a, 3 @b, 4 x, 5 y, 6 text, 7 z
	r := int32(1)
	if got := f.Children(r); len(got) != 2 || got[0] != 4 || got[1] != 7 {
		t.Errorf("Children(r) = %v", got)
	}
	if got := f.Attributes(r); len(got) != 2 || f.Name[got[0]] != "a" || f.Name[got[1]] != "b" {
		t.Errorf("Attributes(r) = %v", got)
	}
	if got := f.Descendants(r); len(got) != 4 { // x, y, text, z (attrs excluded)
		t.Errorf("Descendants(r) = %v", got)
	}
	if got := f.Children(4); len(got) != 2 || f.Name[got[0]] != "y" || f.Kind[got[1]] != KindText {
		t.Errorf("Children(x) = %v", got)
	}
}

func TestStringValue(t *testing.T) {
	f := MustParseString(`<r a="v">one<x>two</x>three</r>`)
	if got := f.StringValue(1); got != "onetwothree" {
		t.Errorf("StringValue(r) = %q", got)
	}
	if got := f.StringValue(2); got != "v" {
		t.Errorf("StringValue(@a) = %q", got)
	}
	if got := f.StringValue(0); got != "onetwothree" {
		t.Errorf("StringValue(doc) = %q", got)
	}
}

func TestTextMerging(t *testing.T) {
	// Entities split CharData tokens; they must merge to one text node.
	f := MustParseString(`<r>a&amp;b</r>`)
	if n := f.ComputeStats().Texts; n != 1 {
		t.Errorf("got %d text nodes, want 1", n)
	}
	if got := f.StringValue(1); got != "a&b" {
		t.Errorf("StringValue = %q", got)
	}
}

func TestWhitespaceStripping(t *testing.T) {
	doc := "<r>\n  <x>keep me</x>\n</r>"
	f := MustParseString(doc)
	if n := f.ComputeStats().Texts; n != 1 {
		t.Errorf("stripped parse: %d text nodes, want 1", n)
	}
	kept, err := ParseString(doc, "t", ParseOptions{KeepWhitespaceText: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := kept.ComputeStats().Texts; n != 3 {
		t.Errorf("keeping parse: %d text nodes, want 3", n)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseString(`<a><b></a>`, "bad", ParseOptions{}); err == nil {
		t.Error("expected error for mismatched tags")
	}
	if _, err := ParseString(``, "empty", ParseOptions{}); err == nil {
		t.Error("expected error for empty document")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		`<a><b><c/><d/></b><c/></a>`,
		`<r a="1" b="x&amp;y"><t>text &lt;here&gt;</t><e/></r>`,
		`<m>mixed <b>bold</b> tail</m>`,
	}
	for _, d := range docs {
		f := MustParseString(d)
		out := SerializeToString(f, 0, SerializeOptions{})
		if out != d {
			t.Errorf("round trip: got %q, want %q", out, d)
		}
		f2 := MustParseString(out)
		if SerializeToString(f2, 0, SerializeOptions{}) != out {
			t.Errorf("second round trip differs for %q", d)
		}
	}
}

func TestSerializeIndent(t *testing.T) {
	f := MustParseString(`<a><b><c/></b></a>`)
	got := SerializeToString(f, 1, SerializeOptions{Indent: "  "})
	want := "<a>\n  <b>\n    <c/>\n  </b>\n</a>"
	if got != want {
		t.Errorf("indent serialize:\n%s\nwant:\n%s", got, want)
	}
}

func TestBuilderCopySubtree(t *testing.T) {
	src := MustParseString(`<s><b i="1"><c/></b><d/></s>`)
	b := NewBuilder()
	b.StartElem("e")
	// <e>{ d, b }</e> — Expression (3) of the paper: sequence order
	// establishes document order in the new fragment.
	dPre := int32(5) // doc=0, s=1, b=2, @i=3, c=4, d=5
	bPre := int32(2)
	b.CopySubtree(src, dPre)
	b.CopySubtree(src, bPre)
	f := b.Close()
	if err := Validate(f); err != nil {
		t.Fatal(err)
	}
	got := SerializeToString(f, 0, SerializeOptions{})
	want := `<e><d/><b i="1"><c/></b></e>`
	if got != want {
		t.Errorf("constructed fragment = %q, want %q", got, want)
	}
	// In the new fragment, d now precedes b in document order.
	var dNew, bNew int32 = -1, -1
	for i := 0; i < f.Len(); i++ {
		switch f.Name[i] {
		case "d":
			dNew = int32(i)
		case "b":
			bNew = int32(i)
		}
	}
	if !(dNew < bNew) {
		t.Errorf("document order not established from sequence order: d=%d b=%d", dNew, bNew)
	}
}

func TestBuilderPanics(t *testing.T) {
	assertPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	assertPanic("attr without element", func() { NewBuilder().Attr("a", "1") })
	assertPanic("attr after content", func() {
		b := NewBuilder()
		b.StartElem("e")
		b.Text("x")
		b.Attr("a", "1")
	})
	assertPanic("end without start", func() { NewBuilder().EndElem() })
}

func TestStoreDerive(t *testing.T) {
	s := NewStore()
	f1 := MustParseString(`<a/>`)
	id1 := s.Add(f1)
	d := s.Derive()
	f2 := MustParseString(`<b/>`)
	id2 := d.Add(f2)
	if id1 != 0 || id2 != 1 {
		t.Fatalf("ids = %d, %d", id1, id2)
	}
	if s.Len() != 1 || d.Len() != 2 {
		t.Errorf("lens = %d, %d", s.Len(), d.Len())
	}
	if d.Frag(0) != f1 {
		t.Error("derived store lost shared fragment")
	}
}

// randomXML builds a random small document for property tests.
func randomXML(r *rand.Rand, depth int) string {
	var sb strings.Builder
	names := []string{"a", "b", "c", "d"}
	var gen func(d int)
	gen = func(d int) {
		name := names[r.Intn(len(names))]
		sb.WriteString("<" + name)
		if r.Intn(3) == 0 {
			sb.WriteString(` k="` + names[r.Intn(len(names))] + `"`)
		}
		sb.WriteString(">")
		n := r.Intn(4)
		for i := 0; i < n && d < depth; i++ {
			if r.Intn(3) == 0 {
				sb.WriteString("t" + names[r.Intn(len(names))])
			} else {
				gen(d + 1)
			}
		}
		sb.WriteString("</" + name + ">")
	}
	gen(0)
	return sb.String()
}

func TestPropertyParseSerializeParse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomXML(r, 4)
		frag, err := ParseString(doc, "p", ParseOptions{})
		if err != nil {
			return false
		}
		if Validate(frag) != nil {
			return false
		}
		out := SerializeToString(frag, 0, SerializeOptions{})
		frag2, err := ParseString(out, "p2", ParseOptions{})
		if err != nil {
			return false
		}
		return SerializeToString(frag2, 0, SerializeOptions{}) == out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertySizeLevelInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		frag, err := ParseString(randomXML(r, 5), "p", ParseOptions{})
		if err != nil {
			return false
		}
		// Sum of child subtree spans (+attrs) equals parent size.
		for v := 0; v < frag.Len(); v++ {
			if frag.Kind[v] != KindElem {
				continue
			}
			span := int32(len(frag.Attributes(int32(v))))
			for _, c := range frag.Children(int32(v)) {
				span += frag.Size[c] + 1
			}
			if span != frag.Size[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
