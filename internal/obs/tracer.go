package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer receives execution spans: one per pipeline phase (category
// "phase": parse, normalize, compile, optimize, execute) and one per
// operator kernel evaluation (category "op"). StartSpan opens a span and
// returns the closure that closes it; implementations must tolerate
// concurrent calls — morsel workers trace from their own goroutines.
//
// tid groups spans into horizontal tracks for timeline viewers: the
// coordinator (and the serial engine) uses track 0, parallel workers pass
// their worker index + 1, so a staircase region's per-worker split is
// visible as parallel slices.
type Tracer interface {
	StartSpan(tid int, cat, name string) func()
}

// JSONTrace is a Tracer sink writing the Trace Event Format consumed by
// chrome://tracing and https://ui.perfetto.dev: a JSON array of complete
// ("ph":"X") duration events. Events are written as spans close, under a
// mutex; buffer the writer if the sink is a file. Close terminates the
// JSON array — a trace without Close is not valid JSON.
type JSONTrace struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	n     int
	err   error
}

// NewJSONTrace starts a trace writing to w.
func NewJSONTrace(w io.Writer) *JSONTrace {
	t := &JSONTrace{w: w, start: time.Now()}
	_, t.err = io.WriteString(w, "[")
	return t
}

// StartSpan implements Tracer.
func (t *JSONTrace) StartSpan(tid int, cat, name string) func() {
	t0 := time.Now()
	return func() {
		d := time.Since(t0)
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.err != nil {
			return
		}
		sep := ","
		if t.n == 0 {
			sep = ""
		}
		t.n++
		// Names come from operator labels and may contain quotes
		// (doc "auction.xml"); marshal them instead of splicing.
		nameJSON, err := json.Marshal(name)
		if err != nil {
			t.err = err
			return
		}
		_, t.err = fmt.Fprintf(t.w, "%s\n{\"name\":%s,\"cat\":%q,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}",
			sep, nameJSON, cat,
			float64(t0.Sub(t.start).Nanoseconds())/1e3,
			float64(d.Nanoseconds())/1e3, tid)
	}
}

// Close terminates the JSON array and reports any deferred write error.
func (t *JSONTrace) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	_, t.err = io.WriteString(t.w, "\n]\n")
	return t.err
}
