package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Errorf("histogram count/sum = %d/%d, want 6/1106", h.Count(), h.Sum())
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != 6 {
		t.Errorf("bucket counts sum to %d, want 6", total)
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Error("snapshot not sorted by name")
		}
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "c") || !strings.Contains(sb.String(), "count=6") {
		t.Errorf("text snapshot missing entries:\n%s", sb.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("n").Inc()
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Load(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector()
	c.SetPoolBaseline(100, 10)
	c.OpDone(3, "step", "step child::item", "for $x", true, 2*time.Millisecond, 10, 20, 40)
	c.OpDone(3, "step", "step child::item", "for $x", true, time.Millisecond, 5, 10, 20)
	c.MemoHit(3)
	c.OpDone(1, "doc", `doc "x"`, "", false, time.Microsecond, 0, 1, 1)
	c.Morsel(3, 0, time.Millisecond)
	c.Morsel(3, 1, 2*time.Millisecond)
	c.Morsel(3, 0, time.Millisecond)

	st := c.Finish(5*time.Millisecond, 130, 14)
	if len(st.Ops) != 2 || st.Ops[0].Node != 1 || st.Ops[1].Node != 3 {
		t.Fatalf("ops not sorted by node: %+v", st.Ops)
	}
	op := st.Op(3)
	if op == nil {
		t.Fatal("Op(3) = nil")
	}
	if op.Calls != 2 || op.RowsIn != 15 || op.RowsOut != 30 || op.Cells != 60 || op.Wall != 3*time.Millisecond {
		t.Errorf("aggregation wrong: %+v", op)
	}
	if op.MemoHits != 1 || st.MemoHits != 1 {
		t.Errorf("memo hits: op %d, run %d, want 1/1", op.MemoHits, st.MemoHits)
	}
	if op.Morsels != 3 || op.Busy != 4*time.Millisecond {
		t.Errorf("morsels/busy = %d/%v, want 3/4ms", op.Morsels, op.Busy)
	}
	if len(op.Workers) != 2 || op.Workers[0].Worker != 0 || op.Workers[0].Morsels != 2 || op.Workers[1].Morsels != 1 {
		t.Errorf("worker split wrong: %+v", op.Workers)
	}
	if st.PoolHits != 30 || st.PoolMisses != 4 {
		t.Errorf("pool deltas = %d/%d, want 30/4", st.PoolHits, st.PoolMisses)
	}
	if st.Op(99) != nil {
		t.Error("Op(99) should be nil")
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	c.SetPoolBaseline(1, 2)
	c.OpDone(1, "k", "l", "", false, time.Second, 1, 1, 1)
	c.MemoHit(1)
	c.Morsel(1, 0, time.Second)
	if st := c.Finish(time.Second, 0, 0); st != nil {
		t.Errorf("nil collector Finish = %+v, want nil", st)
	}
}

func TestJSONTraceIsValidTraceEventJSON(t *testing.T) {
	var sb strings.Builder
	tr := NewJSONTrace(&sb)
	end := tr.StartSpan(0, "phase", "compile")
	inner := tr.StartSpan(1, "op", `doc "auction.xml"`)
	inner()
	end()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Cat  string  `json:"cat"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Tid  int     `json:"tid"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	// Spans close inner-first.
	if events[0].Name != `doc "auction.xml"` || events[0].Cat != "op" || events[0].Tid != 1 {
		t.Errorf("inner span wrong: %+v", events[0])
	}
	if events[1].Name != "compile" || events[1].Ph != "X" {
		t.Errorf("outer span wrong: %+v", events[1])
	}
	if events[1].Dur < events[0].Dur {
		t.Error("outer span should not be shorter than the inner one")
	}
}

func TestJSONTraceConcurrentSpans(t *testing.T) {
	var sb strings.Builder // all writes funnel through the trace's own lock
	tr := NewJSONTrace(&sb)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.StartSpan(w+1, "op", "morsel")()
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &events); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	if len(events) != 200 {
		t.Errorf("got %d events, want 200", len(events))
	}
}
