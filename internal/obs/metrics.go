// Package obs is the engine's observability layer: a lightweight metrics
// registry (atomic counters, gauges and power-of-two histograms — zero
// allocations on the hot path, whether or not anyone is watching), the
// per-plan-node execution statistics behind EXPLAIN ANALYZE
// (Collector/OpStats/RunStats), and a Tracer span interface with a
// chrome://tracing-compatible JSON sink (JSONTrace).
//
// The package sits below every other engine layer (it imports only the
// standard library), so xdm, engine, parallel and core can all report
// into it without cycles. Process-wide engine metrics live in the Default
// registry; per-query operator statistics travel through a *Collector
// handed to the engine via its Options (nil = off, and a nil collector
// costs exactly one pointer comparison per operator — the paper's
// measured claims should be checkable without perturbing what they
// measure).
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the histogram bucket count: bucket i holds observations
// v with bits.Len64(v) == i, i.e. power-of-two value ranges, which is
// plenty for latency distributions and needs no configuration.
const histBuckets = 64

// Histogram counts observations in power-of-two buckets. All operations
// are atomic and allocation-free.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (negative values clamp to bucket 0).
func (h *Histogram) Observe(v int64) {
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket: Count observations were at
// most Le (the bucket's inclusive upper bound, a power of two minus one).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			le := int64(0) // bucket 0: v <= 0
			if i > 0 && i < 63 {
				le = int64(1)<<i - 1
			} else if i >= 63 {
				le = int64(^uint64(0) >> 1) // max int64
			}
			out = append(out, Bucket{Le: le, Count: n})
		}
	}
	return out
}

// Metric is one registry entry rendered for a snapshot.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"` // "counter", "gauge" or "histogram"
	Value   int64    `json:"value,omitempty"`
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry is a named collection of metrics. Lookup (get-or-create) takes
// a mutex; the returned metric handles are lock-free, so callers hold
// handles, not names, on hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot renders every metric, sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Load()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Load()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: "histogram", Count: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Write renders a plain-text snapshot, one metric per line (histograms
// report count, sum and mean).
func (r *Registry) Write(w io.Writer) error {
	for _, m := range r.Snapshot() {
		var err error
		if m.Kind == "histogram" {
			mean := int64(0)
			if m.Count > 0 {
				mean = m.Sum / m.Count
			}
			_, err = fmt.Fprintf(w, "%-40s count=%d sum=%d mean=%d\n", m.Name, m.Count, m.Sum, mean)
		} else {
			_, err = fmt.Fprintf(w, "%-40s %d\n", m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Default is the process-wide registry holding the engine metrics below.
var Default = NewRegistry()

// Engine metrics. Handles are resolved once at init, so hot-path updates
// are single atomic adds — no map lookups, no allocations.
var (
	// QueriesTotal counts completed engine executions (serial + parallel).
	QueriesTotal = Default.Counter("engine_queries_total")
	// QueryErrorsTotal counts executions that returned an error.
	QueryErrorsTotal = Default.Counter("engine_query_errors_total")
	// CellsTotal counts table cells materialized by operator evaluations.
	CellsTotal = Default.Counter("engine_cells_materialized_total")
	// MemoHitsTotal counts memoized plan-node reuses.
	MemoHitsTotal = Default.Counter("engine_memo_hits_total")
	// MorselsTotal counts morsel tasks executed by the parallel pool.
	MorselsTotal = Default.Counter("parallel_morsels_total")
	// QueryNanos is the query wall-clock latency distribution in ns.
	QueryNanos = Default.Histogram("engine_query_latency_ns")
)

// Governor metrics (internal/governor): admission control, queueing,
// load shedding, degradation and the shared byte ledger.
var (
	// AdmittedTotal counts queries admitted past the governor's gate.
	AdmittedTotal = Default.Counter("governor_admitted_total")
	// QueuedTotal counts queries that had to wait in the admission queue.
	QueuedTotal = Default.Counter("governor_queued_total")
	// ShedTotal counts queries rejected with ErrOverload (queue full or
	// queue deadline exceeded).
	ShedTotal = Default.Counter("governor_shed_total")
	// DowngradesTotal counts admitted queries executed degraded (parallel
	// plan forced serial) because the process was under pressure.
	DowngradesTotal = Default.Counter("governor_downgrades_total")
	// FaultsInjected counts deterministic faults injected by an armed
	// governor.FaultPlan (zero in production).
	FaultsInjected = Default.Counter("governor_faults_injected_total")
	// ActiveQueries gauges the queries currently holding an admission slot.
	ActiveQueries = Default.Gauge("governor_active_queries")
	// QueueDepth gauges the current admission-queue length.
	QueueDepth = Default.Gauge("governor_queue_depth")
	// LedgerBytes gauges the bytes currently reserved in the governor's
	// shared memory ledger.
	LedgerBytes = Default.Gauge("governor_ledger_bytes")
	// QueueWaitNanos is the distribution of time spent queued before
	// admission (admitted queries only; shed queries don't report).
	QueueWaitNanos = Default.Histogram("governor_queue_wait_ns")
)

// Resilience metrics (internal/resilience): per-client rate limiting,
// the stuck-query watchdog, circuit breakers and HTTP fault injection.
var (
	// RateAllowedTotal counts requests admitted by per-client rate limits.
	RateAllowedTotal = Default.Counter("ratelimit_allowed_total")
	// RateLimitedTotal counts requests rejected with ErrRateLimited (429).
	RateLimitedTotal = Default.Counter("ratelimit_limited_total")
	// RateClients gauges the number of per-client token buckets alive.
	RateClients = Default.Gauge("ratelimit_clients")
	// WatchdogWatchedTotal counts queries registered with the watchdog.
	WatchdogWatchedTotal = Default.Counter("watchdog_watched_total")
	// WatchdogKillsTotal counts queries cancelled for missing heartbeats.
	WatchdogKillsTotal = Default.Counter("watchdog_kills_total")
	// BreakerOpensTotal counts closed→open (and half-open→open) trips.
	BreakerOpensTotal = Default.Counter("breaker_opens_total")
	// BreakerRejectsTotal counts requests rejected by an open breaker.
	BreakerRejectsTotal = Default.Counter("breaker_rejects_total")
	// HTTPFaultsInjected counts faults injected by an armed
	// resilience.HTTPFaultPlan (zero in production).
	HTTPFaultsInjected = Default.Counter("httpfault_injected_total")
)

// Out-of-core store metrics (internal/store): mmap'd columnar document
// stores, their demand-paged residency, and ledger-pressure evictions.
var (
	// StoreMappedBytes gauges the bytes currently mmap'd across all open
	// stores (the corpus footprint on the address space, not in RAM).
	StoreMappedBytes = Default.Gauge("store_mapped_bytes")
	// StoreResidentBytes gauges the mapped bytes resident in physical
	// memory at the last residency sample (mincore).
	StoreResidentBytes = Default.Gauge("store_resident_bytes")
	// StorePageFaultsTotal counts pages observed newly resident between
	// residency samples — a lower bound on major+minor faults served for
	// store mappings (pages faulted and evicted between samples are
	// invisible).
	StorePageFaultsTotal = Default.Counter("store_page_faults_total")
	// StoreEvictionsTotal counts ledger-pressure evictions: the residency
	// sampler told the kernel to drop store pages (madvise DONTNEED)
	// because the byte ledger could not cover what was resident.
	StoreEvictionsTotal = Default.Counter("store_evictions_total")
	// StorePartsOpen gauges the store part files currently mapped.
	StorePartsOpen = Default.Gauge("store_parts_open")
)

// Storage fault-tolerance metrics (internal/store): replica failover,
// the background scrubber, and quarantine/re-replication events.
var (
	// StoreFailoverTotal counts part failovers: a mapped part was found
	// bad (CRC mismatch, I/O fault, failed open) and the store switched
	// to the next healthy replica — at mount time or mid-query.
	StoreFailoverTotal = Default.Counter("store_failover_total")
	// StoreSuspectParts gauges parts currently marked suspect: a fault
	// was observed on their active replica and failover has not yet
	// replaced it.
	StoreSuspectParts = Default.Gauge("store_suspect_parts")
	// StoreScrubPassesTotal counts completed scrub passes (every part of
	// a store re-verified once).
	StoreScrubPassesTotal = Default.Counter("store_scrub_passes_total")
	// StoreScrubPartsTotal counts part-file verifications performed by
	// the scrubber (active mappings and standby replica files alike).
	StoreScrubPartsTotal = Default.Counter("store_scrub_parts_total")
	// StoreScrubErrorsTotal counts scrub verifications that found a bad
	// part (CRC mismatch, truncation, unreadable file).
	StoreScrubErrorsTotal = Default.Counter("store_scrub_errors_total")
	// StoreQuarantinedParts gauges part files quarantined (renamed to
	// *.quarantine) and not yet restored by re-replication.
	StoreQuarantinedParts = Default.Gauge("store_quarantined_parts")
	// StoreRereplicatedTotal counts part files restored from a healthy
	// replica after quarantine.
	StoreRereplicatedTotal = Default.Counter("store_rereplicated_total")
	// StoreMorselFaultsTotal counts parallel-executor task batches
	// aborted by a retryable storage fault — the morsels order
	// indifference lets the engine re-execute against a replica.
	StoreMorselFaultsTotal = Default.Counter("store_morsel_faults_total")
)
