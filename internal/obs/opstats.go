package obs

import (
	"sort"
	"sync"
	"time"
)

// WorkerStats is one worker's share of a parallel operator: how many
// morsel tasks it pulled and how long it was busy with them.
type WorkerStats struct {
	Worker  int           `json:"worker"`
	Morsels int64         `json:"morsels"`
	Busy    time.Duration `json:"busy_ns"`
}

// OpStats aggregates the measured execution of one plan node — the data
// EXPLAIN ANALYZE attaches to the Explain tree. Node is the plan node id
// (the "#id" prefix Explain prints), so stats join the rendered plan by
// id. For operators evaluated morsel-wise, Busy sums per-worker CPU time
// (it exceeds Wall on a multicore pool) and Workers carries the split.
type OpStats struct {
	Node   int    `json:"node"`
	Kind   string `json:"kind"`
	Label  string `json:"label"`
	Origin string `json:"origin,omitempty"`
	Par    bool   `json:"par,omitempty"`
	// Calls counts kernel evaluations (1 for every reachable node: shared
	// DAG nodes are memoized); MemoHits counts the memoized reuses.
	Calls    int64 `json:"calls"`
	MemoHits int64 `json:"memo_hits,omitempty"`
	RowsIn   int64 `json:"rows_in"`
	RowsOut  int64 `json:"rows_out"`
	// Cells is rows×columns materialized for the node's output table —
	// the quantity the engine's memory cutoff charges.
	Cells int64 `json:"cells"`
	// Wall is coordinator wall-clock time spent evaluating the node.
	Wall time.Duration `json:"wall_ns"`
	// Busy, Morsels and Workers are only set for morsel-parallel
	// evaluations: summed per-worker busy time, morsel task count, and
	// the per-worker split.
	Busy    time.Duration `json:"busy_ns,omitempty"`
	Morsels int64         `json:"morsels,omitempty"`
	Workers []WorkerStats `json:"workers,omitempty"`
}

// RunStats is the collected observability record of one execution:
// per-node operator stats plus the run-level counters (memo hits, buffer
// pool traffic during the run).
type RunStats struct {
	Ops      []OpStats     `json:"ops"` // ascending node id
	Elapsed  time.Duration `json:"elapsed_ns"`
	MemoHits int64         `json:"memo_hits"`
	// PoolHits/PoolMisses are the xdm buffer-pool deltas over the run.
	// The pool is process-global: concurrent executions bleed into each
	// other's deltas, so treat these as exact only for isolated runs.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
	// Degraded and QueueWait record the resource governor's admission
	// decision for this run: whether execution was downgraded (parallel
	// plan forced serial under pressure) and how long the query waited
	// for an admission slot. Zero without a governor.
	Degraded  bool          `json:"degraded,omitempty"`
	QueueWait time.Duration `json:"queue_wait_ns,omitempty"`
}

// Op returns the stats for a plan node id, or nil if the node was never
// evaluated (pruned subtree of a shared DAG, or an error aborted the run
// first).
func (s *RunStats) Op(node int) *OpStats {
	i := sort.Search(len(s.Ops), func(i int) bool { return s.Ops[i].Node >= node })
	if i < len(s.Ops) && s.Ops[i].Node == node {
		return &s.Ops[i]
	}
	return nil
}

// Collector accumulates OpStats during one execution. The engine walks
// the DAG on a single goroutine, but morsel workers report concurrently,
// so every method locks; the frequency is per-operator and per-morsel,
// not per-row, which keeps the cost invisible next to the work measured.
// All methods are nil-safe: calling them on a nil *Collector is a no-op,
// so call sites need no guard of their own.
type Collector struct {
	mu                     sync.Mutex
	ops                    map[int]*OpStats
	memoHits               int64
	poolHits0, poolMisses0 int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{ops: make(map[int]*OpStats)}
}

// SetPoolBaseline records the buffer-pool counters at execution start;
// Finish reports the delta.
func (c *Collector) SetPoolBaseline(hits, misses int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.poolHits0, c.poolMisses0 = hits, misses
	c.mu.Unlock()
}

func (c *Collector) op(node int) *OpStats {
	s, ok := c.ops[node]
	if !ok {
		s = &OpStats{Node: node}
		c.ops[node] = s
	}
	return s
}

// OpDone records one kernel evaluation of a plan node.
func (c *Collector) OpDone(node int, kind, label, origin string, par bool, wall time.Duration, rowsIn, rowsOut, cells int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	s := c.op(node)
	s.Kind, s.Label, s.Origin, s.Par = kind, label, origin, par
	s.Calls++
	s.RowsIn += rowsIn
	s.RowsOut += rowsOut
	s.Cells += cells
	s.Wall += wall
	c.mu.Unlock()
}

// MemoHit records a memoized reuse of a plan node.
func (c *Collector) MemoHit(node int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.op(node).MemoHits++
	c.memoHits++
	c.mu.Unlock()
}

// Morsel records one completed morsel task of a parallel operator: which
// worker ran it and for how long. Safe for concurrent use from workers.
func (c *Collector) Morsel(node, worker int, busy time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	s := c.op(node)
	s.Morsels++
	s.Busy += busy
	for i := range s.Workers {
		if s.Workers[i].Worker == worker {
			s.Workers[i].Morsels++
			s.Workers[i].Busy += busy
			c.mu.Unlock()
			return
		}
	}
	s.Workers = append(s.Workers, WorkerStats{Worker: worker, Morsels: 1, Busy: busy})
	c.mu.Unlock()
}

// Finish freezes the collector into a RunStats: operators sorted by node
// id, worker splits sorted by worker, pool deltas against the baseline.
func (c *Collector) Finish(elapsed time.Duration, poolHits, poolMisses int64) *RunStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := &RunStats{
		Elapsed:    elapsed,
		MemoHits:   c.memoHits,
		PoolHits:   poolHits - c.poolHits0,
		PoolMisses: poolMisses - c.poolMisses0,
	}
	st.Ops = make([]OpStats, 0, len(c.ops))
	for _, s := range c.ops {
		sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].Worker < s.Workers[j].Worker })
		st.Ops = append(st.Ops, *s)
	}
	sort.Slice(st.Ops, func(i, j int) bool { return st.Ops[i].Node < st.Ops[j].Node })
	return st
}
