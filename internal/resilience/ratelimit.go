package resilience

import (
	"math"
	"sync"
	"time"

	"repro/internal/obs"
)

// Rate is a per-client rate limit: a token bucket holding at most Burst
// tokens, refilled at QPS tokens per second. QPS <= 0 disables limiting
// for the client; Burst <= 0 defaults to max(1, ceil(QPS)).
type Rate struct {
	QPS   float64
	Burst int
}

// Enabled reports whether the rate actually limits anything.
func (r Rate) Enabled() bool { return r.QPS > 0 }

// burst returns the effective bucket capacity.
func (r Rate) burst() float64 {
	if r.Burst > 0 {
		return float64(r.Burst)
	}
	return math.Max(1, math.Ceil(r.QPS))
}

// Limiter holds one token bucket per client key. Buckets are created
// lazily on first use and live for the process lifetime (the key space is
// the configured API-key set, which is small and bounded).
//
// The zero Limiter is not usable; call NewLimiter.
type Limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	// now is the clock, injectable for deterministic tests.
	now func() time.Time
}

// bucket is one client's token bucket state, guarded by Limiter.mu: the
// fractional token count and the instant it was last refilled.
type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter returns an empty limiter using the real clock.
func NewLimiter() *Limiter {
	return &Limiter{buckets: make(map[string]*bucket), now: time.Now}
}

// Allow spends one token from key's bucket under rate. When the bucket is
// empty it reports ok=false and the duration after which one full token
// will have refilled — the accurate Retry-After for a 429. A nil limiter
// or a disabled rate always allows.
func (l *Limiter) Allow(key string, rate Rate) (ok bool, retryAfter time.Duration) {
	if l == nil || !rate.Enabled() {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, found := l.buckets[key]
	if !found {
		// A new bucket starts full: a client's first contact may burst.
		b = &bucket{tokens: rate.burst(), last: now}
		l.buckets[key] = b
		obs.RateClients.Set(int64(len(l.buckets)))
	}
	// Refill for the time elapsed since the last decision, capped at the
	// burst capacity. A clock that stands still (tests) refills nothing.
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(rate.burst(), b.tokens+dt.Seconds()*rate.QPS)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		obs.RateAllowedTotal.Inc()
		return true, 0
	}
	obs.RateLimitedTotal.Inc()
	// Time until the deficit to one whole token refills at QPS.
	need := 1 - b.tokens
	retryAfter = time.Duration(need / rate.QPS * float64(time.Second))
	if retryAfter <= 0 {
		retryAfter = time.Millisecond
	}
	return false, retryAfter
}
