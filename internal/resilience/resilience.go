// Package resilience is the serving layer's survival kit: the mechanisms
// that keep one exrquyd process answering correctly while individual
// clients misbehave, individual queries wedge, and the network drops
// bytes on the floor.
//
// Four mechanisms, layered in front of (never instead of) the governor's
// admission control:
//
//   - Limiter: per-client token buckets (burst + sustained QPS) keyed on
//     API key. Rate limiting answers "is this client sending too fast?"
//     before the governor's admission gate answers "is the process too
//     busy?" — the two compose, and their rejections stay distinguishable
//     (qerr.ErrRateLimited vs qerr.ErrOverload, both 429).
//
//   - Watchdog: a per-query progress monitor. Every in-flight query
//     registers a heartbeat counter that the engine's existing
//     cooperative poll points bump (engine.Exec.CheckCancel — the same
//     sites that poll ctx.Done); a query silent for a full threshold is
//     cancelled through its context with ErrStuck as the cause. The
//     check is timer-based per probe (no central goroutine), and a
//     wedged query is killed within at most 2x the threshold.
//
//   - BreakerSet: per-client circuit breakers (closed → open → half-open)
//     tripped by consecutive watchdog kills or internal errors, so one
//     pathological query pattern fails fast instead of repeatedly
//     occupying governor slots until the watchdog fires.
//
//   - HTTPFaultPlan: a deterministic, seeded fault-injection middleware
//     for the HTTP layer — the server-side sibling of the governor's
//     FaultPlan. Injected latency, forced 500/503, connection resets and
//     partial-body truncation fire on fixed residues of a request
//     counter, so a failing chaos run replays exactly. It is armed only
//     through a test/config hook and is inert (nil) in production.
//
// All of this is licensed by the paper's central property: order
// indifference makes evaluation of order-dead plan regions insensitive
// to how — and how many times, and on which path — they are executed.
// A query killed by the watchdog and retried, a request hedged against
// the same engine, a response re-requested after an injected reset: each
// re-execution yields byte-identical results, so the serving layer may
// retry, hedge and degrade freely without changing answers (the same
// argument that licensed morsel parallelism and serial degradation).
//
// Metric handles live in internal/obs alongside the engine/governor
// families (ratelimit_*, watchdog_*, breaker_*, httpfault_*).
package resilience
