package resilience

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// BreakerConfig parameterizes the per-client circuit breakers. Failures
// <= 0 disables breaking entirely.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips a closed
	// breaker open (watchdog kills and internal 5xx both count).
	Failures int
	// Cooldown is how long an open breaker rejects before letting a
	// single half-open probe through. <= 0 defaults to 5s.
	Cooldown time.Duration
}

// cooldown returns the effective open duration.
func (c BreakerConfig) cooldown() time.Duration {
	if c.Cooldown > 0 {
		return c.Cooldown
	}
	return 5 * time.Second
}

// breakerState is one client's circuit state.
type breakerState int

const (
	breakerClosed   breakerState = iota // requests flow; failures counted
	breakerOpen                         // requests rejected until cooldown
	breakerHalfOpen                     // one probe in flight decides
)

// String names the state for /debug/stats.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one client's circuit: consecutive failures observed while
// closed, the instant it opened, and whether a half-open probe is out.
type breaker struct {
	state    breakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// BreakerSet holds one circuit breaker per client key.
//
// The classic three-state machine: closed counts consecutive failures and
// trips open at the threshold; open rejects everything (fail-fast, with a
// Retry-After equal to the cooldown remainder) until the cooldown
// elapses; then exactly one request is let through as a half-open probe —
// its success closes the circuit, its failure re-opens it for another
// cooldown. Concurrent requests during half-open are rejected, so a
// recovering backend sees one query, not a thundering herd.
//
// A nil *BreakerSet is valid and never breaks.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.Mutex
	m  map[string]*breaker
	// now is the clock, injectable for deterministic tests.
	now func() time.Time
}

// NewBreakerSet returns a breaker set, or nil (disabled) when
// cfg.Failures <= 0.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	if cfg.Failures <= 0 {
		return nil
	}
	return &BreakerSet{cfg: cfg, m: make(map[string]*breaker), now: time.Now}
}

// Allow asks whether a request for key may proceed. When the circuit is
// open it reports ok=false and the cooldown remainder as the Retry-After
// hint. When it admits a half-open probe, the caller MUST call Record for
// that request — the probe's outcome is what decides the circuit.
func (b *BreakerSet) Allow(key string) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br, found := b.m[key]
	if !found {
		br = &breaker{}
		b.m[key] = br
	}
	switch br.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		remaining := b.cfg.cooldown() - b.now().Sub(br.openedAt)
		if remaining > 0 {
			obs.BreakerRejectsTotal.Inc()
			return false, remaining
		}
		// Cooldown over: this request becomes the half-open probe.
		br.state = breakerHalfOpen
		br.probing = true
		return true, 0
	default: // half-open
		if br.probing {
			// A probe is already out; don't pile on a recovering client.
			obs.BreakerRejectsTotal.Inc()
			return false, b.cfg.cooldown()
		}
		br.probing = true
		return true, 0
	}
}

// Record reports the outcome of an allowed request for key. Failures are
// the caller's definition of "the serving path broke" — watchdog kills
// and internal errors, not client mistakes like parse errors.
func (b *BreakerSet) Record(key string, failed bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br, found := b.m[key]
	if !found {
		return
	}
	switch br.state {
	case breakerClosed:
		if !failed {
			br.fails = 0
			return
		}
		br.fails++
		if br.fails >= b.cfg.Failures {
			br.state = breakerOpen
			br.openedAt = b.now()
			br.fails = 0
			obs.BreakerOpensTotal.Inc()
		}
	case breakerHalfOpen:
		br.probing = false
		if failed {
			br.state = breakerOpen
			br.openedAt = b.now()
			obs.BreakerOpensTotal.Inc()
			return
		}
		br.state = breakerClosed
		br.fails = 0
	case breakerOpen:
		// A request admitted before the trip finishing late; ignore.
	}
}

// States snapshots every non-closed breaker for /debug/stats (closed
// circuits are the uninteresting steady state and are omitted).
func (b *BreakerSet) States() map[string]string {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out map[string]string
	for key, br := range b.m {
		if br.state == breakerClosed {
			continue
		}
		if out == nil {
			out = make(map[string]string)
		}
		out[key] = br.state.String()
	}
	return out
}
