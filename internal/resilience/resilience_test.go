package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock for the limiter and
// breaker tests — no sleeping, fully deterministic.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestLimiterBurstThenSustained(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter()
	l.now = clk.now
	rate := Rate{QPS: 10, Burst: 3}

	// The full burst is available immediately.
	for i := 0; i < 3; i++ {
		ok, _ := l.Allow("alice", rate)
		if !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	// The fourth is limited, with Retry-After = one token at 10 QPS = 100ms.
	ok, retryAfter := l.Allow("alice", rate)
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retryAfter != 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 100ms", retryAfter)
	}
	// Waiting exactly the advertised Retry-After refills one token.
	clk.advance(retryAfter)
	if ok, _ := l.Allow("alice", rate); !ok {
		t.Fatal("request after advertised Retry-After still rejected")
	}
	if ok, _ := l.Allow("alice", rate); ok {
		t.Fatal("second request after one-token refill admitted")
	}
}

func TestLimiterIsolatesClients(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter()
	l.now = clk.now
	rate := Rate{QPS: 1, Burst: 1}

	if ok, _ := l.Allow("alice", rate); !ok {
		t.Fatal("alice's first request rejected")
	}
	if ok, _ := l.Allow("alice", rate); ok {
		t.Fatal("alice's second request admitted")
	}
	// Bob's bucket is untouched by alice exhausting hers.
	if ok, _ := l.Allow("bob", rate); !ok {
		t.Fatal("bob rejected because of alice's traffic")
	}
}

func TestLimiterDisabledAndNil(t *testing.T) {
	var nilL *Limiter
	if ok, _ := nilL.Allow("k", Rate{QPS: 1}); !ok {
		t.Fatal("nil limiter rejected")
	}
	l := NewLimiter()
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("k", Rate{}); !ok {
			t.Fatal("disabled rate rejected")
		}
	}
}

func TestRateDefaultBurst(t *testing.T) {
	if got := (Rate{QPS: 2.5}).burst(); got != 3 {
		t.Fatalf("burst() = %v, want ceil(2.5) = 3", got)
	}
	if got := (Rate{QPS: 0.5}).burst(); got != 1 {
		t.Fatalf("burst() = %v, want min 1", got)
	}
}

func TestWatchdogKillsSilentQuery(t *testing.T) {
	const threshold = 30 * time.Millisecond
	w := NewWatchdog(threshold)
	ctx, probe := w.Watch(context.Background())
	defer probe.Close()

	start := time.Now()
	select {
	case <-ctx.Done():
	case <-time.After(10 * threshold):
		t.Fatal("silent query not killed within 10x threshold")
	}
	// Detection contract: at least one full threshold of silence, at most
	// two (plus scheduling slack).
	elapsed := time.Since(start)
	if elapsed < threshold {
		t.Fatalf("killed after %v, before a full threshold of silence", elapsed)
	}
	if !IsStuck(context.Cause(ctx)) {
		t.Fatalf("cancellation cause = %v, want ErrStuck", context.Cause(ctx))
	}
	if w.Kills() != 1 {
		t.Fatalf("Kills() = %d, want 1", w.Kills())
	}
}

func TestWatchdogSparesBeatingQuery(t *testing.T) {
	const threshold = 25 * time.Millisecond
	w := NewWatchdog(threshold)
	ctx, probe := w.Watch(context.Background())
	defer probe.Close()

	beat := HeartbeatFrom(ctx)
	if beat == nil {
		t.Fatal("watched context carries no heartbeat")
	}
	// Beat well inside the threshold for several periods: no kill.
	deadline := time.Now().Add(5 * threshold)
	for time.Now().Before(deadline) {
		beat.Add(1)
		time.Sleep(threshold / 5)
		if err := ctx.Err(); err != nil {
			t.Fatalf("beating query killed: cause %v", context.Cause(ctx))
		}
	}
	probe.Close()
	if w.Kills() != 0 {
		t.Fatalf("Kills() = %d, want 0", w.Kills())
	}
}

func TestWatchdogCloseStopsKill(t *testing.T) {
	const threshold = 20 * time.Millisecond
	w := NewWatchdog(threshold)
	ctx, probe := w.Watch(context.Background())
	probe.Close()
	time.Sleep(3 * threshold)
	if ctx.Err() != nil {
		t.Fatalf("closed probe still killed the query: %v", context.Cause(ctx))
	}
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	ctx, probe := w.Watch(context.Background())
	probe.Close() // nil probe
	if ctx.Err() != nil {
		t.Fatal("nil watchdog touched the context")
	}
	if NewWatchdog(0) != nil {
		t.Fatal("NewWatchdog(0) should disable (nil)")
	}
}

func TestHeartbeatHelpers(t *testing.T) {
	if HeartbeatFrom(context.Background()) != nil {
		t.Fatal("background context has a heartbeat")
	}
	Beat(context.Background()) // must not panic without a heartbeat
	var n atomic.Int64
	ctx := WithHeartbeat(context.Background(), &n)
	Beat(ctx)
	Beat(ctx)
	if n.Load() != 2 {
		t.Fatalf("heartbeat = %d after two beats, want 2", n.Load())
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := NewBreakerSet(BreakerConfig{Failures: 3, Cooldown: time.Second})
	b.now = clk.now

	// Closed: failures below the threshold keep it closed, and a success
	// resets the consecutive count.
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow("alice"); !ok {
			t.Fatal("closed breaker rejected")
		}
		b.Record("alice", true)
	}
	b.Record("alice", false) // success resets
	for i := 0; i < 2; i++ {
		b.Allow("alice")
		b.Record("alice", true)
	}
	if ok, _ := b.Allow("alice"); !ok {
		t.Fatal("breaker opened before the consecutive threshold")
	}
	b.Record("alice", true) // third consecutive failure: trips open

	// Open: rejected with the cooldown remainder as Retry-After.
	ok, retryAfter := b.Allow("alice")
	if ok {
		t.Fatal("open breaker admitted")
	}
	if retryAfter <= 0 || retryAfter > time.Second {
		t.Fatalf("open Retry-After = %v, want (0, 1s]", retryAfter)
	}
	// Other clients are unaffected.
	if ok, _ := b.Allow("bob"); !ok {
		t.Fatal("bob broken by alice's circuit")
	}

	// After the cooldown, exactly one half-open probe is admitted.
	clk.advance(time.Second + time.Millisecond)
	if ok, _ := b.Allow("alice"); !ok {
		t.Fatal("half-open probe rejected after cooldown")
	}
	if ok, _ := b.Allow("alice"); ok {
		t.Fatal("second concurrent half-open probe admitted")
	}
	// Probe failure re-opens for another cooldown.
	b.Record("alice", true)
	if ok, _ := b.Allow("alice"); ok {
		t.Fatal("breaker closed after failed probe")
	}
	// Probe success closes.
	clk.advance(time.Second + time.Millisecond)
	if ok, _ := b.Allow("alice"); !ok {
		t.Fatal("second half-open probe rejected")
	}
	b.Record("alice", false)
	if ok, _ := b.Allow("alice"); !ok {
		t.Fatal("breaker still open after successful probe")
	}
	if st := b.States(); len(st) != 0 {
		t.Fatalf("States() = %v after recovery, want empty", st)
	}
}

func TestBreakerNilAndDisabled(t *testing.T) {
	var b *BreakerSet
	if ok, _ := b.Allow("k"); !ok {
		t.Fatal("nil breaker rejected")
	}
	b.Record("k", true)
	if NewBreakerSet(BreakerConfig{}) != nil {
		t.Fatal("zero config should disable (nil)")
	}
}

func TestFaultPlanDeterministic(t *testing.T) {
	a := &HTTPFaultPlan{Seed: 7, Err500Every: 5}
	b := &HTTPFaultPlan{Seed: 7, Err500Every: 5}
	for i := int64(0); i < 100; i++ {
		if a.hits(i, 5) != b.hits(i, 5) {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	// Exactly 1 in 5 over any aligned window.
	fired := 0
	for i := int64(0); i < 100; i++ {
		if a.hits(i, 5) {
			fired++
		}
	}
	if fired != 20 {
		t.Fatalf("1-in-5 fault fired %d/100 times", fired)
	}
}

func TestFaultMiddlewareClasses(t *testing.T) {
	body := strings.Repeat("x", 256)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})

	// err500: seed 0, every request.
	srv := httptest.NewServer((&HTTPFaultPlan{Err500Every: 1}).Wrap(inner))
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatalf("forced-500 request failed at transport level: %v", err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "injected fault") {
		t.Fatalf("forced-500 body %q does not identify itself as injected", b)
	}
	srv.Close()

	// reset: the client sees a transport error, not a status.
	srv = httptest.NewServer((&HTTPFaultPlan{ResetEvery: 1}).Wrap(inner))
	if resp, err := http.Get(srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("reset fault still produced a response")
	}
	srv.Close()

	// truncate: status + partial body arrive, then the read fails — a
	// truncated 200 can never be mistaken for a complete one.
	srv = httptest.NewServer((&HTTPFaultPlan{TruncateEvery: 1, TruncateBytes: 10}).Wrap(inner))
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatalf("truncated request failed before headers: %v", err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatalf("truncated body read succeeded with %d bytes", len(got))
	}
	if len(got) > 10 {
		t.Fatalf("read %d bytes past the 10-byte truncation point", len(got))
	}
	srv.Close()

	// latency: response still completes, and visibly later.
	srv = httptest.NewServer((&HTTPFaultPlan{LatencyEvery: 1, Latency: 30 * time.Millisecond}).Wrap(inner))
	start := time.Now()
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatalf("latency-injected request failed: %v", err)
	}
	got, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(got) != body {
		t.Fatal("latency fault corrupted the body")
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("latency fault did not delay")
	}
	srv.Close()

	// nil plan: passthrough.
	if h := (*HTTPFaultPlan)(nil).Wrap(inner); h == nil {
		t.Fatal("nil plan returned nil handler")
	}
}

func TestParseFaultSpec(t *testing.T) {
	plan, err := ParseFaultSpec("seed=7,latency=13:3ms,err500=17,err503=19,reset=23,truncate=29:64")
	if err != nil {
		t.Fatalf("ParseFaultSpec: %v", err)
	}
	if plan.Seed != 7 || plan.LatencyEvery != 13 || plan.Latency != 3*time.Millisecond ||
		plan.Err500Every != 17 || plan.Err503Every != 19 || plan.ResetEvery != 23 ||
		plan.TruncateEvery != 29 || plan.TruncateBytes != 64 {
		t.Fatalf("parsed seed=%d latency=%d:%v err500=%d err503=%d reset=%d truncate=%d:%d",
			plan.Seed, plan.LatencyEvery, plan.Latency, plan.Err500Every,
			plan.Err503Every, plan.ResetEvery, plan.TruncateEvery, plan.TruncateBytes)
	}
	if p, err := ParseFaultSpec(""); err != nil || p != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"nope", "x=1", "err500=abc", "err500=1:5ms", "latency=3:zzz"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("ParseFaultSpec(%q) accepted", bad)
		}
	}
}

var errProbe = errors.New("probe")

func TestIsStuck(t *testing.T) {
	if IsStuck(errProbe) {
		t.Fatal("unrelated error reported stuck")
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(ErrStuck)
	<-ctx.Done()
	if !IsStuck(context.Cause(ctx)) {
		t.Fatal("ErrStuck cause not detected")
	}
}
