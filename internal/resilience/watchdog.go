package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrStuck is the cancellation cause recorded when the watchdog kills a
// query that stopped heartbeating. context.Cause(ctx) returns it (wrapped)
// after a kill, so the serving layer can distinguish a watchdog kill from
// a client disconnect or a deadline.
var ErrStuck = errors.New("watchdog: query made no progress within the heartbeat threshold")

// heartbeatKey carries a query's heartbeat counter through its context.
type heartbeatKey struct{}

// WithHeartbeat attaches beat to ctx so lower layers (engine poll points,
// governor queue waits) can find and bump it without depending on this
// package's watchdog.
func WithHeartbeat(ctx context.Context, beat *atomic.Int64) context.Context {
	return context.WithValue(ctx, heartbeatKey{}, beat)
}

// HeartbeatFrom returns the heartbeat counter attached to ctx, or nil.
func HeartbeatFrom(ctx context.Context) *atomic.Int64 {
	beat, _ := ctx.Value(heartbeatKey{}).(*atomic.Int64)
	return beat
}

// Beat bumps the heartbeat attached to ctx, if any. It is the one-liner
// for layers that wait on a query's behalf (e.g. the governor's admission
// queue) — a queued query is waiting, not stuck.
func Beat(ctx context.Context) {
	if beat := HeartbeatFrom(ctx); beat != nil {
		beat.Add(1)
	}
}

// Watchdog cancels queries whose heartbeat goes silent for a full
// Threshold. Detection is per-probe timer based — no central goroutine,
// no polling loop: each probe re-arms a time.AfterFunc every Threshold
// and kills when two consecutive firings observe the same beat count.
// A wedged query is therefore cancelled after at least one and at most
// two thresholds of silence.
//
// A nil *Watchdog is valid and watches nothing.
type Watchdog struct {
	// Threshold is the maximum tolerated heartbeat silence.
	Threshold time.Duration

	kills atomic.Int64
}

// NewWatchdog returns a watchdog with the given silence threshold.
// threshold <= 0 returns nil (disabled).
func NewWatchdog(threshold time.Duration) *Watchdog {
	if threshold <= 0 {
		return nil
	}
	return &Watchdog{Threshold: threshold}
}

// Kills returns the number of queries this watchdog has cancelled.
func (w *Watchdog) Kills() int64 {
	if w == nil {
		return 0
	}
	return w.kills.Load()
}

// Probe is one watched query's registration. Close it when the query
// finishes (normally or not); Close is idempotent and a nil probe is
// valid to close.
type Probe struct {
	beat atomic.Int64
	last int64 // beat count seen by the previous timer firing

	mu     sync.Mutex
	timer  *time.Timer
	closed bool
}

// Watch registers a query and returns a derived context that is cancelled
// (with ErrStuck as the cause) if the query's heartbeat stays silent for
// a full threshold between two timer firings. The returned context
// carries the probe's heartbeat counter (HeartbeatFrom finds it), so the
// engine's poll points keep it alive. On a nil watchdog, Watch returns
// ctx unchanged and a nil probe.
func (w *Watchdog) Watch(ctx context.Context) (context.Context, *Probe) {
	if w == nil {
		return ctx, nil
	}
	obs.WatchdogWatchedTotal.Inc()
	ctx, cancel := context.WithCancelCause(ctx)
	p := &Probe{}
	ctx = WithHeartbeat(ctx, &p.beat)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timer = time.AfterFunc(w.Threshold, func() { w.check(p, cancel) })
	return ctx, p
}

// check is the timer body: re-arm if the query beat since last time,
// kill it otherwise.
func (w *Watchdog) check(p *Probe, cancel context.CancelCauseFunc) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	if now := p.beat.Load(); now != p.last {
		p.last = now
		p.timer.Reset(w.Threshold)
		return
	}
	w.kills.Add(1)
	obs.WatchdogKillsTotal.Inc()
	cancel(ErrStuck)
}

// Close deregisters the probe: the timer is stopped and no further kill
// can fire. The caller still owns the context's normal cancellation.
func (p *Probe) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	if p.timer != nil {
		p.timer.Stop()
	}
}

// IsStuck reports whether err (or the cancellation cause chain of a
// context error) records a watchdog kill.
func IsStuck(err error) bool { return errors.Is(err, ErrStuck) }
