package resilience

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// HTTPFaultPlan is a deterministic, seeded fault-injection schedule for
// the HTTP serving layer — the server-side sibling of the governor's
// FaultPlan. Faults fire on fixed residues of a monotonic request
// counter, with the residue derived from Seed, so the same seed always
// faults the same requests regardless of timing and a failing chaos run
// replays exactly.
//
// Fault classes, in precedence order when residues collide on one
// request (most destructive wins):
//
//	ResetEvery     the connection is aborted before the handler runs —
//	               the client sees a transport error, never a status.
//	TruncateEvery  the handler runs, but the response body is cut off
//	               after TruncateBytes and the connection aborted, so
//	               the client reads a partial body that fails mid-read
//	               (an unterminated chunked response, not a short 200).
//	Err500Every /  the handler is bypassed with a forced 500 / 503
//	Err503Every    (retryable from the client's point of view).
//	LatencyEvery   Latency is added before the handler (composes with a
//	               normal response; the only non-destructive class).
//
// Zero fields disable their class; the zero plan injects nothing. The
// plan is armed only through the server's test/config hook (exrquyd's
// -chaos flag, documented test-only) and is nil in production.
type HTTPFaultPlan struct {
	// Seed varies which requests fault without changing how many.
	Seed int64
	// LatencyEvery > 0 delays every Nth request by Latency.
	LatencyEvery int
	// Latency is the injected delay; <= 0 means 2ms.
	Latency time.Duration
	// Err500Every > 0 forces a 500 on every Nth request.
	Err500Every int
	// Err503Every > 0 forces a 503 on every Nth request.
	Err503Every int
	// ResetEvery > 0 aborts the connection on every Nth request.
	ResetEvery int
	// TruncateEvery > 0 truncates the response body of every Nth request.
	TruncateEvery int
	// TruncateBytes is where truncation cuts the body; <= 0 means 16.
	TruncateBytes int

	requests atomic.Int64
}

// hits reports whether event number i (0-based) fires for a 1-in-n fault
// class, at the seed's residue (same scheme as governor.FaultPlan).
func (f *HTTPFaultPlan) hits(i int64, n int) bool {
	if n <= 0 {
		return false
	}
	residue := f.Seed % int64(n)
	if residue < 0 {
		residue += int64(n)
	}
	return i%int64(n) == residue
}

// latency returns the effective injected delay.
func (f *HTTPFaultPlan) latency() time.Duration {
	if f.Latency > 0 {
		return f.Latency
	}
	return 2 * time.Millisecond
}

// truncateBytes returns the effective truncation offset.
func (f *HTTPFaultPlan) truncateBytes() int {
	if f.TruncateBytes > 0 {
		return f.TruncateBytes
	}
	return 16
}

// injectedBody is the response text of forced 500/503 faults, so chaos
// logs can tell an injected error from a real one.
const injectedBody = "injected fault (resilience.HTTPFaultPlan)"

// Wrap returns next wrapped with the plan's fault schedule. A nil plan
// returns next unchanged. Wrap is installed per-route by the server so
// health/metrics endpoints stay fault-free and drains observable.
func (f *HTTPFaultPlan) Wrap(next http.Handler) http.Handler {
	if f == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := f.requests.Add(1) - 1
		switch {
		case f.hits(i, f.ResetEvery):
			obs.HTTPFaultsInjected.Inc()
			// net/http treats ErrAbortHandler panics as a deliberate
			// mid-response abort: the connection closes without a
			// status line and the client sees a transport error.
			panic(http.ErrAbortHandler)
		case f.hits(i, f.TruncateEvery):
			obs.HTTPFaultsInjected.Inc()
			tw := &truncatingWriter{ResponseWriter: w, remaining: f.truncateBytes()}
			next.ServeHTTP(tw, r)
		case f.hits(i, f.Err500Every):
			obs.HTTPFaultsInjected.Inc()
			http.Error(w, injectedBody, http.StatusInternalServerError)
		case f.hits(i, f.Err503Every):
			obs.HTTPFaultsInjected.Inc()
			// Deliberately no Retry-After: injected 503s exercise the
			// client's own backoff, not a server hint.
			http.Error(w, injectedBody, http.StatusServiceUnavailable)
		case f.hits(i, f.LatencyEvery):
			obs.HTTPFaultsInjected.Inc()
			time.Sleep(f.latency())
			next.ServeHTTP(w, r)
		default:
			next.ServeHTTP(w, r)
		}
	})
}

// truncatingWriter cuts the response body after remaining bytes: the
// partial prefix is written and flushed (so the client really receives
// it), then the handler is aborted so the chunked body is never
// terminated. The client's io.ReadAll fails with an unexpected-EOF-class
// error instead of quietly returning a short 200 — a truncated response
// can never be mistaken for a complete one.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if len(p) <= t.remaining {
		t.remaining -= len(p)
		return t.ResponseWriter.Write(p)
	}
	t.ResponseWriter.Write(p[:t.remaining]) //nolint:errcheck — aborting anyway
	t.remaining = 0
	if fl, ok := t.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
	panic(http.ErrAbortHandler)
}

// Counted returns how many requests the plan has scheduled so far.
func (f *HTTPFaultPlan) Counted() int64 {
	if f == nil {
		return 0
	}
	return f.requests.Load()
}

// ParseFaultSpec parses the exrquyd -chaos flag syntax into a plan:
// comma-separated key=value pairs, where each class takes the 1-in-N
// period as its value.
//
//	seed=7,latency=13:3ms,err500=17,err503=19,reset=23,truncate=29:16
//
// latency takes an optional :duration suffix, truncate an optional
// :bytes suffix. An empty spec returns a nil plan (faults disarmed).
func ParseFaultSpec(spec string) (*HTTPFaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	plan := &HTTPFaultPlan{}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("fault spec: %q is not key=value", kv)
		}
		val, suffix, _ := strings.Cut(val, ":")
		if suffix != "" && key != "latency" && key != "truncate" {
			return nil, fmt.Errorf("fault spec: %s does not take a :suffix", key)
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault spec: %s: %v", key, err)
		}
		switch key {
		case "seed":
			plan.Seed = n
		case "latency":
			plan.LatencyEvery = int(n)
			if suffix != "" {
				d, err := time.ParseDuration(suffix)
				if err != nil {
					return nil, fmt.Errorf("fault spec: latency duration: %v", err)
				}
				plan.Latency = d
			}
		case "err500":
			plan.Err500Every = int(n)
		case "err503":
			plan.Err503Every = int(n)
		case "reset":
			plan.ResetEvery = int(n)
		case "truncate":
			plan.TruncateEvery = int(n)
			if suffix != "" {
				b, err := strconv.Atoi(suffix)
				if err != nil {
					return nil, fmt.Errorf("fault spec: truncate bytes: %v", err)
				}
				plan.TruncateBytes = b
			}
		default:
			return nil, fmt.Errorf("fault spec: unknown class %q", key)
		}
	}
	return plan, nil
}
