package compile

import "repro/internal/xquery"

// freeVars returns the free variable names of an expression, with the
// context item counted as the pseudo-variable ".". Results are memoized
// per AST node.
func (c *compiler) freeVars(e xquery.Expr) map[string]bool {
	if c.fvCache == nil {
		c.fvCache = make(map[xquery.Expr]map[string]bool)
	}
	if fv, ok := c.fvCache[e]; ok {
		return fv
	}
	fv := map[string]bool{}
	collectFree(e, map[string]bool{}, fv)
	c.fvCache[e] = fv
	return fv
}

// containsConstructor reports whether e contains a direct element
// constructor anywhere (memoized).
func (c *compiler) containsConstructor(e xquery.Expr) bool {
	if c.consCache == nil {
		c.consCache = make(map[xquery.Expr]bool)
	}
	if v, ok := c.consCache[e]; ok {
		return v
	}
	v := hasConstructor(e)
	c.consCache[e] = v
	return v
}

// collectFree accumulates free variables of e into out, treating names in
// bound as bound.
func collectFree(e xquery.Expr, bound, out map[string]bool) {
	add := func(name string) {
		if !bound[name] {
			out[name] = true
		}
	}
	sub := func(es ...xquery.Expr) {
		for _, s := range es {
			if s != nil {
				collectFree(s, bound, out)
			}
		}
	}
	// withBound runs fn with extra bindings active.
	withBound := func(names []string, fn func()) {
		added := make([]string, 0, len(names))
		for _, n := range names {
			if n != "" && !bound[n] {
				bound[n] = true
				added = append(added, n)
			}
		}
		fn()
		for _, n := range added {
			delete(bound, n)
		}
	}

	switch e := e.(type) {
	case *xquery.VarRef:
		add(e.Name)
	case *xquery.ContextItem:
		add(".")
	case *xquery.Sequence:
		sub(e.Items...)
	case *xquery.Path:
		if e.Start != nil {
			sub(e.Start)
		} else {
			add(".")
		}
		for _, st := range e.Steps {
			// Step predicates bind the context item.
			withBound([]string{"."}, func() { sub(st.Preds...) })
		}
	case *xquery.Filter:
		sub(e.Base)
		withBound([]string{"."}, func() { sub(e.Preds...) })
	case *xquery.FLWOR:
		var introduced []string
		rest := func() {
			sub(e.Where)
			for _, o := range e.Order {
				sub(o.Key)
			}
			sub(e.Return)
		}
		var walk func(i int)
		walk = func(i int) {
			if i == len(e.Clauses) {
				rest()
				return
			}
			switch cl := e.Clauses[i].(type) {
			case *xquery.ForClause:
				sub(cl.In)
				withBound([]string{cl.Var, cl.PosVar}, func() { walk(i + 1) })
			case *xquery.LetClause:
				sub(cl.Expr)
				withBound([]string{cl.Var}, func() { walk(i + 1) })
			}
		}
		walk(0)
		_ = introduced
	case *xquery.Quantified:
		var walk func(i int)
		walk = func(i int) {
			if i == len(e.Vars) {
				sub(e.Satisfies)
				return
			}
			sub(e.Vars[i].In)
			withBound([]string{e.Vars[i].Var}, func() { walk(i + 1) })
		}
		walk(0)
	case *xquery.IfExpr:
		sub(e.Cond, e.Then, e.Else)
	case *xquery.Arith:
		sub(e.L, e.R)
	case *xquery.Neg:
		sub(e.Expr)
	case *xquery.GeneralCmp:
		sub(e.L, e.R)
	case *xquery.ValueCmp:
		sub(e.L, e.R)
	case *xquery.NodeCmp:
		sub(e.L, e.R)
	case *xquery.Logic:
		sub(e.L, e.R)
	case *xquery.SetOp:
		sub(e.L, e.R)
	case *xquery.RangeExpr:
		sub(e.L, e.R)
	case *xquery.FuncCall:
		sub(e.Args...)
	case *xquery.OrderedExpr:
		sub(e.Expr)
	case *xquery.ElemCons:
		for _, a := range e.Attrs {
			for _, p := range a.Parts {
				if p.Expr != nil {
					sub(p.Expr)
				}
			}
		}
		sub(e.Content...)
	}
}

func hasConstructor(e xquery.Expr) bool {
	found := false
	var walk func(x xquery.Expr)
	sub := func(es ...xquery.Expr) {
		for _, s := range es {
			if s != nil && !found {
				walk(s)
			}
		}
	}
	walk = func(x xquery.Expr) {
		switch x := x.(type) {
		case *xquery.ElemCons:
			found = true
		case *xquery.Sequence:
			sub(x.Items...)
		case *xquery.Path:
			sub(x.Start)
			for _, st := range x.Steps {
				sub(st.Preds...)
			}
		case *xquery.Filter:
			sub(x.Base)
			sub(x.Preds...)
		case *xquery.FLWOR:
			for _, cl := range x.Clauses {
				switch cl := cl.(type) {
				case *xquery.ForClause:
					sub(cl.In)
				case *xquery.LetClause:
					sub(cl.Expr)
				}
			}
			sub(x.Where)
			for _, o := range x.Order {
				sub(o.Key)
			}
			sub(x.Return)
		case *xquery.Quantified:
			for _, v := range x.Vars {
				sub(v.In)
			}
			sub(x.Satisfies)
		case *xquery.IfExpr:
			sub(x.Cond, x.Then, x.Else)
		case *xquery.Arith:
			sub(x.L, x.R)
		case *xquery.Neg:
			sub(x.Expr)
		case *xquery.GeneralCmp:
			sub(x.L, x.R)
		case *xquery.ValueCmp:
			sub(x.L, x.R)
		case *xquery.NodeCmp:
			sub(x.L, x.R)
		case *xquery.Logic:
			sub(x.L, x.R)
		case *xquery.SetOp:
			sub(x.L, x.R)
		case *xquery.RangeExpr:
			sub(x.L, x.R)
		case *xquery.FuncCall:
			sub(x.Args...)
		case *xquery.OrderedExpr:
			sub(x.Expr)
		}
	}
	walk(e)
	return found
}
