package compile

import (
	"repro/internal/algebra"
	"repro/internal/xquery"
)

// This file implements the compiler's treatment of boolean *conditions*
// (where clauses, if conditions, quantifier bodies): instead of
// materializing a complete boolean table over the loop and re-deriving
// the true iterations from it, conditions compile directly to the set of
// iterations in which they hold (column iter). Together with the
// theta-join evaluation of general comparisons below, this is this
// compiler's rendition of Pathfinder's join recognition ([9]) — the
// reason Table 2 of the paper shows a "join" row rather than per-pair
// predicate evaluation.

// condUnwrap strips the wrappers normalization puts around conditions
// (fn:unordered, fn:boolean — both EBV-transparent).
func condUnwrap(e xquery.Expr) xquery.Expr {
	for {
		fc, ok := e.(*xquery.FuncCall)
		if !ok || len(fc.Args) != 1 {
			return e
		}
		if fc.Name != "unordered" && fc.Name != "boolean" {
			return e
		}
		e = fc.Args[0]
	}
}

// condIters compiles a condition to the iterations of sc.loop in which
// its effective boolean value is true.
func (c *compiler) condIters(e xquery.Expr, sc *frame) *algebra.Node {
	switch e := condUnwrap(e).(type) {
	case *xquery.GeneralCmp:
		return c.generalCmpIters(e, sc)
	case *xquery.Logic:
		l := c.condIters(e.L, sc)
		r := c.condIters(e.R, sc)
		if e.Op == xquery.LogicAnd {
			return c.b.Semi(l, r, "iter")
		}
		return c.b.Distinct(c.b.Union(l, r), "iter")
	case *xquery.Quantified:
		return c.quantIters(e, sc)
	case *xquery.FuncCall:
		switch e.Name {
		case "not":
			if len(e.Args) == 1 {
				return c.b.Diff(sc.loop, c.condIters(e.Args[0], sc), "iter")
			}
		case "exists":
			if len(e.Args) == 1 {
				return c.b.Distinct(c.compile(e.Args[0], sc), "iter")
			}
		case "empty":
			if len(e.Args) == 1 {
				return c.b.Diff(sc.loop, c.b.Distinct(c.compile(e.Args[0], sc), "iter"), "iter")
			}
		case "true":
			return sc.loop
		case "false":
			return c.b.EmptyLit("iter")
		}
		return c.ebvIters(c.compile(e, sc))
	default:
		return c.ebvIters(c.compile(e, sc))
	}
}

// generalCmpIters returns the iterations in which the existential general
// comparison holds. When both operands are loop-invariant relative to
// ancestor frames, the comparison is evaluated as a *value join* between
// the (small) operand tables, and the loop's iterations are matched
// against the join result through the frames' map relations — rather than
// lifting both operands into the (large) iteration space and comparing
// per iteration. This is the implicit join of XMark Q8/Q9/Q11/Q12 that
// Pathfinder's code generator "picks up" (§5).
func (c *compiler) generalCmpIters(e *xquery.GeneralCmp, sc *frame) *algebra.Node {
	la := condUnwrap(e.L)
	ra := condUnwrap(e.R)
	qa, ka, okA := c.cmpSide(la, sc, "aiter", "aval")
	qb, kb, okB := c.cmpSide(ra, sc, "biter", "bval")
	if !okA || !okB {
		// At least one side genuinely varies with the current loop:
		// evaluate per iteration (the compositional default).
		l := c.atomized(c.compile(e.L, sc))
		r := c.atomized(c.compile(e.R, sc))
		rp := c.b.Project(r,
			algebra.ColPair{New: "iter2", Old: "iter"},
			algebra.ColPair{New: "item2", Old: "item"})
		j := algebra.WithOrigin(c.b.Join(l, rp, "iter", "iter2"), "join (general comparison)")
		cmp := algebra.WithOrigin(
			c.b.BinOp(j, algebra.BCmpGen, e.Op, "res", "item", "item2"),
			"general comparison")
		return c.b.Distinct(c.b.Select(cmp, "res"), "iter")
	}

	// Value join between the two (small) keyed operand tables. BCmpGenJoin
	// relaxes pair-level type errors to false: the join enumerates (a, b)
	// combinations across iterations, and a combination that never
	// co-occurs in one iteration must not raise — the same relaxation
	// Pathfinder inherits from mapping comparisons onto relational joins.
	pairs := algebra.WithOrigin(c.b.Cross(qa, qb), "join (general comparison)")
	cmp := algebra.WithOrigin(
		c.b.BinOp(pairs, algebra.BCmpGenJoin, e.Op, "res", "aval", "bval"),
		"general comparison")
	matches := c.b.Distinct(c.b.Select(cmp, "res"), "aiter", "biter")

	// Relate each current iteration to its keys on both sides and keep
	// those whose (aiter, biter) pair matched.
	bk := c.b.Project(kb,
		algebra.ColPair{New: "biter", Old: "biter"},
		algebra.ColPair{New: "it2", Old: "iter"})
	triple := algebra.WithOrigin(c.b.Join(ka, bk, "iter", "it2"), "join (iteration mapping)")
	hit := c.b.Semi(triple, matches, "aiter", "biter")
	trueIters := c.b.Project(c.b.Distinct(hit, "iter"), algebra.ColPair{New: "iter", Old: "iter"})

	// Error parity with the per-iteration semantics: an iteration whose
	// pairs include an incomparable one and no true one must raise the
	// type error (existential short-circuiting may hide errors behind a
	// true pair, but never turn pure errors into false).
	errCmp := c.b.BinOp(pairs, algebra.BCmpGenErr, e.Op, "eres", "aval", "bval")
	errPairs := c.b.Distinct(c.b.Select(errCmp, "eres"), "aiter", "biter")
	errHit := c.b.Semi(triple, errPairs, "aiter", "biter")
	errIters := c.b.Project(c.b.Distinct(errHit, "iter"), algebra.ColPair{New: "iter", Old: "iter"})
	errOnly := c.b.Diff(errIters, trueIters, "iter")
	guard := c.b.CheckCard(errOnly, nil, "iter", 0, 0, "general comparison")
	// Subtracting the (always empty on success) guard forces its
	// evaluation without changing the result.
	return c.b.Diff(trueIters, guard, "iter")
}

// cmpSide prepares one operand of a join-evaluated comparison: the
// atomized operand values keyed by some coarser iteration space (keyCol),
// plus the map from keys to current-loop iterations. Two key spaces are
// recognized:
//
//   - source rows: the operand mentions exactly one variable, a for-var
//     whose binding sequence was hoisted — values are computed once per
//     binding-sequence row (XMark Q8/Q9/Q11/Q12's inner side);
//   - ancestor frames: the operand is loop-invariant relative to an
//     ancestor — values are computed once per ancestor iteration.
//
// ok is false when the operand genuinely varies with the current loop.
func (c *compiler) cmpSide(e xquery.Expr, sc *frame, keyCol, valCol string) (vals, keyed *algebra.Node, ok bool) {
	fv := c.freeVars(e)
	if len(fv) == 1 && !c.containsConstructor(e) {
		for name := range fv {
			if si := sc.lookupSrc(name); si != nil {
				q := c.b.Project(c.atomized(c.compile(e, si.srcFrame)),
					algebra.ColPair{New: keyCol, Old: "iter"},
					algebra.ColPair{New: valCol, Old: "item"})
				return q, c.srcKeyed(si, sc, keyCol), true
			}
		}
	}
	fa := c.hoistFrame(e, sc)
	if fa == sc {
		return nil, nil, false
	}
	q := c.b.Project(c.atomized(c.compile(e, fa)),
		algebra.ColPair{New: keyCol, Old: "iter"},
		algebra.ColPair{New: valCol, Old: "item"})
	m := c.mapBetween(fa, sc)
	if m == nil {
		keyed = c.b.Project(sc.loop,
			algebra.ColPair{New: keyCol, Old: "iter"},
			algebra.ColPair{New: "iter", Old: "iter"})
	} else {
		keyed = c.b.Project(m,
			algebra.ColPair{New: keyCol, Old: "outer"},
			algebra.ColPair{New: "iter", Old: "inner"})
	}
	return q, keyed, true
}

// srcKeyed renders a variable's source map as (keyCol, iter) relative to
// the current frame, composing with any restriction frames between the
// for clause and sc.
func (c *compiler) srcKeyed(si *srcInfo, sc *frame, keyCol string) *algebra.Node {
	base := c.b.Project(si.srcMap,
		algebra.ColPair{New: keyCol, Old: "src"},
		algebra.ColPair{New: "iter", Old: "fiter"})
	if sc == si.forFrame {
		return base
	}
	m := c.mapBetween(si.forFrame, sc) // outer = forFrame iters, inner = sc iters
	if m == nil {
		return base
	}
	mr := c.b.Project(m,
		algebra.ColPair{New: "o2", Old: "outer"},
		algebra.ColPair{New: "i2", Old: "inner"})
	j := c.b.Join(base, mr, "iter", "o2")
	return c.b.Project(j,
		algebra.ColPair{New: keyCol, Old: keyCol},
		algebra.ColPair{New: "iter", Old: "i2"})
}

// quantIters returns the outer iterations for which the quantifier holds.
func (c *compiler) quantIters(q *xquery.Quantified, sc *frame) *algebra.Node {
	cur := sc
	for _, v := range q.Vars {
		qIn := c.compile(v.In, cur)
		b := c.bindFor(qIn, false, c.opts.Indifference)
		cur = cur.child(b.mapRel, b.newLoop)
		cur.bind(v.Var, b.varTable)
	}
	sat := c.condIters(q.Satisfies, cur)
	totalMap := c.mapBetween(sc, cur)
	if q.Every {
		unsat := c.b.Diff(cur.loop, sat, "iter")
		bad := c.witnessOuter(totalMap, unsat)
		return c.b.Diff(sc.loop, bad, "iter")
	}
	return c.witnessOuter(totalMap, sat)
}
