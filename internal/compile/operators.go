package compile

import (
	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

var arithToBinFn = map[xdm.ArithOp]algebra.BinFn{
	xdm.OpAdd:  algebra.BArithAdd,
	xdm.OpSub:  algebra.BArithSub,
	xdm.OpMul:  algebra.BArithMul,
	xdm.OpDiv:  algebra.BArithDiv,
	xdm.OpIDiv: algebra.BArithIDiv,
	xdm.OpMod:  algebra.BArithMod,
}

func (c *compiler) compileArith(op xdm.ArithOp, le, re xquery.Expr, sc *frame) *algebra.Node {
	l := c.atomized(c.guardCard(c.compile(le, sc), "arithmetic operand"))
	r := c.atomized(c.guardCard(c.compile(re, sc), "arithmetic operand"))
	return c.combine(c.withPos1(l), c.withPos1(r), arithToBinFn[op], 0, "arithmetic")
}

func (c *compiler) compileValueCmp(e *xquery.ValueCmp, sc *frame) *algebra.Node {
	l := c.atomized(c.guardCard(c.compile(e.L, sc), "comparison operand"))
	r := c.atomized(c.guardCard(c.compile(e.R, sc), "comparison operand"))
	return c.combine(c.withPos1(l), c.withPos1(r), algebra.BCmpVal, e.Op, "value comparison")
}

func (c *compiler) compileNodeCmp(e *xquery.NodeCmp, sc *frame) *algebra.Node {
	l := c.guardCard(c.compile(e.L, sc), "node comparison operand")
	r := c.guardCard(c.compile(e.R, sc), "node comparison operand")
	fn := algebra.BNodeBefore
	if e.Op == xquery.NodeIs {
		fn = algebra.BNodeIs
	}
	if e.Op == xquery.NodeAfter {
		l, r = r, l // a >> b  ≡  b << a
	}
	return c.combine(l, r, fn, 0, "node comparison")
}

// compileGeneralCmp implements the existential semantics: all pairs of
// atomized operand items within an iteration are compared; the iteration
// is true as soon as one pair matches. Normalization has wrapped both
// operands in fn:unordered() — the pair enumeration (the paper's implicit
// value join, cf. Q11) never observes their order. The heavy lifting —
// including value-join recognition — lives in generalCmpIters.
func (c *compiler) compileGeneralCmp(e *xquery.GeneralCmp, sc *frame) *algebra.Node {
	return c.boolTable(c.generalCmpIters(e, sc), sc.loop)
}
