package compile

import (
	"math"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// fillDefault completes an iter|item table over a loop: iterations with
// no row receive the default item. (This is how the compiler expresses
// fn:count(()) = 0, fn:string(()) = "" etc. with plain algebra: disjoint
// union with the loop difference, as Pathfinder does.)
func (c *compiler) fillDefault(q, loop *algebra.Node, def xdm.Item) *algebra.Node {
	present := c.b.Distinct(q, "iter")
	missing := c.b.Diff(loop, present, "iter")
	return c.b.UnionDisjoint(c.b.Keep(q, "iter", "item"), c.b.Cross(missing, c.b.LitCol("item", def)), "iter")
}

func (c *compiler) compileFuncCall(e *xquery.FuncCall, sc *frame) *algebra.Node {
	argn := func(n int) {
		if len(e.Args) != n {
			c.errf("%s expects %d argument(s), got %d", e.Name, n, len(e.Args))
		}
	}
	switch e.Name {
	case "unordered":
		argn(1)
		q := c.compile(e.Args[0], sc)
		if !c.opts.Indifference {
			// §6: fn:unordered() as the identity function — the baseline.
			return q
		}
		// Rule FN:UNORDERED: #pos · π(iter,item) overwrites any sequence
		// order information in q.
		return c.b.Keep(algebra.WithOrigin(
			c.b.RowID(c.b.Keep(q, "iter", "item"), "pos"), "fn:unordered"),
			"iter", "pos", "item")

	case "doc":
		argn(1)
		lit, ok := e.Args[0].(*xquery.StrLit)
		if !ok {
			c.errf("doc() requires a string literal URI")
		}
		d := algebra.WithOrigin(c.b.Doc(lit.Val), "document access")
		return c.b.Cross(sc.loop, c.b.Cross(d, c.b.LitCol("pos", xdm.NewInt(1))))

	case "count":
		argn(1)
		q := c.compile(e.Args[0], sc)
		agg := algebra.WithOrigin(
			c.b.Aggr(c.b.Keep(q, "iter", "item"), algebra.AggrCount, "res", "", "iter"),
			"fn:count")
		val := c.b.Project(agg,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "res"})
		return c.withPos1(c.fillDefault(val, sc.loop, xdm.NewInt(0)))

	case "sum", "avg", "max", "min":
		argn(1)
		fn := map[string]algebra.AggrFn{
			"sum": algebra.AggrSum, "avg": algebra.AggrAvg,
			"max": algebra.AggrMax, "min": algebra.AggrMin,
		}[e.Name]
		a := c.atomized(c.compile(e.Args[0], sc))
		agg := algebra.WithOrigin(c.b.Aggr(a, fn, "res", "item", "iter"), "fn:"+e.Name)
		val := c.b.Project(agg,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "res"})
		if e.Name == "sum" {
			return c.withPos1(c.fillDefault(val, sc.loop, xdm.NewInt(0)))
		}
		return c.withPos1(val)

	case "empty", "exists":
		argn(1)
		q := c.compile(e.Args[0], sc)
		t := c.b.Distinct(q, "iter")
		if e.Name == "empty" {
			t = c.b.Diff(sc.loop, t, "iter")
		}
		return c.boolTable(t, sc.loop)

	case "boolean", "not":
		argn(1)
		t := c.ebvIters(c.compile(e.Args[0], sc))
		if e.Name == "not" {
			t = c.b.Diff(sc.loop, t, "iter")
		}
		return c.boolTable(t, sc.loop)

	case "true":
		argn(0)
		return c.litTable(sc.loop, xdm.True)
	case "false":
		argn(0)
		return c.litTable(sc.loop, xdm.False)

	case "string":
		argn(1)
		return c.withPos1(c.stringValue(e.Args[0], sc))

	case "data":
		argn(1)
		q := c.b.Keep(c.compile(e.Args[0], sc), "iter", "pos", "item")
		m := algebra.WithOrigin(c.b.Map1(q, algebra.UnAtomize, "av", "item"), "atomization")
		return c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "pos", Old: "pos"},
			algebra.ColPair{New: "item", Old: "av"})

	case "number":
		argn(1)
		a := c.atomized(c.guardCard(c.compile(e.Args[0], sc), "fn:number"))
		m := c.b.Map1(a, algebra.UnNumber, "nv", "item")
		val := c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "nv"})
		return c.withPos1(c.fillDefault(val, sc.loop, xdm.NewDouble(math.NaN())))

	case "string-length":
		argn(1)
		s := c.stringValue(e.Args[0], sc)
		m := c.b.Map1(c.b.Keep(s, "iter", "item"), algebra.UnStringLength, "len", "item")
		val := c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "len"})
		return c.withPos1(val)

	case "contains", "starts-with", "ends-with":
		argn(2)
		l := c.withPos1(c.stringValue(e.Args[0], sc))
		r := c.withPos1(c.stringValue(e.Args[1], sc))
		fn := algebra.BContains
		switch e.Name {
		case "starts-with":
			fn = algebra.BStartsWith
		case "ends-with":
			fn = algebra.BEndsWith
		}
		return c.combine(l, r, fn, 0, "fn:"+e.Name)

	case "normalize-space", "upper-case", "lower-case":
		argn(1)
		fn := map[string]algebra.UnFn{
			"normalize-space": algebra.UnNormalizeSpace,
			"upper-case":      algebra.UnUpperCase,
			"lower-case":      algebra.UnLowerCase,
		}[e.Name]
		sv := c.stringValue(e.Args[0], sc)
		m := c.b.Map1(c.b.Keep(sv, "iter", "item"), fn, "sv2", "item")
		return c.withPos1(c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "sv2"}))

	case "round", "floor", "ceiling", "abs":
		argn(1)
		fn := map[string]algebra.UnFn{
			"round": algebra.UnRound, "floor": algebra.UnFloor,
			"ceiling": algebra.UnCeiling, "abs": algebra.UnAbs,
		}[e.Name]
		a := c.atomized(c.guardCard(c.compile(e.Args[0], sc), "fn:"+e.Name))
		m := c.b.Map1(a, fn, "rv", "item")
		return c.withPos1(c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "rv"}))

	case "substring":
		if len(e.Args) != 2 && len(e.Args) != 3 {
			c.errf("substring expects 2 or 3 arguments")
		}
		s := c.b.Project(c.stringValue(e.Args[0], sc),
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "sv", Old: "item"})
		st := c.b.Project(c.atomized(c.guardCard(c.compile(e.Args[1], sc), "substring start")),
			algebra.ColPair{New: "iter2", Old: "iter"},
			algebra.ColPair{New: "st", Old: "item"})
		j := c.dropCols(c.b.Join(s, st, "iter", "iter2"), "iter2")
		var op *algebra.Node
		if len(e.Args) == 2 {
			op = c.b.BinOp(j, algebra.BSubstr2, 0, "res", "sv", "st")
		} else {
			ln := c.b.Project(c.atomized(c.guardCard(c.compile(e.Args[2], sc), "substring length")),
				algebra.ColPair{New: "iter3", Old: "iter"},
				algebra.ColPair{New: "ln", Old: "item"})
			j = c.dropCols(c.b.Join(j, ln, "iter", "iter3"), "iter3")
			op = c.b.BinOp3(j, algebra.BSubstr3, "res", "sv", "st", "ln")
		}
		algebra.WithOrigin(op, "fn:substring")
		return c.withPos1(c.b.Project(op,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "res"}))

	case "string-join":
		argn(2)
		sep, ok := e.Args[1].(*xquery.StrLit)
		if !ok {
			c.errf("string-join separator must be a string literal in compiled plans")
		}
		q := c.b.Keep(c.compile(e.Args[0], sc), "iter", "pos", "item")
		// string-join is genuinely order sensitive: it consumes pos, so
		// the order bookkeeping upstream stays alive in any ordering mode.
		sj := algebra.WithOrigin(c.b.AggrJoin(q, "res", "item", "iter", sep.Val), "fn:string-join")
		val := c.b.Project(sj,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "res"})
		return c.withPos1(c.fillDefault(val, sc.loop, xdm.NewString("")))

	case "concat":
		if len(e.Args) < 2 {
			c.errf("concat expects at least 2 arguments")
		}
		out := c.withPos1(c.stringValue(e.Args[0], sc))
		for _, a := range e.Args[1:] {
			out = c.combine(out, c.withPos1(c.stringValue(a, sc)), algebra.BConcat, 0, "fn:concat")
		}
		return out

	case "distinct-values":
		argn(1)
		q := c.b.Keep(c.compile(e.Args[0], sc), "iter", "pos", "item")
		a := c.b.Map1(q, algebra.UnAtomize, "av", "item")
		// Physically order by sequence position so the engine's
		// keep-first distinct matches first-occurrence order; the column
		// itself is unused and column analysis may prune the sort —
		// fn:distinct-values order is implementation-dependent anyway.
		srt := c.b.RowNum(a, "posd", []algebra.SortSpec{{Col: "pos"}}, "iter")
		d := algebra.WithOrigin(c.b.Distinct(srt, "iter", "av"), "fn:distinct-values")
		val := c.b.Project(d,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "av"})
		return c.b.Keep(c.b.RowID(val, "pos"), "iter", "pos", "item")

	case "zero-or-one", "exactly-one", "one-or-more":
		argn(1)
		q := c.b.Keep(c.compile(e.Args[0], sc), "iter", "pos", "item")
		switch e.Name {
		case "zero-or-one":
			return c.b.CheckCard(q, nil, "iter", 0, 1, "fn:zero-or-one")
		case "exactly-one":
			return c.b.CheckCard(q, sc.loop, "iter", 1, 1, "fn:exactly-one")
		default:
			return c.b.CheckCard(q, sc.loop, "iter", 1, -1, "fn:one-or-more")
		}

	case "name", "local-name":
		argn(1)
		q := c.guardCard(c.compile(e.Args[0], sc), "fn:"+e.Name)
		m := c.b.Map1(c.b.Keep(q, "iter", "item"), algebra.UnNameOf, "nm", "item")
		val := c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "nm"})
		return c.withPos1(c.fillDefault(val, sc.loop, xdm.NewString("")))

	case "root":
		argn(1)
		q := c.guardCard(c.compile(e.Args[0], sc), "fn:root")
		m := c.b.Map1(c.b.Keep(q, "iter", "item"), algebra.UnRoot, "rt", "item")
		val := c.b.Project(m,
			algebra.ColPair{New: "iter", Old: "iter"},
			algebra.ColPair{New: "item", Old: "rt"})
		return c.withPos1(val)

	case "last", "position":
		c.errf("%s() is supported only in positional predicates", e.Name)
		return nil

	default:
		c.errf("unknown function %s#%d", e.Name, len(e.Args))
		return nil
	}
}
