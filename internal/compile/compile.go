// Package compile implements the loop-lifting compilation scheme ·⇒· from
// (normalized) XQuery to the relational algebra of package algebra,
// following the eXrQuy paper (§3, §4) and its companion papers on
// Pathfinder's compilation scheme.
//
// Every expression compiles, relative to a loop relation (one row per
// pending iteration), to a table with columns iter | pos | item: "in
// iteration iter, the expression assumes item value item at the sequence
// position given by pos's rank" — the paper's invariant reading of these
// tables.
//
// Order interactions are realized by the row-numbering primitive ρ (%):
//
//   - Rule LOC  (doc→seq):  %pos:<item>/iter after each XPath step;
//   - Rule BIND (seq→iter): %bind:<iter,pos> when generating for-bindings;
//   - the back-mapping     %pos1:<bind,pos>/iter1 when re-assembling a
//     for body's results (iter→seq).
//
// With order indifference enabled, the twin rules LOC#/BIND# (Figure 7)
// substitute the (almost) free # operator wherever the current ordering
// mode is unordered, and Rule FN:UNORDERED places #pos·π(iter,item) on top
// of fn:unordered() arguments. Positional variables (at $p) always force a
// real % — exactly the case §2.2 proves cannot be relaxed.
package compile

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// Options selects the compiler's order-awareness, mirroring §5's two
// configurations.
type Options struct {
	// Indifference is the master switch for the order-indifference rules
	// (LOC#, BIND#, FN:UNORDERED). Off, fn:unordered() compiles as the
	// identity — the behaviour the paper observed in most open-source
	// engines (§6) — and every order interaction is realized eagerly.
	Indifference bool
	// Vars binds the module's external prolog variables; values are
	// embedded into the plan as literal tables.
	Vars map[string][]xdm.Item
}

// Plan is a compiled query: a DAG whose root carries columns pos and item
// (the serializable result), plus the builder for further rewriting.
type Plan struct {
	Root    *algebra.Node
	Builder *algebra.Builder
	// Mode records the ordering mode of the module prolog.
	Mode xquery.OrderingMode
}

// Compile translates a normalized module into an algebra plan. The module
// must be function-free (run norm.Normalize first).
func Compile(m *xquery.Module, opts Options) (plan *Plan, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				plan, err = nil, qerr.New(qerr.ErrCompile, "compile", ce.err)
				return
			}
			panic(r)
		}
	}()
	c := &compiler{b: algebra.NewBuilder(), opts: opts, mode: m.Ordering}
	// The top level runs in a single iteration: loop = {<1>}.
	loop := c.b.LitCol("iter", xdm.NewInt(1))
	root := rootFrame(loop)
	for _, vd := range m.Variables {
		if !vd.External {
			continue // desugared by normalization
		}
		items, ok := opts.Vars[vd.Name]
		if !ok {
			return nil, fmt.Errorf("compile: external variable $%s not bound", vd.Name)
		}
		rows := make([][]xdm.Item, len(items))
		for i, it := range items {
			rows[i] = []xdm.Item{xdm.NewInt(int64(i + 1)), it}
		}
		root.bind(vd.Name, c.b.Cross(loop, c.b.Lit([]string{"pos", "item"}, rows...)))
	}
	q := c.compile(m.Body, root)
	planRoot := c.b.Keep(q, "pos", "item")
	return &Plan{Root: planRoot, Builder: c.b, Mode: m.Ordering}, nil
}

// compileError carries user-facing compilation failures through the
// recursive descent via panic (the builder also panics on internal schema
// violations, which are bugs and deliberately not converted).
type compileError struct{ err error }

func (c *compiler) errf(format string, args ...any) {
	panic(compileError{fmt.Errorf("compile: "+format, args...)})
}

type compiler struct {
	b         *algebra.Builder
	opts      Options
	mode      xquery.OrderingMode
	fvCache   map[xquery.Expr]map[string]bool
	consCache map[xquery.Expr]bool
}

// unordered reports whether the # rules apply at this point: order
// indifference enabled and the current ordering mode is unordered.
func (c *compiler) unordered() bool {
	return c.opts.Indifference && c.mode == xquery.Unordered
}

// compile translates an expression relative to a frame, hoisting
// loop-invariant sub-expressions to the shallowest frame that binds their
// free variables and mapping the result back (§3's compositionality, plus
// the evaluate-once property of Pathfinder's code generator).
func (c *compiler) compile(e xquery.Expr, sc *frame) *algebra.Node {
	if cheapPerLoop(e) {
		// Constants and document roots cross the loop directly; routing
		// them through an ancestor frame and back would replace one free
		// cross product with a chain of joins.
		return c.compileAt(e, sc)
	}
	if si, ok := c.srcHoist(e, sc); ok {
		// Evaluate once per source row of the deepest variable's binding
		// sequence, then map into the current iterations.
		q := c.compileAt(e, si.srcFrame)
		return c.liftFromSrc(q, si, sc)
	}
	if target := c.hoistFrame(e, sc); target != sc {
		q := c.compileAt(e, target)
		return c.liftTo(q, target, sc)
	}
	return c.compileAt(e, sc)
}

// cheapPerLoop reports whether per-iteration evaluation of e is a single
// cross product (so hoisting could only hurt).
func cheapPerLoop(e xquery.Expr) bool {
	switch e := e.(type) {
	case *xquery.IntLit, *xquery.DecLit, *xquery.StrLit,
		*xquery.CharContent, *xquery.EmptySeq:
		return true
	case *xquery.FuncCall:
		switch e.Name {
		case "doc", "true", "false":
			return true
		}
	}
	return false
}

func (c *compiler) compileAt(e xquery.Expr, sc *frame) *algebra.Node {
	switch e := e.(type) {
	case *xquery.IntLit:
		return c.litTable(sc.loop, xdm.NewInt(e.Val))
	case *xquery.DecLit:
		return c.litTable(sc.loop, xdm.NewDouble(e.Val))
	case *xquery.StrLit:
		return c.litTable(sc.loop, xdm.NewString(e.Val))
	case *xquery.CharContent:
		return c.litTable(sc.loop, xdm.NewRawText(e.Text))
	case *xquery.EmptySeq:
		return c.b.EmptyLit("iter", "pos", "item")
	case *xquery.VarRef:
		fr, v := sc.lookup(e.Name)
		if fr == nil {
			c.errf("unbound variable $%s", e.Name)
		}
		return c.liftTo(v, fr, sc)
	case *xquery.ContextItem:
		fr, v := sc.lookup(".")
		if fr == nil {
			c.errf("context item undefined")
		}
		return c.liftTo(v, fr, sc)
	case *xquery.Sequence:
		parts := make([]*algebra.Node, len(e.Items))
		for i, it := range e.Items {
			parts[i] = c.compile(it, sc)
		}
		return c.seqConcat(parts)
	case *xquery.Path:
		return c.compilePath(e, sc)
	case *xquery.Filter:
		q := c.compile(e.Base, sc)
		for _, p := range e.Preds {
			q = c.compilePredicate(q, p, sc)
		}
		return q
	case *xquery.FLWOR:
		return c.compileFLWOR(e, sc)
	case *xquery.Quantified:
		return c.compileQuantified(e, sc)
	case *xquery.IfExpr:
		return c.compileIf(e, sc)
	case *xquery.Arith:
		return c.compileArith(e.Op, e.L, e.R, sc)
	case *xquery.Neg:
		return c.compileArith(xdm.OpSub, &xquery.IntLit{Val: 0}, e.Expr, sc)
	case *xquery.GeneralCmp:
		return c.compileGeneralCmp(e, sc)
	case *xquery.ValueCmp:
		return c.compileValueCmp(e, sc)
	case *xquery.NodeCmp:
		return c.compileNodeCmp(e, sc)
	case *xquery.Logic:
		return c.compileLogic(e, sc)
	case *xquery.SetOp:
		return c.compileSetOp(e, sc)
	case *xquery.RangeExpr:
		return c.compileRange(e, sc)
	case *xquery.FuncCall:
		return c.compileFuncCall(e, sc)
	case *xquery.OrderedExpr:
		saved := c.mode
		c.mode = e.Mode
		q := c.compile(e.Expr, sc)
		c.mode = saved
		return q
	case *xquery.ElemCons:
		return c.compileElemCons(e, sc)
	default:
		c.errf("unsupported expression %T", e)
		return nil
	}
}

// --- Shared helpers ---

// litTable encodes a constant: loop × (pos:1, item:it).
func (c *compiler) litTable(loop *algebra.Node, it xdm.Item) *algebra.Node {
	lit := c.b.Lit([]string{"pos", "item"}, []xdm.Item{xdm.NewInt(1), it})
	return c.b.Cross(loop, lit)
}

// seqConcat assembles the sequence (e1, e2, …): parts tagged with a
// literal ord column, appended, renumbered by %pos1:<ord,pos>/iter. The
// renumbering % is what column dependency analysis deletes when the
// sequence flows into an order-indifferent context, turning ',' into a
// plain append (cf. Figure 10).
func (c *compiler) seqConcat(parts []*algebra.Node) *algebra.Node {
	switch len(parts) {
	case 0:
		return c.b.EmptyLit("iter", "pos", "item")
	case 1:
		return parts[0]
	}
	var u *algebra.Node
	for i, p := range parts {
		tagged := c.b.Cross(c.b.Keep(p, "iter", "pos", "item"), c.b.LitCol("ord", xdm.NewInt(int64(i))))
		if u == nil {
			u = tagged
		} else {
			u = c.b.Union(u, tagged)
		}
	}
	rn := algebra.WithOrigin(c.b.RowNum(u, "pos1",
		[]algebra.SortSpec{{Col: "ord"}, {Col: "pos"}}, "iter"), "sequence order")
	return c.b.Project(rn,
		algebra.ColPair{New: "iter", Old: "iter"},
		algebra.ColPair{New: "pos", Old: "pos1"},
		algebra.ColPair{New: "item", Old: "item"})
}

// lift maps a variable's table into a deeper loop through a map relation
// (cols outer, inner): Γ'(y) = π(iter:inner,pos,item)(map ⋈ outer=iter Γ(y)).
// These are the mapping joins that dominate Table 2.
func (c *compiler) lift(v, m *algebra.Node) *algebra.Node {
	return c.liftCols(v, m)
}

// liftCols is lift with additional pass-through columns (e.g. source-row
// provenance).
func (c *compiler) liftCols(v, m *algebra.Node, extra ...string) *algebra.Node {
	j := algebra.WithOrigin(c.b.Join(m, v, "outer", "iter"), "join (variable lifting)")
	proj := []algebra.ColPair{
		{New: "iter", Old: "inner"},
		{New: "pos", Old: "pos"},
		{New: "item", Old: "item"},
	}
	for _, col := range extra {
		proj = append(proj, algebra.ColPair{New: col, Old: col})
	}
	return c.b.Project(j, proj...)
}

// composeMap chains two maps: outer→mid and mid→inner give outer→inner.
func (c *compiler) composeMap(m1, m2 *algebra.Node) *algebra.Node {
	a := c.b.Project(m1, algebra.ColPair{New: "o", Old: "outer"}, algebra.ColPair{New: "mid", Old: "inner"})
	bq := c.b.Project(m2, algebra.ColPair{New: "mid2", Old: "outer"}, algebra.ColPair{New: "in2", Old: "inner"})
	j := c.b.Join(a, bq, "mid", "mid2")
	return c.b.Project(j, algebra.ColPair{New: "outer", Old: "o"}, algebra.ColPair{New: "inner", Old: "in2"})
}

// ebvIters returns the iterations (column iter) in which q's effective
// boolean value is true. Absent iterations are false by construction.
func (c *compiler) ebvIters(q *algebra.Node) *algebra.Node {
	agg := algebra.WithOrigin(
		c.b.Aggr(c.b.Keep(q, "iter", "item"), algebra.AggrEbv, "res", "item", "iter"),
		"where/EBV")
	return c.b.Project(c.b.Select(agg, "res"), algebra.ColPair{New: "iter", Old: "iter"})
}

// boolTable materializes a boolean result over a loop: iterations in t
// become true, the rest false.
func (c *compiler) boolTable(t, loop *algebra.Node) *algebra.Node {
	trueLit := c.b.Lit([]string{"pos", "item"}, []xdm.Item{xdm.NewInt(1), xdm.True})
	falseLit := c.b.Lit([]string{"pos", "item"}, []xdm.Item{xdm.NewInt(1), xdm.False})
	tt := c.b.Cross(t, trueLit)
	ff := c.b.Cross(c.b.Diff(loop, t, "iter"), falseLit)
	return c.b.UnionDisjoint(tt, ff, "iter")
}

// backMap re-assembles a for body's results in the enclosing loop:
// π(iter:outer, pos:pos1, item)(%pos1:<sortPre…,inner,pos>/outer(map ⋈ q)).
// Without extra sort keys this is the iter→seq order interaction — the
// operator behind 45 % of Q11's execution time in Table 2.
func (c *compiler) backMap(m, q *algebra.Node, sortPre []algebra.SortSpec) *algebra.Node {
	j := algebra.WithOrigin(c.b.Join(m, c.b.Keep(q, "iter", "pos", "item"), "inner", "iter"),
		"join (result mapping)")
	sort := append(append([]algebra.SortSpec{}, sortPre...),
		algebra.SortSpec{Col: "inner"}, algebra.SortSpec{Col: "pos"})
	rn := algebra.WithOrigin(c.b.RowNum(j, "pos1", sort, "outer"), "iter->seq order (3)")
	return c.b.Project(rn,
		algebra.ColPair{New: "iter", Old: "outer"},
		algebra.ColPair{New: "pos", Old: "pos1"},
		algebra.ColPair{New: "item", Old: "item"})
}

// atomized projects q to iter|item with nodes atomized (string values as
// xs:untypedAtomic).
func (c *compiler) atomized(q *algebra.Node) *algebra.Node {
	m := algebra.WithOrigin(c.b.Map1(c.b.Keep(q, "iter", "item"), algebra.UnAtomize, "av", "item"),
		"atomization")
	return c.b.Project(m, algebra.ColPair{New: "iter", Old: "iter"}, algebra.ColPair{New: "item", Old: "av"})
}

// guardCard wraps q in a cardinality check of at most one item per
// iteration (dynamic error otherwise), matching the singleton requirement
// of value comparisons and arithmetic.
func (c *compiler) guardCard(q *algebra.Node, what string) *algebra.Node {
	return c.b.CheckCard(q, nil, "iter", 0, 1, what)
}

// withPos turns an iter|item table into iter|pos|item with constant pos 1.
func (c *compiler) withPos1(q *algebra.Node) *algebra.Node {
	return c.b.Cross(q, c.b.LitCol("pos", xdm.NewInt(1)))
}
