package compile

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// bindResult is the relational encoding of one for clause.
type bindResult struct {
	varTable *algebra.Node // $x: iter|pos|item with iter = new iteration ids
	posTable *algebra.Node // $p (nil without at $p)
	newLoop  *algebra.Node // iter column of new iteration ids
	mapRel   *algebra.Node // outer|inner relating enclosing to new iterations
	numbered *algebra.Node // the full numbered binding table (bind column added)
}

// bindFor implements Rules BIND and BIND# for "$x [at $p] in e1". qIn is
// the compiled binding sequence. useHash selects BIND# (# instead of %);
// positional variables always force a dense per-iteration renumbering for
// $p — the case §2.2 shows cannot be expressed by language-level rewrites.
// Extra columns (e.g. source-row provenance) ride along into numbered.
func (c *compiler) bindFor(qIn *algebra.Node, hasPosVar, useHash bool, extra ...string) bindResult {
	cols := append([]string{"iter", "pos", "item"}, extra...)
	q := c.b.Keep(qIn, cols...)
	posCol := "pos"
	if hasPosVar {
		// Dense rank of pos within each iteration: the value $p is bound to.
		q = algebra.WithOrigin(
			c.b.RowNum(q, "posd", []algebra.SortSpec{{Col: "pos"}}, "iter"),
			"seq->iter order (3)")
		posCol = "posd"
	}
	var qv *algebra.Node
	if useHash {
		qv = algebra.WithOrigin(c.b.RowID(q, "bind"), "for binding (#)")
	} else {
		qv = algebra.WithOrigin(c.b.RowNum(q, "bind",
			[]algebra.SortSpec{{Col: "iter"}, {Col: posCol}}, ""), "seq->iter order (3)")
	}
	res := bindResult{
		varTable: c.withPos1(c.b.Project(qv,
			algebra.ColPair{New: "iter", Old: "bind"},
			algebra.ColPair{New: "item", Old: "item"})),
		newLoop: c.b.Project(qv, algebra.ColPair{New: "iter", Old: "bind"}),
		mapRel: c.b.Project(qv,
			algebra.ColPair{New: "outer", Old: "iter"},
			algebra.ColPair{New: "inner", Old: "bind"}),
		numbered: qv,
	}
	if hasPosVar {
		res.posTable = c.withPos1(c.b.Project(qv,
			algebra.ColPair{New: "iter", Old: "bind"},
			algebra.ColPair{New: "item", Old: posCol}))
	}
	return res
}

func (c *compiler) compileFLWOR(fl *xquery.FLWOR, sc *frame) *algebra.Node {
	start := sc
	cur := sc
	// A FLWOR with a plain (non-stable) order by renders its binding order
	// unobservable — case (f) of the paper's list: the sort re-establishes
	// the result order, so BIND# applies even under ordering mode ordered.
	orderByRelaxes := c.opts.Indifference && len(fl.Order) > 0 && !fl.Stable

	for _, cl := range fl.Clauses {
		switch cl := cl.(type) {
		case *xquery.LetClause:
			cur = cur.withVar(cl.Var, c.compile(cl.Expr, cur))
		case *xquery.ForClause:
			useHash := c.unordered() || orderByRelaxes
			g := c.hoistFrame(cl.In, cur)
			if g != cur {
				// Hoisted binding sequence: evaluate it once at frame g,
				// stamp source-row ids, and keep the provenance through
				// the lift so that where clauses over only this variable
				// can be value-joined on source rows (join recognition).
				qG := c.b.RowID(c.b.Keep(c.compile(cl.In, g), "iter", "pos", "item"), "src")
				lifted := c.liftToCols(qG, g, cur, "src")
				b := c.bindFor(lifted, cl.PosVar != "", useHash, "src")
				srcLoop := c.b.Project(qG, algebra.ColPair{New: "iter", Old: "src"})
				srcFromParent := c.b.Project(qG,
					algebra.ColPair{New: "outer", Old: "iter"},
					algebra.ColPair{New: "inner", Old: "src"})
				// Parent the source frame at the deepest ancestor that
				// still shares g's iteration space (let frames add
				// variables without changing the loop): variables bound
				// there stay visible to source-row evaluation.
				gTop := g
				var chain []*frame
				for fr := cur; fr != g; fr = fr.parent {
					chain = append(chain, fr)
				}
				for i := len(chain) - 1; i >= 0; i-- {
					if chain[i].fromParent != nil {
						break
					}
					gTop = chain[i]
				}
				fSrc := gTop.child(srcFromParent, srcLoop)
				fSrc.bind(cl.Var, c.withPos1(c.b.Project(qG,
					algebra.ColPair{New: "iter", Old: "src"},
					algebra.ColPair{New: "item", Old: "item"})))
				srcMap := c.b.Project(b.numbered,
					algebra.ColPair{New: "fiter", Old: "bind"},
					algebra.ColPair{New: "src", Old: "src"})
				cur = cur.child(b.mapRel, b.newLoop)
				cur.bind(cl.Var, b.varTable)
				cur.srcs = map[string]*srcInfo{cl.Var: {srcFrame: fSrc, forFrame: cur, srcMap: srcMap}}
				if cl.PosVar != "" {
					cur.bind(cl.PosVar, b.posTable)
				}
				continue
			}
			qIn := c.compile(cl.In, cur)
			b := c.bindFor(qIn, cl.PosVar != "", useHash)
			cur = cur.child(b.mapRel, b.newLoop)
			cur.bind(cl.Var, b.varTable)
			if cl.PosVar != "" {
				cur.bind(cl.PosVar, b.posTable)
			}
		}
	}

	if fl.Where != nil {
		trueLoop := c.condIters(fl.Where, cur)
		cur = cur.restrict(c, trueLoop)
	}

	qRet := c.compile(fl.Return, cur)
	totalMap := c.mapBetween(start, cur)

	if len(fl.Order) == 0 {
		if totalMap == nil {
			// Let-only FLWOR: the iteration space is unchanged, the
			// return value is the result.
			return c.b.Keep(qRet, "iter", "pos", "item")
		}
		return c.backMap(totalMap, qRet, nil)
	}
	if totalMap == nil {
		totalMap = c.b.Project(cur.loop,
			algebra.ColPair{New: "outer", Old: "iter"},
			algebra.ColPair{New: "inner", Old: "iter"})
	}

	// order by: compute each key per iteration (atomized singleton; absent
	// keys become the Null marker so that empty least/greatest applies),
	// join the key columns onto the return mapping, and sort by them ahead
	// of the binding order.
	j := algebra.WithOrigin(
		c.b.Join(totalMap, c.b.Keep(qRet, "iter", "pos", "item"), "inner", "iter"),
		"join (result mapping)")
	var sortPre []algebra.SortSpec
	for i, spec := range fl.Order {
		keyCol := keyColName(i)
		kq := c.guardCard(c.compile(spec.Key, cur), "order by key")
		kv := c.b.Project(c.atomized(kq),
			algebra.ColPair{New: "kiter", Old: "iter"},
			algebra.ColPair{New: keyCol, Old: "item"})
		// Fill iterations with an empty key.
		missing := c.b.Diff(c.b.Project(cur.loop, algebra.ColPair{New: "kiter", Old: "iter"}), kv, "kiter")
		filled := c.b.UnionDisjoint(kv, c.b.Cross(missing, c.b.LitCol(keyCol, xdm.Null)), "kiter")
		j = c.b.Join(j, filled, "inner", "kiter")
		j = c.dropCols(j, "kiter")
		sortPre = append(sortPre, algebra.SortSpec{
			Col: keyCol, Desc: spec.Descending, EmptyGreatest: spec.EmptyGreatest,
		})
	}
	sort := append(sortPre, algebra.SortSpec{Col: "inner"}, algebra.SortSpec{Col: "pos"})
	rn := algebra.WithOrigin(c.b.RowNum(j, "pos1", sort, "outer"), "order by sort")
	return c.b.Project(rn,
		algebra.ColPair{New: "iter", Old: "outer"},
		algebra.ColPair{New: "pos", Old: "pos1"},
		algebra.ColPair{New: "item", Old: "item"})
}

func keyColName(i int) string {
	return fmt.Sprintf("key%d", i)
}

// dropCols projects away the named columns, keeping everything else.
func (c *compiler) dropCols(q *algebra.Node, drop ...string) *algebra.Node {
	var proj []algebra.ColPair
	for _, col := range q.Schema() {
		dropped := false
		for _, d := range drop {
			if col == d {
				dropped = true
				break
			}
		}
		if !dropped {
			proj = append(proj, algebra.ColPair{New: col, Old: col})
		}
	}
	return c.b.Project(q, proj...)
}

func (c *compiler) compileQuantified(q *xquery.Quantified, sc *frame) *algebra.Node {
	return c.boolTable(c.quantIters(q, sc), sc.loop)
}

// witnessOuter maps a set of inner iterations (col iter) back to the
// distinct outer iterations that have at least one witness.
func (c *compiler) witnessOuter(m, inner *algebra.Node) *algebra.Node {
	if m == nil { // no binding introduced a new iteration space
		return inner
	}
	lp := c.b.Project(inner, algebra.ColPair{New: "inner", Old: "iter"})
	hits := c.b.Semi(m, lp, "inner")
	return c.b.Project(c.b.Distinct(hits, "outer"), algebra.ColPair{New: "iter", Old: "outer"})
}

func (c *compiler) compileIf(e *xquery.IfExpr, sc *frame) *algebra.Node {
	loopT := c.condIters(e.Cond, sc)
	loopF := c.b.Diff(sc.loop, loopT, "iter")
	qThen := c.compile(e.Then, sc.restrict(c, loopT))
	qElse := c.compile(e.Else, sc.restrict(c, loopF))
	return c.b.UnionDisjoint(c.b.Keep(qThen, "iter", "pos", "item"), c.b.Keep(qElse, "iter", "pos", "item"), "iter")
}

func (c *compiler) compileLogic(e *xquery.Logic, sc *frame) *algebra.Node {
	return c.boolTable(c.condIters(e, sc), sc.loop)
}

// combine joins two singleton-per-iteration tables on iter and applies a
// binary function, yielding iter|pos|item.
func (c *compiler) combine(l, r *algebra.Node, fn algebra.BinFn, cmp xdm.CmpOp, origin string) *algebra.Node {
	lp := c.b.Keep(l, "iter", "item")
	rp := c.b.Project(r,
		algebra.ColPair{New: "iter2", Old: "iter"},
		algebra.ColPair{New: "item2", Old: "item"})
	j := c.b.Join(lp, rp, "iter", "iter2")
	op := algebra.WithOrigin(c.b.BinOp(j, fn, cmp, "res", "item", "item2"), origin)
	val := c.b.Project(op,
		algebra.ColPair{New: "iter", Old: "iter"},
		algebra.ColPair{New: "item", Old: "res"})
	return c.withPos1(val)
}
