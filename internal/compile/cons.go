package compile

import (
	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

// stringValue compiles the fn:string coercion of an expression: atomized
// singleton cast to xs:string, with "" for the empty sequence. Result
// shape: iter|item, complete over the loop.
func (c *compiler) stringValue(e xquery.Expr, sc *frame) *algebra.Node {
	a := c.atomized(c.guardCard(c.compile(e, sc), "string coercion"))
	m := c.b.Map1(a, algebra.UnString, "sv", "item")
	val := c.b.Project(m,
		algebra.ColPair{New: "iter", Old: "iter"},
		algebra.ColPair{New: "item", Old: "sv"})
	return c.fillDefault(val, sc.loop, xdm.NewString(""))
}

// compileElemCons compiles a direct element constructor. Element
// construction is where sequence order establishes document order
// (interaction 2 of the paper) — the content's pos column is genuinely
// consumed here, so column dependency analysis keeps the content order
// bookkeeping alive in every ordering mode (Figure 3 keeps the
// "elem cons." arrow).
func (c *compiler) compileElemCons(e *xquery.ElemCons, sc *frame) *algebra.Node {
	var parts []*algebra.Node
	for _, a := range e.Attrs {
		val := c.avtValue(a.Parts, sc)
		attr := algebra.WithOrigin(c.b.Attr(a.Name, val, "item"), "element construction")
		parts = append(parts, c.withPos1(attr))
	}
	for _, ce := range e.Content {
		parts = append(parts, c.compile(ce, sc))
	}
	content := c.seqConcat(parts)
	if len(parts) == 0 {
		content = c.b.EmptyLit("iter", "pos", "item")
	}
	elem := algebra.WithOrigin(
		c.b.Elem(e.Name, sc.loop, c.b.Keep(content, "iter", "pos", "item")),
		"element construction")
	return c.withPos1(elem)
}

// avtValue compiles an attribute value template into an iter|item string
// table, complete over the loop. Expression parts are atomized and joined
// with single spaces in sequence order (AggrStrJoin is deliberately
// order-sensitive: it consumes pos).
func (c *compiler) avtValue(parts []xquery.AttrPart, sc *frame) *algebra.Node {
	var acc *algebra.Node
	for _, p := range parts {
		var cur *algebra.Node
		if p.Expr == nil {
			cur = c.b.Cross(sc.loop, c.b.LitCol("item", xdm.NewString(p.Literal)))
		} else {
			q := c.b.Keep(c.compile(p.Expr, sc), "iter", "pos", "item")
			sj := algebra.WithOrigin(
				c.b.AggrJoin(q, "res", "item", "iter", " "),
				"element construction")
			val := c.b.Project(sj,
				algebra.ColPair{New: "iter", Old: "iter"},
				algebra.ColPair{New: "item", Old: "res"})
			cur = c.fillDefault(val, sc.loop, xdm.NewString(""))
		}
		if acc == nil {
			acc = cur
		} else {
			joined := c.combine(c.withPos1(acc), c.withPos1(cur), algebra.BConcat, 0, "element construction")
			acc = c.b.Keep(joined, "iter", "item")
		}
	}
	if acc == nil {
		acc = c.b.Cross(sc.loop, c.b.LitCol("item", xdm.NewString("")))
	}
	return c.b.Keep(acc, "iter", "item")
}
