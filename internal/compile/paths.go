package compile

import (
	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xquery"
)

func (c *compiler) compilePath(p *xquery.Path, sc *frame) *algebra.Node {
	var q *algebra.Node
	if p.Start != nil {
		q = c.compile(p.Start, sc)
	} else {
		fr, v := sc.lookup(".")
		if fr == nil {
			c.errf("relative path without context item")
		}
		q = c.liftTo(v, fr, sc)
	}
	for i := range p.Steps {
		q = c.compileStep(q, &p.Steps[i], sc)
	}
	return q
}

// compileStep implements Rules LOC (ordered) and LOC# (unordered):
//
//	LOC : e/ax::nt ⇒ %pos:<item>/iter (π(iter,item) (⤋ax::nt qe))
//	LOC#: e/ax::nt ⇒ #pos             (π(iter,item) (⤋ax::nt qe))
//
// Steps carrying a positional predicate take the Core route instead
// (compileStepPerContext): XPath predicates select positionally *per
// context node*, which the flat (iter, item) encoding cannot express once
// an iteration holds several context nodes.
func (c *compiler) compileStep(q *algebra.Node, st *xquery.Step, sc *frame) *algebra.Node {
	for _, pred := range st.Preds {
		if pc, ok := classifyPredicate(pred); ok && pc.positional {
			return c.compileStepPerContext(q, st, sc)
		}
	}
	res := c.stepLOC(c.b.Keep(q, "iter", "item"))(st)
	for _, pred := range st.Preds {
		res = c.compilePredicate(res, pred, sc)
	}
	return res
}

// stepLOC returns the plain LOC/LOC# compilation over a given context.
func (c *compiler) stepLOC(ctx *algebra.Node) func(*xquery.Step) *algebra.Node {
	return func(st *xquery.Step) *algebra.Node {
		out := algebra.WithOrigin(c.b.Step(ctx, st.Axis, st.Test), "path step")
		var withPos *algebra.Node
		if c.unordered() {
			withPos = algebra.WithOrigin(c.b.RowID(out, "pos"), "step numbering (#)")
		} else {
			withPos = algebra.WithOrigin(c.b.RowNum(out, "pos",
				[]algebra.SortSpec{{Col: "item"}}, "iter"), "doc->seq order (1)")
		}
		return c.b.Keep(withPos, "iter", "pos", "item")
	}
}

// compileStepPerContext is the XQuery Core reading of a predicated step:
// for $dot in e return $dot/ax::nt[p1][p2]… — each context node becomes
// an iteration of a sub-loop, the predicates (positional ranks included)
// apply within that iteration, and the results are merged back into node
// set semantics (duplicate-free, doc order or # per the ordering mode).
func (c *compiler) compileStepPerContext(q *algebra.Node, st *xquery.Step, sc *frame) *algebra.Node {
	base := c.b.Keep(q, "iter", "pos", "item")
	var qn *algebra.Node
	if c.unordered() {
		qn = c.b.RowID(base, "inner")
	} else {
		qn = algebra.WithOrigin(c.b.RowNum(base, "inner",
			[]algebra.SortSpec{{Col: "iter"}, {Col: "pos"}}, ""), "predicate iteration")
	}
	subloop := c.b.Project(qn, algebra.ColPair{New: "iter", Old: "inner"})
	m := c.b.Project(qn,
		algebra.ColPair{New: "outer", Old: "iter"},
		algebra.ColPair{New: "inner", Old: "inner"})
	inner := sc.child(m, subloop)
	dot := c.withPos1(c.b.Project(qn,
		algebra.ColPair{New: "iter", Old: "inner"},
		algebra.ColPair{New: "item", Old: "item"}))
	res := c.stepLOC(c.b.Keep(dot, "iter", "item"))(st)
	for _, pred := range st.Preds {
		res = c.compilePredicate(res, pred, inner)
	}
	// Back to the enclosing iterations: dedup across context nodes and
	// re-establish the node-set order.
	j := algebra.WithOrigin(c.b.Join(m, c.b.Keep(res, "iter", "item"), "inner", "iter"),
		"join (result mapping)")
	nodes := c.b.Distinct(c.b.Project(j,
		algebra.ColPair{New: "iter", Old: "outer"},
		algebra.ColPair{New: "item", Old: "item"}), "iter", "item")
	var withPos *algebra.Node
	if c.unordered() {
		withPos = c.b.RowID(nodes, "pos")
	} else {
		withPos = algebra.WithOrigin(c.b.RowNum(nodes, "pos",
			[]algebra.SortSpec{{Col: "item"}}, "iter"), "doc->seq order (1)")
	}
	return c.b.Keep(withPos, "iter", "pos", "item")
}

// predClass classifies a predicate expression: positional predicates are
// decided statically (XQuery decides dynamically by the value's type; our
// static subset covers the forms the XMark queries use — integer
// literals, last(), and position() comparisons against integer literals
// or last()).
type predClass struct {
	positional bool
	cmp        xdm.CmpOp // how pos relates to the operand
	lit        int64     // literal operand (if !isLast)
	isLast     bool      // operand is last()
}

// unwrapUnordered strips fn:unordered() wrappers inserted by
// normalization; position()/last() classification must see through them.
func unwrapUnordered(e xquery.Expr) xquery.Expr {
	for {
		fc, ok := e.(*xquery.FuncCall)
		if !ok || fc.Name != "unordered" || len(fc.Args) != 1 {
			return e
		}
		e = fc.Args[0]
	}
}

func classifyPredicate(p xquery.Expr) (predClass, bool) {
	switch p := p.(type) {
	case *xquery.IntLit:
		return predClass{positional: true, cmp: xdm.CmpEq, lit: p.Val}, true
	case *xquery.FuncCall:
		if p.Name == "last" && len(p.Args) == 0 {
			return predClass{positional: true, cmp: xdm.CmpEq, isLast: true}, true
		}
	case *xquery.GeneralCmp:
		return classifyPositionCmp(p.L, p.R, p.Op)
	case *xquery.ValueCmp:
		return classifyPositionCmp(p.L, p.R, p.Op)
	}
	return predClass{}, false
}

func classifyPositionCmp(l, r xquery.Expr, op xdm.CmpOp) (predClass, bool) {
	l, r = unwrapUnordered(l), unwrapUnordered(r)
	if isPositionCall(r) {
		l, r = r, l
		op = op.Flip()
	}
	if !isPositionCall(l) {
		return predClass{}, false
	}
	switch r := r.(type) {
	case *xquery.IntLit:
		return predClass{positional: true, cmp: op, lit: r.Val}, true
	case *xquery.FuncCall:
		if r.Name == "last" && len(r.Args) == 0 {
			return predClass{positional: true, cmp: op, isLast: true}, true
		}
	}
	return predClass{}, false
}

func isPositionCall(e xquery.Expr) bool {
	fc, ok := e.(*xquery.FuncCall)
	return ok && fc.Name == "position" && len(fc.Args) == 0
}

// compilePredicate filters q (iter|pos|item) through one predicate.
func (c *compiler) compilePredicate(q *algebra.Node, pred xquery.Expr, sc *frame) *algebra.Node {
	if pc, ok := classifyPredicate(pred); ok && pc.positional {
		return c.compilePositionalPred(q, pc)
	}
	return c.compileBooleanPred(q, pred, sc)
}

// compilePositionalPred selects by the dense per-iteration rank of pos.
// The renumbering % sorts by pos — a value-consuming use, so column
// dependency analysis keeps it alive (and keeps whatever order pos
// carries), even under ordering mode unordered where that order is an
// arbitrary one (see the let-unfolding discussion in §2.2).
func (c *compiler) compilePositionalPred(q *algebra.Node, pc predClass) *algebra.Node {
	dense := algebra.WithOrigin(c.b.RowNum(c.b.Keep(q, "iter", "pos", "item"), "posd",
		[]algebra.SortSpec{{Col: "pos"}}, "iter"), "positional predicate")
	var cmp *algebra.Node
	if pc.isLast {
		cnt := c.b.Aggr(dense, algebra.AggrCount, "cnt", "", "iter")
		cntR := c.b.Project(cnt,
			algebra.ColPair{New: "citer", Old: "iter"},
			algebra.ColPair{New: "cnt", Old: "cnt"})
		j := c.b.Join(dense, cntR, "iter", "citer")
		cmp = c.b.BinOp(j, algebra.BCmpVal, pc.cmp, "res", "posd", "cnt")
	} else {
		withLit := c.b.Cross(dense, c.b.LitCol("pv", xdm.NewInt(pc.lit)))
		cmp = c.b.BinOp(withLit, algebra.BCmpVal, pc.cmp, "res", "posd", "pv")
	}
	return c.b.Keep(c.b.Select(cmp, "res"), "iter", "pos", "item")
}

// compileBooleanPred evaluates the predicate once per item: each row of q
// becomes an iteration of a sub-loop in which "." is bound to the item;
// rows whose predicate EBV is true survive.
func (c *compiler) compileBooleanPred(q *algebra.Node, pred xquery.Expr, sc *frame) *algebra.Node {
	base := c.b.Keep(q, "iter", "pos", "item")
	var qn *algebra.Node
	if c.unordered() {
		qn = c.b.RowID(base, "inner")
	} else {
		qn = algebra.WithOrigin(c.b.RowNum(base, "inner",
			[]algebra.SortSpec{{Col: "iter"}, {Col: "pos"}}, ""), "predicate iteration")
	}
	subloop := c.b.Project(qn, algebra.ColPair{New: "iter", Old: "inner"})
	m := c.b.Project(qn,
		algebra.ColPair{New: "outer", Old: "iter"},
		algebra.ColPair{New: "inner", Old: "inner"})
	inner := sc.child(m, subloop)
	inner.bind(".", c.withPos1(c.b.Project(qn,
		algebra.ColPair{New: "iter", Old: "inner"},
		algebra.ColPair{New: "item", Old: "item"})))
	qp := c.compile(pred, inner)
	keep := c.b.Project(c.ebvIters(qp), algebra.ColPair{New: "inner", Old: "iter"})
	return c.b.Keep(c.b.Semi(qn, keep, "inner"), "iter", "pos", "item")
}

// compileSetOp implements union/intersect/except over node sequences:
// dedup by (iter, item), then establish document order via % — or an
// arbitrary order via # under ordering mode unordered, which is the '|'
// that column analysis later degrades to ',' (Figure 10).
func (c *compiler) compileSetOp(e *xquery.SetOp, sc *frame) *algebra.Node {
	l := c.b.Keep(c.compile(e.L, sc), "iter", "item")
	r := c.b.Keep(c.compile(e.R, sc), "iter", "item")
	var d *algebra.Node
	switch e.Kind {
	case xquery.SetUnion:
		d = c.b.Distinct(c.b.Union(l, r), "iter", "item")
	case xquery.SetIntersect:
		d = c.b.Distinct(c.b.Semi(l, r, "iter", "item"), "iter", "item")
	default:
		d = c.b.Distinct(c.b.Diff(l, r, "iter", "item"), "iter", "item")
	}
	algebra.WithOrigin(d, "node set operation")
	var withPos *algebra.Node
	if c.unordered() {
		withPos = c.b.RowID(d, "pos")
	} else {
		withPos = algebra.WithOrigin(c.b.RowNum(d, "pos",
			[]algebra.SortSpec{{Col: "item"}}, "iter"), "doc->seq order (1)")
	}
	return c.b.Keep(withPos, "iter", "pos", "item")
}

func (c *compiler) compileRange(e *xquery.RangeExpr, sc *frame) *algebra.Node {
	l := c.atomized(c.guardCard(c.compile(e.L, sc), "range start"))
	r := c.atomized(c.guardCard(c.compile(e.R, sc), "range end"))
	lp := c.b.Project(l, algebra.ColPair{New: "iter", Old: "iter"}, algebra.ColPair{New: "lo", Old: "item"})
	rp := c.b.Project(r, algebra.ColPair{New: "iter2", Old: "iter"}, algebra.ColPair{New: "hi", Old: "item"})
	j := c.b.Join(lp, rp, "iter", "iter2")
	return algebra.WithOrigin(c.b.Range(c.dropCols(j, "iter2"), "lo", "hi"), "range")
}
