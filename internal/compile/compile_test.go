package compile

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/norm"
	"repro/internal/xquery"
)

func compileQuery(t *testing.T, src string, indiff bool) *Plan {
	t.Helper()
	m, err := xquery.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	nm, err := norm.Normalize(m, norm.Options{InsertUnordered: indiff})
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	p, err := Compile(nm, Options{Indifference: indiff})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func stats(p *Plan) algebra.Stats { return algebra.PlanStats(p.Root) }

func TestRuleLOCEmitsRowNum(t *testing.T) {
	p := compileQuery(t, `doc("a.xml")/x/y`, false)
	s := stats(p)
	if s.Steps != 2 || s.RowNums != 2 || s.RowIDs != 0 {
		t.Errorf("LOC plan: steps=%d ρ=%d #=%d", s.Steps, s.RowNums, s.RowIDs)
	}
}

func TestRuleLOCHashUnderUnordered(t *testing.T) {
	p := compileQuery(t, `declare ordering unordered; doc("a.xml")/x/y`, true)
	s := stats(p)
	if s.Steps != 2 || s.RowNums != 0 || s.RowIDs != 2 {
		t.Errorf("LOC# plan: steps=%d ρ=%d #=%d", s.Steps, s.RowNums, s.RowIDs)
	}
	// Without the indifference rules, the declaration is ignored.
	p = compileQuery(t, `declare ordering unordered; doc("a.xml")/x/y`, false)
	if s := stats(p); s.RowIDs != 0 {
		t.Error("baseline compiler must ignore the ordering mode")
	}
}

func TestRuleBINDOrderedVsUnordered(t *testing.T) {
	src := `for $x in doc("a.xml")/p return $x`
	// ordered: 1 step-ρ + 1 bind-ρ + 1 backmap-ρ.
	if s := stats(compileQuery(t, src, false)); s.RowNums != 3 {
		t.Errorf("ordered for: ρ=%d, want 3", s.RowNums)
	}
	// unordered: only the backmap ρ remains (iter→seq is not disabled).
	u := `declare ordering unordered; ` + src
	if s := stats(compileQuery(t, u, true)); s.RowNums != 1 {
		t.Errorf("unordered for: ρ=%d, want 1", s.RowNums)
	}
}

func TestPositionalVariableForcesRowNum(t *testing.T) {
	// §2.2: at $p has no # rule even under ordering mode unordered.
	src := `declare ordering unordered; for $x at $p in doc("a.xml")/v return $p`
	p := compileQuery(t, src, true)
	if s := stats(p); s.RowNums < 1 {
		t.Errorf("positional for compiled without any ρ:\n%s", algebra.Print(p.Root))
	}
}

func TestFnUnorderedIdentityInBaseline(t *testing.T) {
	with := compileQuery(t, `unordered(doc("a.xml")/x)`, true)
	without := compileQuery(t, `unordered(doc("a.xml")/x)`, false)
	if stats(with).RowIDs == 0 {
		t.Error("FN:UNORDERED should emit # when indifference is on")
	}
	if stats(without).RowIDs != 0 {
		t.Error("fn:unordered must compile as identity in the baseline")
	}
}

func TestSequenceConcatEmitsOrderRowNum(t *testing.T) {
	p := compileQuery(t, `(1, 2)`, false)
	if s := stats(p); s.RowNums != 1 {
		t.Errorf("sequence ρ: %d", s.RowNums)
	}
}

func TestSharedSubexpressionsCompileOnce(t *testing.T) {
	// The same path twice: hash-consing must reunify the sub-plans.
	p := compileQuery(t, `(count(doc("a.xml")//x), count(doc("a.xml")//x))`, false)
	if s := stats(p); s.Steps != 2 { // d-o-s + child once, not twice
		t.Errorf("shared path compiled %d steps, want 2", s.Steps)
	}
}

func TestLetOnlyFLWORHasNoBackmap(t *testing.T) {
	p := compileQuery(t, `let $x := doc("a.xml")/v return $x`, false)
	for _, n := range algebra.Nodes(p.Root) {
		if n.Origin == "iter->seq order (3)" {
			t.Error("let-only FLWOR emitted a result-mapping ρ")
		}
	}
}

func TestJoinRecognitionShape(t *testing.T) {
	// The Q8 pattern: the where comparison over two independent sides
	// must compile to a value join (cross of the keyed operand tables),
	// not to per-pair-iteration lifting.
	src := `let $s := doc("a.xml")/site
	for $p in $s/people/person
	let $a := for $t in $s/closed_auctions/closed_auction
	          where $t/buyer/@person = $p/@id
	          return $t
	return count($a)`
	p := compileQuery(t, src, false)
	joinCmp := false
	for _, n := range algebra.Nodes(p.Root) {
		if n.Kind == algebra.OpBinOp && n.BFn == algebra.BCmpGenJoin {
			joinCmp = true
		}
	}
	if !joinCmp {
		t.Errorf("comparison not evaluated as a value join:\n%s", algebra.Print(p.Root))
	}
}

func TestOrderByUsesHashBinding(t *testing.T) {
	// Case (f): a plain order by relaxes the for binding even in ordered
	// mode — but only with the indifference rules enabled.
	src := `for $x in doc("a.xml")/v order by $x return $x`
	p := compileQuery(t, src, true)
	hashBind := false
	for _, n := range algebra.Nodes(p.Root) {
		if n.Kind == algebra.OpRowID && n.Col == "bind" {
			hashBind = true
		}
	}
	if !hashBind {
		t.Errorf("order-by FLWOR did not use BIND#:\n%s", algebra.Print(p.Root))
	}
	// stable order by keeps the ordered binding.
	srcStable := `for $x in doc("a.xml")/v stable order by $x return $x`
	p2 := compileQuery(t, srcStable, true)
	for _, n := range algebra.Nodes(p2.Root) {
		if n.Kind == algebra.OpRowID && n.Col == "bind" {
			t.Error("stable order by must not relax the binding")
		}
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		`$undefined`,
		`doc(concat("a", ".xml"))`, // non-literal URI
		`last()`,                   // outside predicates
		`position()`,
		`nosuchfn(1)`,
	} {
		m, err := xquery.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		nm, err := norm.Normalize(m, norm.Options{})
		if err != nil {
			t.Fatalf("normalize %q: %v", src, err)
		}
		if _, err := Compile(nm, Options{}); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		} else if !strings.Contains(err.Error(), "compile:") {
			t.Errorf("Compile(%q): error %v lacks prefix", src, err)
		}
	}
}

func TestFreeVars(t *testing.T) {
	c := &compiler{}
	cases := map[string][]string{
		`$a + $b`:                                 {"a", "b"},
		`for $x in $s return $x`:                  {"s"},
		`for $x in $s return $y`:                  {"s", "y"},
		`let $x := $a return $x`:                  {"a"},
		`some $v in $d satisfies $v = $w`:         {"d", "w"},
		`$p/a[@k = $q]`:                           {"p", "q"},
		`$p/a[. = 1]`:                             {"p"},
		`.`:                                       {"."},
		`count($l)`:                               {"l"},
		`<e a="{ $x }">{ $y }</e>`:                {"x", "y"},
		`for $x at $i in $s return ($x, $i)`:      {"s"},
		`for $x in (1, 2) return $x/self::node()`: {},
	}
	for src, want := range cases {
		m, err := xquery.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		fv := c.freeVars(m.Body)
		if len(fv) != len(want) {
			t.Errorf("freeVars(%q) = %v, want %v", src, fv, want)
			continue
		}
		for _, w := range want {
			if !fv[w] {
				t.Errorf("freeVars(%q) missing %q", src, w)
			}
		}
	}
}

func TestContainsConstructor(t *testing.T) {
	c := &compiler{}
	pos := `for $x in $s return <e>{ $x }</e>`
	neg := `for $x in $s return count($x)`
	m1, _ := xquery.Parse(pos)
	m2, _ := xquery.Parse(neg)
	if !c.containsConstructor(m1.Body) {
		t.Error("constructor not detected")
	}
	if c.containsConstructor(m2.Body) {
		t.Error("false positive constructor detection")
	}
}
