package compile

import (
	"repro/internal/algebra"
	"repro/internal/xquery"
)

// frame is one level of the iteration-scope chain. Every for clause,
// quantifier binding, where restriction, if branch and boolean predicate
// pushes a frame; let clauses push a map-less frame (same loop, extra
// variables).
//
// Frames are the hook for loop-invariant hoisting, this compiler's
// rendition of the "evaluated once only" property the paper attributes to
// Pathfinder's code generator ([9], visible in Table 2 where path
// evaluation accounts for <1 %): an expression whose free variables are
// all bound in an ancestor frame is compiled against that ancestor's loop
// — once — and its table is mapped into the current loop through the
// frames' map relations (one join per for-nesting level, the "mapping
// joins" of Table 2).
type frame struct {
	parent *frame
	// fromParent maps parent iterations (outer) to this frame's
	// iterations (inner); nil for map-less frames (let) and the root.
	fromParent *algebra.Node
	loop       *algebra.Node
	vars       map[string]*algebra.Node
	// srcs records source-row provenance for for-variables whose binding
	// sequence was hoisted: expressions over only that variable can be
	// evaluated once per *source row* instead of once per iteration —
	// the key ingredient of value-join recognition (Table 2's "join").
	srcs  map[string]*srcInfo
	depth int
}

// srcInfo links a for-variable to the rows of its hoisted binding
// sequence.
type srcInfo struct {
	// srcFrame iterates over the source rows (loop = src ids); the
	// for-variable is bound in it.
	srcFrame *frame
	// forFrame is the frame the for clause created (where the variable's
	// per-iteration binding lives).
	forFrame *frame
	// srcMap relates forFrame iterations to source rows: cols fiter, src.
	srcMap *algebra.Node
}

// lookupSrc finds source provenance for a variable, honouring shadowing.
func (f *frame) lookupSrc(name string) *srcInfo {
	for fr := f; fr != nil; fr = fr.parent {
		if _, ok := fr.vars[name]; ok {
			if fr.srcs != nil {
				return fr.srcs[name]
			}
			return nil
		}
	}
	return nil
}

// rootFrame builds the outermost frame over the given loop.
func rootFrame(loop *algebra.Node) *frame {
	return &frame{loop: loop, vars: map[string]*algebra.Node{}}
}

// child pushes a frame with a new loop reached through map m.
func (f *frame) child(m, loop *algebra.Node) *frame {
	return &frame{parent: f, fromParent: m, loop: loop, vars: map[string]*algebra.Node{}, depth: f.depth + 1}
}

// withVar pushes a map-less frame binding one variable in the same loop.
func (f *frame) withVar(name string, v *algebra.Node) *frame {
	return &frame{parent: f, loop: f.loop, vars: map[string]*algebra.Node{name: v}, depth: f.depth + 1}
}

// bind adds a variable to this frame (used right after frame creation,
// before the frame is shared).
func (f *frame) bind(name string, v *algebra.Node) { f.vars[name] = v }

// lookup finds the frame and table binding a variable.
func (f *frame) lookup(name string) (*frame, *algebra.Node) {
	for fr := f; fr != nil; fr = fr.parent {
		if v, ok := fr.vars[name]; ok {
			return fr, v
		}
	}
	return nil, nil
}

// hoistFrame returns the shallowest frame at which e can be compiled: the
// deepest frame binding any of e's free variables (the root frame for
// closed expressions). Expressions containing node constructors are never
// hoisted — constructors create one node per iteration, so their
// evaluation frequency is observable.
func (c *compiler) hoistFrame(e xquery.Expr, f *frame) *frame {
	if c.containsConstructor(e) {
		return f
	}
	target := f
	for fr := f; fr != nil; fr = fr.parent {
		target = fr
	}
	deepest := target // root
	for name := range c.freeVars(e) {
		fr, _ := f.lookup(name)
		if fr == nil {
			return f // unbound: compile in place so the error surfaces
		}
		if fr.depth > deepest.depth {
			deepest = fr
		}
	}
	return deepest
}

// srcHoist decides whether e can be evaluated once per *source row* of a
// hoisted for-binding sequence instead of once per iteration: its deepest
// free variable must be exactly one for-variable with source provenance,
// and every other free variable must be bound at or above the source
// sequence's frame. This is the decorrelation that keeps XMark Q9's
// triply-nested comparison from materializing the triple iteration space.
func (c *compiler) srcHoist(e xquery.Expr, f *frame) (*srcInfo, bool) {
	if c.containsConstructor(e) {
		return nil, false
	}
	fv := c.freeVars(e)
	if len(fv) == 0 {
		return nil, false
	}
	var deepest *frame
	deepVar := ""
	anchors := make(map[string]*frame, len(fv))
	for name := range fv {
		fr, _ := f.lookup(name)
		if fr == nil {
			return nil, false
		}
		anchors[name] = fr
		if deepest == nil || fr.depth > deepest.depth {
			deepest, deepVar = fr, name
		}
	}
	// Exactly one variable may live at the deepest frame.
	for name, fr := range anchors {
		if fr == deepest && name != deepVar {
			return nil, false
		}
	}
	if deepest.srcs == nil {
		return nil, false
	}
	si := deepest.srcs[deepVar]
	if si == nil {
		return nil, false
	}
	g := si.srcFrame.parent
	for name, fr := range anchors {
		if name == deepVar {
			continue
		}
		if fr.depth > g.depth {
			return nil, false
		}
	}
	return si, true
}

// liftFromSrc maps a table keyed by source rows into frame f through the
// source map.
func (c *compiler) liftFromSrc(q *algebra.Node, si *srcInfo, f *frame) *algebra.Node {
	km := c.srcKeyed(si, f, "srck") // (srck, iter) with iter = f's iterations
	qr := c.b.Project(c.b.Keep(q, "iter", "pos", "item"),
		algebra.ColPair{New: "src2", Old: "iter"},
		algebra.ColPair{New: "pos", Old: "pos"},
		algebra.ColPair{New: "item", Old: "item"})
	j := algebra.WithOrigin(c.b.Join(km, qr, "srck", "src2"), "join (variable lifting)")
	return c.b.Project(j,
		algebra.ColPair{New: "iter", Old: "iter"},
		algebra.ColPair{New: "pos", Old: "pos"},
		algebra.ColPair{New: "item", Old: "item"})
}

// liftTo maps a table compiled at frame `from` into frame `to` by joining
// through each intervening map relation.
func (c *compiler) liftTo(q *algebra.Node, from, to *frame) *algebra.Node {
	return c.liftToCols(q, from, to)
}

// liftToCols is liftTo with pass-through columns.
func (c *compiler) liftToCols(q *algebra.Node, from, to *frame, extra ...string) *algebra.Node {
	// Collect the chain from `to` up to (exclusive) `from`.
	var chain []*frame
	for fr := to; fr != from; fr = fr.parent {
		chain = append(chain, fr)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if m := chain[i].fromParent; m != nil {
			q = c.liftCols(q, m, extra...)
		}
	}
	return q
}

// mapBetween composes the map relations between two frames (outer =
// iterations of `from`, inner = iterations of `to`); nil when the
// iteration space is unchanged.
func (c *compiler) mapBetween(from, to *frame) *algebra.Node {
	var chain []*frame
	for fr := to; fr != from; fr = fr.parent {
		chain = append(chain, fr)
	}
	var total *algebra.Node
	for i := len(chain) - 1; i >= 0; i-- {
		m := chain[i].fromParent
		if m == nil {
			continue
		}
		if total == nil {
			total = m
		} else {
			total = c.composeMap(total, m)
		}
	}
	return total
}

// restrictFrame pushes a frame for a restricted loop (where clauses, if
// branches): the map is the identity on the surviving iterations, so
// lifting through it is a semijoin.
func (f *frame) restrict(c *compiler, loop *algebra.Node) *frame {
	m := c.b.Project(loop,
		algebra.ColPair{New: "outer", Old: "iter"},
		algebra.ColPair{New: "inner", Old: "iter"})
	return f.child(m, loop)
}
