package qerr

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"
	"time"
)

func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"parse", New(ErrParse, "parse", errors.New("unexpected token")), http.StatusBadRequest},
		{"parse positioned", At(ErrParse, "parse", 3, 7, errors.New("bad")), http.StatusBadRequest},
		{"compile", Newf(ErrCompile, "compile", "unbound variable $x"), http.StatusBadRequest},
		// ErrLimit wraps ErrParse; the more specific 413 must win.
		{"input limit", New(ErrLimit, "parse", errors.New("too big")), http.StatusRequestEntityTooLarge},
		{"memory limit", New(ErrMemoryLimit, "execute", errors.New("budget")), http.StatusRequestEntityTooLarge},
		{"timeout", New(ErrTimeout, "execute", context.DeadlineExceeded), http.StatusRequestTimeout},
		{"canceled", New(ErrCanceled, "execute", context.Canceled), StatusClientClosedRequest},
		// Bare cutoff (neither timeout nor memory) is still the request's
		// fault: classified → 400.
		{"bare cutoff", New(ErrCutoff, "execute", errors.New("cut")), http.StatusBadRequest},
		{"overload", Overload(50*time.Millisecond, "queue full: %w", ErrOverload), http.StatusTooManyRequests},
		{"rate limited", RateLimited(100*time.Millisecond, "client over budget: %w", ErrRateLimited), http.StatusTooManyRequests},
		{"internal", FromPanic("execute", "index out of range", nil), http.StatusInternalServerError},
		{"classified other", New(errors.New("dynamic error"), "execute", errors.New("unknown document")), http.StatusBadRequest},
		{"unclassified", errors.New("mystery"), http.StatusInternalServerError},
		// Wrapping must not disturb the mapping: errors.Is walks the chain.
		{"wrapped overload", fmt.Errorf("server: %w", Overload(time.Second, "shed: %w", ErrOverload)), http.StatusTooManyRequests},
		{"wrapped timeout", fmt.Errorf("outer: %w", New(ErrTimeout, "execute", errors.New("deadline"))), http.StatusRequestTimeout},
	}
	for _, tc := range cases {
		if got := HTTPStatus(tc.err); got != tc.want {
			t.Errorf("%s: HTTPStatus = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestHTTPStatusRetryAfterAgreement pins the contract the serving layer
// relies on: every 429 the taxonomy produces carries a Retry-After hint.
func TestHTTPStatusRetryAfterAgreement(t *testing.T) {
	for name, err := range map[string]error{
		"overload":     Overload(250*time.Millisecond, "governor: queue full: %w", ErrOverload),
		"rate limited": RateLimited(250*time.Millisecond, "client over budget: %w", ErrRateLimited),
	} {
		if got := HTTPStatus(err); got != http.StatusTooManyRequests {
			t.Fatalf("%s: HTTPStatus = %d, want 429", name, got)
		}
		hint, ok := RetryAfterOf(err)
		if !ok || hint != 250*time.Millisecond {
			t.Fatalf("%s: RetryAfterOf = %v, %v; want 250ms, true", name, hint, ok)
		}
	}
}

// TestRateLimitedDistinctFromOverload pins the two-429 design: the
// sentinels never match each other, so a client (or test) can tell "slow
// down" from "service saturated" by errors.Is alone.
func TestRateLimitedDistinctFromOverload(t *testing.T) {
	rl := RateLimited(time.Second, "over budget: %w", ErrRateLimited)
	ov := Overload(time.Second, "queue full: %w", ErrOverload)
	if errors.Is(rl, ErrOverload) {
		t.Fatal("ErrRateLimited matches ErrOverload")
	}
	if errors.Is(ov, ErrRateLimited) {
		t.Fatal("ErrOverload matches ErrRateLimited")
	}
	if !IsRetryable(rl) || !IsRetryable(ov) {
		t.Fatal("both 429 classes must be retryable")
	}
}

func TestCode(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{RateLimited(time.Second, "x: %w", ErrRateLimited), "rate_limited"},
		{Overload(time.Second, "x: %w", ErrOverload), "overloaded"},
		{New(ErrLimit, "parse", errors.New("big")), "input_limit"},
		{New(ErrParse, "parse", errors.New("bad")), "parse_error"},
		{New(ErrCompile, "compile", errors.New("bad")), "compile_error"},
		{New(ErrMemoryLimit, "execute", errors.New("budget")), "memory_limit"},
		{New(ErrTimeout, "execute", context.DeadlineExceeded), "timeout"},
		{New(ErrCanceled, "execute", context.Canceled), "canceled"},
		{FromPanic("execute", "boom", nil), "internal"},
		{New(errors.New("dynamic"), "execute", errors.New("no doc")), "query_error"},
		{errors.New("mystery"), "internal"},
		{fmt.Errorf("wrapped: %w", RateLimited(time.Second, "x: %w", ErrRateLimited)), "rate_limited"},
	}
	for _, tc := range cases {
		if got := Code(tc.err); got != tc.want {
			t.Errorf("Code(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}
