// Package qerr defines the structured error taxonomy of the query
// lifecycle. Every failure the pipeline can produce is classified into a
// small set of sentinel kinds so that callers can dispatch with
// errors.Is/errors.As across the public API without string matching:
//
//	ErrParse        static error in the query or document text (has position)
//	ErrCompile      static error past parsing (normalize/compile)
//	ErrTimeout      wall-clock cutoff (wraps ErrCutoff)
//	ErrMemoryLimit  cell/byte-budget cutoff (wraps ErrCutoff)
//	ErrCanceled     cooperative context cancellation
//	ErrInternal     engine invariant violation (a recovered panic)
//	ErrLimit        input guard tripped during parsing (wraps ErrParse)
//	ErrOverload     admission control shed the query (retryable; RetryAfter hint)
//	ErrRateLimited  a per-client rate limit rejected the request (retryable;
//	                RetryAfter from the token bucket's refill — distinct from
//	                ErrOverload: over-budget vs. saturated)
//	ErrCorrupt      an on-disk store failed validation (bad magic, version
//	                skew, checksum mismatch, truncation)
//
// The carrier type Error attaches the pipeline phase, a source position
// when one is known, and — for internal errors — the optimized plan dump
// and the recovered panic's stack, so a failing production query can be
// diagnosed from the error value alone.
package qerr

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"
)

// Sentinel kinds. ErrTimeout and ErrMemoryLimit both wrap ErrCutoff (the
// paper's cutoff methodology groups them: the 30 s timeout and the
// memory gaps of Figure 12 are one "did not finish" class); ErrLimit
// wraps ErrParse (a guarded input is a rejected input).
var (
	ErrParse       = errors.New("parse error")
	ErrCompile     = errors.New("compile error")
	ErrCutoff      = errors.New("evaluation cutoff exceeded")
	ErrTimeout     = fmt.Errorf("time limit: %w", ErrCutoff)
	ErrMemoryLimit = fmt.Errorf("memory limit: %w", ErrCutoff)
	ErrCanceled    = errors.New("query canceled")
	ErrInternal    = errors.New("internal error")
	ErrLimit       = fmt.Errorf("input limit: %w", ErrParse)
	// ErrOverload marks load shedding by the admission controller: the
	// query was never executed because the process is saturated (wait
	// queue full, or the queue deadline passed before a slot opened). It
	// is retryable by construction — nothing about the query itself
	// failed — and the carrier Error's RetryAfter field gives a backoff
	// hint (RetryAfterOf reads it from a wrapped chain).
	ErrOverload = errors.New("overloaded")
	// ErrRateLimited marks rejection by a per-client rate limit: this
	// client is sending too fast, regardless of how busy the process is.
	// Deliberately NOT wrapping ErrOverload — both map to HTTP 429, but
	// "you are over your budget" and "the service is saturated" are
	// different facts with different remedies (waiting out Retry-After
	// always fixes the former; the latter depends on everyone else), so
	// errors.Is keeps them distinguishable. Retryable, with the carrier's
	// RetryAfter computed from the token bucket's refill time.
	ErrRateLimited = errors.New("rate limited")
	// ErrCorrupt marks an on-disk document store that failed structural
	// validation when opened, mounted or probed: truncated file, wrong
	// magic, format version skew, a section checksum mismatch, or an I/O
	// fault on a mapped part. Terminal when every replica of the affected
	// part is bad — the bytes on disk are wrong and will stay wrong; the
	// remedy is rebuilding the store. When a healthy replica remains the
	// carrier Error sets Retryable: the store fails over to the replica
	// and re-execution returns byte-identical results (order indifference
	// makes the affected plan regions restartable).
	ErrCorrupt = errors.New("corrupt store")
)

// IsRetryable reports whether err describes a transient condition that a
// caller may reasonably retry unchanged: load shedding (ErrOverload),
// per-client rate limiting (ErrRateLimited), wall-clock cutoffs
// (ErrTimeout), cooperative cancellation (ErrCanceled), and errors whose
// carrier explicitly sets Retryable (corrupt-store faults with a healthy
// replica left). Memory-limit cutoffs, static errors and internal errors
// are not retryable — repeating them reproduces them.
func IsRetryable(err error) bool {
	if errors.Is(err, ErrOverload) || errors.Is(err, ErrRateLimited) ||
		errors.Is(err, ErrTimeout) || errors.Is(err, ErrCanceled) {
		return true
	}
	var qe *Error
	return errors.As(err, &qe) && qe.Retryable
}

// IsRetryableCorrupt reports whether err is a corrupt-store fault whose
// raiser marked it retryable: a replica of the faulting part remains, so
// failing the store over and re-running the query can succeed with
// byte-identical results. The engine's failover retry loop keys on this;
// a terminal ErrCorrupt (all replicas bad) never matches.
func IsRetryableCorrupt(err error) bool {
	if !errors.Is(err, ErrCorrupt) {
		return false
	}
	var qe *Error
	return errors.As(err, &qe) && qe.Retryable
}

// Overload builds an ErrOverload Error with a Retry-After-style backoff
// hint and a formatted message.
func Overload(retryAfter time.Duration, format string, args ...any) *Error {
	return &Error{Kind: ErrOverload, Phase: "admit", RetryAfter: retryAfter, Err: fmt.Errorf(format, args...)}
}

// RateLimited builds an ErrRateLimited Error whose RetryAfter is the
// token bucket's refill time — the accurate wait, not a guess.
func RateLimited(retryAfter time.Duration, format string, args ...any) *Error {
	return &Error{Kind: ErrRateLimited, Phase: "admit", RetryAfter: retryAfter, Err: fmt.Errorf(format, args...)}
}

// RetryAfterOf returns the backoff hint recorded in err's chain and
// whether one was recorded.
func RetryAfterOf(err error) (time.Duration, bool) {
	var qe *Error
	if errors.As(err, &qe) && qe.RetryAfter > 0 {
		return qe.RetryAfter, true
	}
	return 0, false
}

// Error is the taxonomy's carrier: a classified, phase-attributed error.
type Error struct {
	// Kind is one of the package sentinels; errors.Is(e, kind) matches it.
	Kind error
	// Phase names the pipeline stage that failed: "admit", "parse",
	// "normalize", "compile", "optimize", "execute".
	Phase string
	// Line and Col locate parse errors in the source (1-based; zero when
	// unknown).
	Line, Col int
	// Plan carries the Explain() dump of the optimized plan for errors
	// raised during execution, when available.
	Plan string
	// Stack is the goroutine stack of a recovered panic (internal errors).
	Stack []byte
	// RetryAfter is the admission controller's backoff hint on overload
	// errors (zero otherwise) — the Retry-After header value a serving
	// layer would put on a 503.
	RetryAfter time.Duration
	// Retryable marks an error of a normally-terminal kind as transient
	// for this occurrence: a corrupt-store fault (ErrCorrupt) where a
	// healthy replica of the affected part remains mounted. IsRetryable
	// honours it in addition to the always-retryable kinds.
	Retryable bool
	// Err is the underlying cause; its message is the user-facing text.
	Err error
}

// Error returns the cause's message when one is present (constructors
// bake phase/position into it at the raise site), otherwise a generic
// phase-prefixed classification.
func (e *Error) Error() string {
	if e.Err != nil {
		return e.Err.Error()
	}
	if e.Phase != "" {
		return e.Phase + ": " + e.Kind.Error()
	}
	return e.Kind.Error()
}

// Unwrap exposes both the classification sentinel and the cause, so
// errors.Is works against either chain (e.g. ErrTimeout and ErrCutoff and
// context.DeadlineExceeded for one deadline error).
func (e *Error) Unwrap() []error {
	out := make([]error, 0, 2)
	if e.Kind != nil {
		out = append(out, e.Kind)
	}
	if e.Err != nil {
		out = append(out, e.Err)
	}
	return out
}

// New classifies err under kind and phase.
func New(kind error, phase string, err error) *Error {
	return &Error{Kind: kind, Phase: phase, Err: err}
}

// Newf is New over a formatted message.
func Newf(kind error, phase, format string, args ...any) *Error {
	return &Error{Kind: kind, Phase: phase, Err: fmt.Errorf(format, args...)}
}

// At classifies a positioned (parse) error.
func At(kind error, phase string, line, col int, err error) *Error {
	return &Error{Kind: kind, Phase: phase, Line: line, Col: col, Err: err}
}

// Ensure returns err unchanged when it is already classified (an *Error
// anywhere in its chain), and otherwise wraps it under kind and phase.
func Ensure(kind error, phase string, err error) error {
	if err == nil {
		return nil
	}
	var qe *Error
	if errors.As(err, &qe) {
		return err
	}
	return New(kind, phase, err)
}

// FromPanic converts a recovered panic value into an ErrInternal Error
// carrying the phase and stack. A panic whose value is already an error
// is preserved in the chain (errors.Is still sees it).
func FromPanic(phase string, v any, stack []byte) *Error {
	var cause error
	if err, ok := v.(error); ok {
		cause = fmt.Errorf("%s: panic: %w", phase, err)
	} else {
		cause = fmt.Errorf("%s: panic: %v", phase, v)
	}
	return &Error{Kind: ErrInternal, Phase: phase, Stack: stack, Err: cause}
}

// RecoverInto converts an in-flight panic into an ErrInternal Error and
// stores it in *errp. Use directly as a deferred call:
//
//	defer qerr.RecoverInto("execute", &err)
func RecoverInto(phase string, errp *error) {
	if r := recover(); r != nil {
		*errp = FromPanic(phase, r, debug.Stack())
	}
}

// AttachPlan adds a plan dump to the classified error in err's chain, if
// there is one and it does not already carry a plan. It returns err.
func AttachPlan(err error, plan string) error {
	var qe *Error
	if errors.As(err, &qe) && qe.Plan == "" {
		qe.Plan = plan
	}
	return err
}

// PhaseOf returns the pipeline phase recorded in err's chain ("" if
// unclassified).
func PhaseOf(err error) string {
	var qe *Error
	if errors.As(err, &qe) {
		return qe.Phase
	}
	return ""
}

// PositionOf returns the 1-based line/column recorded in err's chain, and
// whether one was recorded.
func PositionOf(err error) (line, col int, ok bool) {
	var qe *Error
	if errors.As(err, &qe) && qe.Line > 0 {
		return qe.Line, qe.Col, true
	}
	return 0, 0, false
}

// Describe renders a one-line diagnostic for err: classification, phase,
// position. For internal errors the plan dump (when attached) follows on
// subsequent lines; the stack is deliberately omitted (log it separately).
func Describe(err error) string {
	var qe *Error
	if !errors.As(err, &qe) {
		return err.Error()
	}
	var b strings.Builder
	b.WriteString(err.Error())
	if qe.Phase != "" {
		fmt.Fprintf(&b, "\n  phase: %s", qe.Phase)
	}
	if qe.Line > 0 {
		fmt.Fprintf(&b, "\n  position: line %d, column %d", qe.Line, qe.Col)
	}
	if qe.RetryAfter > 0 {
		fmt.Fprintf(&b, "\n  retry after: %s", qe.RetryAfter)
	}
	if qe.Plan != "" {
		b.WriteString("\n  plan:\n")
		for _, ln := range strings.Split(strings.TrimRight(qe.Plan, "\n"), "\n") {
			b.WriteString("    ")
			b.WriteString(ln)
			b.WriteString("\n")
		}
	}
	return b.String()
}
