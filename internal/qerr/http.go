package qerr

import (
	"errors"
	"net/http"
)

// StatusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client canceled (or abandoned) the request before the
// query finished, so no standard status fits — the failure is neither
// the server's nor the request's.
const StatusClientClosedRequest = 499

// HTTPStatus maps a classified query error to the HTTP status a serving
// layer should answer with. The mapping lives here, next to the taxonomy,
// so every server (and the exrquy CLI's exit-code table, which mirrors
// it) agrees on one translation:
//
//	nil             200  success
//	ErrLimit        413  input guard tripped (document too large/deep)
//	ErrParse        400  static error in the query text
//	ErrCompile      400  static error past parsing
//	ErrMemoryLimit  413  cell/byte-budget cutoff
//	ErrTimeout      408  wall-clock cutoff
//	ErrCanceled     499  client went away mid-query
//	ErrOverload     429  shed by admission control (send Retry-After)
//	ErrRateLimited  429  per-client rate limit (send Retry-After)
//	ErrCorrupt      500  on-disk store failed validation (server-side state)
//	ErrInternal     500  recovered engine panic
//	other *Error    400  classified dynamic failure (the request's fault)
//	unclassified    500  the engine broke its own contract
//
// ErrLimit is checked before ErrParse (it wraps it), and ErrMemoryLimit/
// ErrTimeout before ErrCutoff. ErrOverload and ErrRateLimited share 429
// but stay distinguishable through the JSON body's machine-readable code
// (Code below) — "you are over budget" vs "the service is saturated".
// A 503 is deliberately absent: the taxonomy never says "the whole
// service is down" — that answer belongs to the serving layer itself
// (e.g. during graceful shutdown).
func HTTPStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, ErrLimit):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrParse), errors.Is(err, ErrCompile):
		return http.StatusBadRequest
	case errors.Is(err, ErrMemoryLimit):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrTimeout):
		return http.StatusRequestTimeout
	case errors.Is(err, ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, ErrOverload), errors.Is(err, ErrRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrCorrupt):
		// Corrupt server-side state, not the request's fault.
		return http.StatusInternalServerError
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError
	}
	var qe *Error
	if errors.As(err, &qe) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// Code maps a classified error to a stable machine-readable token for
// JSON error bodies. Statuses shared by several kinds (429, 413) stay
// distinguishable through it: clients dispatch on the code, humans read
// the message.
func Code(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, ErrOverload):
		return "overloaded"
	case errors.Is(err, ErrLimit):
		return "input_limit"
	case errors.Is(err, ErrParse):
		return "parse_error"
	case errors.Is(err, ErrCompile):
		return "compile_error"
	case errors.Is(err, ErrMemoryLimit):
		return "memory_limit"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrCorrupt):
		return "corrupt_store"
	case errors.Is(err, ErrInternal):
		return "internal"
	}
	var qe *Error
	if errors.As(err, &qe) {
		return "query_error"
	}
	return "internal"
}
