package qerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTaxonomyIs(t *testing.T) {
	// Both cutoff classes group under ErrCutoff; ErrLimit under ErrParse.
	for _, tc := range []struct {
		kind   error
		parent error
	}{
		{ErrTimeout, ErrCutoff},
		{ErrMemoryLimit, ErrCutoff},
		{ErrLimit, ErrParse},
	} {
		err := New(tc.kind, "execute", fmt.Errorf("boom"))
		if !errors.Is(err, tc.kind) {
			t.Errorf("errors.Is(%v, kind) = false", err)
		}
		if !errors.Is(err, tc.parent) {
			t.Errorf("errors.Is(%v, parent %v) = false", err, tc.parent)
		}
	}
}

func TestUnwrapExposesCause(t *testing.T) {
	cause := fmt.Errorf("aborted: %w", context.Canceled)
	err := New(ErrCanceled, "execute", cause)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause chain lost: %v", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("kind chain lost: %v", err)
	}
	if got := err.Error(); got != cause.Error() {
		t.Errorf("Error() = %q, want cause message %q", got, cause.Error())
	}
}

func TestEnsureIdempotent(t *testing.T) {
	inner := At(ErrParse, "parse", 3, 7, fmt.Errorf("xquery: 3:7: bad"))
	wrapped := fmt.Errorf("outer: %w", inner)
	if got := Ensure(ErrCompile, "compile", wrapped); got != wrapped {
		t.Errorf("Ensure reclassified an already-classified error: %v", got)
	}
	plain := fmt.Errorf("plain")
	got := Ensure(ErrCompile, "compile", plain)
	if !errors.Is(got, ErrCompile) || !errors.Is(got, plain) {
		t.Errorf("Ensure(%v) = %v", plain, got)
	}
	if Ensure(ErrCompile, "compile", nil) != nil {
		t.Error("Ensure(nil) != nil")
	}
}

func TestFromPanic(t *testing.T) {
	cause := errors.New("invariant violated")
	err := FromPanic("execute", cause, []byte("stack"))
	if !errors.Is(err, ErrInternal) {
		t.Errorf("panic not classified internal: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("error-valued panic lost from chain: %v", err)
	}
	if err.Phase != "execute" || len(err.Stack) == 0 {
		t.Errorf("phase/stack not carried: %+v", err)
	}
	// Non-error panic values stringify.
	err2 := FromPanic("parse", 42, nil)
	if !strings.Contains(err2.Error(), "42") {
		t.Errorf("panic value lost: %v", err2)
	}
}

func TestRecoverInto(t *testing.T) {
	f := func() (err error) {
		defer RecoverInto("compile", &err)
		panic("kaboom")
	}
	err := f()
	if !errors.Is(err, ErrInternal) || PhaseOf(err) != "compile" {
		t.Errorf("RecoverInto: got %v (phase %q)", err, PhaseOf(err))
	}
}

func TestPositionAndPlan(t *testing.T) {
	err := At(ErrParse, "parse", 2, 9, fmt.Errorf("xquery: 2:9: unexpected"))
	if l, c, ok := PositionOf(err); !ok || l != 2 || c != 9 {
		t.Errorf("PositionOf = %d:%d,%v", l, c, ok)
	}
	if _, _, ok := PositionOf(fmt.Errorf("plain")); ok {
		t.Error("PositionOf(plain) reported a position")
	}

	inner := New(ErrInternal, "execute", fmt.Errorf("boom"))
	wrapped := fmt.Errorf("outer: %w", inner)
	AttachPlan(wrapped, "PLAN")
	if inner.Plan != "PLAN" {
		t.Errorf("AttachPlan missed the carrier: %+v", inner)
	}
	AttachPlan(wrapped, "OTHER")
	if inner.Plan != "PLAN" {
		t.Error("AttachPlan overwrote an existing plan")
	}
	d := Describe(wrapped)
	for _, want := range []string{"phase: execute", "plan:", "PLAN"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestIsRetryable(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{Overload(time.Second, "queue full: %w", ErrOverload), true},
		{Newf(ErrTimeout, "execute", "deadline"), true},
		{Newf(ErrCanceled, "execute", "canceled"), true},
		{Newf(ErrMemoryLimit, "execute", "budget"), false},
		{Newf(ErrParse, "parse", "syntax"), false},
		{Newf(ErrInternal, "execute", "panic"), false},
		{fmt.Errorf("plain"), false},
	}
	for _, c := range cases {
		if got := IsRetryable(c.err); got != c.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	// Wrapping must not hide retryability.
	if !IsRetryable(fmt.Errorf("outer: %w", Overload(0, "shed: %w", ErrOverload))) {
		t.Error("IsRetryable missed a wrapped overload")
	}
}

func TestOverloadCarriesRetryAfter(t *testing.T) {
	err := Overload(250*time.Millisecond, "admission queue full (%d queued): %w", 16, ErrOverload)
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("Overload not classified: %v", err)
	}
	if PhaseOf(err) != "admit" {
		t.Errorf("phase = %q, want admit", PhaseOf(err))
	}
	if ra, ok := RetryAfterOf(fmt.Errorf("outer: %w", err)); !ok || ra != 250*time.Millisecond {
		t.Errorf("RetryAfterOf = (%v, %v), want (250ms, true)", ra, ok)
	}
	if _, ok := RetryAfterOf(Newf(ErrTimeout, "execute", "deadline")); ok {
		t.Error("RetryAfterOf reported a hint on a hintless error")
	}
	if d := Describe(err); !strings.Contains(d, "retry after: 250ms") {
		t.Errorf("Describe missing the retry hint:\n%s", d)
	}
}
