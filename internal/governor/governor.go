// Package governor is the process-wide resource governor every query
// passes through when multi-query governance is enabled: admission
// control in front of the execution pipeline, one shared memory ledger
// behind it, and graceful degradation between the two.
//
// The per-query guards introduced earlier in the repository's history
// (cell budgets, deadlines, cancellation, panic barriers) protect one
// execution from itself; none of them bounds the *aggregate*. N
// concurrent ExecuteContext calls each get their own cell budget and
// their own morsel workers, so heavy concurrent traffic can OOM-kill or
// oversubscribe a process that any single query would leave healthy. The
// governor closes that gap with three mechanisms:
//
//   - Admission control: a fixed number of execution slots with a
//     bounded FIFO wait queue. A query that finds no free slot waits its
//     turn (optionally bounded by a queue deadline); a query that finds
//     the queue full is shed immediately with qerr.ErrOverload — a
//     retryable error carrying a Retry-After-style hint — instead of
//     piling onto a saturated process.
//
//   - Shared memory ledger: all admitted queries draw their intermediate
//     materialization from one global byte budget (xdm.Ledger), each
//     through a per-query account with an optional quota. Exhaustion
//     surfaces as the existing qerr.ErrMemoryLimit, naming the bound and
//     the observed usage — a failed query, never an OOM kill.
//
//   - Graceful degradation: when the process is under pressure (ledger
//     above its high-water mark, or queries waiting in the admission
//     queue) newly admitted queries are downgraded — their Par-marked
//     plan regions run on the serial engine instead of fanning out
//     morsel workers. The paper's own analysis makes this safe: the only
//     regions the parallel executor touches are the order-indifferent
//     ones (# instead of ρ), which by construction produce identical
//     results serial or parallel, so degradation changes resource
//     consumption and nothing else. The downgrade is recorded in the
//     governor metrics and in the run's statistics.
//
// A deterministic, seeded fault-injection harness (FaultPlan) drives the
// same machinery in soak tests: starved quotas, queue-deadline shedding,
// kernel panics (via engine.EvalHook/parallel.MorselHook) and cancel
// storms, asserting that the process degrades instead of dying and that
// the ledger drains back to zero.
package governor

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/resilience"
	"repro/internal/xdm"
)

// queueBeatInterval is how often a queued admission bumps its watchdog
// heartbeat (resilience.WithHeartbeat on the request context): a query
// waiting its turn is waiting, not stuck, and must not look silent.
const queueBeatInterval = 100 * time.Millisecond

// Config tunes a Governor. The zero value is usable: DefaultConfig's
// documented defaults are substituted for zero fields by New.
type Config struct {
	// MaxConcurrent is the number of queries allowed to execute
	// simultaneously (admission slots). <= 0 means 2×GOMAXPROCS — enough
	// to keep every core busy with a mix of serial and degraded queries
	// without goroutine blowup.
	MaxConcurrent int
	// MaxQueue bounds the FIFO admission queue. A query arriving with
	// the queue full is shed with qerr.ErrOverload. <= 0 means
	// 8×MaxConcurrent.
	MaxQueue int
	// QueueTimeout bounds how long one query may wait for admission; a
	// query still queued when it expires is shed with qerr.ErrOverload.
	// Zero means no queue deadline (the query's own context still
	// applies while it waits).
	QueueTimeout time.Duration
	// MaxBytes is the global memory ledger: the byte budget all admitted
	// queries share for intermediate materialization (at
	// xdm.NominalCellBytes per table cell). Zero means unlimited — the
	// ledger still tracks usage for the pressure signal and metrics.
	MaxBytes int64
	// QueryBytes is the per-query quota drawn against the global ledger
	// (zero = bounded only by MaxBytes). Keeping it a fraction of
	// MaxBytes stops one runaway query from starving the fleet.
	QueryBytes int64
	// HighWaterPct is the degradation threshold as a percentage of
	// MaxBytes: once the ledger is fuller than this, newly admitted
	// queries run degraded (serial). <= 0 means 75. Ignored when
	// MaxBytes is zero (queue pressure still degrades).
	HighWaterPct int
	// Faults, when non-nil, injects the plan's deterministic faults into
	// admission and execution. Test-only; leave nil in production.
	Faults *FaultPlan
}

// Stats is a point-in-time snapshot of a governor.
type Stats struct {
	Running     int   // queries currently holding an admission slot
	Queued      int   // queries currently waiting for admission
	BytesInUse  int64 // ledger reservation across all running queries
	MaxBytes    int64 // configured global budget (0 = unlimited)
	Admitted    int64 // cumulative admissions
	QueuedTotal int64 // cumulative queries that had to wait
	Shed        int64 // cumulative overload rejections
	Downgrades  int64 // cumulative degraded admissions
}

// Governor is the process-wide gate. One Governor is typically shared by
// every Engine in the process (that is the point: the budgets are global),
// but nothing stops scoping one per tenant. All methods are safe for
// concurrent use.
type Governor struct {
	cfg       Config
	highWater int64
	ledger    *xdm.Ledger

	mu      sync.Mutex
	running int
	queue   *list.List // of *waiter, FIFO

	// Cumulative per-governor counters (tests and Stats read these; the
	// process-wide obs metrics aggregate across governors).
	admitted    atomic.Int64
	queuedTotal atomic.Int64
	shed        atomic.Int64
	downgrades  atomic.Int64
	admissions  atomic.Int64 // admission attempts, drives FaultPlan decisions
}

// waiter is one queued admission request.
type waiter struct {
	ready   chan struct{} // closed on grant, with granted set first
	granted bool          // guarded by Governor.mu
	elem    *list.Element
}

// New builds a governor, substituting defaults for zero Config fields.
func New(cfg Config) *Governor {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 8 * cfg.MaxConcurrent
	}
	if cfg.HighWaterPct <= 0 {
		cfg.HighWaterPct = 75
	}
	g := &Governor{
		cfg:    cfg,
		ledger: xdm.NewLedger(cfg.MaxBytes),
		queue:  list.New(),
	}
	if cfg.MaxBytes > 0 {
		g.highWater = cfg.MaxBytes * int64(cfg.HighWaterPct) / 100
	}
	return g
}

// Ledger exposes the shared byte ledger (read-mostly: tests and serving
// layers watch Used; reservations go through leases).
func (g *Governor) Ledger() *xdm.Ledger { return g.ledger }

// Stats snapshots the governor.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	running, queued := g.running, g.queue.Len()
	g.mu.Unlock()
	return Stats{
		Running:     running,
		Queued:      queued,
		BytesInUse:  g.ledger.Used(),
		MaxBytes:    g.cfg.MaxBytes,
		Admitted:    g.admitted.Load(),
		QueuedTotal: g.queuedTotal.Load(),
		Shed:        g.shed.Load(),
		Downgrades:  g.downgrades.Load(),
	}
}

// retryHint is the Retry-After-style backoff the governor attaches to
// overload errors: the queue deadline when one is configured (by then a
// slot plausibly opened), otherwise a flat 100ms.
func (g *Governor) retryHint() time.Duration {
	if g.cfg.QueueTimeout > 0 {
		return g.cfg.QueueTimeout
	}
	return 100 * time.Millisecond
}

// underPressureLocked decides degradation for a query admitted now:
// ledger above the high-water mark, or queries waiting behind this one.
// Callers hold g.mu.
func (g *Governor) underPressureLocked() bool {
	if g.highWater > 0 && g.ledger.Used() >= g.highWater {
		return true
	}
	return g.queue.Len() > 0
}

// quotaKey carries a per-admission ledger-quota override in a context.
type quotaKey struct{}

// WithQuota returns a context whose admissions through any Governor draw
// their per-query ledger account with the given byte quota instead of the
// governor's Config.QueryBytes. This is how a serving layer maps
// per-client quotas onto governor accounts without fragmenting prepared
// plans per client: the plan is shared, the quota rides on the request
// context. bytes <= 0 means "no per-query bound" (the shared MaxBytes
// ledger still applies).
func WithQuota(ctx context.Context, bytes int64) context.Context {
	return context.WithValue(ctx, quotaKey{}, bytes)
}

// QuotaFrom reads a WithQuota override from ctx; ok is false when the
// context carries none (the governor's configured default applies).
func QuotaFrom(ctx context.Context) (bytes int64, ok bool) {
	bytes, ok = ctx.Value(quotaKey{}).(int64)
	return bytes, ok
}

// Admit blocks until the query may execute, the context is done, or the
// queue deadline passes. On success it returns a Lease the caller must
// Release when the execution finishes (error paths included). Shed
// queries — queue full, queue deadline, injected queue faults — return
// an error wrapping qerr.ErrOverload with a RetryAfter hint; a context
// expiring while queued returns qerr.ErrCanceled/ErrTimeout like any
// other cooperative abort. A WithQuota context overrides the per-query
// ledger quota for this admission only.
func (g *Governor) Admit(ctx context.Context) (*Lease, error) {
	quota := g.cfg.QueryBytes
	if q, ok := QuotaFrom(ctx); ok {
		quota = q
	}
	fault := g.cfg.Faults.forAdmission(g.admissions.Add(1) - 1)
	if fault == faultShed {
		g.shed.Add(1)
		obs.ShedTotal.Inc()
		obs.FaultsInjected.Inc()
		return nil, qerr.Overload(g.retryHint(),
			"governor: injected queue timeout: %w", qerr.ErrOverload)
	}

	g.mu.Lock()
	// Fast path: free slot and nobody queued ahead (FIFO is strict —
	// arriving queries never overtake waiters).
	if g.running < g.cfg.MaxConcurrent && g.queue.Len() == 0 {
		g.running++
		lease := g.newLeaseLocked(fault, quota, 0)
		g.mu.Unlock()
		return lease, nil
	}
	if g.queue.Len() >= g.cfg.MaxQueue {
		queued, running := g.queue.Len(), g.running
		g.mu.Unlock()
		g.shed.Add(1)
		obs.ShedTotal.Inc()
		return nil, qerr.Overload(g.retryHint(),
			"governor: admission queue full (%d queued, %d running, %d slots): %w",
			queued, running, g.cfg.MaxConcurrent, qerr.ErrOverload)
	}
	w := &waiter{ready: make(chan struct{})}
	w.elem = g.queue.PushBack(w)
	depth := g.queue.Len()
	g.mu.Unlock()
	g.queuedTotal.Add(1)
	obs.QueuedTotal.Inc()
	obs.QueueDepth.Set(int64(depth))

	var deadline <-chan time.Time
	if g.cfg.QueueTimeout > 0 {
		t := time.NewTimer(g.cfg.QueueTimeout)
		defer t.Stop()
		deadline = t.C
	}
	// A watchdog-watched request carries a heartbeat: beat it while
	// queued so admission waits never read as wedged queries.
	var beatTick <-chan time.Time
	beat := resilience.HeartbeatFrom(ctx)
	if beat != nil {
		tick := time.NewTicker(queueBeatInterval)
		defer tick.Stop()
		beatTick = tick.C
	}
	enqueued := time.Now()
	for {
		select {
		case <-w.ready:
			wait := time.Since(enqueued)
			obs.QueueWaitNanos.Observe(wait.Nanoseconds())
			g.mu.Lock()
			lease := g.newLeaseLocked(fault, quota, wait)
			g.mu.Unlock()
			return lease, nil
		case <-ctx.Done():
			if lease := g.abandonWait(w, fault, quota, enqueued); lease != nil {
				// Granted concurrently with cancellation: the slot is ours, but
				// the query is dead. Hand the slot back and report the abort.
				lease.Release()
			}
			cause := ctx.Err()
			kind := qerr.ErrCanceled
			if errors.Is(cause, context.DeadlineExceeded) {
				kind = qerr.ErrTimeout
			}
			return nil, qerr.New(kind, "admit",
				fmt.Errorf("governor: context done while queued for admission: %w", cause))
		case <-deadline:
			if lease := g.abandonWait(w, fault, quota, enqueued); lease != nil {
				lease.Release()
			}
			g.shed.Add(1)
			obs.ShedTotal.Inc()
			return nil, qerr.Overload(g.retryHint(),
				"governor: queue deadline (%s) passed before a slot opened: %w",
				g.cfg.QueueTimeout, qerr.ErrOverload)
		case <-beatTick:
			beat.Add(1)
		}
	}
}

// abandonWait removes w from the queue. If the grant raced ahead of the
// abandonment, the slot already belongs to w; the returned lease (built
// under the same lock) lets the caller hand it back through the ordinary
// release path. Returns nil when w was still queued.
func (g *Governor) abandonWait(w *waiter, fault faultKind, quota int64, enqueued time.Time) *Lease {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted {
		return g.newLeaseLocked(fault, quota, time.Since(enqueued))
	}
	g.queue.Remove(w.elem)
	obs.QueueDepth.Set(int64(g.queue.Len()))
	return nil
}

// newLeaseLocked builds the lease for a query that holds a slot; quota is
// the per-query ledger quota (a WithQuota override or the configured
// default). Callers hold g.mu (the pressure check reads queue depth).
func (g *Governor) newLeaseLocked(fault faultKind, quota int64, wait time.Duration) *Lease {
	degraded := g.underPressureLocked()
	if fault == faultStarveQuota {
		quota = g.cfg.Faults.starvedQuota()
		obs.FaultsInjected.Inc()
	}
	l := &Lease{
		g:         g,
		acct:      g.ledger.NewAccount(quota),
		degraded:  degraded,
		queueWait: wait,
	}
	g.admitted.Add(1)
	obs.AdmittedTotal.Inc()
	obs.ActiveQueries.Set(int64(g.running))
	obs.LedgerBytes.Set(g.ledger.Used())
	if degraded {
		g.downgrades.Add(1)
		obs.DowngradesTotal.Inc()
	}
	return l
}

// Lease is one admitted query's claim on the governor: an execution slot
// plus a ledger account. Release returns both; it is idempotent and must
// run on every exit path (callers defer it immediately after Admit).
type Lease struct {
	g         *Governor
	acct      *xdm.Account
	degraded  bool
	queueWait time.Duration
	released  atomic.Bool
}

// Account returns the query's ledger account (never nil; with no byte
// budget configured the account is unbounded but still tracks usage).
func (l *Lease) Account() *xdm.Account { return l.acct }

// Degraded reports whether the governor downgraded this query: its
// Par-marked plan regions must run on the serial engine.
func (l *Lease) Degraded() bool { return l.degraded }

// QueueWait returns how long the query waited for admission.
func (l *Lease) QueueWait() time.Duration { return l.queueWait }

// Release drains the query's ledger account and hands the admission slot
// to the longest-waiting queued query, if any.
func (l *Lease) Release() {
	if !l.released.CompareAndSwap(false, true) {
		return
	}
	l.acct.Close()
	g := l.g
	g.mu.Lock()
	if e := g.queue.Front(); e != nil {
		// Transfer the slot: running stays constant, the waiter wakes
		// holding it (granted set under the lock closes the race with
		// queue abandonment).
		w := g.queue.Remove(e).(*waiter)
		w.granted = true
		close(w.ready)
	} else {
		g.running--
	}
	running, depth := g.running, g.queue.Len()
	g.mu.Unlock()
	obs.ActiveQueries.Set(int64(running))
	obs.QueueDepth.Set(int64(depth))
	obs.LedgerBytes.Set(g.ledger.Used())
}
