package governor

import (
	"sync/atomic"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// FaultPlan is a deterministic, seeded fault-injection schedule for soak
// testing the governor. Faults fire on fixed residues of monotonic event
// counters, with the residue derived from Seed — so the same seed always
// injects the same fault pattern (which admissions starve, which shed,
// which kernel evaluations panic) regardless of wall-clock timing, and a
// failing soak run can be replayed exactly.
//
// Three fault classes hit the three subsystems under test:
//
//	StarveQuotaEvery  allocation failure: the Nth admission gets a
//	                  QuotaBytes-byte ledger quota, so its first real
//	                  materialization fails with qerr.ErrMemoryLimit.
//	ShedEvery         queue timeout: the Nth admission is shed with
//	                  qerr.ErrOverload as if its queue deadline passed.
//	PanicEvery /      worker panic: the Nth kernel evaluation (serial
//	MorselPanicEvery  EvalHook) or morsel task (parallel MorselHook)
//	                  panics, exercising the recover barriers.
//
// Cancel storms are the test driver's job (ShouldCancel says which
// queries to storm); the plan only decides, it does not own contexts.
//
// Zero fields disable their fault class. The zero FaultPlan injects
// nothing.
type FaultPlan struct {
	// Seed varies which events fault without changing how many.
	Seed int64
	// StarveQuotaEvery > 0 gives every Nth admitted query a QuotaBytes
	// ledger quota instead of the configured one.
	StarveQuotaEvery int
	// QuotaBytes is the starved quota; <= 0 means 4096 — room for a few
	// small operators, never for a real intermediate result.
	QuotaBytes int64
	// ShedEvery > 0 sheds every Nth admission with ErrOverload before it
	// reaches the gate (an injected queue timeout).
	ShedEvery int
	// PanicEvery > 0 panics every Nth serial kernel evaluation while the
	// plan is armed (engine.EvalHook).
	PanicEvery int
	// MorselPanicEvery > 0 panics every Nth parallel morsel task while
	// the plan is armed (parallel.MorselHook).
	MorselPanicEvery int
	// CancelEvery > 0 marks every Nth query for a cancel storm
	// (ShouldCancel); the soak driver cancels those contexts mid-flight.
	CancelEvery int

	evals   atomic.Int64
	morsels atomic.Int64
}

// faultKind is the admission-time fault decision.
type faultKind int

const (
	faultNone faultKind = iota
	faultStarveQuota
	faultShed
)

// hits reports whether event number i (0-based) fires for a 1-in-n fault
// class, at the seed's residue. Nil-safe helpers call with n <= 0 for
// disabled classes.
func (f *FaultPlan) hits(i int64, n int) bool {
	if n <= 0 {
		return false
	}
	residue := f.Seed % int64(n)
	if residue < 0 {
		residue += int64(n)
	}
	return i%int64(n) == residue
}

// forAdmission decides the fault for admission number i. Shed takes
// precedence over starvation when both residues collide. Nil-safe.
func (f *FaultPlan) forAdmission(i int64) faultKind {
	if f == nil {
		return faultNone
	}
	if f.hits(i, f.ShedEvery) {
		return faultShed
	}
	if f.hits(i, f.StarveQuotaEvery) {
		return faultStarveQuota
	}
	return faultNone
}

// starvedQuota returns the byte quota a starved admission receives.
func (f *FaultPlan) starvedQuota() int64 {
	if f.QuotaBytes > 0 {
		return f.QuotaBytes
	}
	return 4096
}

// ShouldCancel reports whether the soak driver should storm query number
// i (0-based) with cancellation. Nil-safe.
func (f *FaultPlan) ShouldCancel(i int) bool {
	if f == nil {
		return false
	}
	return f.hits(int64(i), f.CancelEvery)
}

// InjectedPanic is the value armed hooks panic with; the recover
// barriers convert it to qerr.ErrInternal like any other kernel panic.
const InjectedPanic = "governor: injected fault (FaultPlan)"

// Arm installs the plan's kernel-panic hooks (engine.EvalHook and
// parallel.MorselHook) and returns the disarm function. The hooks are
// process-global test seams — Arm must not race with production queries,
// only with the soak run it belongs to. Event counters keep ticking
// across Arm/disarm cycles, preserving determinism within one plan.
func (f *FaultPlan) Arm() (disarm func()) {
	prevEval, prevMorsel := engine.EvalHook, parallel.MorselHook
	if f.PanicEvery > 0 {
		engine.EvalHook = func(n *algebra.Node) {
			if prevEval != nil {
				prevEval(n)
			}
			if f.hits(f.evals.Add(1)-1, f.PanicEvery) {
				obs.FaultsInjected.Inc()
				panic(InjectedPanic)
			}
		}
	}
	if f.MorselPanicEvery > 0 {
		parallel.MorselHook = func() {
			if prevMorsel != nil {
				prevMorsel()
			}
			if f.hits(f.morsels.Add(1)-1, f.MorselPanicEvery) {
				obs.FaultsInjected.Inc()
				panic(InjectedPanic)
			}
		}
	}
	return func() {
		engine.EvalHook, parallel.MorselHook = prevEval, prevMorsel
	}
}
