package governor

import (
	"context"
	"testing"

	"repro/internal/xdm"
)

// TestWithQuotaOverridesConfig checks that a WithQuota context narrows
// (or widens) the per-query ledger account relative to Config.QueryBytes,
// and that admissions without the override keep the configured default.
func TestWithQuotaOverridesConfig(t *testing.T) {
	g := New(Config{MaxConcurrent: 2, QueryBytes: 1 << 20})

	// Default admission: the configured quota applies.
	dflt, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	defer dflt.Release()
	if err := dflt.Account().Reserve(1 << 20); err != nil {
		t.Fatalf("default quota refused its full budget: %v", err)
	}
	if err := dflt.Account().Reserve(1); err == nil {
		t.Fatal("default quota allowed more than Config.QueryBytes")
	}

	// Overridden admission: the tighter per-client quota wins.
	tight, err := g.Admit(WithQuota(context.Background(), 4*xdm.NominalCellBytes))
	if err != nil {
		t.Fatalf("Admit with quota: %v", err)
	}
	defer tight.Release()
	if err := tight.Account().Reserve(4 * xdm.NominalCellBytes); err != nil {
		t.Fatalf("overridden quota refused its budget: %v", err)
	}
	if err := tight.Account().Reserve(xdm.NominalCellBytes); err == nil {
		t.Fatal("overridden quota allowed more than the WithQuota bytes")
	}
}

func TestQuotaFrom(t *testing.T) {
	if _, ok := QuotaFrom(context.Background()); ok {
		t.Fatal("QuotaFrom reported an override on a bare context")
	}
	q, ok := QuotaFrom(WithQuota(context.Background(), 42))
	if !ok || q != 42 {
		t.Fatalf("QuotaFrom = %d, %v; want 42, true", q, ok)
	}
}
