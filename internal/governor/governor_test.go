package governor

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/qerr"
)

// admitted is a test helper: Admit with a background context, failing the
// test on error.
func admitted(t *testing.T, g *Governor) *Lease {
	t.Helper()
	l, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	return l
}

func TestAdmitFastPath(t *testing.T) {
	g := New(Config{MaxConcurrent: 2})
	l := admitted(t, g)
	defer l.Release()
	if l.Degraded() {
		t.Error("first admission on an idle governor should not degrade")
	}
	if l.QueueWait() != 0 {
		t.Errorf("fast-path admission reports queue wait %v", l.QueueWait())
	}
	st := g.Stats()
	if st.Running != 1 || st.Admitted != 1 || st.QueuedTotal != 0 {
		t.Errorf("stats = %+v, want 1 running, 1 admitted, 0 queued", st)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	g := New(Config{MaxConcurrent: 1})
	l := admitted(t, g)
	l.Release()
	l.Release() // must not double-free the slot
	if st := g.Stats(); st.Running != 0 {
		t.Errorf("running = %d after double release, want 0", st.Running)
	}
	l2 := admitted(t, g)
	defer l2.Release()
	if st := g.Stats(); st.Running != 1 {
		t.Errorf("running = %d, want 1", st.Running)
	}
}

// TestQueueFIFO checks strict admission ordering: with one slot held,
// waiters are granted in arrival order as releases trickle in.
func TestQueueFIFO(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 8})
	first := admitted(t, g)

	const waiters = 5
	order := make(chan int, waiters)
	leases := make(chan *Lease, waiters)
	for i := 0; i < waiters; i++ {
		i := i
		ready := make(chan struct{})
		go func() {
			close(ready)
			l, err := g.Admit(context.Background())
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
			leases <- l
		}()
		<-ready
		// Wait until the goroutine is actually queued before starting the
		// next one, so arrival order is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for g.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	first.Release()
	for i := 0; i < waiters; i++ {
		got := <-order
		if got != i {
			t.Fatalf("admission %d went to waiter %d, want FIFO order", i, got)
		}
		(<-leases).Release()
	}
	if st := g.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Errorf("stats after drain = %+v, want idle", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 1})
	l := admitted(t, g)
	defer l.Release()

	// Fill the one queue slot.
	queued := make(chan error, 1)
	go func() {
		w, err := g.Admit(context.Background())
		if err == nil {
			w.Release()
		}
		queued <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// The next arrival finds the queue full and is shed immediately.
	_, err := g.Admit(context.Background())
	if !errors.Is(err, qerr.ErrOverload) {
		t.Fatalf("queue-full admission: got %v, want ErrOverload", err)
	}
	if !qerr.IsRetryable(err) {
		t.Error("overload error should be retryable")
	}
	if hint, ok := qerr.RetryAfterOf(err); !ok || hint <= 0 {
		t.Errorf("overload error should carry a retry hint, got (%v, %v)", hint, ok)
	}
	if st := g.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}

	l.Release()
	if err := <-queued; err != nil {
		t.Errorf("queued waiter: %v", err)
	}
}

func TestQueueDeadlineSheds(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	l := admitted(t, g)
	defer l.Release()

	start := time.Now()
	_, err := g.Admit(context.Background())
	if !errors.Is(err, qerr.ErrOverload) {
		t.Fatalf("deadline while queued: got %v, want ErrOverload", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Errorf("shed after %v, before the 20ms queue deadline", waited)
	}
	if hint, ok := qerr.RetryAfterOf(err); !ok || hint != 20*time.Millisecond {
		t.Errorf("retry hint = (%v, %v), want the queue deadline", hint, ok)
	}
	// The abandoned waiter must be off the queue: the next release hands
	// the slot to nobody and the governor goes idle.
	l.Release()
	if st := g.Stats(); st.Running != 0 || st.Queued != 0 {
		t.Errorf("stats after deadline shed = %+v, want idle", st)
	}
}

func TestContextWhileQueued(t *testing.T) {
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	l := admitted(t, g)
	defer l.Release()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for g.Stats().Queued != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, qerr.ErrCanceled) {
		t.Errorf("cancel while queued: got %v, want ErrCanceled", err)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer dcancel()
	if _, err := g.Admit(dctx); !errors.Is(err, qerr.ErrTimeout) {
		t.Errorf("context deadline while queued: got %v, want ErrTimeout", err)
	}
}

// TestDegradeThenRecover drives both pressure signals and checks that
// degradation stops as soon as the pressure does.
func TestDegradeThenRecover(t *testing.T) {
	// Queue pressure: with waiters behind it, a granted query degrades;
	// the last waiter out is granted with an empty queue and runs full.
	g := New(Config{MaxConcurrent: 1, MaxQueue: 4})
	first := admitted(t, g)
	if first.Degraded() {
		t.Fatal("idle admission degraded")
	}
	got := make(chan *Lease, 2)
	for i := 0; i < 2; i++ {
		go func() {
			l, err := g.Admit(context.Background())
			if err != nil {
				t.Errorf("waiter: %v", err)
				return
			}
			got <- l
		}()
		deadline := time.Now().Add(5 * time.Second)
		for g.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatal("waiter never queued")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	first.Release()
	w1 := <-got
	if !w1.Degraded() {
		t.Error("admission with a waiter still queued should degrade")
	}
	if w1.QueueWait() <= 0 {
		t.Error("queued admission should report a positive queue wait")
	}
	w1.Release()
	w2 := <-got
	if w2.Degraded() {
		t.Error("admission after the queue drained should not degrade")
	}
	w2.Release()
	if st := g.Stats(); st.Downgrades != 1 {
		t.Errorf("downgrades = %d, want 1", st.Downgrades)
	}

	// Ledger pressure: above the high-water mark, new admissions degrade;
	// once the heavy query releases, they stop.
	g = New(Config{MaxConcurrent: 4, MaxBytes: 1000, HighWaterPct: 50})
	heavy := admitted(t, g)
	if ob := heavy.Account().Reserve(600); ob != nil {
		t.Fatalf("reserve 600/1000: %+v", ob)
	}
	under := admitted(t, g)
	if !under.Degraded() {
		t.Error("admission with the ledger above high water should degrade")
	}
	under.Release()
	heavy.Release() // drains the 600 bytes
	after := admitted(t, g)
	if after.Degraded() {
		t.Error("admission after the ledger drained should not degrade")
	}
	after.Release()
	if used := g.Ledger().Used(); used != 0 {
		t.Errorf("ledger used = %d after all releases, want 0", used)
	}
}

func TestLedgerQuotaAndGlobalExhaustion(t *testing.T) {
	g := New(Config{MaxConcurrent: 4, MaxBytes: 1000, QueryBytes: 300})
	a := admitted(t, g)
	defer a.Release()
	if ob := a.Account().Reserve(400); ob == nil || ob.Scope != "query" {
		t.Errorf("reserve beyond the per-query quota: %+v, want query-scope refusal", ob)
	}
	if ob := a.Account().Reserve(300); ob != nil {
		t.Errorf("reserve within quota refused: %+v", ob)
	}

	b := admitted(t, g)
	defer b.Release()
	c := admitted(t, g)
	defer c.Release()
	if ob := b.Account().Reserve(300); ob != nil {
		t.Errorf("second query within global budget refused: %+v", ob)
	}
	// 600 of 1000 reserved; a third 300-byte quota fits, but the global
	// budget only has 400 left — greater reservations must name the
	// global scope... 300 still fits. Exhaust it.
	if ob := c.Account().Reserve(300); ob != nil {
		t.Errorf("third query within global budget refused: %+v", ob)
	}
	d := admitted(t, g)
	defer d.Release()
	if ob := d.Account().Reserve(200); ob == nil || ob.Scope != "global" {
		t.Errorf("reserve beyond the global budget: %+v, want global-scope refusal", ob)
	}
	b.Release()
	if ob := d.Account().Reserve(200); ob != nil {
		t.Errorf("reserve after a release freed budget: %+v", ob)
	}
}

func TestFaultPlanDeterminism(t *testing.T) {
	mk := func() *FaultPlan {
		return &FaultPlan{Seed: 42, ShedEvery: 5, StarveQuotaEvery: 3, CancelEvery: 7}
	}
	a, b := mk(), mk()
	for i := int64(0); i < 100; i++ {
		if a.forAdmission(i) != b.forAdmission(i) {
			t.Fatalf("admission %d: identical plans disagree", i)
		}
		if a.ShouldCancel(int(i)) != b.ShouldCancel(int(i)) {
			t.Fatalf("cancel %d: identical plans disagree", i)
		}
	}
	// Frequencies: 1-in-5 sheds, and shed takes precedence on collisions.
	var sheds, starves int
	for i := int64(0); i < 105; i++ { // lcm(5,3)=15 | 105, so counts are exact
		switch a.forAdmission(i) {
		case faultShed:
			sheds++
		case faultStarveQuota:
			starves++
		}
	}
	if sheds != 21 {
		t.Errorf("sheds = %d in 105 admissions, want 21", sheds)
	}
	if starves != 35-7 { // 1-in-3 minus the 1-in-15 collisions shed wins
		t.Errorf("starves = %d in 105 admissions, want 28", starves)
	}
	// A different seed shifts which admissions fault, not how many.
	c := &FaultPlan{Seed: 43, ShedEvery: 5, StarveQuotaEvery: 3}
	var shedsC int
	for i := int64(0); i < 105; i++ {
		if c.forAdmission(i) == faultShed {
			shedsC++
		}
	}
	if shedsC != 21 {
		t.Errorf("seed 43: sheds = %d, want 21", shedsC)
	}
}

func TestInjectedAdmissionFaults(t *testing.T) {
	g := New(Config{
		MaxConcurrent: 4,
		MaxBytes:      1 << 20,
		Faults:        &FaultPlan{Seed: 0, ShedEvery: 3, StarveQuotaEvery: 2, QuotaBytes: 64},
	})
	// Seed 0: admissions 0, 3, 6, ... shed; 2 (not 0: shed wins), 4, 8, ...
	// get the starved 64-byte quota.
	if _, err := g.Admit(context.Background()); !errors.Is(err, qerr.ErrOverload) {
		t.Fatalf("admission 0: got %v, want injected ErrOverload", err)
	}
	l1, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("admission 1: %v", err)
	}
	defer l1.Release()
	if q := l1.Account().Quota(); q != 0 {
		t.Errorf("admission 1 quota = %d, want unstarved 0 (unlimited)", q)
	}
	l2, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("admission 2: %v", err)
	}
	defer l2.Release()
	if q := l2.Account().Quota(); q != 64 {
		t.Errorf("admission 2 quota = %d, want starved 64", q)
	}
	if ob := l2.Account().Reserve(128); ob == nil {
		t.Error("starved account should refuse a 128-byte reservation")
	}
}
