package governor_test

// The governor soak: ≥32 concurrent XMark queries hammer one governor
// while a seeded FaultPlan injects every fault class at once — starved
// memory quotas, admission sheds, serial and morsel kernel panics, and
// cancel storms. The process must degrade, never die: every error is a
// classified taxonomy error, every successful result is byte-identical
// to the unfaulted serial baseline, the shared ledger drains back to
// zero, and no goroutines leak.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/qerr"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
	"repro/internal/xmltree"
)

func soakEnv() (*xmltree.Store, map[string][]uint32) {
	f := xmark.Generate(xmark.Config{Factor: 0.002})
	store := xmltree.NewStore()
	return store, map[string][]uint32{"auction.xml": {store.Add(f)}}
}

func TestGovernorSoak(t *testing.T) {
	store, docs := soakEnv()
	queryIDs := []int{1, 8, 11}

	// Unfaulted serial baseline: the byte-identity oracle.
	baseline := make(map[int]string)
	prepared := make(map[int]*core.Prepared)
	for _, id := range queryIDs {
		q := xmarkq.Get(id)
		cfg := core.DefaultConfig()
		p, err := core.Prepare(q.Text, cfg)
		if err != nil {
			t.Fatalf("%s: prepare baseline: %v", q.Name, err)
		}
		res, err := p.Run(store, docs)
		if err != nil {
			t.Fatalf("%s: baseline run: %v", q.Name, err)
		}
		xml, err := xmltree.SerializeItems(res.Store, res.Items)
		if err != nil {
			t.Fatalf("%s: baseline serialize: %v", q.Name, err)
		}
		baseline[id] = xml
	}

	plan := &governor.FaultPlan{
		Seed:             1,
		StarveQuotaEvery: 7,
		QuotaBytes:       4096,
		ShedEvery:        5,
		PanicEvery:       701,
		MorselPanicEvery: 211,
		CancelEvery:      11,
	}
	gov := governor.New(governor.Config{
		MaxConcurrent: 4,
		MaxQueue:      64,
		MaxBytes:      256 << 20,
		Faults:        plan,
	})
	// Governed, parallel-capable plans shared across all clients
	// (concurrent Prepared reuse is part of what soaks).
	for _, id := range queryIDs {
		cfg := core.DefaultConfig()
		cfg.Parallelism = 2
		cfg.Governor = gov
		p, err := core.Prepare(xmarkq.Get(id).Text, cfg)
		if err != nil {
			t.Fatalf("Q%d: prepare governed: %v", id, err)
		}
		prepared[id] = p
	}
	disarm := plan.Arm()
	defer disarm()

	const (
		clients = 32
		rounds  = 4
	)
	goroutinesBefore := runtime.NumGoroutine()

	var (
		mu        sync.Mutex
		successes = map[int]int{}
		faulted   = map[string]int{} // error class -> count
		failures  []string
	)
	classify := func(err error) string {
		switch {
		case errors.Is(err, qerr.ErrOverload):
			return "overload"
		case errors.Is(err, qerr.ErrMemoryLimit):
			return "memory"
		case errors.Is(err, qerr.ErrInternal):
			return "panic"
		case errors.Is(err, qerr.ErrTimeout):
			return "timeout"
		case errors.Is(err, qerr.ErrCanceled):
			return "canceled"
		}
		return ""
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := c*rounds + r
				id := queryIDs[n%len(queryIDs)]
				ctx := context.Background()
				var cancel context.CancelFunc
				if plan.ShouldCancel(n) {
					// Cancel storm: a deadline tight enough to usually fire
					// mid-execution. Queries that finish first are fine —
					// the storm tests the abort path, not a specific victim.
					ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
				}
				res, err := prepared[id].RunContext(ctx, store, docs)
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				if err == nil {
					xml, serr := xmltree.SerializeItems(res.Store, res.Items)
					if serr != nil {
						failures = append(failures, fmt.Sprintf("run %d (Q%d): serialize: %v", n, id, serr))
					} else if xml != baseline[id] {
						failures = append(failures, fmt.Sprintf("run %d (Q%d): result differs from serial baseline", n, id))
					} else {
						successes[id]++
					}
				} else if class := classify(err); class != "" {
					faulted[class]++
				} else {
					failures = append(failures, fmt.Sprintf("run %d (Q%d): unclassified error: %v", n, id, err))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	for _, id := range queryIDs {
		if successes[id] == 0 {
			t.Errorf("Q%d: no faulted-soak run succeeded (cannot check byte identity)", id)
		}
	}
	// The plan injects 1-in-5 admission sheds; with 128 runs some must
	// have fired, and they must have surfaced as overloads.
	if faulted["overload"] == 0 {
		t.Error("no run was shed despite ShedEvery=5")
	}
	// 1-in-7 admissions get a 4 KiB quota no XMark query fits in.
	if faulted["memory"] == 0 {
		t.Error("no run starved despite StarveQuotaEvery=7")
	}
	t.Logf("soak: successes=%v faulted=%v governor=%+v", successes, faulted, gov.Stats())

	// Invariants after the storm: all slots free, queue empty, every byte
	// returned to the ledger, no goroutine left behind.
	st := gov.Stats()
	if st.Running != 0 || st.Queued != 0 {
		t.Errorf("governor not idle after soak: %+v", st)
	}
	if used := gov.Ledger().Used(); used != 0 {
		t.Errorf("ledger holds %d bytes after all leases released, want 0", used)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before soak, %d after", goroutinesBefore, runtime.NumGoroutine())
			break
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGovernorSoakDegradation reruns a smaller storm with one admission
// slot so every admission beyond the first happens with the queue
// non-empty: those runs must be degraded (serial) yet byte-identical.
func TestGovernorSoakDegradation(t *testing.T) {
	store, docs := soakEnv()
	q := xmarkq.Get(1)

	cfg := core.DefaultConfig()
	basep, err := core.Prepare(q.Text, cfg)
	if err != nil {
		t.Fatalf("prepare baseline: %v", err)
	}
	baseRes, err := basep.Run(store, docs)
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	want, err := xmltree.SerializeItems(baseRes.Store, baseRes.Items)
	if err != nil {
		t.Fatalf("baseline serialize: %v", err)
	}

	gov := governor.New(governor.Config{MaxConcurrent: 1, MaxQueue: 32})
	gcfg := core.DefaultConfig()
	gcfg.Parallelism = 2
	gcfg.Governor = gov
	p, err := core.Prepare(q.Text, gcfg)
	if err != nil {
		t.Fatalf("prepare governed: %v", err)
	}

	// Occupy the single slot directly, then queue two clients behind it.
	// Releasing the slot grants the first client while the second still
	// waits — that run must be degraded; the second is granted with an
	// empty queue and must run undegraded. Holding the slot by hand makes
	// the sequence deterministic on any scheduler (on a single-CPU box,
	// sub-millisecond queries never overlap by timing alone).
	blocker, err := gov.Admit(context.Background())
	if err != nil {
		t.Fatalf("blocker admit: %v", err)
	}
	const clients = 2
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := make([]bool, 0, clients) // Degraded flags in completion order
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.RunContext(context.Background(), store, docs)
			if err != nil {
				t.Errorf("governed run: %v", err)
				return
			}
			xml, err := xmltree.SerializeItems(res.Store, res.Items)
			if err != nil {
				t.Errorf("serialize: %v", err)
				return
			}
			if xml != want {
				t.Error("degraded/parallel result differs from serial baseline")
			}
			mu.Lock()
			results = append(results, res.Degraded)
			mu.Unlock()
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for gov.Stats().Queued != clients {
		if time.Now().After(deadline) {
			t.Fatalf("clients never queued: %+v", gov.Stats())
		}
		time.Sleep(100 * time.Microsecond)
	}
	blocker.Release()
	wg.Wait()

	// Grant order is deterministic (FIFO: the waiter granted with the
	// other still queued degrades; the last one runs full), completion
	// order is not — so count rather than index.
	gotDegraded := 0
	for _, d := range results {
		if d {
			gotDegraded++
		}
	}
	if len(results) == clients && gotDegraded != 1 {
		t.Errorf("%d of %d runs degraded, want exactly 1 (pressure subsided for the last)", gotDegraded, clients)
	}
	if st := gov.Stats(); st.Downgrades != 1 {
		t.Errorf("downgrades = %d, want exactly 1 (stats %+v)", st.Downgrades, st)
	}
	if used := gov.Ledger().Used(); used != 0 {
		t.Errorf("ledger holds %d bytes after soak, want 0", used)
	}
}
