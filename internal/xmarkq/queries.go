// Package xmarkq contains the 20 queries of the XMark benchmark (Schmidt
// et al., VLDB 2002) — the workload of the paper's evaluation (§5,
// Figure 12, Table 2) — phrased in the XQuery subset this engine
// supports. Deviations from the canonical text are noted per query.
package xmarkq

// Query is one XMark benchmark query.
type Query struct {
	ID   int
	Name string
	// What the query exercises; condensed from the XMark paper.
	Description string
	Text        string
	// OrderedDeterministic is false for queries whose result order is
	// implementation-dependent even under ordering mode ordered (Q10
	// iterates over fn:distinct-values); differential tests compare such
	// results as bags.
	OrderedDeterministic bool
}

const prolog = `let $auction := doc("auction.xml") return `

// All returns the 20 XMark queries in order.
func All() []Query { return queries }

// Get returns query QN (1-based).
func Get(n int) Query { return queries[n-1] }

var queries = []Query{
	{
		ID: 1, Name: "Q1", OrderedDeterministic: true,
		Description: "Exact match: name of the person with id person0.",
		Text: prolog + `for $b in $auction/site/people/person[@id = "person0"]
return $b/name/text()`,
	},
	{
		ID: 2, Name: "Q2", OrderedDeterministic: true,
		Description: "Ordered access: initial increase of all open auctions.",
		Text: prolog + `for $b in $auction/site/open_auctions/open_auction
return <increase>{ $b/bidder[1]/increase/text() }</increase>`,
	},
	{
		ID: 3, Name: "Q3", OrderedDeterministic: true,
		Description: "Ordered access: auctions whose current increase is at least twice the initial.",
		Text: prolog + `for $b in $auction/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
return <increase first="{ $b/bidder[1]/increase/text() }"
                 last="{ $b/bidder[last()]/increase/text() }"/>`,
	},
	{
		ID: 4, Name: "Q4", OrderedDeterministic: true,
		Description: "Document order: auctions where person20 bid before person51.",
		Text: prolog + `for $b in $auction/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person20"],
      $pr2 in $b/bidder/personref[@person = "person51"]
      satisfies $pr1 << $pr2
return <history>{ $b/initial/text() }</history>`,
	},
	{
		ID: 5, Name: "Q5", OrderedDeterministic: true,
		Description: "Exact match with aggregation: closed auctions above 40.",
		Text: prolog + `count(for $i in $auction/site/closed_auctions/closed_auction
where $i/price/text() >= 40
return $i/price)`,
	},
	{
		ID: 6, Name: "Q6", OrderedDeterministic: true,
		Description: "Regular path expressions: items per region (the paper's Figure 6 query).",
		Text: prolog + `for $b in $auction//site/regions
return count($b//item)`,
	},
	{
		ID: 7, Name: "Q7", OrderedDeterministic: true,
		Description: "Regular path expressions: count pieces of prose.",
		Text: prolog + `for $p in $auction/site
return count($p//description) + count($p//annotation) + count($p//emailaddress)`,
	},
	{
		ID: 8, Name: "Q8", OrderedDeterministic: true,
		Description: "Value join: number of items bought per person.",
		Text: prolog + `for $p in $auction/site/people/person
let $a := for $t in $auction/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{ $p/name/text() }">{ count($a) }</item>`,
	},
	{
		ID: 9, Name: "Q9", OrderedDeterministic: true,
		Description: "Three-way value join: items sold in Europe per buyer.",
		Text: prolog + `let $ca := $auction/site/closed_auctions/closed_auction
let $ei := $auction/site/regions/europe/item
for $p in $auction/site/people/person
let $a := for $t in $ca
          let $n := for $t2 in $ei
                    where $t/itemref/@item = $t2/@id
                    return $t2
          where $p/@id = $t/buyer/@person
          return <item>{ $n/name/text() }</item>
return <person name="{ $p/name/text() }">{ $a }</person>`,
	},
	{
		ID: 10, Name: "Q10",
		Description: "Grouping by interest category (result order follows fn:distinct-values, implementation-dependent).",
		Text: prolog + `for $i in distinct-values($auction/site/people/person/profile/interest/@category)
let $p := for $t in $auction/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
              <statistiques>
                <sexe>{ $t/profile/gender/text() }</sexe>
                <age>{ $t/profile/age/text() }</age>
                <education>{ $t/profile/education/text() }</education>
                <revenu>{ data($t/profile/@income) }</revenu>
              </statistiques>
              <coordonnees>
                <nom>{ $t/name/text() }</nom>
                <rue>{ $t/address/street/text() }</rue>
                <ville>{ $t/address/city/text() }</ville>
                <pays>{ $t/address/country/text() }</pays>
                <reseau>
                  <courrier>{ $t/emailaddress/text() }</courrier>
                  <pagePerso>{ $t/homepage/text() }</pagePerso>
                </reseau>
              </coordonnees>
              <cartePaiement>{ $t/creditcard/text() }</cartePaiement>
            </personne>
return <categorie>{ <id>{ $i }</id>, $p }</categorie>`,
	},
	{
		ID: 11, Name: "Q11", OrderedDeterministic: true,
		Description: "Non-equi value join with construction (the paper's Table 2 query).",
		Text: prolog + `for $p in $auction/site/people/person
let $l := for $i in $auction/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i
          return $i
return <items name="{ $p/name }">{ count($l) }</items>`,
	},
	{
		ID: 12, Name: "Q12", OrderedDeterministic: true,
		Description: "Non-equi join restricted to wealthy sellers.",
		Text: prolog + `for $p in $auction/site/people/person
let $l := for $i in $auction/site/open_auctions/open_auction/initial
          where $p/profile/@income > 5000 * $i
          return $i
where $p/profile/@income > 50000
return <items person="{ data($p/profile/@income) }">{ count($l) }</items>`,
	},
	{
		ID: 13, Name: "Q13", OrderedDeterministic: true,
		Description: "Reconstruction: names and descriptions of Australian items.",
		Text: prolog + `for $i in $auction/site/regions/australia/item
return <item name="{ $i/name/text() }">{ $i/description }</item>`,
	},
	{
		ID: 14, Name: "Q14", OrderedDeterministic: true,
		Description: "Full text: items whose description mentions gold.",
		Text: prolog + `for $i in $auction/site//item
where contains(string(exactly-one($i/description)), "gold")
return $i/name/text()`,
	},
	{
		ID: 15, Name: "Q15", OrderedDeterministic: true,
		Description: "Long path traversal into nested annotation parlists.",
		Text: prolog + `for $a in $auction/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
return <text>{ $a }</text>`,
	},
	{
		ID: 16, Name: "Q16", OrderedDeterministic: true,
		Description: "Long path in a where clause.",
		Text: prolog + `for $a in $auction/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
return <person id="{ $a/seller/@person }"/>`,
	},
	{
		ID: 17, Name: "Q17", OrderedDeterministic: true,
		Description: "Missing elements: persons without a homepage.",
		Text: prolog + `for $p in $auction/site/people/person
where empty($p/homepage/text())
return <person name="{ $p/name/text() }"/>`,
	},
	{
		ID: 18, Name: "Q18", OrderedDeterministic: true,
		Description: "User-defined function application (currency conversion).",
		Text: `declare function local:convert($v as xs:decimal?) as xs:decimal? { 2.20371 * $v };
let $auction := doc("auction.xml") return
for $i in $auction/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve/text()))`,
	},
	{
		ID: 19, Name: "Q19", OrderedDeterministic: true,
		Description: "Sorting by location (order by — case (f) of the paper's context list).",
		Text: prolog + `for $b in $auction/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location) ascending
return <item name="{ $k }">{ $b/location/text() }</item>`,
	},
	{
		ID: 20, Name: "Q20", OrderedDeterministic: true,
		Description: "Aggregation with predicates: income bands.",
		Text: prolog + `<result>
 <preferred>{ count($auction/site/people/person/profile[@income >= 100000]) }</preferred>
 <standard>{ count($auction/site/people/person/profile[@income < 100000 and @income >= 30000]) }</standard>
 <challenge>{ count($auction/site/people/person/profile[@income < 30000]) }</challenge>
 <na>{ count(for $p in $auction/site/people/person
             where empty($p/profile/@income)
             return $p) }</na>
</result>`,
	},
}
