package xmarkq

import (
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/xdm"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

func buildXMarkStore(t testing.TB, factor float64) (*xmltree.Store, map[string][]uint32) {
	t.Helper()
	store := xmltree.NewStore()
	f := xmark.Generate(xmark.Config{Factor: factor})
	id := store.Add(f)
	return store, map[string][]uint32{"auction.xml": {id}}
}

func TestAllQueriesParseAndCompile(t *testing.T) {
	if len(All()) != 20 {
		t.Fatalf("expected 20 queries, got %d", len(All()))
	}
	for _, q := range All() {
		if _, err := xquery.Parse(q.Text); err != nil {
			t.Errorf("%s does not parse: %v", q.Name, err)
			continue
		}
		for name, cfg := range map[string]core.Config{
			"baseline":     core.BaselineConfig(),
			"indifference": core.DefaultConfig(),
		} {
			if _, err := core.Prepare(q.Text, cfg); err != nil {
				t.Errorf("%s does not compile (%s): %v", q.Name, name, err)
			}
		}
	}
}

// TestDifferentialXMark runs every query on a small XMark instance and
// compares the compiled pipeline against the reference interpreter under
// both configurations. This is the end-to-end gate for the benchmark
// workload itself.
func TestDifferentialXMark(t *testing.T) {
	store, docs := buildXMarkStore(t, 0.003)
	ip := interp.New(store, docs)
	for _, q := range All() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			ref, err := ip.EvalString(q.Text)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			want, err := ref.SerializeXML()
			if err != nil {
				t.Fatalf("interp serialize: %v", err)
			}
			for name, cfg := range map[string]core.Config{
				"baseline":     core.BaselineConfig(),
				"indifference": core.DefaultConfig(),
			} {
				p, err := core.Prepare(q.Text, cfg)
				if err != nil {
					t.Fatalf("%s prepare: %v", name, err)
				}
				res, err := p.Run(store, docs)
				if err != nil {
					t.Fatalf("%s run: %v", name, err)
				}
				got, err := res.SerializeXML()
				if err != nil {
					t.Fatalf("%s serialize: %v", name, err)
				}
				if q.OrderedDeterministic {
					if got != want {
						t.Errorf("%s: result mismatch\n got: %.200q\nwant: %.200q", name, got, want)
					}
				} else if !sameBag(t, res.Items, res.Store, ref.Items, ref.Store) {
					t.Errorf("%s: bag mismatch", name)
				}
			}
		})
	}
}

// TestUnorderedXMarkBagEquivalence runs every query under ordering mode
// unordered and checks permutation equivalence of the result items.
func TestUnorderedXMarkBagEquivalence(t *testing.T) {
	store, docs := buildXMarkStore(t, 0.003)
	ip := interp.New(store, docs)
	u := xquery.Unordered
	cfg := core.DefaultConfig()
	cfg.ForceOrdering = &u
	for _, q := range All() {
		q := q
		switch q.ID {
		case 2, 3:
			// Q2/Q3 select bidder[1]/bidder[last()]: under ordering mode
			// unordered, positional predicates pick from an arbitrary
			// order — results legitimately differ from the oracle.
			continue
		}
		t.Run(q.Name, func(t *testing.T) {
			ref, err := ip.EvalString(q.Text)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}
			p, err := core.Prepare(q.Text, cfg)
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			res, err := p.Run(store, docs)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !sameBag(t, res.Items, res.Store, ref.Items, ref.Store) {
				t.Errorf("bag mismatch under unordered mode")
			}
		})
	}
}

func sameBag(t *testing.T, a []xdm.Item, as *xmltree.Store, b []xdm.Item, bs *xmltree.Store) bool {
	t.Helper()
	ser := func(items []xdm.Item, s *xmltree.Store) []string {
		out := make([]string, len(items))
		for i := range items {
			one, err := xmltree.SerializeItems(s, items[i:i+1])
			if err != nil {
				t.Fatalf("serialize: %v", err)
			}
			out[i] = one
		}
		sort.Strings(out)
		return out
	}
	sa, sb := ser(a, as), ser(b, bs)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

// TestQueriesSelectivity sanity-checks that the generated documents make
// the queries meaningful (non-trivial result sizes) at a small factor.
func TestQueriesSelectivity(t *testing.T) {
	store, docs := buildXMarkStore(t, 0.01)
	ip := interp.New(store, docs)
	for _, q := range All() {
		res, err := ip.EvalString(q.Text)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		switch q.ID {
		case 1, 4:
			// Point lookups may legitimately return few or no items.
		default:
			if len(res.Items) == 0 {
				t.Errorf("%s returns nothing at factor 0.01 — workload degenerate", q.Name)
			}
		}
	}
}
