package engine

import (
	"strings"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// testEnv builds a store with one document and a builder.
func testEnv(t *testing.T, doc string) (*xmltree.Store, map[string][]uint32, *algebra.Builder) {
	t.Helper()
	store := xmltree.NewStore()
	docs := map[string][]uint32{}
	if doc != "" {
		f, err := xmltree.ParseString(doc, "d.xml", xmltree.ParseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		docs["d.xml"] = []uint32{store.Add(f)}
	}
	return store, docs, algebra.NewBuilder()
}

func run(t *testing.T, root *algebra.Node, store *xmltree.Store, docs map[string][]uint32) *Table {
	t.Helper()
	ex := NewExec(store, docs, Options{})
	tab, err := ex.Eval(root)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return tab
}

func ints(vals ...int64) []xdm.Item {
	out := make([]xdm.Item, len(vals))
	for i, v := range vals {
		out[i] = xdm.NewInt(v)
	}
	return out
}

func colInts(t *testing.T, tab *Table, col string) []int64 {
	t.Helper()
	c := tab.Col(col)
	out := make([]int64, c.Len())
	for i := range out {
		out[i] = c.Get(i).I
	}
	return out
}

func litTable(b *algebra.Builder, col string, vals ...int64) *algebra.Node {
	rows := make([][]xdm.Item, len(vals))
	for i, v := range vals {
		rows[i] = []xdm.Item{xdm.NewInt(v)}
	}
	return b.Lit([]string{col}, rows...)
}

func TestRowNumSortsAndNumbersPerGroup(t *testing.T) {
	store, docs, b := testEnv(t, "")
	// (iter, val): two groups with shuffled values.
	lit := b.Lit([]string{"iter", "val"},
		ints(2, 30), ints(1, 20), ints(1, 10), ints(2, 5))
	rn := b.RowNum(lit, "rank", []algebra.SortSpec{{Col: "val"}}, "iter")
	tab := run(t, rn, store, docs)
	// Physically sorted by (iter, val) with dense per-group ranks.
	if got := colInts(t, tab, "iter"); got[0] != 1 || got[1] != 1 || got[2] != 2 || got[3] != 2 {
		t.Errorf("iter order: %v", got)
	}
	if got := colInts(t, tab, "val"); got[0] != 10 || got[1] != 20 || got[2] != 5 || got[3] != 30 {
		t.Errorf("val order: %v", got)
	}
	if got := colInts(t, tab, "rank"); got[0] != 1 || got[1] != 2 || got[2] != 1 || got[3] != 2 {
		t.Errorf("ranks: %v", got)
	}
}

func TestRowNumDescendingAndNullPlacement(t *testing.T) {
	store, docs, b := testEnv(t, "")
	lit := b.Lit([]string{"k"},
		[]xdm.Item{xdm.NewInt(1)}, []xdm.Item{xdm.Null}, []xdm.Item{xdm.NewInt(3)})
	// Null (absent order key) sorts below everything by default…
	rn := b.RowNum(lit, "r", []algebra.SortSpec{{Col: "k"}}, "")
	tab := run(t, rn, store, docs)
	if k := tab.Col("k"); k.Get(0).Kind != xdm.KNull || k.Get(1).I != 1 || k.Get(2).I != 3 {
		t.Errorf("empty-least order: %v", k)
	}
	// …and above everything with EmptyGreatest; Desc flips values only.
	rn2 := b.RowNum(lit, "r", []algebra.SortSpec{{Col: "k", Desc: true, EmptyGreatest: true}}, "")
	tab2 := run(t, rn2, store, docs)
	if k := tab2.Col("k"); k.Get(0).Kind != xdm.KNull || k.Get(1).I != 3 || k.Get(2).I != 1 {
		t.Errorf("desc empty-greatest order: %v", k)
	}
}

func TestRowIDStampsWithoutReordering(t *testing.T) {
	store, docs, b := testEnv(t, "")
	lit := litTable(b, "v", 30, 10, 20)
	tab := run(t, b.RowID(lit, "id"), store, docs)
	if got := colInts(t, tab, "v"); got[0] != 30 || got[1] != 10 || got[2] != 20 {
		t.Errorf("rowid must not reorder: %v", got)
	}
	if got := colInts(t, tab, "id"); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("ids: %v", got)
	}
}

func TestJoinDuplicatesAndTypes(t *testing.T) {
	store, docs, b := testEnv(t, "")
	l := b.Lit([]string{"a"}, ints(1), ints(2), ints(2))
	r := b.Lit([]string{"b", "x"}, ints(2, 100), ints(2, 200), ints(3, 300))
	j := b.Join(l, r, "a", "b")
	tab := run(t, j, store, docs)
	if tab.NumRows() != 4 { // 2 l-rows × 2 r-rows
		t.Errorf("join rows: %d", tab.NumRows())
	}
	// Mixed-type keys fall back to generic hashing.
	ls := b.Lit([]string{"a"}, []xdm.Item{xdm.NewString("k")}, ints(7))
	rs := b.Lit([]string{"b"}, []xdm.Item{xdm.NewString("k")})
	tab2 := run(t, b.Join(ls, rs, "a", "b"), store, docs)
	if tab2.NumRows() != 1 {
		t.Errorf("string join rows: %d", tab2.NumRows())
	}
}

func TestSemiDiffDistinct(t *testing.T) {
	store, docs, b := testEnv(t, "")
	l := litTable(b, "k", 1, 2, 3, 2)
	r := litTable(b, "k", 2, 4)
	if got := run(t, b.Semi(l, r, "k"), store, docs); got.NumRows() != 2 {
		t.Errorf("semi rows: %d", got.NumRows())
	}
	if got := run(t, b.Diff(l, r, "k"), store, docs); got.NumRows() != 2 {
		t.Errorf("diff rows: %d", got.NumRows())
	}
	d := run(t, b.Distinct(l, "k"), store, docs)
	if got := colInts(t, d, "k"); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("distinct keeps first occurrences: %v", got)
	}
}

func TestAggregates(t *testing.T) {
	store, docs, b := testEnv(t, "")
	in := b.Lit([]string{"iter", "item"},
		ints(1, 5), ints(1, 7), ints(2, 100))
	cnt := run(t, b.Aggr(in, algebra.AggrCount, "res", "", "iter"), store, docs)
	if got := colInts(t, cnt, "res"); got[0] != 2 || got[1] != 1 {
		t.Errorf("counts: %v", got)
	}
	sum := run(t, b.Aggr(in, algebra.AggrSum, "res", "item", "iter"), store, docs)
	if got := colInts(t, sum, "res"); got[0] != 12 || got[1] != 100 {
		t.Errorf("sums: %v", got)
	}
	mx := run(t, b.Aggr(in, algebra.AggrMax, "res", "item", "iter"), store, docs)
	if got := colInts(t, mx, "res"); got[0] != 7 || got[1] != 100 {
		t.Errorf("max: %v", got)
	}
}

func TestAggrEbvSemantics(t *testing.T) {
	store, docs, b := testEnv(t, "")
	node := xdm.NewNode(xdm.NodeID{Frag: 0, Pre: 0})
	in := b.Lit([]string{"iter", "item"},
		[]xdm.Item{xdm.NewInt(1), xdm.True},
		[]xdm.Item{xdm.NewInt(2), node},
		[]xdm.Item{xdm.NewInt(2), node},
		[]xdm.Item{xdm.NewInt(3), xdm.NewString("")})
	tab := run(t, b.Aggr(in, algebra.AggrEbv, "res", "item", "iter"), store, docs)
	res := tab.Col("res")
	if !res.Get(0).Bool() || !res.Get(1).Bool() || res.Get(2).Bool() {
		t.Errorf("ebv results: %v", res)
	}
	// Multi-item atomic groups are a dynamic error.
	bad := b.Lit([]string{"iter", "item"}, ints(1, 1), ints(1, 2))
	ex := NewExec(store, docs, Options{})
	if _, err := ex.Eval(b.Aggr(bad, algebra.AggrEbv, "res", "item", "iter")); err == nil {
		t.Error("expected EBV error for multi-item atomic group")
	}
}

func TestStepStaircasePruning(t *testing.T) {
	// Nested context nodes: descendants must be emitted once, in document
	// order, despite overlapping subtrees.
	store, docs, b := testEnv(t, `<r><s><s><x/><s><x/></s></s></s><x/></r>`)
	// Context: both s elements at different depths plus the root.
	doc := b.Doc("d.xml")
	ctx0 := b.Cross(b.LitCol("iter", xdm.NewInt(1)), doc)
	sAll := b.Step(ctx0, xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestName, Name: "s"})
	xs := b.Step(sAll, xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestName, Name: "x"})
	tab := run(t, xs, store, docs)
	if tab.NumRows() != 2 {
		t.Fatalf("descendant x from nested s contexts: %d rows, want 2", tab.NumRows())
	}
	items := tab.Col("item")
	if !items.Get(0).N.Before(items.Get(1).N) {
		t.Error("step output not in document order")
	}
}

func TestStepAxes(t *testing.T) {
	store, docs, b := testEnv(t, `<r a="1"><b><c/></b><b/>text</r>`)
	doc := b.Doc("d.xml")
	ctx := b.Cross(b.LitCol("iter", xdm.NewInt(1)), doc)
	r := b.Step(ctx, xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "r"})
	cases := []struct {
		axis xquery.Axis
		test xquery.NodeTest
		want int
	}{
		{xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestName, Name: "b"}, 2},
		{xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestNode}, 3},
		{xquery.AxisChild, xquery.NodeTest{Kind: xquery.TestText}, 1},
		{xquery.AxisAttribute, xquery.NodeTest{Kind: xquery.TestWild}, 1},
		{xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestWild}, 3},
		{xquery.AxisDescendantOrSelf, xquery.NodeTest{Kind: xquery.TestWild}, 4},
		{xquery.AxisSelf, xquery.NodeTest{Kind: xquery.TestName, Name: "r"}, 1},
		{xquery.AxisParent, xquery.NodeTest{Kind: xquery.TestNode}, 1},
	}
	for _, tc := range cases {
		tab := run(t, b.Step(r, tc.axis, tc.test), store, docs)
		if tab.NumRows() != tc.want {
			t.Errorf("%s::%s: %d rows, want %d", tc.axis, tc.test, tab.NumRows(), tc.want)
		}
	}
}

func TestCheckCardViolations(t *testing.T) {
	store, docs, b := testEnv(t, "")
	in := b.Lit([]string{"iter"}, ints(1), ints(1))
	ex := NewExec(store, docs, Options{})
	if _, err := ex.Eval(b.CheckCard(in, nil, "iter", 0, 1, "test")); err == nil {
		t.Error("expected max-cardinality error")
	}
	loop := litTable(b, "iter", 1, 2)
	if _, err := ex.Eval(b.CheckCard(in, loop, "iter", 1, -1, "test")); err == nil {
		t.Error("expected min-cardinality error for missing iteration 2")
	}
	if _, err := ex.Eval(b.CheckCard(in, nil, "iter", 0, -1, "test")); err != nil {
		t.Errorf("unbounded check failed: %v", err)
	}
}

func TestTimeoutCutoff(t *testing.T) {
	store, docs, b := testEnv(t, "")
	// Build a long chain of operators to guarantee at least one deadline check fires.
	n := litTable(b, "v", 1, 2, 3)
	for i := 0; i < 64; i++ {
		n = b.RowID(n, "c"+string(rune('A'+i%26))+string(rune('0'+i/26)))
	}
	_, err := Run(b.Keep(n, "v"), store, docs, Options{Timeout: time.Nanosecond})
	if err == nil || !strings.Contains(err.Error(), "cutoff") {
		t.Errorf("expected cutoff error, got %v", err)
	}
}

func TestUnknownDocument(t *testing.T) {
	store, docs, b := testEnv(t, "")
	d := b.Doc("missing.xml")
	ex := NewExec(store, docs, Options{})
	if _, err := ex.Eval(d); err == nil {
		t.Error("expected unknown-document error")
	}
}

func TestMemoizationSharedNodesEvaluateOnce(t *testing.T) {
	store, docs, b := testEnv(t, `<r><x/><x/></r>`)
	doc := b.Doc("d.xml")
	ctx := b.Cross(b.LitCol("iter", xdm.NewInt(1)), doc)
	step := b.Step(ctx, xquery.AxisDescendant, xquery.NodeTest{Kind: xquery.TestName, Name: "x"})
	// Two consumers of the same step node.
	u := b.Union(b.Keep(step, "iter", "item"), b.Keep(step, "iter", "item"))
	ex := NewExec(store, docs, Options{})
	if _, err := ex.Eval(u); err != nil {
		t.Fatal(err)
	}
	for origin, e := range ex.prof {
		if strings.Contains(origin, "step") && e.Ops != 1 {
			t.Errorf("shared step evaluated %d times", e.Ops)
		}
	}
}
