package engine

import (
	"sort"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// evalStep implements the XPath step operator ⤋ax::nt with a staircase
// join over the pre/size/level encoding (Grust/van Keulen/Teubner, VLDB
// 2003): within each iteration group the context set is sorted by preorder
// rank and pruned (contexts covered by an earlier context's subtree are
// skipped), then each surviving context's region is scanned once. The
// output is duplicate-free per iteration and in document order — but the
// plan never relies on that: sequence order is (re-)established by ρ, or
// deliberately left arbitrary by #.
func (ex *exec) evalStep(n *algebra.Node, in *Table) (*Table, error) {
	iters := in.Col("iter")
	items := in.Col("item")

	// Group context nodes by iteration (first-occurrence group order) and
	// by fragment within each group.
	type group struct {
		iter    xdm.Item
		byFrag  map[uint32][]int32
		fragIDs []uint32
	}
	groups := make(map[int64]*group)
	var order []int64
	for r := range iters {
		if !items[r].IsNode() {
			return nil, ex.errf(n, "path step over atomic value %s", items[r].Kind)
		}
		k := iterKey(iters[r])
		g, ok := groups[k]
		if !ok {
			g = &group{iter: iters[r], byFrag: make(map[uint32][]int32)}
			groups[k] = g
			order = append(order, k)
		}
		id := items[r].N
		if _, seen := g.byFrag[id.Frag]; !seen {
			g.fragIDs = append(g.fragIDs, id.Frag)
		}
		g.byFrag[id.Frag] = append(g.byFrag[id.Frag], id.Pre)
	}

	var outIter, outItem []xdm.Item
	for _, k := range order {
		g := groups[k]
		// Fragments in ascending id order = global document order.
		sort.Slice(g.fragIDs, func(a, b int) bool { return g.fragIDs[a] < g.fragIDs[b] })
		for _, fid := range g.fragIDs {
			f := ex.store.Frag(fid)
			ctx := dedupSorted(g.byFrag[fid])
			res := axisScan(f, ctx, n.Axis, n.Test)
			for _, pre := range res {
				outIter = append(outIter, g.iter)
				outItem = append(outItem, xdm.NewNode(xdm.NodeID{Frag: fid, Pre: pre}))
			}
		}
	}
	t := NewTable([]string{"iter", "item"})
	t.Data[0] = outIter
	t.Data[1] = outItem
	return t, nil
}

// dedupSorted sorts preorder ranks ascending and removes duplicates.
func dedupSorted(pres []int32) []int32 {
	sort.Slice(pres, func(a, b int) bool { return pres[a] < pres[b] })
	out := pres[:0]
	var last int32 = -1
	for _, p := range pres {
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

// axisScan evaluates one axis over a sorted, duplicate-free context set in
// one fragment, returning matching preorder ranks in document order.
func axisScan(f *xmltree.Fragment, ctx []int32, axis xquery.Axis, test xquery.NodeTest) []int32 {
	var out []int32
	switch axis {
	case xquery.AxisDescendant, xquery.AxisDescendantOrSelf:
		// Staircase: skip contexts subsumed by the previous scan region.
		scanned := int32(-1)
		for _, v := range ctx {
			if v <= scanned {
				continue // covered by an earlier context's subtree
			}
			start := v + 1
			if axis == xquery.AxisDescendantOrSelf {
				start = v
			}
			end := v + f.Size[v]
			for c := start; c <= end; c++ {
				// Attributes are not on the descendant axis, but a context
				// node is on its own descendant-or-self axis even if it is
				// an attribute.
				if (c == v || f.Kind[c] != xmltree.KindAttr) && testMatch(f, c, axis, test) {
					out = append(out, c)
				}
			}
			scanned = end
		}
	case xquery.AxisChild:
		sorted := true
		last := int32(-1)
		for _, v := range ctx {
			end := v + f.Size[v]
			lvl := f.Level[v] + 1
			for c := v + 1; c <= end; c += f.Size[c] + 1 {
				if f.Kind[c] == xmltree.KindAttr {
					continue
				}
				if f.Level[c] == lvl && testMatch(f, c, axis, test) {
					if c < last {
						sorted = false
					}
					last = c
					out = append(out, c)
				}
			}
		}
		if !sorted {
			out = dedupSorted(out) // children of distinct contexts are disjoint; sort restores doc order
		}
	case xquery.AxisAttribute:
		for _, v := range ctx {
			end := v + f.Size[v]
			for c := v + 1; c <= end && f.Kind[c] == xmltree.KindAttr && f.Level[c] == f.Level[v]+1; c++ {
				if testMatch(f, c, axis, test) {
					out = append(out, c)
				}
			}
		}
	case xquery.AxisSelf:
		for _, v := range ctx {
			if testMatch(f, v, axis, test) {
				out = append(out, v)
			}
		}
	case xquery.AxisParent:
		for _, v := range ctx {
			if p := f.Parent[v]; p >= 0 && testMatch(f, p, axis, test) {
				out = append(out, p)
			}
		}
		out = dedupSorted(out)
	}
	return out
}

// testMatch applies a node test; the principal node kind is attribute on
// the attribute axis and element elsewhere.
func testMatch(f *xmltree.Fragment, pre int32, axis xquery.Axis, test xquery.NodeTest) bool {
	kind := f.Kind[pre]
	switch test.Kind {
	case xquery.TestNode:
		return true
	case xquery.TestText:
		return kind == xmltree.KindText
	case xquery.TestWild:
		if axis == xquery.AxisAttribute {
			return kind == xmltree.KindAttr
		}
		return kind == xmltree.KindElem
	default:
		if axis == xquery.AxisAttribute {
			return kind == xmltree.KindAttr && f.Name[pre] == test.Name
		}
		return kind == xmltree.KindElem && f.Name[pre] == test.Name
	}
}
