package engine

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// StepGroup is the per-iteration work of one step evaluation: the
// iteration id and, per fragment, the sorted duplicate-free context set.
// Groups appear in first-occurrence order of their iteration and FragIDs
// in ascending (global document) order, so concatenating per-group scan
// results reproduces the serial operator output exactly.
type StepGroup struct {
	Iter    int64
	FragIDs []uint32
	ByFrag  map[uint32][]int32
}

// CollectStepGroups groups step context nodes by iteration (and fragment
// within each iteration), sorting and deduplicating each context set. It
// is the preparation phase of evalStep, shared with the parallel executor.
func CollectStepGroups(in *Table) ([]StepGroup, error) {
	itc := in.Col("iter")
	itemCol := in.Col("item")
	rows := in.NumRows()
	// A flat node column needs no per-row kind checks; the boxed fallback
	// reports the first non-node cell like the old per-row loop did.
	nodes, flat := itemCol.Nodes()
	var boxed []xdm.Item
	if !flat {
		if its, ok := itemCol.RawItems(); ok {
			boxed = its
			for r := range boxed {
				if !boxed[r].IsNode() {
					return nil, fmt.Errorf("path step over atomic value %s", boxed[r].Kind)
				}
			}
		} else if rows > 0 {
			return nil, fmt.Errorf("path step over atomic value %s", itemCol.Get(0).Kind)
		}
	}
	iters := iterInts(itc)
	idx := make(map[int64]int)
	var groups []StepGroup
	for r := 0; r < rows; r++ {
		k := iters[r]
		gi, ok := idx[k]
		if !ok {
			gi = len(groups)
			idx[k] = gi
			groups = append(groups, StepGroup{Iter: k, ByFrag: make(map[uint32][]int32)})
		}
		g := &groups[gi]
		var id xdm.NodeID
		if flat {
			id = nodes[r]
		} else {
			id = boxed[r].N
		}
		if _, seen := g.ByFrag[id.Frag]; !seen {
			g.FragIDs = append(g.FragIDs, id.Frag)
		}
		g.ByFrag[id.Frag] = append(g.ByFrag[id.Frag], id.Pre)
	}
	for gi := range groups {
		g := &groups[gi]
		sort.Slice(g.FragIDs, func(a, b int) bool { return g.FragIDs[a] < g.FragIDs[b] })
		for fid, ctx := range g.ByFrag {
			g.ByFrag[fid] = DedupSorted(ctx)
		}
	}
	return groups, nil
}

// evalStep implements the XPath step operator ⤋ax::nt with a staircase
// join over the pre/size/level encoding (Grust/van Keulen/Teubner, VLDB
// 2003): within each iteration group the context set is sorted by preorder
// rank and pruned (contexts covered by an earlier context's subtree are
// skipped), then each surviving context's region is scanned once. The
// output is duplicate-free per iteration and in document order — but the
// plan never relies on that: sequence order is (re-)established by ρ, or
// deliberately left arbitrary by #. Both output columns are flat (iter
// ids and node refs), so the inner loops never box an Item.
func (ex *Exec) evalStep(n *algebra.Node, in *Table) (*Table, error) {
	groups, err := CollectStepGroups(in)
	if err != nil {
		return nil, ex.errf(n, "%v", err)
	}
	var outIter []int64
	var outItem []xdm.NodeID
	for gi, g := range groups {
		if gi&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		for _, fid := range g.FragIDs {
			f := ex.store.Frag(fid)
			res := AxisScan(f, g.ByFrag[fid], n.Axis, n.Test)
			for _, pre := range res {
				outIter = append(outIter, g.Iter)
				outItem = append(outItem, xdm.NodeID{Frag: fid, Pre: pre})
			}
		}
	}
	t := NewTable([]string{"iter", "item"})
	t.Data[0] = xdm.IntColumn(outIter)
	t.Data[1] = xdm.NodeColumn(outItem)
	return t, nil
}

// DedupSorted sorts preorder ranks ascending and removes duplicates,
// reusing the input slice's backing array.
func DedupSorted(pres []int32) []int32 {
	sort.Slice(pres, func(a, b int) bool { return pres[a] < pres[b] })
	out := pres[:0]
	var last int32 = -1
	for _, p := range pres {
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

// ScanRegion is one pruned scan interval of a descendant(-or-self) axis
// evaluation: the preorder range [Start, End] dominated by context Ctx.
// Regions of one context set are disjoint and ascending, so they may be
// scanned independently (and subdivided) without changing the result.
type ScanRegion struct {
	Ctx        int32
	Start, End int32
}

// StaircaseRegions prunes a sorted duplicate-free context set for the
// descendant or descendant-or-self axis, returning the disjoint scan
// regions the staircase join walks.
func StaircaseRegions(f *xmltree.Fragment, ctx []int32, axis xquery.Axis) []ScanRegion {
	var out []ScanRegion
	scanned := int32(-1)
	for _, v := range ctx {
		if v <= scanned {
			continue // covered by an earlier context's subtree
		}
		start := v + 1
		if axis == xquery.AxisDescendantOrSelf {
			start = v
		}
		end := v + f.Size[v]
		if start <= end {
			out = append(out, ScanRegion{Ctx: v, Start: start, End: end})
		}
		scanned = end
	}
	return out
}

// ScanRegionRange scans the preorder subrange [lo, hi] of a descendant
// region rooted at ctx, appending matching ranks to a fresh slice.
// Subdividing a region into consecutive subranges and concatenating the
// outputs yields exactly the full-region scan.
func ScanRegionRange(f *xmltree.Fragment, ctx, lo, hi int32, test xquery.NodeTest) []int32 {
	var out []int32
	for c := lo; c <= hi; c++ {
		// Attributes are not on the descendant axis, but a context node is
		// on its own descendant-or-self axis even if it is an attribute.
		if (c == ctx || f.Kind[c] != xmltree.KindAttr) && TestMatch(f, c, xquery.AxisDescendant, test) {
			out = append(out, c)
		}
	}
	return out
}

// AxisScan evaluates one axis over a sorted, duplicate-free context set in
// one fragment, returning matching preorder ranks in document order.
func AxisScan(f *xmltree.Fragment, ctx []int32, axis xquery.Axis, test xquery.NodeTest) []int32 {
	var out []int32
	switch axis {
	case xquery.AxisDescendant, xquery.AxisDescendantOrSelf:
		// Staircase: skip contexts subsumed by the previous scan region.
		for _, reg := range StaircaseRegions(f, ctx, axis) {
			out = append(out, ScanRegionRange(f, reg.Ctx, reg.Start, reg.End, test)...)
		}
	case xquery.AxisChild:
		sorted := true
		last := int32(-1)
		for _, v := range ctx {
			end := v + f.Size[v]
			lvl := f.Level[v] + 1
			for c := v + 1; c <= end; c += f.Size[c] + 1 {
				if f.Kind[c] == xmltree.KindAttr {
					continue
				}
				if f.Level[c] == lvl && TestMatch(f, c, axis, test) {
					if c < last {
						sorted = false
					}
					last = c
					out = append(out, c)
				}
			}
		}
		if !sorted {
			out = DedupSorted(out) // children of distinct contexts are disjoint; sort restores doc order
		}
	case xquery.AxisAttribute:
		for _, v := range ctx {
			end := v + f.Size[v]
			for c := v + 1; c <= end && f.Kind[c] == xmltree.KindAttr && f.Level[c] == f.Level[v]+1; c++ {
				if TestMatch(f, c, axis, test) {
					out = append(out, c)
				}
			}
		}
	case xquery.AxisSelf:
		for _, v := range ctx {
			if TestMatch(f, v, axis, test) {
				out = append(out, v)
			}
		}
	case xquery.AxisParent:
		for _, v := range ctx {
			if p := f.Parent[v]; p >= 0 && TestMatch(f, p, axis, test) {
				out = append(out, p)
			}
		}
		out = DedupSorted(out)
	}
	return out
}

// TestMatch applies a node test; the principal node kind is attribute on
// the attribute axis and element elsewhere.
func TestMatch(f *xmltree.Fragment, pre int32, axis xquery.Axis, test xquery.NodeTest) bool {
	kind := f.Kind[pre]
	switch test.Kind {
	case xquery.TestNode:
		return true
	case xquery.TestText:
		return kind == xmltree.KindText
	case xquery.TestWild:
		if axis == xquery.AxisAttribute {
			return kind == xmltree.KindAttr
		}
		return kind == xmltree.KindElem
	default:
		if axis == xquery.AxisAttribute {
			return kind == xmltree.KindAttr && f.Name[pre] == test.Name
		}
		return kind == xmltree.KindElem && f.Name[pre] == test.Name
	}
}
