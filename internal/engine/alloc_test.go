package engine

import (
	"testing"

	"repro/internal/xdm"
)

// Allocation regression bounds for the typed column kernels. The bounds
// are deliberately loose (2-4x the measured counts) so they only trip on
// a regression back to per-row boxing, not on incidental churn; run with
// -run TestAlloc -v to see the measured values.

// TestAllocJoinProbeIntKeys pins the int64-keyed hash join probe: with
// reused perm buffers the probe loop itself must not allocate per row.
func TestAllocJoinProbeIntKeys(t *testing.T) {
	const rows = 4096
	keys := make([]int64, rows)
	for i := range keys {
		keys[i] = int64(i % 97)
	}
	rk := xdm.IntColumn(append([]int64(nil), keys...))
	lk := xdm.IntColumn(append([]int64(nil), keys...))
	ix := BuildJoinIndex(rk)
	var lp, rp []int32
	lp, rp = ix.Probe(lk, 0, rows, nil, nil) // size the buffers once
	avg := testing.AllocsPerRun(20, func() {
		lp, rp = ix.Probe(lk, 0, rows, lp[:0], rp[:0])
	})
	if avg > 1 {
		t.Errorf("int-key probe allocates %.1f times per probe of %d rows, want <= 1", avg, rows)
	}
	if len(lp) != len(rp) || len(lp) == 0 {
		t.Fatalf("probe produced %d/%d pairs", len(lp), len(rp))
	}
}

// TestAllocRowIDStamp pins the # stamp: one pooled integer buffer and a
// constant handful of wrapper allocations, independent of row count.
func TestAllocRowIDStamp(t *testing.T) {
	const rows = 8192
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(rows - i)
	}
	tab := NewTable([]string{"v"})
	tab.Data[0] = xdm.IntColumn(vals)
	avg := testing.AllocsPerRun(20, func() {
		out := tab.withColumn("id", xdm.IntColumn(stampInts(rows)))
		xdm.RecycleColumn(out.Col("id")) // return the buffer: steady-state pooling
	})
	// Pool hit: the int buffer is recycled, leaving only the Column
	// wrapper and the table's slice/index copies.
	if avg > 12 {
		t.Errorf("# stamp allocates %.1f times for %d rows, want <= 12 (row-independent)", avg, rows)
	}
}

// stampInts is the OpRowID kernel body, isolated for the bound.
func stampInts(rows int) []int64 {
	num := xdm.GetInts(rows)
	for i := range num {
		num[i] = int64(i + 1)
	}
	return num
}
