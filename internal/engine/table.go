// Package engine evaluates algebra plan DAGs over in-memory columnar
// tables. It plays the role MonetDB plays for Pathfinder: an inherently
// unordered, column-oriented runtime in which
//
//   - ρ (rownum) really is a blocking sort (the table is physically
//     reordered and densely renumbered per group), while
//   - # (rowid) is a single column stamp — "negligible cost or even for
//     free" in the paper's words.
//
// Shared DAG nodes are evaluated exactly once (memoization), mirroring
// common subexpression reuse in MonetDB BAT programs. Every operator
// evaluation is timed and attributed to the operator's origin label,
// which is how the Table 2 profile is reproduced.
package engine

import (
	"fmt"

	"repro/internal/xdm"
)

// Table is a column-major relation: Data[c][r] is row r of column c.
// Tables are immutable after construction; projections alias columns.
type Table struct {
	Cols []string
	Data [][]xdm.Item
	idx  map[string]int
}

// NewTable builds a table over the given column names with empty data.
func NewTable(cols []string) *Table {
	t := &Table{Cols: cols, Data: make([][]xdm.Item, len(cols))}
	t.buildIndex()
	return t
}

func (t *Table) buildIndex() {
	t.idx = make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		t.idx[c] = i
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Data) == 0 {
		return 0
	}
	return len(t.Data[0])
}

// Col returns the column slice by name; it panics on unknown columns
// (schema errors are compiler bugs, caught by the algebra layer).
func (t *Table) Col(name string) []xdm.Item {
	i, ok := t.idx[name]
	if !ok {
		panic(fmt.Sprintf("engine: unknown column %q in %v", name, t.Cols))
	}
	return t.Data[i]
}

// HasCol reports whether the table has the named column.
func (t *Table) HasCol(name string) bool {
	_, ok := t.idx[name]
	return ok
}

// permute returns a new table with rows reordered by perm.
func (t *Table) permute(perm []int) *Table {
	out := NewTable(t.Cols)
	for c := range t.Data {
		col := make([]xdm.Item, len(perm))
		for i, p := range perm {
			col[i] = t.Data[c][p]
		}
		out.Data[c] = col
	}
	return out
}

// filter returns a new table with only the rows at the given indices.
func (t *Table) filter(keep []int) *Table { return t.permute(keep) }

// withColumn returns a table extended by one column (aliasing existing
// column data).
func (t *Table) withColumn(name string, data []xdm.Item) *Table {
	out := &Table{
		Cols: append(append([]string{}, t.Cols...), name),
		Data: append(append([][]xdm.Item{}, t.Data...), data),
	}
	out.buildIndex()
	return out
}

// WithColumn returns a table extended by one column (aliasing existing
// column data) — the exported variant used by the parallel executor.
func (t *Table) WithColumn(name string, data []xdm.Item) *Table { return t.withColumn(name, data) }

// Filter returns a new table with only the rows at the given indices.
func (t *Table) Filter(keep []int) *Table { return t.filter(keep) }

// IterKey converts an iteration id item to its int64 representation;
// iteration, position and numbering columns are always integers.
func IterKey(it xdm.Item) int64 { return iterKey(it) }

// iterKey converts an iteration id item to its int64 representation;
// iteration, position and numbering columns are always integers.
func iterKey(it xdm.Item) int64 {
	if it.Kind != xdm.KInteger {
		panic(fmt.Sprintf("engine: non-integer key item %v", it.Kind))
	}
	return it.I
}

// rowKey builds a composite grouping key over several columns for one row.
func rowKey(cols [][]xdm.Item, r int) string {
	key := ""
	for _, c := range cols {
		key += xdm.DistinctKey(c[r]) + "\x00"
	}
	return key
}
