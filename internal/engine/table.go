// Package engine evaluates algebra plan DAGs over in-memory columnar
// tables. It plays the role MonetDB plays for Pathfinder: an inherently
// unordered, column-oriented runtime in which
//
//   - ρ (rownum) really is a blocking sort (the table is physically
//     reordered and densely renumbered per group), while
//   - # (rowid) is a single column stamp — "negligible cost or even for
//     free" in the paper's words.
//
// Shared DAG nodes are evaluated exactly once (memoization), mirroring
// common subexpression reuse in MonetDB BAT programs. Every operator
// evaluation is timed and attributed to the operator's origin label,
// which is how the Table 2 profile is reproduced.
//
// Columns are xdm.Column values: homogeneous columns (the common case —
// iter/pos/numbering columns are always integers, step outputs are always
// nodes) are flat typed slices, mixed columns fall back to boxed []Item
// cells. Tables only ever share column storage through the *Column
// pointer, never by rewrapping a buffer, which is what lets the engine
// recycle dead intermediates' buffers (see Exec.EnableRecycling).
package engine

import (
	"fmt"

	"repro/internal/xdm"
)

// Table is a column-major relation: Data[c] holds column c, row-aligned
// across columns. Tables are immutable after construction; projections
// alias *Column pointers.
type Table struct {
	Cols []string
	Data []*xdm.Column
	idx  map[string]int
}

// smallTableCols bounds the linear-scan path of Col: tables at or below
// this width never build the name index (plan tables are almost always
// 1-4 columns, so the per-operator map allocation was pure overhead).
const smallTableCols = 8

// NewTable builds a table over the given column names with empty data.
// The name index is built lazily on the first wide-table Col call; name
// resolution happens on the coordinator goroutine only, so the lazy
// build is unsynchronized by design (see BuildIndex for shared tables).
func NewTable(cols []string) *Table {
	return &Table{Cols: cols, Data: make([]*xdm.Column, len(cols))}
}

// NewTableFromCols builds a table over already-materialized columns,
// row-aligned with names. Used by the bytecode VM, whose opcodes resolve
// columns positionally at compile time and never need the name index.
func NewTableFromCols(cols []string, data []*xdm.Column) *Table {
	return &Table{Cols: cols, Data: data}
}

func (t *Table) buildIndex() {
	idx := make(map[string]int, len(t.Cols))
	for i, c := range t.Cols {
		idx[c] = i
	}
	t.idx = idx
}

// BuildIndex eagerly builds the column-name index. Tables reachable from
// several goroutines at once (the prebuilt literal tables a compiled
// program shares across concurrent executions) must call this once at
// construction, since the lazy build inside Col is unsynchronized.
func (t *Table) BuildIndex() { t.buildIndex() }

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Data) == 0 || t.Data[0] == nil {
		return 0
	}
	return t.Data[0].Len()
}

// Col returns the column by name; it panics on unknown columns (schema
// errors are compiler bugs, caught by the algebra layer). Narrow tables
// resolve by linear scan; wide ones build the name index on first use.
func (t *Table) Col(name string) *xdm.Column {
	if t.idx == nil {
		if len(t.Cols) <= smallTableCols {
			for i, c := range t.Cols {
				if c == name {
					return t.Data[i]
				}
			}
			panic(fmt.Sprintf("engine: unknown column %q in %v", name, t.Cols))
		}
		t.buildIndex()
	}
	i, ok := t.idx[name]
	if !ok {
		panic(fmt.Sprintf("engine: unknown column %q in %v", name, t.Cols))
	}
	return t.Data[i]
}

// HasCol reports whether the table has the named column.
func (t *Table) HasCol(name string) bool {
	for _, c := range t.Cols {
		if c == name {
			return true
		}
	}
	return false
}

// permute returns a new table with rows reordered by perm.
func (t *Table) permute(perm []int32) *Table {
	out := NewTable(t.Cols)
	for c := range t.Data {
		out.Data[c] = t.Data[c].Gather(perm)
	}
	return out
}

// filter returns a new table with only the rows at the given indices.
func (t *Table) filter(keep []int32) *Table { return t.permute(keep) }

// withColumn returns a table extended by one column (aliasing existing
// columns).
func (t *Table) withColumn(name string, col *xdm.Column) *Table {
	return &Table{
		Cols: append(append([]string{}, t.Cols...), name),
		Data: append(append([]*xdm.Column{}, t.Data...), col),
	}
}

// WithColumn returns a table extended by one column (aliasing existing
// columns) — the exported variant used by the parallel executor.
func (t *Table) WithColumn(name string, col *xdm.Column) *Table { return t.withColumn(name, col) }

// Filter returns a new table with only the rows at the given indices.
func (t *Table) Filter(keep []int32) *Table { return t.filter(keep) }

// IterKey converts an iteration id item to its int64 representation;
// iteration, position and numbering columns are always integers.
func IterKey(it xdm.Item) int64 { return iterKey(it) }

// iterKey converts an iteration id item to its int64 representation;
// iteration, position and numbering columns are always integers.
func iterKey(it xdm.Item) int64 {
	if it.Kind != xdm.KInteger {
		panic(fmt.Sprintf("engine: non-integer key item %v", it.Kind))
	}
	return it.I
}

// iterInts returns a column's cells as raw int64 iteration/position keys.
// For a flat integer column this is the backing slice itself (read-only
// for the caller); the boxed fallback validates and materializes. A
// non-integer column panics exactly like iterKey on its first cell, and —
// also like the old per-item path — an empty column never panics.
func iterInts(c *xdm.Column) []int64 {
	if v, ok := c.Ints(); ok {
		return v
	}
	if items, ok := c.RawItems(); ok {
		out := make([]int64, len(items))
		for i, it := range items {
			out[i] = iterKey(it)
		}
		return out
	}
	if c.Len() == 0 {
		return nil
	}
	iterKey(c.Get(0)) // panics with the standard non-integer key message
	panic("unreachable")
}

// rowKey builds a composite grouping key over several columns for one row
// (the boxed fallback for distinct/semijoin when typed word keys do not
// apply).
func rowKey(cols []*xdm.Column, r int) string {
	key := ""
	for _, c := range cols {
		key += xdm.DistinctKey(c.Get(r)) + "\x00"
	}
	return key
}
