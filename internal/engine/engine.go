package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/obs"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// Options configures an execution.
type Options struct {
	// Context, when non-nil, cancels evaluation cooperatively: workers and
	// the serial evaluator poll ctx.Done() at the deadline/cell-budget
	// check sites and inside the heavy operator loops, so cancellation
	// aborts a running query promptly. The resulting error wraps
	// qerr.ErrCanceled (or qerr.ErrTimeout for a context deadline) and
	// the context's own cause, so errors.Is(err, context.Canceled) holds.
	Context context.Context
	// Timeout aborts evaluation (checked between operators); zero means
	// no limit. The paper's experiments used a 30 s cutoff.
	Timeout time.Duration
	// MaxCells bounds the total number of table cells materialized during
	// one execution (a memory cutoff for intermediate-result blowups);
	// zero means no limit.
	MaxCells int64
	// Memory, when non-nil, charges materialized cells (at
	// xdm.NominalCellBytes each) against a process-wide byte ledger
	// account — the multi-query governor's shared budget. A failed
	// reservation aborts the execution with qerr.ErrMemoryLimit naming
	// the exhausted bound (global ledger or per-query quota), its limit
	// and the observed usage. The account's lifetime is the caller's:
	// the engine only reserves, it never closes.
	Memory *xdm.Account
	// InterestingOrders enables the physical-layer sortedness check on ρ
	// (§6's [15] reference): when a ρ input already arrives in the
	// required order (e.g. straight from a staircase join), the sort is
	// skipped. Off by default — the paper's engine pays its sorts, and
	// the reproduction should too; enable it to measure how much of the
	// paper's win a physically order-aware engine would recover anyway.
	InterestingOrders bool
	// Collect, when non-nil, receives per-plan-node execution statistics
	// (rows in/out, cells, wall time, memo hits) — the data behind
	// EXPLAIN ANALYZE. A nil collector costs one pointer comparison per
	// operator and zero allocations: the default path stays exactly the
	// measured hot path.
	Collect *obs.Collector
	// Tracer, when non-nil, receives one span per operator kernel
	// evaluation (category "op", track 0). Pipeline-phase spans are the
	// caller's job (package core).
	Tracer obs.Tracer
	// Heartbeat, when non-nil, is bumped at every cooperative poll point
	// (CheckCancel and everything routed through it) — the liveness
	// signal a serving-layer watchdog (internal/resilience) uses to tell
	// a slow query from a wedged one. One atomic add per poll; nil costs
	// a single pointer comparison.
	Heartbeat *atomic.Int64
	// StoreProbe, when non-nil, is polled at every cooperative poll
	// point alongside the heartbeat. It surfaces storage faults —
	// suspect mmap'd parts, failed lazy CRC verification — into the
	// execution as classified errors, because a corrupt mapped page
	// cannot signal failure through the read that touches it. A non-nil
	// error aborts the query exactly like a cancellation; nil costs one
	// pointer comparison per poll.
	StoreProbe func() error
}

// ErrCutoff is returned (wrapped) when an execution exceeds its time or
// memory cutoff. It aliases qerr.ErrCutoff: both qerr.ErrTimeout and
// qerr.ErrMemoryLimit wrap it, so errors.Is(err, ErrCutoff) keeps
// matching either cutoff class as it always has.
var ErrCutoff = qerr.ErrCutoff

// EvalHook, when non-nil, runs before every operator kernel evaluation
// (EvalOp), on the serial engine and on the parallel coordinator alike.
// It exists for fault injection in tests (panicking kernels, artificial
// latency) and must not be set while queries are running.
var EvalHook func(n *algebra.Node)

// ProfileEntry aggregates evaluation time by operator origin; the set of
// origins reproduces the sub-expression rows of Table 2. Under parallel
// execution Duration sums the per-worker (CPU) time spent on the origin,
// so profiles keep accounting for the work performed, not the wall clock.
type ProfileEntry struct {
	Origin   string
	Duration time.Duration
	Ops      int
	Rows     int // rows produced by operators with this origin
}

// Result is an executed query: the item sequence in serialization order,
// the store owning constructed nodes, and the per-origin profile. Stats
// is non-nil only when Options.Collect was set.
type Result struct {
	Items   []xdm.Item
	Store   *xmltree.Store
	Profile []ProfileEntry
	Elapsed time.Duration
	Stats   *obs.RunStats
	// Degraded reports that the resource governor downgraded this
	// execution under pressure (a Par-marked plan ran serial). Set by
	// package core after the run; always false without a governor.
	Degraded bool
	// QueueWait is the time the query spent in the governor's admission
	// queue before executing (zero without a governor, or when a slot
	// was free immediately).
	QueueWait time.Duration
}

// SerializeXML renders the result per the XQuery serialization rules.
func (r *Result) SerializeXML() (string, error) {
	return xmltree.SerializeItems(r.Store, r.Items)
}

// Run evaluates the plan DAG rooted at root. docs maps fn:doc() URIs to
// fragment ids in base — one id for an ordinary document, several for a
// sharded corpus (internal/store), whose parts fn:doc() returns as one
// root sequence in part order; constructed fragments go to a derived
// store. Run never panics: engine invariant violations tripped at
// runtime are recovered and surface as qerr.ErrInternal.
func Run(root *algebra.Node, base *xmltree.Store, docs map[string][]uint32, opts Options) (res *Result, err error) {
	defer qerr.RecoverInto("execute", &err)
	defer func() {
		obs.QueriesTotal.Inc()
		if err != nil {
			obs.QueryErrorsTotal.Inc()
		}
	}()
	ex := NewExec(base, docs, opts)
	ex.EnableRecycling(root)
	start := time.Now()
	t, err := ex.Eval(root)
	if err != nil {
		return nil, err
	}
	res = ex.Finish(t, start)
	obs.QueryNanos.Observe(res.Elapsed.Nanoseconds())
	return res, nil
}

// Exec is one plan execution: the derived store receiving constructed
// fragments, the operator memo table, the per-origin profile, and the
// shared time/memory budget. The budget counters are atomic so that a
// parallel executor (package parallel) can charge them cooperatively from
// several workers; the memo and profile maps are only touched from the
// single goroutine that walks the DAG.
type Exec struct {
	store     *xmltree.Store
	docs      map[string][]uint32
	memo      map[*algebra.Node]*Table
	prof      map[string]*ProfileEntry
	ctx       context.Context
	done      <-chan struct{}
	deadline  time.Time
	maxCells  int64
	cells     atomic.Int64
	mem       *xdm.Account
	intOrders bool
	// Buffer recycling (EnableRecycling): uses counts the not-yet-evaluated
	// consumers of each DAG node, colRefs counts the memoized tables each
	// column appears in. When a node's last consumer finishes, its table's
	// columns drop a reference; a column at zero references provably has no
	// surviving alias and its backing buffer returns to the xdm pool.
	uses    map[*algebra.Node]int
	colRefs map[*xdm.Column]int
	// Observability (see internal/obs): collect is the per-run operator
	// statistics sink (nil = off, and every call site guards on nil so
	// the disabled path allocates nothing), tracer the span sink.
	collect *obs.Collector
	tracer  obs.Tracer
	// beat is the watchdog heartbeat (Options.Heartbeat); nil when no one
	// is watching. Bumped in CheckCancel, shared with parallel workers.
	beat *atomic.Int64
	// storeProbe surfaces storage faults at poll points
	// (Options.StoreProbe); nil when no store is mounted.
	storeProbe func() error
}

// NewExec prepares an execution over a derived store.
func NewExec(base *xmltree.Store, docs map[string][]uint32, opts Options) *Exec {
	ex := &Exec{
		store:      base.Derive(),
		docs:       docs,
		prof:       make(map[string]*ProfileEntry),
		ctx:        opts.Context,
		maxCells:   opts.MaxCells,
		mem:        opts.Memory,
		intOrders:  opts.InterestingOrders,
		collect:    opts.Collect,
		tracer:     opts.Tracer,
		beat:       opts.Heartbeat,
		storeProbe: opts.StoreProbe,
	}
	if ex.collect != nil {
		ex.collect.SetPoolBaseline(xdm.PoolStats())
	}
	if ex.ctx != nil {
		ex.done = ex.ctx.Done()
	}
	if opts.Timeout > 0 {
		ex.deadline = time.Now().Add(opts.Timeout)
	}
	return ex
}

// Store returns the execution's derived store.
func (ex *Exec) Store() *xmltree.Store { return ex.store }

// EnableRecycling turns on column-buffer recycling for an execution that
// will evaluate exactly the DAG under root, once. It counts each node's
// consumers so Eval can release a memoized intermediate the moment its
// last consumer has run. It must not be used on an Exec whose Eval is
// called for multiple roots (tests do this): a table released under one
// root may be a live memo hit under the next.
func (ex *Exec) EnableRecycling(root *algebra.Node) {
	ex.uses = make(map[*algebra.Node]int)
	ex.colRefs = make(map[*xdm.Column]int)
	seen := make(map[*algebra.Node]bool)
	var visit func(n *algebra.Node)
	visit = func(n *algebra.Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Ins {
			ex.uses[in]++
			visit(in)
		}
	}
	visit(root)
	ex.uses[root]++ // Finish reads the root table after the walk
}

// ReleaseInputs records that n's evaluation has consumed its inputs,
// releasing any input table whose last consumer n was. Must be called
// after Memoize(n, ...): an output that aliases input columns has then
// already taken its own references. No-op unless recycling is enabled.
func (ex *Exec) ReleaseInputs(n *algebra.Node) {
	if ex.uses == nil {
		return
	}
	for _, in := range n.Ins {
		c, ok := ex.uses[in]
		if !ok {
			continue
		}
		if c--; c > 0 {
			ex.uses[in] = c
			continue
		}
		delete(ex.uses, in)
		t, ok := ex.memo[in]
		if !ok {
			continue
		}
		// Deleting the memo entry makes any reference-count bug fail safe:
		// an unexpected later consumer re-evaluates instead of reading a
		// recycled buffer.
		delete(ex.memo, in)
		for _, col := range t.Data {
			r := ex.colRefs[col] - 1
			if r > 0 {
				ex.colRefs[col] = r
				continue
			}
			delete(ex.colRefs, col)
			if r == 0 {
				xdm.RecycleColumn(col)
			}
		}
	}
}

// CheckCancel reports a cancellation error once the execution's context
// is done. Safe for concurrent use (the done channel is immutable); a
// single select on a cached channel, cheap enough for per-chunk polling
// inside operator kernels. Reaching any poll point is also the query's
// proof of life: the watchdog heartbeat, when armed, is bumped here —
// before the done check, so heartbeats flow even for executions with no
// cancellable context.
func (ex *Exec) CheckCancel() error {
	if ex.beat != nil {
		ex.beat.Add(1)
	}
	if ex.storeProbe != nil {
		if err := ex.storeProbe(); err != nil {
			return err
		}
	}
	if ex.done == nil {
		return nil
	}
	select {
	case <-ex.done:
		// context.Cause preserves the canceller's reason (e.g. the
		// watchdog's ErrStuck) where ctx.Err flattens it to Canceled.
		cause := context.Cause(ex.ctx)
		if cause == nil {
			cause = ex.ctx.Err()
		}
		kind := qerr.ErrCanceled
		if errors.Is(cause, context.DeadlineExceeded) {
			kind = qerr.ErrTimeout
		}
		return qerr.New(kind, "execute", fmt.Errorf("engine: query aborted: %w", cause))
	default:
		return nil
	}
}

// CheckDeadline reports a cutoff error once the execution's deadline has
// passed or its context is canceled. Safe for concurrent use (deadline
// and done channel are immutable).
func (ex *Exec) CheckDeadline() error {
	if err := ex.CheckCancel(); err != nil {
		return err
	}
	if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
		return qerr.New(qerr.ErrTimeout, "execute", fmt.Errorf("engine: time limit: %w", ErrCutoff))
	}
	return nil
}

// memoryLimitErr classifies a cell-budget overrun, naming the configured
// limit and the observed usage.
func (ex *Exec) memoryLimitErr(observed int64) error {
	return qerr.New(qerr.ErrMemoryLimit, "execute",
		fmt.Errorf("engine: memory limit: %d cells materialized, budget %d cells: %w",
			observed, ex.maxCells, ErrCutoff))
}

// ledgerLimitErr classifies a failed byte-ledger reservation, naming the
// exhausted bound (the governor's global ledger or this query's quota),
// its byte limit and the observed usage.
func (ex *Exec) ledgerLimitErr(ob *xdm.OverBudget) error {
	scope := "global memory budget"
	if ob.Scope == "query" {
		scope = "per-query memory quota"
	}
	return qerr.New(qerr.ErrMemoryLimit, "execute",
		fmt.Errorf("engine: memory limit: %s exhausted: %d bytes needed, %d of %d bytes in use: %w",
			scope, ob.Need, ob.Used, ob.Limit, ErrCutoff))
}

// CheckCells verifies a prospective allocation of rows*cols cells against
// the memory cutoff before materializing it (large joins and products
// would otherwise overshoot the budget in a single operator). It also
// polls for cancellation, so the budget-check sites double as the
// cooperative cancellation points.
func (ex *Exec) CheckCells(rows, cols int) error {
	if err := ex.CheckCancel(); err != nil {
		return err
	}
	cells := int64(rows) * int64(cols)
	if ex.maxCells > 0 && ex.cells.Load()+cells > ex.maxCells {
		return ex.memoryLimitErr(ex.cells.Load() + cells)
	}
	if ex.mem != nil {
		if ob := ex.mem.CanReserve(cells * xdm.NominalCellBytes); ob != nil {
			return ex.ledgerLimitErr(ob)
		}
	}
	return nil
}

// ChargeCells adds n materialized cells to the shared budget — the
// per-execution cell cutoff and, when a governor account is attached, the
// process-wide byte ledger — and reports a cutoff error on overrun. Safe
// for concurrent use. Like CheckCells it polls for cancellation first.
func (ex *Exec) ChargeCells(n int64) error {
	obs.CellsTotal.Add(n)
	if err := ex.CheckCancel(); err != nil {
		return err
	}
	if ex.maxCells > 0 {
		if used := ex.cells.Add(n); used > ex.maxCells {
			return ex.memoryLimitErr(used)
		}
	}
	if ex.mem != nil {
		if ob := ex.mem.Reserve(n * xdm.NominalCellBytes); ob != nil {
			return ex.ledgerLimitErr(ob)
		}
	}
	return nil
}

// checkCells is the internal pre-check used by join and cross.
func (ex *Exec) checkCells(rows, cols int) error { return ex.CheckCells(rows, cols) }

// Finish assembles the Result from the root table: order by pos rank for
// serialization and flatten the profile.
func (ex *Exec) Finish(t *Table, start time.Time) *Result {
	res := &Result{Store: ex.store, Elapsed: time.Since(start)}
	// The root carries (pos, item): order by pos rank for serialization.
	n := t.NumRows()
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	pos := iterInts(t.Col("pos"))
	sort.SliceStable(perm, func(a, b int) bool { return pos[perm[a]] < pos[perm[b]] })
	items := t.Col("item")
	res.Items = make([]xdm.Item, n)
	for i, p := range perm {
		res.Items[i] = items.Get(int(p))
	}
	for _, e := range ex.prof {
		res.Profile = append(res.Profile, *e)
	}
	sort.Slice(res.Profile, func(a, b int) bool { return res.Profile[a].Duration > res.Profile[b].Duration })
	if ex.collect != nil {
		hits, misses := xdm.PoolStats()
		res.Stats = ex.collect.Finish(res.Elapsed, hits, misses)
	}
	return res
}

// Errf formats an operator-attributed evaluation error the way the
// serial engine does, so parallel and serial runs report identically.
func (ex *Exec) Errf(n *algebra.Node, format string, args ...any) error {
	return ex.errf(n, format, args...)
}

func (ex *Exec) errf(n *algebra.Node, format string, args ...any) error {
	origin := n.Origin
	if origin == "" {
		origin = n.Kind.String()
	}
	return fmt.Errorf("engine: %s: %s", origin, fmt.Sprintf(format, args...))
}

// Eval evaluates the DAG rooted at n serially, memoizing shared nodes.
func (ex *Exec) Eval(n *algebra.Node) (*Table, error) {
	if t, ok := ex.memo[n]; ok {
		ex.CollectMemoHit(n)
		return t, nil
	}
	if err := ex.CheckDeadline(); err != nil {
		return nil, err
	}
	ins := make([]*Table, len(n.Ins))
	for i, in := range n.Ins {
		t, err := ex.Eval(in)
		if err != nil {
			return nil, err
		}
		ins[i] = t
	}
	start := time.Now()
	endSpan := ex.StartOpSpan(n)
	t, err := ex.EvalOp(n, ins)
	if endSpan != nil {
		endSpan()
	}
	if err != nil {
		return nil, err
	}
	d := time.Since(start)
	ex.Record(n, d, t.NumRows())
	ex.CollectOp(n, d, ins, t)
	if err := ex.ChargeCells(int64(t.NumRows()) * int64(len(t.Cols))); err != nil {
		return nil, err
	}
	ex.Memoize(n, t)
	ex.ReleaseInputs(n)
	return t, nil
}

// Collector returns the execution's statistics sink (nil when collection
// is off); the parallel executor records morsel splits through it.
func (ex *Exec) Collector() *obs.Collector { return ex.collect }

// Tracer returns the execution's span sink (nil when tracing is off).
func (ex *Exec) Tracer() obs.Tracer { return ex.tracer }

// StartOpSpan opens a tracer span for one kernel evaluation of n; the
// returned func (nil when tracing is off) closes it.
func (ex *Exec) StartOpSpan(n *algebra.Node) func() {
	if ex.tracer == nil {
		return nil
	}
	return ex.tracer.StartSpan(0, "op", algebra.Label(n))
}

// CollectMemoHit records a memoized reuse of n. No-op unless collection
// is on.
func (ex *Exec) CollectMemoHit(n *algebra.Node) {
	if ex.collect == nil {
		return
	}
	ex.collect.MemoHit(n.ID)
	obs.MemoHitsTotal.Inc()
}

// CollectOp records one kernel evaluation of n: d of wall time, the input
// row counts, and the output table's rows and cells. No-op (and
// allocation-free) unless collection is on — the label rendering below is
// the only per-operator allocation the observability layer ever makes,
// and it happens strictly behind the nil check.
func (ex *Exec) CollectOp(n *algebra.Node, d time.Duration, ins []*Table, t *Table) {
	if ex.collect == nil {
		return
	}
	var rowsIn int64
	for _, in := range ins {
		rowsIn += int64(in.NumRows())
	}
	rows := int64(t.NumRows())
	ex.collect.OpDone(n.ID, n.Kind.String(), algebra.Label(n), n.Origin, n.Par,
		d, rowsIn, rows, rows*int64(len(t.Cols)))
}

// Memoize stores an evaluated table for a node, so shared DAG nodes are
// evaluated exactly once. Under recycling it also references the table's
// columns, keeping aliased buffers alive until every holding table dies.
// The memo map is built lazily: the bytecode VM (internal/vm) drives an
// Exec without ever memoizing — its compiler turned the DAG sharing into
// register reuse — so it never pays for the map.
func (ex *Exec) Memoize(n *algebra.Node, t *Table) {
	if ex.memo == nil {
		ex.memo = make(map[*algebra.Node]*Table)
	}
	ex.memo[n] = t
	if ex.colRefs != nil {
		for _, c := range t.Data {
			ex.colRefs[c]++
		}
	}
}

// Memoized returns a previously memoized table for n, if any.
func (ex *Exec) Memoized(n *algebra.Node) (*Table, bool) {
	t, ok := ex.memo[n]
	return t, ok
}

// Record attributes d of evaluation time and rows produced rows to the
// node's origin. Not safe for concurrent use; parallel executors must
// aggregate per-worker durations first and record once.
func (ex *Exec) Record(n *algebra.Node, d time.Duration, rows int) {
	origin := n.Origin
	if origin == "" {
		origin = "(" + n.Kind.String() + ")"
	}
	e := ex.prof[origin]
	if e == nil {
		e = &ProfileEntry{Origin: origin}
		ex.prof[origin] = e
	}
	e.Duration += d
	e.Ops++
	e.Rows += rows
}

// EvalOp evaluates a single operator over already-evaluated inputs.
func (ex *Exec) EvalOp(n *algebra.Node, ins []*Table) (*Table, error) {
	if EvalHook != nil {
		EvalHook(n)
	}
	switch n.Kind {
	case algebra.OpLit:
		t := NewTable(n.Cols)
		for c := range n.Cols {
			var b xdm.ColumnBuilder
			for _, row := range n.Rows {
				b.Append(row[c])
			}
			t.Data[c] = b.Finish()
		}
		return t, nil

	case algebra.OpProject:
		in := ins[0]
		t := NewTable(n.Schema())
		for i, p := range n.Proj {
			t.Data[i] = in.Col(p.Old)
		}
		return t, nil

	case algebra.OpSelect:
		return ex.evalSelect(n, ins[0])

	case algebra.OpJoin:
		return ex.evalJoin(n, ins[0], ins[1])

	case algebra.OpCross:
		return ex.evalCross(n, ins[0], ins[1])

	case algebra.OpRowNum:
		return ex.evalRowNum(n, ins[0])

	case algebra.OpRowID:
		// The # stamp: one flat integer buffer, no sort, no boxing — the
		// near-free half of the paper's ρ/# asymmetry.
		in := ins[0]
		num := xdm.GetInts(in.NumRows())
		for i := range num {
			num[i] = int64(i + 1)
		}
		return in.withColumn(n.Col, xdm.IntColumn(num)), nil

	case algebra.OpBinOp:
		return ex.evalBinOp(n, ins[0])

	case algebra.OpMap1:
		return ex.evalMap1(n, ins[0])

	case algebra.OpUnion:
		l, r := ins[0], ins[1]
		t := NewTable(l.Cols)
		for c, name := range l.Cols {
			var b xdm.ColumnBuilder
			b.AppendColumn(l.Col(name))
			b.AppendColumn(r.Col(name))
			t.Data[c] = b.Finish()
		}
		return t, nil

	case algebra.OpSemi, algebra.OpDiff:
		return ex.evalSemiDiff(n, ins[0], ins[1])

	case algebra.OpDistinct:
		return ex.evalDistinct(n, ins[0])

	case algebra.OpAggr:
		return ex.evalAggr(n, ins[0])

	case algebra.OpStep:
		return ex.evalStep(n, ins[0])

	case algebra.OpDoc:
		ids, ok := ex.docs[n.URI]
		if !ok {
			return nil, ex.errf(n, "unknown document %q", n.URI)
		}
		// One row per registered root, in registration (shard part)
		// order: downstream steps preserve this order, so a sharded
		// corpus evaluates part-wise yet serializes identically to the
		// unsharded document set.
		roots := make([]xdm.NodeID, len(ids))
		for i, id := range ids {
			roots[i] = xdm.NodeID{Frag: id, Pre: 0}
		}
		t := NewTable([]string{"item"})
		t.Data[0] = xdm.NodeColumn(roots)
		return t, nil

	case algebra.OpElem:
		return ex.evalElem(n, ins[0], ins[1])

	case algebra.OpAttr:
		return ex.evalAttr(n, ins[0])

	case algebra.OpRange:
		return ex.evalRange(n, ins[0])

	case algebra.OpCheckCard:
		return ex.evalCheckCard(n, ins)

	default:
		return nil, ex.errf(n, "unimplemented operator")
	}
}

// evalSelect filters by a boolean column: a flat 0/1 scan on typed
// columns, per-item kind checks on the boxed fallback.
func (ex *Exec) evalSelect(n *algebra.Node, in *Table) (*Table, error) {
	cond := in.Col(n.Col)
	rows := cond.Len()
	buf := xdm.GetInt32s(rows)
	keep := buf[:0]
	if bs, ok := cond.Bools(); ok {
		for r, v := range bs {
			if v != 0 {
				keep = append(keep, int32(r))
			}
		}
	} else if items, ok := cond.RawItems(); ok {
		for r, it := range items {
			if it.Kind != xdm.KBoolean {
				xdm.PutInt32s(buf)
				return nil, ex.errf(n, "selection over non-boolean %s", it.Kind)
			}
			if it.I != 0 {
				keep = append(keep, int32(r))
			}
		}
	} else if rows > 0 {
		xdm.PutInt32s(buf)
		return nil, ex.errf(n, "selection over non-boolean %s", cond.Get(0).Kind)
	}
	out := in.filter(keep)
	xdm.PutInt32s(buf)
	return out, nil
}

// --- Joins and products ---

// JoinIndex hashes the right key column for an equi-join probe: intIdx
// when every key is an xs:integer (the common case — keys in compiled
// plans are iteration ids), strIdx otherwise. Flat integer key columns
// skip per-item inspection entirely.
type JoinIndex struct {
	intIdx map[int64][]int32
	strIdx map[string][]int32
}

// BuildJoinIndex indexes a join's right-hand key column.
func BuildJoinIndex(rk *xdm.Column) *JoinIndex {
	if ints, ok := rk.Ints(); ok {
		idx := make(map[int64][]int32, len(ints))
		for i, v := range ints {
			idx[v] = append(idx[v], int32(i))
		}
		return &JoinIndex{intIdx: idx}
	}
	if items, ok := rk.RawItems(); ok && allIntegers(items) {
		idx := make(map[int64][]int32, len(items))
		for i, it := range items {
			idx[it.I] = append(idx[it.I], int32(i))
		}
		return &JoinIndex{intIdx: idx}
	}
	nr := rk.Len()
	idx := make(map[string][]int32, nr)
	for i := 0; i < nr; i++ {
		k := xdm.DistinctKey(rk.Get(i))
		idx[k] = append(idx[k], int32(i))
	}
	return &JoinIndex{strIdx: idx}
}

// Probe appends the matching (left, right) row pairs for left rows
// [lo, hi) to lperm/rperm and returns the extended slices. Against an
// integer index the probe key is the item's integer payload, whatever the
// left column's type — exactly the boxed engine's behavior (non-integer
// items carry payload 0).
func (ix *JoinIndex) Probe(lk *xdm.Column, lo, hi int, lperm, rperm []int32) ([]int32, []int32) {
	if ix.intIdx != nil {
		var ints []int64
		if v, ok := lk.Ints(); ok {
			ints = v
		} else if v, ok := lk.Bools(); ok {
			ints = v
		}
		switch {
		case ints != nil:
			for i := lo; i < hi; i++ {
				for _, j := range ix.intIdx[ints[i]] {
					lperm = append(lperm, int32(i))
					rperm = append(rperm, j)
				}
			}
		default:
			if items, ok := lk.RawItems(); ok {
				for i := lo; i < hi; i++ {
					for _, j := range ix.intIdx[items[i].I] {
						lperm = append(lperm, int32(i))
						rperm = append(rperm, j)
					}
				}
			} else {
				// Typed double/string/node columns have integer payload 0.
				for i := lo; i < hi; i++ {
					for _, j := range ix.intIdx[0] {
						lperm = append(lperm, int32(i))
						rperm = append(rperm, j)
					}
				}
			}
		}
		return lperm, rperm
	}
	for i := lo; i < hi; i++ {
		for _, j := range ix.strIdx[xdm.DistinctKey(lk.Get(i))] {
			lperm = append(lperm, int32(i))
			rperm = append(rperm, j)
		}
	}
	return lperm, rperm
}

// MaterializeJoin builds the join output table from row-pair
// permutations via typed gathers, polling for cancellation between
// column chunks — a multi-million-row join output is otherwise a
// cancellation blind spot.
func (ex *Exec) MaterializeJoin(n *algebra.Node, l, r *Table, lperm, rperm []int32) (*Table, error) {
	t := NewTable(n.Schema())
	for c, name := range l.Cols {
		col, err := l.Col(name).GatherChunked(lperm, probeChunk, ex.CheckCancel)
		if err != nil {
			return nil, err
		}
		t.Data[c] = col
	}
	off := len(l.Cols)
	for c, name := range r.Cols {
		col, err := r.Col(name).GatherChunked(rperm, probeChunk, ex.CheckCancel)
		if err != nil {
			return nil, err
		}
		t.Data[off+c] = col
	}
	return t, nil
}

// probeChunk bounds the left-hand rows probed between cancellation and
// budget polls in the serial join, keeping cancellation latency low even
// when a single join is the whole query.
const probeChunk = 1 << 15

func (ex *Exec) evalJoin(n *algebra.Node, l, r *Table) (*Table, error) {
	lk, rk := l.Col(n.LCol), r.Col(n.RCol)
	ix := BuildJoinIndex(rk)
	nl := lk.Len()
	var lperm, rperm []int32
	for lo := 0; lo < nl; lo += probeChunk {
		hi := lo + probeChunk
		if hi > nl {
			hi = nl
		}
		lperm, rperm = ix.Probe(lk, lo, hi, lperm, rperm)
		if err := ex.checkCells(len(lperm), len(l.Cols)+len(r.Cols)); err != nil {
			return nil, err
		}
	}
	if err := ex.checkCells(len(lperm), len(l.Cols)+len(r.Cols)); err != nil {
		return nil, err
	}
	t, err := ex.MaterializeJoin(n, l, r, lperm, rperm)
	if err != nil {
		return nil, err
	}
	xdm.PutInt32s(lperm)
	xdm.PutInt32s(rperm)
	return t, nil
}

func (ex *Exec) evalCross(n *algebra.Node, l, r *Table) (*Table, error) {
	ln, rn := l.NumRows(), r.NumRows()
	if ln > 1 && rn > 1 {
		if err := ex.checkCells(ln*rn, len(l.Cols)+len(r.Cols)); err != nil {
			return nil, err
		}
	}
	t := NewTable(n.Schema())
	switch {
	case rn == 1:
		for c := range l.Cols {
			t.Data[c] = l.Data[c]
		}
		off := len(l.Cols)
		for c := range r.Cols {
			t.Data[off+c] = xdm.RepeatOf(r.Data[c], 0, ln)
		}
	case ln == 1:
		for c := range l.Cols {
			t.Data[c] = xdm.RepeatOf(l.Data[c], 0, rn)
		}
		off := len(l.Cols)
		for c := range r.Cols {
			t.Data[off+c] = r.Data[c]
		}
	default:
		total := ln * rn
		// Poll for cancellation roughly every probeChunk emitted rows; a
		// large cross product is otherwise a multi-second blind spot.
		stride := probeChunk/rn + 1
		lperm := xdm.GetInt32s(total)
		rperm := xdm.GetInt32s(total)
		k := 0
		for i := 0; i < ln; i++ {
			if i%stride == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(lperm)
					xdm.PutInt32s(rperm)
					return nil, err
				}
			}
			for j := 0; j < rn; j++ {
				lperm[k] = int32(i)
				rperm[k] = int32(j)
				k++
			}
		}
		for c := range l.Cols {
			col, err := l.Data[c].GatherChunked(lperm, probeChunk, ex.CheckCancel)
			if err != nil {
				return nil, err
			}
			t.Data[c] = col
		}
		off := len(l.Cols)
		for c := range r.Cols {
			col, err := r.Data[c].GatherChunked(rperm, probeChunk, ex.CheckCancel)
			if err != nil {
				return nil, err
			}
			t.Data[off+c] = col
		}
		xdm.PutInt32s(lperm)
		xdm.PutInt32s(rperm)
	}
	return t, nil
}

// --- Distinct and semijoin: typed word keys ---

// nanWord is the canonical NaN key: the boxed engine formatted every NaN
// to the same "NaN" string, so all NaN payloads must collide.
var nanWord = math.Float64bits(math.NaN())

// wordClass classifies a column for machine-word grouping keys. Numeric
// columns share a class (the boxed keys made xs:integer 5 and xs:double
// 5.0 collide); booleans, nodes and the string-class kinds each key their
// own class, and word keys must never be compared across classes (the
// boxed keys carried a class prefix).
type wordClass uint8

const (
	wordNone wordClass = iota // boxed fallback — not wordable
	wordNum
	wordBool
	wordNode
	wordStr // string-class: raw string keys instead of words
)

func classOf(c *xdm.Column) wordClass {
	switch c.Kind() {
	case xdm.ColInt, xdm.ColDouble:
		return wordNum
	case xdm.ColBool:
		return wordBool
	case xdm.ColNode:
		return wordNode
	case xdm.ColString, xdm.ColUntyped:
		return wordStr
	default:
		return wordNone
	}
}

// wordsOf encodes a wordable (non-string) column as one uint64 key per
// cell, under the same equivalence as xdm.DistinctKey within the column's
// class: numerics key their double projection (NaNs canonicalized, -0
// distinct from +0 just like the formatted keys), booleans 0/1, nodes
// (frag, pre).
func wordsOf(c *xdm.Column) []uint64 {
	n := c.Len()
	out := make([]uint64, n)
	switch c.Kind() {
	case xdm.ColInt:
		v, _ := c.Ints()
		for i, x := range v {
			out[i] = math.Float64bits(float64(x))
		}
	case xdm.ColDouble:
		fs, _ := c.Floats()
		for i, f := range fs {
			if f != f {
				out[i] = nanWord
			} else {
				out[i] = math.Float64bits(f)
			}
		}
	case xdm.ColBool:
		v, _ := c.Bools()
		for i, x := range v {
			out[i] = uint64(x)
		}
	case xdm.ColNode:
		ns, _ := c.Nodes()
		for i, id := range ns {
			out[i] = uint64(id.Frag)<<32 | uint64(uint32(id.Pre))
		}
	}
	return out
}

// evalDistinct deduplicates rows over n.Cols. Typed columns hash machine
// words (one or two columns — the compiled plans' distincts are over
// (iter) or (iter, item)); anything else falls back to the boxed string
// keys, which define the same equivalence.
func (ex *Exec) evalDistinct(n *algebra.Node, in *Table) (*Table, error) {
	cols := make([]*xdm.Column, len(n.Cols))
	for i, c := range n.Cols {
		cols[i] = in.Col(c)
	}
	rows := in.NumRows()
	buf := xdm.GetInt32s(rows)
	keep := buf[:0]

	classes := make([]wordClass, len(cols))
	wordable := true
	for i, c := range cols {
		classes[i] = classOf(c)
		if classes[i] == wordNone {
			wordable = false
		}
	}
	switch {
	case wordable && len(cols) == 1 && classes[0] != wordStr:
		ws := wordsOf(cols[0])
		seen := make(map[uint64]struct{}, rows)
		for r, w := range ws {
			if _, ok := seen[w]; !ok {
				seen[w] = struct{}{}
				keep = append(keep, int32(r))
			}
		}
	case wordable && len(cols) == 1: // single string-class column
		ss, _, _ := cols[0].Strings()
		seen := make(map[string]struct{}, rows)
		for r, s := range ss {
			if _, ok := seen[s]; !ok {
				seen[s] = struct{}{}
				keep = append(keep, int32(r))
			}
		}
	case wordable && len(cols) == 2 && classes[0] != wordStr && classes[1] != wordStr:
		w0, w1 := wordsOf(cols[0]), wordsOf(cols[1])
		seen := make(map[[2]uint64]struct{}, rows)
		for r := 0; r < rows; r++ {
			k := [2]uint64{w0[r], w1[r]}
			if _, ok := seen[k]; !ok {
				seen[k] = struct{}{}
				keep = append(keep, int32(r))
			}
		}
	default:
		seen := make(map[string]bool, rows)
		for r := 0; r < rows; r++ {
			k := rowKey(cols, r)
			if !seen[k] {
				seen[k] = true
				keep = append(keep, int32(r))
			}
		}
	}
	t := NewTable(n.Cols)
	for i := range cols {
		t.Data[i] = cols[i].Gather(keep)
	}
	xdm.PutInt32s(buf)
	return t, nil
}

func (ex *Exec) evalSemiDiff(n *algebra.Node, l, r *Table) (*Table, error) {
	rcols := make([]*xdm.Column, len(n.Cols))
	lcols := make([]*xdm.Column, len(n.Cols))
	for i, c := range n.Cols {
		rcols[i] = r.Col(c)
		lcols[i] = l.Col(c)
	}
	want := n.Kind == algebra.OpSemi
	lrows, rrows := l.NumRows(), r.NumRows()
	buf := xdm.GetInt32s(lrows)
	keep := buf[:0]

	// The word path needs each (left, right) column pair to key the same
	// class: word keys carry no class tag, and the boxed keys never
	// matched across classes (e.g. boolean true vs integer 1).
	wordable := true
	stringy := false
	for i := range lcols {
		lc, rc := classOf(lcols[i]), classOf(rcols[i])
		if lc != rc || lc == wordNone {
			wordable = false
			break
		}
		if lc == wordStr {
			stringy = true
		}
	}
	switch {
	case wordable && len(lcols) == 1 && !stringy:
		rw := wordsOf(rcols[0])
		set := make(map[uint64]struct{}, rrows)
		for i, w := range rw {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			set[w] = struct{}{}
		}
		lw := wordsOf(lcols[0])
		for i, w := range lw {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			if _, ok := set[w]; ok == want {
				keep = append(keep, int32(i))
			}
		}
	case wordable && len(lcols) == 1: // single string-class pair
		rs, _, _ := rcols[0].Strings()
		set := make(map[string]struct{}, rrows)
		for i, s := range rs {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			set[s] = struct{}{}
		}
		ls, _, _ := lcols[0].Strings()
		for i, s := range ls {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			if _, ok := set[s]; ok == want {
				keep = append(keep, int32(i))
			}
		}
	case wordable && len(lcols) == 2 && !stringy:
		r0, r1 := wordsOf(rcols[0]), wordsOf(rcols[1])
		set := make(map[[2]uint64]struct{}, rrows)
		for i := 0; i < rrows; i++ {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			set[[2]uint64{r0[i], r1[i]}] = struct{}{}
		}
		l0, l1 := wordsOf(lcols[0]), wordsOf(lcols[1])
		for i := 0; i < lrows; i++ {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			if _, ok := set[[2]uint64{l0[i], l1[i]}]; ok == want {
				keep = append(keep, int32(i))
			}
		}
	default:
		set := make(map[string]bool, rrows)
		for i := 0; i < rrows; i++ {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			set[rowKey(rcols, i)] = true
		}
		for i := 0; i < lrows; i++ {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInt32s(buf)
					return nil, err
				}
			}
			if set[rowKey(lcols, i)] == want {
				keep = append(keep, int32(i))
			}
		}
	}
	out := l.filter(keep)
	xdm.PutInt32s(buf)
	return out, nil
}

// --- Row numbering: the ρ/# cost asymmetry ---

// cellCompare builds a comparator over one column's cells under exactly
// compareSortItems' semantics: typed columns compare raw payloads (ints
// through their double projection, as xdm.OrderCompare does), the boxed
// fallback dispatches per item and handles the KNull markers.
func cellCompare(c *xdm.Column, emptyGreatest bool) func(a, b int32) int {
	switch c.Kind() {
	case xdm.ColInt:
		v, _ := c.Ints()
		return func(a, b int32) int {
			af, bf := float64(v[a]), float64(v[b])
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	case xdm.ColDouble:
		fs, _ := c.Floats()
		return func(a, b int32) int {
			af, bf := fs[a], fs[b]
			an, bn := af != af, bf != bf // NaN sorts first
			switch {
			case an && bn:
				return 0
			case an:
				return -1
			case bn:
				return 1
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	case xdm.ColBool:
		v, _ := c.Bools()
		return func(a, b int32) int {
			switch {
			case v[a] < v[b]:
				return -1
			case v[a] > v[b]:
				return 1
			default:
				return 0
			}
		}
	case xdm.ColString, xdm.ColUntyped:
		ss, _, _ := c.Strings()
		return func(a, b int32) int {
			switch {
			case ss[a] < ss[b]:
				return -1
			case ss[a] > ss[b]:
				return 1
			default:
				return 0
			}
		}
	case xdm.ColNode:
		ns, _ := c.Nodes()
		return func(a, b int32) int {
			x, y := ns[a], ns[b]
			switch {
			case x.Frag < y.Frag:
				return -1
			case x.Frag > y.Frag:
				return 1
			case x.Pre < y.Pre:
				return -1
			case x.Pre > y.Pre:
				return 1
			default:
				return 0
			}
		}
	default:
		items, _ := c.RawItems()
		return func(a, b int32) int { return compareSortItems(items[a], items[b], emptyGreatest) }
	}
}

// evalRowNum implements ρ: a stable sort of the full table by
// (part, sort criteria) followed by dense per-group numbering. The
// physical reordering is deliberate — it is the blocking sort whose
// elimination the whole paper is about.
//
// With Options.InterestingOrders (§6's [15] reference, off by default):
// when the input already arrives in the required physical order — common
// after steps, whose staircase join emits document order — an O(n) check
// detects it and the O(n log n) sort is skipped. The logical plan is
// untouched; this is the orthogonal physical optimization the paper
// defers to [15].
func (ex *Exec) evalRowNum(n *algebra.Node, in *Table) (*Table, error) {
	rows := in.NumRows()
	var partCmp func(a, b int32) int
	if n.Part != "" {
		partCmp = cellCompare(in.Col(n.Part), false)
	}
	keyCmps := make([]func(a, b int32) int, len(n.Sort))
	for i, s := range n.Sort {
		keyCmps[i] = cellCompare(in.Col(s.Col), s.EmptyGreatest)
	}
	less := func(ra, rb int32) int {
		if partCmp != nil {
			if c := partCmp(ra, rb); c != 0 {
				return c
			}
		}
		for i, s := range n.Sort {
			c := keyCmps[i](ra, rb)
			if s.Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	sorted := false
	if ex.intOrders {
		sorted = true
		for i := 1; i < rows; i++ {
			if less(int32(i-1), int32(i)) > 0 {
				sorted = false
				break
			}
		}
	}
	out := in
	if !sorted {
		perm := xdm.GetInt32s(rows)
		for i := range perm {
			perm[i] = int32(i)
		}
		if err := ex.sortStable(perm, func(a, b int) bool { return less(perm[a], perm[b]) < 0 }); err != nil {
			xdm.PutInt32s(perm)
			return nil, err
		}
		out = in.permute(perm)
		xdm.PutInt32s(perm)
	}
	num := xdm.GetInts(rows)
	if n.Part != "" {
		cmp := cellCompare(out.Col(n.Part), false)
		k := int64(0)
		for i := 0; i < rows; i++ {
			if i > 0 && cmp(int32(i-1), int32(i)) != 0 {
				k = 0
			}
			k++
			num[i] = k
		}
	} else {
		for i := range num {
			num[i] = int64(i + 1)
		}
	}
	return out.withColumn(n.Res, xdm.IntColumn(num)), nil
}

// abortSort carries a cancellation error out of a sort comparator; the
// standard library offers no other way to stop a running sort.
type abortSort struct{ err error }

// sortStable is sort.SliceStable with cooperative cancellation: the
// comparator polls CheckCancel periodically and unwinds via a private
// panic, so multi-second ρ sorts stop within the cancellation bound.
func (ex *Exec) sortStable(perm []int32, less func(a, b int) bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(abortSort); ok {
				err = a.err
				return
			}
			panic(r)
		}
	}()
	calls := 0
	sort.SliceStable(perm, func(a, b int) bool {
		if calls++; calls&(1<<16-1) == 0 {
			if cerr := ex.CheckCancel(); cerr != nil {
				panic(abortSort{cerr})
			}
		}
		return less(a, b)
	})
	return nil
}

// allIntegers reports whether every item in the column is an xs:integer.
func allIntegers(col []xdm.Item) bool {
	for _, it := range col {
		if it.Kind != xdm.KInteger {
			return false
		}
	}
	return true
}

// compareSortItems orders items for ρ and for result serialization: the
// Null marker sorts below everything (or above, with emptyGreatest); all
// other items follow the xdm total order.
func compareSortItems(a, b xdm.Item, emptyGreatest bool) int {
	an, bn := a.Kind == xdm.KNull, b.Kind == xdm.KNull
	switch {
	case an && bn:
		return 0
	case an:
		if emptyGreatest {
			return 1
		}
		return -1
	case bn:
		if emptyGreatest {
			return -1
		}
		return 1
	default:
		return xdm.OrderCompare(a, b)
	}
}
