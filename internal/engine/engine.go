package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/qerr"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// Options configures an execution.
type Options struct {
	// Context, when non-nil, cancels evaluation cooperatively: workers and
	// the serial evaluator poll ctx.Done() at the deadline/cell-budget
	// check sites and inside the heavy operator loops, so cancellation
	// aborts a running query promptly. The resulting error wraps
	// qerr.ErrCanceled (or qerr.ErrTimeout for a context deadline) and
	// the context's own cause, so errors.Is(err, context.Canceled) holds.
	Context context.Context
	// Timeout aborts evaluation (checked between operators); zero means
	// no limit. The paper's experiments used a 30 s cutoff.
	Timeout time.Duration
	// MaxCells bounds the total number of table cells materialized during
	// one execution (a memory cutoff for intermediate-result blowups);
	// zero means no limit.
	MaxCells int64
	// InterestingOrders enables the physical-layer sortedness check on ρ
	// (§6's [15] reference): when a ρ input already arrives in the
	// required order (e.g. straight from a staircase join), the sort is
	// skipped. Off by default — the paper's engine pays its sorts, and
	// the reproduction should too; enable it to measure how much of the
	// paper's win a physically order-aware engine would recover anyway.
	InterestingOrders bool
}

// ErrCutoff is returned (wrapped) when an execution exceeds its time or
// memory cutoff. It aliases qerr.ErrCutoff: both qerr.ErrTimeout and
// qerr.ErrMemoryLimit wrap it, so errors.Is(err, ErrCutoff) keeps
// matching either cutoff class as it always has.
var ErrCutoff = qerr.ErrCutoff

// EvalHook, when non-nil, runs before every operator kernel evaluation
// (EvalOp), on the serial engine and on the parallel coordinator alike.
// It exists for fault injection in tests (panicking kernels, artificial
// latency) and must not be set while queries are running.
var EvalHook func(n *algebra.Node)

// ProfileEntry aggregates evaluation time by operator origin; the set of
// origins reproduces the sub-expression rows of Table 2. Under parallel
// execution Duration sums the per-worker (CPU) time spent on the origin,
// so profiles keep accounting for the work performed, not the wall clock.
type ProfileEntry struct {
	Origin   string
	Duration time.Duration
	Ops      int
	Rows     int // rows produced by operators with this origin
}

// Result is an executed query: the item sequence in serialization order,
// the store owning constructed nodes, and the per-origin profile.
type Result struct {
	Items   []xdm.Item
	Store   *xmltree.Store
	Profile []ProfileEntry
	Elapsed time.Duration
}

// SerializeXML renders the result per the XQuery serialization rules.
func (r *Result) SerializeXML() (string, error) {
	return xmltree.SerializeItems(r.Store, r.Items)
}

// Run evaluates the plan DAG rooted at root. docs maps fn:doc() URIs to
// fragment ids in base; constructed fragments go to a derived store.
// Run never panics: engine invariant violations tripped at runtime are
// recovered and surface as qerr.ErrInternal.
func Run(root *algebra.Node, base *xmltree.Store, docs map[string]uint32, opts Options) (res *Result, err error) {
	defer qerr.RecoverInto("execute", &err)
	ex := NewExec(base, docs, opts)
	start := time.Now()
	t, err := ex.Eval(root)
	if err != nil {
		return nil, err
	}
	return ex.Finish(t, start), nil
}

// Exec is one plan execution: the derived store receiving constructed
// fragments, the operator memo table, the per-origin profile, and the
// shared time/memory budget. The budget counters are atomic so that a
// parallel executor (package parallel) can charge them cooperatively from
// several workers; the memo and profile maps are only touched from the
// single goroutine that walks the DAG.
type Exec struct {
	store     *xmltree.Store
	docs      map[string]uint32
	memo      map[*algebra.Node]*Table
	prof      map[string]*ProfileEntry
	ctx       context.Context
	done      <-chan struct{}
	deadline  time.Time
	maxCells  int64
	cells     atomic.Int64
	intOrders bool
}

// NewExec prepares an execution over a derived store.
func NewExec(base *xmltree.Store, docs map[string]uint32, opts Options) *Exec {
	ex := &Exec{
		store:     base.Derive(),
		docs:      docs,
		memo:      make(map[*algebra.Node]*Table),
		prof:      make(map[string]*ProfileEntry),
		ctx:       opts.Context,
		maxCells:  opts.MaxCells,
		intOrders: opts.InterestingOrders,
	}
	if ex.ctx != nil {
		ex.done = ex.ctx.Done()
	}
	if opts.Timeout > 0 {
		ex.deadline = time.Now().Add(opts.Timeout)
	}
	return ex
}

// Store returns the execution's derived store.
func (ex *Exec) Store() *xmltree.Store { return ex.store }

// CheckCancel reports a cancellation error once the execution's context
// is done. Safe for concurrent use (the done channel is immutable); a
// single select on a cached channel, cheap enough for per-chunk polling
// inside operator kernels.
func (ex *Exec) CheckCancel() error {
	if ex.done == nil {
		return nil
	}
	select {
	case <-ex.done:
		cause := ex.ctx.Err()
		kind := qerr.ErrCanceled
		if errors.Is(cause, context.DeadlineExceeded) {
			kind = qerr.ErrTimeout
		}
		return qerr.New(kind, "execute", fmt.Errorf("engine: query aborted: %w", cause))
	default:
		return nil
	}
}

// CheckDeadline reports a cutoff error once the execution's deadline has
// passed or its context is canceled. Safe for concurrent use (deadline
// and done channel are immutable).
func (ex *Exec) CheckDeadline() error {
	if err := ex.CheckCancel(); err != nil {
		return err
	}
	if !ex.deadline.IsZero() && time.Now().After(ex.deadline) {
		return qerr.New(qerr.ErrTimeout, "execute", fmt.Errorf("engine: time limit: %w", ErrCutoff))
	}
	return nil
}

// memoryLimitErr classifies a cell-budget overrun.
func (ex *Exec) memoryLimitErr() error {
	return qerr.New(qerr.ErrMemoryLimit, "execute",
		fmt.Errorf("engine: memory limit (%d cells): %w", ex.maxCells, ErrCutoff))
}

// CheckCells verifies a prospective allocation of rows*cols cells against
// the memory cutoff before materializing it (large joins and products
// would otherwise overshoot the budget in a single operator). It also
// polls for cancellation, so the budget-check sites double as the
// cooperative cancellation points.
func (ex *Exec) CheckCells(rows, cols int) error {
	if err := ex.CheckCancel(); err != nil {
		return err
	}
	if ex.maxCells > 0 && ex.cells.Load()+int64(rows)*int64(cols) > ex.maxCells {
		return ex.memoryLimitErr()
	}
	return nil
}

// ChargeCells adds n materialized cells to the shared budget and reports
// a cutoff error on overrun. Safe for concurrent use. Like CheckCells it
// polls for cancellation first.
func (ex *Exec) ChargeCells(n int64) error {
	if err := ex.CheckCancel(); err != nil {
		return err
	}
	if ex.maxCells <= 0 {
		return nil
	}
	if ex.cells.Add(n) > ex.maxCells {
		return ex.memoryLimitErr()
	}
	return nil
}

// checkCells is the internal pre-check used by join and cross.
func (ex *Exec) checkCells(rows, cols int) error { return ex.CheckCells(rows, cols) }

// Finish assembles the Result from the root table: order by pos rank for
// serialization and flatten the profile.
func (ex *Exec) Finish(t *Table, start time.Time) *Result {
	res := &Result{Store: ex.store, Elapsed: time.Since(start)}
	// The root carries (pos, item): order by pos rank for serialization.
	n := t.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	pos := t.Col("pos")
	sort.SliceStable(perm, func(a, b int) bool { return iterKey(pos[perm[a]]) < iterKey(pos[perm[b]]) })
	items := t.Col("item")
	res.Items = make([]xdm.Item, n)
	for i, p := range perm {
		res.Items[i] = items[p]
	}
	for _, e := range ex.prof {
		res.Profile = append(res.Profile, *e)
	}
	sort.Slice(res.Profile, func(a, b int) bool { return res.Profile[a].Duration > res.Profile[b].Duration })
	return res
}

// Errf formats an operator-attributed evaluation error the way the
// serial engine does, so parallel and serial runs report identically.
func (ex *Exec) Errf(n *algebra.Node, format string, args ...any) error {
	return ex.errf(n, format, args...)
}

func (ex *Exec) errf(n *algebra.Node, format string, args ...any) error {
	origin := n.Origin
	if origin == "" {
		origin = n.Kind.String()
	}
	return fmt.Errorf("engine: %s: %s", origin, fmt.Sprintf(format, args...))
}

// Eval evaluates the DAG rooted at n serially, memoizing shared nodes.
func (ex *Exec) Eval(n *algebra.Node) (*Table, error) {
	if t, ok := ex.memo[n]; ok {
		return t, nil
	}
	if err := ex.CheckDeadline(); err != nil {
		return nil, err
	}
	ins := make([]*Table, len(n.Ins))
	for i, in := range n.Ins {
		t, err := ex.Eval(in)
		if err != nil {
			return nil, err
		}
		ins[i] = t
	}
	start := time.Now()
	t, err := ex.EvalOp(n, ins)
	if err != nil {
		return nil, err
	}
	ex.Record(n, time.Since(start), t.NumRows())
	if err := ex.ChargeCells(int64(t.NumRows()) * int64(len(t.Cols))); err != nil {
		return nil, err
	}
	ex.Memoize(n, t)
	return t, nil
}

// Memoize stores an evaluated table for a node, so shared DAG nodes are
// evaluated exactly once.
func (ex *Exec) Memoize(n *algebra.Node, t *Table) { ex.memo[n] = t }

// Memoized returns a previously memoized table for n, if any.
func (ex *Exec) Memoized(n *algebra.Node) (*Table, bool) {
	t, ok := ex.memo[n]
	return t, ok
}

// Record attributes d of evaluation time and rows produced rows to the
// node's origin. Not safe for concurrent use; parallel executors must
// aggregate per-worker durations first and record once.
func (ex *Exec) Record(n *algebra.Node, d time.Duration, rows int) {
	origin := n.Origin
	if origin == "" {
		origin = "(" + n.Kind.String() + ")"
	}
	e := ex.prof[origin]
	if e == nil {
		e = &ProfileEntry{Origin: origin}
		ex.prof[origin] = e
	}
	e.Duration += d
	e.Ops++
	e.Rows += rows
}

// EvalOp evaluates a single operator over already-evaluated inputs.
func (ex *Exec) EvalOp(n *algebra.Node, ins []*Table) (*Table, error) {
	if EvalHook != nil {
		EvalHook(n)
	}
	switch n.Kind {
	case algebra.OpLit:
		t := NewTable(n.Cols)
		for c := range n.Cols {
			col := make([]xdm.Item, len(n.Rows))
			for r, row := range n.Rows {
				col[r] = row[c]
			}
			t.Data[c] = col
		}
		return t, nil

	case algebra.OpProject:
		in := ins[0]
		t := NewTable(n.Schema())
		for i, p := range n.Proj {
			t.Data[i] = in.Col(p.Old)
		}
		return t, nil

	case algebra.OpSelect:
		in := ins[0]
		cond := in.Col(n.Col)
		var keep []int
		for r, it := range cond {
			if it.Kind != xdm.KBoolean {
				return nil, ex.errf(n, "selection over non-boolean %s", it.Kind)
			}
			if it.I != 0 {
				keep = append(keep, r)
			}
		}
		return in.filter(keep), nil

	case algebra.OpJoin:
		return ex.evalJoin(n, ins[0], ins[1])

	case algebra.OpCross:
		return ex.evalCross(n, ins[0], ins[1])

	case algebra.OpRowNum:
		return ex.evalRowNum(n, ins[0])

	case algebra.OpRowID:
		in := ins[0]
		col := make([]xdm.Item, in.NumRows())
		for i := range col {
			col[i] = xdm.NewInt(int64(i + 1))
		}
		return in.withColumn(n.Col, col), nil

	case algebra.OpBinOp:
		return ex.evalBinOp(n, ins[0])

	case algebra.OpMap1:
		return ex.evalMap1(n, ins[0])

	case algebra.OpUnion:
		l, r := ins[0], ins[1]
		t := NewTable(l.Cols)
		for c, name := range l.Cols {
			lc, rc := l.Col(name), r.Col(name)
			col := make([]xdm.Item, 0, len(lc)+len(rc))
			col = append(col, lc...)
			col = append(col, rc...)
			t.Data[c] = col
		}
		return t, nil

	case algebra.OpSemi, algebra.OpDiff:
		return ex.evalSemiDiff(n, ins[0], ins[1])

	case algebra.OpDistinct:
		in := ins[0]
		cols := make([][]xdm.Item, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = in.Col(c)
		}
		seen := make(map[string]bool, in.NumRows())
		var keep []int
		for r := 0; r < in.NumRows(); r++ {
			k := rowKey(cols, r)
			if !seen[k] {
				seen[k] = true
				keep = append(keep, r)
			}
		}
		t := NewTable(n.Cols)
		for i := range cols {
			col := make([]xdm.Item, len(keep))
			for j, r := range keep {
				col[j] = cols[i][r]
			}
			t.Data[i] = col
		}
		return t, nil

	case algebra.OpAggr:
		return ex.evalAggr(n, ins[0])

	case algebra.OpStep:
		return ex.evalStep(n, ins[0])

	case algebra.OpDoc:
		id, ok := ex.docs[n.URI]
		if !ok {
			return nil, ex.errf(n, "unknown document %q", n.URI)
		}
		t := NewTable([]string{"item"})
		t.Data[0] = []xdm.Item{xdm.NewNode(xdm.NodeID{Frag: id, Pre: 0})}
		return t, nil

	case algebra.OpElem:
		return ex.evalElem(n, ins[0], ins[1])

	case algebra.OpAttr:
		return ex.evalAttr(n, ins[0])

	case algebra.OpRange:
		return ex.evalRange(n, ins[0])

	case algebra.OpCheckCard:
		return ex.evalCheckCard(n, ins)

	default:
		return nil, ex.errf(n, "unimplemented operator")
	}
}

// --- Joins and products ---

// BuildJoinIndex hashes the right key column for an equi-join probe:
// intIdx when every key is an xs:integer (the common case — keys in
// compiled plans are iteration ids), strIdx otherwise.
type JoinIndex struct {
	intIdx map[int64][]int
	strIdx map[string][]int
}

// BuildJoinIndex indexes a join's right-hand key column.
func BuildJoinIndex(rk []xdm.Item) *JoinIndex {
	if allIntegers(rk) {
		idx := make(map[int64][]int, len(rk))
		for i, it := range rk {
			idx[it.I] = append(idx[it.I], i)
		}
		return &JoinIndex{intIdx: idx}
	}
	idx := make(map[string][]int, len(rk))
	for i, it := range rk {
		idx[xdm.DistinctKey(it)] = append(idx[xdm.DistinctKey(it)], i)
	}
	return &JoinIndex{strIdx: idx}
}

// Probe appends the matching (left, right) row pairs for left rows
// [lo, hi) to lperm/rperm and returns the extended slices.
func (ix *JoinIndex) Probe(lk []xdm.Item, lo, hi int, lperm, rperm []int) ([]int, []int) {
	if ix.intIdx != nil {
		for i := lo; i < hi; i++ {
			for _, j := range ix.intIdx[lk[i].I] {
				lperm = append(lperm, i)
				rperm = append(rperm, j)
			}
		}
		return lperm, rperm
	}
	for i := lo; i < hi; i++ {
		for _, j := range ix.strIdx[xdm.DistinctKey(lk[i])] {
			lperm = append(lperm, i)
			rperm = append(rperm, j)
		}
	}
	return lperm, rperm
}

// MaterializeJoin builds the join output table from row-pair
// permutations, polling for cancellation between column chunks — a
// multi-million-row join output is otherwise a cancellation blind spot.
func (ex *Exec) MaterializeJoin(n *algebra.Node, l, r *Table, lperm, rperm []int) (*Table, error) {
	t := NewTable(n.Schema())
	copyCol := func(src []xdm.Item, perm []int) ([]xdm.Item, error) {
		col := make([]xdm.Item, len(perm))
		for i, p := range perm {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					return nil, err
				}
			}
			col[i] = src[p]
		}
		return col, nil
	}
	for c, name := range l.Cols {
		col, err := copyCol(l.Col(name), lperm)
		if err != nil {
			return nil, err
		}
		t.Data[c] = col
	}
	off := len(l.Cols)
	for c, name := range r.Cols {
		col, err := copyCol(r.Col(name), rperm)
		if err != nil {
			return nil, err
		}
		t.Data[off+c] = col
	}
	return t, nil
}

// probeChunk bounds the left-hand rows probed between cancellation and
// budget polls in the serial join, keeping cancellation latency low even
// when a single join is the whole query.
const probeChunk = 1 << 15

func (ex *Exec) evalJoin(n *algebra.Node, l, r *Table) (*Table, error) {
	lk, rk := l.Col(n.LCol), r.Col(n.RCol)
	ix := BuildJoinIndex(rk)
	var lperm, rperm []int
	for lo := 0; lo < len(lk); lo += probeChunk {
		hi := lo + probeChunk
		if hi > len(lk) {
			hi = len(lk)
		}
		lperm, rperm = ix.Probe(lk, lo, hi, lperm, rperm)
		if err := ex.checkCells(len(lperm), len(l.Cols)+len(r.Cols)); err != nil {
			return nil, err
		}
	}
	if err := ex.checkCells(len(lperm), len(l.Cols)+len(r.Cols)); err != nil {
		return nil, err
	}
	return ex.MaterializeJoin(n, l, r, lperm, rperm)
}

func (ex *Exec) evalCross(n *algebra.Node, l, r *Table) (*Table, error) {
	ln, rn := l.NumRows(), r.NumRows()
	if ln > 1 && rn > 1 {
		if err := ex.checkCells(ln*rn, len(l.Cols)+len(r.Cols)); err != nil {
			return nil, err
		}
	}
	t := NewTable(n.Schema())
	switch {
	case rn == 1:
		for c := range l.Cols {
			t.Data[c] = l.Data[c]
		}
		off := len(l.Cols)
		for c := range r.Cols {
			col := make([]xdm.Item, ln)
			v := r.Data[c][0]
			for i := range col {
				col[i] = v
			}
			t.Data[off+c] = col
		}
	case ln == 1:
		for c := range l.Cols {
			col := make([]xdm.Item, rn)
			v := l.Data[c][0]
			for i := range col {
				col[i] = v
			}
			t.Data[c] = col
		}
		off := len(l.Cols)
		for c := range r.Cols {
			t.Data[off+c] = r.Data[c]
		}
	default:
		total := ln * rn
		// Poll for cancellation roughly every probeChunk emitted rows; a
		// large cross product is otherwise a multi-second blind spot.
		stride := probeChunk/rn + 1
		for c := range l.Cols {
			col := make([]xdm.Item, 0, total)
			for i := 0; i < ln; i++ {
				if i%stride == 0 {
					if err := ex.CheckCancel(); err != nil {
						return nil, err
					}
				}
				v := l.Data[c][i]
				for j := 0; j < rn; j++ {
					col = append(col, v)
				}
			}
			t.Data[c] = col
		}
		off := len(l.Cols)
		for c := range r.Cols {
			col := make([]xdm.Item, 0, total)
			for i := 0; i < ln; i++ {
				if i%stride == 0 {
					if err := ex.CheckCancel(); err != nil {
						return nil, err
					}
				}
				col = append(col, r.Data[c]...)
			}
			t.Data[off+c] = col
		}
	}
	return t, nil
}

func (ex *Exec) evalSemiDiff(n *algebra.Node, l, r *Table) (*Table, error) {
	rcols := make([][]xdm.Item, len(n.Cols))
	lcols := make([][]xdm.Item, len(n.Cols))
	for i, c := range n.Cols {
		rcols[i] = r.Col(c)
		lcols[i] = l.Col(c)
	}
	set := make(map[string]bool, r.NumRows())
	for i := 0; i < r.NumRows(); i++ {
		if i&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		set[rowKey(rcols, i)] = true
	}
	want := n.Kind == algebra.OpSemi
	var keep []int
	for i := 0; i < l.NumRows(); i++ {
		if i&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		if set[rowKey(lcols, i)] == want {
			keep = append(keep, i)
		}
	}
	return l.filter(keep), nil
}

// --- Row numbering: the ρ/# cost asymmetry ---

// evalRowNum implements ρ: a stable sort of the full table by
// (part, sort criteria) followed by dense per-group numbering. The
// physical reordering is deliberate — it is the blocking sort whose
// elimination the whole paper is about.
//
// With Options.InterestingOrders (§6's [15] reference, off by default):
// when the input already arrives in the required physical order — common
// after steps, whose staircase join emits document order — an O(n) check
// detects it and the O(n log n) sort is skipped. The logical plan is
// untouched; this is the orthogonal physical optimization the paper
// defers to [15].
func (ex *Exec) evalRowNum(n *algebra.Node, in *Table) (*Table, error) {
	rows := in.NumRows()
	var part []xdm.Item
	if n.Part != "" {
		part = in.Col(n.Part)
	}
	keys := make([][]xdm.Item, len(n.Sort))
	for i, s := range n.Sort {
		keys[i] = in.Col(s.Col)
	}
	less := func(ra, rb int) int {
		if part != nil {
			if c := compareSortItems(part[ra], part[rb], false); c != 0 {
				return c
			}
		}
		for i, s := range n.Sort {
			c := compareSortItems(keys[i][ra], keys[i][rb], s.EmptyGreatest)
			if s.Desc {
				c = -c
			}
			if c != 0 {
				return c
			}
		}
		return 0
	}
	sorted := false
	if ex.intOrders {
		sorted = true
		for i := 1; i < rows; i++ {
			if less(i-1, i) > 0 {
				sorted = false
				break
			}
		}
	}
	out := in
	if !sorted {
		perm := make([]int, rows)
		for i := range perm {
			perm[i] = i
		}
		if err := ex.sortStable(perm, func(a, b int) bool { return less(perm[a], perm[b]) < 0 }); err != nil {
			return nil, err
		}
		out = in.permute(perm)
	}
	num := make([]xdm.Item, rows)
	var prevPart *xdm.Item
	k := int64(0)
	var partOut []xdm.Item
	if part != nil {
		partOut = out.Col(n.Part)
	}
	for i := 0; i < rows; i++ {
		if part != nil {
			cur := partOut[i]
			if prevPart == nil || compareSortItems(*prevPart, cur, false) != 0 {
				k = 0
			}
			prevPart = &partOut[i]
		}
		k++
		num[i] = xdm.NewInt(k)
	}
	return out.withColumn(n.Res, num), nil
}

// abortSort carries a cancellation error out of a sort comparator; the
// standard library offers no other way to stop a running sort.
type abortSort struct{ err error }

// sortStable is sort.SliceStable with cooperative cancellation: the
// comparator polls CheckCancel periodically and unwinds via a private
// panic, so multi-second ρ sorts stop within the cancellation bound.
func (ex *Exec) sortStable(perm []int, less func(a, b int) bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if a, ok := r.(abortSort); ok {
				err = a.err
				return
			}
			panic(r)
		}
	}()
	calls := 0
	sort.SliceStable(perm, func(a, b int) bool {
		if calls++; calls&(1<<16-1) == 0 {
			if cerr := ex.CheckCancel(); cerr != nil {
				panic(abortSort{cerr})
			}
		}
		return less(a, b)
	})
	return nil
}

// allIntegers reports whether every item in the column is an xs:integer.
func allIntegers(col []xdm.Item) bool {
	for _, it := range col {
		if it.Kind != xdm.KInteger {
			return false
		}
	}
	return true
}

// compareSortItems orders items for ρ and for result serialization: the
// Null marker sorts below everything (or above, with emptyGreatest); all
// other items follow the xdm total order.
func compareSortItems(a, b xdm.Item, emptyGreatest bool) int {
	an, bn := a.Kind == xdm.KNull, b.Kind == xdm.KNull
	switch {
	case an && bn:
		return 0
	case an:
		if emptyGreatest {
			return 1
		}
		return -1
	case bn:
		if emptyGreatest {
			return -1
		}
		return 1
	default:
		return xdm.OrderCompare(a, b)
	}
}
