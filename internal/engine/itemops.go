package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// coerceArith applies the arithmetic untypedAtomic→double coercion.
func coerceArith(it xdm.Item) (xdm.Item, error) {
	if it.Kind == xdm.KUntyped {
		f, err := it.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewDouble(f), nil
	}
	return it, nil
}

func (ex *Exec) evalBinOp(n *algebra.Node, in *Table) (*Table, error) {
	l, r := in.Col(n.LCol), in.Col(n.RCol)
	var tc *xdm.Column
	if n.TCol != "" {
		tc = in.Col(n.TCol)
	}
	rows := in.NumRows()
	if tc == nil {
		if col, ok, err := ex.typedBinOp(n, l, r); ok {
			if err != nil {
				return nil, err
			}
			return in.withColumn(n.Res, col), nil
		}
	}
	out := xdm.GetItems(rows)
	for i := 0; i < rows; i++ {
		if i&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				xdm.PutItems(out)
				return nil, err
			}
		}
		var v xdm.Item
		var err error
		if tc != nil {
			v, err = ex.applyTernFn(n, l.Get(i), r.Get(i), tc.Get(i))
		} else {
			v, err = ex.applyBinFn(n, l.Get(i), r.Get(i))
		}
		if err != nil {
			xdm.PutItems(out)
			return nil, ex.errf(n, "%v", err)
		}
		out[i] = v
	}
	return in.withColumn(n.Res, xdm.FromItemsOwned(out)), nil
}

// typedBinOp evaluates the arithmetic/comparison kernels over flat
// columns without boxing a single Item: integer×integer arithmetic and
// comparisons (the value-join enumeration kernels of Q8/Q9-class plans),
// and boolean×boolean conjunction/disjunction. ok=false means no typed
// kernel applies and the caller should run the boxed loop. The kernels
// replicate xdm.Arith/CompareValue exactly: integer comparisons go
// through the double projection, div yields a double, idiv/mod report
// the xdm division-by-zero error.
func (ex *Exec) typedBinOp(n *algebra.Node, l, r *xdm.Column) (*xdm.Column, bool, error) {
	if lb, ok := l.Bools(); ok {
		rb, ok := r.Bools()
		if !ok {
			return nil, false, nil
		}
		var word func(a, b int64) int64
		switch n.BFn {
		case algebra.BAnd:
			word = func(a, b int64) int64 { return a & b }
		case algebra.BOr:
			word = func(a, b int64) int64 { return a | b }
		default:
			return nil, false, nil
		}
		out := xdm.GetInts(len(lb))
		for i := range lb {
			if i&(probeChunk-1) == 0 {
				if err := ex.CheckCancel(); err != nil {
					xdm.PutInts(out)
					return nil, true, err
				}
			}
			out[i] = word(lb[i], rb[i])
		}
		return xdm.BoolColumn(out), true, nil
	}
	li, ok := l.Ints()
	if !ok {
		return nil, false, nil
	}
	ri, ok := r.Ints()
	if !ok {
		return nil, false, nil
	}
	poll := func(i int) error {
		if i&(probeChunk-1) == 0 {
			return ex.CheckCancel()
		}
		return nil
	}
	switch n.BFn {
	case algebra.BArithAdd, algebra.BArithSub, algebra.BArithMul:
		out := xdm.GetInts(len(li))
		for i := range li {
			if err := poll(i); err != nil {
				xdm.PutInts(out)
				return nil, true, err
			}
			switch n.BFn {
			case algebra.BArithAdd:
				out[i] = li[i] + ri[i]
			case algebra.BArithSub:
				out[i] = li[i] - ri[i]
			default:
				out[i] = li[i] * ri[i]
			}
		}
		return xdm.IntColumn(out), true, nil
	case algebra.BArithIDiv, algebra.BArithMod:
		out := xdm.GetInts(len(li))
		for i := range li {
			if err := poll(i); err != nil {
				xdm.PutInts(out)
				return nil, true, err
			}
			if ri[i] == 0 {
				xdm.PutInts(out)
				return nil, true, ex.errf(n, "%v", fmt.Errorf("xdm: division by zero"))
			}
			if n.BFn == algebra.BArithIDiv {
				out[i] = li[i] / ri[i]
			} else {
				out[i] = li[i] % ri[i]
			}
		}
		return xdm.IntColumn(out), true, nil
	case algebra.BArithDiv:
		out := xdm.GetFloats(len(li))
		for i := range li {
			if err := poll(i); err != nil {
				xdm.PutFloats(out)
				return nil, true, err
			}
			out[i] = float64(li[i]) / float64(ri[i])
		}
		return xdm.DoubleColumn(out), true, nil
	case algebra.BCmpGen, algebra.BCmpGenJoin, algebra.BCmpVal:
		out := xdm.GetInts(len(li))
		for i := range li {
			if err := poll(i); err != nil {
				xdm.PutInts(out)
				return nil, true, err
			}
			af, bf := float64(li[i]), float64(ri[i])
			var v bool
			switch n.Cmp {
			case xdm.CmpEq:
				v = af == bf
			case xdm.CmpNe:
				v = af != bf
			case xdm.CmpLt:
				v = af < bf
			case xdm.CmpLe:
				v = af <= bf
			case xdm.CmpGt:
				v = af > bf
			default:
				v = af >= bf
			}
			if v {
				out[i] = 1
			} else {
				out[i] = 0
			}
		}
		return xdm.BoolColumn(out), true, nil
	case algebra.BCmpGenErr:
		// Integer pairs are always comparable: the error witness is
		// constant false.
		out := xdm.GetInts(len(li))
		for i := range out {
			out[i] = 0
		}
		return xdm.BoolColumn(out), true, nil
	default:
		return nil, false, nil
	}
}

// ApplyBin evaluates one OpBinOp row — the kernel evalBinOp maps over its
// input, exported for morsel-wise evaluation by the parallel executor.
// Safe for concurrent use (it only reads the store).
func (ex *Exec) ApplyBin(n *algebra.Node, a, b xdm.Item) (xdm.Item, error) {
	return ex.applyBinFn(n, a, b)
}

// ApplyTern is ApplyBin for ternary functions.
func (ex *Exec) ApplyTern(n *algebra.Node, a, b, c xdm.Item) (xdm.Item, error) {
	return ex.applyTernFn(n, a, b, c)
}

// ApplyUn evaluates one OpMap1 row; safe for concurrent use.
func (ex *Exec) ApplyUn(n *algebra.Node, it xdm.Item) (xdm.Item, error) {
	return ex.applyUnFn(n, it)
}

// applyTernFn evaluates ternary item functions.
func (ex *Exec) applyTernFn(n *algebra.Node, a, b, c xdm.Item) (xdm.Item, error) {
	switch n.BFn {
	case algebra.BSubstr3:
		start, err := b.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		length, err := c.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewString(substring(a.StringValue(), start, length, true)), nil
	default:
		return xdm.Item{}, ex.errf(n, "unknown ternary function")
	}
}

func (ex *Exec) applyBinFn(n *algebra.Node, a, b xdm.Item) (xdm.Item, error) {
	switch n.BFn {
	case algebra.BArithAdd, algebra.BArithSub, algebra.BArithMul,
		algebra.BArithDiv, algebra.BArithIDiv, algebra.BArithMod:
		a2, err := coerceArith(a)
		if err != nil {
			return xdm.Item{}, err
		}
		b2, err := coerceArith(b)
		if err != nil {
			return xdm.Item{}, err
		}
		op := map[algebra.BinFn]xdm.ArithOp{
			algebra.BArithAdd: xdm.OpAdd, algebra.BArithSub: xdm.OpSub,
			algebra.BArithMul: xdm.OpMul, algebra.BArithDiv: xdm.OpDiv,
			algebra.BArithIDiv: xdm.OpIDiv, algebra.BArithMod: xdm.OpMod,
		}[n.BFn]
		return xdm.Arith(a2, b2, op)
	case algebra.BCmpGen:
		ok, err := xdm.CompareGeneral(a, b, n.Cmp)
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewBool(ok), nil
	case algebra.BCmpGenJoin:
		// Value-join pair enumeration: incomparable pairs do not match
		// here; BCmpGenErr flags them so the compiler can raise the type
		// error for iterations in which no true pair exists.
		ok, err := xdm.CompareGeneral(a, b, n.Cmp)
		if err != nil {
			return xdm.False, nil
		}
		return xdm.NewBool(ok), nil
	case algebra.BCmpGenErr:
		_, err := xdm.CompareGeneral(a, b, n.Cmp)
		return xdm.NewBool(err != nil), nil
	case algebra.BCmpVal:
		ok, err := xdm.CompareValue(a, b, n.Cmp)
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewBool(ok), nil
	case algebra.BNodeBefore:
		if !a.IsNode() || !b.IsNode() {
			return xdm.Item{}, ex.errf(n, "node comparison over atomic value")
		}
		return xdm.NewBool(a.N.Before(b.N)), nil
	case algebra.BNodeIs:
		if !a.IsNode() || !b.IsNode() {
			return xdm.Item{}, ex.errf(n, "node comparison over atomic value")
		}
		return xdm.NewBool(a.N == b.N), nil
	case algebra.BAnd:
		return xdm.NewBool(a.Bool() && b.Bool()), nil
	case algebra.BOr:
		return xdm.NewBool(a.Bool() || b.Bool()), nil
	case algebra.BConcat:
		return xdm.NewString(a.StringValue() + b.StringValue()), nil
	case algebra.BContains:
		return xdm.NewBool(strings.Contains(a.StringValue(), b.StringValue())), nil
	case algebra.BStartsWith:
		return xdm.NewBool(strings.HasPrefix(a.StringValue(), b.StringValue())), nil
	case algebra.BEndsWith:
		return xdm.NewBool(strings.HasSuffix(a.StringValue(), b.StringValue())), nil
	case algebra.BSubstr2:
		start, err := b.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewString(substring(a.StringValue(), start, 0, false)), nil
	default:
		return xdm.Item{}, ex.errf(n, "unknown binary function")
	}
}

func (ex *Exec) evalMap1(n *algebra.Node, in *Table) (*Table, error) {
	arg := in.Col(n.LCol)
	rows := arg.Len()
	out := xdm.GetItems(rows)
	for i := 0; i < rows; i++ {
		if i&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				xdm.PutItems(out)
				return nil, err
			}
		}
		v, err := ex.applyUnFn(n, arg.Get(i))
		if err != nil {
			xdm.PutItems(out)
			return nil, err
		}
		out[i] = v
	}
	return in.withColumn(n.Res, xdm.FromItemsOwned(out)), nil
}

func (ex *Exec) applyUnFn(n *algebra.Node, it xdm.Item) (xdm.Item, error) {
	switch n.UFn {
	case algebra.UnAtomize:
		return ex.store.Atomize(it), nil
	case algebra.UnString:
		return xdm.NewString(ex.store.Atomize(it).StringValue()), nil
	case algebra.UnNumber:
		return xdm.NewDouble(ex.store.Atomize(it).NumberOrNaN()), nil
	case algebra.UnStringLength:
		return xdm.NewInt(int64(len([]rune(ex.store.Atomize(it).StringValue())))), nil
	case algebra.UnNot:
		if it.Kind != xdm.KBoolean {
			return xdm.Item{}, ex.errf(n, "not over non-boolean")
		}
		return xdm.NewBool(it.I == 0), nil
	case algebra.UnNeg:
		v, err := coerceArith(it)
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.Arith(xdm.NewInt(0), v, xdm.OpSub)
	case algebra.UnNameOf:
		if !it.IsNode() {
			return xdm.Item{}, ex.errf(n, "name() over atomic value")
		}
		return xdm.NewString(ex.store.NameOf(it.N)), nil
	case algebra.UnRoot:
		if !it.IsNode() {
			return xdm.Item{}, ex.errf(n, "root() over atomic value")
		}
		return xdm.NewNode(xdm.NodeID{Frag: it.N.Frag, Pre: 0}), nil
	case algebra.UnToDouble:
		f, err := it.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewDouble(f), nil
	case algebra.UnNormalizeSpace:
		return xdm.NewString(strings.Join(strings.Fields(ex.store.Atomize(it).StringValue()), " ")), nil
	case algebra.UnUpperCase:
		return xdm.NewString(strings.ToUpper(ex.store.Atomize(it).StringValue())), nil
	case algebra.UnLowerCase:
		return xdm.NewString(strings.ToLower(ex.store.Atomize(it).StringValue())), nil
	case algebra.UnRound, algebra.UnFloor, algebra.UnCeiling, algebra.UnAbs:
		return roundingFn(n.UFn, it)
	default:
		return xdm.Item{}, ex.errf(n, "unknown unary function")
	}
}

// --- Grouped aggregation ---

type aggGroup struct {
	key   int64
	count int64
	sum   float64
	allI  bool
	best  xdm.Item
	hasB  bool
	// EBV state
	nodes   int
	atomics int
	first   xdm.Item
	// strjoin state
	pairs []posItem
}

type posItem struct {
	pos  int64
	item xdm.Item
}

func (ex *Exec) evalAggr(n *algebra.Node, in *Table) (*Table, error) {
	rows := in.NumRows()
	var part, pos []int64
	var val *xdm.Column
	if n.Part != "" {
		part = iterInts(in.Col(n.Part))
	}
	if n.Col != "" {
		val = in.Col(n.Col)
	}
	if n.AFn == algebra.AggrStrJoin {
		pos = iterInts(in.Col("pos"))
	}
	groups := make(map[int64]*aggGroup)
	var order []int64
	get := func(k int64) *aggGroup {
		g, ok := groups[k]
		if !ok {
			g = &aggGroup{key: k, allI: true}
			groups[k] = g
			order = append(order, k)
		}
		return g
	}
	for r := 0; r < rows; r++ {
		if r&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		k := int64(0)
		if part != nil {
			k = part[r]
		}
		g := get(k)
		g.count++
		var v xdm.Item
		if val != nil {
			v = val.Get(r)
		}
		switch n.AFn {
		case algebra.AggrCount:
			// count only needs the row
		case algebra.AggrSum, algebra.AggrAvg:
			c, err := coerceArith(v)
			if err != nil {
				return nil, ex.errf(n, "%s: %v", n.AFn, err)
			}
			if !c.Kind.IsNumeric() {
				return nil, ex.errf(n, "%s over non-numeric %s", n.AFn, c.Kind)
			}
			if c.Kind != xdm.KInteger {
				g.allI = false
			}
			f, _ := c.AsDouble()
			g.sum += f
		case algebra.AggrMax, algebra.AggrMin:
			c, err := coerceArith(v)
			if err != nil {
				return nil, ex.errf(n, "%s: %v", n.AFn, err)
			}
			if !g.hasB {
				g.best, g.hasB = c, true
				break
			}
			cv := xdm.OrderCompare(c, g.best)
			if (n.AFn == algebra.AggrMax && cv > 0) || (n.AFn == algebra.AggrMin && cv < 0) {
				g.best = c
			}
		case algebra.AggrEbv:
			if v.IsNode() {
				g.nodes++
			} else {
				g.atomics++
				g.first = v
			}
		case algebra.AggrStrJoin:
			g.pairs = append(g.pairs, posItem{pos: pos[r], item: v})
		}
	}
	// Emit one row per group in first-occurrence order.
	cols := n.Schema()
	t := NewTable(cols)
	var keys []int64
	var rb xdm.ColumnBuilder
	for _, k := range order {
		g := groups[k]
		var res xdm.Item
		switch n.AFn {
		case algebra.AggrCount:
			res = xdm.NewInt(g.count)
		case algebra.AggrSum:
			if g.allI {
				res = xdm.NewInt(int64(g.sum))
			} else {
				res = xdm.NewDouble(g.sum)
			}
		case algebra.AggrAvg:
			res = xdm.NewDouble(g.sum / float64(g.count))
		case algebra.AggrMax, algebra.AggrMin:
			res = g.best
		case algebra.AggrEbv:
			switch {
			case g.atomics == 0:
				res = xdm.True // non-empty group of nodes
			case g.nodes == 0 && g.atomics == 1:
				b, err := xdm.EffectiveBooleanValue([]xdm.Item{g.first})
				if err != nil {
					return nil, ex.errf(n, "%v", err)
				}
				res = xdm.NewBool(b)
			default:
				return nil, ex.errf(n, "effective boolean value of a mixed multi-item sequence")
			}
		case algebra.AggrStrJoin:
			sort.SliceStable(g.pairs, func(a, b int) bool { return g.pairs[a].pos < g.pairs[b].pos })
			parts := make([]string, len(g.pairs))
			for i, p := range g.pairs {
				parts[i] = ex.store.Atomize(p.item).StringValue()
			}
			res = xdm.NewString(strings.Join(parts, n.Name))
		}
		if n.Part != "" {
			keys = append(keys, k)
		}
		rb.Append(res)
	}
	if n.Part != "" {
		t.Data[0] = xdm.IntColumn(keys)
		t.Data[1] = rb.Finish()
	} else {
		t.Data[0] = rb.Finish()
	}
	return t, nil
}

// --- Node construction ---

func (ex *Exec) evalElem(n *algebra.Node, loop, content *Table) (*Table, error) {
	iters := iterInts(content.Col("iter"))
	poss := iterInts(content.Col("pos"))
	items := content.Col("item")
	byIter := make(map[int64][]posItem, loop.NumRows())
	for r := range iters {
		byIter[iters[r]] = append(byIter[iters[r]], posItem{pos: poss[r], item: items.Get(r)})
	}
	loopIter := iterInts(loop.Col("iter"))
	outIter := make([]int64, 0, len(loopIter))
	outItem := make([]xdm.NodeID, 0, len(loopIter))
	for _, li := range loopIter {
		rowsFor := byIter[li]
		sort.SliceStable(rowsFor, func(a, b int) bool { return rowsFor[a].pos < rowsFor[b].pos })
		b := xmltree.NewBuilder()
		b.StartElem(n.Name)
		seq := make([]xdm.Item, len(rowsFor))
		for i, p := range rowsFor {
			seq[i] = p.item
		}
		if err := xmltree.AppendContent(ex.store, b, n.Name, seq); err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		id := ex.store.Add(b.Close())
		outIter = append(outIter, li)
		outItem = append(outItem, xdm.NodeID{Frag: id, Pre: 0})
	}
	t := NewTable([]string{"iter", "item"})
	t.Data[0] = xdm.IntColumn(outIter)
	t.Data[1] = xdm.NodeColumn(outItem)
	return t, nil
}

func (ex *Exec) evalAttr(n *algebra.Node, in *Table) (*Table, error) {
	vals := in.Col(n.Col)
	rows := vals.Len()
	outItem := xdm.GetNodes(rows)
	for i := 0; i < rows; i++ {
		frag := xmltree.NewAttrFragment(n.Name, ex.store.Atomize(vals.Get(i)).StringValue())
		id := ex.store.Add(frag)
		outItem[i] = xdm.NodeID{Frag: id, Pre: 0}
	}
	t := NewTable([]string{"iter", "item"})
	t.Data[0] = in.Col("iter") // aliases the input iter column
	t.Data[1] = xdm.NodeColumn(outItem)
	return t, nil
}

const maxRangeSize = 10_000_000

func (ex *Exec) evalRange(n *algebra.Node, in *Table) (*Table, error) {
	iters := iterInts(in.Col("iter"))
	los := in.Col(n.LCol)
	his := in.Col(n.RCol)
	var outIter, outPos, outItem []int64
	total := 0
	for r := range iters {
		lo, err := los.Get(r).AsInteger()
		if err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		hi, err := his.Get(r).AsInteger()
		if err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		if hi < lo {
			continue
		}
		if total += int(hi - lo + 1); total > maxRangeSize {
			return nil, ex.errf(n, "range result larger than %d items", maxRangeSize)
		}
		for i := lo; i <= hi; i++ {
			outIter = append(outIter, iters[r])
			outPos = append(outPos, i-lo+1)
			outItem = append(outItem, i)
		}
	}
	t := NewTable([]string{"iter", "pos", "item"})
	t.Data[0] = xdm.IntColumn(outIter)
	t.Data[1] = xdm.IntColumn(outPos)
	t.Data[2] = xdm.IntColumn(outItem)
	return t, nil
}

func (ex *Exec) evalCheckCard(n *algebra.Node, ins []*Table) (*Table, error) {
	in := ins[0]
	counts := make(map[int64]int, in.NumRows())
	for _, k := range iterInts(in.Col(n.Col)) {
		counts[k]++
	}
	check := func(c int) error {
		if c < n.Min {
			return ex.errf(n, "sequence with %d items where at least %d required", c, n.Min)
		}
		if n.Max == 0 && c > 0 {
			// Max 0 is the error-witness pattern: any row proves a
			// dynamic error the relational mapping deferred.
			return ex.errf(n, "dynamic error witnessed (e.g. comparison of incomparable values)")
		}
		if n.Max >= 0 && c > n.Max {
			return ex.errf(n, "sequence with %d items where at most %d allowed", c, n.Max)
		}
		return nil
	}
	if len(ins) == 2 {
		for _, k := range iterInts(ins[1].Col(n.Col)) {
			if err := check(counts[k]); err != nil {
				return nil, err
			}
		}
	} else {
		for _, c := range counts {
			if err := check(c); err != nil {
				return nil, err
			}
		}
	}
	return in, nil
}

// roundingFn implements fn:round/floor/ceiling/abs with the integer fast
// path (integers stay integers).
func roundingFn(fn algebra.UnFn, it xdm.Item) (xdm.Item, error) {
	v, err := coerceArith(it)
	if err != nil {
		return xdm.Item{}, err
	}
	if v.Kind == xdm.KInteger {
		if fn == algebra.UnAbs && v.I < 0 {
			return xdm.NewInt(-v.I), nil
		}
		return v, nil
	}
	if !v.Kind.IsNumeric() {
		return xdm.Item{}, fmt.Errorf("engine: %s over non-numeric %s", "rounding", v.Kind)
	}
	f := v.F
	switch fn {
	case algebra.UnRound:
		return xdm.NewDouble(math.Floor(f + 0.5)), nil // round half up, per fn:round
	case algebra.UnFloor:
		return xdm.NewDouble(math.Floor(f)), nil
	case algebra.UnCeiling:
		return xdm.NewDouble(math.Ceil(f)), nil
	default:
		return xdm.NewDouble(math.Abs(f)), nil
	}
}

// substring implements the fn:substring positional rules: characters at
// 1-based positions p with round(start) <= p (< round(start)+round(len)
// when a length is given). NaN bounds select nothing.
func substring(s string, start, length float64, hasLen bool) string {
	runes := []rune(s)
	if math.IsNaN(start) || (hasLen && math.IsNaN(length)) {
		return ""
	}
	lo := math.Floor(start + 0.5)
	hi := math.Inf(1)
	if hasLen {
		hi = lo + math.Floor(length+0.5)
	}
	var sb strings.Builder
	for i, r := range runes {
		p := float64(i + 1)
		if p >= lo && p < hi {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
