package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/algebra"
	"repro/internal/xdm"
	"repro/internal/xmltree"
)

// coerceArith applies the arithmetic untypedAtomic→double coercion.
func coerceArith(it xdm.Item) (xdm.Item, error) {
	if it.Kind == xdm.KUntyped {
		f, err := it.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewDouble(f), nil
	}
	return it, nil
}

func (ex *Exec) evalBinOp(n *algebra.Node, in *Table) (*Table, error) {
	l, r := in.Col(n.LCol), in.Col(n.RCol)
	var tc []xdm.Item
	if n.TCol != "" {
		tc = in.Col(n.TCol)
	}
	out := make([]xdm.Item, in.NumRows())
	for i := range out {
		if i&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		var v xdm.Item
		var err error
		if tc != nil {
			v, err = ex.applyTernFn(n, l[i], r[i], tc[i])
		} else {
			v, err = ex.applyBinFn(n, l[i], r[i])
		}
		if err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		out[i] = v
	}
	return in.withColumn(n.Res, out), nil
}

// ApplyBin evaluates one OpBinOp row — the kernel evalBinOp maps over its
// input, exported for morsel-wise evaluation by the parallel executor.
// Safe for concurrent use (it only reads the store).
func (ex *Exec) ApplyBin(n *algebra.Node, a, b xdm.Item) (xdm.Item, error) {
	return ex.applyBinFn(n, a, b)
}

// ApplyTern is ApplyBin for ternary functions.
func (ex *Exec) ApplyTern(n *algebra.Node, a, b, c xdm.Item) (xdm.Item, error) {
	return ex.applyTernFn(n, a, b, c)
}

// ApplyUn evaluates one OpMap1 row; safe for concurrent use.
func (ex *Exec) ApplyUn(n *algebra.Node, it xdm.Item) (xdm.Item, error) {
	return ex.applyUnFn(n, it)
}

// applyTernFn evaluates ternary item functions.
func (ex *Exec) applyTernFn(n *algebra.Node, a, b, c xdm.Item) (xdm.Item, error) {
	switch n.BFn {
	case algebra.BSubstr3:
		start, err := b.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		length, err := c.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewString(substring(a.StringValue(), start, length, true)), nil
	default:
		return xdm.Item{}, ex.errf(n, "unknown ternary function")
	}
}

func (ex *Exec) applyBinFn(n *algebra.Node, a, b xdm.Item) (xdm.Item, error) {
	switch n.BFn {
	case algebra.BArithAdd, algebra.BArithSub, algebra.BArithMul,
		algebra.BArithDiv, algebra.BArithIDiv, algebra.BArithMod:
		a2, err := coerceArith(a)
		if err != nil {
			return xdm.Item{}, err
		}
		b2, err := coerceArith(b)
		if err != nil {
			return xdm.Item{}, err
		}
		op := map[algebra.BinFn]xdm.ArithOp{
			algebra.BArithAdd: xdm.OpAdd, algebra.BArithSub: xdm.OpSub,
			algebra.BArithMul: xdm.OpMul, algebra.BArithDiv: xdm.OpDiv,
			algebra.BArithIDiv: xdm.OpIDiv, algebra.BArithMod: xdm.OpMod,
		}[n.BFn]
		return xdm.Arith(a2, b2, op)
	case algebra.BCmpGen:
		ok, err := xdm.CompareGeneral(a, b, n.Cmp)
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewBool(ok), nil
	case algebra.BCmpGenJoin:
		// Value-join pair enumeration: incomparable pairs do not match
		// here; BCmpGenErr flags them so the compiler can raise the type
		// error for iterations in which no true pair exists.
		ok, err := xdm.CompareGeneral(a, b, n.Cmp)
		if err != nil {
			return xdm.False, nil
		}
		return xdm.NewBool(ok), nil
	case algebra.BCmpGenErr:
		_, err := xdm.CompareGeneral(a, b, n.Cmp)
		return xdm.NewBool(err != nil), nil
	case algebra.BCmpVal:
		ok, err := xdm.CompareValue(a, b, n.Cmp)
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewBool(ok), nil
	case algebra.BNodeBefore:
		if !a.IsNode() || !b.IsNode() {
			return xdm.Item{}, ex.errf(n, "node comparison over atomic value")
		}
		return xdm.NewBool(a.N.Before(b.N)), nil
	case algebra.BNodeIs:
		if !a.IsNode() || !b.IsNode() {
			return xdm.Item{}, ex.errf(n, "node comparison over atomic value")
		}
		return xdm.NewBool(a.N == b.N), nil
	case algebra.BAnd:
		return xdm.NewBool(a.Bool() && b.Bool()), nil
	case algebra.BOr:
		return xdm.NewBool(a.Bool() || b.Bool()), nil
	case algebra.BConcat:
		return xdm.NewString(a.StringValue() + b.StringValue()), nil
	case algebra.BContains:
		return xdm.NewBool(strings.Contains(a.StringValue(), b.StringValue())), nil
	case algebra.BStartsWith:
		return xdm.NewBool(strings.HasPrefix(a.StringValue(), b.StringValue())), nil
	case algebra.BEndsWith:
		return xdm.NewBool(strings.HasSuffix(a.StringValue(), b.StringValue())), nil
	case algebra.BSubstr2:
		start, err := b.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewString(substring(a.StringValue(), start, 0, false)), nil
	default:
		return xdm.Item{}, ex.errf(n, "unknown binary function")
	}
}

func (ex *Exec) evalMap1(n *algebra.Node, in *Table) (*Table, error) {
	arg := in.Col(n.LCol)
	out := make([]xdm.Item, in.NumRows())
	for i, it := range arg {
		if i&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		v, err := ex.applyUnFn(n, it)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return in.withColumn(n.Res, out), nil
}

func (ex *Exec) applyUnFn(n *algebra.Node, it xdm.Item) (xdm.Item, error) {
	switch n.UFn {
	case algebra.UnAtomize:
		return ex.store.Atomize(it), nil
	case algebra.UnString:
		return xdm.NewString(ex.store.Atomize(it).StringValue()), nil
	case algebra.UnNumber:
		return xdm.NewDouble(ex.store.Atomize(it).NumberOrNaN()), nil
	case algebra.UnStringLength:
		return xdm.NewInt(int64(len([]rune(ex.store.Atomize(it).StringValue())))), nil
	case algebra.UnNot:
		if it.Kind != xdm.KBoolean {
			return xdm.Item{}, ex.errf(n, "not over non-boolean")
		}
		return xdm.NewBool(it.I == 0), nil
	case algebra.UnNeg:
		v, err := coerceArith(it)
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.Arith(xdm.NewInt(0), v, xdm.OpSub)
	case algebra.UnNameOf:
		if !it.IsNode() {
			return xdm.Item{}, ex.errf(n, "name() over atomic value")
		}
		return xdm.NewString(ex.store.NameOf(it.N)), nil
	case algebra.UnRoot:
		if !it.IsNode() {
			return xdm.Item{}, ex.errf(n, "root() over atomic value")
		}
		return xdm.NewNode(xdm.NodeID{Frag: it.N.Frag, Pre: 0}), nil
	case algebra.UnToDouble:
		f, err := it.AsDouble()
		if err != nil {
			return xdm.Item{}, err
		}
		return xdm.NewDouble(f), nil
	case algebra.UnNormalizeSpace:
		return xdm.NewString(strings.Join(strings.Fields(ex.store.Atomize(it).StringValue()), " ")), nil
	case algebra.UnUpperCase:
		return xdm.NewString(strings.ToUpper(ex.store.Atomize(it).StringValue())), nil
	case algebra.UnLowerCase:
		return xdm.NewString(strings.ToLower(ex.store.Atomize(it).StringValue())), nil
	case algebra.UnRound, algebra.UnFloor, algebra.UnCeiling, algebra.UnAbs:
		return roundingFn(n.UFn, it)
	default:
		return xdm.Item{}, ex.errf(n, "unknown unary function")
	}
}

// --- Grouped aggregation ---

type aggGroup struct {
	key   int64
	count int64
	sum   float64
	allI  bool
	best  xdm.Item
	hasB  bool
	// EBV state
	nodes   int
	atomics int
	first   xdm.Item
	// strjoin state
	pairs []posItem
}

type posItem struct {
	pos  int64
	item xdm.Item
}

func (ex *Exec) evalAggr(n *algebra.Node, in *Table) (*Table, error) {
	rows := in.NumRows()
	var part, val, pos []xdm.Item
	if n.Part != "" {
		part = in.Col(n.Part)
	}
	if n.Col != "" {
		val = in.Col(n.Col)
	}
	if n.AFn == algebra.AggrStrJoin {
		pos = in.Col("pos")
	}
	groups := make(map[int64]*aggGroup)
	var order []int64
	get := func(k int64) *aggGroup {
		g, ok := groups[k]
		if !ok {
			g = &aggGroup{key: k, allI: true}
			groups[k] = g
			order = append(order, k)
		}
		return g
	}
	for r := 0; r < rows; r++ {
		if r&(probeChunk-1) == 0 {
			if err := ex.CheckCancel(); err != nil {
				return nil, err
			}
		}
		k := int64(0)
		if part != nil {
			k = iterKey(part[r])
		}
		g := get(k)
		g.count++
		var v xdm.Item
		if val != nil {
			v = val[r]
		}
		switch n.AFn {
		case algebra.AggrCount:
			// count only needs the row
		case algebra.AggrSum, algebra.AggrAvg:
			c, err := coerceArith(v)
			if err != nil {
				return nil, ex.errf(n, "%s: %v", n.AFn, err)
			}
			if !c.Kind.IsNumeric() {
				return nil, ex.errf(n, "%s over non-numeric %s", n.AFn, c.Kind)
			}
			if c.Kind != xdm.KInteger {
				g.allI = false
			}
			f, _ := c.AsDouble()
			g.sum += f
		case algebra.AggrMax, algebra.AggrMin:
			c, err := coerceArith(v)
			if err != nil {
				return nil, ex.errf(n, "%s: %v", n.AFn, err)
			}
			if !g.hasB {
				g.best, g.hasB = c, true
				break
			}
			cv := xdm.OrderCompare(c, g.best)
			if (n.AFn == algebra.AggrMax && cv > 0) || (n.AFn == algebra.AggrMin && cv < 0) {
				g.best = c
			}
		case algebra.AggrEbv:
			if v.IsNode() {
				g.nodes++
			} else {
				g.atomics++
				g.first = v
			}
		case algebra.AggrStrJoin:
			g.pairs = append(g.pairs, posItem{pos: iterKey(pos[r]), item: v})
		}
	}
	// Emit one row per group in first-occurrence order.
	cols := n.Schema()
	t := NewTable(cols)
	var keyCol, resCol []xdm.Item
	for _, k := range order {
		g := groups[k]
		var res xdm.Item
		switch n.AFn {
		case algebra.AggrCount:
			res = xdm.NewInt(g.count)
		case algebra.AggrSum:
			if g.allI {
				res = xdm.NewInt(int64(g.sum))
			} else {
				res = xdm.NewDouble(g.sum)
			}
		case algebra.AggrAvg:
			res = xdm.NewDouble(g.sum / float64(g.count))
		case algebra.AggrMax, algebra.AggrMin:
			res = g.best
		case algebra.AggrEbv:
			switch {
			case g.atomics == 0:
				res = xdm.True // non-empty group of nodes
			case g.nodes == 0 && g.atomics == 1:
				b, err := xdm.EffectiveBooleanValue([]xdm.Item{g.first})
				if err != nil {
					return nil, ex.errf(n, "%v", err)
				}
				res = xdm.NewBool(b)
			default:
				return nil, ex.errf(n, "effective boolean value of a mixed multi-item sequence")
			}
		case algebra.AggrStrJoin:
			sort.SliceStable(g.pairs, func(a, b int) bool { return g.pairs[a].pos < g.pairs[b].pos })
			parts := make([]string, len(g.pairs))
			for i, p := range g.pairs {
				parts[i] = ex.store.Atomize(p.item).StringValue()
			}
			res = xdm.NewString(strings.Join(parts, n.Name))
		}
		if n.Part != "" {
			keyCol = append(keyCol, xdm.NewInt(k))
		}
		resCol = append(resCol, res)
	}
	if n.Part != "" {
		t.Data[0] = keyCol
		t.Data[1] = resCol
	} else {
		t.Data[0] = resCol
	}
	return t, nil
}

// --- Node construction ---

func (ex *Exec) evalElem(n *algebra.Node, loop, content *Table) (*Table, error) {
	iters := content.Col("iter")
	poss := content.Col("pos")
	items := content.Col("item")
	byIter := make(map[int64][]posItem, loop.NumRows())
	for r := range iters {
		k := iterKey(iters[r])
		byIter[k] = append(byIter[k], posItem{pos: iterKey(poss[r]), item: items[r]})
	}
	loopIter := loop.Col("iter")
	outIter := make([]xdm.Item, 0, len(loopIter))
	outItem := make([]xdm.Item, 0, len(loopIter))
	for _, li := range loopIter {
		k := iterKey(li)
		rowsFor := byIter[k]
		sort.SliceStable(rowsFor, func(a, b int) bool { return rowsFor[a].pos < rowsFor[b].pos })
		b := xmltree.NewBuilder()
		b.StartElem(n.Name)
		seq := make([]xdm.Item, len(rowsFor))
		for i, p := range rowsFor {
			seq[i] = p.item
		}
		if err := xmltree.AppendContent(ex.store, b, n.Name, seq); err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		id := ex.store.Add(b.Close())
		outIter = append(outIter, li)
		outItem = append(outItem, xdm.NewNode(xdm.NodeID{Frag: id, Pre: 0}))
	}
	t := NewTable([]string{"iter", "item"})
	t.Data[0] = outIter
	t.Data[1] = outItem
	return t, nil
}

func (ex *Exec) evalAttr(n *algebra.Node, in *Table) (*Table, error) {
	iters := in.Col("iter")
	vals := in.Col(n.Col)
	outItem := make([]xdm.Item, len(vals))
	for i, v := range vals {
		frag := xmltree.NewAttrFragment(n.Name, ex.store.Atomize(v).StringValue())
		id := ex.store.Add(frag)
		outItem[i] = xdm.NewNode(xdm.NodeID{Frag: id, Pre: 0})
	}
	t := NewTable([]string{"iter", "item"})
	t.Data[0] = iters
	t.Data[1] = outItem
	return t, nil
}

const maxRangeSize = 10_000_000

func (ex *Exec) evalRange(n *algebra.Node, in *Table) (*Table, error) {
	iters := in.Col("iter")
	los := in.Col(n.LCol)
	his := in.Col(n.RCol)
	var outIter, outPos, outItem []xdm.Item
	total := 0
	for r := range iters {
		lo, err := los[r].AsInteger()
		if err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		hi, err := his[r].AsInteger()
		if err != nil {
			return nil, ex.errf(n, "%v", err)
		}
		if hi < lo {
			continue
		}
		if total += int(hi - lo + 1); total > maxRangeSize {
			return nil, ex.errf(n, "range result larger than %d items", maxRangeSize)
		}
		for i := lo; i <= hi; i++ {
			outIter = append(outIter, iters[r])
			outPos = append(outPos, xdm.NewInt(i-lo+1))
			outItem = append(outItem, xdm.NewInt(i))
		}
	}
	t := NewTable([]string{"iter", "pos", "item"})
	t.Data[0] = outIter
	t.Data[1] = outPos
	t.Data[2] = outItem
	return t, nil
}

func (ex *Exec) evalCheckCard(n *algebra.Node, ins []*Table) (*Table, error) {
	in := ins[0]
	counts := make(map[int64]int, in.NumRows())
	for _, it := range in.Col(n.Col) {
		counts[iterKey(it)]++
	}
	check := func(c int) error {
		if c < n.Min {
			return ex.errf(n, "sequence with %d items where at least %d required", c, n.Min)
		}
		if n.Max == 0 && c > 0 {
			// Max 0 is the error-witness pattern: any row proves a
			// dynamic error the relational mapping deferred.
			return ex.errf(n, "dynamic error witnessed (e.g. comparison of incomparable values)")
		}
		if n.Max >= 0 && c > n.Max {
			return ex.errf(n, "sequence with %d items where at most %d allowed", c, n.Max)
		}
		return nil
	}
	if len(ins) == 2 {
		for _, it := range ins[1].Col(n.Col) {
			if err := check(counts[iterKey(it)]); err != nil {
				return nil, err
			}
		}
	} else {
		for _, c := range counts {
			if err := check(c); err != nil {
				return nil, err
			}
		}
	}
	return in, nil
}

// roundingFn implements fn:round/floor/ceiling/abs with the integer fast
// path (integers stay integers).
func roundingFn(fn algebra.UnFn, it xdm.Item) (xdm.Item, error) {
	v, err := coerceArith(it)
	if err != nil {
		return xdm.Item{}, err
	}
	if v.Kind == xdm.KInteger {
		if fn == algebra.UnAbs && v.I < 0 {
			return xdm.NewInt(-v.I), nil
		}
		return v, nil
	}
	if !v.Kind.IsNumeric() {
		return xdm.Item{}, fmt.Errorf("engine: %s over non-numeric %s", "rounding", v.Kind)
	}
	f := v.F
	switch fn {
	case algebra.UnRound:
		return xdm.NewDouble(math.Floor(f + 0.5)), nil // round half up, per fn:round
	case algebra.UnFloor:
		return xdm.NewDouble(math.Floor(f)), nil
	case algebra.UnCeiling:
		return xdm.NewDouble(math.Ceil(f)), nil
	default:
		return xdm.NewDouble(math.Abs(f)), nil
	}
}

// substring implements the fn:substring positional rules: characters at
// 1-based positions p with round(start) <= p (< round(start)+round(len)
// when a length is given). NaN bounds select nothing.
func substring(s string, start, length float64, hasLen bool) string {
	runes := []rune(s)
	if math.IsNaN(start) || (hasLen && math.IsNaN(length)) {
		return ""
	}
	lo := math.Floor(start + 0.5)
	hi := math.Inf(1)
	if hasLen {
		hi = lo + math.Floor(length+0.5)
	}
	var sb strings.Builder
	for i, r := range runes {
		p := float64(i + 1)
		if p >= lo && p < hi {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
