package interp

import (
	"strings"
	"testing"

	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// newTestInterp builds an interpreter over the paper's Figure 1 fragment
// plus any extra documents, binding $t-style variables via a let prefix in
// queries instead (the interpreter has no external variable API).
func newTestInterp(t *testing.T, docs map[string]string) *Interp {
	t.Helper()
	store := xmltree.NewStore()
	ids := make(map[string][]uint32, len(docs))
	for name, src := range docs {
		f, err := xmltree.ParseString(src, name, xmltree.ParseOptions{})
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		ids[name] = []uint32{store.Add(f)}
	}
	return New(store, ids)
}

// paperDocs returns the Figure 1 fragment as document "t.xml".
func paperDocs() map[string]string {
	return map[string]string{"t.xml": `<a><b><c/><d/></b><c/></a>`}
}

// evalXML evaluates a query and serializes the result.
func evalXML(t *testing.T, ip *Interp, q string) string {
	t.Helper()
	res, err := ip.EvalString(q)
	if err != nil {
		t.Fatalf("eval %q: %v", q, err)
	}
	s, err := res.SerializeXML()
	if err != nil {
		t.Fatalf("serialize %q: %v", q, err)
	}
	return s
}

func evalErr(t *testing.T, ip *Interp, q string) error {
	t.Helper()
	_, err := ip.EvalString(q)
	if err == nil {
		t.Fatalf("eval %q: expected error", q)
	}
	return err
}

const bindT = `let $t := doc("t.xml")/a return `

func TestPaperExpression1DocumentOrder(t *testing.T) {
	ip := newTestInterp(t, paperDocs())
	// $t//(c|d) returns (c1, d, c2) in document order (Section 1).
	got := evalXML(t, ip, bindT+`$t//(c|d)`)
	if got != "<c/><d/><c/>" {
		t.Errorf("got %q", got)
	}
	// Counting distinguishes nothing, but order of c vs d does: check via
	// name() of the second node.
	got = evalXML(t, ip, bindT+`name(($t//(c|d))[2])`)
	if got != "d" {
		t.Errorf("second node in document order should be d, got %q", got)
	}
}

func TestPaperExpression3SequenceEstablishesDocOrder(t *testing.T) {
	ip := newTestInterp(t, paperDocs())
	q := bindT + `
		(let $b := $t//b, $d := $t//d,
		     $e := <e>{ $d, $b }</e>
		 return ($b << $d, $e/b << $e/d))`
	got := evalXML(t, ip, q)
	if got != "true false" {
		t.Errorf("Expression (3): got %q, want %q", got, "true false")
	}
}

func TestPaperExpression4PositionalFor(t *testing.T) {
	ip := newTestInterp(t, nil)
	got := evalXML(t, ip, `for $x at $p in ("a","b","c")
		return <e pos="{ $p }">{ $x }</e>`)
	want := `<e pos="1">a</e><e pos="2">b</e><e pos="3">c</e>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestPaperExpression5IterPreservesInnerOrder(t *testing.T) {
	ip := newTestInterp(t, nil)
	got := evalXML(t, ip, `for $x in (1,2) return ($x, $x * 10)`)
	if got != "1 10 2 20" {
		t.Errorf("got %q", got)
	}
}

func TestPaperExpression6NestedIteration(t *testing.T) {
	ip := newTestInterp(t, nil)
	got := evalXML(t, ip, `for $x in (1,2) for $y in (10,20) return <a>{ $x, $y }</a>`)
	want := "<a>1 10</a><a>1 20</a><a>2 10</a><a>2 20</a>"
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestLetUnfoldingExample(t *testing.T) {
	// §2.2: let $c2 := $t//c[2] return unordered { $c2 } must return c2
	// deterministically (the second c in document order).
	ip := newTestInterp(t, map[string]string{
		"t.xml": `<a><b><c i="1"/><d/></b><c i="2"/></a>`,
	})
	// Note ($t//c)[2], not $t//c[2]: the predicate in the paper's prose is
	// meant to select the second c overall; attached to the step it would
	// filter per context node and select nothing.
	got := evalXML(t, ip, bindT+`(let $c2 := ($t//c)[2] return string(unordered { $c2 } /@i))`)
	if got != "2" {
		t.Errorf("let-bound unordered{} must stay deterministic: got %q", got)
	}
}

func TestPositionalPredicates(t *testing.T) {
	ip := newTestInterp(t, map[string]string{
		"b.xml": `<r><x>1</x><x>2</x><x>3</x></r>`,
	})
	bind := `let $r := doc("b.xml")/r return `
	if got := evalXML(t, ip, bind+`$r/x[1]`); got != "<x>1</x>" {
		t.Errorf("[1]: %q", got)
	}
	if got := evalXML(t, ip, bind+`$r/x[last()]`); got != "<x>3</x>" {
		t.Errorf("[last()]: %q", got)
	}
	if got := evalXML(t, ip, bind+`$r/x[position() = 2]`); got != "<x>2</x>" {
		t.Errorf("[position()=2]: %q", got)
	}
	if got := evalXML(t, ip, bind+`$r/x[. > 1]`); got != "<x>2</x><x>3</x>" {
		t.Errorf("value predicate: %q", got)
	}
}

func TestPerContextPositionalSemantics(t *testing.T) {
	// bidder[1] selects the first bidder of EACH auction.
	ip := newTestInterp(t, map[string]string{
		"a.xml": `<as><a><b>1</b><b>2</b></a><a><b>3</b></a></as>`,
	})
	got := evalXML(t, ip, `let $a := doc("a.xml") return $a/as/a/b[1]`)
	if got != "<b>1</b><b>3</b>" {
		t.Errorf("per-context positional: %q", got)
	}
}

func TestStepDeduplication(t *testing.T) {
	// Overlapping contexts: descendant from nested nodes must dedup.
	ip := newTestInterp(t, map[string]string{
		"n.xml": `<r><s><s><x/></s></s></r>`,
	})
	got := evalXML(t, ip, `count(doc("n.xml")//s//x)`)
	if got != "1" {
		t.Errorf("dedup: count = %q", got)
	}
}

func TestGeneralComparisonExistential(t *testing.T) {
	ip := newTestInterp(t, nil)
	if got := evalXML(t, ip, `(1, 2) = (2, 3)`); got != "true" {
		t.Errorf("= : %q", got)
	}
	if got := evalXML(t, ip, `(1, 2) = (3, 4)`); got != "false" {
		t.Errorf("= disjoint: %q", got)
	}
	// Famous non-transitivity: both < and > true for overlapping ranges.
	if got := evalXML(t, ip, `((1, 5) < (3), (1, 5) > (3))`); got != "true true" {
		t.Errorf("< and >: %q", got)
	}
	if got := evalXML(t, ip, `() = (1)`); got != "false" {
		t.Errorf("empty =: %q", got)
	}
}

func TestUntypedCoercionThroughNodes(t *testing.T) {
	ip := newTestInterp(t, map[string]string{
		"p.xml": `<p income="52000"><i>9</i></p>`,
	})
	bind := `let $p := doc("p.xml")/p return `
	if got := evalXML(t, ip, bind+`$p/@income > 5000 * $p/i`); got != "true" {
		t.Errorf("income > 5000*i: %q", got)
	}
	if got := evalXML(t, ip, bind+`$p/@income > 6000 * $p/i`); got != "false" {
		t.Errorf("income > 6000*i: %q", got)
	}
}

func TestQuantifiers(t *testing.T) {
	ip := newTestInterp(t, nil)
	if got := evalXML(t, ip, `some $x in (1, 2, 3) satisfies $x > 2`); got != "true" {
		t.Errorf("some: %q", got)
	}
	if got := evalXML(t, ip, `every $x in (1, 2, 3) satisfies $x > 0`); got != "true" {
		t.Errorf("every: %q", got)
	}
	if got := evalXML(t, ip, `every $x in (1, 2, 3) satisfies $x > 1`); got != "false" {
		t.Errorf("every false: %q", got)
	}
	if got := evalXML(t, ip, `some $x in () satisfies $x`); got != "false" {
		t.Errorf("some empty: %q", got)
	}
	if got := evalXML(t, ip, `every $x in () satisfies $x`); got != "true" {
		t.Errorf("every empty: %q", got)
	}
	if got := evalXML(t, ip, `some $x in (1,2), $y in (10,20) satisfies $x * 10 = $y`); got != "true" {
		t.Errorf("two vars: %q", got)
	}
}

func TestAggregates(t *testing.T) {
	ip := newTestInterp(t, nil)
	for q, want := range map[string]string{
		`count((1, 2, 3))`:     "3",
		`count(())`:            "0",
		`sum((1, 2, 3))`:       "6",
		`sum(())`:              "0",
		`avg((1, 2, 3, 4))`:    "2.5",
		`max((1, 5, 3))`:       "5",
		`min((2.5, 1, 7))`:     "1",
		`count(avg(()))`:       "0",
		`max(("a", "c", "b"))`: "c",
		`sum((1.5, 2.5))`:      "4",
	} {
		if got := evalXML(t, ip, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestOrderBy(t *testing.T) {
	ip := newTestInterp(t, nil)
	got := evalXML(t, ip, `for $x in (3, 1, 2) order by $x return $x`)
	if got != "1 2 3" {
		t.Errorf("ascending: %q", got)
	}
	got = evalXML(t, ip, `for $x in (3, 1, 2) order by $x descending return $x`)
	if got != "3 2 1" {
		t.Errorf("descending: %q", got)
	}
	got = evalXML(t, ip, `for $x in ("b", "a", "c") order by $x return $x`)
	if got != "a b c" {
		t.Errorf("strings: %q", got)
	}
	// empty least default; empty greatest.
	ip2 := newTestInterp(t, map[string]string{
		"o.xml": `<r><e k="2"/><e/><e k="1"/></r>`,
	})
	got = evalXML(t, ip2, `for $e in doc("o.xml")/r/e order by $e/@k return count($e/@k)`)
	if got != "0 1 1" {
		t.Errorf("empty least: %q", got)
	}
	got = evalXML(t, ip2, `for $e in doc("o.xml")/r/e order by $e/@k empty greatest return count($e/@k)`)
	if got != "1 1 0" {
		t.Errorf("empty greatest: %q", got)
	}
	// multiple keys, stability.
	got = evalXML(t, ip, `for $p in (3, 1, 2, 11) order by string-length(string($p)), $p descending return $p`)
	if got != "3 2 1 11" {
		t.Errorf("multi-key: %q", got)
	}
}

func TestSetOps(t *testing.T) {
	ip := newTestInterp(t, paperDocs())
	if got := evalXML(t, ip, bindT+`count($t//c | $t//d)`); got != "3" {
		t.Errorf("union: %q", got)
	}
	if got := evalXML(t, ip, bindT+`count($t//c union $t//c)`); got != "2" {
		t.Errorf("union dedup: %q", got)
	}
	if got := evalXML(t, ip, bindT+`count($t//* intersect $t//c)`); got != "2" {
		t.Errorf("intersect: %q", got)
	}
	if got := evalXML(t, ip, bindT+`count($t//* except $t//c)`); got != "2" {
		t.Errorf("except: %q", got)
	}
	// Union result is in document order regardless of operand order.
	if got := evalXML(t, ip, bindT+`name(($t//d | $t//c)[1])`); got != "c" {
		t.Errorf("union doc order: %q", got)
	}
}

func TestBuiltins(t *testing.T) {
	ip := newTestInterp(t, paperDocs())
	for q, want := range map[string]string{
		`empty(())`:                          "true",
		`empty((1))`:                         "false",
		`exists(())`:                         "false",
		`not(1 = 1)`:                         "false",
		`boolean("")`:                        "false",
		`string(42)`:                         "42",
		`string(())`:                         "",
		`number("4.5") * 2`:                  "9",
		`string-length("hello")`:             "5",
		`contains("auction gold", "gold")`:   "true",
		`starts-with("person0", "person")`:   "true",
		`concat("a", "b", "c")`:              "abc",
		`count(distinct-values((1, 2, 1)))`:  "2",
		`count(distinct-values(("a", "a")))`: "1",
		`zero-or-one(())`:                    "",
		`exactly-one(7)`:                     "7",
		`1 to 4`:                             "1 2 3 4",
		`count(2 to 1)`:                      "0",
		`7 idiv 2`:                           "3",
		`-(3 - 5)`:                           "2",
	} {
		if got := evalXML(t, ip, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
	evalErr(t, ip, `exactly-one(())`)
	evalErr(t, ip, `zero-or-one((1, 2))`)
	evalErr(t, ip, `one-or-more(())`)
	evalErr(t, ip, `nosuchfn(1)`)
}

func TestUserFunctions(t *testing.T) {
	ip := newTestInterp(t, nil)
	got := evalXML(t, ip, `declare function local:convert($v as xs:decimal?) as xs:decimal? { 2.0 * $v };
		local:convert(21)`)
	if got != "42" {
		t.Errorf("local:convert: %q", got)
	}
	// Functions are closed: they must not see caller variables.
	evalErr(t, ip, `declare function local:f($x) { $x + $hidden };
		let $hidden := 1 return local:f(1)`)
	// Arity mismatch.
	evalErr(t, ip, `declare function local:g($x) { $x }; local:g(1, 2)`)
	// Runaway recursion is cut off.
	evalErr(t, ip, `declare function local:r($x) { local:r($x) }; local:r(1)`)
}

func TestConstructors(t *testing.T) {
	ip := newTestInterp(t, paperDocs())
	got := evalXML(t, ip, `<items name="x">{ count((1, 2)) }</items>`)
	if got != `<items name="x">2</items>` {
		t.Errorf("constructed: %q", got)
	}
	// Copied nodes are deep copies; new fragment has fresh identity.
	got = evalXML(t, ip, bindT+`(let $e := <e>{ $t//b }</e> return ($e/b/c, $e/b is $t//b))`)
	if got != "<c/>false" {
		t.Errorf("copy semantics: %q", got)
	}
	// Adjacent atomics join with a space; nodes do not add separators.
	got = evalXML(t, ip, `<e>{ 1, 2, <x/>, 3 }</e>`)
	if got != "<e>1 2<x/>3</e>" {
		t.Errorf("content spacing: %q", got)
	}
	// Attribute value templates with several parts.
	got = evalXML(t, ip, `<e a="n={ 1 + 1 }!"/>`)
	if got != `<e a="n=2!"/>` {
		t.Errorf("AVT: %q", got)
	}
}

func TestIfAndLogic(t *testing.T) {
	ip := newTestInterp(t, nil)
	if got := evalXML(t, ip, `if (1 < 2) then "y" else "n"`); got != "y" {
		t.Errorf("if: %q", got)
	}
	if got := evalXML(t, ip, `(1 = 1 and 2 = 2, 1 = 2 or 1 = 1)`); got != "true true" {
		t.Errorf("logic: %q", got)
	}
	// EBV of node sequences.
	ip2 := newTestInterp(t, paperDocs())
	if got := evalXML(t, ip2, bindT+`if ($t//d) then "has-d" else "no-d"`); got != "has-d" {
		t.Errorf("EBV nodes: %q", got)
	}
}

func TestWhereFiltering(t *testing.T) {
	ip := newTestInterp(t, nil)
	got := evalXML(t, ip, `for $x in (1, 2, 3, 4) where $x mod 2 = 0 return $x`)
	if got != "2 4" {
		t.Errorf("where: %q", got)
	}
}

func TestSerializationErrors(t *testing.T) {
	ip := newTestInterp(t, map[string]string{"p.xml": `<p a="1"/>`})
	res, err := ip.EvalString(`doc("p.xml")/p/@a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.SerializeXML(); err == nil {
		t.Error("free-standing attribute serialization should fail")
	}
}

func TestDynamicErrors(t *testing.T) {
	ip := newTestInterp(t, paperDocs())
	for _, q := range []string{
		`$undefined`,
		`doc("missing.xml")`,
		`1 + "x"`,
		`("a", "b") + 1`,
		`"a" eq 1`,
		`1 is 2`,
		`(1, 2) << (3, 4)`,
		`1 | 2`,
		`sum(("a"))`,
		`1 idiv 0`,
		`string((1, 2))`,
	} {
		if _, err := ip.EvalString(q); err == nil {
			t.Errorf("eval %q: expected error", q)
		}
	}
}

func TestTextNodesAndAtomization(t *testing.T) {
	ip := newTestInterp(t, map[string]string{
		"m.xml": `<r><x>12</x><x>34</x></r>`,
	})
	if got := evalXML(t, ip, `sum(doc("m.xml")/r/x)`); got != "46" {
		t.Errorf("sum over nodes: %q", got)
	}
	if got := evalXML(t, ip, `doc("m.xml")/r/x/text()`); got != "1234" {
		t.Errorf("text(): %q", got)
	}
	if got := evalXML(t, ip, `string(doc("m.xml")/r)`); got != "1234" {
		t.Errorf("string value: %q", got)
	}
}

func TestResultSerializationEscaping(t *testing.T) {
	ip := newTestInterp(t, nil)
	if got := evalXML(t, ip, `"a < b & c"`); got != "a &lt; b &amp; c" {
		t.Errorf("escaping: %q", got)
	}
}

func TestLargeDocSmoke(t *testing.T) {
	// A wider document exercising multi-level paths.
	var sb strings.Builder
	sb.WriteString("<root>")
	for i := 0; i < 50; i++ {
		sb.WriteString("<grp><item><v>1</v></item><item><v>2</v></item></grp>")
	}
	sb.WriteString("</root>")
	ip := newTestInterp(t, map[string]string{"w.xml": sb.String()})
	if got := evalXML(t, ip, `count(doc("w.xml")//v)`); got != "100" {
		t.Errorf("count: %q", got)
	}
	if got := evalXML(t, ip, `sum(doc("w.xml")/root/grp/item/v)`); got != "150" {
		t.Errorf("sum: %q", got)
	}
}

func TestStringFunctions(t *testing.T) {
	ip := newTestInterp(t, nil)
	for q, want := range map[string]string{
		`substring("auction", 4)`:         "tion",
		`substring("auction", 4, 2)`:      "ti",
		`substring("gold", 0)`:            "gold",
		`substring("gold", 1.4, 1.8)`:     "go", // round(1.4)=1, round(1.8)=2 → positions 1,2
		`substring("gold", -1, 3)`:        "g",  // positions < round(-1)+round(3)=2
		`substring("héllo", 2, 2)`:        "él", // rune positions, not bytes
		`normalize-space("  a   b  c ")`:  "a b c",
		`upper-case("Gold")`:              "GOLD",
		`lower-case("GoLd")`:              "gold",
		`ends-with("person0", "0")`:       "true",
		`ends-with("person0", "1")`:       "false",
		`string-join(("a","b","c"), "-")`: "a-b-c",
		`string-join((), "-")`:            "",
		`round(2.5)`:                      "3",
		`round(-2.5)`:                     "-2", // round half toward +inf
		`floor(-2.1)`:                     "-3",
		`ceiling(-2.1)`:                   "-2",
		`abs(-7)`:                         "7",
		`round(5)`:                        "5", // integers stay integers
	} {
		if got := evalXML(t, ip, q); got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
}

func TestExternalVariableEvaluation(t *testing.T) {
	ip := newTestInterp(t, nil)
	m, err := xquery.Parse(`declare variable $x external; $x * 2`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ip.EvalWithVars(m, map[string][]xdm.Item{"x": {xdm.NewInt(21)}})
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res.SerializeXML(); s != "42" {
		t.Errorf("external var: %q", s)
	}
	if _, err := ip.Eval(m); err == nil {
		t.Error("unbound external variable must fail")
	}
	// Initialized declarations evaluate without normalization.
	m2, err := xquery.Parse(`declare variable $k := 3 + 4; $k`)
	if err != nil {
		t.Fatal(err)
	}
	res, err = ip.Eval(m2)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res.SerializeXML(); s != "7" {
		t.Errorf("initialized var: %q", s)
	}
}
