package interp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/xdm"
	"repro/internal/xquery"
)

const maxCallDepth = 256

func (st *evalState) evalFuncCall(e *xquery.FuncCall, en *env, c ctx) ([]xdm.Item, error) {
	// Prolog-declared functions (local:…).
	if fd, ok := st.funcs[e.Name]; ok {
		if len(e.Args) != len(fd.Params) {
			return nil, fmt.Errorf("interp: %s expects %d arguments, got %d", e.Name, len(fd.Params), len(e.Args))
		}
		if st.depth++; st.depth > maxCallDepth {
			return nil, fmt.Errorf("interp: call depth exceeded in %s", e.Name)
		}
		defer func() { st.depth-- }()
		// Function bodies see only their parameters (XQuery functions are
		// closed over the static context, not the caller's variables).
		var fnEnv *env
		for i, p := range fd.Params {
			v, err := st.eval(e.Args[i], en, c)
			if err != nil {
				return nil, err
			}
			fnEnv = fnEnv.bind(p.Name, v)
		}
		return st.eval(fd.Body, fnEnv, ctx{})
	}

	arg := func(i int) (xquery.Expr, error) {
		if i >= len(e.Args) {
			return nil, fmt.Errorf("interp: %s: missing argument %d", e.Name, i+1)
		}
		return e.Args[i], nil
	}
	evalArg := func(i int) ([]xdm.Item, error) {
		a, err := arg(i)
		if err != nil {
			return nil, err
		}
		return st.eval(a, en, c)
	}
	atomizeArg := func(i int) ([]xdm.Item, error) {
		a, err := arg(i)
		if err != nil {
			return nil, err
		}
		return st.atomize(a, en, c)
	}
	checkArity := func(n int) error {
		if len(e.Args) != n {
			return fmt.Errorf("interp: %s expects %d argument(s), got %d", e.Name, n, len(e.Args))
		}
		return nil
	}

	switch e.Name {
	case "doc":
		if err := checkArity(1); err != nil {
			return nil, err
		}
		v, err := atomizeArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 {
			return nil, fmt.Errorf("interp: doc() expects a single URI")
		}
		ids, ok := st.docs[v[0].StringValue()]
		if !ok {
			return nil, fmt.Errorf("interp: unknown document %q", v[0].StringValue())
		}
		out := make([]xdm.Item, len(ids))
		for i, id := range ids {
			out[i] = xdm.NewNode(xdm.NodeID{Frag: id, Pre: 0})
		}
		return out, nil

	case "count":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return []xdm.Item{xdm.NewInt(int64(len(v)))}, nil

	case "sum", "avg", "max", "min":
		return st.aggregate(e.Name, e, en, c)

	case "empty":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return []xdm.Item{xdm.NewBool(len(v) == 0)}, nil

	case "exists":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		return []xdm.Item{xdm.NewBool(len(v) > 0)}, nil

	case "not", "boolean":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBooleanValue(v)
		if err != nil {
			return nil, err
		}
		if e.Name == "not" {
			b = !b
		}
		return []xdm.Item{xdm.NewBool(b)}, nil

	case "true":
		return []xdm.Item{xdm.True}, nil
	case "false":
		return []xdm.Item{xdm.False}, nil

	case "string":
		if len(e.Args) == 0 {
			if !c.valid {
				return nil, fmt.Errorf("interp: string() without context item")
			}
			return []xdm.Item{xdm.NewString(st.store.Atomize(c.item).StringValue())}, nil
		}
		v, err := atomizeArg(0)
		if err != nil {
			return nil, err
		}
		switch len(v) {
		case 0:
			return []xdm.Item{xdm.NewString("")}, nil
		case 1:
			return []xdm.Item{xdm.NewString(v[0].StringValue())}, nil
		default:
			return nil, fmt.Errorf("interp: string() over a sequence")
		}

	case "data":
		return atomizeArg(0)

	case "number":
		v, err := atomizeArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 {
			return []xdm.Item{xdm.NewDouble(math.NaN())}, nil
		}
		return []xdm.Item{xdm.NewDouble(v[0].NumberOrNaN())}, nil

	case "string-length":
		v, err := atomizeArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return []xdm.Item{xdm.NewInt(0)}, nil
		}
		return []xdm.Item{xdm.NewInt(int64(len([]rune(v[0].StringValue()))))}, nil

	case "contains", "starts-with", "ends-with":
		s1, err := st.stringArg(e, 0, en, c)
		if err != nil {
			return nil, err
		}
		s2, err := st.stringArg(e, 1, en, c)
		if err != nil {
			return nil, err
		}
		switch e.Name {
		case "contains":
			return []xdm.Item{xdm.NewBool(strings.Contains(s1, s2))}, nil
		case "starts-with":
			return []xdm.Item{xdm.NewBool(strings.HasPrefix(s1, s2))}, nil
		default:
			return []xdm.Item{xdm.NewBool(strings.HasSuffix(s1, s2))}, nil
		}

	case "normalize-space", "upper-case", "lower-case":
		if err := checkArity(1); err != nil {
			return nil, err
		}
		s, err := st.stringArg(e, 0, en, c)
		if err != nil {
			return nil, err
		}
		switch e.Name {
		case "normalize-space":
			s = strings.Join(strings.Fields(s), " ")
		case "upper-case":
			s = strings.ToUpper(s)
		default:
			s = strings.ToLower(s)
		}
		return []xdm.Item{xdm.NewString(s)}, nil

	case "round", "floor", "ceiling", "abs":
		if err := checkArity(1); err != nil {
			return nil, err
		}
		v, err := st.atomizeSingleton(e.Args[0], en, c)
		if err != nil || v == nil {
			return nil, err
		}
		if v.Kind == xdm.KInteger {
			if e.Name == "abs" && v.I < 0 {
				return []xdm.Item{xdm.NewInt(-v.I)}, nil
			}
			return []xdm.Item{*v}, nil
		}
		f, err := v.AsDouble()
		if err != nil {
			return nil, fmt.Errorf("interp: %s: %v", e.Name, err)
		}
		switch e.Name {
		case "round":
			f = math.Floor(f + 0.5)
		case "floor":
			f = math.Floor(f)
		case "ceiling":
			f = math.Ceil(f)
		default:
			f = math.Abs(f)
		}
		return []xdm.Item{xdm.NewDouble(f)}, nil

	case "substring":
		if len(e.Args) != 2 && len(e.Args) != 3 {
			return nil, fmt.Errorf("interp: substring expects 2 or 3 arguments")
		}
		s, err := st.stringArg(e, 0, en, c)
		if err != nil {
			return nil, err
		}
		startIt, err := st.atomizeSingleton(e.Args[1], en, c)
		if err != nil {
			return nil, err
		}
		if startIt == nil {
			return []xdm.Item{xdm.NewString("")}, nil
		}
		start, err := startIt.AsDouble()
		if err != nil {
			return nil, err
		}
		length, hasLen := 0.0, false
		if len(e.Args) == 3 {
			lenIt, err := st.atomizeSingleton(e.Args[2], en, c)
			if err != nil {
				return nil, err
			}
			if lenIt == nil {
				return []xdm.Item{xdm.NewString("")}, nil
			}
			if length, err = lenIt.AsDouble(); err != nil {
				return nil, err
			}
			hasLen = true
		}
		return []xdm.Item{xdm.NewString(substringFn(s, start, length, hasLen))}, nil

	case "string-join":
		if err := checkArity(2); err != nil {
			return nil, err
		}
		v, err := st.atomize(e.Args[0], en, c)
		if err != nil {
			return nil, err
		}
		sep, err := st.stringArg(e, 1, en, c)
		if err != nil {
			return nil, err
		}
		parts := make([]string, len(v))
		for i, it := range v {
			parts[i] = it.StringValue()
		}
		return []xdm.Item{xdm.NewString(strings.Join(parts, sep))}, nil

	case "concat":
		if len(e.Args) < 2 {
			return nil, fmt.Errorf("interp: concat expects at least 2 arguments")
		}
		var sb strings.Builder
		for i := range e.Args {
			s, err := st.stringArg(e, i, en, c)
			if err != nil {
				return nil, err
			}
			sb.WriteString(s)
		}
		return []xdm.Item{xdm.NewString(sb.String())}, nil

	case "distinct-values":
		v, err := atomizeArg(0)
		if err != nil {
			return nil, err
		}
		seen := make(map[string]bool, len(v))
		var out []xdm.Item
		for _, it := range v {
			k := xdm.DistinctKey(it)
			if !seen[k] {
				seen[k] = true
				out = append(out, it)
			}
		}
		return out, nil

	case "unordered":
		// Identity: the input order is one admissible permutation.
		return evalArg(0)

	case "zero-or-one":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) > 1 {
			return nil, fmt.Errorf("interp: zero-or-one over %d items", len(v))
		}
		return v, nil

	case "exactly-one":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 {
			return nil, fmt.Errorf("interp: exactly-one over %d items", len(v))
		}
		return v, nil

	case "one-or-more":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return nil, fmt.Errorf("interp: one-or-more over empty sequence")
		}
		return v, nil

	case "last":
		if !c.valid {
			return nil, fmt.Errorf("interp: last() outside a predicate")
		}
		return []xdm.Item{xdm.NewInt(int64(c.size))}, nil

	case "position":
		if !c.valid {
			return nil, fmt.Errorf("interp: position() outside a predicate")
		}
		return []xdm.Item{xdm.NewInt(int64(c.pos))}, nil

	case "name", "local-name":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) == 0 {
			return []xdm.Item{xdm.NewString("")}, nil
		}
		if len(v) > 1 || !v[0].IsNode() {
			return nil, fmt.Errorf("interp: %s expects a single node", e.Name)
		}
		return []xdm.Item{xdm.NewString(st.store.NameOf(v[0].N))}, nil

	case "root":
		v, err := evalArg(0)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 || !v[0].IsNode() {
			return nil, fmt.Errorf("interp: root expects a single node")
		}
		return []xdm.Item{xdm.NewNode(xdm.NodeID{Frag: v[0].N.Frag, Pre: 0})}, nil

	default:
		return nil, fmt.Errorf("interp: unknown function %s#%d", e.Name, len(e.Args))
	}
}

// stringArg evaluates argument i and converts it to a string per fn:string
// rules (empty sequence becomes "").
func (st *evalState) stringArg(e *xquery.FuncCall, i int, en *env, c ctx) (string, error) {
	if i >= len(e.Args) {
		return "", fmt.Errorf("interp: %s: missing argument %d", e.Name, i+1)
	}
	v, err := st.atomize(e.Args[i], en, c)
	if err != nil {
		return "", err
	}
	switch len(v) {
	case 0:
		return "", nil
	case 1:
		return v[0].StringValue(), nil
	default:
		return "", fmt.Errorf("interp: %s: argument %d is a sequence", e.Name, i+1)
	}
}

// aggregate implements fn:sum/avg/max/min with untypedAtomic-to-double
// coercion (the XMark documents carry numbers as untyped text).
func (st *evalState) aggregate(name string, e *xquery.FuncCall, en *env, c ctx) ([]xdm.Item, error) {
	if len(e.Args) != 1 {
		return nil, fmt.Errorf("interp: %s expects 1 argument", name)
	}
	v, err := st.atomize(e.Args[0], en, c)
	if err != nil {
		return nil, err
	}
	if len(v) == 0 {
		if name == "sum" {
			return []xdm.Item{xdm.NewInt(0)}, nil
		}
		return nil, nil
	}
	// Coerce untyped to double; reject non-numeric for sum/avg, allow
	// string ordering for max/min over strings.
	allNumeric := true
	coerced := make([]xdm.Item, len(v))
	for i, it := range v {
		if it.Kind == xdm.KUntyped {
			f, err := it.AsDouble()
			if err != nil {
				return nil, fmt.Errorf("interp: %s: %v", name, err)
			}
			coerced[i] = xdm.NewDouble(f)
			continue
		}
		coerced[i] = it
		if !it.Kind.IsNumeric() {
			allNumeric = false
		}
	}
	switch name {
	case "sum", "avg":
		if !allNumeric {
			return nil, fmt.Errorf("interp: %s over non-numeric values", name)
		}
		sum := 0.0
		allInt := true
		for _, it := range coerced {
			if it.Kind != xdm.KInteger {
				allInt = false
			}
			f, _ := it.AsDouble()
			sum += f
		}
		if name == "avg" {
			return []xdm.Item{xdm.NewDouble(sum / float64(len(coerced)))}, nil
		}
		if allInt {
			return []xdm.Item{xdm.NewInt(int64(sum))}, nil
		}
		return []xdm.Item{xdm.NewDouble(sum)}, nil
	default: // max, min
		best := coerced[0]
		for _, it := range coerced[1:] {
			cv := xdm.OrderCompare(it, best)
			if (name == "max" && cv > 0) || (name == "min" && cv < 0) {
				best = it
			}
		}
		return []xdm.Item{best}, nil
	}
}

// substringFn implements the fn:substring positional rules: characters at
// 1-based positions p with round(start) <= p (< round(start)+round(len)
// when a length is given). NaN bounds select nothing.
func substringFn(s string, start, length float64, hasLen bool) string {
	if math.IsNaN(start) || (hasLen && math.IsNaN(length)) {
		return ""
	}
	lo := math.Floor(start + 0.5)
	hi := math.Inf(1)
	if hasLen {
		hi = lo + math.Floor(length+0.5)
	}
	var sb strings.Builder
	i := 0
	for _, r := range s {
		i++
		p := float64(i)
		if p >= lo && p < hi {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
