// Package interp is a direct tree-walking interpreter for the XQuery
// subset, with strict ordered semantics throughout. It plays two roles in
// the reproduction:
//
//   - correctness oracle: the relational pipeline under ordering mode
//     ordered must agree with it byte-for-byte on serialized results;
//   - baseline: it embodies the conventional "order everywhere" processor
//     the paper's introduction contrasts against (document order after
//     every step, sequence order maintained eagerly).
package interp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xdm"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Interp evaluates parsed queries against a set of named documents.
type Interp struct {
	base *xmltree.Store
	docs map[string][]uint32
}

// New creates an interpreter over the given store; docs maps fn:doc()
// URIs to fragment IDs registered in the store — one id per document
// root, several for a sharded corpus, returned by fn:doc() in order.
func New(store *xmltree.Store, docs map[string][]uint32) *Interp {
	return &Interp{base: store, docs: docs}
}

// Result is an evaluated item sequence together with the store that owns
// any nodes constructed during evaluation.
type Result struct {
	Items []xdm.Item
	Store *xmltree.Store
}

// SerializeXML renders the result sequence per the XQuery serialization
// rules: adjacent atomic values separated by a single space, nodes
// serialized as XML.
func (r *Result) SerializeXML() (string, error) {
	return xmltree.SerializeItems(r.Store, r.Items)
}

// evalState carries per-evaluation mutable state.
type evalState struct {
	store *xmltree.Store
	docs  map[string][]uint32
	funcs map[string]*xquery.FuncDecl
	depth int
}

// env is an immutable chain of variable bindings.
type env struct {
	name  string
	items []xdm.Item
	next  *env
}

func (e *env) bind(name string, items []xdm.Item) *env {
	return &env{name: name, items: items, next: e}
}

func (e *env) lookup(name string) ([]xdm.Item, bool) {
	for b := e; b != nil; b = b.next {
		if b.name == name {
			return b.items, true
		}
	}
	return nil, false
}

// ctx is the dynamic context (context item, position, size) available
// inside predicates.
type ctx struct {
	item  xdm.Item
	pos   int
	size  int
	valid bool
}

// Eval evaluates a module and returns the resulting item sequence.
func (ip *Interp) Eval(m *xquery.Module) (*Result, error) {
	return ip.EvalWithVars(m, nil)
}

// EvalWithVars evaluates a module with bindings for its external prolog
// variables (declare variable $x external).
func (ip *Interp) EvalWithVars(m *xquery.Module, vars map[string][]xdm.Item) (*Result, error) {
	st := &evalState{
		store: ip.base.Derive(),
		docs:  ip.docs,
		funcs: make(map[string]*xquery.FuncDecl, len(m.Functions)),
	}
	for _, fd := range m.Functions {
		st.funcs[fd.Name] = fd
	}
	var en *env
	for _, vd := range m.Variables {
		if !vd.External {
			// Initialized declarations are desugared by normalization;
			// a module evaluated without normalization handles them here.
			v, err := st.eval(vd.Init, en, ctx{})
			if err != nil {
				return nil, err
			}
			en = en.bind(vd.Name, v)
			continue
		}
		v, ok := vars[vd.Name]
		if !ok {
			return nil, fmt.Errorf("interp: external variable $%s not bound", vd.Name)
		}
		en = en.bind(vd.Name, v)
	}
	items, err := st.eval(m.Body, en, ctx{})
	if err != nil {
		return nil, err
	}
	return &Result{Items: items, Store: st.store}, nil
}

// EvalString parses and evaluates a query.
func (ip *Interp) EvalString(src string) (*Result, error) {
	m, err := xquery.Parse(src)
	if err != nil {
		return nil, err
	}
	return ip.Eval(m)
}

func (st *evalState) eval(e xquery.Expr, en *env, c ctx) ([]xdm.Item, error) {
	switch e := e.(type) {
	case *xquery.IntLit:
		return []xdm.Item{xdm.NewInt(e.Val)}, nil
	case *xquery.DecLit:
		return []xdm.Item{xdm.NewDouble(e.Val)}, nil
	case *xquery.StrLit:
		return []xdm.Item{xdm.NewString(e.Val)}, nil
	case *xquery.EmptySeq:
		return nil, nil
	case *xquery.VarRef:
		items, ok := en.lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("interp: unbound variable $%s", e.Name)
		}
		return items, nil
	case *xquery.ContextItem:
		if !c.valid {
			return nil, fmt.Errorf("interp: context item undefined")
		}
		return []xdm.Item{c.item}, nil
	case *xquery.Sequence:
		var out []xdm.Item
		for _, it := range e.Items {
			v, err := st.eval(it, en, c)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *xquery.Path:
		return st.evalPath(e, en, c)
	case *xquery.Filter:
		base, err := st.eval(e.Base, en, c)
		if err != nil {
			return nil, err
		}
		return st.applyPredicatesToSeq(base, e.Preds, en)
	case *xquery.FLWOR:
		return st.evalFLWOR(e, en, c)
	case *xquery.Quantified:
		return st.evalQuantified(e, en, c)
	case *xquery.IfExpr:
		cond, err := st.eval(e.Cond, en, c)
		if err != nil {
			return nil, err
		}
		b, err := xdm.EffectiveBooleanValue(cond)
		if err != nil {
			return nil, err
		}
		if b {
			return st.eval(e.Then, en, c)
		}
		return st.eval(e.Else, en, c)
	case *xquery.Arith:
		return st.evalArith(e, en, c)
	case *xquery.Neg:
		v, err := st.atomizeSingleton(e.Expr, en, c)
		if err != nil || v == nil {
			return nil, err
		}
		return arithResult(xdm.Arith(xdm.NewInt(0), *v, xdm.OpSub))
	case *xquery.GeneralCmp:
		return st.evalGeneralCmp(e, en, c)
	case *xquery.ValueCmp:
		return st.evalValueCmp(e, en, c)
	case *xquery.NodeCmp:
		return st.evalNodeCmp(e, en, c)
	case *xquery.Logic:
		lv, err := st.eval(e.L, en, c)
		if err != nil {
			return nil, err
		}
		lb, err := xdm.EffectiveBooleanValue(lv)
		if err != nil {
			return nil, err
		}
		// XQuery allows short-circuiting but does not require it; we
		// evaluate both sides for deterministic error behaviour.
		rv, err := st.eval(e.R, en, c)
		if err != nil {
			return nil, err
		}
		rb, err := xdm.EffectiveBooleanValue(rv)
		if err != nil {
			return nil, err
		}
		if e.Op == xquery.LogicAnd {
			return []xdm.Item{xdm.NewBool(lb && rb)}, nil
		}
		return []xdm.Item{xdm.NewBool(lb || rb)}, nil
	case *xquery.SetOp:
		return st.evalSetOp(e, en, c)
	case *xquery.RangeExpr:
		return st.evalRange(e, en, c)
	case *xquery.FuncCall:
		return st.evalFuncCall(e, en, c)
	case *xquery.OrderedExpr:
		// The ordered result is one admissible result of unordered{}, so
		// the oracle treats both modes as identity.
		return st.eval(e.Expr, en, c)
	case *xquery.ElemCons:
		return st.evalElemCons(e, en, c)
	case *xquery.CharContent:
		// Only meaningful inside constructors; handled there. Reaching it
		// directly means a text node of the literal.
		return []xdm.Item{xdm.NewString(e.Text)}, nil
	default:
		return nil, fmt.Errorf("interp: unsupported expression %T", e)
	}
}

// --- Paths and steps ---

func (st *evalState) evalPath(p *xquery.Path, en *env, c ctx) ([]xdm.Item, error) {
	var current []xdm.Item
	if p.Start != nil {
		v, err := st.eval(p.Start, en, c)
		if err != nil {
			return nil, err
		}
		current = v
	} else {
		if !c.valid {
			return nil, fmt.Errorf("interp: relative path without context item")
		}
		current = []xdm.Item{c.item}
	}
	for i := range p.Steps {
		next, err := st.evalStep(current, &p.Steps[i], en)
		if err != nil {
			return nil, err
		}
		current = next
	}
	return current, nil
}

// evalStep applies one location step to a context sequence: per context
// node, the axis+test yields a node list in document order; predicates
// filter positionally within that list; results are merged, deduplicated,
// and sorted into document order.
func (st *evalState) evalStep(context []xdm.Item, step *xquery.Step, en *env) ([]xdm.Item, error) {
	seen := make(map[xdm.NodeID]bool)
	var out []xdm.Item
	for _, it := range context {
		if !it.IsNode() {
			return nil, fmt.Errorf("interp: path step over atomic value %s", it.Kind)
		}
		nodes := st.axisNodes(it.N, step.Axis, step.Test)
		filtered, err := st.applyPredicatesToSeq(nodes, step.Preds, en)
		if err != nil {
			return nil, err
		}
		for _, n := range filtered {
			if !seen[n.N] {
				seen[n.N] = true
				out = append(out, n)
			}
		}
	}
	sortNodes(out)
	return out, nil
}

// axisNodes returns the axis result for one context node in document
// order, filtered by the node test.
func (st *evalState) axisNodes(id xdm.NodeID, axis xquery.Axis, test xquery.NodeTest) []xdm.Item {
	f := st.store.Frag(id.Frag)
	v := id.Pre
	var pres []int32
	switch axis {
	case xquery.AxisChild:
		pres = f.Children(v)
	case xquery.AxisDescendant:
		pres = f.Descendants(v)
	case xquery.AxisDescendantOrSelf:
		pres = append([]int32{v}, f.Descendants(v)...)
	case xquery.AxisSelf:
		pres = []int32{v}
	case xquery.AxisAttribute:
		pres = f.Attributes(v)
	case xquery.AxisParent:
		if p := f.Parent[v]; p >= 0 {
			pres = []int32{p}
		}
	}
	var out []xdm.Item
	for _, p := range pres {
		if matchTest(f, p, axis, test) {
			out = append(out, xdm.NewNode(xdm.NodeID{Frag: id.Frag, Pre: p}))
		}
	}
	return out
}

// matchTest applies a node test. On the attribute axis the principal node
// kind is attribute; elsewhere it is element.
func matchTest(f *xmltree.Fragment, pre int32, axis xquery.Axis, test xquery.NodeTest) bool {
	kind := f.Kind[pre]
	switch test.Kind {
	case xquery.TestNode:
		return true
	case xquery.TestText:
		return kind == xmltree.KindText
	case xquery.TestWild:
		if axis == xquery.AxisAttribute {
			return kind == xmltree.KindAttr
		}
		return kind == xmltree.KindElem
	default: // TestName
		if axis == xquery.AxisAttribute {
			return kind == xmltree.KindAttr && f.Name[pre] == test.Name
		}
		return kind == xmltree.KindElem && f.Name[pre] == test.Name
	}
}

// applyPredicatesToSeq filters a sequence through predicates with full
// XPath semantics: a predicate evaluating to a number selects by position,
// anything else by effective boolean value.
func (st *evalState) applyPredicatesToSeq(items []xdm.Item, preds []xquery.Expr, en *env) ([]xdm.Item, error) {
	current := items
	for _, pred := range preds {
		var kept []xdm.Item
		size := len(current)
		for i, it := range current {
			pc := ctx{item: it, pos: i + 1, size: size, valid: true}
			v, err := st.eval(pred, en, pc)
			if err != nil {
				return nil, err
			}
			keep, err := predicateTruth(v, i+1)
			if err != nil {
				return nil, err
			}
			if keep {
				kept = append(kept, it)
			}
		}
		current = kept
	}
	return current, nil
}

// predicateTruth decides whether a predicate value selects the item at
// 1-based position pos.
func predicateTruth(v []xdm.Item, pos int) (bool, error) {
	if len(v) == 1 && v[0].Kind.IsNumeric() {
		f, err := v[0].AsDouble()
		if err != nil {
			return false, err
		}
		return f == float64(pos), nil
	}
	return xdm.EffectiveBooleanValue(v)
}

func sortNodes(items []xdm.Item) {
	sort.Slice(items, func(i, j int) bool { return items[i].N.Before(items[j].N) })
}

// --- FLWOR ---

type flworTuple struct {
	en   *env
	keys []xdm.Item // one per order spec; zero-length item slot encoded as empty marker
	keyE []bool     // per key: empty sequence flag
}

func (st *evalState) evalFLWOR(fl *xquery.FLWOR, en *env, c ctx) ([]xdm.Item, error) {
	tuples := []*env{en}
	for _, cl := range fl.Clauses {
		var next []*env
		switch cl := cl.(type) {
		case *xquery.ForClause:
			for _, t := range tuples {
				dom, err := st.eval(cl.In, t, c)
				if err != nil {
					return nil, err
				}
				for i, it := range dom {
					b := t.bind(cl.Var, []xdm.Item{it})
					if cl.PosVar != "" {
						b = b.bind(cl.PosVar, []xdm.Item{xdm.NewInt(int64(i + 1))})
					}
					next = append(next, b)
				}
			}
		case *xquery.LetClause:
			for _, t := range tuples {
				v, err := st.eval(cl.Expr, t, c)
				if err != nil {
					return nil, err
				}
				next = append(next, t.bind(cl.Var, v))
			}
		}
		tuples = next
	}
	// where
	if fl.Where != nil {
		var kept []*env
		for _, t := range tuples {
			v, err := st.eval(fl.Where, t, c)
			if err != nil {
				return nil, err
			}
			b, err := xdm.EffectiveBooleanValue(v)
			if err != nil {
				return nil, err
			}
			if b {
				kept = append(kept, t)
			}
		}
		tuples = kept
	}
	// order by
	if len(fl.Order) > 0 {
		wts := make([]flworTuple, len(tuples))
		for i, t := range tuples {
			wt := flworTuple{en: t}
			for _, spec := range fl.Order {
				kv, err := st.atomize(spec.Key, t, c)
				if err != nil {
					return nil, err
				}
				if len(kv) > 1 {
					return nil, fmt.Errorf("interp: order by key with more than one item")
				}
				if len(kv) == 0 {
					wt.keys = append(wt.keys, xdm.Item{})
					wt.keyE = append(wt.keyE, true)
				} else {
					wt.keys = append(wt.keys, kv[0])
					wt.keyE = append(wt.keyE, false)
				}
			}
			wts[i] = wt
		}
		sort.SliceStable(wts, func(a, b int) bool {
			for k, spec := range fl.Order {
				cv := compareKeys(wts[a].keys[k], wts[a].keyE[k], wts[b].keys[k], wts[b].keyE[k], spec)
				if cv != 0 {
					return cv < 0
				}
			}
			return false
		})
		tuples = tuples[:0]
		for _, wt := range wts {
			tuples = append(tuples, wt.en)
		}
	}
	// return
	var out []xdm.Item
	for _, t := range tuples {
		v, err := st.eval(fl.Return, t, c)
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

// compareKeys orders two order-by keys under a spec (empty least unless
// declared greatest; descending flips).
func compareKeys(a xdm.Item, aEmpty bool, b xdm.Item, bEmpty bool, spec xquery.OrderSpec) int {
	var cv int
	switch {
	case aEmpty && bEmpty:
		cv = 0
	case aEmpty:
		cv = -1
		if spec.EmptyGreatest {
			cv = 1
		}
	case bEmpty:
		cv = 1
		if spec.EmptyGreatest {
			cv = -1
		}
	default:
		cv = xdm.OrderCompare(a, b)
	}
	if spec.Descending {
		cv = -cv
	}
	return cv
}

func (st *evalState) evalQuantified(q *xquery.Quantified, en *env, c ctx) ([]xdm.Item, error) {
	var rec func(i int, en *env) (bool, error)
	rec = func(i int, en *env) (bool, error) {
		if i == len(q.Vars) {
			v, err := st.eval(q.Satisfies, en, c)
			if err != nil {
				return false, err
			}
			return xdm.EffectiveBooleanValue(v)
		}
		dom, err := st.eval(q.Vars[i].In, en, c)
		if err != nil {
			return false, err
		}
		for _, it := range dom {
			ok, err := rec(i+1, en.bind(q.Vars[i].Var, []xdm.Item{it}))
			if err != nil {
				return false, err
			}
			if ok != q.Every {
				return ok, nil // some: first true wins; every: first false wins
			}
		}
		return q.Every, nil
	}
	b, err := rec(0, en)
	if err != nil {
		return nil, err
	}
	return []xdm.Item{xdm.NewBool(b)}, nil
}

// --- Atomization and operators ---

// atomize evaluates an expression and atomizes every item.
func (st *evalState) atomize(e xquery.Expr, en *env, c ctx) ([]xdm.Item, error) {
	v, err := st.eval(e, en, c)
	if err != nil {
		return nil, err
	}
	out := make([]xdm.Item, len(v))
	for i, it := range v {
		out[i] = st.store.Atomize(it)
	}
	return out, nil
}

// atomizeSingleton atomizes an operand that must be a singleton or empty;
// empty returns (nil, nil).
func (st *evalState) atomizeSingleton(e xquery.Expr, en *env, c ctx) (*xdm.Item, error) {
	v, err := st.atomize(e, en, c)
	if err != nil {
		return nil, err
	}
	switch len(v) {
	case 0:
		return nil, nil
	case 1:
		return &v[0], nil
	default:
		return nil, fmt.Errorf("interp: operand with more than one item")
	}
}

func arithResult(it xdm.Item, err error) ([]xdm.Item, error) {
	if err != nil {
		return nil, err
	}
	return []xdm.Item{it}, nil
}

func (st *evalState) evalArith(e *xquery.Arith, en *env, c ctx) ([]xdm.Item, error) {
	l, err := st.atomizeSingleton(e.L, en, c)
	if err != nil || l == nil {
		return nil, err
	}
	r, err := st.atomizeSingleton(e.R, en, c)
	if err != nil || r == nil {
		return nil, err
	}
	lv, rv := *l, *r
	// untypedAtomic coerces to double in arithmetic.
	if lv.Kind == xdm.KUntyped {
		f, err := lv.AsDouble()
		if err != nil {
			return nil, err
		}
		lv = xdm.NewDouble(f)
	}
	if rv.Kind == xdm.KUntyped {
		f, err := rv.AsDouble()
		if err != nil {
			return nil, err
		}
		rv = xdm.NewDouble(f)
	}
	return arithResult(xdm.Arith(lv, rv, e.Op))
}

func (st *evalState) evalGeneralCmp(e *xquery.GeneralCmp, en *env, c ctx) ([]xdm.Item, error) {
	l, err := st.atomize(e.L, en, c)
	if err != nil {
		return nil, err
	}
	r, err := st.atomize(e.R, en, c)
	if err != nil {
		return nil, err
	}
	for _, a := range l {
		for _, b := range r {
			ok, err := xdm.CompareGeneral(a, b, e.Op)
			if err != nil {
				return nil, err
			}
			if ok {
				return []xdm.Item{xdm.True}, nil
			}
		}
	}
	return []xdm.Item{xdm.False}, nil
}

func (st *evalState) evalValueCmp(e *xquery.ValueCmp, en *env, c ctx) ([]xdm.Item, error) {
	l, err := st.atomizeSingleton(e.L, en, c)
	if err != nil || l == nil {
		return nil, err
	}
	r, err := st.atomizeSingleton(e.R, en, c)
	if err != nil || r == nil {
		return nil, err
	}
	ok, err := xdm.CompareValue(*l, *r, e.Op)
	if err != nil {
		return nil, err
	}
	return []xdm.Item{xdm.NewBool(ok)}, nil
}

func (st *evalState) evalNodeCmp(e *xquery.NodeCmp, en *env, c ctx) ([]xdm.Item, error) {
	single := func(x xquery.Expr) (*xdm.Item, error) {
		v, err := st.eval(x, en, c)
		if err != nil {
			return nil, err
		}
		switch len(v) {
		case 0:
			return nil, nil
		case 1:
			if !v[0].IsNode() {
				return nil, fmt.Errorf("interp: node comparison over atomic value")
			}
			return &v[0], nil
		default:
			return nil, fmt.Errorf("interp: node comparison over sequence")
		}
	}
	l, err := single(e.L)
	if err != nil || l == nil {
		return nil, err
	}
	r, err := single(e.R)
	if err != nil || r == nil {
		return nil, err
	}
	var b bool
	switch e.Op {
	case xquery.NodeBefore:
		b = l.N.Before(r.N)
	case xquery.NodeAfter:
		b = r.N.Before(l.N)
	default:
		b = l.N == r.N
	}
	return []xdm.Item{xdm.NewBool(b)}, nil
}

func (st *evalState) evalSetOp(e *xquery.SetOp, en *env, c ctx) ([]xdm.Item, error) {
	nodes := func(x xquery.Expr) (map[xdm.NodeID]bool, []xdm.Item, error) {
		v, err := st.eval(x, en, c)
		if err != nil {
			return nil, nil, err
		}
		set := make(map[xdm.NodeID]bool, len(v))
		for _, it := range v {
			if !it.IsNode() {
				return nil, nil, fmt.Errorf("interp: %s over atomic values", e.Kind)
			}
			set[it.N] = true
		}
		return set, v, nil
	}
	_, lv, err := nodes(e.L)
	if err != nil {
		return nil, err
	}
	rset, rv, err := nodes(e.R)
	if err != nil {
		return nil, err
	}
	var out []xdm.Item
	emit := make(map[xdm.NodeID]bool)
	add := func(it xdm.Item, cond bool) {
		if cond && !emit[it.N] {
			emit[it.N] = true
			out = append(out, it)
		}
	}
	switch e.Kind {
	case xquery.SetUnion:
		for _, it := range lv {
			add(it, true)
		}
		for _, it := range rv {
			add(it, true)
		}
	case xquery.SetIntersect:
		for _, it := range lv {
			add(it, rset[it.N])
		}
	default: // except
		for _, it := range lv {
			add(it, !rset[it.N])
		}
	}
	sortNodes(out)
	return out, nil
}

func (st *evalState) evalRange(e *xquery.RangeExpr, en *env, c ctx) ([]xdm.Item, error) {
	l, err := st.atomizeSingleton(e.L, en, c)
	if err != nil || l == nil {
		return nil, err
	}
	r, err := st.atomizeSingleton(e.R, en, c)
	if err != nil || r == nil {
		return nil, err
	}
	lo, err := l.AsInteger()
	if err != nil {
		return nil, err
	}
	hi, err := r.AsInteger()
	if err != nil {
		return nil, err
	}
	if hi < lo {
		return nil, nil
	}
	if hi-lo > 10_000_000 {
		return nil, fmt.Errorf("interp: range %d to %d too large", lo, hi)
	}
	out := make([]xdm.Item, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, xdm.NewInt(i))
	}
	return out, nil
}

// --- Element construction ---

func (st *evalState) evalElemCons(e *xquery.ElemCons, en *env, c ctx) ([]xdm.Item, error) {
	b := xmltree.NewBuilder()
	b.StartElem(e.Name)
	for _, a := range e.Attrs {
		var sb strings.Builder
		for _, part := range a.Parts {
			if part.Expr == nil {
				sb.WriteString(part.Literal)
				continue
			}
			v, err := st.atomize(part.Expr, en, c)
			if err != nil {
				return nil, err
			}
			for i, it := range v {
				if i > 0 {
					sb.WriteString(" ")
				}
				sb.WriteString(it.StringValue())
			}
		}
		b.Attr(a.Name, sb.String())
	}
	// Evaluate content in order; attribute nodes arising from content are
	// not supported (our subset has no computed attribute constructors
	// producing free-standing attributes in element content except via
	// paths, which is a dynamic error here as in XQuery when they follow
	// non-attribute content).
	var contentItems []xdm.Item
	for _, ce := range e.Content {
		if cc, ok := ce.(*xquery.CharContent); ok {
			contentItems = append(contentItems, xdm.NewRawText(cc.Text))
			continue
		}
		v, err := st.eval(ce, en, c)
		if err != nil {
			return nil, err
		}
		contentItems = append(contentItems, v...)
	}
	if err := xmltree.AppendContent(st.store, b, e.Name, contentItems); err != nil {
		return nil, err
	}
	frag := b.Close()
	id := st.store.Add(frag)
	return []xdm.Item{xdm.NewNode(xdm.NodeID{Frag: id, Pre: 0})}, nil
}
