// Package client is a resilient HTTP client for exrquyd: capped
// exponential backoff with jitter that honors the server's Retry-After
// hints, a retry budget that stops retries from amplifying an outage,
// and optional hedged requests for the query endpoint.
//
// Everything here leans on the paper's order-indifference result: an
// XQuery read over an immutable document snapshot is a pure function of
// (query, snapshot), so re-issuing it — after a failure, or
// speculatively as a hedge racing a slow primary — can only ever produce
// byte-identical output. Retries and hedges are therefore safe by
// construction, not by protocol convention; the differential tests pin
// exactly that (hedged/retried responses match single-shot execution for
// the whole XMark suite).
package client

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Config parameterizes a Client. The zero value (plus BaseURL) works:
// 4 attempts, 50ms base / 2s cap backoff, a 0.2 retry budget, hedging
// off.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8345".
	BaseURL string
	// APIKey, when set, is sent as X-API-Key on every request.
	APIKey string
	// HTTPClient overrides the transport; nil uses a 60s-timeout client.
	HTTPClient *http.Client

	// MaxAttempts bounds tries per logical request, first included;
	// <= 0 means 4.
	MaxAttempts int
	// BaseBackoff is the first retry delay before jitter; 0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth; 0 means 2s.
	MaxBackoff time.Duration
	// RetryBudget is the fraction of logical requests that may be
	// retried: each request earns this many retry tokens, each retry
	// spends one, and an exhausted budget fails fast instead of piling
	// retries onto a struggling server. 0 means 0.2; negative disables
	// retries outright.
	RetryBudget float64

	// Hedge enables speculative duplicates for Query: when the primary
	// has not answered within the hedge delay, an identical request
	// races it and the first complete success wins. Safe because query
	// reads are idempotent (order indifference; see the package doc).
	Hedge bool
	// HedgeDelay fixes the hedge trigger; 0 derives it from the p95 of
	// recently observed successful-request latencies (no hedging until
	// enough samples accumulate).
	HedgeDelay time.Duration

	// Seed makes the jitter stream deterministic for tests; 0 means 1.
	Seed int64
}

// Stats counts what the resilience machinery did. Snapshot via
// Client.Stats.
type Stats struct {
	// Requests is the number of logical requests issued.
	Requests int64 `json:"requests"`
	// Attempts is the total HTTP attempts, retries and hedges included.
	Attempts int64 `json:"attempts"`
	// Retries counts re-issues after a retryable failure.
	Retries int64 `json:"retries"`
	// BudgetDenied counts retries the budget refused.
	BudgetDenied int64 `json:"budget_denied"`
	// Hedges counts speculative duplicates launched; HedgeWins how many
	// of them answered before their primary.
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
}

// Response is one completed exchange: the final status, the full body
// (a read error mid-body is a transport failure, never a short
// Response) and the response headers.
type Response struct {
	Status int
	Body   []byte
	Header http.Header
}

// budgetCap bounds banked retry tokens so a long quiet stretch cannot
// bankroll a retry storm later.
const budgetCap = 16

// minHedgeSamples is how many successful latencies must accumulate
// before a p95-derived hedge delay is trusted.
const minHedgeSamples = 16

// latWindow is the sliding-window size for latency samples.
const latWindow = 128

// Client issues resilient requests against one exrquyd daemon. Safe for
// concurrent use.
type Client struct {
	cfg Config
	hc  *http.Client

	mu     sync.Mutex
	rng    *rand.Rand
	budget float64
	lat    []time.Duration // ring buffer of successful-request latencies
	latIdx int
	latLen int
	stats  Stats
}

// New builds a Client for cfg (zero fields take the documented
// defaults).
func New(cfg Config) *Client {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 0.2
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 60 * time.Second}
	}
	return &Client{
		cfg: cfg,
		hc:  hc,
		rng: rand.New(rand.NewSource(seed)),
		// Seed the budget with one token so the very first request can
		// retry; steady state is governed by RetryBudget.
		budget: 1,
		lat:    make([]time.Duration, latWindow),
	}
}

// Stats snapshots the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Query runs an XQuery via GET /query?q=, with retries and (when
// configured) hedging.
func (c *Client) Query(ctx context.Context, query string) (*Response, error) {
	u := c.cfg.BaseURL + "/query?q=" + url.QueryEscape(query)
	return c.get(ctx, u, c.cfg.Hedge)
}

// Get issues a retried (never hedged) GET against an absolute URL on
// the daemon, e.g. BaseURL+"/debug/stats".
func (c *Client) Get(ctx context.Context, rawURL string) (*Response, error) {
	return c.get(ctx, rawURL, false)
}

// get is the retry loop around one logical GET.
func (c *Client) get(ctx context.Context, u string, hedge bool) (*Response, error) {
	c.mu.Lock()
	c.stats.Requests++
	if c.cfg.RetryBudget > 0 {
		c.budget = min(c.budget+c.cfg.RetryBudget, budgetCap)
	}
	c.mu.Unlock()

	var resp *Response
	var err error
	for attempt := 1; ; attempt++ {
		resp, err = c.once(ctx, u, hedge)
		if err == nil && !retryableStatus(resp.Status) {
			return resp, nil
		}
		if ctx.Err() != nil {
			break // the caller gave up; don't spin on a dead context
		}
		if attempt >= c.cfg.MaxAttempts || !c.spendRetryToken() {
			break
		}
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		delay := c.backoff(attempt)
		if hint, ok := retryAfterOf(resp); ok && hint > delay {
			delay = hint // the server knows when capacity returns; believe it
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return resp, ctx.Err()
		}
	}
	// Out of attempts or budget: surface the last outcome as-is, so the
	// caller sees the true final status (e.g. 429/503) or transport error.
	return resp, err
}

// once performs one attempt, racing a hedge against the primary when
// enabled and a hedge delay is known.
func (c *Client) once(ctx context.Context, u string, hedge bool) (*Response, error) {
	delay := c.hedgeDelay()
	if !hedge || delay <= 0 {
		return c.roundTrip(ctx, u)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // aborts whichever sibling lost the race

	type outcome struct {
		resp   *Response
		err    error
		hedged bool
	}
	results := make(chan outcome, 2) // both goroutines can always report
	go func() {
		r, err := c.roundTrip(ctx, u)
		results <- outcome{r, err, false}
	}()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C
	outstanding := 1
	hedged := false
	var fallback *outcome
	for {
		select {
		case o := <-results:
			outstanding--
			if o.err == nil && !retryableStatus(o.resp.Status) {
				if o.hedged {
					c.mu.Lock()
					c.stats.HedgeWins++
					c.mu.Unlock()
				}
				return o.resp, o.err
			}
			if !hedged {
				// The primary failed before the hedge launched; report the
				// failure and let the retry loop handle it.
				return o.resp, o.err
			}
			if fallback == nil {
				fallback = &o
			}
			if outstanding == 0 {
				// Both raced and both failed; surface the first failure.
				return fallback.resp, fallback.err
			}
		case <-timerC:
			timerC = nil
			hedged = true
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
			outstanding++
			go func() {
				r, err := c.roundTrip(ctx, u)
				results <- outcome{r, err, true}
			}()
		}
	}
}

// roundTrip performs exactly one HTTP exchange, reading the body in
// full. A mid-body read failure (connection reset, truncated chunked
// encoding from an aborted handler) is reported as a transport error,
// not a Response — a partial 200 must never be mistaken for a result.
func (c *Client) roundTrip(ctx context.Context, u string) (*Response, error) {
	c.mu.Lock()
	c.stats.Attempts++
	c.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if c.cfg.APIKey != "" {
		req.Header.Set("X-API-Key", c.cfg.APIKey)
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("read body of %s: %w", u, err)
	}
	if resp.StatusCode == http.StatusOK {
		c.observeLatency(time.Since(start))
	}
	return &Response{Status: resp.StatusCode, Body: body, Header: resp.Header}, nil
}

// retryableStatus classifies statuses worth re-issuing: throttling and
// server-side failures. 4xx (other than 429) means the request itself is
// wrong and will be wrong again.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterOf extracts the server's backoff hint, preferring the
// millisecond-precision retry_after_ms JSON field over the whole-second
// Retry-After header.
func retryAfterOf(r *Response) (time.Duration, bool) {
	if r == nil {
		return 0, false
	}
	var body struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if json.Unmarshal(r.Body, &body) == nil && body.RetryAfterMS > 0 {
		return time.Duration(body.RetryAfterMS) * time.Millisecond, true
	}
	if s := r.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second, true
		}
	}
	return 0, false
}

// spendRetryToken consumes one token, or reports the budget exhausted.
func (c *Client) spendRetryToken() bool {
	if c.cfg.RetryBudget < 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget >= 1 {
		c.budget--
		return true
	}
	c.stats.BudgetDenied++
	return false
}

// backoff computes the delay before retry number `attempt` (1-based
// count of completed attempts): capped exponential with full jitter in
// [d/2, d], so synchronized clients desynchronize.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// observeLatency records one successful exchange for the p95 estimate.
func (c *Client) observeLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lat[c.latIdx] = d
	c.latIdx = (c.latIdx + 1) % latWindow
	if c.latLen < latWindow {
		c.latLen++
	}
}

// hedgeDelay resolves the speculative-request trigger: the configured
// override, else the p95 of the latency window once it holds enough
// samples, else 0 (don't hedge yet).
func (c *Client) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latLen < minHedgeSamples {
		return 0
	}
	sorted := make([]time.Duration, c.latLen)
	copy(sorted, c.lat[:c.latLen])
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(0.95*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	d := sorted[i]
	if d <= 0 {
		d = time.Millisecond // degenerate clocks; hedge, but not in a busy loop
	}
	return d
}
