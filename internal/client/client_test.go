package client

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	exrquy "repro"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/xmarkq"
)

func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"slow down","status":429,"retry_after_ms":80}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond, RetryBudget: 1})
	start := time.Now()
	resp, err := c.Get(context.Background(), ts.URL+"/x")
	if err != nil || resp.Status != http.StatusOK || string(resp.Body) != "ok" {
		t.Fatalf("Get = %v, %v", resp, err)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("retried after %v, want >= 80ms (the server's retry_after_ms)", elapsed)
	}
	if st := c.Stats(); st.Retries != 1 || st.Attempts != 2 {
		t.Fatalf("stats = %+v, want 1 retry over 2 attempts", st)
	}
}

func TestRetryBudgetExhausts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	// A microscopic budget: the seeded token allows one retry, then the
	// budget must refuse even though MaxAttempts would allow many more.
	c := New(Config{BaseURL: ts.URL, MaxAttempts: 10, BaseBackoff: time.Millisecond, RetryBudget: 0.001})
	resp, err := c.Get(context.Background(), ts.URL+"/x")
	if err != nil || resp.Status != http.StatusInternalServerError {
		t.Fatalf("Get = %v, %v; want the final 500 surfaced", resp, err)
	}
	st := c.Stats()
	if st.Retries != 1 || st.BudgetDenied != 1 || st.Attempts != 2 {
		t.Fatalf("stats = %+v, want exactly 1 budgeted retry then a denial", st)
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "your fault", http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond, RetryBudget: 1})
	resp, err := c.Get(context.Background(), ts.URL+"/x")
	if err != nil || resp.Status != http.StatusBadRequest {
		t.Fatalf("Get = %v, %v", resp, err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("400 was attempted %d times, want 1 (client mistakes don't retry)", n)
	}
}

func TestTruncatedBodyRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Partial 200 then an aborted handler: the chunked body never
			// terminates, so the client's read must fail, not return a
			// short result.
			w.WriteHeader(http.StatusOK)
			fmt.Fprint(w, "<partial")
			w.(http.Flusher).Flush()
			panic(http.ErrAbortHandler)
		}
		fmt.Fprint(w, "<complete/>")
	}))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond, RetryBudget: 1})
	resp, err := c.Get(context.Background(), ts.URL+"/x")
	if err != nil || resp.Status != http.StatusOK || string(resp.Body) != "<complete/>" {
		t.Fatalf("Get = %v, %v; want the complete retried body", resp, err)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("stats = %+v, want the truncated read counted as 1 retry", st)
	}
}

func TestHedgeWinsOverSlowPrimary(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// The primary wedges until the test ends (or is cancelled by
			// the client when the hedge wins).
			select {
			case <-release:
			case <-r.Context().Done():
				return
			}
		}
		fmt.Fprint(w, "fast")
	}))
	defer ts.Close()
	defer close(release)

	c := New(Config{BaseURL: ts.URL, Hedge: true, HedgeDelay: 10 * time.Millisecond})
	resp, err := c.Query(context.Background(), "1+1")
	if err != nil || resp.Status != http.StatusOK || string(resp.Body) != "fast" {
		t.Fatalf("Query = %v, %v", resp, err)
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want the hedge launched and winning", st)
	}
}

// startFaultServer boots a real exrquyd serving stack with a seeded
// fault plan armed on /query.
func startFaultServer(t *testing.T, factor float64, plan *resilience.HTTPFaultPlan) (*server.Server, string) {
	t.Helper()
	s := server.New(server.Config{Faults: plan})
	s.Engine().LoadXMark("auction.xml", factor)
	if err := s.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != http.ErrServerClosed {
			t.Errorf("serve returned %v, want ErrServerClosed", err)
		}
	})
	return s, "http://" + s.Addr()
}

// TestDifferentialXMarkUnderFaults is the package's reason to exist:
// with deterministic fault injection forcing 500s, connection resets and
// truncated bodies onto the wire, the retrying+hedging client must
// return, for every XMark query, exactly the bytes a single-shot
// in-process execution produces. Order indifference licenses the
// re-execution; this test pins that the license is honored end to end.
//
// Determinism of success: failure-class faults fire at counter residues
// mod 7 (500), 13 (reset) and 17 (truncate), so any 16 consecutive
// requests contain at most 3+2+1 = 6 faulty ones — 8 attempts (each
// consuming at most two counters with its hedge) always reach a clean
// exchange.
func TestDifferentialXMarkUnderFaults(t *testing.T) {
	const factor = 0.002
	plan := &resilience.HTTPFaultPlan{
		Seed:          3,
		Err500Every:   7,
		ResetEvery:    13,
		TruncateEvery: 17,
		TruncateBytes: 24,
		LatencyEvery:  5,
		Latency:       2 * time.Millisecond,
	}
	_, base := startFaultServer(t, factor, plan)

	ref := exrquy.New()
	ref.LoadXMark("auction.xml", factor)

	c := New(Config{
		BaseURL:     base,
		MaxAttempts: 8,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
		RetryBudget: 4,
		Hedge:       true,
		HedgeDelay:  5 * time.Millisecond,
		Seed:        42,
	})
	for pass := 0; pass < 2; pass++ { // second pass exercises the plan cache too
		for _, q := range xmarkq.All() {
			resp, err := c.Query(context.Background(), q.Text)
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, q.Name, err)
			}
			if resp.Status != http.StatusOK {
				t.Fatalf("pass %d %s: status %d: %.200s", pass, q.Name, resp.Status, resp.Body)
			}
			want, err := ref.Query(q.Text)
			if err != nil {
				t.Fatalf("%s: reference: %v", q.Name, err)
			}
			wx, err := want.XML()
			if err != nil {
				t.Fatalf("%s: serialize: %v", q.Name, err)
			}
			if string(resp.Body) != wx {
				t.Errorf("pass %d %s: retried/hedged response differs from single-shot execution\ngot:  %.200q\nwant: %.200q",
					pass, q.Name, resp.Body, wx)
			}
		}
	}
	st := c.Stats()
	if plan.Counted() == 0 {
		t.Fatal("fault plan never fired; the test exercised nothing")
	}
	if st.Retries == 0 {
		t.Fatalf("stats = %+v: no retries happened under an armed fault plan", st)
	}
	t.Logf("faults injected: %d; client stats: %+v", plan.Counted(), st)
}
