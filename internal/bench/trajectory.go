package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/xdm"
	"repro/internal/xmarkq"
)

// TrajectoryRow is one measured (query, execution mode, storage model)
// point: wall time and allocation counts per query execution, in the
// units `go test -benchmem` reports so the trajectory file is directly
// comparable with benchmark output across PRs. Ops (xmarkbench -stats)
// holds per-operator aggregates from one collection-enabled run done
// after the timed runs, so collection never perturbs the measurements.
type TrajectoryRow struct {
	Query       string        `json:"query"`
	Mode        string        `json:"mode"`  // "serial", "walked", "parallel", "concurrent<N>", "server<N>", "ooc", "shard<N>" or "failover"
	Typed       bool          `json:"typed"` // false = boxed []Item storage (xdm.ForceBoxed)
	NsPerOp     int64         `json:"ns_per_op"`
	AllocsPerOp uint64        `json:"allocs_per_op"`
	BytesPerOp  uint64        `json:"bytes_per_op"`
	Ops         []obs.OpStats `json:"ops,omitempty"`
	// Load extras (xmarkbench -concurrency N → mode "concurrent<N>";
	// cmd/loadgen against exrquyd → mode "server<N>"): multi-client
	// throughput/latency through a resource governor, in-process or over
	// HTTP. Zero for serial/parallel rows. The benchdiff gate skips both
	// families — latency under deliberate load is machine noise, not a
	// kernel regression signal (NsPerOp here is the p50 under load).
	P95NsPerOp int64   `json:"p95_ns_per_op,omitempty"`
	P99NsPerOp int64   `json:"p99_ns_per_op,omitempty"`
	QPS        float64 `json:"qps,omitempty"`
	Shed       int64   `json:"shed,omitempty"`
	Degraded   int64   `json:"degraded,omitempty"`
	// CacheHitPct is the prepared-plan cache hit rate observed during a
	// loadgen run, in percent (server rows only).
	CacheHitPct float64 `json:"cache_hit_pct,omitempty"`
	// Resilience extras (cmd/loadgen with retries/hedging enabled):
	// client-side retries and hedges issued and server-side watchdog
	// kills observed. All three are per-run totals repeated on each row
	// of the run (the client does not attribute them per query). Zero
	// for non-server rows; the benchdiff gate ignores them.
	Retries       int64 `json:"retries,omitempty"`
	Hedges        int64 `json:"hedges,omitempty"`
	WatchdogKills int64 `json:"watchdog_kills,omitempty"`
}

// TrajectoryMeta stamps the run configuration into the trajectory file:
// two BENCH_PR<n>.json files are only comparable when these match, and
// earlier trajectory files left the reader to guess them.
type TrajectoryMeta struct {
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Parallelism int    `json:"parallelism"` // worker-pool size of the "parallel" rows
	Recycling   bool   `json:"recycling"`   // engine buffer recycling (always on today)
	ForceBoxed  bool   `json:"force_boxed"` // ambient xdm.ForceBoxed at entry (the "typed" rows are meaningless if true)
	// Compiled records whether the "serial"/"parallel" rows executed
	// bytecode-compiled programs (internal/vm). When false (-compile=off)
	// every row is tree-walking and no "walked" rows are emitted — they
	// would duplicate "serial".
	Compiled bool `json:"compiled"`
}

// TrajectorySummary compares the typed column layer against the boxed
// storage model for one query and mode: Speedup is boxed-ns / typed-ns,
// AllocsRatio is boxed-allocs / typed-allocs (both >1 when typed wins).
type TrajectorySummary struct {
	Query       string  `json:"query"`
	Mode        string  `json:"mode"`
	Speedup     float64 `json:"speedup_typed_vs_boxed"`
	AllocsRatio float64 `json:"allocs_ratio_boxed_vs_typed"`
}

// CompiledSummary compares bytecode-compiled serial execution against the
// tree-walking engine on the same plan (typed rows): Speedup is
// walked-ns / compiled-ns, AllocsRatio is walked-allocs / compiled-allocs
// (both >1 when the compiled program wins). Both sides execute an
// already-prepared plan, so this isolates the executor — the larger
// warm-path win, skipping parse→normalize→compile→optimize→flatten
// entirely on a plan-cache hit, is on top of this.
type CompiledSummary struct {
	Query       string  `json:"query"`
	Speedup     float64 `json:"speedup_compiled_vs_walked"`
	AllocsRatio float64 `json:"allocs_ratio_walked_vs_compiled"`
}

// TrajectoryReport is the benchmark-trajectory file (BENCH_PR<n>.json):
// per-query cost of the current engine in both storage models, serial and
// parallel, plus the typed-versus-boxed summary. Successive PRs append
// new files rather than rewriting old ones, so the sequence of files is
// the performance trajectory of the repository.
type TrajectoryReport struct {
	Factor      float64             `json:"factor"`
	Workers     int                 `json:"workers"`
	GoMaxProcs  int                 `json:"gomaxprocs"`
	Repeats     int                 `json:"repeats"`
	Concurrency int                 `json:"concurrency,omitempty"`  // clients of the "concurrent<N>" rows
	StoreShards int                 `json:"store_shards,omitempty"` // shard count of the "shard<N>" out-of-core rows
	Failover    bool                `json:"failover,omitempty"`     // "failover" recovery-latency rows present
	Meta        TrajectoryMeta      `json:"meta"`
	Rows        []TrajectoryRow     `json:"rows"`
	Summaries   []TrajectorySummary `json:"summaries"`
	// CompiledSummaries holds the per-query compiled-vs-walked comparison
	// (absent when compilation is off: there is nothing to compare).
	CompiledSummaries []CompiledSummary `json:"compiled_summaries,omitempty"`
}

// TrajectoryOptions configures a trajectory measurement.
type TrajectoryOptions struct {
	Factor      float64
	Queries     []int // XMark query numbers
	Workers     int   // parallel-row pool size; <=0 means GOMAXPROCS
	Repeats     int   // timed runs per row; <1 means 3
	Stats       bool  // attach per-operator OpStats to every row
	Concurrency int   // >0 adds "concurrent<N>" contention rows with N clients
	// StoreShards > 0 adds out-of-core rows: mode "ooc" runs the queries
	// through a single-part on-disk store (internal/store), and when
	// StoreShards > 1 mode "shard<N>" runs them through the corpus
	// sharded across N directories. Both page under a dedicated ledger a
	// quarter of the mapped corpus. The benchdiff gate skips both modes.
	StoreShards int
	// NoCompile runs every mode on the tree-walking engine instead of
	// bytecode programs (and drops the "walked" rows, which would then
	// duplicate "serial"). Recorded in TrajectoryMeta.Compiled.
	NoCompile bool
	// Failover adds mode "failover" rows: the corpus in a replicated
	// on-disk store (2 parts × 2 replicas) with one replica killed before
	// every timed run, so NsPerOp/P95NsPerOp price the full recovery
	// path — suspect detection, replica swap, re-execution. The
	// benchdiff gate skips them.
	Failover bool
}

// measureOne runs a prepared query repeats times and reports the median
// wall time and the mean allocation counts per run (allocation counts are
// deterministic up to pool reuse; the mean smooths warm-up effects). With
// stats, one extra collection-enabled run after the timed ones fills
// row.Ops.
func measureOne(env *Env, query string, cfg core.Config, repeats int, stats bool) (TrajectoryRow, error) {
	var row TrajectoryRow
	p, err := core.Prepare(query, cfg)
	if err != nil {
		return row, err
	}
	// Two warm-up runs: the first faults in the page cache and settles the
	// GC heap target, the second populates the buffer pools the first one
	// grew — the benchdiff gate compares medians of the steady state.
	for i := 0; i < 2; i++ {
		if _, err := p.Run(env.Store, env.Docs); err != nil {
			return row, err
		}
	}
	times := make([]time.Duration, 0, repeats)
	var mallocs, bytes uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < repeats; i++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if _, err := p.Run(env.Store, env.Docs); err != nil {
			return row, err
		}
		times = append(times, time.Since(start))
		runtime.ReadMemStats(&ms1)
		mallocs += ms1.Mallocs - ms0.Mallocs
		bytes += ms1.TotalAlloc - ms0.TotalAlloc
	}
	row.NsPerOp = median(times).Nanoseconds()
	row.AllocsPerOp = mallocs / uint64(repeats)
	row.BytesPerOp = bytes / uint64(repeats)
	if stats {
		res, _, err := p.Analyze(context.Background(), env.Store, env.Docs)
		if err != nil {
			return row, err
		}
		if res.Stats != nil {
			row.Ops = res.Stats.Ops
		}
	}
	return row, nil
}

// Trajectory measures the configured XMark queries at one scale factor:
// serial and parallel execution, typed and boxed column storage. The
// boxed rows flip xdm.ForceBoxed for the duration of their runs, so
// Trajectory must not run concurrently with other queries.
func Trajectory(opts TrajectoryOptions, w io.Writer) (*TrajectoryReport, error) {
	factor, queryIDs := opts.Factor, opts.Queries
	env := NewEnv(factor)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 3
	}
	rep := &TrajectoryReport{
		Factor:     factor,
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Repeats:    repeats,
		Meta: TrajectoryMeta{
			GoVersion:   runtime.Version(),
			GOOS:        runtime.GOOS,
			GOARCH:      runtime.GOARCH,
			NumCPU:      runtime.NumCPU(),
			Parallelism: workers,
			Recycling:   true,
			ForceBoxed:  xdm.ForceBoxed,
			Compiled:    !opts.NoCompile,
		},
	}
	scfg := indifferenceCfg(0)
	scfg.Compiled = !opts.NoCompile
	pcfg := indifferenceCfg(0)
	pcfg.Compiled = !opts.NoCompile
	pcfg.Parallelism = workers
	modes := []struct {
		name string
		cfg  core.Config
	}{{"serial", scfg}, {"parallel", pcfg}}
	if !opts.NoCompile {
		// A tree-walking control row per query: same plan, same storage
		// model, only the executor differs — the compiled-vs-walked
		// summaries below divide these against the "serial" rows.
		wcfg := indifferenceCfg(0)
		wcfg.Compiled = false
		modes = append(modes, struct {
			name string
			cfg  core.Config
		}{"walked", wcfg})
	}
	if w != nil {
		fmt.Fprintf(w, "benchmark trajectory at factor %g (~%.1f MB, %d nodes), %d workers, %d repeats\n",
			factor, float64(env.Bytes)/(1<<20), env.Nodes, workers, repeats)
		fmt.Fprintf(w, "%-6s %-9s %-6s %14s %14s %14s\n", "query", "mode", "cols", "ns/op", "allocs/op", "B/op")
	}
	for _, id := range queryIDs {
		q := xmarkq.Get(id)
		for _, m := range modes {
			for _, typed := range []bool{true, false} {
				xdm.ForceBoxed = !typed
				row, err := measureOne(env, q.Text, m.cfg, repeats, opts.Stats)
				xdm.ForceBoxed = false
				if err != nil {
					return nil, fmt.Errorf("%s/%s: %w", q.Name, m.name, err)
				}
				row.Query, row.Mode, row.Typed = q.Name, m.name, typed
				rep.Rows = append(rep.Rows, row)
				if w != nil {
					cols := "typed"
					if !typed {
						cols = "boxed"
					}
					fmt.Fprintf(w, "%-6s %-9s %-6s %14d %14d %14d\n",
						row.Query, row.Mode, cols, row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
				}
			}
		}
	}
	// Contention rows: multi-client throughput/latency through a shared
	// resource governor. Appended after the per-query matrix so the
	// steady-state rows above are measured on an otherwise idle process.
	if opts.Concurrency > 0 {
		rows, err := contentionRows(env, queryIDs, opts.Concurrency, repeats, w)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, rows...)
		rep.Concurrency = opts.Concurrency
	}
	// Out-of-core rows: the same queries served from the mmap'd columnar
	// store, unsharded and (when StoreShards > 1) sharded. Appended after
	// the in-memory matrix so its rows stay unperturbed by store paging.
	if opts.StoreShards > 0 {
		rows, err := storeRows(env, queryIDs, opts.StoreShards, repeats, opts.Stats, opts.NoCompile, w)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, rows...)
		rep.StoreShards = opts.StoreShards
	}
	// Failover rows: recovered latency with one replica killed before
	// every timed run. Last, so the kills and remounts cannot perturb the
	// steady-state and paging rows above.
	if opts.Failover {
		rows, err := failoverRows(env, queryIDs, repeats, opts.NoCompile, w)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, rows...)
		rep.Failover = true
	}
	// Typed-versus-boxed summaries per (query, mode).
	byKey := map[[2]string]map[bool]TrajectoryRow{}
	for _, r := range rep.Rows {
		k := [2]string{r.Query, r.Mode}
		if byKey[k] == nil {
			byKey[k] = map[bool]TrajectoryRow{}
		}
		byKey[k][r.Typed] = r
	}
	for _, id := range queryIDs {
		q := xmarkq.Get(id)
		for _, m := range modes {
			pair := byKey[[2]string{q.Name, m.name}]
			t, b := pair[true], pair[false]
			if t.NsPerOp == 0 || t.AllocsPerOp == 0 {
				continue
			}
			s := TrajectorySummary{
				Query:       q.Name,
				Mode:        m.name,
				Speedup:     float64(b.NsPerOp) / float64(t.NsPerOp),
				AllocsRatio: float64(b.AllocsPerOp) / float64(t.AllocsPerOp),
			}
			rep.Summaries = append(rep.Summaries, s)
			if w != nil {
				fmt.Fprintf(w, "%-6s %-9s typed vs boxed: %.2fx faster, %.2fx fewer allocs\n",
					s.Query, s.Mode, s.Speedup, s.AllocsRatio)
			}
		}
	}
	// Compiled-versus-walked summaries per query (typed rows, serial):
	// the "serial" and "walked" rows ran the same plan on the same data,
	// so the ratio isolates the executor.
	if !opts.NoCompile {
		for _, id := range queryIDs {
			q := xmarkq.Get(id)
			c := byKey[[2]string{q.Name, "serial"}][true]
			walked := byKey[[2]string{q.Name, "walked"}][true]
			if c.NsPerOp == 0 || c.AllocsPerOp == 0 {
				continue
			}
			s := CompiledSummary{
				Query:       q.Name,
				Speedup:     float64(walked.NsPerOp) / float64(c.NsPerOp),
				AllocsRatio: float64(walked.AllocsPerOp) / float64(c.AllocsPerOp),
			}
			rep.CompiledSummaries = append(rep.CompiledSummaries, s)
			if w != nil {
				fmt.Fprintf(w, "%-6s compiled vs walked: %.2fx faster, %.2fx fewer allocs\n",
					s.Query, s.Speedup, s.AllocsRatio)
			}
		}
	}
	return rep, nil
}

// WriteTrajectoryJSON measures a trajectory and writes it as indented
// JSON to path (the BENCH_PR<n>.json convention).
func WriteTrajectoryJSON(path string, opts TrajectoryOptions, w io.Writer) error {
	rep, err := Trajectory(opts, w)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
