package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/store"
	"repro/internal/xdm"
	"repro/internal/xmarkq"
	"repro/internal/xmltree"
)

// storeRows measures the trajectory queries through the on-disk columnar
// store (internal/store) instead of the in-memory fragment: mode "ooc"
// mounts a single-part store, mode "shard<N>" the same corpus sharded
// across N directories. Both mount under a dedicated byte ledger a
// quarter of the mapped corpus, so the rows price demand paging and
// pressure eviction, not just mmap reads — which is also why the
// benchdiff gate skips them: paging cost is storage/OS noise, not a
// kernel regression signal. Typed storage only (the store reassembles
// typed columns; boxing them would measure the conversion, not the
// store).
func storeRows(env *Env, queryIDs []int, shards, repeats int, stats, noCompile bool, w io.Writer) ([]TrajectoryRow, error) {
	frag := env.Store.Frag(env.Docs["auction.xml"][0])
	base, err := os.MkdirTemp("", "xmarkbench-store-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)

	modes := []struct {
		name string
		dirs []string
	}{{"ooc", []string{filepath.Join(base, "single")}}}
	if shards > 1 {
		dirs := make([]string, shards)
		for k := range dirs {
			dirs[k] = filepath.Join(base, fmt.Sprintf("shard%d", k))
		}
		modes = append(modes, struct {
			name string
			dirs []string
		}{fmt.Sprintf("shard%d", shards), dirs})
	}

	cfg := indifferenceCfg(0)
	cfg.Compiled = !noCompile
	var rows []TrajectoryRow
	for _, m := range modes {
		if err := store.WriteDoc(m.dirs, "auction.xml", frag); err != nil {
			return nil, fmt.Errorf("%s: write store: %w", m.name, err)
		}
		// Probe pass discovers the mapped size; the measured mount then
		// pages under a ledger a quarter of it.
		probe, err := store.Open(m.dirs, store.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s: probe: %w", m.name, err)
		}
		mapped := probe.Stats().MappedBytes
		probe.Close()
		st, err := store.Open(m.dirs, store.Options{Ledger: xdm.NewLedger(mapped / 4)})
		if err != nil {
			return nil, fmt.Errorf("%s: open: %w", m.name, err)
		}
		senv := &Env{
			Store:  xmltree.NewStore(),
			Docs:   map[string][]uint32{},
			Factor: env.Factor,
			Bytes:  env.Bytes,
			Nodes:  env.Nodes,
		}
		for _, d := range st.Docs() {
			senv.Docs[d.URI] = []uint32{senv.Store.Add(d.Frag)}
		}
		if w != nil {
			fmt.Fprintf(w, "store mode %s: %d part(s), %.1f MB mapped, ledger %.1f MB\n",
				m.name, len(st.Stats().Parts), float64(mapped)/(1<<20), float64(mapped/4)/(1<<20))
		}
		for _, id := range queryIDs {
			q := xmarkq.Get(id)
			row, err := measureOne(senv, q.Text, cfg, repeats, stats)
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("%s/%s: %w", q.Name, m.name, err)
			}
			row.Query, row.Mode, row.Typed = q.Name, m.name, true
			rows = append(rows, row)
			st.Sample() // keep the paging ledger honest between queries
			if w != nil {
				fmt.Fprintf(w, "%-6s %-9s %-6s %14d %14d %14d\n",
					row.Query, row.Mode, "typed", row.NsPerOp, row.AllocsPerOp, row.BytesPerOp)
			}
		}
		st.Close()
	}
	return rows, nil
}
