// Package bench implements the paper's evaluation harness (§5): the
// Table 2 profile breakdown of XMark Q11, the Figure 12 ordered-versus-
// unordered speedup sweep over the 20 XMark queries and a range of
// document sizes, the plan-size statistics behind Figure 6/9 and §4.1,
// and ablations over the individual optimizer rewrites.
//
// Both cmd/xmarkbench and the repository's testing.B benchmarks drive
// these entry points, so the printed rows match the paper's tables and
// figures one to one.
package bench

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/xmark"
	"repro/internal/xmarkq"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// Env is a prepared benchmark environment: one XMark instance.
type Env struct {
	Store  *xmltree.Store
	Docs   map[string][]uint32
	Factor float64
	Bytes  int64 // serialized size of the instance
	Nodes  int
}

// NewEnv generates an XMark instance at the given scale factor.
func NewEnv(factor float64) *Env {
	f := xmark.Generate(xmark.Config{Factor: factor})
	store := xmltree.NewStore()
	id := store.Add(f)
	st := f.ComputeStats()
	return &Env{
		Store:  store,
		Docs:   map[string][]uint32{"auction.xml": {id}},
		Factor: factor,
		Bytes:  int64(float64(xmark.ApproxBytesPerFactor) * factor),
		Nodes:  st.Nodes,
	}
}

// Configurations of §5: the order-ignorant baseline versus the
// order-indifference-aware compiler with ordering mode unordered.
// maxCells bounds intermediate materialization per run (~3 GB of items);
// overruns count as cutoffs, like the gaps in the paper's Figure 12.
const maxCells = 60 << 20

func baselineCfg(cutoff time.Duration) core.Config {
	cfg := core.BaselineConfig()
	cfg.Timeout = cutoff
	cfg.MaxCells = maxCells
	return cfg
}

func indifferenceCfg(cutoff time.Duration) core.Config {
	cfg := core.DefaultConfig()
	u := xquery.Unordered
	cfg.ForceOrdering = &u
	cfg.Timeout = cutoff
	cfg.MaxCells = maxCells
	return cfg
}

// Run compiles and executes a query under a config, returning the result
// and wall-clock duration. A cutoff overrun returns timedOut = true.
func Run(env *Env, query string, cfg core.Config) (res *engine.Result, d time.Duration, timedOut bool, err error) {
	p, err := core.Prepare(query, cfg)
	if err != nil {
		return nil, 0, false, err
	}
	start := time.Now()
	res, err = p.Run(env.Store, env.Docs)
	d = time.Since(start)
	if err != nil {
		if errors.Is(err, engine.ErrCutoff) {
			return nil, d, true, nil
		}
		return nil, d, false, err
	}
	return res, d, false, nil
}

// medianRun executes repeats times (more for sub-50ms runs, which are
// noise-prone) and returns the median duration.
func medianRun(env *Env, query string, cfg core.Config, repeats int) (time.Duration, bool, error) {
	if repeats < 1 {
		repeats = 1
	}
	best := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		_, d, timeout, err := Run(env, query, cfg)
		if err != nil {
			return 0, false, err
		}
		if timeout {
			return d, true, nil
		}
		best = append(best, d)
		if i == repeats-1 && d < 50*time.Millisecond && repeats < 9 {
			repeats += 2 // extend sampling for fast, jittery runs
		}
	}
	// median
	for i := 1; i < len(best); i++ {
		for j := i; j > 0 && best[j] < best[j-1]; j-- {
			best[j], best[j-1] = best[j-1], best[j]
		}
	}
	return best[len(best)/2], false, nil
}

// --- Figure 12 ---

// Figure12Row is one point of Figure 12: the observed speedup of the
// order-indifference-enabled configuration over the baseline for one
// query at one document size. Speedup follows the paper's convention:
// 100 % means "twice as fast".
type Figure12Row struct {
	Query      string
	Factor     float64
	SizeMB     float64
	BaselineMS float64
	EnabledMS  float64
	SpeedupPct float64
	BaseCut    bool // baseline hit the cutoff
	EnCut      bool // enabled configuration hit the cutoff
	Err        string
}

// Figure12 measures all 20 XMark queries at each scale factor with the
// given cutoff (the paper used 30 s) and repeats per measurement.
func Figure12(factors []float64, cutoff time.Duration, repeats int, w io.Writer) []Figure12Row {
	var rows []Figure12Row
	for _, factor := range factors {
		env := NewEnv(factor)
		if w != nil {
			fmt.Fprintf(w, "\n== XMark instance: factor %g (~%.1f MB, %d nodes) ==\n",
				factor, float64(env.Bytes)/(1<<20), env.Nodes)
			fmt.Fprintf(w, "%-5s %12s %12s %10s\n", "query", "ordered[ms]", "unord[ms]", "speedup")
		}
		for _, q := range xmarkq.All() {
			row := Figure12Row{Query: q.Name, Factor: factor, SizeMB: float64(env.Bytes) / (1 << 20)}
			bd, bcut, err := medianRun(env, q.Text, baselineCfg(cutoff), repeats)
			if err != nil {
				row.Err = err.Error()
				rows = append(rows, row)
				continue
			}
			ed, ecut, err := medianRun(env, q.Text, indifferenceCfg(cutoff), repeats)
			if err != nil {
				row.Err = err.Error()
				rows = append(rows, row)
				continue
			}
			row.BaselineMS = float64(bd.Microseconds()) / 1000
			row.EnabledMS = float64(ed.Microseconds()) / 1000
			row.BaseCut, row.EnCut = bcut, ecut
			if !bcut && !ecut && ed > 0 {
				row.SpeedupPct = (float64(bd)/float64(ed) - 1) * 100
			}
			rows = append(rows, row)
			if w != nil {
				bs := fmt.Sprintf("%.2f", row.BaselineMS)
				es := fmt.Sprintf("%.2f", row.EnabledMS)
				sp := fmt.Sprintf("%.0f%%", row.SpeedupPct)
				if bcut {
					bs, sp = "cutoff", "-"
				}
				if ecut {
					es, sp = "cutoff", "-"
				}
				fmt.Fprintf(w, "%-5s %12s %12s %10s\n", q.Name, bs, es, sp)
			}
		}
	}
	return rows
}

// --- Table 2 ---

// Table2Row is one sub-expression row of the Q11 profile.
type Table2Row struct {
	Origin   string
	Millis   float64
	SharePct float64
	Rows     int
}

// Table2Result bundles the profile with the headline comparison: the
// modified compiler removes the iter→seq reordering of the join result
// (the paper reports a 45 % saving).
type Table2Result struct {
	Rows       []Table2Row
	TotalMS    float64
	BaselineMS float64
	IndiffMS   float64
	SavedPct   float64
}

// Table2 profiles XMark Q11 under the order-ignorant baseline and
// reports where execution time goes, then re-runs with order indifference
// enabled (ordered mode — the Q11 win needs no unordered declaration, cf.
// Rule FN:COUNT) and reports the saving.
func Table2(factor float64, w io.Writer) (*Table2Result, error) {
	env := NewEnv(factor)
	q11 := xmarkq.Get(11)

	res, bd, _, err := Run(env, q11.Text, core.BaselineConfig())
	if err != nil {
		return nil, err
	}
	out := &Table2Result{BaselineMS: ms(bd)}
	var total time.Duration
	for _, e := range res.Profile {
		total += e.Duration
	}
	out.TotalMS = ms(total)
	for _, e := range res.Profile {
		out.Rows = append(out.Rows, Table2Row{
			Origin:   e.Origin,
			Millis:   ms(e.Duration),
			SharePct: 100 * float64(e.Duration) / float64(total),
			Rows:     e.Rows,
		})
	}

	cfg := core.DefaultConfig() // indifference on, prolog (ordered) mode
	_, id, _, err := Run(env, q11.Text, cfg)
	if err != nil {
		return nil, err
	}
	out.IndiffMS = ms(id)
	out.SavedPct = (1 - float64(id)/float64(bd)) * 100

	if w != nil {
		fmt.Fprintf(w, "XMark Q11 profile (factor %g, ~%.1f MB, baseline compiler)\n",
			factor, float64(env.Bytes)/(1<<20))
		fmt.Fprintf(w, "%-34s %12s %6s %12s\n", "sub-expression", "time[ms]", "%", "rows")
		for _, r := range out.Rows {
			fmt.Fprintf(w, "%-34s %12.1f %5.0f%% %12d\n", r.Origin, r.Millis, r.SharePct, r.Rows)
		}
		fmt.Fprintf(w, "%-34s %12.1f\n", "total (sum of operators)", out.TotalMS)
		fmt.Fprintf(w, "\nwall clock: baseline %.1f ms, order indifference %.1f ms -> %.0f%% saved (paper: 45%%)\n",
			out.BaselineMS, out.IndiffMS, out.SavedPct)
	}
	return out, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// --- Parallel execution (beyond the paper) ---

// ParallelRow is one serial-versus-parallel timing of an
// order-indifferent query.
type ParallelRow struct {
	Query      string
	Workers    int
	SerialMS   float64
	ParallelMS float64
	SpeedupX   float64 // serial / parallel wall clock
}

// Parallel measures order-indifferent count-shaped queries (Q6, Q7, Q20
// and a plain descendant count — one big order-dead scan each) under the
// serial engine and the morsel-wise parallel executor. This experiment
// extends the paper: order indifference licenses the partitioning, the
// speedup column reports what the license buys on a multicore host.
func Parallel(factor float64, workers, repeats int, w io.Writer) ([]ParallelRow, error) {
	env := NewEnv(factor)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queries := []struct{ name, text string }{
		{"Q6", xmarkq.Get(6).Text},
		{"Q7", xmarkq.Get(7).Text},
		{"Q20", xmarkq.Get(20).Text},
		{"kwcnt", `count(doc("auction.xml")//keyword)`},
	}
	scfg := indifferenceCfg(0)
	pcfg := indifferenceCfg(0)
	pcfg.Parallelism = workers
	if w != nil {
		fmt.Fprintf(w, "parallel execution at factor %g (~%.1f MB, %d nodes), %d workers\n",
			factor, float64(env.Bytes)/(1<<20), env.Nodes, workers)
		fmt.Fprintf(w, "%-6s %12s %12s %9s\n", "query", "serial[ms]", "parallel[ms]", "speedup")
	}
	var rows []ParallelRow
	for _, q := range queries {
		// Paired, interleaved samples: an untimed warm-up run first (page
		// cache, GC heap target), then serial/parallel alternating, so
		// neither side systematically benefits from running later.
		if _, _, _, err := Run(env, q.text, scfg); err != nil {
			return nil, fmt.Errorf("%s warm-up: %w", q.name, err)
		}
		sd, pd, err := pairedMedian(env, q.text, scfg, pcfg, repeats)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.name, err)
		}
		row := ParallelRow{Query: q.name, Workers: workers, SerialMS: ms(sd), ParallelMS: ms(pd)}
		if pd > 0 {
			row.SpeedupX = float64(sd) / float64(pd)
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-6s %12.2f %12.2f %8.2fx\n", row.Query, row.SerialMS, row.ParallelMS, row.SpeedupX)
		}
	}
	return rows, nil
}

// pairedMedian measures two configurations of the same query with
// alternating (paired) runs and returns the median duration of each.
// Alternation cancels drift — GC heap growth and cache warming otherwise
// favor whichever configuration is measured later.
func pairedMedian(env *Env, query string, a, b core.Config, repeats int) (time.Duration, time.Duration, error) {
	if repeats < 1 {
		repeats = 1
	}
	da := make([]time.Duration, 0, repeats)
	db := make([]time.Duration, 0, repeats)
	for i := 0; i < repeats; i++ {
		// ABBA ordering: each configuration runs first equally often, so
		// the position-in-pair effect (the second run sees a heap the
		// first just grew) cancels too.
		first, second := a, b
		if i%2 == 1 {
			first, second = b, a
		}
		// Start every timed run from a freshly collected heap: without
		// this, collection cycles triggered by one run land in its
		// neighbor's wall clock, and their periodicity can resonate with
		// the pairing.
		runtime.GC()
		_, d1, _, err := Run(env, query, first)
		if err != nil {
			return 0, 0, err
		}
		runtime.GC()
		_, d2, _, err := Run(env, query, second)
		if err != nil {
			return 0, 0, err
		}
		if i%2 == 1 {
			d1, d2 = d2, d1
		}
		da = append(da, d1)
		db = append(db, d2)
	}
	return median(da), median(db), nil
}

func median(d []time.Duration) time.Duration {
	for i := 1; i < len(d); i++ {
		for j := i; j > 0 && d[j] < d[j-1]; j-- {
			d[j], d[j-1] = d[j-1], d[j]
		}
	}
	return d[len(d)/2]
}

// --- Plan sizes (Figure 6/9, §4.1) ---

// PlanSizeRow summarizes plan statistics for one query.
type PlanSizeRow struct {
	Query           string
	OrderedOps      int
	OrderedSorts    int
	UnorderedOps    int
	UnorderedSorts  int
	UnorderedStamps int
	OptimizedOps    int
	OptimizedSorts  int
	OptimizedStamps int
}

// PlanSizes compiles every XMark query three ways: baseline (ordered),
// unordered before optimization, unordered after the full optimizer.
func PlanSizes(w io.Writer) ([]PlanSizeRow, error) {
	var rows []PlanSizeRow
	u := xquery.Unordered
	noOpt := core.Config{Indifference: true, ForceOrdering: &u}
	withOpt := core.Config{Indifference: true, ForceOrdering: &u, Opt: opt.AllOptions()}
	if w != nil {
		fmt.Fprintf(w, "%-5s | %9s %6s | %9s %6s %6s | %9s %6s %6s\n",
			"query", "ord ops", "ρ", "unord ops", "ρ", "#", "opt ops", "ρ", "#")
	}
	for _, q := range xmarkq.All() {
		pb, err := core.Prepare(q.Text, core.BaselineConfig())
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", q.Name, err)
		}
		pu, err := core.Prepare(q.Text, noOpt)
		if err != nil {
			return nil, fmt.Errorf("%s unordered: %w", q.Name, err)
		}
		po, err := core.Prepare(q.Text, withOpt)
		if err != nil {
			return nil, fmt.Errorf("%s optimized: %w", q.Name, err)
		}
		row := PlanSizeRow{
			Query:           q.Name,
			OrderedOps:      pb.StatsAfter.Operators,
			OrderedSorts:    pb.StatsAfter.RowNums,
			UnorderedOps:    pu.StatsBefore.Operators,
			UnorderedSorts:  pu.StatsBefore.RowNums,
			UnorderedStamps: pu.StatsBefore.RowIDs,
			OptimizedOps:    po.StatsAfter.Operators,
			OptimizedSorts:  po.StatsAfter.RowNums,
			OptimizedStamps: po.StatsAfter.RowIDs,
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-5s | %9d %6d | %9d %6d %6d | %9d %6d %6d\n",
				row.Query, row.OrderedOps, row.OrderedSorts,
				row.UnorderedOps, row.UnorderedSorts, row.UnorderedStamps,
				row.OptimizedOps, row.OptimizedSorts, row.OptimizedStamps)
		}
	}
	return rows, nil
}

// --- Ablations ---

// AblationRow is one (query, optimizer configuration) timing.
type AblationRow struct {
	Query  string
	Config string
	MS     float64
}

// Ablation times representative queries with individual rewrites
// disabled, quantifying each rewrite's contribution (DESIGN.md's ablation
// index).
func Ablation(factor float64, repeats int, w io.Writer) ([]AblationRow, error) {
	env := NewEnv(factor)
	u := xquery.Unordered
	configs := []struct {
		name string
		opt  opt.Options
	}{
		{"none", opt.Options{}},
		{"analysis", opt.Options{ColumnAnalysis: true}},
		{"analysis+relax", opt.Options{ColumnAnalysis: true, RownumRelax: true}},
		{"analysis+merge", opt.Options{ColumnAnalysis: true, StepMerge: true}},
		{"all", opt.AllOptions()},
	}
	queries := []int{1, 6, 7, 11, 19}
	var rows []AblationRow
	// An extra configuration measures §6's orthogonal physical
	// optimization: the order-ignorant baseline given an engine that
	// skips sorts over already-ordered inputs ([15]).
	physBase := core.BaselineConfig()
	physBase.InterestingOrders = true
	if w != nil {
		fmt.Fprintf(w, "ablation at factor %g (ordering mode unordered)\n", factor)
		fmt.Fprintf(w, "%-5s %-16s %12s\n", "query", "optimizer", "ms")
	}
	for _, id := range queries {
		q := xmarkq.Get(id)
		for _, c := range configs {
			cfg := core.Config{Indifference: true, ForceOrdering: &u, Opt: c.opt}
			d, _, err := medianRun(env, q.Text, cfg, repeats)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", q.Name, c.name, err)
			}
			row := AblationRow{Query: q.Name, Config: c.name, MS: ms(d)}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-5s %-16s %12.2f\n", row.Query, row.Config, row.MS)
			}
		}
		for name, cfg := range map[string]core.Config{
			"ordered":      core.BaselineConfig(),
			"ordered+phys": physBase,
		} {
			d, _, err := medianRun(env, q.Text, cfg, repeats)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", q.Name, name, err)
			}
			row := AblationRow{Query: q.Name, Config: name, MS: ms(d)}
			rows = append(rows, row)
			if w != nil {
				fmt.Fprintf(w, "%-5s %-16s %12.2f\n", row.Query, row.Config, row.MS)
			}
		}
	}
	return rows, nil
}
