package bench

import (
	"strings"
	"testing"
)

func diffBaseline() *TrajectoryReport {
	return &TrajectoryReport{
		Factor:  0.01,
		Workers: 1,
		Rows: []TrajectoryRow{
			{Query: "Q1", Mode: "serial", Typed: true, NsPerOp: 1_000_000, AllocsPerOp: 2000, BytesPerOp: 100_000},
			{Query: "Q1", Mode: "serial", Typed: false, NsPerOp: 3_000_000, AllocsPerOp: 9000, BytesPerOp: 400_000},
			{Query: "Q8", Mode: "parallel", Typed: true, NsPerOp: 5_000_000, AllocsPerOp: 7000, BytesPerOp: 900_000},
		},
	}
}

// copyReport deep-copies the rows so tests can perturb one run.
func copyReport(r *TrajectoryReport) *TrajectoryReport {
	c := *r
	c.Rows = append([]TrajectoryRow(nil), r.Rows...)
	return &c
}

func TestDiffPassesWithinNoise(t *testing.T) {
	base := diffBaseline()
	cur := copyReport(base)
	// +20% wall time and +5% allocs: inside the 30%/10% envelopes.
	cur.Rows[0].NsPerOp = 1_200_000
	cur.Rows[0].AllocsPerOp = 2100
	// Improvements never fail the gate.
	cur.Rows[1].NsPerOp = 1_500_000
	cur.Rows[1].AllocsPerOp = 4000
	entries, err := Diff(base, cur, DiffThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6", len(entries))
	}
	if Regressed(entries) {
		t.Errorf("gate failed inside the noise envelope: %+v", entries)
	}
}

func TestDiffFailsOnSyntheticDoubling(t *testing.T) {
	base := diffBaseline()
	cur := copyReport(base)
	// The canary the issue asks for: a synthetic 2x wall-time regression
	// on one row must trip the gate.
	cur.Rows[2].NsPerOp = base.Rows[2].NsPerOp * 2
	entries, err := Diff(base, cur, DiffThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !Regressed(entries) {
		t.Fatal("2x ns/op regression did not trip the gate")
	}
	var hit *DiffEntry
	for i, e := range entries {
		if e.Regressed {
			if hit != nil {
				t.Fatalf("more than one entry regressed: %+v and %+v", *hit, e)
			}
			hit = &entries[i]
		}
	}
	if hit.Query != "Q8" || hit.Metric != "ns_per_op" || hit.Pct != 100 {
		t.Errorf("wrong entry flagged: %+v", *hit)
	}
	var sb strings.Builder
	WriteDiff(&sb, entries)
	if !strings.Contains(sb.String(), "REGRESSION") {
		t.Errorf("report does not mark the regression:\n%s", sb.String())
	}
}

func TestDiffFailsOnAllocGrowth(t *testing.T) {
	base := diffBaseline()
	cur := copyReport(base)
	// +15% allocations with identical wall time: the tight allocs gate
	// (10%) catches what the loose ns gate (30%) would wave through.
	cur.Rows[0].AllocsPerOp = 2300
	entries, err := Diff(base, cur, DiffThresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !Regressed(entries) {
		t.Fatal("15%% allocs/op growth did not trip the gate")
	}
}

func TestDiffRejectsShapeMismatch(t *testing.T) {
	base := diffBaseline()
	cur := copyReport(base)
	cur.Factor = 0.05
	if _, err := Diff(base, cur, DiffThresholds{}); err == nil {
		t.Error("factor mismatch not rejected")
	}
	cur = copyReport(base)
	cur.Workers = 8
	if _, err := Diff(base, cur, DiffThresholds{}); err == nil {
		t.Error("workers mismatch not rejected")
	}
	// A baseline row vanishing from the current run is lost coverage.
	cur = copyReport(base)
	cur.Rows = cur.Rows[:2]
	if _, err := Diff(base, cur, DiffThresholds{}); err == nil {
		t.Error("missing row not rejected")
	}
	// Extra rows in the current run are fine (new queries added).
	cur = copyReport(base)
	cur.Rows = append(cur.Rows, TrajectoryRow{Query: "Q11", Mode: "serial", Typed: true, NsPerOp: 1, AllocsPerOp: 1})
	if _, err := Diff(base, cur, DiffThresholds{}); err != nil {
		t.Errorf("extra row rejected: %v", err)
	}
}

func TestDiffCustomThresholds(t *testing.T) {
	base := diffBaseline()
	cur := copyReport(base)
	cur.Rows[0].NsPerOp = 1_200_000 // +20%
	entries, err := Diff(base, cur, DiffThresholds{NsPct: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !Regressed(entries) {
		t.Error("tightened ns threshold not honoured")
	}
}

func TestDiffSkipsContentionRows(t *testing.T) {
	base := diffBaseline()
	base.Rows = append(base.Rows, TrajectoryRow{
		Query: "Q1", Mode: "concurrent16", Typed: true,
		NsPerOp: 2_000_000, P95NsPerOp: 9_000_000, QPS: 120, Shed: 3, Degraded: 7,
	})
	// The contention row regresses 10x AND vanishes from the current run:
	// both must be invisible to the gate.
	cur := copyReport(base)
	cur.Rows = cur.Rows[:len(cur.Rows)-1]
	entries, err := Diff(base, cur, DiffThresholds{})
	if err != nil {
		t.Fatalf("gate errored on a vanished contention row: %v", err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6 (contention row must not be compared)", len(entries))
	}
	if Regressed(entries) {
		t.Errorf("gate regressed: %+v", entries)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Mode, "concurrent") {
			t.Errorf("contention row leaked into the gate: %+v", e)
		}
	}
}

func TestDiffSkipsServerRows(t *testing.T) {
	base := diffBaseline()
	base.Rows = append(base.Rows, TrajectoryRow{
		Query: "Q1", Mode: "server32", Typed: true,
		NsPerOp: 3_000_000, P95NsPerOp: 12_000_000, P99NsPerOp: 30_000_000,
		QPS: 80, Shed: 11, CacheHitPct: 97.5,
	})
	// Like contention rows, loadgen rows regress wildly and vanish from
	// runs that skip the daemon — both must be invisible to the gate.
	cur := copyReport(base)
	cur.Rows = cur.Rows[:len(cur.Rows)-1]
	entries, err := Diff(base, cur, DiffThresholds{})
	if err != nil {
		t.Fatalf("gate errored on a vanished server row: %v", err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6 (server row must not be compared)", len(entries))
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Mode, "server") {
			t.Errorf("server row leaked into the gate: %+v", e)
		}
	}
}

func TestDiffSkipsOutOfCoreRows(t *testing.T) {
	base := diffBaseline()
	base.Rows = append(base.Rows,
		TrajectoryRow{Query: "Q1", Mode: "ooc", Typed: true, NsPerOp: 4_000_000, AllocsPerOp: 2500},
		TrajectoryRow{Query: "Q1", Mode: "shard4", Typed: true, NsPerOp: 5_000_000, AllocsPerOp: 2600},
	)
	// Out-of-core rows price demand paging — page-cache and filesystem
	// noise. They regress 10x AND vanish from runs measured without
	// -store-shards: both must be invisible to the gate.
	cur := copyReport(base)
	cur.Rows = cur.Rows[:len(cur.Rows)-2]
	entries, err := Diff(base, cur, DiffThresholds{})
	if err != nil {
		t.Fatalf("gate errored on vanished out-of-core rows: %v", err)
	}
	if len(entries) != 6 {
		t.Fatalf("got %d entries, want 6 (ooc/shard rows must not be compared)", len(entries))
	}
	if Regressed(entries) {
		t.Errorf("gate regressed: %+v", entries)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Mode, "ooc") || strings.HasPrefix(e.Mode, "shard") {
			t.Errorf("out-of-core row leaked into the gate: %+v", e)
		}
	}
}
