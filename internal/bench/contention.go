package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/qerr"
	"repro/internal/xmarkq"
)

// Contention measures multi-query throughput and latency: conc client
// goroutines each push `repeats` executions of the same prepared query
// through one shared resource governor. Unlike the serial/parallel
// trajectory rows (which measure one query on an idle process), these
// rows measure the process under load — queueing, load shedding and
// degradation included — so the trajectory file records how admission
// control behaves, not just how fast a kernel is.
//
// A client shed with ErrOverload backs off for the error's RetryAfter
// hint and retries (the retry is counted in the row's Shed); every
// client therefore completes all of its repeats, and the reported QPS
// is goodput, with shedding visible as added latency.
func contentionRows(env *Env, queryIDs []int, conc, repeats int, w io.Writer) ([]TrajectoryRow, error) {
	mode := fmt.Sprintf("concurrent%d", conc)
	if w != nil {
		fmt.Fprintf(w, "contention: %d clients x %d runs, %d admission slots\n",
			conc, repeats, runtime.GOMAXPROCS(0))
		fmt.Fprintf(w, "%-6s %-14s %14s %14s %10s %8s %8s\n",
			"query", "mode", "ns/op(p50)", "ns/op(p95)", "qps", "shed", "degr")
	}
	var rows []TrajectoryRow
	for _, id := range queryIDs {
		q := xmarkq.Get(id)
		name, text := q.Name, q.Text
		// A fresh governor per query keeps the counters attributable; slots
		// default to GOMAXPROCS so conc > slots exercises the wait queue.
		gov := governor.New(governor.Config{MaxConcurrent: runtime.GOMAXPROCS(0)})
		cfg := indifferenceCfg(0)
		cfg.Governor = gov
		p, err := core.Prepare(text, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, mode, err)
		}
		// One warm-up pass before the clock starts.
		if _, err := p.RunContext(context.Background(), env.Store, env.Docs); err != nil {
			return nil, fmt.Errorf("%s/%s: warm-up: %w", name, mode, err)
		}

		var (
			mu        sync.Mutex
			latencies []time.Duration
			shed      int64
			runErr    error
		)
		var wg sync.WaitGroup
		start := time.Now()
		for c := 0; c < conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]time.Duration, 0, repeats)
				var localShed int64
				for i := 0; i < repeats; i++ {
					t0 := time.Now()
					for {
						_, err := p.RunContext(context.Background(), env.Store, env.Docs)
						if err == nil {
							break
						}
						if errors.Is(err, qerr.ErrOverload) {
							localShed++
							if hint, ok := qerr.RetryAfterOf(err); ok {
								time.Sleep(hint)
							}
							continue
						}
						mu.Lock()
						if runErr == nil {
							runErr = err
						}
						mu.Unlock()
						return
					}
					local = append(local, time.Since(t0))
				}
				mu.Lock()
				latencies = append(latencies, local...)
				shed += localShed
				mu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		if runErr != nil {
			return nil, fmt.Errorf("%s/%s: %w", name, mode, runErr)
		}
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		st := gov.Stats()
		row := TrajectoryRow{
			Query:      name,
			Mode:       mode,
			Typed:      true,
			NsPerOp:    percentile(latencies, 50).Nanoseconds(),
			P95NsPerOp: percentile(latencies, 95).Nanoseconds(),
			QPS:        float64(len(latencies)) / elapsed.Seconds(),
			Shed:       shed,
			Degraded:   st.Downgrades,
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-6s %-14s %14d %14d %10.1f %8d %8d\n",
				row.Query, row.Mode, row.NsPerOp, row.P95NsPerOp, row.QPS, row.Shed, row.Degraded)
		}
	}
	return rows, nil
}

// percentile returns the pth percentile of sorted durations (nearest
// rank); zero for an empty slice.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}
